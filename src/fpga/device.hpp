// Device (board) model: the static delay population of one FPGA die.
//
// Table II of the paper measures *extra-device* frequency spread by loading
// the same bitstream into five boards. We model a die as
//   * one global process factor  g ~ N(1, sigma_global^2)   (lot/die-level),
//   * one mismatch factor per LUT m_i ~ N(1, sigma_mismatch^2)
//     (within-die random variability),
// both drawn deterministically from (master_seed, board_index, lut_index), so
// "the same bitstream on board k" always sees the same silicon. The observed
// decomposition in the paper's data (sigma_rel ≈ sqrt(sigma_g^2 +
// sigma_mm^2 / L)) fixes sigma_mismatch ≈ 1.35 % and sigma_global ≈ 0.1 % for
// the Cyclone III population (see EXPERIMENTS.md, Table II).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"

namespace ringent::fpga {

/// Statistical parameters of a device family's delay population.
struct ProcessParams {
  double global_sigma = 0.001;        ///< die-level relative delay spread
  double lut_mismatch_sigma = 0.0135; ///< per-LUT relative delay spread
};

class Board {
 public:
  /// `master_seed` identifies the manufactured population; `board_index`
  /// selects one die from it (boards 0..4 reproduce the paper's five boards).
  Board(std::uint64_t master_seed, unsigned board_index,
        const ProcessParams& params);

  unsigned index() const { return index_; }

  /// Die-level multiplicative delay factor.
  double global_factor() const { return global_factor_; }

  /// Multiplicative delay factor of LUT cell `lut_index`. Deterministic in
  /// (master seed, board, lut): repeated calls return the same silicon.
  double lut_factor(std::size_t lut_index) const;

  /// Combined static factor for one LUT (global * mismatch).
  double stage_factor(std::size_t lut_index) const {
    return global_factor_ * lut_factor(lut_index);
  }

  /// Seed for the *dynamic* noise stream of LUT `lut_index` — independent of
  /// the static factors and of every other LUT's stream.
  std::uint64_t noise_seed(std::size_t lut_index) const;

  const ProcessParams& params() const { return params_; }

 private:
  std::uint64_t board_seed_;
  unsigned index_;
  ProcessParams params_;
  double global_factor_;
};

}  // namespace ringent::fpga
