// Core power-supply model.
//
// Supplies two needs of the reproduction:
//  * static voltage sweeps (paper Fig. 8 / Table I), and
//  * time-varying deterministic modulation — the "global deterministic
//    jitter" attack vector of Sec. IV-B (e.g. an attacker superimposing a
//    sine on the core rail).
//
// The boards in the paper carry a linear regulator specifically to attenuate
// supply-borne deterministic jitter; Regulator models that attenuation plus a
// small residual ripple.
#pragma once

#include <cstdint>

#include "common/json.hpp"
#include "common/time.hpp"
#include "fpga/delay_model.hpp"

namespace ringent::fpga {

/// Deterministic waveform superimposed on the nominal rail.
struct Modulation {
  enum class Kind { none, sine, square, ramp };

  Kind kind = Kind::none;
  double amplitude_v = 0.0;  ///< peak amplitude (volts)
  double frequency_hz = 0.0;
  double phase_rad = 0.0;

  static Modulation none() { return {}; }
  static Modulation sine(double amplitude_v, double frequency_hz,
                         double phase_rad = 0.0);
  static Modulation square(double amplitude_v, double frequency_hz);
  /// Linear ramp from -amplitude to +amplitude over [0, ramp_duration].
  static Modulation ramp(double amplitude_v, Time ramp_duration);

  /// Waveform value at absolute time t (volts, centered on zero).
  double value_at(Time t) const;
};

/// Linear voltage regulator: passes DC level, attenuates AC modulation.
struct Regulator {
  /// Fraction of the external modulation reaching the core (1 = no regulator,
  /// paper boards ~0.05-0.1 thanks to the on-board linear regulator).
  double ac_attenuation = 1.0;
  /// Residual regulator ripple amplitude (volts) at ripple_frequency_hz.
  double ripple_v = 0.0;
  double ripple_frequency_hz = 0.0;

  /// Serialized form: all three fields, flat; from_json fills absent keys
  /// with the pass-through defaults and rejects unknown keys.
  Json to_json() const;
  static Regulator from_json(const Json& json);
};

class Supply {
 public:
  explicit Supply(double nominal_v = 1.2);

  double nominal_v() const { return nominal_v_; }

  /// Static offset from the nominal rail (bench PSU setting for sweeps).
  void set_level(double volts);
  double level() const { return level_; }

  void set_modulation(const Modulation& m) {
    modulation_ = m;
    ++generation_;
  }
  const Modulation& modulation() const { return modulation_; }

  void set_regulator(const Regulator& r) {
    regulator_ = r;
    ++generation_;
  }

  /// Effective core voltage at absolute time t.
  double voltage_at(Time t) const;

  /// Operating point (voltage + temperature) at time t.
  OperatingPoint operating_point_at(Time t) const;

  void set_temperature_c(double t) {
    temperature_c_ = t;
    ++generation_;
  }
  double temperature_c() const { return temperature_c_; }

  /// Bumped by every setter. Consumers caching derived quantities (the ring
  /// models' delay-scale caches, fpga/op_cache.hpp) revalidate against this
  /// instead of recomputing the operating point per event.
  std::uint64_t generation() const { return generation_; }

  /// True when voltage_at() does not depend on t at all (no modulation
  /// waveform, no regulator ripple): the operating point — and everything
  /// derived from it — is a constant until the next setter call.
  bool time_invariant() const {
    return modulation_.kind == Modulation::Kind::none &&
           regulator_.ripple_v <= 0.0;
  }

 private:
  double nominal_v_;
  double level_;
  double temperature_c_ = 25.0;
  std::uint64_t generation_ = 0;
  Modulation modulation_{};
  Regulator regulator_{};
};

}  // namespace ringent::fpga
