// Placement & routing delay model.
//
// The paper places ring stages manually, "if possible in the same Altera
// LAB", to minimize interconnect delay. A Cyclone III LAB holds 16 logic
// elements; rings longer than that span several LABs and pick up programmable
// -interconnect delay on every hop. The paper publishes no layout data, but
// its measured frequencies imply an average per-hop routing delay that grows
// with ring length for STRs (each stage connects both forward to i+1 and
// backward from i+1, so the feedback nets stretch as the ring spreads over
// more LABs) and quickly saturates for IROs (a simple unidirectional chain).
//
// RoutingModel therefore carries a *calibration table* per ring kind —
// (ring length -> mean per-hop routing delay) — extracted from the paper's
// Table I/II frequencies, interpolated piecewise-linearly between calibrated
// lengths. This is documented as calibration, not physics (DESIGN.md §1);
// the voltage behaviour of the routed fraction is what reproduces the
// Table I ΔF-vs-length trend.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace ringent::fpga {

/// Number of logic elements per LAB (Cyclone III).
inline constexpr std::size_t lab_capacity = 16;

/// LABs needed to place an L-stage ring (one LUT per stage).
std::size_t labs_used(std::size_t stages);

/// Distribute a calibrated mean per-hop routing delay across the stages of
/// a chain-placed ring with LAB structure: hops that cross a LAB boundary
/// (every lab_capacity-th hop) cost `crossing_weight` x the within-LAB base,
/// and the wrap-around connection from the last stage back to stage 0 costs
/// crossing_weight x (LABs spanned - 1) x base. Weights are normalized so
/// the mean over all hops equals `mean_per_hop` exactly — total ring delay
/// (and therefore the calibrated frequency) is preserved; only the per-stage
/// *asymmetry* changes. In STRs this asymmetry parks stages away from the
/// Charlie apex, weakening the idealized regulation — the physical
/// explanation our EXPERIMENTS.md offers for the silicon-vs-model diffusion
/// gap, made testable by ext_routing_structure.
std::vector<Time> distribute_routing(Time mean_per_hop, std::size_t stages,
                                     double crossing_weight = 4.0);

/// Piecewise-linear (length -> per-hop routing delay) calibration.
class RoutingModel {
 public:
  struct Point {
    std::size_t stages;
    Time per_hop;
  };

  /// `points` must be non-empty and strictly increasing in `stages`.
  explicit RoutingModel(std::vector<Point> points);

  /// Mean per-hop routing delay at nominal voltage for an L-stage ring.
  /// Below the first calibrated length the first value is held; above the
  /// last the final segment's slope is extrapolated (clamped at zero).
  Time per_hop_delay(std::size_t stages) const;

  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

}  // namespace ringent::fpga
