#include "fpga/placement.hpp"

#include <utility>

#include "common/require.hpp"

namespace ringent::fpga {

std::size_t labs_used(std::size_t stages) {
  RINGENT_REQUIRE(stages >= 1, "ring needs at least one stage");
  return (stages + lab_capacity - 1) / lab_capacity;
}

std::vector<Time> distribute_routing(Time mean_per_hop, std::size_t stages,
                                     double crossing_weight) {
  RINGENT_REQUIRE(stages >= 1, "ring needs at least one stage");
  RINGENT_REQUIRE(!mean_per_hop.is_negative(),
                  "routing delay cannot be negative");
  RINGENT_REQUIRE(crossing_weight >= 1.0, "crossing weight must be >= 1");

  // Weight per hop: hop i connects stage i to stage i+1 (cyclically). LAB
  // boundary crossings and the wrap-around net each cost `crossing_weight`
  // within-LAB units. (The wrap is deliberately NOT scaled by the number of
  // LABs spanned: a ring's throughput is bounded by its slowest stage —
  // tokens queue behind it — so a single oversized net would bottleneck the
  // whole ring, which routers avoid by using a fast long line.)
  std::vector<double> weights(stages, 1.0);
  const std::size_t labs = labs_used(stages);
  for (std::size_t i = 0; i + 1 < stages; ++i) {
    if ((i + 1) % lab_capacity == 0) weights[i] = crossing_weight;
  }
  if (labs > 1) weights[stages - 1] = crossing_weight;

  double total = 0.0;
  for (double w : weights) total += w;
  const double scale =
      mean_per_hop.ps() * static_cast<double>(stages) / total;

  std::vector<Time> out;
  out.reserve(stages);
  for (double w : weights) out.push_back(Time::from_ps(w * scale));
  return out;
}

RoutingModel::RoutingModel(std::vector<Point> points)
    : points_(std::move(points)) {
  RINGENT_REQUIRE(!points_.empty(), "routing model needs >= 1 point");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    RINGENT_REQUIRE(!points_[i].per_hop.is_negative(),
                    "routing delay cannot be negative");
    if (i > 0) {
      RINGENT_REQUIRE(points_[i].stages > points_[i - 1].stages,
                      "routing points must be strictly increasing in length");
    }
  }
}

Time RoutingModel::per_hop_delay(std::size_t stages) const {
  RINGENT_REQUIRE(stages >= 1, "ring needs at least one stage");
  if (stages <= points_.front().stages) return points_.front().per_hop;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (stages <= points_[i].stages) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      const double frac = static_cast<double>(stages - a.stages) /
                          static_cast<double>(b.stages - a.stages);
      const double ps =
          a.per_hop.ps() + frac * (b.per_hop.ps() - a.per_hop.ps());
      return Time::from_ps(ps);
    }
  }
  // Extrapolate with the last segment's slope; never below zero.
  if (points_.size() == 1) return points_.back().per_hop;
  const auto& a = points_[points_.size() - 2];
  const auto& b = points_.back();
  const double slope = (b.per_hop.ps() - a.per_hop.ps()) /
                       static_cast<double>(b.stages - a.stages);
  const double ps =
      b.per_hop.ps() + slope * static_cast<double>(stages - b.stages);
  return Time::from_ps(ps < 0.0 ? 0.0 : ps);
}

}  // namespace ringent::fpga
