// Memoized delay-law scale factors for one (Supply, VoltageLaws) pair.
//
// The ring hot loops used to query Supply::operating_point_at and evaluate
// three DelayVoltageLaw::scale divisions on every event. Both are pure
// functions of (supply state, query time), so their results are cacheable
// with exact invalidation:
//
//  * the Supply bumps a generation counter on every setter call, and
//  * a time-invariant supply (no modulation waveform, no regulator ripple —
//    the common case: every static voltage/temperature sweep) yields the
//    same operating point for every t, so one computation serves the whole
//    generation.
//
// For a time-varying supply the cache still collapses same-timestamp queries
// (an STR evaluates up to two stages per event time) and otherwise
// recomputes — bit-identical to the uncached path, since the inputs are
// identical. This is deliberately NOT an approximating time-bucket cache:
// fidelity of the supply-tone experiments (paper Sec. IV-B) requires the
// exact per-event voltage.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "fpga/delay_model.hpp"
#include "fpga/supply.hpp"

namespace ringent::fpga {

class SupplyScaleCache {
 public:
  struct Scales {
    double lut = 1.0;
    double routing = 1.0;
    double charlie = 1.0;
  };

  /// Either both null (fixed nominal: at() always returns unit scales) or
  /// both non-null; the referents must outlive the cache.
  SupplyScaleCache(const Supply* supply, const VoltageLaws* laws)
      : supply_(supply), laws_(laws) {}

  /// Scale factors at absolute time `now` — exactly what evaluating the
  /// three laws at supply->operating_point_at(now) returns.
  const Scales& at(Time now) {
    if (supply_ == nullptr) return scales_;
    const std::uint64_t generation = supply_->generation();
    if (generation != cached_generation_) {
      cached_generation_ = generation;
      invariant_ = supply_->time_invariant();
      refresh(now);
    } else if (!invariant_ && now.fs() != cached_at_fs_) {
      refresh(now);
    }
    return scales_;
  }

 private:
  void refresh(Time now) {
    cached_at_fs_ = now.fs();
    const OperatingPoint op = supply_->operating_point_at(now);
    scales_.lut = laws_->lut.scale(op);
    scales_.routing = laws_->routing.scale(op);
    scales_.charlie = laws_->charlie.scale(op);
  }

  const Supply* supply_;
  const VoltageLaws* laws_;
  Scales scales_{};
  std::uint64_t cached_generation_ = ~std::uint64_t{0};
  std::int64_t cached_at_fs_ = 0;
  bool invariant_ = false;
};

}  // namespace ringent::fpga
