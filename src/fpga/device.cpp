#include "fpga/device.hpp"

#include "common/require.hpp"

namespace ringent::fpga {

Board::Board(std::uint64_t master_seed, unsigned board_index,
             const ProcessParams& params)
    : board_seed_(derive_seed(master_seed, "board", board_index)),
      index_(board_index),
      params_(params) {
  RINGENT_REQUIRE(params.global_sigma >= 0.0 && params.lut_mismatch_sigma >= 0.0,
                  "process sigmas must be non-negative");
  Xoshiro256 rng(derive_seed(board_seed_, "global"));
  global_factor_ = 1.0 + params_.global_sigma * rng.normal();
  RINGENT_REQUIRE(global_factor_ > 0.0, "degenerate global process factor");
}

double Board::lut_factor(std::size_t lut_index) const {
  Xoshiro256 rng(derive_seed(board_seed_, "lut", lut_index));
  const double f = 1.0 + params_.lut_mismatch_sigma * rng.normal();
  RINGENT_REQUIRE(f > 0.0, "degenerate LUT mismatch factor");
  return f;
}

std::uint64_t Board::noise_seed(std::size_t lut_index) const {
  return derive_seed(board_seed_, "noise", lut_index);
}

}  // namespace ringent::fpga
