#include "fpga/delay_model.hpp"

#include "common/require.hpp"

namespace ringent::fpga {

DelayVoltageLaw::DelayVoltageLaw(double v_t, double v_nom,
                                 double temp_coeff_per_c)
    : v_t_(v_t), v_nom_(v_nom), temp_coeff_per_c_(temp_coeff_per_c) {
  RINGENT_REQUIRE(v_nom > v_t, "nominal voltage must exceed the pivot");
}

double DelayVoltageLaw::scale(const OperatingPoint& op) const {
  RINGENT_REQUIRE(op.voltage_v > v_t_,
                  "operating voltage at or below the law's pivot");
  const double voltage_scale = (v_nom_ - v_t_) / (op.voltage_v - v_t_);
  const double temp_scale = 1.0 + temp_coeff_per_c_ * (op.temperature_c - 25.0);
  return voltage_scale * temp_scale;
}

double DelayVoltageLaw::predicted_excursion(double v_lo, double v_hi) const {
  RINGENT_REQUIRE(v_lo < v_hi && v_lo > v_t_, "invalid sweep bounds");
  // F ∝ (V - V_t), so (F_max - F_min)/F_nom telescopes to a ratio of spans.
  return (v_hi - v_lo) / (v_nom_ - v_t_);
}

}  // namespace ringent::fpga
