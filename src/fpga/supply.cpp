#include "fpga/supply.hpp"

#include <cmath>

#include "common/require.hpp"

namespace ringent::fpga {

Json Regulator::to_json() const {
  Json json = Json::object();
  json.set("ac_attenuation", ac_attenuation);
  json.set("ripple_v", ripple_v);
  json.set("ripple_frequency_hz", ripple_frequency_hz);
  return json;
}

Regulator Regulator::from_json(const Json& json) {
  if (!json.is_object()) throw Error("regulator must be a JSON object");
  Regulator regulator;
  for (const auto& [key, value] : json.items()) {
    if (key == "ac_attenuation") {
      regulator.ac_attenuation = value.as_number();
    } else if (key == "ripple_v") {
      regulator.ripple_v = value.as_number();
    } else if (key == "ripple_frequency_hz") {
      regulator.ripple_frequency_hz = value.as_number();
    } else {
      throw Error("unknown regulator key \"" + key + "\"");
    }
  }
  if (!(regulator.ac_attenuation >= 0.0 && regulator.ac_attenuation <= 1.0)) {
    throw Error("ac_attenuation must be in [0, 1]");
  }
  if (regulator.ripple_v < 0.0) throw Error("ripple_v must be non-negative");
  if (regulator.ripple_v > 0.0 && !(regulator.ripple_frequency_hz > 0.0)) {
    throw Error("ripple needs a positive ripple_frequency_hz");
  }
  return regulator;
}

Modulation Modulation::sine(double amplitude_v, double frequency_hz,
                            double phase_rad) {
  RINGENT_REQUIRE(amplitude_v >= 0.0, "negative amplitude");
  RINGENT_REQUIRE(frequency_hz > 0.0, "sine modulation needs frequency > 0");
  Modulation m;
  m.kind = Kind::sine;
  m.amplitude_v = amplitude_v;
  m.frequency_hz = frequency_hz;
  m.phase_rad = phase_rad;
  return m;
}

Modulation Modulation::square(double amplitude_v, double frequency_hz) {
  RINGENT_REQUIRE(amplitude_v >= 0.0, "negative amplitude");
  RINGENT_REQUIRE(frequency_hz > 0.0, "square modulation needs frequency > 0");
  Modulation m;
  m.kind = Kind::square;
  m.amplitude_v = amplitude_v;
  m.frequency_hz = frequency_hz;
  return m;
}

Modulation Modulation::ramp(double amplitude_v, Time ramp_duration) {
  RINGENT_REQUIRE(amplitude_v >= 0.0, "negative amplitude");
  RINGENT_REQUIRE(ramp_duration > Time::zero(), "ramp needs positive duration");
  Modulation m;
  m.kind = Kind::ramp;
  m.amplitude_v = amplitude_v;
  // Encode duration as an equivalent frequency: one full excursion per ramp.
  m.frequency_hz = 1.0 / ramp_duration.seconds();
  return m;
}

double Modulation::value_at(Time t) const {
  switch (kind) {
    case Kind::none:
      return 0.0;
    case Kind::sine:
      return amplitude_v *
             std::sin(2.0 * M_PI * frequency_hz * t.seconds() + phase_rad);
    case Kind::square: {
      const double phase = frequency_hz * t.seconds();
      return (phase - std::floor(phase)) < 0.5 ? amplitude_v : -amplitude_v;
    }
    case Kind::ramp: {
      const double progress = frequency_hz * t.seconds();
      if (progress >= 1.0) return amplitude_v;
      return -amplitude_v + 2.0 * amplitude_v * progress;
    }
  }
  return 0.0;
}

Supply::Supply(double nominal_v) : nominal_v_(nominal_v), level_(nominal_v) {
  RINGENT_REQUIRE(nominal_v > 0.0, "nominal voltage must be positive");
}

void Supply::set_level(double volts) {
  RINGENT_REQUIRE(volts > 0.0, "supply level must be positive");
  level_ = volts;
  ++generation_;
}

double Supply::voltage_at(Time t) const {
  double v = level_;
  v += regulator_.ac_attenuation * modulation_.value_at(t);
  if (regulator_.ripple_v > 0.0) {
    v += regulator_.ripple_v *
         std::sin(2.0 * M_PI * regulator_.ripple_frequency_hz * t.seconds());
  }
  return v;
}

OperatingPoint Supply::operating_point_at(Time t) const {
  return OperatingPoint{voltage_at(t), temperature_c_};
}

}  // namespace ringent::fpga
