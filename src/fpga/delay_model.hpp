// Delay-vs-operating-point laws for FPGA timing arcs.
//
// The paper observes (Fig. 8) that ring frequencies vary *linearly* with core
// voltage between 1.0 V and 1.4 V. A first-order alpha-power law with
// exponent 1,
//
//     D(V) = D_nom * (V_nom - V_t) / (V - V_t),
//
// yields exactly that: F ∝ 1/D ∝ (V - V_t). The fitted pivot V_t controls the
// sensitivity: the normalized excursion for a sweep [V_lo, V_hi] is
// ΔF/F_nom = (V_hi - V_lo)/(V_nom - V_t). Different delay components (LUT
// logic, programmable routing, Charlie-effect magnitude) carry different
// fitted pivots; this is the model ingredient that reproduces the paper's
// Table I trend (see DESIGN.md §1).
//
// A linear temperature derating is included for attack experiments; the paper
// itself holds temperature constant.
#pragma once

#include "common/time.hpp"

namespace ringent::fpga {

/// Operating point of the fabric at one instant.
struct OperatingPoint {
  double voltage_v = 1.2;
  double temperature_c = 25.0;
};

/// One timing arc's dependence on the operating point.
class DelayVoltageLaw {
 public:
  /// `v_t` is the fitted pivot voltage (must be below any operating voltage);
  /// `v_nom` the voltage at which nominal delays are specified;
  /// `temp_coeff_per_c` the relative delay increase per degree C above 25 C.
  DelayVoltageLaw(double v_t, double v_nom, double temp_coeff_per_c = 0.0);

  /// Dimensionless multiplier applied to the nominal delay.
  double scale(const OperatingPoint& op) const;

  /// Normalized frequency excursion this law alone would produce for a sweep
  /// [v_lo, v_hi] around v_nom (the paper's ΔF for a single-component ring).
  double predicted_excursion(double v_lo, double v_hi) const;

  double v_t() const { return v_t_; }
  double v_nom() const { return v_nom_; }

 private:
  double v_t_;
  double v_nom_;
  double temp_coeff_per_c_;
};

/// The set of laws used by one device family.
struct VoltageLaws {
  DelayVoltageLaw lut;      ///< LUT logic delay (strongly voltage sensitive)
  DelayVoltageLaw routing;  ///< programmable interconnect (weaker sensitivity)
  DelayVoltageLaw charlie;  ///< Charlie-effect magnitude
};

}  // namespace ringent::fpga
