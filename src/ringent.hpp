// Umbrella header: the whole public API.
//
// Fine-grained includes are preferred inside the library and its tests;
// downstream quick-starts can simply `#include "ringent.hpp"`.
#pragma once

#include "common/math.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

#include "sim/ascii_wave.hpp"
#include "sim/event_queue.hpp"
#include "sim/kernel.hpp"
#include "sim/probe.hpp"
#include "sim/vcd.hpp"
#include "sim/vcd_read.hpp"

#include "fpga/delay_model.hpp"
#include "fpga/device.hpp"
#include "fpga/placement.hpp"
#include "fpga/supply.hpp"

#include "noise/jitter.hpp"
#include "noise/modulation.hpp"

#include "ring/analytic.hpp"
#include "ring/charlie.hpp"
#include "ring/diagram.hpp"
#include "ring/iro.hpp"
#include "ring/mode.hpp"
#include "ring/str.hpp"
#include "ring/str_logic.hpp"

#include "analysis/allan.hpp"
#include "analysis/autocorr.hpp"
#include "analysis/dual_dirac.hpp"
#include "analysis/entropy.hpp"
#include "analysis/fft.hpp"
#include "analysis/histogram.hpp"
#include "analysis/jitter.hpp"
#include "analysis/normality.hpp"
#include "analysis/periods.hpp"
#include "analysis/regression.hpp"

#include "measure/divider.hpp"
#include "measure/frequency.hpp"
#include "measure/method.hpp"
#include "measure/oscilloscope.hpp"

#include "trng/coherent.hpp"
#include "trng/elementary.hpp"
#include "trng/entropy_model.hpp"
#include "trng/fips.hpp"
#include "trng/health.hpp"
#include "trng/multiring.hpp"
#include "trng/nist.hpp"
#include "trng/phase_trng.hpp"
#include "trng/postproc.hpp"
#include "trng/sampler.hpp"

#include "core/calibration.hpp"
#include "core/experiments.hpp"
#include "core/export.hpp"
#include "core/oscillator.hpp"
#include "core/report.hpp"
#include "core/spec.hpp"
