// Allan deviation of an oscillator's period sequence.
//
// Standard frequency-stability characterization, complementing the paper's
// accumulated-jitter analysis: convert periods to fractional frequency
// deviations y_k = (T_k - T_mean)/T_mean, average them over windows of m
// periods, and take the two-sample (Allan) variance of adjacent window
// means. The log-log slope of sigma_y(tau) identifies the noise type:
//
//     white period noise (the paper's local Gaussian jitter) -> slope -1/2,
//     flicker frequency noise                                -> slope  0,
//     random-walk frequency / deterministic drift            -> slope +1/2.
//
// The extension benches use this to show where the paper's sqrt-law world
// ends once 1/f noise is enabled in the stage model.
#pragma once

#include <cstddef>
#include <vector>

namespace ringent::analysis {

struct AllanPoint {
  std::size_t m = 0;      ///< averaging window, in periods
  double tau_ps = 0.0;    ///< window length in time
  double adev = 0.0;      ///< Allan deviation of fractional frequency
  std::size_t samples = 0;  ///< window pairs entering the estimate
};

/// Overlapping Allan deviation at one window size (m >= 1, needs at least
/// 2m + 1 periods).
AllanPoint allan_deviation(const std::vector<double>& periods_ps,
                           std::size_t m);

/// Allan curve over octave-spaced windows 1, 2, 4, ... while at least
/// `min_pairs` window pairs remain (default 8).
std::vector<AllanPoint> allan_curve(const std::vector<double>& periods_ps,
                                    std::size_t min_pairs = 8);

/// Log-log slope of the curve's tail (least squares over all points):
/// ~-0.5 for white period noise, rising toward 0 with flicker content.
double allan_slope(const std::vector<AllanPoint>& curve);

}  // namespace ringent::analysis
