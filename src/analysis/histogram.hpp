// Histograms with ASCII rendering (the paper's Fig. 9 jitter histograms).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace ringent::analysis {

class Histogram {
 public:
  /// Fixed binning over [lo, hi) with `bins` equal-width bins.
  Histogram(double lo, double hi, std::size_t bins);

  /// Auto binning: range spans the data, bin count by the Rice rule
  /// (2 * n^(1/3)), clamped to [8, 128]. Requires non-empty data with
  /// min < max.
  static Histogram auto_binned(std::span<const double> xs);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const;
  double bin_center(std::size_t i) const;
  std::size_t count(std::size_t i) const { return counts_.at(i); }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Bin counts as fractions of the total.
  std::vector<double> normalized() const;

  /// Multi-line ASCII bar rendering, `width` characters at the tallest bin.
  /// `unit` labels the x axis (e.g. "ps").
  std::string ascii(std::size_t width = 50,
                    const std::string& unit = "") const;

  /// CSV rendering: "bin_center,count,fraction" rows with a header line —
  /// drop into any plotting tool.
  std::string csv() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace ringent::analysis
