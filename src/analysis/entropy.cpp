#include "analysis/entropy.hpp"

#include <cmath>

#include "analysis/autocorr.hpp"
#include "common/require.hpp"

namespace ringent::analysis {

double bit_bias(std::span<const std::uint8_t> bits) {
  RINGENT_REQUIRE(!bits.empty(), "empty bit sequence");
  std::size_t ones = 0;
  for (std::uint8_t b : bits) {
    RINGENT_REQUIRE(b <= 1, "bits must be 0 or 1");
    ones += b;
  }
  return static_cast<double>(ones) / static_cast<double>(bits.size());
}

double shannon_entropy_per_bit(std::span<const std::uint8_t> bits) {
  const double p = bit_bias(bits);
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double block_entropy_per_bit(std::span<const std::uint8_t> bits,
                             unsigned block_bits) {
  RINGENT_REQUIRE(block_bits >= 1 && block_bits <= 16,
                  "block_bits must be in [1,16]");
  RINGENT_REQUIRE(bits.size() >= block_bits * 4, "sequence too short");

  std::vector<std::size_t> counts(std::size_t{1} << block_bits, 0);
  std::size_t total = 0;
  std::uint32_t window = 0;
  const std::uint32_t mask = (1u << block_bits) - 1;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    RINGENT_REQUIRE(bits[i] <= 1, "bits must be 0 or 1");
    window = ((window << 1) | bits[i]) & mask;
    if (i + 1 >= block_bits) {
      ++counts[window];
      ++total;
    }
  }

  double h = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h / static_cast<double>(block_bits);
}

double min_entropy_per_bit(std::span<const std::uint8_t> bits) {
  const double p = bit_bias(bits);
  const double p_max = p > 0.5 ? p : 1.0 - p;
  if (p_max >= 1.0) return 0.0;
  return -std::log2(p_max);
}

double bit_autocorrelation(std::span<const std::uint8_t> bits,
                           std::size_t lag) {
  std::vector<double> xs(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    xs[i] = static_cast<double>(bits[i]);
  }
  return autocorrelation(xs, lag);
}

std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits) {
  RINGENT_REQUIRE(bits.size() % 8 == 0, "bit count must be a multiple of 8");
  std::vector<std::uint8_t> out(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    RINGENT_REQUIRE(bits[i] <= 1, "bits must be 0 or 1");
    out[i / 8] |= static_cast<std::uint8_t>(bits[i] << (i % 8));
  }
  return out;
}

}  // namespace ringent::analysis
