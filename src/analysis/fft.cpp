#include "analysis/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/math.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::analysis {

void fft_inplace(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  RINGENT_REQUIRE(is_power_of_two(n), "FFT size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> magnitude_spectrum(std::span<const double> xs) {
  RINGENT_REQUIRE(xs.size() >= 8, "spectrum needs >= 8 samples");
  const double mean = mean_of(xs);
  const std::size_t n = xs.size();
  const std::size_t padded = next_power_of_two(n);

  std::vector<std::complex<double>> data(padded, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) {
    // Hann window to keep leakage from swamping weak tones.
    const double w =
        0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(i) /
                              static_cast<double>(n - 1)));
    data[i] = {(xs[i] - mean) * w, 0.0};
  }
  fft_inplace(data);

  std::vector<double> mags(padded / 2 + 1);
  for (std::size_t i = 0; i < mags.size(); ++i) mags[i] = std::abs(data[i]);
  return mags;
}

TonePeak find_tone(std::span<const double> xs) {
  const std::vector<double> mags = magnitude_spectrum(xs);
  const std::size_t padded_half = mags.size() - 1;

  TonePeak out;
  std::size_t peak_bin = 1;
  for (std::size_t i = 1; i < mags.size(); ++i) {
    if (mags[i] > out.magnitude) {
      out.magnitude = mags[i];
      peak_bin = i;
    }
  }
  out.frequency_cycles = static_cast<double>(peak_bin) /
                         (2.0 * static_cast<double>(padded_half));

  // Noise floor: median of off-peak bins (exclude a small window round the
  // peak and the DC neighbourhood).
  std::vector<double> floor_bins;
  floor_bins.reserve(mags.size());
  for (std::size_t i = 2; i < mags.size(); ++i) {
    const std::size_t dist = i > peak_bin ? i - peak_bin : peak_bin - i;
    if (dist > 3) floor_bins.push_back(mags[i]);
  }
  const double floor = floor_bins.empty() ? 0.0 : median(floor_bins);
  out.snr = floor > 0.0 ? out.magnitude / floor : 0.0;
  return out;
}

double tone_amplitude(std::span<const double> xs, double frequency_cycles) {
  return fit_tone(xs, frequency_cycles).amplitude;
}

ToneFit fit_tone(std::span<const double> xs, double frequency_cycles) {
  RINGENT_REQUIRE(xs.size() >= 8, "tone projection needs >= 8 samples");
  RINGENT_REQUIRE(frequency_cycles > 0.0 && frequency_cycles < 0.5,
                  "frequency must be in (0, 0.5) cycles/sample");
  const double mean = mean_of(xs);
  double c = 0.0, s = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double phase = 2.0 * M_PI * frequency_cycles * static_cast<double>(i);
    c += (xs[i] - mean) * std::cos(phase);
    s += (xs[i] - mean) * std::sin(phase);
  }
  const double n = static_cast<double>(xs.size());
  ToneFit fit;
  fit.amplitude = 2.0 / n * std::sqrt(c * c + s * s);
  fit.phase_rad = std::atan2(-s, c);
  return fit;
}

std::vector<double> remove_tone(std::span<const double> xs,
                                double frequency_cycles) {
  const ToneFit fit = fit_tone(xs, frequency_cycles);
  const double mean = mean_of(xs);
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double phase =
        2.0 * M_PI * frequency_cycles * static_cast<double>(i) + fit.phase_rad;
    out[i] = xs[i] - mean - fit.amplitude * std::cos(phase);
  }
  return out;
}

}  // namespace ringent::analysis
