// Frequency-noise power spectral density of a period sequence (Welch).
//
// Complements the time-domain metrics: the PSD of the fractional frequency
// y_k = (T_k - T)/T identifies noise types by slope (white FM flat, flicker
// FM ~ 1/f) and exposes correlation structure the variance hides — the
// STR's Charlie anticorrelation appears as a high-pass-shaped S_y(f) (noise
// pushed to high offset frequencies where a downstream PLL or sampler
// averages it away), while an IRO's i.i.d. periods give a flat floor.
//
// Estimator: Welch's method — mean-removed, Hann-windowed, 50%-overlapped
// segments of power-of-two length, averaged periodograms, one-sided
// normalization such that the integral over [0, f_N] equals the variance.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ringent::analysis {

struct SpectrumPoint {
  double frequency = 0.0;  ///< cycles per sample, in (0, 0.5]
  double psd = 0.0;        ///< one-sided PSD of the (dimensionless) input
};

struct WelchOptions {
  std::size_t segment = 1024;  ///< power-of-two segment length
  bool hann = true;
};

/// Welch PSD of an arbitrary series (mean removed). Requires at least one
/// full segment; DC bin is dropped.
std::vector<SpectrumPoint> welch_psd(std::span<const double> xs,
                                     const WelchOptions& options = {});

/// PSD of fractional frequency computed from a period sequence (ps).
std::vector<SpectrumPoint> fractional_frequency_psd(
    std::span<const double> periods_ps, const WelchOptions& options = {});

/// Log-log slope of the PSD between two frequencies (octave-averaged fit):
/// ~0 for white FM, ~-1 for flicker FM, positive for anticorrelated
/// (high-pass) noise.
double psd_slope(const std::vector<SpectrumPoint>& psd, double f_lo = 0.002,
                 double f_hi = 0.4);

}  // namespace ringent::analysis
