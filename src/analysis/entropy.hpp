// Entropy estimators for generated bit sequences (TRNG evaluation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ringent::analysis {

/// Fraction of ones.
double bit_bias(std::span<const std::uint8_t> bits);

/// Shannon entropy per bit of the marginal distribution (1.0 = unbiased).
double shannon_entropy_per_bit(std::span<const std::uint8_t> bits);

/// Shannon entropy per symbol of overlapping `block_bits`-bit patterns,
/// divided by block_bits (entropy rate estimate). block_bits in [1, 16].
double block_entropy_per_bit(std::span<const std::uint8_t> bits,
                             unsigned block_bits);

/// Min-entropy per bit from the most-common-value estimate (NIST SP 800-90B
/// MCV-style, without the confidence correction).
double min_entropy_per_bit(std::span<const std::uint8_t> bits);

/// Lag-`lag` autocorrelation of the bit sequence (bits as 0/1 values).
double bit_autocorrelation(std::span<const std::uint8_t> bits,
                           std::size_t lag);

/// Pack bits (LSB first) into bytes; size must be a multiple of 8.
std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits);

}  // namespace ringent::analysis
