#include "analysis/jitter.hpp"

#include <cmath>

#include "analysis/periods.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::analysis {

JitterSummary summarize_jitter(const std::vector<double>& periods_ps) {
  RINGENT_REQUIRE(periods_ps.size() >= 3, "need at least 3 periods");
  JitterSummary out;
  const SampleStats stats = describe(periods_ps);
  out.mean_period_ps = stats.mean();
  out.period_jitter_ps = stats.stddev();
  out.cycle_to_cycle_jitter_ps =
      describe(first_differences(periods_ps)).stddev();
  out.samples = periods_ps.size();
  return out;
}

double accumulated_jitter_ps(const std::vector<double>& periods_ps,
                             std::size_t m) {
  RINGENT_REQUIRE(m >= 1, "horizon must be >= 1");
  const std::vector<double> grouped = grouped_periods_ps(periods_ps, m);
  RINGENT_REQUIRE(grouped.size() >= 3,
                  "not enough periods for this accumulation horizon");
  return describe(grouped).stddev();
}

std::vector<AccumulationPoint> accumulation_curve(
    const std::vector<double>& periods_ps,
    const std::vector<std::size_t>& horizons) {
  std::vector<AccumulationPoint> out;
  out.reserve(horizons.size());
  for (std::size_t m : horizons) {
    out.push_back(AccumulationPoint{m, accumulated_jitter_ps(periods_ps, m)});
  }
  return out;
}

AccumulationDecomposition decompose_accumulation(
    const std::vector<AccumulationPoint>& curve) {
  RINGENT_REQUIRE(curve.size() >= 2, "need >= 2 accumulation points");
  // Least squares for y = a x1 + b x2 with y = sigma^2, x1 = m, x2 = m^2
  // (no intercept). Normal equations on the 2x2 system.
  double s11 = 0.0, s12 = 0.0, s22 = 0.0, sy1 = 0.0, sy2 = 0.0;
  for (const auto& p : curve) {
    const double x1 = static_cast<double>(p.m);
    const double x2 = x1 * x1;
    const double y = p.sigma_ps * p.sigma_ps;
    s11 += x1 * x1;
    s12 += x1 * x2;
    s22 += x2 * x2;
    sy1 += x1 * y;
    sy2 += x2 * y;
  }
  const double det = s11 * s22 - s12 * s12;
  RINGENT_REQUIRE(std::abs(det) > 1e-30, "degenerate accumulation fit");
  double a = (sy1 * s22 - sy2 * s12) / det;
  double b = (s11 * sy2 - s12 * sy1) / det;
  // Clamp tiny negative estimates caused by sampling noise.
  if (a < 0.0) a = 0.0;
  if (b < 0.0) b = 0.0;

  AccumulationDecomposition out;
  out.random_per_period_ps = std::sqrt(a);
  out.deterministic_per_period_ps = std::sqrt(b);

  // R^2 of the fit on sigma^2.
  double y_mean = 0.0;
  for (const auto& p : curve) y_mean += p.sigma_ps * p.sigma_ps;
  y_mean /= static_cast<double>(curve.size());
  double ss_tot = 0.0, ss_res = 0.0;
  for (const auto& p : curve) {
    const double x1 = static_cast<double>(p.m);
    const double y = p.sigma_ps * p.sigma_ps;
    const double fit = a * x1 + b * x1 * x1;
    ss_tot += (y - y_mean) * (y - y_mean);
    ss_res += (y - fit) * (y - fit);
  }
  out.fit_r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return out;
}

}  // namespace ringent::analysis
