#include "analysis/allan.hpp"

#include <cmath>

#include "analysis/regression.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::analysis {

AllanPoint allan_deviation(const std::vector<double>& periods_ps,
                           std::size_t m) {
  RINGENT_REQUIRE(m >= 1, "window must be >= 1");
  RINGENT_REQUIRE(periods_ps.size() >= 2 * m + 1,
                  "need at least 2m + 1 periods");
  const double mean = describe(periods_ps).mean();
  RINGENT_REQUIRE(mean > 0.0, "period mean must be positive");

  // Prefix sums of fractional frequency for O(1) window means.
  std::vector<double> prefix(periods_ps.size() + 1, 0.0);
  for (std::size_t i = 0; i < periods_ps.size(); ++i) {
    prefix[i + 1] = prefix[i] + (periods_ps[i] - mean) / mean;
  }
  const auto window_mean = [&](std::size_t start) {
    return (prefix[start + m] - prefix[start]) / static_cast<double>(m);
  };

  // Overlapping estimator: adjacent windows at every start offset.
  double sum_sq = 0.0;
  std::size_t pairs = 0;
  for (std::size_t start = 0; start + 2 * m <= periods_ps.size(); ++start) {
    const double d = window_mean(start + m) - window_mean(start);
    sum_sq += d * d;
    ++pairs;
  }

  AllanPoint out;
  out.m = m;
  out.tau_ps = static_cast<double>(m) * mean;
  out.adev = std::sqrt(sum_sq / (2.0 * static_cast<double>(pairs)));
  out.samples = pairs;
  return out;
}

std::vector<AllanPoint> allan_curve(const std::vector<double>& periods_ps,
                                    std::size_t min_pairs) {
  RINGENT_REQUIRE(min_pairs >= 1, "min_pairs must be >= 1");
  std::vector<AllanPoint> out;
  for (std::size_t m = 1; periods_ps.size() >= 2 * m + min_pairs; m *= 2) {
    out.push_back(allan_deviation(periods_ps, m));
  }
  RINGENT_REQUIRE(!out.empty(), "series too short for an Allan curve");
  return out;
}

double allan_slope(const std::vector<AllanPoint>& curve) {
  RINGENT_REQUIRE(curve.size() >= 2, "need >= 2 Allan points");
  std::vector<double> lx, ly;
  lx.reserve(curve.size());
  ly.reserve(curve.size());
  for (const auto& p : curve) {
    RINGENT_REQUIRE(p.adev > 0.0 && p.tau_ps > 0.0, "degenerate Allan point");
    lx.push_back(std::log(p.tau_ps));
    ly.push_back(std::log(p.adev));
  }
  return linear_fit(lx, ly).slope;
}

}  // namespace ringent::analysis
