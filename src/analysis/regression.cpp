#include "analysis/regression.hpp"

#include <cmath>
#include <vector>

#include "common/require.hpp"

namespace ringent::analysis {

namespace {
double r_squared(std::span<const double> ys, std::span<const double> fits) {
  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= static_cast<double>(ys.size());
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ss_tot += (ys[i] - mean) * (ys[i] - mean);
    ss_res += (ys[i] - fits[i]) * (ys[i] - fits[i]);
  }
  return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
}
}  // namespace

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  RINGENT_REQUIRE(xs.size() == ys.size(), "size mismatch");
  RINGENT_REQUIRE(xs.size() >= 2, "need >= 2 points");
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double det = n * sxx - sx * sx;
  RINGENT_REQUIRE(std::abs(det) > 1e-30, "degenerate x values");

  LinearFit out;
  out.slope = (n * sxy - sx * sy) / det;
  out.intercept = (sy - out.slope * sx) / n;

  std::vector<double> fits(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    fits[i] = out.slope * xs[i] + out.intercept;
  }
  out.r2 = r_squared(ys, fits);
  return out;
}

PowerLawFit power_law_fit(std::span<const double> xs,
                          std::span<const double> ys) {
  RINGENT_REQUIRE(xs.size() == ys.size(), "size mismatch");
  RINGENT_REQUIRE(xs.size() >= 2, "need >= 2 points");
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    RINGENT_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                    "power-law fit needs positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const LinearFit lin = linear_fit(lx, ly);
  PowerLawFit out;
  out.exponent = lin.slope;
  out.prefactor = std::exp(lin.intercept);
  out.r2 = lin.r2;
  return out;
}

SqrtLawFit sqrt_law_fit(std::span<const double> xs,
                        std::span<const double> ys) {
  RINGENT_REQUIRE(xs.size() == ys.size(), "size mismatch");
  RINGENT_REQUIRE(!xs.empty(), "need >= 1 point");
  // Minimize sum (y - c sqrt(x))^2  =>  c = sum(y sqrt(x)) / sum(x).
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    RINGENT_REQUIRE(xs[i] >= 0.0, "sqrt-law fit needs x >= 0");
    num += ys[i] * std::sqrt(xs[i]);
    den += xs[i];
  }
  RINGENT_REQUIRE(den > 0.0, "degenerate x values");

  SqrtLawFit out;
  out.coefficient = num / den;
  std::vector<double> fits(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    fits[i] = out.coefficient * std::sqrt(xs[i]);
  }
  out.r2 = r_squared(ys, fits);
  return out;
}

}  // namespace ringent::analysis
