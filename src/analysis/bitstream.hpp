// Packed bit-stream views for the SP 800-90B estimator suite.
//
// The existing estimators in analysis/entropy.hpp take byte-per-bit spans —
// fine for the few-thousand-bit TRNG demos, wasteful for the 90B battery,
// whose suffix-array and dictionary passes want contiguous, cheap-to-index
// storage for hundreds of kilobits per sweep cell. BitStream packs bits into
// 64-bit words (LSB-first within a word), tracks the ones count
// incrementally, and owns the three loader paths untrusted input can arrive
// through (fuzz/fuzz_entropy90b.cpp):
//
//  * from_bits   — byte-per-bit 0/1 values (the simulator's native output);
//  * from_bytes  — packed bytes, LSB-first, with an explicit bit count;
//  * from_ascii  — '0'/'1' text with whitespace ignored (the on-disk vector
//                  format the reference-vector tests commit).
//
// All loaders validate and throw ringent::Error on malformed input; no
// loader has undefined behaviour on any byte sequence.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/require.hpp"

namespace ringent::analysis {

class BitStream {
 public:
  BitStream() = default;

  /// Build from byte-per-bit values; every element must be 0 or 1.
  static BitStream from_bits(std::span<const std::uint8_t> bits) {
    BitStream out;
    out.reserve(bits.size());
    for (std::uint8_t b : bits) {
      RINGENT_REQUIRE(b <= 1, "bits must be 0 or 1");
      out.append(b != 0);
    }
    return out;
  }

  /// Build from packed bytes, LSB-first (bit i lives in bytes[i / 8] at
  /// position i % 8 — the layout analysis::pack_bits emits). `bit_count`
  /// may trim the final byte; it must fit inside `bytes`.
  static BitStream from_bytes(std::span<const std::uint8_t> bytes,
                              std::size_t bit_count) {
    RINGENT_REQUIRE(bit_count <= bytes.size() * 8,
                    "bit count exceeds the packed buffer");
    BitStream out;
    out.reserve(bit_count);
    for (std::size_t i = 0; i < bit_count; ++i) {
      out.append(((bytes[i / 8] >> (i % 8)) & 1) != 0);
    }
    return out;
  }

  /// Build from '0'/'1' text; ASCII whitespace (space, tab, CR, LF) is
  /// skipped, anything else throws. The committed reference vectors use
  /// this format so they stay human-diffable.
  static BitStream from_ascii(std::string_view text) {
    BitStream out;
    out.reserve(text.size());
    for (char c : text) {
      if (c == '0' || c == '1') {
        out.append(c == '1');
      } else if (c != ' ' && c != '\t' && c != '\r' && c != '\n') {
        throw Error("bit stream text must be '0'/'1'/whitespace, got byte " +
                    std::to_string(static_cast<unsigned char>(c)));
      }
    }
    return out;
  }

  void reserve(std::size_t bits) { words_.reserve((bits + 63) / 64); }

  void append(bool bit) {
    const std::size_t word = size_ / 64;
    if (word == words_.size()) words_.push_back(0);
    if (bit) {
      words_[word] |= std::uint64_t{1} << (size_ % 64);
      ++ones_;
    }
    ++size_;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t ones() const { return ones_; }
  std::uint64_t zeros() const { return size_ - ones_; }

  /// Bit at `index` (precondition: index < size()).
  bool bit(std::size_t index) const {
    RINGENT_REQUIRE(index < size_, "bit index out of range");
    return ((words_[index / 64] >> (index % 64)) & 1) != 0;
  }

  /// Unchecked accessor for estimator inner loops.
  bool bit_unchecked(std::size_t index) const {
    return ((words_[index / 64] >> (index % 64)) & 1) != 0;
  }

  /// Byte-per-bit copy (interop with the analysis/entropy.hpp estimators).
  std::vector<std::uint8_t> unpacked() const {
    std::vector<std::uint8_t> out(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      out[i] = bit_unchecked(i) ? 1 : 0;
    }
    return out;
  }

  /// '0'/'1' text (inverse of from_ascii, no whitespace).
  std::string to_ascii() const {
    std::string out(size_, '0');
    for (std::size_t i = 0; i < size_; ++i) {
      if (bit_unchecked(i)) out[i] = '1';
    }
    return out;
  }

  friend bool operator==(const BitStream& a, const BitStream& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.bit_unchecked(i) != b.bit_unchecked(i)) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::uint64_t ones_ = 0;
};

}  // namespace ringent::analysis
