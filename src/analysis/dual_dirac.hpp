// Dual-Dirac jitter decomposition (the industry-standard RJ/DJ model).
//
// Total jitter is modelled as a Gaussian of width RJ convolved with two
// Dirac impulses separated by DJ(dd) — the standard way instruments report
// random vs deterministic jitter and extrapolate total jitter at a BER. For
// the reproduction this complements the accumulation-based decomposition
// (analysis/jitter.hpp): under sinusoidal supply modulation the period
// population is exactly "bounded deterministic + Gaussian", and the fitted
// DJ(dd) tracks the injected tone amplitude while RJ stays at the thermal
// sigma (tests inject known values and recover them).
//
// Estimation: the classic tail-fit. Sort the population; in the Q-scale
// (normal quantile of the empirical CDF, with the 50/50 impulse-weight
// mapping probit(2p)), the extreme tails of a dual-Dirac population are
// straight lines whose slope is RJ and whose intercepts are the Dirac
// positions. We fit both tails by least squares over the outer
// `tail_fraction` of samples.
//
// Convention caveats (inherent to dual-Dirac, tested explicitly): data that
// is NOT two impulses + Gaussian reads systematically — a pure Gaussian
// shows a spurious DJ(dd) ~ 0.9 sigma, and a sinusoidal DJ inflates the RJ
// readout slightly. DJ(dd) is a model parameter for TJ extrapolation, not a
// physical peak-to-peak.
#pragma once

#include <cstddef>
#include <vector>

namespace ringent::analysis {

struct DualDiracFit {
  double rj_sigma_ps = 0.0;   ///< random (Gaussian) component, 1-sigma
  double dj_pp_ps = 0.0;      ///< deterministic component, peak-to-peak (dd)
  double mu_left_ps = 0.0;    ///< left Dirac position
  double mu_right_ps = 0.0;   ///< right Dirac position
  /// Total jitter at the given BER: DJ + 2 Q(BER) RJ.
  double total_jitter_ps(double ber = 1e-12) const;
};

/// Tail-fit the dual-Dirac model to a jitter population (>= 1000 samples;
/// tail_fraction in (0, 0.25], default 2%).
DualDiracFit fit_dual_dirac(std::vector<double> samples_ps,
                            double tail_fraction = 0.02);

}  // namespace ringent::analysis
