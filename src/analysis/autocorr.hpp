// Autocorrelation of period sequences.
//
// The Charlie restoring force implies a testable prediction beyond the paper:
// successive STR periods are *negatively* correlated (a long spacing is
// pulled back, a short one pushed out), whereas IRO periods built from
// i.i.d. stage noise share only the boundary edge (lag-1 coefficient -> the
// small negative value -sigma_edge^2/var(T)).
#pragma once

#include <span>
#include <vector>

namespace ringent::analysis {

/// Sample autocorrelation coefficient at `lag` (biased estimator, the usual
/// normalization by the lag-0 variance). Requires xs.size() > lag + 1.
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Coefficients for lags 1..max_lag.
std::vector<double> autocorrelation_sequence(std::span<const double> xs,
                                             std::size_t max_lag);

/// 95% confidence band for zero correlation: ±1.96/sqrt(n).
double white_noise_band(std::size_t n);

}  // namespace ringent::analysis
