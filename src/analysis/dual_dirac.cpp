#include "analysis/dual_dirac.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/regression.hpp"
#include "common/require.hpp"

namespace ringent::analysis {

namespace {

// Inverse standard-normal CDF via bisection on erfc (robust, and fast
// enough for the few thousand calls a fit makes).
double probit(double p) {
  RINGENT_REQUIRE(p > 0.0 && p < 1.0, "probit argument out of (0,1)");
  double lo = -12.0, hi = 12.0;
  for (int it = 0; it < 100; ++it) {
    const double mid = (lo + hi) / 2.0;
    const double cdf = 0.5 * std::erfc(-mid / std::sqrt(2.0));
    if (cdf < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace

double DualDiracFit::total_jitter_ps(double ber) const {
  RINGENT_REQUIRE(ber > 0.0 && ber < 0.5, "BER out of range");
  const double q = -probit(ber);  // positive tail multiplier
  return dj_pp_ps + 2.0 * q * rj_sigma_ps;
}

DualDiracFit fit_dual_dirac(std::vector<double> samples_ps,
                            double tail_fraction) {
  RINGENT_REQUIRE(samples_ps.size() >= 1000, "need >= 1000 samples");
  RINGENT_REQUIRE(tail_fraction > 0.0 && tail_fraction <= 0.25,
                  "tail fraction out of (0, 0.25]");
  std::sort(samples_ps.begin(), samples_ps.end());
  const std::size_t n = samples_ps.size();
  const auto tail = static_cast<std::size_t>(
      std::max(20.0, tail_fraction * static_cast<double>(n)));
  RINGENT_REQUIRE(tail * 2 < n, "tails overlap; use more samples");

  // Left tail: the dual-Dirac model puts half the population on each
  // impulse, so the total CDF at the far-left is half the left Gaussian's
  // CDF: x = mu_left + RJ * probit(2 * CDF_total). (Without the factor of 2
  // the fit underestimates DJ by ~sigma/4 — the textbook pitfall.)
  std::vector<double> qs, xs;
  qs.reserve(tail);
  xs.reserve(tail);
  for (std::size_t i = 0; i < tail; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    qs.push_back(probit(2.0 * p));
    xs.push_back(samples_ps[i]);
  }
  const LinearFit left = linear_fit(qs, xs);

  qs.clear();
  xs.clear();
  for (std::size_t i = n - tail; i < n; ++i) {
    const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    qs.push_back(probit(2.0 * p - 1.0));
    xs.push_back(samples_ps[i]);
  }
  const LinearFit right = linear_fit(qs, xs);

  DualDiracFit out;
  // Each tail slope estimates RJ; average them (they should agree for a
  // symmetric Gaussian).
  out.rj_sigma_ps = std::max(0.0, (left.slope + right.slope) / 2.0);
  out.mu_left_ps = left.intercept;
  out.mu_right_ps = right.intercept;
  out.dj_pp_ps = std::max(0.0, right.intercept - left.intercept);
  return out;
}

}  // namespace ringent::analysis
