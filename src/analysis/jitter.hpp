// Jitter metrics (paper Sec. IV).
//
// Definitions follow the paper: the *period jitter* is the standard deviation
// sigma_period of the period population; the *cycle-to-cycle jitter* is the
// standard deviation of differences between successive periods; the
// *accumulated jitter* over m periods is the standard deviation of sums of m
// consecutive periods. For white (random) per-period noise the accumulated
// variance grows linearly in m; deterministic modulation grows quadratically
// — decompose_accumulation() separates the two by fitting
// sigma_acc^2(m) = a m + b m^2 (reference [2] of the paper).
#pragma once

#include <cstddef>
#include <vector>

namespace ringent::analysis {

struct JitterSummary {
  double mean_period_ps = 0.0;
  double period_jitter_ps = 0.0;        ///< sigma of periods
  double cycle_to_cycle_jitter_ps = 0.0;  ///< sigma of successive differences
  std::size_t samples = 0;
};

/// Summary metrics of a period population (>= 3 samples required).
JitterSummary summarize_jitter(const std::vector<double>& periods_ps);

/// sigma of sums of m consecutive non-overlapping periods.
double accumulated_jitter_ps(const std::vector<double>& periods_ps,
                             std::size_t m);

struct AccumulationPoint {
  std::size_t m;
  double sigma_ps;
};

/// Accumulated jitter for each m in `horizons`.
std::vector<AccumulationPoint> accumulation_curve(
    const std::vector<double>& periods_ps,
    const std::vector<std::size_t>& horizons);

struct AccumulationDecomposition {
  double random_per_period_ps = 0.0;  ///< sqrt(a): white component per period
  double deterministic_per_period_ps = 0.0;  ///< sqrt(b): linear-growth part
  double fit_r2 = 0.0;
};

/// Fit sigma^2(m) = a m + b m^2 by least squares on the accumulation curve.
AccumulationDecomposition decompose_accumulation(
    const std::vector<AccumulationPoint>& curve);

}  // namespace ringent::analysis
