// SP 800-90B non-IID min-entropy battery for binary sources.
//
// Implements the six §6.3 estimators that apply to bit streams — most
// common value (§6.3.1), collision (§6.3.2), Markov (§6.3.3), compression
// (§6.3.4), t-tuple (§6.3.5), and longest repeated substring (§6.3.6) —
// plus the §3.1.4 restart-matrix validation (row/column min-entropy and the
// binomial sanity cutoff) and lag-1..k autocorrelation of the stream.
//
// Conventions shared by all estimators:
//  * results are min-entropy per bit, in [0, 1];
//  * each estimator throws ringent::PreconditionError below its documented
//    minimum stream length (listed per function); the estimate_entropy90b()
//    battery instead *skips* under-length estimators, reporting them as -1,
//    so degenerate streams give a defined result rather than an exception;
//  * everything is pure integer/double arithmetic on the input bits —
//    deterministic across platforms and job counts.
//
// Deviations from the NIST reference implementation, for the record:
//  * binary-only (the repo's sources emit bits; no 8-bit path);
//  * t-tuple/LRS tuple widths are capped at kTupleCap (128). On degenerate
//    near-constant streams the true LRS is O(L) long and the NIST tool
//    spends O(L^2); the cap bounds work while leaving estimates unchanged
//    for any stream whose longest 35-times-repeated tuple is shorter —
//    p̂ grows monotonically with width only up to the plateau, and a
//    128-bit repeated tuple already pins the estimate to ~0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bitstream.hpp"
#include "common/json.hpp"

namespace ringent::analysis {

/// 99% two-sided normal quantile used by the §6.3 upper confidence bounds
/// (the reference implementation's ZALPHA).
inline constexpr double kZAlpha = 2.5758293035489008;

/// Width cap for the t-tuple / LRS suffix scan (documented deviation).
inline constexpr std::size_t kTupleCap = 128;

// --- individual estimators (throw PreconditionError when too short) ------

/// §6.3.1 most common value. Requires L >= 2.
double mcv_estimate(const BitStream& s);

/// §6.3.2 collision estimate. Requires L >= 8.
double collision_estimate(const BitStream& s);

/// §6.3.3 Markov estimate (128-step most-likely path). Requires L >= 2.
double markov_estimate(const BitStream& s);

/// §6.3.4 compression estimate (6-bit blocks, 1000-block dictionary).
/// Requires floor(L / 6) >= 1002, i.e. L >= 6012.
double compression_estimate(const BitStream& s);

/// §6.3.5 t-tuple estimate. Requires a tuple that occurs >= 35 times,
/// guaranteed when L >= 69; throws below that.
double t_tuple_estimate(const BitStream& s);

/// §6.3.6 longest repeated substring estimate. Requires L >= 69 and at
/// least one repeated tuple wider than the t-tuple cutoff region.
double lrs_estimate(const BitStream& s);

/// Lag-1..max_lag autocorrelation of the bit stream (biased estimator,
/// normalised by the lag-0 variance; constant streams return all zeros).
/// Requires L > max_lag and max_lag >= 1.
std::vector<double> bit_autocorrelation(const BitStream& s,
                                        std::size_t max_lag);

// --- battery --------------------------------------------------------------

/// JSON-configurable battery spec ("ringent.entropy90b-spec/1"). This is
/// the untrusted-input surface fuzz_entropy90b exercises: from_json
/// validates ranges and throws ringent::Error on anything malformed.
struct Entropy90bConfig {
  bool mcv = true;
  bool collision = true;
  bool markov = true;
  bool compression = true;
  bool t_tuple = true;
  bool lrs = true;
  std::size_t autocorrelation_lags = 8;  ///< 0 disables; <= 64.

  void validate() const;
  Json to_json() const;
  static Entropy90bConfig from_json(const Json& json);
};

/// Battery output. Estimators that were disabled, skipped for length, or
/// (LRS) found no repeated tuple report -1; min_entropy is the minimum
/// over the estimators that ran, or -1 if none ran.
struct Entropy90bResult {
  std::size_t bits = 0;
  double h_mcv = -1.0;
  double h_collision = -1.0;
  double h_markov = -1.0;
  double h_compression = -1.0;
  double h_t_tuple = -1.0;
  double h_lrs = -1.0;
  double min_entropy = -1.0;
  std::vector<double> autocorrelation;

  Json to_json() const;
};

/// Run the configured battery; under-length estimators are skipped (never
/// throw), so this is total over all bit streams including the empty one.
Entropy90bResult estimate_entropy90b(const BitStream& s,
                                     const Entropy90bConfig& config = {});

// --- restart validation (§3.1.4) ------------------------------------------

/// r restarts × c bits collected after each restart, row-major.
struct RestartMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  BitStream bits;  ///< rows * cols bits, row-major.

  /// All rows concatenated (== bits) — the per-restart time series.
  BitStream row_stream() const;
  /// Column-major traversal — the cross-restart series at each offset.
  BitStream column_stream() const;
};

struct RestartValidation {
  double h_row = -1.0;     ///< battery min-entropy of the row stream
  double h_column = -1.0;  ///< battery min-entropy of the column stream
  /// Highest count of any single symbol in a row/column (sanity inputs).
  std::size_t max_row_count = 0;
  std::size_t max_column_count = 0;
  /// §3.1.4.3 binomial cutoffs for alpha = 0.01/2000 at p = 2^-h_initial:
  /// the smallest u with P[Bin(n, p) >= u] <= alpha, n = cols for rows and
  /// n = rows for columns. Sanity passes when every observed count is
  /// strictly below its cutoff.
  std::size_t cutoff_row = 0;
  std::size_t cutoff_column = 0;
  bool sanity_passed = false;
  /// min(h_initial, h_row, h_column) when sane, else 0.
  double validated = 0.0;

  Json to_json() const;
};

/// Validate an initial estimate h_initial against restart data per §3.1.4.
/// Requires a non-degenerate matrix (rows, cols >= 2) and h_initial in
/// [0, 1].
RestartValidation validate_restarts(const RestartMatrix& matrix,
                                    double h_initial,
                                    const Entropy90bConfig& config = {});

}  // namespace ringent::analysis
