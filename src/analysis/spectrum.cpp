#include "analysis/spectrum.hpp"

#include <cmath>
#include <complex>

#include "analysis/fft.hpp"
#include "analysis/regression.hpp"
#include "common/math.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::analysis {

std::vector<SpectrumPoint> welch_psd(std::span<const double> xs,
                                     const WelchOptions& options) {
  RINGENT_REQUIRE(is_power_of_two(options.segment) && options.segment >= 16,
                  "segment must be a power of two >= 16");
  RINGENT_REQUIRE(xs.size() >= options.segment,
                  "series shorter than one segment");
  const std::size_t seg = options.segment;
  const std::size_t hop = seg / 2;  // 50% overlap
  const double mean = mean_of(xs);

  // Window and its power normalization.
  std::vector<double> window(seg, 1.0);
  if (options.hann) {
    for (std::size_t i = 0; i < seg; ++i) {
      window[i] = 0.5 * (1.0 - std::cos(2.0 * M_PI * static_cast<double>(i) /
                                        static_cast<double>(seg - 1)));
    }
  }
  double window_power = 0.0;
  for (double w : window) window_power += w * w;

  std::vector<double> accum(seg / 2, 0.0);
  std::size_t segments = 0;
  std::vector<std::complex<double>> buffer(seg);
  for (std::size_t start = 0; start + seg <= xs.size(); start += hop) {
    for (std::size_t i = 0; i < seg; ++i) {
      buffer[i] = {(xs[start + i] - mean) * window[i], 0.0};
    }
    fft_inplace(buffer);
    for (std::size_t k = 1; k <= seg / 2; ++k) {
      const double mag2 = std::norm(buffer[k]);
      // One-sided: double every bin except Nyquist.
      const double factor = (k == seg / 2) ? 1.0 : 2.0;
      accum[k - 1] += factor * mag2 / window_power;
    }
    ++segments;
  }

  std::vector<SpectrumPoint> out(seg / 2);
  for (std::size_t k = 1; k <= seg / 2; ++k) {
    out[k - 1].frequency =
        static_cast<double>(k) / static_cast<double>(seg);
    out[k - 1].psd = accum[k - 1] / static_cast<double>(segments);
  }
  return out;
}

std::vector<SpectrumPoint> fractional_frequency_psd(
    std::span<const double> periods_ps, const WelchOptions& options) {
  RINGENT_REQUIRE(periods_ps.size() >= options.segment,
                  "series shorter than one segment");
  const double mean = mean_of(periods_ps);
  RINGENT_REQUIRE(mean > 0.0, "period mean must be positive");
  std::vector<double> y(periods_ps.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = (periods_ps[i] - mean) / mean;
  }
  return welch_psd(y, options);
}

double psd_slope(const std::vector<SpectrumPoint>& psd, double f_lo,
                 double f_hi) {
  RINGENT_REQUIRE(f_lo > 0.0 && f_hi > f_lo && f_hi <= 0.5,
                  "bad frequency band");
  // Octave-average before fitting so the dense high-frequency bins do not
  // dominate the least squares.
  std::vector<double> lx, ly;
  double band_lo = f_lo;
  while (band_lo < f_hi) {
    const double band_hi = std::min(band_lo * 2.0, f_hi);
    SampleStats stats;
    for (const auto& p : psd) {
      if (p.frequency >= band_lo && p.frequency < band_hi && p.psd > 0.0) {
        stats.add(p.psd);
      }
    }
    if (stats.count() >= 1) {
      lx.push_back(std::log(std::sqrt(band_lo * band_hi)));
      ly.push_back(std::log(stats.mean()));
    }
    band_lo = band_hi;
  }
  RINGENT_REQUIRE(lx.size() >= 2, "not enough octaves in the band");
  return linear_fit(lx, ly).slope;
}

}  // namespace ringent::analysis
