#include "analysis/periods.hpp"

#include "common/require.hpp"

namespace ringent::analysis {

std::vector<double> periods_ps(const sim::SignalTrace& trace) {
  return periods_ps(trace.rising_edges());
}

std::vector<double> periods_ps(const std::vector<Time>& rising_edges) {
  std::vector<double> out;
  if (rising_edges.size() < 2) return out;
  out.reserve(rising_edges.size() - 1);
  for (std::size_t i = 1; i < rising_edges.size(); ++i) {
    out.push_back((rising_edges[i] - rising_edges[i - 1]).ps());
  }
  return out;
}

std::vector<double> half_periods_ps(const sim::SignalTrace& trace) {
  const auto& transitions = trace.transitions();
  std::vector<double> out;
  if (transitions.size() < 2) return out;
  out.reserve(transitions.size() - 1);
  for (std::size_t i = 1; i < transitions.size(); ++i) {
    out.push_back((transitions[i].at - transitions[i - 1].at).ps());
  }
  return out;
}

double duty_cycle(const sim::SignalTrace& trace) {
  const auto& transitions = trace.transitions();
  double high_ps = 0.0;
  double total_ps = 0.0;
  bool have_cycle = false;
  for (std::size_t i = 1; i < transitions.size(); ++i) {
    const double dt = (transitions[i].at - transitions[i - 1].at).ps();
    // The signal held transitions[i-1].value during this interval.
    if (transitions[i - 1].value) high_ps += dt;
    total_ps += dt;
    have_cycle = true;
  }
  RINGENT_REQUIRE(have_cycle && total_ps > 0.0,
                  "duty cycle needs at least two transitions");
  return high_ps / total_ps;
}

std::vector<double> grouped_periods_ps(const std::vector<double>& periods_ps,
                                       std::size_t group) {
  RINGENT_REQUIRE(group >= 1, "group must be >= 1");
  std::vector<double> out;
  out.reserve(periods_ps.size() / group);
  double acc = 0.0;
  std::size_t in_group = 0;
  for (double p : periods_ps) {
    acc += p;
    if (++in_group == group) {
      out.push_back(acc);
      acc = 0.0;
      in_group = 0;
    }
  }
  return out;
}

std::vector<double> first_differences(const std::vector<double>& xs) {
  std::vector<double> out;
  if (xs.size() < 2) return out;
  out.reserve(xs.size() - 1);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    out.push_back(xs[i] - xs[i - 1]);
  }
  return out;
}

}  // namespace ringent::analysis
