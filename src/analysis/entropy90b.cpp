// SP 800-90B non-IID estimators (binary). See entropy90b.hpp for the
// battery contract and the documented deviations from the NIST reference
// implementation (binary-only, kTupleCap width cap).
//
// Numeric conventions, pinned here because the tests pin them:
//  * confidence bounds use kZAlpha = 2.5758293035489008 (99% two-sided);
//  * collision and compression use the *sample* standard deviation
//    (divide by v - 1), matching §6.3.2 step 3 / §6.3.4 step 5;
//  * the binary collision expectation E(p) from §6.3.2 step 7 —
//    with F(q) = Γ(3, 1/q)·q³·e^{1/q} = q + 2q² + 2q³ — simplifies
//    algebraically to E(p) = 2 + 2p(1-p), so the inverse is closed-form:
//    p = (1 + sqrt(5 - 2·X̄'))/2 for X̄' in [2, 2.5];
//  * compression solves X̄' = G(p) + 63·G(q) by 64-step bisection over
//    p in [1/64, 1], G evaluated in O(L') with incremental powers;
//  * t-tuple/LRS occurrence counts come from one suffix-array + LCP +
//    union-find sweep, descending over width thresholds, so degenerate
//    (near-constant) streams stay O(L log² L) instead of O(L²).
#include "analysis/entropy90b.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/require.hpp"

namespace ringent::analysis {
namespace {

/// min(1, p̂ + Z·sqrt(p̂(1-p̂)/(L-1))) — the §6.3 upper confidence bound.
double upper_bound(double phat, std::size_t length) {
  const double se =
      std::sqrt(phat * (1.0 - phat) / (static_cast<double>(length) - 1.0));
  return std::min(1.0, phat + kZAlpha * se);
}

double entropy_from_probability(double p_u) {
  // + 0.0 folds -log2(1) == -0.0 to +0.0 so serialized results are clean.
  return std::clamp(-std::log2(p_u), 0.0, 1.0) + 0.0;
}

// --- suffix scan for t-tuple / LRS ---------------------------------------

/// q[t] = occurrences of the most common t-tuple; pairs[t] = number of
/// unordered position pairs holding identical t-tuples. Valid for
/// t in [1, cap]; index 0 unused.
struct TupleScan {
  std::size_t cap = 0;
  std::vector<std::uint64_t> q;
  std::vector<std::uint64_t> pairs;
};

std::vector<std::uint32_t> build_suffix_array(const BitStream& s) {
  const std::size_t n = s.size();
  std::vector<std::uint32_t> sa(n), rank(n), next_rank(n);
  for (std::size_t i = 0; i < n; ++i) {
    sa[i] = static_cast<std::uint32_t>(i);
    rank[i] = s.bit_unchecked(i) ? 1 : 0;
  }
  for (std::size_t k = 1;; k *= 2) {
    const auto cmp = [&](std::uint32_t a, std::uint32_t b) {
      if (rank[a] != rank[b]) return rank[a] < rank[b];
      const std::uint32_t ra = a + k < n ? rank[a + k] + 1 : 0;
      const std::uint32_t rb = b + k < n ? rank[b + k] + 1 : 0;
      return ra < rb;
    };
    std::sort(sa.begin(), sa.end(), cmp);
    next_rank[sa[0]] = 0;
    for (std::size_t i = 1; i < n; ++i) {
      next_rank[sa[i]] = next_rank[sa[i - 1]] + (cmp(sa[i - 1], sa[i]) ? 1 : 0);
    }
    rank = next_rank;
    if (rank[sa[n - 1]] == n - 1) break;
  }
  return sa;
}

TupleScan scan_tuples(const BitStream& s) {
  const std::size_t n = s.size();
  TupleScan out;
  out.cap = std::min(kTupleCap, n - 1);
  out.q.assign(out.cap + 1, 1);
  out.pairs.assign(out.cap + 1, 0);

  const std::vector<std::uint32_t> sa = build_suffix_array(s);
  // Inverse permutation, then Kasai's O(n) LCP between SA neighbours.
  std::vector<std::uint32_t> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[sa[i]] = static_cast<std::uint32_t>(i);
  std::vector<std::uint32_t> lcp(n - 1, 0);
  std::size_t h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pos[i] > 0) {
      const std::size_t j = sa[pos[i] - 1];
      while (i + h < n && j + h < n &&
             s.bit_unchecked(i + h) == s.bit_unchecked(j + h)) {
        ++h;
      }
      lcp[pos[i] - 1] = static_cast<std::uint32_t>(h);
      if (h > 0) --h;
    } else {
      h = 0;
    }
  }

  // Suffixes sharing a prefix of length >= t are consecutive in the SA, so
  // the components of the "lcp >= t" adjacency graph are exactly the
  // t-tuple occurrence classes. Sweep t downward, merging edges as their
  // threshold is reached; component sizes give q[t], merged products the
  // pair counts.
  std::vector<std::vector<std::uint32_t>> buckets(out.cap + 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t t = std::min<std::size_t>(lcp[i], out.cap);
    if (t > 0) buckets[t].push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  std::vector<std::uint64_t> size(n, 1);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::uint64_t cur_max = 1;
  std::uint64_t cur_pairs = 0;
  for (std::size_t t = out.cap; t >= 1; --t) {
    for (const std::uint32_t edge : buckets[t]) {
      std::uint32_t a = find(edge);
      std::uint32_t b = find(edge + 1);
      if (size[a] < size[b]) std::swap(a, b);
      cur_pairs += size[a] * size[b];
      parent[b] = a;
      size[a] += size[b];
      cur_max = std::max(cur_max, size[a]);
    }
    out.q[t] = cur_max;
    out.pairs[t] = cur_pairs;
  }
  return out;
}

double t_tuple_from_scan(const TupleScan& scan, std::size_t length) {
  std::size_t t = 0;
  while (t < scan.cap && scan.q[t + 1] >= 35) ++t;  // q is non-increasing
  RINGENT_REQUIRE(t >= 1,
                  "t-tuple estimate needs a tuple occurring at least 35 times");
  double phat = 0.0;
  for (std::size_t i = 1; i <= t; ++i) {
    const double p = static_cast<double>(scan.q[i]) /
                     static_cast<double>(length - i + 1);
    phat = std::max(phat, std::pow(p, 1.0 / static_cast<double>(i)));
  }
  return entropy_from_probability(upper_bound(phat, length));
}

/// -1 when no width lies in [u, v] (e.g. near-constant streams where the
/// 35-occurrence region extends past kTupleCap).
double lrs_from_scan(const TupleScan& scan, std::size_t length) {
  std::size_t u = scan.cap + 1;
  for (std::size_t i = 1; i <= scan.cap; ++i) {
    if (scan.q[i] < 35) {
      u = i;
      break;
    }
  }
  std::size_t v = 0;
  for (std::size_t i = scan.cap; i >= 1; --i) {
    if (scan.pairs[i] > 0) {
      v = i;
      break;
    }
  }
  if (u > v) return -1.0;
  double phat = 0.0;
  for (std::size_t w = u; w <= v; ++w) {
    const double positions = static_cast<double>(length - w + 1);
    const double total_pairs = 0.5 * positions * (positions - 1.0);
    const double pw = static_cast<double>(scan.pairs[w]) / total_pairs;
    phat = std::max(phat, std::pow(pw, 1.0 / static_cast<double>(w)));
  }
  return entropy_from_probability(upper_bound(phat, length));
}

}  // namespace

// --- §6.3.1 most common value ---------------------------------------------

double mcv_estimate(const BitStream& s) {
  RINGENT_REQUIRE(s.size() >= 2, "MCV estimate needs at least 2 bits");
  const double phat = static_cast<double>(std::max(s.ones(), s.zeros())) /
                      static_cast<double>(s.size());
  return entropy_from_probability(upper_bound(phat, s.size()));
}

// --- §6.3.2 collision estimate --------------------------------------------

double collision_estimate(const BitStream& s) {
  RINGENT_REQUIRE(s.size() >= 8, "collision estimate needs at least 8 bits");
  const std::size_t n = s.size();
  // Binary collision times are 2 (immediate repeat) or 3 (the third sample
  // must repeat one of two distinct predecessors).
  std::uint64_t v = 0;
  std::uint64_t sum = 0;
  std::uint64_t sum_sq = 0;
  std::size_t i = 0;
  while (i + 1 < n) {
    std::uint64_t t = 0;
    if (s.bit_unchecked(i) == s.bit_unchecked(i + 1)) {
      t = 2;
    } else if (i + 2 < n) {
      t = 3;
    } else {
      break;
    }
    ++v;
    sum += t;
    sum_sq += t * t;
    i += t;
  }
  RINGENT_REQUIRE(v >= 2, "collision estimate needs at least 2 collisions");
  const double vd = static_cast<double>(v);
  const double mean = static_cast<double>(sum) / vd;
  const double var =
      std::max(0.0, (static_cast<double>(sum_sq) - vd * mean * mean) /
                        (vd - 1.0));
  const double x_prime = mean - kZAlpha * std::sqrt(var) / std::sqrt(vd);
  // Invert E(p) = 2 + 2p(1-p) (see file header) on the bound.
  if (x_prime >= 2.5) return 1.0;
  if (x_prime <= 2.0) return 0.0;
  const double p = 0.5 * (1.0 + std::sqrt(5.0 - 2.0 * x_prime));
  return entropy_from_probability(p);
}

// --- §6.3.3 Markov estimate -----------------------------------------------

double markov_estimate(const BitStream& s) {
  RINGENT_REQUIRE(s.size() >= 2, "Markov estimate needs at least 2 bits");
  const std::size_t n = s.size();
  const double p1_init = static_cast<double>(s.ones()) / static_cast<double>(n);
  const double p0_init = 1.0 - p1_init;

  std::array<std::array<std::uint64_t, 2>, 2> counts{};
  for (std::size_t i = 0; i + 1 < n; ++i) {
    counts[s.bit_unchecked(i) ? 1 : 0][s.bit_unchecked(i + 1) ? 1 : 0]++;
  }
  std::array<std::array<double, 2>, 2> p{};
  for (int a = 0; a < 2; ++a) {
    const std::uint64_t row = counts[a][0] + counts[a][1];
    for (int b = 0; b < 2; ++b) {
      p[a][b] = row > 0 ? static_cast<double>(counts[a][b]) /
                              static_cast<double>(row)
                        : 0.0;
    }
  }

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  const auto lg = [&](double x) { return x > 0.0 ? std::log2(x) : kNegInf; };
  const double l0 = lg(p0_init);
  const double l1 = lg(p1_init);
  const double l00 = lg(p[0][0]);
  const double l01 = lg(p[0][1]);
  const double l10 = lg(p[1][0]);
  const double l11 = lg(p[1][1]);

  // The six most-likely 128-bit sequence shapes (§6.3.3 step 3), in log2:
  // all-zeros, 0101…, 0 then ones, 1 then zeros, 1010…, all-ones.
  const double paths[6] = {
      l0 + 127.0 * l00,
      l0 + 64.0 * l01 + 63.0 * l10,
      l0 + l01 + 126.0 * l11,
      l1 + l10 + 126.0 * l00,
      l1 + 64.0 * l10 + 63.0 * l01,
      l1 + 127.0 * l11,
  };
  double best = kNegInf;
  for (const double path : paths) best = std::max(best, path);
  // Every template hitting a zero-probability factor (e.g. the stream "01",
  // where no 128-step path is realisable from the observed transitions)
  // matches the reference implementation's full-entropy verdict.
  if (best == kNegInf) return 1.0;
  return std::min(1.0, -best / 128.0) + 0.0;  // + 0.0: fold away -0.0
}

// --- §6.3.4 compression estimate ------------------------------------------

double compression_estimate(const BitStream& s) {
  constexpr std::size_t kBlockBits = 6;
  constexpr std::size_t kDictBlocks = 1000;
  const std::size_t blocks = s.size() / kBlockBits;
  RINGENT_REQUIRE(blocks >= kDictBlocks + 2,
                  "compression estimate needs at least 6012 bits");

  std::vector<std::uint16_t> block(blocks);
  for (std::size_t j = 0; j < blocks; ++j) {
    std::uint16_t value = 0;  // MSB-first within the block, as in §6.3.4
    for (std::size_t k = 0; k < kBlockBits; ++k) {
      value = static_cast<std::uint16_t>((value << 1) |
                                         (s.bit_unchecked(j * kBlockBits + k)
                                              ? 1
                                              : 0));
    }
    block[j] = value;
  }

  // dict[b] = most recent 1-based block index where value b appeared.
  std::array<std::size_t, 64> dict{};
  for (std::size_t i = 1; i <= kDictBlocks; ++i) dict[block[i - 1]] = i;

  const std::size_t tested = blocks - kDictBlocks;
  const double kd = static_cast<double>(tested);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = kDictBlocks + 1; i <= blocks; ++i) {
    const std::uint16_t b = block[i - 1];
    const std::size_t dist = dict[b] > 0 ? i - dict[b] : i;
    dict[b] = i;
    const double x = std::log2(static_cast<double>(dist));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kd;
  const double sigma =
      0.5907 * std::sqrt(std::max(0.0, (sum_sq - kd * mean * mean) /
                                           (kd - 1.0)));
  const double x_prime = mean - kZAlpha * sigma / std::sqrt(kd);

  // Expected mean log-distance for parameter p (§6.3.4 step 7), O(blocks)
  // per evaluation via incremental powers of (1-z).
  std::vector<double> log2_of(blocks + 1, 0.0);
  for (std::size_t u = 2; u <= blocks; ++u) {
    log2_of[u] = std::log2(static_cast<double>(u));
  }
  const auto big_g = [&](double z) -> double {
    if (z <= 0.0) return 0.0;
    double power = 1.0;  // (1-z)^(u-1)
    double inner = 0.0;  // z² coefficient
    double tail = 0.0;   // z coefficient (u == t diagonal)
    for (std::size_t u = 1; u <= blocks && power > 0.0; ++u) {
      const double lg = log2_of[u];
      if (u <= kDictBlocks) {
        inner += kd * lg * power;
      } else if (u <= blocks - 1) {
        inner += static_cast<double>(blocks - u) * lg * power;
      }
      if (u >= kDictBlocks + 1) tail += lg * power;
      power *= 1.0 - z;
    }
    return (z * z * inner + z * tail) / kd;
  };
  const auto expected = [&](double p) {
    return big_g(p) + 63.0 * big_g((1.0 - p) / 63.0);
  };

  // expected() decreases in p; bisect for the largest p consistent with
  // the bound. No solution above uniform → full entropy; at or below the
  // deterministic limit → zero.
  double lo = 1.0 / 64.0;
  double hi = 1.0;
  if (x_prime >= expected(lo)) return 1.0;
  if (x_prime <= 0.0) return 0.0;
  for (int iter = 0; iter < 64; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (expected(mid) > x_prime) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::clamp(-std::log2(hi) / static_cast<double>(kBlockBits), 0.0,
                    1.0) +
         0.0;  // fold away -0.0
}

// --- §6.3.5 / §6.3.6 tuple estimates --------------------------------------

double t_tuple_estimate(const BitStream& s) {
  RINGENT_REQUIRE(s.size() >= 69, "t-tuple estimate needs at least 69 bits");
  return t_tuple_from_scan(scan_tuples(s), s.size());
}

double lrs_estimate(const BitStream& s) {
  RINGENT_REQUIRE(s.size() >= 69, "LRS estimate needs at least 69 bits");
  const double h = lrs_from_scan(scan_tuples(s), s.size());
  RINGENT_REQUIRE(h >= 0.0,
                  "LRS estimate needs a repeated tuple wider than the "
                  "35-occurrence region (within the width cap)");
  return h;
}

// --- autocorrelation ------------------------------------------------------

std::vector<double> bit_autocorrelation(const BitStream& s,
                                        std::size_t max_lag) {
  RINGENT_REQUIRE(max_lag >= 1, "autocorrelation needs at least one lag");
  RINGENT_REQUIRE(s.size() > max_lag,
                  "autocorrelation needs more bits than lags");
  const std::size_t n = s.size();
  const double mu = static_cast<double>(s.ones()) / static_cast<double>(n);
  const double c0 = static_cast<double>(s.ones()) * (1.0 - mu) * (1.0 - mu) +
                    static_cast<double>(s.zeros()) * mu * mu;
  std::vector<double> out(max_lag, 0.0);
  if (c0 == 0.0) return out;  // constant stream: defined as zero
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) {
      ck += (static_cast<double>(s.bit_unchecked(i)) - mu) *
            (static_cast<double>(s.bit_unchecked(i + k)) - mu);
    }
    out[k - 1] = ck / c0;
  }
  return out;
}

// --- battery --------------------------------------------------------------

void Entropy90bConfig::validate() const {
  RINGENT_REQUIRE(autocorrelation_lags <= 64,
                  "autocorrelation_lags must be at most 64");
}

Json Entropy90bConfig::to_json() const {
  Json json = Json::object();
  json.set("schema", "ringent.entropy90b-spec/1");
  json.set("mcv", mcv);
  json.set("collision", collision);
  json.set("markov", markov);
  json.set("compression", compression);
  json.set("t_tuple", t_tuple);
  json.set("lrs", lrs);
  json.set("autocorrelation_lags", static_cast<std::uint64_t>(
                                       autocorrelation_lags));
  return json;
}

Entropy90bConfig Entropy90bConfig::from_json(const Json& json) {
  if (!json.is_object()) {
    throw Error("entropy90b spec must be a JSON object");
  }
  Entropy90bConfig config;
  for (const auto& [key, value] : json.items()) {
    if (key == "schema") {
      if (!value.is_string() ||
          value.as_string() != "ringent.entropy90b-spec/1") {
        throw Error("unsupported entropy90b spec schema");
      }
    } else if (key == "mcv") {
      config.mcv = value.as_boolean();
    } else if (key == "collision") {
      config.collision = value.as_boolean();
    } else if (key == "markov") {
      config.markov = value.as_boolean();
    } else if (key == "compression") {
      config.compression = value.as_boolean();
    } else if (key == "t_tuple") {
      config.t_tuple = value.as_boolean();
    } else if (key == "lrs") {
      config.lrs = value.as_boolean();
    } else if (key == "autocorrelation_lags") {
      const std::int64_t lags = value.as_integer();
      if (lags < 0 || lags > 64) {
        throw Error("autocorrelation_lags must be in [0, 64]");
      }
      config.autocorrelation_lags = static_cast<std::size_t>(lags);
    } else {
      throw Error("unknown entropy90b spec key: " + key);
    }
  }
  config.validate();
  return config;
}

Json Entropy90bResult::to_json() const {
  Json json = Json::object();
  json.set("bits", static_cast<std::uint64_t>(bits));
  json.set("h_mcv", h_mcv);
  json.set("h_collision", h_collision);
  json.set("h_markov", h_markov);
  json.set("h_compression", h_compression);
  json.set("h_t_tuple", h_t_tuple);
  json.set("h_lrs", h_lrs);
  json.set("min_entropy", min_entropy);
  Json lags = Json::array();
  for (const double value : autocorrelation) lags.push_back(value);
  json.set("autocorrelation", std::move(lags));
  return json;
}

Entropy90bResult estimate_entropy90b(const BitStream& s,
                                     const Entropy90bConfig& config) {
  config.validate();
  Entropy90bResult result;
  result.bits = s.size();
  const std::size_t n = s.size();
  if (config.mcv && n >= 2) result.h_mcv = mcv_estimate(s);
  if (config.collision && n >= 8) result.h_collision = collision_estimate(s);
  if (config.markov && n >= 2) result.h_markov = markov_estimate(s);
  if (config.compression && n >= 6012) {
    result.h_compression = compression_estimate(s);
  }
  if ((config.t_tuple || config.lrs) && n >= 69) {
    const TupleScan scan = scan_tuples(s);
    if (config.t_tuple) result.h_t_tuple = t_tuple_from_scan(scan, n);
    if (config.lrs) result.h_lrs = lrs_from_scan(scan, n);
  }
  for (const double h :
       {result.h_mcv, result.h_collision, result.h_markov,
        result.h_compression, result.h_t_tuple, result.h_lrs}) {
    if (h >= 0.0 && (result.min_entropy < 0.0 || h < result.min_entropy)) {
      result.min_entropy = h;
    }
  }
  if (config.autocorrelation_lags > 0 && n > 1) {
    const std::size_t lags = std::min(config.autocorrelation_lags, n - 1);
    result.autocorrelation = bit_autocorrelation(s, lags);
  }
  return result;
}

// --- restart validation ---------------------------------------------------

BitStream RestartMatrix::row_stream() const { return bits; }

BitStream RestartMatrix::column_stream() const {
  RINGENT_REQUIRE(bits.size() == rows * cols,
                  "restart matrix bit count mismatch");
  BitStream out;
  out.reserve(bits.size());
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      out.append(bits.bit_unchecked(r * cols + c));
    }
  }
  return out;
}

namespace {

/// Smallest u with P[Bin(n, p) >= u] <= alpha (exact tail via log-gamma).
std::size_t binomial_cutoff(std::size_t n, double p, double alpha) {
  if (p >= 1.0) return n + 1;
  if (p <= 0.0) return 1;
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  const double lg_n = std::lgamma(static_cast<double>(n) + 1.0);
  double tail = 0.0;
  std::vector<double> tails(n + 2, 0.0);
  for (std::size_t j = n + 1; j-- > 0;) {
    const double jd = static_cast<double>(j);
    const double log_pmf = lg_n - std::lgamma(jd + 1.0) -
                           std::lgamma(static_cast<double>(n - j) + 1.0) +
                           jd * log_p + static_cast<double>(n - j) * log_q;
    tail += std::exp(log_pmf);
    tails[j] = tail;
  }
  for (std::size_t u = 0; u <= n + 1; ++u) {
    if (tails[u] <= alpha) return u;
  }
  return n + 1;
}

}  // namespace

Json RestartValidation::to_json() const {
  Json json = Json::object();
  json.set("h_row", h_row);
  json.set("h_column", h_column);
  json.set("max_row_count", static_cast<std::uint64_t>(max_row_count));
  json.set("max_column_count", static_cast<std::uint64_t>(max_column_count));
  json.set("cutoff_row", static_cast<std::uint64_t>(cutoff_row));
  json.set("cutoff_column", static_cast<std::uint64_t>(cutoff_column));
  json.set("sanity_passed", sanity_passed);
  json.set("validated", validated);
  return json;
}

RestartValidation validate_restarts(const RestartMatrix& matrix,
                                    double h_initial,
                                    const Entropy90bConfig& config) {
  RINGENT_REQUIRE(matrix.rows >= 2 && matrix.cols >= 2,
                  "restart matrix must be at least 2x2");
  RINGENT_REQUIRE(matrix.bits.size() == matrix.rows * matrix.cols,
                  "restart matrix bit count mismatch");
  RINGENT_REQUIRE(h_initial >= 0.0 && h_initial <= 1.0,
                  "h_initial must be in [0, 1]");

  RestartValidation v;
  for (std::size_t r = 0; r < matrix.rows; ++r) {
    std::size_t ones = 0;
    for (std::size_t c = 0; c < matrix.cols; ++c) {
      ones += matrix.bits.bit_unchecked(r * matrix.cols + c) ? 1 : 0;
    }
    v.max_row_count =
        std::max(v.max_row_count, std::max(ones, matrix.cols - ones));
  }
  for (std::size_t c = 0; c < matrix.cols; ++c) {
    std::size_t ones = 0;
    for (std::size_t r = 0; r < matrix.rows; ++r) {
      ones += matrix.bits.bit_unchecked(r * matrix.cols + c) ? 1 : 0;
    }
    v.max_column_count =
        std::max(v.max_column_count, std::max(ones, matrix.rows - ones));
  }

  // §3.1.4.3: alpha = 0.01 over 2000 tests (1000 rows + 1000 columns in
  // the reference procedure); reject when any count reaches the cutoff.
  constexpr double kAlpha = 0.01 / 2000.0;
  const double p = std::exp2(-h_initial);
  v.cutoff_row = binomial_cutoff(matrix.cols, p, kAlpha);
  v.cutoff_column = binomial_cutoff(matrix.rows, p, kAlpha);
  v.sanity_passed =
      v.max_row_count < v.cutoff_row && v.max_column_count < v.cutoff_column;

  v.h_row = estimate_entropy90b(matrix.row_stream(), config).min_entropy;
  v.h_column = estimate_entropy90b(matrix.column_stream(), config).min_entropy;

  if (v.sanity_passed) {
    double validated = h_initial;
    if (v.h_row >= 0.0) validated = std::min(validated, v.h_row);
    if (v.h_column >= 0.0) validated = std::min(validated, v.h_column);
    v.validated = validated;
  } else {
    v.validated = 0.0;
  }
  return v;
}

}  // namespace ringent::analysis
