// Period extraction from recorded signal edges.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "sim/probe.hpp"

namespace ringent::analysis {

/// Rising-edge-to-rising-edge periods, in picoseconds.
std::vector<double> periods_ps(const sim::SignalTrace& trace);

/// Periods from an explicit rising-edge timestamp list.
std::vector<double> periods_ps(const std::vector<Time>& rising_edges);

/// Consecutive half-periods (transition-to-transition intervals).
std::vector<double> half_periods_ps(const sim::SignalTrace& trace);

/// Duty cycle = mean high time / mean period; requires >= 2 full cycles.
double duty_cycle(const sim::SignalTrace& trace);

/// Sum groups of `group` consecutive periods (the divided-clock periods of a
/// by-2^n counter, paper Fig. 10, when group = 2^n).
std::vector<double> grouped_periods_ps(const std::vector<double>& periods_ps,
                                       std::size_t group);

/// First differences x[i+1] - x[i] (cycle-to-cycle deltas).
std::vector<double> first_differences(const std::vector<double>& xs);

}  // namespace ringent::analysis
