#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/require.hpp"

namespace ringent::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RINGENT_REQUIRE(hi > lo, "histogram range must be non-empty");
  RINGENT_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

Histogram Histogram::auto_binned(std::span<const double> xs) {
  RINGENT_REQUIRE(!xs.empty(), "auto_binned needs data");
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  RINGENT_REQUIRE(*mx > *mn, "auto_binned needs non-degenerate data");
  const double n = static_cast<double>(xs.size());
  const auto bins = static_cast<std::size_t>(
      std::clamp(2.0 * std::cbrt(n), 8.0, 128.0));
  // Widen the top edge slightly so the maximum lands inside the last bin.
  const double span = *mx - *mn;
  Histogram h(*mn, *mx + span * 1e-9, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / bin_width());
  ++counts_[std::min(i, counts_.size() - 1)];
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_width() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::bin_center(std::size_t i) const {
  RINGENT_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width();
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

std::string Histogram::csv() const {
  std::string out = "bin_center,count,fraction\n";
  const auto fractions = normalized();
  char line[96];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(line, sizeof(line), "%.9g,%zu,%.9g\n", bin_center(i),
                  counts_[i], fractions[i]);
    out += line;
  }
  return out;
}

std::string Histogram::ascii(std::size_t width, const std::string& unit) const {
  const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char label[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(label, sizeof(label), "%12.3f %-4s |",
                  bin_center(i), unit.c_str());
    out += label;
    const std::size_t bar =
        peak == 0 ? 0
                  : (counts_[i] * width + peak / 2) / peak;
    out.append(bar, '#');
    std::snprintf(label, sizeof(label), " %zu\n", counts_[i]);
    out += label;
  }
  return out;
}

}  // namespace ringent::analysis
