// Radix-2 FFT and tone detection.
//
// Used by the Sec. IV-B deterministic-jitter experiment: a sinusoidal supply
// modulation leaves a tone in the period sequence; its amplitude relative to
// the noise floor quantifies how much deterministic jitter each ring type
// lets through.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace ringent::analysis {

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of two.
void fft_inplace(std::vector<std::complex<double>>& data);

/// Magnitude spectrum of a real series: the series is mean-removed,
/// Hann-windowed, zero-padded to the next power of two, transformed, and the
/// one-sided magnitudes (bins 0..N/2) returned.
std::vector<double> magnitude_spectrum(std::span<const double> xs);

struct TonePeak {
  double frequency_cycles = 0.0;  ///< cycles per sample, in [0, 0.5]
  double magnitude = 0.0;
  double snr = 0.0;  ///< peak magnitude over median off-peak magnitude
};

/// Find the strongest non-DC tone of a real series.
TonePeak find_tone(std::span<const double> xs);

/// Magnitude at a known tone frequency (cycles per sample) via a direct
/// Goertzel-style projection — exact frequency, no bin straddling. Returns
/// the amplitude of the best-fit sinusoid at that frequency.
double tone_amplitude(std::span<const double> xs, double frequency_cycles);

struct ToneFit {
  double amplitude = 0.0;
  double phase_rad = 0.0;  ///< x[i] ~ amplitude * cos(2 pi f i + phase)
};

/// Least-squares fit of a sinusoid at a known frequency.
ToneFit fit_tone(std::span<const double> xs, double frequency_cycles);

/// Series with the fitted tone (and mean) subtracted — isolates the residual
/// random jitter under deterministic modulation.
std::vector<double> remove_tone(std::span<const double> xs,
                                double frequency_cycles);

}  // namespace ringent::analysis
