// Least-squares fits used to verify the paper's scaling laws.
#pragma once

#include <span>

namespace ringent::analysis {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// Ordinary least squares y = slope * x + intercept. Needs >= 2 points with
/// distinct x.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

struct PowerLawFit {
  double exponent = 0.0;
  double prefactor = 0.0;
  double r2 = 0.0;  ///< in log-log space
};

/// Fit y = prefactor * x^exponent via OLS on (ln x, ln y). All data must be
/// positive. The paper's Fig. 11 expects exponent ~= 0.5 for the IRO and
/// Fig. 12 expects ~= 0 for the STR.
PowerLawFit power_law_fit(std::span<const double> xs,
                          std::span<const double> ys);

struct SqrtLawFit {
  double coefficient = 0.0;  ///< c in y = c * sqrt(x)
  double r2 = 0.0;
};

/// Fit y = c * sqrt(x) (no intercept): the paper's Eq. 4 with
/// c = sqrt(2) * sigma_g when x is the stage count.
SqrtLawFit sqrt_law_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace ringent::analysis
