// Gaussianity tests for jitter populations (paper Fig. 9 and the hypothesis
// check of the Fig. 10 measurement method).
#pragma once

#include <span>

namespace ringent::analysis {

struct NormalityResult {
  double statistic = 0.0;
  double p_value = 0.0;
  bool gaussian = false;  ///< p_value above the chosen significance level
};

/// Chi-square goodness-of-fit against N(mean, sigma) estimated from the data.
/// Bins are equiprobable under the fitted Gaussian; degrees of freedom are
/// bins - 3 (two estimated parameters). Requires >= 100 samples.
NormalityResult chi_square_normality(std::span<const double> xs,
                                     std::size_t bins = 20,
                                     double significance = 0.01);

/// Jarque-Bera test: JB = n/6 (g1^2 + g2^2/4) ~ chi^2(2) under normality.
/// Requires >= 20 samples.
NormalityResult jarque_bera(std::span<const double> xs,
                            double significance = 0.01);

}  // namespace ringent::analysis
