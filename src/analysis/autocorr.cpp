#include "analysis/autocorr.hpp"

#include <cmath>

#include "common/require.hpp"

namespace ringent::analysis {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  RINGENT_REQUIRE(xs.size() > lag + 1, "series too short for this lag");
  const std::size_t n = xs.size();
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(n);

  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = xs[i] - mean;
    den += d * d;
    if (i + lag < n) num += d * (xs[i + lag] - mean);
  }
  RINGENT_REQUIRE(den > 0.0, "degenerate series");
  return num / den;
}

std::vector<double> autocorrelation_sequence(std::span<const double> xs,
                                             std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag);
  for (std::size_t lag = 1; lag <= max_lag; ++lag) {
    out.push_back(autocorrelation(xs, lag));
  }
  return out;
}

double white_noise_band(std::size_t n) {
  RINGENT_REQUIRE(n >= 2, "need n >= 2");
  return 1.96 / std::sqrt(static_cast<double>(n));
}

}  // namespace ringent::analysis
