#include "analysis/normality.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::analysis {

namespace {
// Inverse standard-normal CDF (Acklam's rational approximation, |err|<1e-9).
double normal_quantile(double p) {
  RINGENT_REQUIRE(p > 0.0 && p < 1.0, "quantile argument out of (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}
}  // namespace

NormalityResult chi_square_normality(std::span<const double> xs,
                                     std::size_t bins, double significance) {
  RINGENT_REQUIRE(xs.size() >= 100, "chi-square normality needs >= 100 samples");
  RINGENT_REQUIRE(bins >= 4, "need at least 4 bins");

  const SampleStats stats = describe(xs);
  const double mean = stats.mean();
  const double sigma = stats.stddev();
  RINGENT_REQUIRE(sigma > 0.0, "degenerate sample for normality test");

  // Equiprobable bin edges under the fitted Gaussian.
  std::vector<double> edges(bins - 1);
  for (std::size_t i = 1; i < bins; ++i) {
    edges[i - 1] =
        mean + sigma * normal_quantile(static_cast<double>(i) /
                                       static_cast<double>(bins));
  }

  std::vector<std::size_t> counts(bins, 0);
  for (double x : xs) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    ++counts[static_cast<std::size_t>(it - edges.begin())];
  }

  const double expected =
      static_cast<double>(xs.size()) / static_cast<double>(bins);
  double chi2 = 0.0;
  for (std::size_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    chi2 += diff * diff / expected;
  }

  NormalityResult out;
  out.statistic = chi2;
  out.p_value = chi_square_sf(chi2, static_cast<double>(bins - 3));
  out.gaussian = out.p_value > significance;
  return out;
}

NormalityResult jarque_bera(std::span<const double> xs, double significance) {
  RINGENT_REQUIRE(xs.size() >= 20, "Jarque-Bera needs >= 20 samples");
  const SampleStats stats = describe(xs);
  const double g1 = stats.skewness();
  const double g2 = stats.excess_kurtosis();
  const double n = static_cast<double>(xs.size());
  NormalityResult out;
  out.statistic = n / 6.0 * (g1 * g1 + g2 * g2 / 4.0);
  out.p_value = chi_square_sf(out.statistic, 2.0);
  out.gaussian = out.p_value > significance;
  return out;
}

}  // namespace ringent::analysis
