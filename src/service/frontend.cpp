#include "service/frontend.hpp"

#include <thread>

#include "sim/telemetry.hpp"

namespace ringent::service {

namespace histo = sim::telemetry;

EntropyService::EntropyService(GeneratorPool& pool, FrontendConfig config)
    : pool_(pool), config_(config) {
  RINGENT_REQUIRE(config.block_bytes >= 1, "block_bytes must be >= 1");
  live_.reserve(pool.slot_count());
  for (std::size_t i = 0; i < pool.slot_count(); ++i) live_.push_back(i);
  block_left_ = config_.block_bytes;
}

bool EntropyService::pop_or_retire(std::size_t slot,
                                   std::span<std::uint8_t> out,
                                   std::size_t& popped) {
  SpscRing& ring = pool_.ring(slot);
  if (histo::enabled()) {
    histo::record(histo::Histogram::service_buffer_depth, ring.size());
  }
  popped = ring.try_pop(out);
  if (popped > 0) return true;
  if (!pool_.exhausted(slot)) return true;  // empty for now, not forever
  // The exhausted flag is set (release) after the producer's final push;
  // one re-poll after the acquire load closes the race.
  popped = ring.try_pop(out);
  return popped > 0;
}

std::size_t EntropyService::acquire(std::span<std::uint8_t> out) {
  const auto start = std::chrono::steady_clock::now();
  std::size_t filled = 0;
  bool waiting = false;
  std::chrono::steady_clock::time_point deadline{};
  while (filled < out.size()) {
    if (live_.empty()) {
      if (filled > 0) break;  // end of stream: deliver what we have
      ++stats_.starvations;
      throw StarvationError("entropy pool starved: all slots exhausted");
    }
    const std::size_t slot = live_[rotation_];
    const std::size_t want = std::min(out.size() - filled, block_left_);
    std::size_t popped = 0;
    if (!pop_or_retire(slot, out.subspan(filled, want), popped)) {
      // Slot drained and exhausted: retire it. The retire point is
      // deterministic — it happens exactly when the slot's (deterministic)
      // total output has been consumed — so the interleave stays identical
      // across worker counts.
      live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(rotation_));
      if (rotation_ >= live_.size()) rotation_ = 0;
      block_left_ = config_.block_bytes;
      continue;
    }
    if (popped == 0) {
      // Live but empty: bounded wait.
      const auto now = std::chrono::steady_clock::now();
      if (!waiting) {
        waiting = true;
        ++stats_.waits;
        deadline = now + config_.wait_budget;
      } else if (now >= deadline) {
        if (filled > 0) break;  // partial; a later call may throw
        ++stats_.starvations;
        throw StarvationError(
            "entropy pool starved: slot produced no bytes within the wait "
            "budget");
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    waiting = false;
    filled += popped;
    block_left_ -= popped;
    if (block_left_ == 0) {
      rotation_ = (rotation_ + 1) % live_.size();
      block_left_ = config_.block_bytes;
    }
  }
  ++stats_.requests;
  stats_.bytes_delivered += filled;
  if (histo::enabled()) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    histo::record(
        histo::Histogram::service_acquire_ns,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }
  return filled;
}

std::vector<std::uint8_t> EntropyService::acquire(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  out.resize(acquire(std::span<std::uint8_t>(out)));
  return out;
}

}  // namespace ringent::service
