// Minimal SHA-256 (FIPS 180-4) for the hash-based conditioner.
//
// The service layer needs a vetted cryptographic compressor the way
// jitterentropy uses SHA-3 in jent_hash_time; the container has no crypto
// library to link, so this is a plain, dependency-free transcription of the
// FIPS 180-4 algorithm. It is used as a conditioning component only — the
// test suite pins the standard vectors ("abc", the empty string, the
// two-block 448-bit message) so the implementation cannot drift.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace ringent::service {

class Sha256 {
 public:
  static constexpr std::size_t digest_size = 32;

  Sha256() { reset(); }

  /// Restart as a fresh hash.
  void reset();

  /// Absorb `bytes` (streaming: any call-boundary chunking gives the same
  /// digest).
  void update(std::span<const std::uint8_t> bytes);

  /// Pad, finalize and return the digest. The object must be reset()
  /// before further use.
  std::array<std::uint8_t, digest_size> finish();

  /// One-shot convenience.
  static std::array<std::uint8_t, digest_size> digest(
      std::span<const std::uint8_t> bytes) {
    Sha256 h;
    h.update(bytes);
    return h.finish();
  }

 private:
  void compress(const std::uint8_t block[64]);

  std::array<std::uint32_t, 8> state_{};
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> pending_{};
  std::size_t pending_size_ = 0;
};

}  // namespace ringent::service
