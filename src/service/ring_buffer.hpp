// Lock-free single-producer/single-consumer byte ring buffer.
//
// The service layer (service/pool.hpp) pairs every generator slot with one
// of these: exactly one worker thread pushes conditioned bytes, exactly one
// front-end thread pops them. Under that contract every operation is
// wait-free — no locks, no CAS loops, just one acquire load of the remote
// cursor and one release store of the local one per call.
//
// Positions are monotone 64-bit counters (they never wrap in any realistic
// run: 2^64 bytes at 10 GB/s is ~58 years); the physical index is
// position & (capacity - 1), which is why the capacity must be a power of
// two. `size()` may be called from either side and returns a conservative
// snapshot: never more than what the producer published, never less than
// what the consumer left.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/require.hpp"

namespace ringent::service {

class SpscRing {
 public:
  /// `capacity` must be a power of two >= 2.
  explicit SpscRing(std::size_t capacity)
      : mask_(capacity - 1), data_(capacity) {
    RINGENT_REQUIRE(capacity >= 2 && std::has_single_bit(capacity),
                    "ring capacity must be a power of two >= 2");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return data_.size(); }

  /// Bytes currently buffered (conservative from either thread).
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  /// Producer side: free space as of this call (only shrinks under the
  /// producer's feet if it pushes; the consumer can only grow it).
  std::size_t free_space() const { return capacity() - size(); }

  /// Producer only. Copy in as much of `bytes` as fits; returns the number
  /// of bytes accepted (0 when full).
  std::size_t try_push(std::span<const std::uint8_t> bytes) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t free = capacity() - static_cast<std::size_t>(tail - head);
    const std::size_t n = bytes.size() < free ? bytes.size() : free;
    if (n == 0) return 0;
    copy_in(tail, bytes.first(n));
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer only. Copy out up to `out.size()` bytes; returns the number
  /// popped (0 when empty).
  std::size_t try_pop(std::span<std::uint8_t> out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t avail = static_cast<std::size_t>(tail - head);
    const std::size_t n = out.size() < avail ? out.size() : avail;
    if (n == 0) return 0;
    copy_out(head, out.first(n));
    head_.store(head + n, std::memory_order_release);
    return n;
  }

 private:
  void copy_in(std::uint64_t pos, std::span<const std::uint8_t> bytes) {
    const std::size_t at = static_cast<std::size_t>(pos) & mask_;
    const std::size_t run = std::min(bytes.size(), data_.size() - at);
    std::memcpy(data_.data() + at, bytes.data(), run);
    if (run < bytes.size()) {
      std::memcpy(data_.data(), bytes.data() + run, bytes.size() - run);
    }
  }

  void copy_out(std::uint64_t pos, std::span<std::uint8_t> out) {
    const std::size_t at = static_cast<std::size_t>(pos) & mask_;
    const std::size_t run = std::min(out.size(), data_.size() - at);
    std::memcpy(out.data(), data_.data() + at, run);
    if (run < out.size()) {
      std::memcpy(out.data() + run, data_.data(), out.size() - run);
    }
  }

  std::size_t mask_;
  std::vector<std::uint8_t> data_;
  // Producer and consumer cursors on separate cache lines so the two
  // threads' stores never false-share.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer position
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer position
};

}  // namespace ringent::service
