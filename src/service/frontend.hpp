// Request front-end of the entropy service: the consumer half.
//
// EntropyService::acquire(out) fills the caller's buffer with conditioned
// bytes drawn from the pool's slot rings. Consumption is a deterministic
// round-robin over the live slots in fixed `block_bytes` units: slot order,
// block size, per-slot stream content and per-slot total length are all
// independent of worker count and scheduling, so the concatenated output is
// bit-identical at any `--jobs` value — the property the cross-jobs identity
// tests pin.
//
// Starvation is explicit, never silent. acquire() returns the number of
// bytes written; a short return means the pool retired (end of stream) or
// the wait budget expired after partial delivery — already-delivered bytes
// are never thrown away. When acquire() can deliver NOTHING — every slot
// retired, or a live slot stayed empty past `wait_budget` (all its
// generators muted/stalled) — it throws StarvationError. It never blocks
// forever, and unconditioned bits are unreachable from this API by
// construction: the rings only ever contain conditioner output.
//
// acquire() is single-consumer: calls must come from one thread at a time
// (the SPSC rings require it). Throughput scaling comes from pool workers,
// not from concurrent acquirers.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "common/require.hpp"
#include "service/pool.hpp"

namespace ringent::service {

/// Thrown when the pool cannot supply bytes: every slot retired, or the
/// bounded wait on a live slot expired.
class StarvationError : public Error {
 public:
  using Error::Error;
};

struct FrontendConfig {
  /// Bytes taken from one slot before rotating to the next. Must divide the
  /// interleave identically at every worker count — any constant works; 64
  /// keeps pops cache-friendly.
  std::size_t block_bytes = 64;
  /// Longest wall-clock wait on one empty-but-live slot before declaring
  /// starvation.
  std::chrono::milliseconds wait_budget{250};
};

struct FrontendStats {
  std::uint64_t requests = 0;        ///< acquire() calls that returned
  std::uint64_t bytes_delivered = 0;
  std::uint64_t starvations = 0;     ///< StarvationError throws
  std::uint64_t waits = 0;           ///< empty-ring wait episodes survived
};

class EntropyService {
 public:
  explicit EntropyService(GeneratorPool& pool, FrontendConfig config = {});

  /// Fill `out` with conditioned bytes; returns the count written (short
  /// only at pool end-of-stream or wait-budget expiry after partial
  /// delivery). Throws StarvationError when nothing can be delivered (see
  /// file comment). Single-consumer.
  std::size_t acquire(std::span<std::uint8_t> out);

  /// Convenience: acquire up to `n` bytes into a fresh vector (sized to
  /// what was actually delivered).
  std::vector<std::uint8_t> acquire(std::size_t n);

  const FrontendStats& stats() const { return stats_; }

  /// Slots still in the rotation (live = not yet retired).
  std::size_t live_slots() const { return live_.size(); }

 private:
  /// Pop up to `out.size()` bytes from slot `slot`; retires it (returns
  /// false) when it is exhausted and drained.
  bool pop_or_retire(std::size_t slot, std::span<std::uint8_t> out,
                     std::size_t& popped);

  GeneratorPool& pool_;
  FrontendConfig config_;
  FrontendStats stats_;
  std::vector<std::size_t> live_;  ///< slot ids still rotating
  std::size_t rotation_ = 0;       ///< index into live_
  std::size_t block_left_ = 0;     ///< bytes left in the current block
};

}  // namespace ringent::service
