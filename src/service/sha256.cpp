#include "service/sha256.hpp"

#include <bit>
#include <cstring>

namespace ringent::service {

namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667u, 0xbb67ae85u, 0x3c6ef372u, 0xa54ff53au,
    0x510e527fu, 0x9b05688cu, 0x1f83d9abu, 0x5be0cd19u,
};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98u, 0x71374491u, 0xb5c0fbcfu, 0xe9b5dba5u, 0x3956c25bu,
    0x59f111f1u, 0x923f82a4u, 0xab1c5ed5u, 0xd807aa98u, 0x12835b01u,
    0x243185beu, 0x550c7dc3u, 0x72be5d74u, 0x80deb1feu, 0x9bdc06a7u,
    0xc19bf174u, 0xe49b69c1u, 0xefbe4786u, 0x0fc19dc6u, 0x240ca1ccu,
    0x2de92c6fu, 0x4a7484aau, 0x5cb0a9dcu, 0x76f988dau, 0x983e5152u,
    0xa831c66du, 0xb00327c8u, 0xbf597fc7u, 0xc6e00bf3u, 0xd5a79147u,
    0x06ca6351u, 0x14292967u, 0x27b70a85u, 0x2e1b2138u, 0x4d2c6dfcu,
    0x53380d13u, 0x650a7354u, 0x766a0abbu, 0x81c2c92eu, 0x92722c85u,
    0xa2bfe8a1u, 0xa81a664bu, 0xc24b8b70u, 0xc76c51a3u, 0xd192e819u,
    0xd6990624u, 0xf40e3585u, 0x106aa070u, 0x19a4c116u, 0x1e376c08u,
    0x2748774cu, 0x34b0bcb5u, 0x391c0cb3u, 0x4ed8aa4au, 0x5b9cca4fu,
    0x682e6ff3u, 0x748f82eeu, 0x78a5636fu, 0x84c87814u, 0x8cc70208u,
    0x90befffau, 0xa4506cebu, 0xbef9a3f7u, 0xc67178f2u,
};

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void Sha256::reset() {
  for (std::size_t i = 0; i < 8; ++i) state_[i] = kInit[i];
  total_bytes_ = 0;
  pending_size_ = 0;
}

void Sha256::compress(const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (std::size_t t = 0; t < 16; ++t) w[t] = load_be32(block + 4 * t);
  for (std::size_t t = 16; t < 64; ++t) {
    const std::uint32_t s0 = std::rotr(w[t - 15], 7) ^
                             std::rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
    const std::uint32_t s1 = std::rotr(w[t - 2], 17) ^
                             std::rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
    w[t] = w[t - 16] + s0 + w[t - 7] + s1;
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (std::size_t t = 0; t < 64; ++t) {
    const std::uint32_t big_s1 =
        std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + big_s1 + ch + kRound[t] + w[t];
    const std::uint32_t big_s0 =
        std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = big_s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> bytes) {
  total_bytes_ += bytes.size();
  std::size_t offset = 0;
  if (pending_size_ > 0) {
    const std::size_t take =
        std::min(bytes.size(), pending_.size() - pending_size_);
    std::memcpy(pending_.data() + pending_size_, bytes.data(), take);
    pending_size_ += take;
    offset = take;
    if (pending_size_ < pending_.size()) return;
    compress(pending_.data());
    pending_size_ = 0;
  }
  while (offset + 64 <= bytes.size()) {
    compress(bytes.data() + offset);
    offset += 64;
  }
  if (offset < bytes.size()) {
    pending_size_ = bytes.size() - offset;
    std::memcpy(pending_.data(), bytes.data() + offset, pending_size_);
  }
}

std::array<std::uint8_t, Sha256::digest_size> Sha256::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_one = 0x80;
  update(std::span<const std::uint8_t>(&pad_one, 1));
  const std::uint8_t zero = 0;
  while (pending_size_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t length_be[8];
  for (std::size_t i = 0; i < 8; ++i) {
    length_be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(length_be, 8));
  std::array<std::uint8_t, digest_size> out{};
  for (std::size_t i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, state_[i]);
  return out;
}

}  // namespace ringent::service
