#include "service/conditioner.hpp"

#include "common/require.hpp"

namespace ringent::service {

namespace {

// CRC-64/XZ polynomial (reflected), the same generator used by xz/liblzma.
constexpr std::uint64_t kCrc64Poly = 0xC96C5795D7870F42ull;

// Non-zero init so an all-zero raw stream still cycles the register.
constexpr std::uint64_t kLfsrInit = 0xFFFFFFFFFFFFFFFFull;

inline std::uint64_t crc64_feed_byte(std::uint64_t state, std::uint8_t byte) {
  state ^= byte;
  for (int bit = 0; bit < 8; ++bit) {
    state = (state >> 1) ^ (kCrc64Poly & (~(state & 1u) + 1));
  }
  return state;
}

}  // namespace

ConditionerKind parse_conditioner_kind(const std::string& name) {
  if (name == "lfsr") return ConditionerKind::lfsr;
  if (name == "hash") return ConditionerKind::hash;
  RINGENT_REQUIRE(false, "unknown conditioner kind: " + name);
}

const char* conditioner_kind_name(ConditionerKind kind) {
  switch (kind) {
    case ConditionerKind::lfsr:
      return "lfsr";
    case ConditionerKind::hash:
      return "hash";
  }
  return "?";
}

LfsrConditioner::LfsrConditioner(std::size_t ratio)
    : ratio_(ratio), state_(kLfsrInit) {
  RINGENT_REQUIRE(ratio >= 1, "lfsr conditioner ratio must be >= 1");
}

void LfsrConditioner::process(std::span<const std::uint8_t> raw,
                              std::vector<std::uint8_t>& out) {
  for (const std::uint8_t byte : raw) {
    state_ = crc64_feed_byte(state_, byte);
    if (++absorbed_ >= ratio_) {
      absorbed_ = 0;
      out.push_back(static_cast<std::uint8_t>(state_ & 0xFFu));
    }
  }
}

void LfsrConditioner::reset() {
  state_ = kLfsrInit;
  absorbed_ = 0;
}

HashConditioner::HashConditioner(std::size_t ratio)
    : ratio_(ratio), block_bytes_(ratio * Sha256::digest_size) {
  RINGENT_REQUIRE(ratio >= 1, "hash conditioner ratio must be >= 1");
  pending_.reserve(block_bytes_);
}

void HashConditioner::process(std::span<const std::uint8_t> raw,
                              std::vector<std::uint8_t>& out) {
  std::size_t offset = 0;
  while (offset < raw.size()) {
    const std::size_t take =
        std::min(raw.size() - offset, block_bytes_ - pending_.size());
    pending_.insert(pending_.end(), raw.begin() + offset,
                    raw.begin() + offset + take);
    offset += take;
    if (pending_.size() == block_bytes_) emit_block(out);
  }
}

void HashConditioner::emit_block(std::vector<std::uint8_t>& out) {
  Sha256 hash;
  hash.update(std::span<const std::uint8_t>(chain_.data(), chain_.size()));
  hash.update(std::span<const std::uint8_t>(pending_.data(), pending_.size()));
  chain_ = hash.finish();
  out.insert(out.end(), chain_.begin(), chain_.end());
  pending_.clear();
}

void HashConditioner::reset() {
  chain_.fill(0);
  pending_.clear();
}

std::unique_ptr<Conditioner> make_conditioner(ConditionerKind kind,
                                              std::size_t ratio) {
  switch (kind) {
    case ConditionerKind::lfsr:
      return std::make_unique<LfsrConditioner>(ratio);
    case ConditionerKind::hash:
      return std::make_unique<HashConditioner>(ratio);
  }
  RINGENT_REQUIRE(false, "unknown conditioner kind");
}

}  // namespace ringent::service
