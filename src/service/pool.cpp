#include "service/pool.hpp"

#include <chrono>

#include "common/require.hpp"
#include "sim/telemetry.hpp"

namespace ringent::service {

namespace histo = sim::telemetry;

GeneratorPool::GeneratorPool(const PoolConfig& config,
                             const SourceFactory& factory)
    : config_(config),
      workers_(config.workers < 1               ? 1
               : config.workers > config.slots ? config.slots
                                               : config.workers) {
  RINGENT_REQUIRE(config.slots >= 1, "pool needs at least one slot");
  RINGENT_REQUIRE(config.raw_bits_per_slot >= 1,
                  "raw bit budget must be >= 1");
  RINGENT_REQUIRE(config.pump_raw_bits >= 8,
                  "pump quantum must cover at least one byte");
  RINGENT_REQUIRE(factory != nullptr, "pool needs a source factory");
  slots_.reserve(config.slots);
  for (std::size_t i = 0; i < config.slots; ++i) {
    auto slot = std::make_unique<Slot>();
    SlotSources sources =
        factory(i, derive_seed(config.seed, "service-slot", i));
    RINGENT_REQUIRE(sources.primary != nullptr,
                    "source factory returned a null primary");
    slot->primary = std::move(sources.primary);
    slot->backup = std::move(sources.backup);
    slot->generator = std::make_unique<trng::ResilientGenerator>(
        *slot->primary, slot->backup.get(), config.policy);
    slot->conditioner =
        make_conditioner(config.conditioner, config.conditioner_ratio);
    slot->ring = std::make_unique<SpscRing>(config.ring_capacity);
    slots_.push_back(std::move(slot));
  }
}

GeneratorPool::~GeneratorPool() { stop(); }

void GeneratorPool::start() {
  RINGENT_REQUIRE(threads_.empty(), "pool already started");
  running_.store(true, std::memory_order_release);
  threads_.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

void GeneratorPool::stop() {
  running_.store(false, std::memory_order_release);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

bool GeneratorPool::pump_slot(Slot& slot) {
  if (slot.exhausted.load(std::memory_order_relaxed)) return false;

  // Flush conditioned bytes the ring could not take last time first, so the
  // stream order is preserved.
  if (!slot.pending_out.empty()) {
    const std::size_t pushed = slot.ring->try_push(slot.pending_out);
    if (pushed > 0) {
      slot.conditioned_bytes += pushed;
      slot.pending_out.erase(slot.pending_out.begin(),
                             slot.pending_out.begin() + pushed);
    }
    if (!slot.pending_out.empty()) return pushed > 0;  // ring still full
  }

  if (slot.done_producing) {
    // Budget spent / generator failed and everything flushed: closing time.
    slot.exhausted.store(true, std::memory_order_release);
    return true;
  }

  auto& gen = *slot.generator;
  const std::uint64_t used = gen.stats().bits_in;
  if (used >= config_.raw_bits_per_slot ||
      gen.state() == trng::DegradationState::failed) {
    slot.done_producing = true;
    return true;  // next pump flushes/exhausts
  }

  // Pull one staging buffer of raw->monitored bytes. The raw cap keeps the
  // per-slot budget exact; the byte cap bounds latency per pump.
  std::uint8_t staging[256];
  const std::uint64_t raw_left = config_.raw_bits_per_slot - used;
  const std::size_t raw_budget =
      raw_left < config_.pump_raw_bits ? static_cast<std::size_t>(raw_left)
                                       : config_.pump_raw_bits;
  const std::size_t got =
      gen.fill_bytes(std::span<std::uint8_t>(staging, sizeof staging),
                     raw_budget);
  const bool consumed_raw = gen.stats().bits_in > used;
  if (got == 0) return consumed_raw;  // muted/relocking: bits burned, no output

  std::vector<std::uint8_t> conditioned;
  slot.conditioner->process(std::span<const std::uint8_t>(staging, got),
                            conditioned);
  if (conditioned.empty()) return true;
  const std::size_t pushed = slot.ring->try_push(conditioned);
  slot.conditioned_bytes += pushed;
  if (pushed < conditioned.size()) {
    slot.pending_out.assign(conditioned.begin() + pushed, conditioned.end());
  }
  return true;
}

void GeneratorPool::worker_main(std::size_t worker_index) {
  while (running_.load(std::memory_order_acquire)) {
    bool progress = false;
    bool all_done = true;
    for (std::size_t i = worker_index; i < slots_.size(); i += workers_) {
      Slot& slot = *slots_[i];
      if (slot.exhausted.load(std::memory_order_relaxed)) continue;
      all_done = false;
      progress |= pump_slot(slot);
    }
    if (all_done) return;
    if (!progress) {
      // Every owned ring is full (or the consumer is behind): back off
      // instead of spinning the memory bus.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

PoolStats GeneratorPool::stats() const {
  PoolStats stats;
  for (const auto& slot : slots_) {
    stats.raw_bits_in += slot->generator->stats().bits_in;
    stats.conditioned_bytes += slot->conditioned_bytes;
    if (slot->generator->state() == trng::DegradationState::failed) {
      ++stats.slots_failed;
    }
    if (slot->exhausted.load(std::memory_order_acquire)) {
      ++stats.slots_exhausted;
    }
  }
  return stats;
}

PrngBitSource::PrngBitSource(std::uint64_t seed) : seed_(seed), rng_(seed) {}

std::uint8_t PrngBitSource::next_bit() {
  if (bits_left_ == 0) {
    word_ = rng_.next();
    bits_left_ = 64;
  }
  const std::uint8_t bit = static_cast<std::uint8_t>(word_ & 1u);
  word_ >>= 1;
  --bits_left_;
  return bit;
}

void PrngBitSource::restart(std::uint64_t attempt) {
  rng_ = Xoshiro256(derive_seed(seed_, "restart", attempt));
  word_ = 0;
  bits_left_ = 0;
}

}  // namespace ringent::service
