// Pluggable conditioning stage for the entropy service layer.
//
// Raw ring-oscillator bits carry bias and short-range correlation (Saarinen,
// arXiv:2102.02196); a production TRNG therefore compresses raw bits through
// a conditioning component before emission. This module provides the two
// families the issue calls for:
//
//  * LfsrConditioner — a CRC-64 Galois shift register in the style of the
//    neoTRNG conditioning stage: every raw byte is folded into a 64-bit LFSR
//    state and one output byte is tapped per `ratio` raw bytes.
//  * HashConditioner — chained SHA-256 in the style of jitterentropy: each
//    block of `ratio * 32` raw bytes is absorbed together with the previous
//    digest, and the 32-byte digest is emitted.
//
// Both are deterministic functions of the raw byte stream and are pinned
// bit-exact by golden vectors in tests/test_service.cpp. Both are streaming:
// feeding the same bytes in different chunkings yields the same output.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "service/sha256.hpp"

namespace ringent::service {

enum class ConditionerKind {
  lfsr,  ///< CRC-64 Galois shift register, light-weight
  hash,  ///< chained SHA-256, full cryptographic conditioning
};

/// Parse "lfsr" / "hash" (throws PreconditionError otherwise).
ConditionerKind parse_conditioner_kind(const std::string& name);
const char* conditioner_kind_name(ConditionerKind kind);

/// Streaming conditioner: raw bytes in, conditioned bytes out. Stateful —
/// output depends on everything absorbed since the last reset().
class Conditioner {
 public:
  virtual ~Conditioner() = default;

  virtual const char* name() const = 0;

  /// Raw bytes consumed per conditioned byte produced (compression ratio).
  virtual std::size_t ratio() const = 0;

  /// Absorb `raw`, appending any completed conditioned bytes to `out`.
  virtual void process(std::span<const std::uint8_t> raw,
                       std::vector<std::uint8_t>& out) = 0;

  /// Forget all absorbed state (fresh stream).
  virtual void reset() = 0;
};

/// CRC-64/XZ Galois LFSR conditioner. Raw bytes are folded into the 64-bit
/// register one at a time; after `ratio` raw bytes the low register byte is
/// emitted. ratio >= 1; ratio 2 halves the rate like a von Neumann-free
/// neoTRNG stage, ratio 1 is a pure whitening pass.
class LfsrConditioner final : public Conditioner {
 public:
  explicit LfsrConditioner(std::size_t ratio = 2);

  const char* name() const override { return "lfsr"; }
  std::size_t ratio() const override { return ratio_; }
  void process(std::span<const std::uint8_t> raw,
               std::vector<std::uint8_t>& out) override;
  void reset() override;

 private:
  std::size_t ratio_;
  std::uint64_t state_;
  std::size_t absorbed_ = 0;  ///< raw bytes since last emitted byte
};

/// Chained SHA-256 conditioner. Collects `ratio * 32` raw bytes, hashes them
/// together with the previous digest (chain), emits the 32-byte digest.
class HashConditioner final : public Conditioner {
 public:
  explicit HashConditioner(std::size_t ratio = 2);

  const char* name() const override { return "hash"; }
  std::size_t ratio() const override { return ratio_; }
  void process(std::span<const std::uint8_t> raw,
               std::vector<std::uint8_t>& out) override;
  void reset() override;

 private:
  void emit_block(std::vector<std::uint8_t>& out);

  std::size_t ratio_;
  std::size_t block_bytes_;
  std::array<std::uint8_t, Sha256::digest_size> chain_{};
  std::vector<std::uint8_t> pending_;
};

std::unique_ptr<Conditioner> make_conditioner(ConditionerKind kind,
                                              std::size_t ratio);

}  // namespace ringent::service
