// Health-monitored generator pool: the producer half of the entropy service.
//
// Each pool *slot* is an independent production line:
//
//   BitSource (primary + backup) -> ResilientGenerator -> Conditioner -> SpscRing
//
// and every slot is owned by exactly one worker thread (slot i belongs to
// worker i % workers), which preserves the single-producer contract of the
// SPSC ring no matter how many workers run. The conditioned byte stream of a
// slot is a pure function of the slot's sources, policy, conditioner and raw
// budget — worker count and scheduling only change *when* bytes appear in
// the ring, never *which* bytes. The front-end (service/frontend.hpp)
// exploits this to deliver bit-identical output at any `--jobs` value.
//
// Every slot has a fixed raw-bit budget (`raw_bits_per_slot`). When the
// budget is spent or the generator latches `failed`, the worker flushes what
// the ring will take and then sets the slot's `exhausted` flag (release
// order, after the final push) so the consumer can distinguish "empty for
// now" from "empty forever".
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "service/conditioner.hpp"
#include "service/ring_buffer.hpp"
#include "trng/resilient.hpp"

namespace ringent::service {

/// The two supervised sources of one slot. `backup` may be null (failover
/// disabled for that slot).
struct SlotSources {
  std::unique_ptr<trng::BitSource> primary;
  std::unique_ptr<trng::BitSource> backup;
};

/// Builds the sources for slot `index`; `seed` is already derived per slot.
using SourceFactory =
    std::function<SlotSources(std::size_t index, std::uint64_t seed)>;

struct PoolConfig {
  std::size_t slots = 4;
  std::size_t workers = 1;           ///< worker threads (clamped to slots)
  std::uint64_t seed = 1;            ///< master seed for per-slot derivation
  std::uint64_t raw_bits_per_slot = 1u << 16;  ///< production budget per slot
  ConditionerKind conditioner = ConditionerKind::lfsr;
  std::size_t conditioner_ratio = 2;
  std::size_t ring_capacity = 4096;  ///< bytes, power of two
  /// Raw bits pulled per pump_slot call. Bounds the producer-side latency:
  /// nothing is pushed to the ring until a pump returns, so a slow
  /// (simulation-rate-limited) source needs a small quantum or the consumer
  /// starves waiting for the first conditioned block. Synthetic sources keep
  /// the large default for throughput.
  std::size_t pump_raw_bits = 4096;
  trng::DegradationPolicy policy{};
};

struct PoolStats {
  std::uint64_t raw_bits_in = 0;         ///< summed over slots
  std::uint64_t conditioned_bytes = 0;   ///< pushed into the rings
  std::uint64_t slots_failed = 0;        ///< latched `failed` before budget
  std::uint64_t slots_exhausted = 0;     ///< finished (budget or failed)
};

class GeneratorPool {
 public:
  GeneratorPool(const PoolConfig& config, const SourceFactory& factory);
  ~GeneratorPool();

  GeneratorPool(const GeneratorPool&) = delete;
  GeneratorPool& operator=(const GeneratorPool&) = delete;

  /// Launch the worker threads. Idempotent-hostile: call exactly once.
  void start();

  /// Stop and join the workers. Safe to call more than once; also runs from
  /// the destructor. Slots keep whatever the rings still hold.
  void stop();

  std::size_t slot_count() const { return slots_.size(); }
  std::size_t worker_count() const { return workers_; }

  /// Consumer-side access to slot `i`'s ring.
  SpscRing& ring(std::size_t i) { return *slots_[i]->ring; }

  /// True once slot `i` will never push another byte (checked with acquire
  /// order — pair with a ring re-poll to close the final-push race).
  bool exhausted(std::size_t i) const {
    return slots_[i]->exhausted.load(std::memory_order_acquire);
  }

  /// Aggregate production counters. Exact only when the workers are
  /// stopped (or all slots exhausted); a live pool gives a racy snapshot.
  PoolStats stats() const;

  /// Per-slot generator (for reports/tests; the degradation census). Only
  /// meaningful once the pool is stopped.
  const trng::ResilientGenerator& generator(std::size_t i) const {
    return *slots_[i]->generator;
  }

 private:
  struct Slot {
    std::unique_ptr<trng::BitSource> primary;
    std::unique_ptr<trng::BitSource> backup;
    std::unique_ptr<trng::ResilientGenerator> generator;
    std::unique_ptr<Conditioner> conditioner;
    std::unique_ptr<SpscRing> ring;
    std::atomic<bool> exhausted{false};
    // Producer-thread private; read by stats() only when quiescent.
    std::uint64_t conditioned_bytes = 0;
    std::vector<std::uint8_t> pending_out;  ///< conditioned, ring was full
    bool done_producing = false;
  };

  /// One production step for `slot`; returns true if any progress was made
  /// (bytes pushed or raw bits consumed).
  bool pump_slot(Slot& slot);
  void worker_main(std::size_t worker_index);

  PoolConfig config_;
  std::size_t workers_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
};

/// Deterministic PRNG-backed bit source for synthetic slots: unbiased i.i.d.
/// bits from xoshiro256**, reseeded by restart attempt. This is what the
/// saturation bench and the cross-jobs identity tests use — real ring
/// sources are simulation-rate-limited, which would measure the oscillator
/// model, not the service layer.
class PrngBitSource final : public trng::BitSource {
 public:
  explicit PrngBitSource(std::uint64_t seed);

  std::uint8_t next_bit() override;
  void restart(std::uint64_t attempt) override;
  std::string_view describe() const override { return "prng-source"; }

 private:
  std::uint64_t seed_;
  Xoshiro256 rng_;
  std::uint64_t word_ = 0;
  std::size_t bits_left_ = 0;
};

}  // namespace ringent::service
