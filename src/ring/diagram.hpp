// Measured Charlie diagram: recover (separation, latency) operating points
// from a running ring's recorded stage traces.
//
// For each firing of stage i at time t, the enabling events are the latest
// preceding transitions of its neighbours (they cannot change between
// enabling and firing — an enabled stage freezes both neighbours). With the
// token-side event at tf (stage i-1) and the bubble-side event at tr (stage
// i+1), the stage's operating point on the Charlie diagram is
//
//     s = (tf - tr)/2,     latency = t - (tf + tr)/2.
//
// A noise-free NT = NB ring collapses onto the apex (0, Ds + Dch); rings
// with other token counts sit at the analytic steady separation
// (ring/analytic.hpp); sweeping NT traces out the whole measured curve —
// the Fig. 7 bench prints it next to the Eq. 3 formula.
#pragma once

#include <cstddef>
#include <vector>

#include "ring/charlie.hpp"
#include "sim/probe.hpp"

namespace ringent::ring {

struct CharliePoint {
  double separation_ps = 0.0;  ///< s, signed
  double latency_ps = 0.0;     ///< output delay measured from mean arrival
  std::size_t stage = 0;
};

/// Extract operating points from per-stage traces (Str built with
/// trace_all_stages). The first `skip_per_stage` firings of every stage are
/// dropped (startup transient where an enabling "event" is the t=0 reset).
/// Requires at least 3 stages of traces.
std::vector<CharliePoint> extract_charlie_points(
    const std::vector<sim::SignalTrace>& stage_traces,
    std::size_t skip_per_stage = 16);

struct BinnedCharliePoint {
  double separation_ps = 0.0;
  double latency_ps = 0.0;  ///< mean latency of the bin
  std::size_t count = 0;
};

/// Average measured latency in separation bins of width `bin_ps` — the
/// measured Charlie curve. Bins with fewer than `min_count` points are
/// dropped. Returned points are sorted by separation.
std::vector<BinnedCharliePoint> binned_charlie_curve(
    const std::vector<CharliePoint>& points, double bin_ps,
    std::size_t min_count = 5);

struct CharlieFit {
  CharlieParams params{Time::from_ps(1.0), Time::from_ps(1.0), Time::zero()};
  double rms_residual_ps = 0.0;
};

/// Recover (D_mean, Dch, s0) from measured operating points by fitting
/// Eq. 3: latency = D_mean + sqrt(Dch^2 + (s - s0)^2). For fixed D_mean the
/// model is linear in s after squaring, so the fit is a 1-D golden-section
/// search over D_mean with a closed-form inner regression — no initial
/// guess needed. This is how one would characterize a real device from the
/// diagram extraction: simulate/measure at several NT (different steady
/// separations), extract, fit, compare to the datasheet.
/// Requires >= 8 points spanning at least two distinct separations.
CharlieFit fit_charlie(const std::vector<BinnedCharliePoint>& curve);

}  // namespace ringent::ring
