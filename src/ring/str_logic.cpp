#include "ring/str_logic.hpp"

#include "common/require.hpp"

namespace ringent::ring {

namespace {
std::size_t prev_index(std::size_t i, std::size_t n) {
  return i == 0 ? n - 1 : i - 1;
}
std::size_t next_index(std::size_t i, std::size_t n) {
  return i + 1 == n ? 0 : i + 1;
}
}  // namespace

bool has_token(const RingState& state, std::size_t i) {
  RINGENT_REQUIRE(i < state.size(), "stage index out of range");
  return state[i] != state[prev_index(i, state.size())];
}

bool has_bubble(const RingState& state, std::size_t i) {
  return !has_token(state, i);
}

std::size_t token_count(const RingState& state) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (has_token(state, i)) ++n;
  }
  return n;
}

std::size_t bubble_count(const RingState& state) {
  return state.size() - token_count(state);
}

bool stage_enabled(const RingState& state, std::size_t i) {
  return has_token(state, i) && has_bubble(state, next_index(i, state.size()));
}

std::vector<std::size_t> enabled_stages(const RingState& state) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (stage_enabled(state, i)) out.push_back(i);
  }
  return out;
}

RingState fire_stage(const RingState& state, std::size_t i) {
  RINGENT_REQUIRE(stage_enabled(state, i), "firing a disabled stage");
  RingState next = state;
  next[i] = state[prev_index(i, state.size())];
  return next;
}

RingState step_all(const RingState& state) {
  RingState next = state;
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (stage_enabled(state, i)) {
      next[i] = state[prev_index(i, state.size())];
    }
  }
  return next;
}

bool can_oscillate(std::size_t stages, std::size_t tokens) {
  return stages >= 3 && tokens >= 2 && tokens % 2 == 0 && tokens < stages;
}

RingState make_initial_state(std::size_t stages, std::size_t tokens,
                             TokenPlacement placement) {
  RINGENT_REQUIRE(can_oscillate(stages, tokens),
                  "need stages >= 3, tokens positive even, bubbles >= 1");
  // Mark the stages that hold tokens, then integrate: a token at stage i
  // means C_i != C_{i-1}. An even token count makes the cyclic sequence
  // consistent.
  std::vector<bool> token_at(stages, false);
  if (placement == TokenPlacement::clustered) {
    for (std::size_t t = 0; t < tokens; ++t) token_at[t] = true;
  } else {
    for (std::size_t t = 0; t < tokens; ++t) {
      token_at[(t * stages) / tokens] = true;
    }
  }

  RingState state(stages, false);
  bool value = false;
  for (std::size_t i = 0; i < stages; ++i) {
    if (token_at[i]) value = !value;
    state[i] = value;
  }
  return state;
}

std::string token_string(const RingState& state) {
  std::string s;
  s.reserve(state.size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    s.push_back(has_token(state, i) ? 'T' : '.');
  }
  return s;
}

}  // namespace ringent::ring
