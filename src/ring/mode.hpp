// Oscillation-mode classification (paper Sec. II-C.3, Fig. 5).
//
// In the evenly-spaced mode, tokens pass the observed stage with constant
// spacing, so successive output transitions are (nearly) equidistant. In the
// burst mode, a token cluster races past and is followed by a long silence —
// the inter-transition intervals are strongly bimodal. We classify from the
// interval statistics of a recorded trace: coefficient of variation plus the
// spread ratio between the longest and shortest observed interval.
#pragma once

#include <iosfwd>
#include <vector>

#include "common/time.hpp"

namespace ringent::ring {

enum class OscillationMode {
  evenly_spaced,
  burst,
  irregular,  ///< neither clearly uniform nor clearly clustered
};

std::ostream& operator<<(std::ostream& os, OscillationMode mode);

const char* to_string(OscillationMode mode);

struct ModeAnalysis {
  OscillationMode mode = OscillationMode::irregular;
  double interval_cv = 0.0;     ///< stddev/mean of inter-transition intervals
  double spread_ratio = 1.0;    ///< p95 / p5 of intervals
  double mean_interval_ps = 0.0;
  std::size_t intervals = 0;
};

struct ModeThresholds {
  /// Intervals with CV below this are evenly spaced. Dynamic noise
  /// contributes CV ~ sigma_g/interval, orders of magnitude below this.
  double evenly_spaced_cv = 0.15;
  /// CV above this plus a large spread ratio is a burst.
  double burst_cv = 0.40;
  double burst_spread_ratio = 3.0;
};

/// Classify from the transition timestamps of one stage output. Requires at
/// least 8 transitions; fewer yields `irregular` with intervals == count-1.
ModeAnalysis classify_mode(const std::vector<Time>& transition_times,
                           const ModeThresholds& thresholds = {});

struct LockingResult {
  bool locked = false;
  Time lock_time = Time::zero();     ///< time of the first locked window
  std::size_t lock_interval = 0;     ///< index of that window's first interval
};

/// Time until the ring first sustains the evenly-spaced mode: slide a window
/// of `window` intervals over the transitions; the ring is locked at the
/// first window whose interval CV stays below `cv_threshold`. Measures the
/// locking transient of Fig. 5 — relevant to TRNG start-up health checks.
LockingResult time_to_lock(const std::vector<Time>& transition_times,
                           std::size_t window = 64,
                           double cv_threshold = 0.05);

}  // namespace ringent::ring
