#include "ring/diagram.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/require.hpp"

namespace ringent::ring {

namespace {
/// Latest transition time strictly before `t`, or nullopt semantics via
/// bool + value (avoid optional in the hot loop).
bool last_before(const std::vector<sim::Transition>& transitions, Time t,
                 Time& out) {
  const auto it = std::lower_bound(
      transitions.begin(), transitions.end(), t,
      [](const sim::Transition& tr, Time rhs) { return tr.at < rhs; });
  if (it == transitions.begin()) return false;
  out = std::prev(it)->at;
  return true;
}
}  // namespace

std::vector<CharliePoint> extract_charlie_points(
    const std::vector<sim::SignalTrace>& stage_traces,
    std::size_t skip_per_stage) {
  const std::size_t stages = stage_traces.size();
  RINGENT_REQUIRE(stages >= 3, "need traces of at least 3 stages");

  std::vector<CharliePoint> out;
  for (std::size_t i = 0; i < stages; ++i) {
    const auto& mine = stage_traces[i].transitions();
    const auto& prev = stage_traces[(i + stages - 1) % stages].transitions();
    const auto& next = stage_traces[(i + 1) % stages].transitions();
    for (std::size_t k = skip_per_stage; k < mine.size(); ++k) {
      const Time t = mine[k].at;
      Time tf, tr;
      if (!last_before(prev, t, tf) || !last_before(next, t, tr)) continue;
      CharliePoint point;
      point.separation_ps = (tf.ps() - tr.ps()) / 2.0;
      point.latency_ps = t.ps() - (tf.ps() + tr.ps()) / 2.0;
      point.stage = i;
      out.push_back(point);
    }
  }
  return out;
}

std::vector<BinnedCharliePoint> binned_charlie_curve(
    const std::vector<CharliePoint>& points, double bin_ps,
    std::size_t min_count) {
  RINGENT_REQUIRE(bin_ps > 0.0, "bin width must be positive");
  struct Bin {
    double sum_s = 0.0;
    double sum_latency = 0.0;
    std::size_t count = 0;
  };
  std::map<long long, Bin> bins;  // keyed by bin index: iteration is sorted
  for (const auto& p : points) {
    auto& bin = bins[static_cast<long long>(std::floor(p.separation_ps /
                                                       bin_ps))];
    bin.sum_s += p.separation_ps;
    bin.sum_latency += p.latency_ps;
    ++bin.count;
  }
  std::vector<BinnedCharliePoint> out;
  for (const auto& [key, bin] : bins) {
    if (bin.count < min_count) continue;
    BinnedCharliePoint p;
    p.separation_ps = bin.sum_s / static_cast<double>(bin.count);
    p.latency_ps = bin.sum_latency / static_cast<double>(bin.count);
    p.count = bin.count;
    out.push_back(p);
  }
  return out;
}

namespace {

/// Weighted RMS residual of the Eq. 3 fit for a fixed D_mean, with the
/// inner (s0, Dch) regression solved in closed form. Outputs the recovered
/// parameters through the pointers when non-null.
double fit_residual_for_dmean(const std::vector<BinnedCharliePoint>& curve,
                              double d_mean_ps, double* s0_out,
                              double* dch_out) {
  // z = (u - Dm)^2 - s^2 = (Dch^2 + s0^2) - 2 s0 s  ==  a + b s.
  double sw = 0.0, ss = 0.0, ss2 = 0.0, sz = 0.0, ssz = 0.0;
  for (const auto& p : curve) {
    const double w = static_cast<double>(p.count);
    const double u = p.latency_ps - d_mean_ps;
    const double z = u * u - p.separation_ps * p.separation_ps;
    sw += w;
    ss += w * p.separation_ps;
    ss2 += w * p.separation_ps * p.separation_ps;
    sz += w * z;
    ssz += w * p.separation_ps * z;
  }
  const double det = sw * ss2 - ss * ss;
  if (std::abs(det) < 1e-12) return 1e300;
  const double b = (sw * ssz - ss * sz) / det;
  const double a = (sz - b * ss) / sw;
  const double s0 = -b / 2.0;
  const double dch2 = a - s0 * s0;
  const double dch = dch2 > 0.0 ? std::sqrt(dch2) : 0.0;
  if (s0_out != nullptr) *s0_out = s0;
  if (dch_out != nullptr) *dch_out = dch;

  double res = 0.0;
  for (const auto& p : curve) {
    const double model =
        charlie_delay_ps(d_mean_ps, dch, p.separation_ps, s0);
    const double w = static_cast<double>(p.count);
    res += w * (model - p.latency_ps) * (model - p.latency_ps);
  }
  return std::sqrt(res / sw);
}

}  // namespace

CharlieFit fit_charlie(const std::vector<BinnedCharliePoint>& curve) {
  RINGENT_REQUIRE(curve.size() >= 3, "need >= 3 binned points");
  double min_latency = curve.front().latency_ps;
  double s_min = curve.front().separation_ps;
  double s_max = s_min;
  for (const auto& p : curve) {
    min_latency = std::min(min_latency, p.latency_ps);
    s_min = std::min(s_min, p.separation_ps);
    s_max = std::max(s_max, p.separation_ps);
  }
  RINGENT_REQUIRE(s_max - s_min > 1.0,
                  "points must span distinct separations");
  RINGENT_REQUIRE(min_latency > 1.0, "latencies must be positive");

  // Golden-section search for D_mean in (0, min latency).
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 1.0, hi = min_latency - 0.5;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = fit_residual_for_dmean(curve, x1, nullptr, nullptr);
  double f2 = fit_residual_for_dmean(curve, x2, nullptr, nullptr);
  for (int it = 0; it < 120 && hi - lo > 1e-4; ++it) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = fit_residual_for_dmean(curve, x1, nullptr, nullptr);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = fit_residual_for_dmean(curve, x2, nullptr, nullptr);
    }
  }
  const double d_mean = (lo + hi) / 2.0;
  double s0 = 0.0, dch = 0.0;
  const double rms = fit_residual_for_dmean(curve, d_mean, &s0, &dch);

  CharlieFit out;
  // Decompose D_mean/s0 back into Dff/Drr: s0 = (Drr - Dff)/2.
  out.params.d_ff = Time::from_ps(d_mean - s0);
  out.params.d_rr = Time::from_ps(d_mean + s0);
  out.params.d_charlie = Time::from_ps(dch);
  out.rms_residual_ps = rms;
  return out;
}

}  // namespace ringent::ring
