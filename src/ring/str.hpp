// Timed self-timed-ring model (paper Sec. II-B/C, III).
//
// Gate-level event-driven simulation of an L-stage STR. Stage i fires — its
// Muller gate copies C[i-1] into C[i] — when it holds a token and stage i+1
// holds a bubble (see ring/str_logic.hpp for the untimed specification). The
// firing *time* follows the Charlie model: with the token-side input event at
// tf (last change of C[i-1]) and the bubble-side event at tr (last change of
// C[i+1]), the output fires at (tf+tr)/2 + charlie((tf-tr)/2) plus noise,
// routing and modulation terms (ring/charlie.hpp).
//
// Nothing here encodes the paper's results; they emerge:
//  * tokens repel through the Charlie term, locking NT = NB rings into the
//    evenly-spaced mode from arbitrary initial patterns;
//  * clustered tokens with Dch ~ 0 stay clustered (burst mode, Fig. 5);
//  * period jitter is independent of L and ~ sqrt(2)*sigma_g (Fig. 12),
//    while static per-LUT mismatch still averages over all stages (Table II);
//  * deterministic supply modulation is strongly attenuated (Sec. IV-B).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "fpga/delay_model.hpp"
#include "fpga/op_cache.hpp"
#include "fpga/supply.hpp"
#include "noise/jitter.hpp"
#include "noise/modulation.hpp"
#include "ring/charlie.hpp"
#include "ring/str_logic.hpp"
#include "sim/kernel.hpp"
#include "sim/probe.hpp"

namespace ringent::ring {

struct StrConfig {
  std::size_t stages = 8;  ///< L >= 3

  /// Nominal per-stage Charlie parameters at the nominal operating point.
  CharlieParams charlie = CharlieParams::symmetric(Time::from_ps(260.0),
                                                   Time::from_ps(120.0));
  DraftingParams drafting = DraftingParams::disabled();

  Time routing_per_hop = Time::zero();  ///< mean routed delay per hop

  /// Optional per-stage routed delays (e.g. fpga::distribute_routing);
  /// overrides routing_per_hop when non-empty. Entry i is the delay of the
  /// nets feeding stage i. Size must equal `stages`.
  std::vector<Time> routing_per_stage;

  /// Jitter-voltage coupling exponent, as in IroConfig (0 = paper model).
  double jitter_delay_exponent = 0.0;

  /// Per-stage static process factors; size `stages` or empty (all 1.0).
  std::vector<double> stage_factors;

  /// Optional operating-point dependence (provide both or neither); the
  /// referents must outlive the ring.
  const fpga::Supply* supply = nullptr;
  const fpga::VoltageLaws* laws = nullptr;

  /// Optional direct deterministic delay modulation; must outlive the ring.
  const noise::DelayModulation* modulation = nullptr;

  /// Stage whose output is recorded in output(); default stage 0.
  std::size_t observe_stage = 0;

  /// Record every stage (for VCD dumps / token-position analysis). Memory
  /// scales with stages x transitions; keep runs short when enabled.
  bool trace_all_stages = false;
};

class Str final : public sim::Process {
 public:
  /// `initial` must be a valid oscillating pattern (see make_initial_state).
  /// `stage_noise` holds one dynamic noise source per stage, or is empty for
  /// a noise-free ring.
  Str(sim::Kernel& kernel, const StrConfig& config, RingState initial,
      std::vector<std::unique_ptr<noise::NoiseSource>> stage_noise);

  /// Schedule the initially enabled stages; call once before running.
  void start();

  /// Trace of the observed stage.
  sim::SignalTrace& output() { return *output_; }
  const sim::SignalTrace& output() const { return *output_; }

  /// Per-stage traces; only populated when config.trace_all_stages is set.
  const std::vector<sim::SignalTrace>& stage_traces() const { return traces_; }
  std::vector<sim::SignalTrace>& stage_traces() { return traces_; }

  /// Current logical state (token/bubble snapshot).
  const RingState& state() const { return state_; }

  std::size_t stages() const { return config_.stages; }
  std::size_t tokens() const { return tokens_; }
  std::size_t bubbles() const { return config_.stages - tokens_; }

  /// Noise-free evenly-spaced period at the nominal operating point,
  /// T = 2 L (D_mean + Dch + routing) / NT — valid for NT = NB, where the
  /// steady-state separation is zero (paper Sec. III-B).
  Time nominal_period() const;

  void fire(sim::Kernel& kernel, std::uint32_t tag) override;

  /// Total stage firings so far.
  std::uint64_t firings() const { return firings_; }

 private:
  std::size_t prev(std::size_t i) const {
    return i == 0 ? config_.stages - 1 : i - 1;
  }
  std::size_t next(std::size_t i) const {
    return i + 1 == config_.stages ? 0 : i + 1;
  }
  bool enabled(std::size_t i) const;
  void try_schedule(std::size_t i, Time now);

  sim::Kernel& kernel_;
  StrConfig config_;
  CharlieModel charlie_model_;
  RingState state_;
  std::size_t tokens_;
  std::vector<std::unique_ptr<noise::NoiseSource>> stage_noise_;
  std::vector<Time> last_change_;
  std::vector<std::uint8_t> scheduled_;

  // Hot-path precompute (see try_schedule): per-stage products hoisted out
  // of the per-event path in the exact association order of the original
  // expressions — bit-identical, pinned by tests/test_hot_path.cpp.
  std::vector<double> factor_;          ///< per-stage process factor
  std::vector<double> routing_ps_;      ///< per-stage routed delay (ps)
  std::vector<double> extra_base_;      ///< routing_ps_i * factor_i
  std::vector<double> d_mean_scaled_;   ///< D_mean.ps() * factor_i
  std::vector<double> s_offset_scaled_; ///< s0.ps() * factor_i
  std::vector<double> dch_scaled_;      ///< Dch.ps() * factor_i
  double d_mean_nom_ps_ = 0.0;          ///< D_mean.ps() (supply path)
  double s_offset_nom_ps_ = 0.0;
  double dch_nom_ps_ = 0.0;
  std::vector<noise::BlockSampler> noise_;  ///< block-buffered stage noise
  fpga::SupplyScaleCache scale_cache_;
  double noise_scale_key_ = 1.0;  ///< voltage-scale quotient of the memo
  double noise_scale_ = 1.0;      ///< pow(noise_scale_key_, gamma)
  std::vector<sim::SignalTrace> traces_;
  sim::SignalTrace* output_;
  sim::SignalTrace observe_trace_;
  sim::NodeId node_ = sim::invalid_node;
  std::uint64_t firings_ = 0;
  bool started_ = false;
};

}  // namespace ringent::ring
