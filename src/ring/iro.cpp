#include "ring/iro.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/require.hpp"

namespace ringent::ring {

namespace {
constexpr double min_hop_ps = 1.0;  // causality floor under negative noise
}

Iro::Iro(sim::Kernel& kernel, const IroConfig& config,
         std::vector<std::unique_ptr<noise::NoiseSource>> stage_noise)
    : kernel_(kernel),
      config_(config),
      stage_noise_(std::move(stage_noise)),
      output_("iro_out") {
  RINGENT_REQUIRE(config.stages >= 1, "IRO needs at least one stage");
  RINGENT_REQUIRE(config.lut_delay > Time::zero(), "LUT delay must be positive");
  RINGENT_REQUIRE(!config.routing_per_hop.is_negative(),
                  "routing delay cannot be negative");
  RINGENT_REQUIRE(
      config.stage_factors.empty() || config.stage_factors.size() == config.stages,
      "stage_factors size must match stage count");
  RINGENT_REQUIRE(config.routing_per_stage.empty() ||
                      config.routing_per_stage.size() == config.stages,
                  "routing_per_stage size must match stage count");
  for (Time r : config_.routing_per_stage) {
    RINGENT_REQUIRE(!r.is_negative(), "routing delay cannot be negative");
  }
  RINGENT_REQUIRE(stage_noise_.empty() || stage_noise_.size() == config.stages,
                  "stage_noise size must match stage count");
  RINGENT_REQUIRE((config.supply == nullptr) == (config.laws == nullptr),
                  "supply and laws must be provided together");
  for (double f : config_.stage_factors) {
    RINGENT_REQUIRE(f > 0.0, "stage factors must be positive");
  }
  node_ = kernel_.add_process(this);
}

Time Iro::hop_delay(std::size_t stage, Time now) {
  const double factor =
      config_.stage_factors.empty() ? 1.0 : config_.stage_factors[stage];

  double lut_scale = 1.0;
  double routing_scale = 1.0;
  if (config_.supply != nullptr) {
    const fpga::OperatingPoint op = config_.supply->operating_point_at(now);
    lut_scale = config_.laws->lut.scale(op);
    routing_scale = config_.laws->routing.scale(op);
  }

  const double routing_ps = config_.routing_per_stage.empty()
                                ? config_.routing_per_hop.ps()
                                : config_.routing_per_stage[stage].ps();
  double delay_ps = config_.lut_delay.ps() * factor * lut_scale +
                    routing_ps * factor * routing_scale;
  if (stage < stage_noise_.size()) {
    double noise_scale = 1.0;
    if (config_.jitter_delay_exponent != 0.0) {
      noise_scale = std::pow(lut_scale, config_.jitter_delay_exponent);
    }
    delay_ps += stage_noise_[stage]->sample_ps() * noise_scale;
  }
  if (config_.modulation != nullptr) {
    delay_ps += config_.modulation->offset_ps(now, stage);
  }
  return Time::from_ps(std::max(delay_ps, min_hop_ps));
}

void Iro::start() {
  RINGENT_REQUIRE(!started_, "IRO already started");
  started_ = true;
  // The circulating event enters stage 0 at t = 0.
  kernel_.schedule_in(hop_delay(0, kernel_.now()), node_, 0);
}

void Iro::fire(sim::Kernel& kernel, std::uint32_t tag) {
  const std::size_t stage = tag;
  const Time now = kernel.now();
  if (stage + 1 == config_.stages) {
    // The event completed a lap: the ring output (the inverter's input edge
    // arriving back) toggles once per lap.
    output_value_ = !output_value_;
    output_.record(now, output_value_);
    kernel.schedule_in(hop_delay(0, now), node_, 0);
  } else {
    const std::uint32_t next = tag + 1;
    kernel.schedule_in(hop_delay(next, now), node_, next);
  }
}

Time Iro::nominal_period() const {
  double lap_ps = 0.0;
  for (std::size_t i = 0; i < config_.stages; ++i) {
    const double factor =
        config_.stage_factors.empty() ? 1.0 : config_.stage_factors[i];
    const double routing_ps = config_.routing_per_stage.empty()
                                  ? config_.routing_per_hop.ps()
                                  : config_.routing_per_stage[i].ps();
    lap_ps += (config_.lut_delay.ps() + routing_ps) * factor;
  }
  return Time::from_ps(2.0 * lap_ps);
}

}  // namespace ringent::ring
