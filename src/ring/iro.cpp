#include "ring/iro.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/require.hpp"

namespace ringent::ring {

namespace {
constexpr double min_hop_ps = 1.0;  // causality floor under negative noise
}

Iro::Iro(sim::Kernel& kernel, const IroConfig& config,
         std::vector<std::unique_ptr<noise::NoiseSource>> stage_noise)
    : kernel_(kernel),
      config_(config),
      stage_noise_(std::move(stage_noise)),
      scale_cache_(config.supply, config.laws),
      output_("iro_out") {
  RINGENT_REQUIRE(config.stages >= 1, "IRO needs at least one stage");
  RINGENT_REQUIRE(config.lut_delay > Time::zero(), "LUT delay must be positive");
  RINGENT_REQUIRE(!config.routing_per_hop.is_negative(),
                  "routing delay cannot be negative");
  RINGENT_REQUIRE(
      config.stage_factors.empty() || config.stage_factors.size() == config.stages,
      "stage_factors size must match stage count");
  RINGENT_REQUIRE(config.routing_per_stage.empty() ||
                      config.routing_per_stage.size() == config.stages,
                  "routing_per_stage size must match stage count");
  for (Time r : config_.routing_per_stage) {
    RINGENT_REQUIRE(!r.is_negative(), "routing delay cannot be negative");
  }
  RINGENT_REQUIRE(stage_noise_.empty() || stage_noise_.size() == config.stages,
                  "stage_noise size must match stage count");
  RINGENT_REQUIRE((config.supply == nullptr) == (config.laws == nullptr),
                  "supply and laws must be provided together");
  for (double f : config_.stage_factors) {
    RINGENT_REQUIRE(f > 0.0, "stage factors must be positive");
  }

  // Per-stage precompute. The original per-event expression was
  //   lut_delay.ps() * factor * lut_scale + routing_ps * factor * routing_scale
  // which associates as ((lut*factor)*lut_scale) + ((routing*factor)*scale),
  // so folding (lut*factor) and (routing*factor) ahead of time — and, at
  // unit scales, the whole sum — reproduces the exact same rounding.
  lut_part_.reserve(config_.stages);
  routing_part_.reserve(config_.stages);
  static_ps_.reserve(config_.stages);
  for (std::size_t i = 0; i < config_.stages; ++i) {
    const double factor =
        config_.stage_factors.empty() ? 1.0 : config_.stage_factors[i];
    const double routing_ps = config_.routing_per_stage.empty()
                                  ? config_.routing_per_hop.ps()
                                  : config_.routing_per_stage[i].ps();
    lut_part_.push_back(config_.lut_delay.ps() * factor);
    routing_part_.push_back(routing_ps * factor);
    static_ps_.push_back(lut_part_[i] + routing_part_[i]);
  }
  if (!stage_noise_.empty()) {
    noise_.reserve(config_.stages);
    for (auto& source : stage_noise_) noise_.emplace_back(source.get());
  }
  fully_static_ = config_.supply == nullptr && stage_noise_.empty() &&
                  config_.modulation == nullptr;
  if (fully_static_) {
    const_hop_.reserve(config_.stages);
    for (std::size_t i = 0; i < config_.stages; ++i) {
      const_hop_.push_back(Time::from_ps(std::max(static_ps_[i], min_hop_ps)));
    }
  }

  node_ = kernel_.add_process(this);
}

Time Iro::hop_delay(std::size_t stage, Time now) {
  if (config_.supply == nullptr) {
    // Unit voltage scales: multiplying by 1.0 is exact, so the scale factors
    // vanish into the precomputed static delay. With gamma != 0 the noise
    // scale pow(1.0, gamma) == 1.0 exactly as well.
    if (fully_static_) return const_hop_[stage];
    double delay_ps = static_ps_[stage];
    if (!noise_.empty()) delay_ps += noise_[stage].next();
    if (config_.modulation != nullptr) {
      delay_ps += config_.modulation->offset_ps(now, stage);
    }
    return Time::from_ps(std::max(delay_ps, min_hop_ps));
  }

  const fpga::SupplyScaleCache::Scales& scales = scale_cache_.at(now);
  double delay_ps = lut_part_[stage] * scales.lut +
                    routing_part_[stage] * scales.routing;
  if (!noise_.empty()) {
    double noise_scale = 1.0;
    if (config_.jitter_delay_exponent != 0.0) {
      // Memoized on the lut scale: pow of an identical input is identical.
      if (scales.lut != noise_scale_key_) {
        noise_scale_key_ = scales.lut;
        noise_scale_ =
            std::pow(noise_scale_key_, config_.jitter_delay_exponent);
      }
      noise_scale = noise_scale_;
    }
    delay_ps += noise_[stage].next() * noise_scale;
  }
  if (config_.modulation != nullptr) {
    delay_ps += config_.modulation->offset_ps(now, stage);
  }
  return Time::from_ps(std::max(delay_ps, min_hop_ps));
}

void Iro::start() {
  RINGENT_REQUIRE(!started_, "IRO already started");
  started_ = true;
  // The circulating event enters stage 0 at t = 0.
  kernel_.schedule_in(hop_delay(0, kernel_.now()), node_, 0);
}

void Iro::fire(sim::Kernel& kernel, std::uint32_t tag) {
  const std::size_t stage = tag;
  const Time now = kernel.now();
  if (stage + 1 == config_.stages) {
    // The event completed a lap: the ring output (the inverter's input edge
    // arriving back) toggles once per lap.
    output_value_ = !output_value_;
    output_.record(now, output_value_);
    kernel.schedule_in(hop_delay(0, now), node_, 0);
  } else {
    const std::uint32_t next = tag + 1;
    kernel.schedule_in(hop_delay(next, now), node_, next);
  }
}

Time Iro::nominal_period() const {
  double lap_ps = 0.0;
  for (std::size_t i = 0; i < config_.stages; ++i) {
    const double factor =
        config_.stage_factors.empty() ? 1.0 : config_.stage_factors[i];
    const double routing_ps = config_.routing_per_stage.empty()
                                  ? config_.routing_per_hop.ps()
                                  : config_.routing_per_stage[i].ps();
    lap_ps += (config_.lut_delay.ps() + routing_ps) * factor;
  }
  return Time::from_ps(2.0 * lap_ps);
}

}  // namespace ringent::ring
