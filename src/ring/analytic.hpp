// Analytic steady-state model of the evenly-spaced STR regime — the
// high-level "time accurate model" of Hamon et al. (paper ref [4]) that the
// paper builds on, in closed form for the Charlie parametrization of Eq. 3.
//
// Derivation. In the evenly-spaced limit cycle every stage fires with
// interval T/2 and the firing wave is uniform, so the enabling events of a
// stage sit fixed lags behind its own firing: the token-side event by the
// forward hop latency d_f, the bubble-side event by the reverse hop latency
// d_r. Counting passages gives
//
//     d_f = NT T / (2L),        d_r = NB T / (2L),
//
// and the Charlie firing rule t = (tf+tr)/2 + charlie((tf-tr)/2) becomes the
// scalar equation
//
//     T/4 = D_mean + sqrt(Dch^2 + (alpha T/4 - s0)^2),
//     alpha = (NB - NT)/L,   s = (d_r - d_f)/2 = alpha T/4,
//
// a quadratic in T with exactly one admissible root. For NT = NB it reduces
// to the paper's Sec. III result: zero separation, maximal Charlie effect,
// T = 4 (Ds + Dch) (plus routing). The event simulator must agree with this
// model to <1% on homogeneous rings — asserted in tests/test_analytic.cpp —
// and the sec5a bench prints both columns side by side.
//
// The locking margin 1 - |charlie'(s)| is a fragility heuristic: the
// restoring force vanishes as the steady separation climbs onto the linear
// part of the Charlie curve (token-starved or bubble-starved rings, or
// Dch -> 0), which is where the burst mode survives in simulation.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "ring/charlie.hpp"

namespace ringent::ring {

struct SteadyStatePrediction {
  Time period;        ///< output period T of any stage
  Time forward_hop;   ///< token hop latency d_f (stage i fires -> i+1 fires)
  Time reverse_hop;   ///< bubble hop latency d_r
  Time separation;    ///< steady input separation s (signed, 0 for NT = NB)
  double frequency_mhz = 0.0;
  /// 1 - |d charlie/ds| at the operating separation; 1 = strongest locking
  /// (parabola apex), -> 0 = marginal (linear region, burst-prone).
  double locking_margin = 0.0;
};

/// Closed-form steady state of an L-stage ring with `tokens` tokens.
/// `routing_per_hop` is added to both static delays (it is in series with
/// the stage on both the forward and reverse paths). Preconditions: a valid
/// oscillating pattern (can_oscillate) and positive delays.
SteadyStatePrediction predict_steady_state(const CharlieParams& params,
                                           Time routing_per_hop,
                                           std::size_t stages,
                                           std::size_t tokens);

/// Hamon's design rule (paper Eq. 1): the token/bubble ratio that centres
/// the ring at zero separation, NT/NB = Dff/Drr. Returns the real-valued
/// ideal token count for a given ring length.
double ideal_token_count(const CharlieParams& params, std::size_t stages);

}  // namespace ringent::ring
