#include "ring/charlie.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace ringent::ring {

namespace {
/// Causality floor: an enabled gate never fires sooner than this after its
/// last enabling input, however large a negative noise excursion is drawn.
constexpr double min_response_ps = 1.0;
}  // namespace

CharlieParams CharlieParams::symmetric(Time d_static, Time d_charlie) {
  return CharlieParams{d_static, d_static, d_charlie};
}

DraftingParams DraftingParams::asic(double amplitude_ps, double tau_ps) {
  RINGENT_REQUIRE(amplitude_ps >= 0.0 && tau_ps > 0.0,
                  "drafting parameters out of range");
  return DraftingParams{true, amplitude_ps, tau_ps};
}

double charlie_delay_ps(double d_mean_ps, double d_charlie_ps, double s_ps,
                        double s_offset_ps) {
  const double ds = s_ps - s_offset_ps;
  return d_mean_ps + std::sqrt(d_charlie_ps * d_charlie_ps + ds * ds);
}

CharlieModel::CharlieModel(const CharlieParams& params,
                           const DraftingParams& drafting)
    : params_(params), drafting_(drafting) {
  RINGENT_REQUIRE(params.d_ff > Time::zero() && params.d_rr > Time::zero(),
                  "static delays must be positive");
  RINGENT_REQUIRE(!params.d_charlie.is_negative(),
                  "Charlie magnitude cannot be negative");
}

Time CharlieModel::fire_time(Time tf, Time tr, Time last_output,
                             double extra_ps, double static_scale,
                             double charlie_scale) const {
  RINGENT_REQUIRE(static_scale > 0.0 && charlie_scale >= 0.0,
                  "invalid delay scales");
  const double mean_arrival_ps = (tf.ps() + tr.ps()) / 2.0;
  const double s_ps = (tf.ps() - tr.ps()) / 2.0;

  const double d_mean_ps = params_.d_mean().ps() * static_scale;
  const double s_offset_ps = params_.s_offset().ps() * static_scale;
  const double dch_ps = params_.d_charlie.ps() * charlie_scale;

  double delay_ps = charlie_delay_ps(d_mean_ps, dch_ps, s_ps, s_offset_ps);

  if (drafting_.enabled) {
    // Delay shrinks when the stage's output toggled recently. Evaluated at
    // the nominal (pre-drafting) firing instant.
    const double elapsed_ps =
        mean_arrival_ps + delay_ps - last_output.ps();
    if (elapsed_ps > 0.0) {
      delay_ps -= drafting_.amplitude_ps * std::exp(-elapsed_ps /
                                                    drafting_.tau_ps);
    }
  }

  delay_ps += extra_ps;

  const double latest_input_ps = std::max(tf.ps(), tr.ps());
  const double fire_ps =
      std::max(mean_arrival_ps + delay_ps, latest_input_ps + min_response_ps);
  return Time::from_ps(fire_ps);
}

}  // namespace ringent::ring
