#include "ring/charlie.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace ringent::ring {

CharlieParams CharlieParams::symmetric(Time d_static, Time d_charlie) {
  return CharlieParams{d_static, d_static, d_charlie};
}

DraftingParams DraftingParams::asic(double amplitude_ps, double tau_ps) {
  RINGENT_REQUIRE(amplitude_ps >= 0.0 && tau_ps > 0.0,
                  "drafting parameters out of range");
  return DraftingParams{true, amplitude_ps, tau_ps};
}

CharlieModel::CharlieModel(const CharlieParams& params,
                           const DraftingParams& drafting)
    : params_(params), drafting_(drafting) {
  RINGENT_REQUIRE(params.d_ff > Time::zero() && params.d_rr > Time::zero(),
                  "static delays must be positive");
  RINGENT_REQUIRE(!params.d_charlie.is_negative(),
                  "Charlie magnitude cannot be negative");
}

Time CharlieModel::fire_time(Time tf, Time tr, Time last_output,
                             double extra_ps, double static_scale,
                             double charlie_scale) const {
  RINGENT_REQUIRE(static_scale > 0.0 && charlie_scale >= 0.0,
                  "invalid delay scales");
  const double d_mean_ps = params_.d_mean().ps() * static_scale;
  const double s_offset_ps = params_.s_offset().ps() * static_scale;
  const double dch_ps = params_.d_charlie.ps() * charlie_scale;
  return fire_time_prescaled(tf, tr, last_output, extra_ps, d_mean_ps,
                             s_offset_ps, dch_ps);
}

}  // namespace ringent::ring
