#include "ring/mode.hpp"

#include <cmath>
#include <ostream>

#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::ring {

const char* to_string(OscillationMode mode) {
  switch (mode) {
    case OscillationMode::evenly_spaced:
      return "evenly-spaced";
    case OscillationMode::burst:
      return "burst";
    case OscillationMode::irregular:
      return "irregular";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, OscillationMode mode) {
  return os << to_string(mode);
}

ModeAnalysis classify_mode(const std::vector<Time>& transition_times,
                           const ModeThresholds& thresholds) {
  ModeAnalysis out;
  if (transition_times.size() < 2) return out;

  std::vector<double> intervals_ps;
  intervals_ps.reserve(transition_times.size() - 1);
  for (std::size_t i = 1; i < transition_times.size(); ++i) {
    intervals_ps.push_back(
        (transition_times[i] - transition_times[i - 1]).ps());
  }
  out.intervals = intervals_ps.size();

  const SampleStats stats = describe(intervals_ps);
  out.mean_interval_ps = stats.mean();
  if (stats.count() < 8 || stats.mean() <= 0.0) return out;

  out.interval_cv = stats.stddev() / stats.mean();
  const double p5 = percentile(intervals_ps, 5.0);
  const double p95 = percentile(intervals_ps, 95.0);
  out.spread_ratio = p5 > 0.0 ? p95 / p5 : 1e9;

  if (out.interval_cv < thresholds.evenly_spaced_cv) {
    out.mode = OscillationMode::evenly_spaced;
  } else if (out.interval_cv > thresholds.burst_cv &&
             out.spread_ratio > thresholds.burst_spread_ratio) {
    out.mode = OscillationMode::burst;
  } else {
    out.mode = OscillationMode::irregular;
  }
  return out;
}

LockingResult time_to_lock(const std::vector<Time>& transition_times,
                           std::size_t window, double cv_threshold) {
  RINGENT_REQUIRE(window >= 8, "window must be >= 8 intervals");
  RINGENT_REQUIRE(cv_threshold > 0.0, "threshold must be positive");
  LockingResult out;
  if (transition_times.size() < window + 1) return out;

  // Rolling mean/variance over `window` intervals via prefix sums.
  const std::size_t n = transition_times.size() - 1;
  std::vector<double> intervals(n);
  for (std::size_t i = 0; i < n; ++i) {
    intervals[i] = (transition_times[i + 1] - transition_times[i]).ps();
  }
  std::vector<double> sum(n + 1, 0.0), sum2(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i + 1] = sum[i] + intervals[i];
    sum2[i + 1] = sum2[i] + intervals[i] * intervals[i];
  }
  const double w = static_cast<double>(window);
  for (std::size_t start = 0; start + window <= n; ++start) {
    const double mean = (sum[start + window] - sum[start]) / w;
    const double var =
        (sum2[start + window] - sum2[start]) / w - mean * mean;
    if (mean <= 0.0) continue;
    const double cv = std::sqrt(std::max(var, 0.0)) / mean;
    if (cv < cv_threshold) {
      out.locked = true;
      out.lock_time = transition_times[start];
      out.lock_interval = start;
      return out;
    }
  }
  return out;
}

}  // namespace ringent::ring
