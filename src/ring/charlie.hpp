// The Charlie-effect delay model for a self-timed ring stage (paper Eq. 3).
//
// A Muller gate's propagation delay depends on the separation of its two
// input events: the closer the arrivals, the longer the delay. With forward
// input arriving at tf, reverse at tr, mean arrival M = (tf+tr)/2 and
// separation s = (tf-tr)/2, the output fires at
//
//     t_out = M + charlie(s),   charlie(s) = D_mean + sqrt(Dch^2 + (s-s0)^2),
//
// where D_mean = (Dff+Drr)/2 and s0 = (Drr-Dff)/2. The asymptotes recover
// pure static behaviour: for s -> +inf (token waits on a late bubble... i.e.
// forward arrives last) t_out -> tf + Dff; for s -> -inf, t_out -> tr + Drr.
// The paper's FPGA case has Dff = Drr = Ds, giving its Eq. 3 exactly.
//
// The parabola bottom is the evenly-spaced locking mechanism: d(charlie)/ds
// vanishes at s = s0, so small spacing perturbations change the delay only to
// second order, while larger ones are pushed back with slope ±1 — tokens
// repel each other (Sec. II-D.3).
//
// The drafting effect (delay reduction shortly after the stage's previous
// output event) is implemented as an optional exponential term; the paper
// finds it negligible in FPGAs and our calibrations disable it by default.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/time.hpp"

namespace ringent::ring {

struct CharlieParams {
  Time d_ff;       ///< forward static delay Dff
  Time d_rr;       ///< reverse static delay Drr
  Time d_charlie;  ///< Charlie effect magnitude Dch

  /// Symmetric stage (the paper's FPGA hypothesis Dff = Drr = Ds).
  static CharlieParams symmetric(Time d_static, Time d_charlie);

  Time d_mean() const { return (d_ff + d_rr) / 2; }
  /// Separation offset where the delay is minimal.
  Time s_offset() const { return (d_rr - d_ff) / 2; }
};

struct DraftingParams {
  bool enabled = false;
  double amplitude_ps = 0.0;  ///< maximum delay reduction
  double tau_ps = 1.0;        ///< recovery time constant

  static DraftingParams disabled() { return {}; }
  static DraftingParams asic(double amplitude_ps, double tau_ps);
};

/// charlie(s) in picoseconds for explicit parameters (analysis/plots).
/// Inline: this is the innermost arithmetic of every STR event.
inline double charlie_delay_ps(double d_mean_ps, double d_charlie_ps,
                               double s_ps, double s_offset_ps = 0.0) {
  const double ds = s_ps - s_offset_ps;
  return d_mean_ps + std::sqrt(d_charlie_ps * d_charlie_ps + ds * ds);
}

namespace detail {
/// Causality floor: an enabled gate never fires sooner than this after its
/// last enabling input, however large a negative noise excursion is drawn.
inline constexpr double min_response_ps = 1.0;
}  // namespace detail

class CharlieModel {
 public:
  CharlieModel(const CharlieParams& params,
               const DraftingParams& drafting = DraftingParams::disabled());

  const CharlieParams& params() const { return params_; }
  const DraftingParams& drafting() const { return drafting_; }

  /// Absolute output event time for forward/reverse input events at tf / tr,
  /// given the stage's previous output event time and an extra additive delay
  /// contribution (noise + deterministic modulation + routing), in ps.
  /// Static delays are scaled by `static_scale` and the Charlie magnitude by
  /// `charlie_scale` (process mismatch x voltage laws). The result is clamped
  /// to max(tf, tr) + a small causality floor.
  Time fire_time(Time tf, Time tr, Time last_output, double extra_ps,
                 double static_scale = 1.0, double charlie_scale = 1.0) const;

  /// fire_time with the parameter scaling already applied: the caller passes
  /// D_mean, s0 and Dch in picoseconds after multiplying by its scales. The
  /// STR hot path precomputes those products per stage (static case) or per
  /// scale refresh (supply case) instead of per event; fire_time delegates
  /// here, so both entry points share one arithmetic sequence — asserted
  /// bit-identical by tests/test_hot_path.cpp.
  Time fire_time_prescaled(Time tf, Time tr, Time last_output, double extra_ps,
                           double d_mean_ps, double s_offset_ps,
                           double dch_ps) const {
    const double mean_arrival_ps = (tf.ps() + tr.ps()) / 2.0;
    const double s_ps = (tf.ps() - tr.ps()) / 2.0;

    double delay_ps = charlie_delay_ps(d_mean_ps, dch_ps, s_ps, s_offset_ps);

    if (drafting_.enabled) {
      // Delay shrinks when the stage's output toggled recently. Evaluated at
      // the nominal (pre-drafting) firing instant.
      const double elapsed_ps = mean_arrival_ps + delay_ps - last_output.ps();
      if (elapsed_ps > 0.0) {
        delay_ps -=
            drafting_.amplitude_ps * std::exp(-elapsed_ps / drafting_.tau_ps);
      }
    }

    delay_ps += extra_ps;

    const double latest_input_ps = std::max(tf.ps(), tr.ps());
    const double fire_ps = std::max(mean_arrival_ps + delay_ps,
                                    latest_input_ps + detail::min_response_ps);
    return Time::from_ps(fire_ps);
  }

 private:
  CharlieParams params_;
  DraftingParams drafting_;
};

}  // namespace ringent::ring
