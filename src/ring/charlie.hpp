// The Charlie-effect delay model for a self-timed ring stage (paper Eq. 3).
//
// A Muller gate's propagation delay depends on the separation of its two
// input events: the closer the arrivals, the longer the delay. With forward
// input arriving at tf, reverse at tr, mean arrival M = (tf+tr)/2 and
// separation s = (tf-tr)/2, the output fires at
//
//     t_out = M + charlie(s),   charlie(s) = D_mean + sqrt(Dch^2 + (s-s0)^2),
//
// where D_mean = (Dff+Drr)/2 and s0 = (Drr-Dff)/2. The asymptotes recover
// pure static behaviour: for s -> +inf (token waits on a late bubble... i.e.
// forward arrives last) t_out -> tf + Dff; for s -> -inf, t_out -> tr + Drr.
// The paper's FPGA case has Dff = Drr = Ds, giving its Eq. 3 exactly.
//
// The parabola bottom is the evenly-spaced locking mechanism: d(charlie)/ds
// vanishes at s = s0, so small spacing perturbations change the delay only to
// second order, while larger ones are pushed back with slope ±1 — tokens
// repel each other (Sec. II-D.3).
//
// The drafting effect (delay reduction shortly after the stage's previous
// output event) is implemented as an optional exponential term; the paper
// finds it negligible in FPGAs and our calibrations disable it by default.
#pragma once

#include "common/time.hpp"

namespace ringent::ring {

struct CharlieParams {
  Time d_ff;       ///< forward static delay Dff
  Time d_rr;       ///< reverse static delay Drr
  Time d_charlie;  ///< Charlie effect magnitude Dch

  /// Symmetric stage (the paper's FPGA hypothesis Dff = Drr = Ds).
  static CharlieParams symmetric(Time d_static, Time d_charlie);

  Time d_mean() const { return (d_ff + d_rr) / 2; }
  /// Separation offset where the delay is minimal.
  Time s_offset() const { return (d_rr - d_ff) / 2; }
};

struct DraftingParams {
  bool enabled = false;
  double amplitude_ps = 0.0;  ///< maximum delay reduction
  double tau_ps = 1.0;        ///< recovery time constant

  static DraftingParams disabled() { return {}; }
  static DraftingParams asic(double amplitude_ps, double tau_ps);
};

/// charlie(s) in picoseconds for explicit parameters (analysis/plots).
double charlie_delay_ps(double d_mean_ps, double d_charlie_ps, double s_ps,
                        double s_offset_ps = 0.0);

class CharlieModel {
 public:
  CharlieModel(const CharlieParams& params,
               const DraftingParams& drafting = DraftingParams::disabled());

  const CharlieParams& params() const { return params_; }
  const DraftingParams& drafting() const { return drafting_; }

  /// Absolute output event time for forward/reverse input events at tf / tr,
  /// given the stage's previous output event time and an extra additive delay
  /// contribution (noise + deterministic modulation + routing), in ps.
  /// Static delays are scaled by `static_scale` and the Charlie magnitude by
  /// `charlie_scale` (process mismatch x voltage laws). The result is clamped
  /// to max(tf, tr) + a small causality floor.
  Time fire_time(Time tf, Time tr, Time last_output, double extra_ps,
                 double static_scale = 1.0, double charlie_scale = 1.0) const;

 private:
  CharlieParams params_;
  DraftingParams drafting_;
};

}  // namespace ringent::ring
