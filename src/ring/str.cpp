#include "ring/str.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "common/require.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"

namespace ringent::ring {

Str::Str(sim::Kernel& kernel, const StrConfig& config, RingState initial,
         std::vector<std::unique_ptr<noise::NoiseSource>> stage_noise)
    : kernel_(kernel),
      config_(config),
      charlie_model_(config.charlie, config.drafting),
      state_(std::move(initial)),
      tokens_(token_count(state_)),
      stage_noise_(std::move(stage_noise)),
      scale_cache_(config.supply, config.laws),
      observe_trace_("str_out") {
  RINGENT_REQUIRE(config_.stages >= 3, "STR needs at least three stages");
  RINGENT_REQUIRE(state_.size() == config_.stages,
                  "initial state size must match stage count");
  RINGENT_REQUIRE(can_oscillate(config_.stages, tokens_),
                  "initial pattern cannot oscillate");
  RINGENT_REQUIRE(
      config_.stage_factors.empty() ||
          config_.stage_factors.size() == config_.stages,
      "stage_factors size must match stage count");
  RINGENT_REQUIRE(stage_noise_.empty() || stage_noise_.size() == config_.stages,
                  "stage_noise size must match stage count");
  RINGENT_REQUIRE((config_.supply == nullptr) == (config_.laws == nullptr),
                  "supply and laws must be provided together");
  RINGENT_REQUIRE(config_.observe_stage < config_.stages,
                  "observe_stage out of range");
  RINGENT_REQUIRE(!config_.routing_per_hop.is_negative(),
                  "routing delay cannot be negative");
  RINGENT_REQUIRE(config_.routing_per_stage.empty() ||
                      config_.routing_per_stage.size() == config_.stages,
                  "routing_per_stage size must match stage count");
  for (Time r : config_.routing_per_stage) {
    RINGENT_REQUIRE(!r.is_negative(), "routing delay cannot be negative");
  }
  for (double f : config_.stage_factors) {
    RINGENT_REQUIRE(f > 0.0, "stage factors must be positive");
  }

  last_change_.assign(config_.stages, Time::zero());
  scheduled_.assign(config_.stages, 0);

  // Per-stage precompute for try_schedule, association order preserved.
  d_mean_nom_ps_ = config_.charlie.d_mean().ps();
  s_offset_nom_ps_ = config_.charlie.s_offset().ps();
  dch_nom_ps_ = config_.charlie.d_charlie.ps();
  factor_.reserve(config_.stages);
  routing_ps_.reserve(config_.stages);
  extra_base_.reserve(config_.stages);
  d_mean_scaled_.reserve(config_.stages);
  s_offset_scaled_.reserve(config_.stages);
  dch_scaled_.reserve(config_.stages);
  for (std::size_t i = 0; i < config_.stages; ++i) {
    const double factor =
        config_.stage_factors.empty() ? 1.0 : config_.stage_factors[i];
    const double routing_ps = config_.routing_per_stage.empty()
                                  ? config_.routing_per_hop.ps()
                                  : config_.routing_per_stage[i].ps();
    factor_.push_back(factor);
    routing_ps_.push_back(routing_ps);
    extra_base_.push_back(routing_ps * factor);
    d_mean_scaled_.push_back(d_mean_nom_ps_ * factor);
    s_offset_scaled_.push_back(s_offset_nom_ps_ * factor);
    dch_scaled_.push_back(dch_nom_ps_ * factor);
  }
  if (!stage_noise_.empty()) {
    noise_.reserve(config_.stages);
    for (auto& source : stage_noise_) noise_.emplace_back(source.get());
  }

  if (config_.trace_all_stages) {
    traces_.reserve(config_.stages);
    for (std::size_t i = 0; i < config_.stages; ++i) {
      traces_.emplace_back("C" + std::to_string(i));
    }
    output_ = &traces_[config_.observe_stage];
  } else {
    output_ = &observe_trace_;
  }
  node_ = kernel_.add_process(this);
}

bool Str::enabled(std::size_t i) const {
  // Token at i and bubble at i+1.
  return state_[i] != state_[prev(i)] && state_[next(i)] == state_[i];
}

void Str::try_schedule(std::size_t i, Time now) {
  // Each eligibility check asks "does stage i hold a token facing a
  // bubble?" — the token-collision query of the handshake protocol.
  sim::metrics::bump(sim::metrics::Counter::token_collision_checks);
  if (scheduled_[i] || !enabled(i)) return;

  const Time tf = last_change_[prev(i)];  // token-side enabling event
  const Time tr = last_change_[next(i)];  // bubble-side enabling event

  Time fire_at;
  if (config_.supply == nullptr) {
    // Unit voltage scales: the per-stage products collapse into the
    // constructor-time precompute (multiplying by 1.0 is exact, and with
    // gamma != 0 the noise scale pow(1.0, gamma) == 1.0 exactly).
    double extra_ps = extra_base_[i];
    if (!noise_.empty()) extra_ps += noise_[i].next();
    if (config_.modulation != nullptr) {
      extra_ps += config_.modulation->offset_ps(now, i);
    }
    sim::metrics::bump(sim::metrics::Counter::charlie_evaluations);
    fire_at = charlie_model_.fire_time_prescaled(
        tf, tr, last_change_[i], extra_ps, d_mean_scaled_[i],
        s_offset_scaled_[i], dch_scaled_[i]);
  } else {
    const fpga::SupplyScaleCache::Scales& scales = scale_cache_.at(now);
    const double static_scale = factor_[i] * scales.lut;
    const double charlie_scale = factor_[i] * scales.charlie;
    const double routing_scale = factor_[i] * scales.routing;
    double extra_ps = routing_ps_[i] * routing_scale;
    if (!noise_.empty()) {
      double noise_scale = 1.0;
      if (config_.jitter_delay_exponent != 0.0) {
        // static_scale already contains the mismatch factor; couple the noise
        // to the voltage part only (static_scale / factor). The quotient of
        // the exact product equals scales.lut only up to rounding, so memoize
        // on the quotient itself to keep the pow input bit-identical.
        const double key = static_scale / factor_[i];
        if (key != noise_scale_key_) {
          noise_scale_key_ = key;
          noise_scale_ = std::pow(key, config_.jitter_delay_exponent);
        }
        noise_scale = noise_scale_;
      }
      extra_ps += noise_[i].next() * noise_scale;
    }
    if (config_.modulation != nullptr) {
      extra_ps += config_.modulation->offset_ps(now, i);
    }
    sim::metrics::bump(sim::metrics::Counter::charlie_evaluations);
    fire_at = charlie_model_.fire_time_prescaled(
        tf, tr, last_change_[i], extra_ps, d_mean_nom_ps_ * static_scale,
        s_offset_nom_ps_ * static_scale, dch_nom_ps_ * charlie_scale);
  }
  // The Charlie-resolved delay is the per-evaluation "cost" in the simulated
  // domain — deterministic, so its histogram is bit-exact at any jobs count.
  sim::telemetry::record(
      sim::telemetry::Histogram::charlie_delay_fs,
      fire_at > now ? static_cast<std::uint64_t>((fire_at - now).fs()) : 0);
  kernel_.schedule_at(fire_at, node_, static_cast<std::uint32_t>(i));
  scheduled_[i] = 1;
}

void Str::start() {
  RINGENT_REQUIRE(!started_, "STR already started");
  started_ = true;
  for (std::size_t i = 0; i < config_.stages; ++i) {
    try_schedule(i, kernel_.now());
  }
}

void Str::fire(sim::Kernel& kernel, std::uint32_t tag) {
  const std::size_t i = tag;
  const Time now = kernel.now();

  // The enabling conditions cannot be withdrawn between scheduling and
  // firing (neighbours of an enabled stage are themselves disabled), so the
  // event is always valid here.
  scheduled_[i] = false;
  state_[i] = state_[prev(i)];
  last_change_[i] = now;
  ++firings_;

  if (config_.trace_all_stages) {
    traces_[i].record(now, state_[i]);
  } else if (i == config_.observe_stage) {
    output_->record(now, state_[i]);
  }

  // The firing moved a token to i+1 and a bubble to i; only those two
  // neighbours can have become enabled.
  try_schedule(next(i), now);
  try_schedule(prev(i), now);
}

Time Str::nominal_period() const {
  double routing_ps = config_.routing_per_hop.ps();
  if (!config_.routing_per_stage.empty()) {
    routing_ps = 0.0;
    for (Time r : config_.routing_per_stage) routing_ps += r.ps();
    routing_ps /= static_cast<double>(config_.routing_per_stage.size());
  }
  const double hop_ps = config_.charlie.d_mean().ps() +
                        config_.charlie.d_charlie.ps() + routing_ps;
  const double period_ps = 2.0 * static_cast<double>(config_.stages) * hop_ps /
                           static_cast<double>(tokens_);
  return Time::from_ps(period_ps);
}

}  // namespace ringent::ring
