// Untimed token/bubble semantics of a self-timed ring (paper Sec. II-B/C).
//
// A ring of L stages is described by its output vector C[0..L-1]. Stage i
// holds a *token* if C[i] != C[i-1] (cyclically) and a *bubble* otherwise.
// Stage i is *enabled* — its Muller gate will fire, copying C[i-1] into C[i]
// — exactly when it holds a token and stage i+1 holds a bubble; the firing
// moves the token forward and the bubble backward (Fig. 4).
//
// This module implements the pure combinational semantics with no timing at
// all. It exists (a) as the specification the timed model in ring/str.hpp is
// property-tested against, and (b) to build and validate initial patterns:
// oscillation requires L >= 3, NB >= 1 and a positive even NT (Sec. II-C.2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ringent::ring {

/// Stage output vector; index i is C_i.
using RingState = std::vector<bool>;

/// Stage i holds a token iff C_i != C_{i-1} (cyclic).
bool has_token(const RingState& state, std::size_t i);

/// Stage i holds a bubble iff C_i == C_{i-1} (cyclic).
bool has_bubble(const RingState& state, std::size_t i);

std::size_t token_count(const RingState& state);
std::size_t bubble_count(const RingState& state);

/// Stage i is enabled iff token at i and bubble at i+1 (cyclic).
bool stage_enabled(const RingState& state, std::size_t i);

/// Indices of all enabled stages.
std::vector<std::size_t> enabled_stages(const RingState& state);

/// Fire stage i (precondition: enabled): C_i <- C_{i-1}.
RingState fire_stage(const RingState& state, std::size_t i);

/// Fire every currently enabled stage simultaneously (synchronous step).
/// Firings never conflict: two adjacent stages cannot both be enabled.
RingState step_all(const RingState& state);

/// True if (stages, tokens) can oscillate: stages >= 3, tokens positive and
/// even, and at least one bubble (tokens < stages).
bool can_oscillate(std::size_t stages, std::size_t tokens);

/// Where to put the tokens of an initial pattern.
enum class TokenPlacement {
  evenly_spread,  ///< tokens distributed all around the ring
  clustered,      ///< tokens packed together (burst-mode seed)
};

/// Build an initial state with exactly `tokens` tokens in `stages` stages.
/// Throws PreconditionError unless can_oscillate(stages, tokens).
RingState make_initial_state(std::size_t stages, std::size_t tokens,
                             TokenPlacement placement);

/// Render a state as e.g. "T.T." (T = token, . = bubble) for logs and tests.
std::string token_string(const RingState& state);

}  // namespace ringent::ring
