#include "ring/analytic.hpp"

#include <cmath>

#include "common/require.hpp"
#include "ring/str_logic.hpp"

namespace ringent::ring {

SteadyStatePrediction predict_steady_state(const CharlieParams& params,
                                           Time routing_per_hop,
                                           std::size_t stages,
                                           std::size_t tokens) {
  RINGENT_REQUIRE(can_oscillate(stages, tokens),
                  "pattern cannot oscillate (need positive even NT, NB >= 1)");
  RINGENT_REQUIRE(params.d_ff > Time::zero() && params.d_rr > Time::zero(),
                  "static delays must be positive");
  RINGENT_REQUIRE(!routing_per_hop.is_negative(),
                  "routing delay cannot be negative");

  const double d_mean = params.d_mean().ps() + routing_per_hop.ps();
  const double s0 = params.s_offset().ps();
  const double dch = params.d_charlie.ps();
  const double nt = static_cast<double>(tokens);
  const double nb = static_cast<double>(stages - tokens);
  const double alpha = (nb - nt) / static_cast<double>(stages);

  // Solve x = d_mean + sqrt(dch^2 + (alpha x - s0)^2) for x = T/4:
  // (1 - alpha^2) x^2 - 2 (d_mean - alpha s0) x + (d_mean^2 - dch^2 - s0^2) = 0.
  const double a = 1.0 - alpha * alpha;
  const double b = -2.0 * (d_mean - alpha * s0);
  const double c = d_mean * d_mean - dch * dch - s0 * s0;
  RINGENT_REQUIRE(a > 0.0, "degenerate token/bubble ratio");
  const double disc = b * b - 4.0 * a * c;
  RINGENT_REQUIRE(disc >= 0.0, "no steady-state solution for these delays");
  const double x = (-b + std::sqrt(disc)) / (2.0 * a);
  RINGENT_REQUIRE(x >= d_mean + dch - 1e-9,
                  "inadmissible steady-state root");

  const double s = alpha * x - s0;  // separation relative to the apex
  SteadyStatePrediction out;
  out.period = Time::from_ps(4.0 * x);
  out.forward_hop =
      Time::from_ps(nt * 4.0 * x / (2.0 * static_cast<double>(stages)));
  out.reverse_hop =
      Time::from_ps(nb * 4.0 * x / (2.0 * static_cast<double>(stages)));
  out.separation = Time::from_ps(alpha * x);
  out.frequency_mhz = 1e6 / (4.0 * x);
  out.locking_margin = 1.0 - std::abs(s) / std::sqrt(dch * dch + s * s);
  return out;
}

double ideal_token_count(const CharlieParams& params, std::size_t stages) {
  RINGENT_REQUIRE(stages >= 3, "ring needs at least 3 stages");
  const double dff = params.d_ff.ps();
  const double drr = params.d_rr.ps();
  return static_cast<double>(stages) * dff / (dff + drr);
}

}  // namespace ringent::ring
