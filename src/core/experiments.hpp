// Experiment drivers: one function per paper experiment.
//
// Each driver builds oscillators through the public factory, runs them on the
// event kernel, measures through the instrument models, and returns a plain
// result struct. The bench binaries (bench/) only format these results into
// the paper's tables and figures; the test suite asserts their shapes.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/jitter.hpp"
#include "core/calibration.hpp"
#include "core/oscillator.hpp"
#include "core/spec.hpp"
#include "ring/mode.hpp"

namespace ringent::core {

struct ExperimentOptions {
  std::uint64_t seed = 20120312;  ///< master seed (DATE 2012 dates)
  bool with_noise = true;         ///< dynamic Gaussian noise on/off
  std::size_t warmup_periods = 64;

  /// Worker threads for the independent axes of a sweep (supply levels,
  /// boards, stage counts, token counts, restarts). 0 = default: the
  /// RINGENT_JOBS environment variable, else hardware_concurrency().
  /// Every driver shards by task index and derives per-task RNG streams
  /// hierarchically, so results are bit-identical for any value — including
  /// 1 (see sim/parallel.hpp and docs/architecture.md).
  std::size_t jobs = 0;

  /// Which simulated board carries the ring: >= 0 selects a die from the
  /// process population (with per-LUT mismatch), -1 an ideal mismatch-free
  /// device. Jitter measurements default to board 0, like the paper's
  /// single-board oscilloscope session.
  int board_index = -1;
};

// --- Fig. 8 / Table I: sensitivity to voltage variations -------------------

struct VoltageSweepPoint {
  double voltage_v = 0.0;
  double frequency_mhz = 0.0;
  double normalized = 0.0;  ///< F / F_nom
};

struct VoltageSweepResult {
  RingSpec spec;
  double f_nominal_mhz = 0.0;
  double excursion = 0.0;  ///< ΔF = (F_max - F_min) / F_nom over the sweep
  std::vector<VoltageSweepPoint> points;
};

/// Measure ring frequency at each supply level (Fn normalized at
/// `calibration.nominal_voltage`, which must be among `voltages`).
VoltageSweepResult run_voltage_sweep(const RingSpec& spec,
                                     const Calibration& calibration,
                                     const std::vector<double>& voltages,
                                     const ExperimentOptions& options = {},
                                     std::size_t periods = 400);

// --- extension: sensitivity to temperature ----------------------------------

struct TemperatureSweepPoint {
  double temperature_c = 25.0;
  double frequency_mhz = 0.0;
  double normalized = 0.0;  ///< F / F(25 C)
};

struct TemperatureSweepResult {
  RingSpec spec;
  double f_nominal_mhz = 0.0;
  double excursion = 0.0;  ///< (F_max - F_min) / F(25 C) over the sweep
  std::vector<TemperatureSweepPoint> points;
};

/// Frequency vs die temperature at nominal voltage (extension: the paper's
/// ref [1] attack surface; 25 C must be among `temperatures`).
TemperatureSweepResult run_temperature_sweep(
    const RingSpec& spec, const Calibration& calibration,
    const std::vector<double>& temperatures,
    const ExperimentOptions& options = {}, std::size_t periods = 400);

// --- Table II: sensitivity to process variability --------------------------

struct BoardFrequency {
  unsigned board = 0;
  double frequency_mhz = 0.0;
};

struct ProcessVariabilityResult {
  RingSpec spec;
  std::vector<BoardFrequency> boards;
  double mean_mhz = 0.0;
  double sigma_rel = 0.0;  ///< relative standard deviation across boards
};

/// Load "the same bitstream" into `board_count` simulated boards and compare
/// ring frequencies (paper Sec. V-C).
ProcessVariabilityResult run_process_variability(
    const RingSpec& spec, const Calibration& calibration,
    unsigned board_count = 5, const ExperimentOptions& options = {},
    std::size_t periods = 400);

// --- Figs. 9, 11, 12: jitter -------------------------------------------------

/// Ground-truth period population (no instrument in the path).
std::vector<double> collect_periods_ps(const RingSpec& spec,
                                       const Calibration& calibration,
                                       std::size_t periods,
                                       const ExperimentOptions& options = {});

struct JitterPoint {
  std::size_t stages = 0;
  double mean_period_ps = 0.0;
  double sigma_p_ps = 0.0;    ///< recovered by the Fig. 10 method
  double sigma_g_ps = 0.0;    ///< per-gate jitter derived via Eq. 7 (IRO)
  double sigma_direct_ps = 0.0;  ///< ground-truth sigma of the periods
};

struct JitterVsStagesConfig {
  unsigned divider_n = 8;        ///< divide by 2^n in the measurement method
  std::size_t mes_periods = 150; ///< osc_mes periods per point
};

/// Period jitter as a function of the number of stages, measured through the
/// full instrument chain (divider + oscilloscope + Eq. 6), one point per
/// entry of `stage_counts`. For RingKind::str, NT = NB.
std::vector<JitterPoint> run_jitter_vs_stages(
    RingKind kind, const std::vector<std::size_t>& stage_counts,
    const Calibration& calibration, const ExperimentOptions& options = {},
    const JitterVsStagesConfig& config = {});

// --- Fig. 5 / Sec. V-A: oscillation modes -----------------------------------

struct ModeMapEntry {
  std::size_t tokens = 0;
  ring::OscillationMode mode = ring::OscillationMode::irregular;
  double interval_cv = 0.0;
  double frequency_mhz = 0.0;
};

/// Classify the steady-state mode for each token count of an L-stage STR
/// (paper Sec. V-A: L=32 locks evenly spaced for NT = 10..20). Charlie
/// magnitude can be scaled to probe the locking mechanism (ablation);
/// 1.0 = calibrated value.
std::vector<ModeMapEntry> run_mode_map(
    std::size_t stages, const std::vector<std::size_t>& token_counts,
    const Calibration& calibration, const ExperimentOptions& options = {},
    ring::TokenPlacement placement = ring::TokenPlacement::clustered,
    double charlie_scale = 1.0, std::size_t periods = 600);

// --- extension: the restart technique ----------------------------------------

struct RestartPoint {
  std::size_t edge = 0;      ///< k-th rising edge after start
  double spread_ps = 0.0;    ///< stddev of t_k across restarts
};

struct RestartResult {
  RingSpec spec;
  std::vector<RestartPoint> points;
  /// Fitted per-edge diffusion: spread(k) ~ sigma_restart * sqrt(k).
  double diffusion_per_edge_ps = 0.0;
  double fit_r2 = 0.0;
  /// Control: two runs with identical seeds diverge by exactly zero.
  bool control_identical = false;
};

/// The restart technique (standard TRNG entropy validation): run the ring
/// `restarts` times from the SAME initial state with independent noise and
/// measure how the k-th edge time spreads across runs. True (thermal)
/// randomness gives sqrt(k) growth; a deterministic oscillator restarts
/// identically (the same-seed control). The fitted diffusion must agree
/// with the divided-clock readout of Figs. 11/12 — two entirely different
/// estimators of the same quantity.
RestartResult run_restart_experiment(const RingSpec& spec,
                                     const Calibration& calibration,
                                     unsigned restarts = 64,
                                     std::size_t edges = 256,
                                     const ExperimentOptions& options = {});

// --- conclusion / ref [7]: coherent sampling across devices -----------------

struct CoherentBoardResult {
  unsigned board = 0;
  double half_beat_samples = 0.0;  ///< median run length
  double implied_detune = 0.0;     ///< 1 / (2 * half_beat)
  double lsb_bias = 0.5;
  std::size_t bits = 0;
};

struct CoherentSweepResult {
  RingSpec spec;
  double design_detune = 0.0;
  std::vector<CoherentBoardResult> boards;
  double detune_mean = 0.0;
  double detune_sigma = 0.0;
  double worst_deviation = 0.0;  ///< max |implied - design|
};

/// Build a coherent-sampling pair (ring + delay_scale-detuned sampling ring
/// on different LUTs of the same board) on each of `board_count` boards and
/// measure the beat window — the Table II consequence the paper's
/// conclusion highlights. `design_detune` is the sampling ring's design
/// slowdown (e.g. 0.01 for 1%).
CoherentSweepResult run_coherent_across_boards(
    const RingSpec& spec, const Calibration& calibration,
    double design_detune = 0.01, unsigned board_count = 5,
    const ExperimentOptions& options = {}, std::size_t periods = 60000);

// --- Sec. IV-B: global deterministic jitter ---------------------------------

struct DeterministicJitterPoint {
  std::size_t stages = 0;
  double mean_period_ps = 0.0;
  double tone_ps = 0.0;       ///< amplitude of the modulation tone in T(k)
  double tone_relative = 0.0; ///< tone_ps / mean_period_ps
  double random_ps = 0.0;     ///< residual white jitter per period
};

struct DeterministicJitterConfig {
  double modulation_amplitude_v = 0.05;
  double modulation_frequency_hz = 2.0e6;
  std::size_t periods = 8192;
};

/// Apply a sinusoidal supply modulation and measure the deterministic tone
/// it leaves in the period sequence, per ring length. The paper's claim:
/// the IRO tone grows with the stage count (linear accumulation over 2k
/// crossings) while the STR tone does not.
std::vector<DeterministicJitterPoint> run_deterministic_jitter(
    RingKind kind, const std::vector<std::size_t>& stage_counts,
    const Calibration& calibration,
    const DeterministicJitterConfig& config = {},
    const ExperimentOptions& options = {});

}  // namespace ringent::core
