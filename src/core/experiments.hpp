// Experiment drivers: one function per paper experiment.
//
// Each driver builds oscillators through the public factory, runs them on the
// event kernel, measures through the instrument models, and returns a plain
// result struct. The bench binaries (bench/) only format these results into
// the paper's tables and figures; the test suite asserts their shapes.
//
// Every driver has the same canonical signature:
//
//   run_X(const XSpec& spec, const Calibration& calibration,
//         const ExperimentOptions& options = {});
//
// XSpec declares WHAT to run (rings, sweep axes, durations — the science);
// ExperimentOptions declares HOW to run it (seed, jobs, noise toggle — the
// execution policy). The experiment registry (core/registry.hpp) and all
// callers use the spec forms exclusively; the historical positional-knob
// signatures have been removed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/entropy90b.hpp"
#include "analysis/jitter.hpp"
#include "core/calibration.hpp"
#include "core/oscillator.hpp"
#include "core/spec.hpp"
#include "fpga/supply.hpp"
#include "noise/fault.hpp"
#include "ring/mode.hpp"
#include "service/frontend.hpp"
#include "trng/resilient.hpp"

namespace ringent::core {

struct ExperimentOptions {
  std::uint64_t seed = 20120312;  ///< master seed (DATE 2012 dates)
  bool with_noise = true;         ///< dynamic Gaussian noise on/off
  std::size_t warmup_periods = 64;

  /// Worker threads for the independent axes of a sweep (supply levels,
  /// boards, stage counts, token counts, restarts). 0 = default: the
  /// RINGENT_JOBS environment variable, else hardware_concurrency().
  /// Every driver shards by task index and derives per-task RNG streams
  /// hierarchically, so results are bit-identical for any value — including
  /// 1 (see sim/parallel.hpp and docs/architecture.md).
  std::size_t jobs = 0;

  /// Which simulated board carries the ring: >= 0 selects a die from the
  /// process population (with per-LUT mismatch), -1 an ideal mismatch-free
  /// device. Jitter measurements default to board 0, like the paper's
  /// single-board oscilloscope session.
  int board_index = -1;
};

// --- Fig. 8 / Table I: sensitivity to voltage variations -------------------

struct VoltageSweepPoint {
  double voltage_v = 0.0;
  double frequency_mhz = 0.0;
  double normalized = 0.0;  ///< F / F_nom
};

struct VoltageSweepResult {
  RingSpec spec;
  double f_nominal_mhz = 0.0;
  double excursion = 0.0;  ///< ΔF = (F_max - F_min) / F_nom over the sweep
  std::vector<VoltageSweepPoint> points;
};

struct VoltageSweepSpec {
  RingSpec ring;
  /// Supply levels to visit; must include `calibration.nominal_voltage`
  /// (Fn's reference).
  std::vector<double> voltages;
  std::size_t periods = 400;

  /// Serialized spec ("voltage_sweep" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.voltage_sweep/1";
  Json to_json() const;
  static VoltageSweepSpec from_json(const Json& json);
};

/// Measure ring frequency at each supply level (Fn normalized at
/// `calibration.nominal_voltage`).
VoltageSweepResult run_voltage_sweep(const VoltageSweepSpec& spec,
                                     const Calibration& calibration,
                                     const ExperimentOptions& options = {});

// --- extension: sensitivity to temperature ----------------------------------

struct TemperatureSweepPoint {
  double temperature_c = 25.0;
  double frequency_mhz = 0.0;
  double normalized = 0.0;  ///< F / F(25 C)
};

struct TemperatureSweepResult {
  RingSpec spec;
  double f_nominal_mhz = 0.0;
  double excursion = 0.0;  ///< (F_max - F_min) / F(25 C) over the sweep
  std::vector<TemperatureSweepPoint> points;
};

struct TemperatureSweepSpec {
  RingSpec ring;
  /// Die temperatures to visit; must include 25 C (the normalization point).
  std::vector<double> temperatures;
  std::size_t periods = 400;

  /// Serialized spec ("temperature_sweep" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.temperature_sweep/1";
  Json to_json() const;
  static TemperatureSweepSpec from_json(const Json& json);
};

/// Frequency vs die temperature at nominal voltage (extension: the paper's
/// ref [1] attack surface).
TemperatureSweepResult run_temperature_sweep(
    const TemperatureSweepSpec& spec, const Calibration& calibration,
    const ExperimentOptions& options = {});

// --- Table II: sensitivity to process variability --------------------------

struct BoardFrequency {
  unsigned board = 0;
  double frequency_mhz = 0.0;
};

struct ProcessVariabilityResult {
  RingSpec spec;
  std::vector<BoardFrequency> boards;
  double mean_mhz = 0.0;
  double sigma_rel = 0.0;  ///< relative standard deviation across boards
};

struct ProcessVariabilitySpec {
  RingSpec ring;
  unsigned board_count = 5;
  std::size_t periods = 400;

  /// Serialized spec ("process_variability" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.process_variability/1";
  Json to_json() const;
  static ProcessVariabilitySpec from_json(const Json& json);
};

/// Load "the same bitstream" into `board_count` simulated boards and compare
/// ring frequencies (paper Sec. V-C).
ProcessVariabilityResult run_process_variability(
    const ProcessVariabilitySpec& spec, const Calibration& calibration,
    const ExperimentOptions& options = {});

// --- Figs. 9, 11, 12: jitter -------------------------------------------------

/// Ground-truth period population (no instrument in the path).
std::vector<double> collect_periods_ps(const RingSpec& spec,
                                       const Calibration& calibration,
                                       std::size_t periods,
                                       const ExperimentOptions& options = {});

struct JitterPoint {
  std::size_t stages = 0;
  double mean_period_ps = 0.0;
  double sigma_p_ps = 0.0;    ///< recovered by the Fig. 10 method
  double sigma_g_ps = 0.0;    ///< per-gate jitter derived via Eq. 7 (IRO)
  double sigma_direct_ps = 0.0;  ///< ground-truth sigma of the periods
};

struct JitterSweepSpec {
  RingKind kind = RingKind::iro;
  std::vector<std::size_t> stage_counts;
  unsigned divider_n = 8;         ///< divide by 2^n in the measurement method
  std::size_t mes_periods = 150;  ///< osc_mes periods per point

  /// Serialized spec ("jitter_vs_stages" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.jitter_vs_stages/1";
  Json to_json() const;
  static JitterSweepSpec from_json(const Json& json);
};

/// Period jitter as a function of the number of stages, measured through the
/// full instrument chain (divider + oscilloscope + Eq. 6), one point per
/// entry of `stage_counts`. For RingKind::str, NT = NB.
std::vector<JitterPoint> run_jitter_vs_stages(
    const JitterSweepSpec& spec, const Calibration& calibration,
    const ExperimentOptions& options = {});

// --- Fig. 5 / Sec. V-A: oscillation modes -----------------------------------

struct ModeMapEntry {
  std::size_t tokens = 0;
  ring::OscillationMode mode = ring::OscillationMode::irregular;
  double interval_cv = 0.0;
  double frequency_mhz = 0.0;
};

struct ModeMapSpec {
  std::size_t stages = 32;
  std::vector<std::size_t> token_counts;
  ring::TokenPlacement placement = ring::TokenPlacement::clustered;
  /// Charlie magnitude scale (ablation knob); 1.0 = calibrated value.
  double charlie_scale = 1.0;
  std::size_t periods = 600;

  /// Serialized spec ("mode_map" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.mode_map/1";
  Json to_json() const;
  static ModeMapSpec from_json(const Json& json);
};

/// Classify the steady-state mode for each token count of an L-stage STR
/// (paper Sec. V-A: L=32 locks evenly spaced for NT = 10..20).
std::vector<ModeMapEntry> run_mode_map(const ModeMapSpec& spec,
                                       const Calibration& calibration,
                                       const ExperimentOptions& options = {});

// --- extension: the restart technique ----------------------------------------

struct RestartPoint {
  std::size_t edge = 0;      ///< k-th rising edge after start
  double spread_ps = 0.0;    ///< stddev of t_k across restarts
};

struct RestartResult {
  RingSpec spec;
  std::vector<RestartPoint> points;
  /// Fitted per-edge diffusion: spread(k) ~ sigma_restart * sqrt(k).
  double diffusion_per_edge_ps = 0.0;
  double fit_r2 = 0.0;
  /// Control: two runs with identical seeds diverge by exactly zero.
  bool control_identical = false;
};

struct RestartSpec {
  RingSpec ring;
  unsigned restarts = 64;
  std::size_t edges = 256;

  /// Serialized spec ("restart" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.restart/1";
  Json to_json() const;
  static RestartSpec from_json(const Json& json);
};

/// The restart technique (standard TRNG entropy validation): run the ring
/// `restarts` times from the SAME initial state with independent noise and
/// measure how the k-th edge time spreads across runs. True (thermal)
/// randomness gives sqrt(k) growth; a deterministic oscillator restarts
/// identically (the same-seed control). The fitted diffusion must agree
/// with the divided-clock readout of Figs. 11/12 — two entirely different
/// estimators of the same quantity.
RestartResult run_restart_experiment(const RestartSpec& spec,
                                     const Calibration& calibration,
                                     const ExperimentOptions& options = {});

// --- conclusion / ref [7]: coherent sampling across devices -----------------

struct CoherentBoardResult {
  unsigned board = 0;
  double half_beat_samples = 0.0;  ///< median run length
  double implied_detune = 0.0;     ///< 1 / (2 * half_beat)
  double lsb_bias = 0.5;
  std::size_t bits = 0;
};

struct CoherentSweepResult {
  RingSpec spec;
  double design_detune = 0.0;
  std::vector<CoherentBoardResult> boards;
  double detune_mean = 0.0;
  double detune_sigma = 0.0;
  double worst_deviation = 0.0;  ///< max |implied - design|
};

struct CoherentSweepSpec {
  RingSpec ring;
  /// The sampling ring's design slowdown (e.g. 0.01 for 1%).
  double design_detune = 0.01;
  unsigned board_count = 5;
  std::size_t periods = 60000;

  /// Serialized spec ("coherent_boards" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.coherent_boards/1";
  Json to_json() const;
  static CoherentSweepSpec from_json(const Json& json);
};

/// Build a coherent-sampling pair (ring + delay_scale-detuned sampling ring
/// on different LUTs of the same board) on each of `board_count` boards and
/// measure the beat window — the Table II consequence the paper's
/// conclusion highlights.
CoherentSweepResult run_coherent_across_boards(
    const CoherentSweepSpec& spec, const Calibration& calibration,
    const ExperimentOptions& options = {});

// --- Sec. IV-B: global deterministic jitter ---------------------------------

struct DeterministicJitterPoint {
  std::size_t stages = 0;
  double mean_period_ps = 0.0;
  double tone_ps = 0.0;       ///< amplitude of the modulation tone in T(k)
  double tone_relative = 0.0; ///< tone_ps / mean_period_ps
  double random_ps = 0.0;     ///< residual white jitter per period
};

struct DeterministicJitterSpec {
  RingKind kind = RingKind::iro;
  std::vector<std::size_t> stage_counts;
  double modulation_amplitude_v = 0.05;
  double modulation_frequency_hz = 2.0e6;
  std::size_t periods = 8192;

  /// Serialized spec ("deterministic_jitter" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.deterministic_jitter/1";
  Json to_json() const;
  static DeterministicJitterSpec from_json(const Json& json);
};

/// Apply a sinusoidal supply modulation and measure the deterministic tone
/// it leaves in the period sequence, per ring length. The paper's claim:
/// the IRO tone grows with the stage count (linear accumulation over 2k
/// crossings) while the STR tone does not.
std::vector<DeterministicJitterPoint> run_deterministic_jitter(
    const DeterministicJitterSpec& spec, const Calibration& calibration,
    const ExperimentOptions& options = {});

// --- entropy map: 90B min-entropy over sampling period x ring length ---------

struct EntropyMapSpec {
  /// Topologies to map; both paper families by default.
  std::vector<RingKind> kinds = {RingKind::iro, RingKind::str};
  std::vector<std::size_t> stage_counts;
  /// Sampling-flip-flop reference periods (the sweep's frequency axis).
  std::vector<Time> sampling_periods;
  /// DFF-sampled bits fed to the battery per cell.
  std::size_t bits_per_cell = 4096;
  /// Restart validation per cell: `restart_rows` relock cycles of
  /// `restart_cols` bits each (SP 800-90B §3.1.4, via the bit source's
  /// deterministic relock machinery). rows = 0 disables.
  std::size_t restart_rows = 0;
  std::size_t restart_cols = 0;
  analysis::Entropy90bConfig battery;

  /// Serialized spec ("entropy_map" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.entropy_map/1";
  Json to_json() const;
  static EntropyMapSpec from_json(const Json& json);
};

struct EntropyMapCell {
  RingSpec ring;
  Time sampling_period = Time::zero();
  analysis::Entropy90bResult estimate;
  bool restart_run = false;  ///< whether `restart` below carries data
  analysis::RestartValidation restart;
};

struct EntropyMapResult {
  /// kinds (outer) x stage_counts x sampling_periods (inner) order.
  std::vector<EntropyMapCell> cells;
  /// Lowest per-cell battery min-entropy, -1 if no estimator ran anywhere.
  double floor_min_entropy = -1.0;
};

/// Sweep sampling period x ring length for each topology and estimate the
/// SP 800-90B non-IID min-entropy of the sampled stream per cell, with
/// optional restart-matrix validation. Cells run in parallel (index-sharded
/// seeds), so the map is bit-identical for any `options.jobs`.
EntropyMapResult run_entropy_map(const EntropyMapSpec& spec,
                                 const Calibration& calibration,
                                 const ExperimentOptions& options = {});

// --- attack resilience: fault injection + online-health degradation ----------

struct AttackResilienceSpec {
  /// Topologies under attack; the paper comparison pairs an IRO with a
  /// matched-footprint STR on the same rail.
  std::vector<RingSpec> rings = {RingSpec::iro(25), RingSpec::str(24)};

  /// Fault schedules to sweep (noise/fault.hpp). paper_default() covers the
  /// quiet baseline, the Sec. IV-B supply-tone attack, a brown-out, a
  /// stuck-at stage, slow delay drift and an STR mode-collapse kick.
  std::vector<noise::FaultScenario> scenarios;

  /// Reference clock of the sampling flip-flop.
  Time sampling_period = Time::from_ns(250.0);

  /// Raw bits drawn through the health-monitored generator per cell.
  std::size_t total_bits = 4000;

  /// Degradation policy of the supervised generator.
  trng::DegradationPolicy policy;

  /// Regulator between the attacked rail and the core; the default
  /// pass-through models an unprotected core (the paper boards' linear
  /// regulator would attenuate the tone ~10-20x).
  fpga::Regulator regulator{};

  /// Provision a second ring (same spec, fresh noise, same rail) the policy
  /// can fail over to. It experiences the scenario's supply faults — those
  /// are common-mode across the die — but not stage-local delay faults.
  bool with_backup = true;

  /// The configuration the attack-resilience study and its golden test use.
  /// The supply-tone amplitude (103.7 mV — paper-scale) is tuned so the
  /// tone's trough parks the IRO's sampled beat f*Ts on an integer (the
  /// attacker's sweet spot); the matched STR's beat stays ~0.3 away from
  /// the nearest integer at both tone extremes and rides the attack out.
  static AttackResilienceSpec paper_default();

  /// Serialized spec ("attack_resilience" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.attack_resilience/1";
  Json to_json() const;
  static AttackResilienceSpec from_json(const Json& json);
};

/// One (ring, scenario) outcome.
struct AttackResilienceCell {
  RingSpec ring;
  std::string scenario;
  trng::DegradationState final_state = trng::DegradationState::healthy;

  std::uint64_t raw_bits = 0;      ///< bits drawn from the source
  std::uint64_t emitted_bits = 0;  ///< bits that reached the consumer
  std::uint64_t muted_bits = 0;
  double muted_fraction = 0.0;     ///< muted / raw

  /// Raw bits from generator start to the first health alarm; -1 = the
  /// scenario never tripped the monitors.
  std::int64_t detection_latency_bits = -1;
  /// Raw bits from the first alarm back to the first `healthy`; -1 = never
  /// recovered within the run.
  std::int64_t recovery_bits = -1;

  std::uint64_t rct_alarms = 0;
  std::uint64_t apt_alarms = 0;
  std::uint64_t relock_attempts = 0;
  std::uint64_t failovers = 0;
  std::uint64_t fault_activations = 0;  ///< fault windows applied (both rings)

  /// Ones-fraction of the emitted bits after the last fault window closed
  /// (0.5 when no bits were emitted there) — the post-attack health check.
  double post_attack_bias = 0.5;
  std::size_t post_attack_bits = 0;

  /// SP 800-90B non-IID battery over the bits that actually reached the
  /// consumer (the monitored stream): measured entropy loss to hold against
  /// the health events above. -1 when too few bits were emitted for any
  /// estimator to run.
  double emitted_min_entropy = -1.0;
  /// The battery's Markov component alone — directly comparable to the
  /// online markov_min_entropy the telemetry layer tracks per window.
  double emitted_h_markov = -1.0;

  std::vector<trng::StateTransition> transitions;
};

struct AttackResilienceResult {
  std::vector<AttackResilienceCell> cells;

  /// Sum over cells of recorded state transitions — matches the
  /// health_transitions counter delta in this run's manifest.
  std::uint64_t total_transitions = 0;
};

/// Sweep scenario x topology: run every fault scenario against every ring
/// through a health-monitored, degradation-managed generator
/// (trng::ResilientGenerator over a core::RingBitSource) and report
/// detection latency, muted-output fraction, recovery time and post-attack
/// bias per cell.
AttackResilienceResult run_attack_resilience(
    const AttackResilienceSpec& spec, const Calibration& calibration,
    const ExperimentOptions& options = {});

// --- entropy service: conditioned streaming server layer ---------------------

struct EntropyServiceSpec {
  std::size_t slots = 4;

  /// Raw-bit production budget per slot (the run's deterministic size).
  std::uint64_t raw_bits_per_slot = 1u << 16;

  service::ConditionerKind conditioner = service::ConditionerKind::lfsr;
  std::size_t conditioner_ratio = 2;
  std::size_t ring_capacity = 4096;  ///< bytes per slot ring (power of two)
  std::size_t block_bytes = 64;      ///< front-end interleave unit
  std::size_t request_bytes = 256;   ///< bytes per acquire() request

  /// true: PRNG-backed slot sources (saturation mode — measures the service
  /// layer, not the oscillator model). false: simulated rings below.
  bool synthetic = true;
  RingSpec ring = RingSpec::str(24);
  Time sampling_period = Time::from_ns(250.0);

  /// Front-end wait budget before an empty-but-live slot counts as starved.
  /// 0 = auto: 250 ms for synthetic slots, 10 s for simulated rings (which
  /// produce raw bits at simulation rate, ~1 ms/bit, not wire rate).
  std::uint64_t wait_budget_ms = 0;

  trng::DegradationPolicy policy;

  /// Serialized spec ("entropy_service" schema). to_json is total and
  /// emits every field; from_json rejects unknown keys, reports
  /// missing required keys by name, and validates ranges
  /// (core/spec_json.cpp).
  static constexpr std::string_view spec_schema =
      "ringent.spec.entropy_service/1";
  Json to_json() const;
  static EntropyServiceSpec from_json(const Json& json);
};

struct EntropyServiceResult {
  std::size_t workers = 0;          ///< pool worker threads actually used
  std::uint64_t requests = 0;       ///< acquire() calls served
  std::uint64_t bytes_delivered = 0;
  std::uint64_t raw_bits_in = 0;    ///< raw bits pulled across all slots
  std::uint64_t starvations = 0;    ///< StarvationError count (the drain end)
  std::uint64_t slots_failed = 0;   ///< generators that latched `failed`
  double wall_seconds = 0.0;
  double bytes_per_sec = 0.0;
  double requests_per_sec = 0.0;

  /// FNV-1a over the delivered stream plus its first bytes: the cross-jobs
  /// bit-identity witnesses (identical for any worker count).
  std::uint64_t stream_fnv = 0;
  std::vector<std::uint8_t> head;
};

/// Drive the service end to end: build a pool of `slots` supervised
/// generators, start min(resolve_jobs(options.jobs), slots) workers, and
/// drain the entire production through EntropyService::acquire in
/// `request_bytes` units until the pool reports starvation. The conditioned
/// stream content is bit-identical at any `options.jobs`; the throughput
/// numbers are wall-clock and are not.
EntropyServiceResult run_entropy_service(const EntropyServiceSpec& spec,
                                         const Calibration& calibration,
                                         const ExperimentOptions& options = {});

}  // namespace ringent::core
