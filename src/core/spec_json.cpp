// JSON (de)serialization of every experiment spec struct — the uniform
// "invoke any experiment from a serialized document" surface behind
// ExperimentDescriptor::run_spec and the campaign runner's content keys.
//
// Conventions:
//  * to_json() is total: every field is always emitted, times as exact
//    femtosecond integers ("*_fs"), enums as their lower-case serialized
//    names. A "schema" key ("ringent.spec.<experiment>/1") comes first.
//  * from_json() is strict: unknown keys are rejected by name, required
//    keys are reported by name, and every error message carries the
//    experiment's schema id — the message a CLI user sees for a bad
//    --spec FILE. The "schema" key itself is optional in the input but must
//    match when present (so a spec file cannot silently run the wrong
//    experiment).
//  * from_json(to_json(s)).to_json() == to_json(s) byte-for-byte, which is
//    what makes ringent::canonical_dump() of a spec a stable cache-key
//    ingredient (fuzz/fuzz_campaign.cpp holds the plan/store loaders built
//    on top of this to the same fixpoint contract).
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/require.hpp"
#include "core/experiments.hpp"
#include "core/spec.hpp"
#include "service/conditioner.hpp"

namespace ringent::core {

namespace {

/// Strict object reader: every consumed key is recorded; finish() rejects
/// whatever was not consumed. All messages lead with the schema id.
class SpecReader {
 public:
  SpecReader(const Json& json, std::string_view schema)
      : json_(json), schema_(schema) {
    if (!json.is_object()) {
      throw Error(context() + ": spec must be a JSON object");
    }
    if (const Json* declared = json.find("schema")) {
      if (!declared->is_string() || declared->as_string() != schema_) {
        throw Error(context() + ": spec declares a different schema" +
                    (declared->is_string() ? " \"" + declared->as_string() +
                                                 "\""
                                           : ""));
      }
    }
    consumed_.emplace_back("schema");
  }

  const Json* optional(const char* key) {
    consumed_.emplace_back(key);
    return json_.find(key);
  }

  const Json& required(const char* key) {
    consumed_.emplace_back(key);
    const Json* value = json_.find(key);
    if (value == nullptr) {
      throw Error(context() + ": missing required key \"" + key + "\"");
    }
    return *value;
  }

  /// Call last: reject every key the spec does not define, all at once.
  void finish() const {
    std::string unknown;
    for (const auto& [key, value] : json_.items()) {
      bool known = false;
      for (const std::string& name : consumed_) {
        if (key == name) {
          known = true;
          break;
        }
      }
      if (!known) unknown += (unknown.empty() ? "\"" : ", \"") + key + "\"";
    }
    if (!unknown.empty()) {
      throw Error(context() + ": unknown key(s) " + unknown);
    }
  }

  std::string context() const { return std::string(schema_); }

 private:
  const Json& json_;
  std::string_view schema_;
  std::vector<std::string> consumed_;
};

std::uint64_t read_u64(const Json& value, const SpecReader& reader,
                       const char* what, std::uint64_t min_value = 0) {
  const std::int64_t v = value.as_integer();
  if (v < 0 || static_cast<std::uint64_t>(v) < min_value) {
    throw Error(reader.context() + ": \"" + what + "\" must be >= " +
                std::to_string(min_value));
  }
  return static_cast<std::uint64_t>(v);
}

std::size_t read_size(const Json& value, const SpecReader& reader,
                      const char* what, std::uint64_t min_value = 0) {
  return static_cast<std::size_t>(read_u64(value, reader, what, min_value));
}

Time read_positive_time_fs(const Json& value, const SpecReader& reader,
                           const char* what) {
  const std::int64_t fs = value.as_integer();
  if (fs <= 0) {
    throw Error(reader.context() + ": \"" + what +
                "\" must be a positive femtosecond count");
  }
  return Time::from_fs(fs);
}

std::vector<double> read_number_array(const Json& value,
                                      const SpecReader& reader,
                                      const char* what) {
  if (!value.is_array() || value.size() == 0) {
    throw Error(reader.context() + ": \"" + what +
                "\" must be a non-empty array of numbers");
  }
  std::vector<double> out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    out.push_back(value.at(i).as_number());
  }
  return out;
}

std::vector<std::size_t> read_size_array(const Json& value,
                                         const SpecReader& reader,
                                         const char* what,
                                         std::uint64_t min_value = 0) {
  if (!value.is_array() || value.size() == 0) {
    throw Error(reader.context() + ": \"" + what +
                "\" must be a non-empty array of integers");
  }
  std::vector<std::size_t> out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    out.push_back(read_size(value.at(i), reader, what, min_value));
  }
  return out;
}

Json size_array_json(const std::vector<std::size_t>& values) {
  Json out = Json::array();
  for (const std::size_t v : values) {
    out.push_back(static_cast<std::uint64_t>(v));
  }
  return out;
}

Json number_array_json(const std::vector<double>& values) {
  Json out = Json::array();
  for (const double v : values) out.push_back(v);
  return out;
}

/// Wrap any ringent::Error from `fn` with the schema context, so a bad
/// nested object (ring, policy, scenario...) still names the experiment the
/// caller was loading.
template <typename Fn>
auto in_context(const SpecReader& reader, const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const Error& error) {
    throw Error(reader.context() + ": in \"" + what + "\": " + error.what());
  }
}

}  // namespace

// --- RingSpec ---------------------------------------------------------------

Json RingSpec::to_json() const {
  Json json = Json::object();
  json.set("kind", kind == RingKind::iro ? "iro" : "str");
  json.set("stages", static_cast<std::uint64_t>(stages));
  json.set("tokens", static_cast<std::uint64_t>(tokens));
  json.set("placement", core::to_string(placement));
  return json;
}

RingSpec RingSpec::from_json(const Json& json) {
  if (!json.is_object()) throw Error("ring spec must be a JSON object");
  RingSpec spec;
  for (const auto& [key, value] : json.items()) {
    if (key == "kind") {
      spec.kind = parse_ring_kind(value.as_string());
    } else if (key == "stages") {
      const std::int64_t stages = value.as_integer();
      if (stages < 0) throw Error("ring stages must be non-negative");
      spec.stages = static_cast<std::size_t>(stages);
    } else if (key == "tokens") {
      const std::int64_t tokens = value.as_integer();
      if (tokens < 0) throw Error("ring tokens must be non-negative");
      spec.tokens = static_cast<std::size_t>(tokens);
    } else if (key == "placement") {
      spec.placement = parse_token_placement(value.as_string());
    } else {
      throw Error("unknown ring spec key \"" + key + "\"");
    }
  }
  spec.validate();
  return spec;
}

namespace {

std::vector<RingSpec> read_ring_array(const Json& value,
                                      const SpecReader& reader,
                                      const char* what) {
  if (!value.is_array() || value.size() == 0) {
    throw Error(reader.context() + ": \"" + what +
                "\" must be a non-empty array of ring specs");
  }
  std::vector<RingSpec> out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    out.push_back(in_context(reader, what,
                             [&] { return RingSpec::from_json(value.at(i)); }));
  }
  return out;
}

}  // namespace

// --- VoltageSweepSpec -------------------------------------------------------

Json VoltageSweepSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("ring", ring.to_json());
  json.set("voltages", number_array_json(voltages));
  json.set("periods", static_cast<std::uint64_t>(periods));
  return json;
}

VoltageSweepSpec VoltageSweepSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  VoltageSweepSpec spec;
  spec.ring = in_context(reader, "ring", [&] {
    return RingSpec::from_json(reader.required("ring"));
  });
  spec.voltages = read_number_array(reader.required("voltages"), reader,
                                    "voltages");
  if (const Json* periods = reader.optional("periods")) {
    spec.periods = read_size(*periods, reader, "periods", 2);
  }
  reader.finish();
  return spec;
}

// --- TemperatureSweepSpec ---------------------------------------------------

Json TemperatureSweepSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("ring", ring.to_json());
  json.set("temperatures", number_array_json(temperatures));
  json.set("periods", static_cast<std::uint64_t>(periods));
  return json;
}

TemperatureSweepSpec TemperatureSweepSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  TemperatureSweepSpec spec;
  spec.ring = in_context(reader, "ring", [&] {
    return RingSpec::from_json(reader.required("ring"));
  });
  spec.temperatures = read_number_array(reader.required("temperatures"),
                                        reader, "temperatures");
  if (const Json* periods = reader.optional("periods")) {
    spec.periods = read_size(*periods, reader, "periods", 2);
  }
  reader.finish();
  return spec;
}

// --- ProcessVariabilitySpec -------------------------------------------------

Json ProcessVariabilitySpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("ring", ring.to_json());
  json.set("board_count", board_count);
  json.set("periods", static_cast<std::uint64_t>(periods));
  return json;
}

ProcessVariabilitySpec ProcessVariabilitySpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  ProcessVariabilitySpec spec;
  spec.ring = in_context(reader, "ring", [&] {
    return RingSpec::from_json(reader.required("ring"));
  });
  if (const Json* boards = reader.optional("board_count")) {
    spec.board_count =
        static_cast<unsigned>(read_u64(*boards, reader, "board_count", 2));
  }
  if (const Json* periods = reader.optional("periods")) {
    spec.periods = read_size(*periods, reader, "periods", 2);
  }
  reader.finish();
  return spec;
}

// --- JitterSweepSpec --------------------------------------------------------

Json JitterSweepSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("kind", kind == RingKind::iro ? "iro" : "str");
  json.set("stage_counts", size_array_json(stage_counts));
  json.set("divider_n", divider_n);
  json.set("mes_periods", static_cast<std::uint64_t>(mes_periods));
  return json;
}

JitterSweepSpec JitterSweepSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  JitterSweepSpec spec;
  spec.kind = in_context(reader, "kind", [&] {
    return parse_ring_kind(reader.required("kind").as_string());
  });
  spec.stage_counts = read_size_array(reader.required("stage_counts"), reader,
                                      "stage_counts", 3);
  if (const Json* divider = reader.optional("divider_n")) {
    const std::uint64_t n = read_u64(*divider, reader, "divider_n", 1);
    if (n > 30) throw Error(reader.context() + ": \"divider_n\" must be <= 30");
    spec.divider_n = static_cast<unsigned>(n);
  }
  if (const Json* periods = reader.optional("mes_periods")) {
    spec.mes_periods = read_size(*periods, reader, "mes_periods", 2);
  }
  reader.finish();
  return spec;
}

// --- ModeMapSpec ------------------------------------------------------------

Json ModeMapSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("stages", static_cast<std::uint64_t>(stages));
  json.set("token_counts", size_array_json(token_counts));
  json.set("placement", core::to_string(placement));
  json.set("charlie_scale", charlie_scale);
  json.set("periods", static_cast<std::uint64_t>(periods));
  return json;
}

ModeMapSpec ModeMapSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  ModeMapSpec spec;
  spec.stages = read_size(reader.required("stages"), reader, "stages", 3);
  spec.token_counts = read_size_array(reader.required("token_counts"), reader,
                                      "token_counts", 1);
  if (const Json* placement = reader.optional("placement")) {
    spec.placement = in_context(reader, "placement", [&] {
      return parse_token_placement(placement->as_string());
    });
  }
  if (const Json* scale = reader.optional("charlie_scale")) {
    spec.charlie_scale = scale->as_number();
    if (!(spec.charlie_scale >= 0.0)) {
      throw Error(reader.context() +
                  ": \"charlie_scale\" must be non-negative");
    }
  }
  if (const Json* periods = reader.optional("periods")) {
    spec.periods = read_size(*periods, reader, "periods", 2);
  }
  reader.finish();
  return spec;
}

// --- RestartSpec ------------------------------------------------------------

Json RestartSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("ring", ring.to_json());
  json.set("restarts", restarts);
  json.set("edges", static_cast<std::uint64_t>(edges));
  return json;
}

RestartSpec RestartSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  RestartSpec spec;
  spec.ring = in_context(reader, "ring", [&] {
    return RingSpec::from_json(reader.required("ring"));
  });
  if (const Json* restarts = reader.optional("restarts")) {
    spec.restarts =
        static_cast<unsigned>(read_u64(*restarts, reader, "restarts", 8));
  }
  if (const Json* edges = reader.optional("edges")) {
    spec.edges = read_size(*edges, reader, "edges", 8);
  }
  reader.finish();
  return spec;
}

// --- CoherentSweepSpec ------------------------------------------------------

Json CoherentSweepSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("ring", ring.to_json());
  json.set("design_detune", design_detune);
  json.set("board_count", board_count);
  json.set("periods", static_cast<std::uint64_t>(periods));
  return json;
}

CoherentSweepSpec CoherentSweepSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  CoherentSweepSpec spec;
  spec.ring = in_context(reader, "ring", [&] {
    return RingSpec::from_json(reader.required("ring"));
  });
  spec.design_detune = reader.required("design_detune").as_number();
  if (!(spec.design_detune > 0.0 && spec.design_detune < 0.2)) {
    throw Error(reader.context() + ": \"design_detune\" must be in (0, 0.2)");
  }
  if (const Json* boards = reader.optional("board_count")) {
    spec.board_count =
        static_cast<unsigned>(read_u64(*boards, reader, "board_count", 1));
  }
  if (const Json* periods = reader.optional("periods")) {
    spec.periods = read_size(*periods, reader, "periods", 2);
  }
  reader.finish();
  return spec;
}

// --- DeterministicJitterSpec ------------------------------------------------

Json DeterministicJitterSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("kind", kind == RingKind::iro ? "iro" : "str");
  json.set("stage_counts", size_array_json(stage_counts));
  json.set("modulation_amplitude_v", modulation_amplitude_v);
  json.set("modulation_frequency_hz", modulation_frequency_hz);
  json.set("periods", static_cast<std::uint64_t>(periods));
  return json;
}

DeterministicJitterSpec DeterministicJitterSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  DeterministicJitterSpec spec;
  spec.kind = in_context(reader, "kind", [&] {
    return parse_ring_kind(reader.required("kind").as_string());
  });
  spec.stage_counts = read_size_array(reader.required("stage_counts"), reader,
                                      "stage_counts", 3);
  if (const Json* amp = reader.optional("modulation_amplitude_v")) {
    spec.modulation_amplitude_v = amp->as_number();
    if (!(spec.modulation_amplitude_v >= 0.0)) {
      throw Error(reader.context() +
                  ": \"modulation_amplitude_v\" must be non-negative");
    }
  }
  if (const Json* freq = reader.optional("modulation_frequency_hz")) {
    spec.modulation_frequency_hz = freq->as_number();
    if (!(spec.modulation_frequency_hz > 0.0)) {
      throw Error(reader.context() +
                  ": \"modulation_frequency_hz\" must be positive");
    }
  }
  if (const Json* periods = reader.optional("periods")) {
    spec.periods = read_size(*periods, reader, "periods", 2);
  }
  reader.finish();
  return spec;
}

// --- EntropyMapSpec ---------------------------------------------------------

Json EntropyMapSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  Json kind_list = Json::array();
  for (const RingKind kind : kinds) {
    kind_list.push_back(kind == RingKind::iro ? "iro" : "str");
  }
  json.set("kinds", std::move(kind_list));
  json.set("stage_counts", size_array_json(stage_counts));
  Json period_list = Json::array();
  for (const Time period : sampling_periods) period_list.push_back(period.fs());
  json.set("sampling_periods_fs", std::move(period_list));
  json.set("bits_per_cell", static_cast<std::uint64_t>(bits_per_cell));
  json.set("restart_rows", static_cast<std::uint64_t>(restart_rows));
  json.set("restart_cols", static_cast<std::uint64_t>(restart_cols));
  json.set("battery", battery.to_json());
  return json;
}

EntropyMapSpec EntropyMapSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  EntropyMapSpec spec;
  const Json& kind_list = reader.required("kinds");
  if (!kind_list.is_array() || kind_list.size() == 0) {
    throw Error(reader.context() + ": \"kinds\" must be a non-empty array");
  }
  spec.kinds.clear();
  for (std::size_t i = 0; i < kind_list.size(); ++i) {
    spec.kinds.push_back(in_context(reader, "kinds", [&] {
      return parse_ring_kind(kind_list.at(i).as_string());
    }));
  }
  spec.stage_counts = read_size_array(reader.required("stage_counts"), reader,
                                      "stage_counts", 3);
  const Json& period_list = reader.required("sampling_periods_fs");
  if (!period_list.is_array() || period_list.size() == 0) {
    throw Error(reader.context() +
                ": \"sampling_periods_fs\" must be a non-empty array");
  }
  for (std::size_t i = 0; i < period_list.size(); ++i) {
    spec.sampling_periods.push_back(
        read_positive_time_fs(period_list.at(i), reader,
                              "sampling_periods_fs"));
  }
  if (const Json* bits = reader.optional("bits_per_cell")) {
    spec.bits_per_cell = read_size(*bits, reader, "bits_per_cell", 2);
  }
  if (const Json* rows = reader.optional("restart_rows")) {
    spec.restart_rows = read_size(*rows, reader, "restart_rows");
  }
  if (const Json* cols = reader.optional("restart_cols")) {
    spec.restart_cols = read_size(*cols, reader, "restart_cols");
  }
  if ((spec.restart_rows == 0) != (spec.restart_cols == 0)) {
    throw Error(reader.context() +
                ": restart_rows and restart_cols must be enabled together");
  }
  if (spec.restart_rows != 0 &&
      (spec.restart_rows < 2 || spec.restart_cols < 2)) {
    throw Error(reader.context() +
                ": restart validation needs a matrix of at least 2x2");
  }
  if (const Json* battery = reader.optional("battery")) {
    spec.battery = in_context(reader, "battery", [&] {
      return analysis::Entropy90bConfig::from_json(*battery);
    });
  }
  reader.finish();
  return spec;
}

// --- AttackResilienceSpec ---------------------------------------------------

Json AttackResilienceSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  Json ring_list = Json::array();
  for (const RingSpec& r : rings) ring_list.push_back(r.to_json());
  json.set("rings", std::move(ring_list));
  Json scenario_list = Json::array();
  for (const noise::FaultScenario& s : scenarios) {
    scenario_list.push_back(s.to_json());
  }
  json.set("scenarios", std::move(scenario_list));
  json.set("sampling_period_fs", sampling_period.fs());
  json.set("total_bits", static_cast<std::uint64_t>(total_bits));
  json.set("policy", policy.to_json());
  json.set("regulator", regulator.to_json());
  json.set("with_backup", with_backup);
  return json;
}

AttackResilienceSpec AttackResilienceSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  AttackResilienceSpec spec;
  spec.rings = read_ring_array(reader.required("rings"), reader, "rings");
  const Json& scenario_list = reader.required("scenarios");
  if (!scenario_list.is_array() || scenario_list.size() == 0) {
    throw Error(reader.context() +
                ": \"scenarios\" must be a non-empty array");
  }
  spec.scenarios.clear();
  for (std::size_t i = 0; i < scenario_list.size(); ++i) {
    spec.scenarios.push_back(in_context(reader, "scenarios", [&] {
      return noise::FaultScenario::from_json(scenario_list.at(i));
    }));
  }
  spec.sampling_period = read_positive_time_fs(
      reader.required("sampling_period_fs"), reader, "sampling_period_fs");
  if (const Json* bits = reader.optional("total_bits")) {
    spec.total_bits = read_size(*bits, reader, "total_bits", 1);
  }
  if (const Json* policy = reader.optional("policy")) {
    spec.policy = in_context(reader, "policy", [&] {
      return trng::DegradationPolicy::from_json(*policy);
    });
  }
  if (const Json* regulator = reader.optional("regulator")) {
    spec.regulator = in_context(reader, "regulator", [&] {
      return fpga::Regulator::from_json(*regulator);
    });
  }
  if (const Json* backup = reader.optional("with_backup")) {
    spec.with_backup = backup->as_boolean();
  }
  reader.finish();
  return spec;
}

// --- EntropyServiceSpec -----------------------------------------------------

Json EntropyServiceSpec::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(spec_schema));
  json.set("slots", static_cast<std::uint64_t>(slots));
  json.set("raw_bits_per_slot", raw_bits_per_slot);
  json.set("conditioner", service::conditioner_kind_name(conditioner));
  json.set("conditioner_ratio", static_cast<std::uint64_t>(conditioner_ratio));
  json.set("ring_capacity", static_cast<std::uint64_t>(ring_capacity));
  json.set("block_bytes", static_cast<std::uint64_t>(block_bytes));
  json.set("request_bytes", static_cast<std::uint64_t>(request_bytes));
  json.set("synthetic", synthetic);
  json.set("ring", ring.to_json());
  json.set("sampling_period_fs", sampling_period.fs());
  json.set("wait_budget_ms", wait_budget_ms);
  json.set("policy", policy.to_json());
  return json;
}

EntropyServiceSpec EntropyServiceSpec::from_json(const Json& json) {
  SpecReader reader(json, spec_schema);
  EntropyServiceSpec spec;
  spec.slots = read_size(reader.required("slots"), reader, "slots", 1);
  spec.raw_bits_per_slot =
      read_u64(reader.required("raw_bits_per_slot"), reader,
               "raw_bits_per_slot", 8);
  if (const Json* conditioner = reader.optional("conditioner")) {
    spec.conditioner = in_context(reader, "conditioner", [&] {
      return service::parse_conditioner_kind(conditioner->as_string());
    });
  }
  if (const Json* ratio = reader.optional("conditioner_ratio")) {
    spec.conditioner_ratio =
        read_size(*ratio, reader, "conditioner_ratio", 1);
  }
  if (const Json* capacity = reader.optional("ring_capacity")) {
    spec.ring_capacity = read_size(*capacity, reader, "ring_capacity", 2);
    if ((spec.ring_capacity & (spec.ring_capacity - 1)) != 0) {
      throw Error(reader.context() +
                  ": \"ring_capacity\" must be a power of two");
    }
  }
  if (const Json* block = reader.optional("block_bytes")) {
    spec.block_bytes = read_size(*block, reader, "block_bytes", 1);
  }
  if (const Json* request = reader.optional("request_bytes")) {
    spec.request_bytes = read_size(*request, reader, "request_bytes", 1);
  }
  if (const Json* synthetic = reader.optional("synthetic")) {
    spec.synthetic = synthetic->as_boolean();
  }
  if (const Json* ring = reader.optional("ring")) {
    spec.ring =
        in_context(reader, "ring", [&] { return RingSpec::from_json(*ring); });
  }
  if (const Json* period = reader.optional("sampling_period_fs")) {
    spec.sampling_period =
        read_positive_time_fs(*period, reader, "sampling_period_fs");
  }
  if (const Json* budget = reader.optional("wait_budget_ms")) {
    spec.wait_budget_ms = read_u64(*budget, reader, "wait_budget_ms");
  }
  if (const Json* policy = reader.optional("policy")) {
    spec.policy = in_context(reader, "policy", [&] {
      return trng::DegradationPolicy::from_json(*policy);
    });
  }
  reader.finish();
  return spec;
}

}  // namespace ringent::core
