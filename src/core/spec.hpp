// Ring configuration specs — the user-facing handle of the library.
#pragma once

#include <cstddef>
#include <string>

#include "ring/str_logic.hpp"

namespace ringent::core {

enum class RingKind { iro, str };

const char* to_string(RingKind kind);

/// Declarative description of one oscillator, in the paper's nomenclature:
/// "IRO 5C" is a 5-stage inverter ring, "STR 96C" a 96-stage self-timed ring.
struct RingSpec {
  RingKind kind = RingKind::iro;
  std::size_t stages = 5;

  /// STR only: number of tokens NT; 0 means "NT = NB" (stages/2, rounded
  /// down to even), the paper's default initialization (Eq. 2).
  std::size_t tokens = 0;

  /// STR only: initial token placement.
  ring::TokenPlacement placement = ring::TokenPlacement::evenly_spread;

  static RingSpec iro(std::size_t stages);
  static RingSpec str(std::size_t stages, std::size_t tokens = 0,
                      ring::TokenPlacement placement =
                          ring::TokenPlacement::evenly_spread);

  /// Effective token count after resolving the NT = NB default.
  std::size_t effective_tokens() const;

  /// Paper-style display name, e.g. "STR 96C".
  std::string name() const;

  /// Validate the spec (throws PreconditionError when unusable).
  void validate() const;
};

}  // namespace ringent::core
