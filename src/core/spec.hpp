// Ring configuration specs — the user-facing handle of the library.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "ring/str_logic.hpp"

namespace ringent::core {

enum class RingKind { iro, str };

const char* to_string(RingKind kind);
/// Inverse of to_string over the serialized names "iro" / "str"; throws
/// ringent::Error on anything else.
RingKind parse_ring_kind(std::string_view name);

const char* to_string(ring::TokenPlacement placement);
ring::TokenPlacement parse_token_placement(std::string_view name);

/// Declarative description of one oscillator, in the paper's nomenclature:
/// "IRO 5C" is a 5-stage inverter ring, "STR 96C" a 96-stage self-timed ring.
struct RingSpec {
  RingKind kind = RingKind::iro;
  std::size_t stages = 5;

  /// STR only: number of tokens NT; 0 means "NT = NB" (stages/2, rounded
  /// down to even), the paper's default initialization (Eq. 2).
  std::size_t tokens = 0;

  /// STR only: initial token placement.
  ring::TokenPlacement placement = ring::TokenPlacement::evenly_spread;

  static RingSpec iro(std::size_t stages);
  static RingSpec str(std::size_t stages, std::size_t tokens = 0,
                      ring::TokenPlacement placement =
                          ring::TokenPlacement::evenly_spread);

  /// Effective token count after resolving the NT = NB default.
  std::size_t effective_tokens() const;

  /// Paper-style display name, e.g. "STR 96C".
  std::string name() const;

  /// Validate the spec (throws PreconditionError when unusable).
  void validate() const;

  /// Serialized form: {"kind", "stages", "tokens", "placement"} — every
  /// field always present so the canonical dump is total. from_json rejects
  /// unknown keys and validates the result (implemented with the experiment
  /// spec loaders in core/spec_json.cpp).
  Json to_json() const;
  static RingSpec from_json(const Json& json);
};

}  // namespace ringent::core
