// Aligned-table and CSV rendering for bench output.
#pragma once

#include <string>
#include <vector>

namespace ringent::core {

/// Column-aligned plain-text table, markdown-ish, for bench stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Render with padded columns and a header separator.
  std::string str() const;

  /// Comma-separated rendering (header + rows).
  std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helpers for table cells.
std::string fmt_double(double v, int precision = 2);
std::string fmt_percent(double fraction, int precision = 1);
std::string fmt_mhz(double mhz);
std::string fmt_ps(double ps, int precision = 2);

}  // namespace ringent::core
