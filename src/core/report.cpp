#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/require.hpp"

namespace ringent::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RINGENT_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  RINGENT_REQUIRE(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string out = render_row(headers_);
  std::string sep = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::csv() const {
  const auto render = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = render(headers_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string fmt_mhz(double mhz) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f MHz", mhz);
  return buf;
}

std::string fmt_ps(double ps, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f ps", precision, ps);
  return buf;
}

}  // namespace ringent::core
