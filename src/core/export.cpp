#include "core/export.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "common/require.hpp"

#ifndef RINGENT_GIT_DESCRIBE
#define RINGENT_GIT_DESCRIBE "unknown"
#endif

namespace ringent::core {

std::optional<std::string> artifact_dir() {
  const char* dir = std::getenv("RINGENT_OUT_DIR");
  if (dir == nullptr || dir[0] == '\0') return std::nullopt;
  return std::string(dir);
}

bool write_artifact(const std::string& experiment_id, const Table& table,
                    const std::string& notes) {
  RINGENT_REQUIRE(!experiment_id.empty(), "empty experiment id");
  for (char c : experiment_id) {
    RINGENT_REQUIRE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                        c == '_',
                    "experiment id must be a filesystem-safe slug");
  }
  const auto dir = artifact_dir();
  if (!dir.has_value()) return false;

  const std::string path = *dir + "/" + experiment_id + ".csv";
  std::ofstream out(path);
  RINGENT_REQUIRE(out.good(), "cannot open artifact file " + path);
  out << "# ringent experiment artifact: " << experiment_id << "\n";
  if (!notes.empty()) out << "# " << notes << "\n";
  out << table.csv();
  out.flush();
  if (!out.good()) throw Error("I/O error writing artifact " + path);
  return true;
}

std::string_view version_string() { return RINGENT_GIT_DESCRIBE; }

namespace {

// Counters, seeds and sizes are unsigned in the manifest schema; a negative
// integer in a hand-edited (or hostile) manifest would otherwise survive
// from_json() only to make to_json() throw on the uint64 cast.
std::uint64_t non_negative(const Json& value, const char* what) {
  const std::int64_t v = value.as_integer();
  RINGENT_REQUIRE(v >= 0,
                  std::string("manifest field '") + what +
                      "' must be non-negative");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

Json RunManifest::to_json() const {
  Json root = Json::object();
  root.set("schema", std::string(schema));
  root.set("experiment", experiment);
  root.set("spec", spec);
  root.set("seed", seed);
  root.set("jobs", jobs);
  root.set("tasks", tasks);
  root.set("wall_ms", wall_ms);
  root.set("cpu_ms", cpu_ms);
  root.set("version", version);

  Json counters = Json::object();
  for (std::size_t i = 0; i < sim::metrics::counter_count; ++i) {
    const auto counter = static_cast<sim::metrics::Counter>(i);
    counters.set(std::string(sim::metrics::counter_name(counter)),
                 metrics.counters[i]);
  }
  root.set("counters", std::move(counters));

  Json phases = Json::array();
  for (const auto& phase : metrics.phases) {
    Json entry = Json::object();
    entry.set("name", phase.name);
    entry.set("wall_ms", phase.wall_ms);
    entry.set("cpu_ms", phase.cpu_ms);
    entry.set("calls", phase.calls);
    phases.push_back(std::move(entry));
  }
  root.set("phases", std::move(phases));
  return root;
}

RunManifest RunManifest::from_json(const Json& json) {
  RINGENT_REQUIRE(json.is_object(), "manifest must be a JSON object");
  RINGENT_REQUIRE(json.at("schema").as_string() == schema,
                  "unknown manifest schema");
  RunManifest m;
  m.experiment = json.at("experiment").as_string();
  m.spec = json.at("spec").as_string();
  m.seed = non_negative(json.at("seed"), "seed");
  m.jobs = static_cast<std::size_t>(non_negative(json.at("jobs"), "jobs"));
  m.tasks = static_cast<std::size_t>(non_negative(json.at("tasks"), "tasks"));
  m.wall_ms = json.at("wall_ms").as_number();
  m.cpu_ms = json.at("cpu_ms").as_number();
  m.version = json.at("version").as_string();

  const Json& counters = json.at("counters");
  RINGENT_REQUIRE(counters.is_object(), "manifest counters must be an object");
  for (std::size_t i = 0; i < sim::metrics::counter_count; ++i) {
    const auto counter = static_cast<sim::metrics::Counter>(i);
    m.metrics.counters[i] = non_negative(
        counters.at(sim::metrics::counter_name(counter)), "counters");
  }

  const Json& phases = json.at("phases");
  RINGENT_REQUIRE(phases.is_array(), "manifest phases must be an array");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Json& entry = phases.at(i);
    sim::metrics::PhaseStat stat;
    stat.name = entry.at("name").as_string();
    stat.wall_ms = entry.at("wall_ms").as_number();
    stat.cpu_ms = entry.at("cpu_ms").as_number();
    stat.calls = non_negative(entry.at("calls"), "calls");
    m.metrics.phases.push_back(std::move(stat));
  }
  return m;
}

namespace {
std::mutex last_manifest_mutex;
std::optional<RunManifest>& last_manifest_slot() {
  static std::optional<RunManifest>* slot = new std::optional<RunManifest>();
  return *slot;
}
}  // namespace

std::string write_run_manifest(const RunManifest& manifest) {
  RINGENT_REQUIRE(!manifest.experiment.empty(), "empty experiment id");
  for (char c : manifest.experiment) {
    RINGENT_REQUIRE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                        c == '_',
                    "experiment id must be a filesystem-safe slug");
  }
  const std::string dir = artifact_dir().value_or(".");
  const std::string path = dir + "/" + manifest.experiment + ".manifest.json";
  std::ofstream out(path);
  RINGENT_REQUIRE(out.good(), "cannot open manifest file " + path);
  out << manifest.to_json().dump(2) << "\n";
  out.flush();
  if (!out.good()) throw Error("I/O error writing manifest " + path);
  {
    std::lock_guard<std::mutex> lock(last_manifest_mutex);
    last_manifest_slot() = manifest;
  }
  return path;
}

std::optional<RunManifest> last_run_manifest() {
  std::lock_guard<std::mutex> lock(last_manifest_mutex);
  return last_manifest_slot();
}

}  // namespace ringent::core
