#include "core/export.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <mutex>
#include <utility>

#include "common/require.hpp"

#ifndef RINGENT_GIT_DESCRIBE
#define RINGENT_GIT_DESCRIBE "unknown"
#endif

namespace ringent::core {

std::optional<std::string> artifact_dir() {
  const char* dir = std::getenv("RINGENT_OUT_DIR");
  if (dir == nullptr || dir[0] == '\0') return std::nullopt;
  return std::string(dir);
}

bool write_artifact(const std::string& experiment_id, const Table& table,
                    const std::string& notes) {
  RINGENT_REQUIRE(!experiment_id.empty(), "empty experiment id");
  for (char c : experiment_id) {
    RINGENT_REQUIRE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                        c == '_',
                    "experiment id must be a filesystem-safe slug");
  }
  const auto dir = artifact_dir();
  if (!dir.has_value()) return false;

  const std::string path = *dir + "/" + experiment_id + ".csv";
  std::ofstream out(path);
  RINGENT_REQUIRE(out.good(), "cannot open artifact file " + path);
  out << "# ringent experiment artifact: " << experiment_id << "\n";
  if (!notes.empty()) out << "# " << notes << "\n";
  out << table.csv();
  out.flush();
  if (!out.good()) throw Error("I/O error writing artifact " + path);
  return true;
}

std::string_view version_string() { return RINGENT_GIT_DESCRIBE; }

namespace {

// Counters, seeds and sizes are unsigned in the manifest schema; a negative
// integer in a hand-edited (or hostile) manifest would otherwise survive
// from_json() only to make to_json() throw on the uint64 cast.
std::uint64_t non_negative(const Json& value, const char* what) {
  const std::int64_t v = value.as_integer();
  RINGENT_REQUIRE(v >= 0,
                  std::string("manifest field '") + what +
                      "' must be non-negative");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

HistogramSummary HistogramSummary::of(
    const sim::telemetry::HistogramSnapshot& h) {
  HistogramSummary out;
  out.name = std::string(h.name);
  out.count = h.count;
  out.mean = h.mean();
  out.p50 = h.quantile(0.50);
  out.p90 = h.quantile(0.90);
  out.p99 = h.quantile(0.99);
  out.p999 = h.quantile(0.999);
  return out;
}

namespace {

/// Json integers are exact only up to int64 max, but quantile bounds in the
/// top half-octave of the uint64 range (bucket_high of the last buckets, up
/// to UINT64_MAX) exceed it. Saturate on serialization — the bucket list
/// still carries the precise distribution, so a clamped quantile only loses
/// information where the bucket itself is already 2^58 wide.
Json saturated(std::uint64_t v) {
  constexpr auto limit =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  return Json(v > limit ? limit : v);
}

Json summary_to_json(const HistogramSummary& s) {
  Json entry = Json::object();
  entry.set("name", s.name);
  entry.set("count", saturated(s.count));
  entry.set("mean", s.mean);
  entry.set("p50", saturated(s.p50));
  entry.set("p90", saturated(s.p90));
  entry.set("p99", saturated(s.p99));
  entry.set("p999", saturated(s.p999));
  return entry;
}

HistogramSummary summary_from_json(const Json& entry) {
  HistogramSummary s;
  s.name = entry.at("name").as_string();
  s.count = non_negative(entry.at("count"), "count");
  s.mean = entry.at("mean").as_number();
  s.p50 = non_negative(entry.at("p50"), "p50");
  s.p90 = non_negative(entry.at("p90"), "p90");
  s.p99 = non_negative(entry.at("p99"), "p99");
  s.p999 = non_negative(entry.at("p999"), "p999");
  return s;
}

}  // namespace

Json RunManifest::to_json() const {
  Json root = Json::object();
  root.set("schema", std::string(schema));
  root.set("experiment", experiment);
  root.set("spec", spec);
  root.set("seed", seed);
  root.set("jobs", jobs);
  root.set("tasks", tasks);
  root.set("wall_ms", wall_ms);
  root.set("cpu_ms", cpu_ms);
  root.set("version", version);

  Json counters = Json::object();
  for (std::size_t i = 0; i < sim::metrics::counter_count; ++i) {
    const auto counter = static_cast<sim::metrics::Counter>(i);
    counters.set(std::string(sim::metrics::counter_name(counter)),
                 metrics.counters[i]);
  }
  root.set("counters", std::move(counters));

  Json phases = Json::array();
  for (const auto& phase : metrics.phases) {
    Json entry = Json::object();
    entry.set("name", phase.name);
    entry.set("wall_ms", phase.wall_ms);
    entry.set("cpu_ms", phase.cpu_ms);
    entry.set("calls", phase.calls);
    phases.push_back(std::move(entry));
  }
  root.set("phases", std::move(phases));

  if (!telemetry.empty()) {
    Json summaries = Json::array();
    for (const auto& s : telemetry) summaries.push_back(summary_to_json(s));
    root.set("telemetry", std::move(summaries));
  }
  return root;
}

RunManifest RunManifest::from_json(const Json& json) {
  RINGENT_REQUIRE(json.is_object(), "manifest must be a JSON object");
  RINGENT_REQUIRE(json.at("schema").as_string() == schema,
                  "unknown manifest schema");
  RunManifest m;
  m.experiment = json.at("experiment").as_string();
  m.spec = json.at("spec").as_string();
  m.seed = non_negative(json.at("seed"), "seed");
  m.jobs = static_cast<std::size_t>(non_negative(json.at("jobs"), "jobs"));
  m.tasks = static_cast<std::size_t>(non_negative(json.at("tasks"), "tasks"));
  m.wall_ms = json.at("wall_ms").as_number();
  m.cpu_ms = json.at("cpu_ms").as_number();
  m.version = json.at("version").as_string();

  const Json& counters = json.at("counters");
  RINGENT_REQUIRE(counters.is_object(), "manifest counters must be an object");
  for (std::size_t i = 0; i < sim::metrics::counter_count; ++i) {
    const auto counter = static_cast<sim::metrics::Counter>(i);
    m.metrics.counters[i] = non_negative(
        counters.at(sim::metrics::counter_name(counter)), "counters");
  }

  const Json& phases = json.at("phases");
  RINGENT_REQUIRE(phases.is_array(), "manifest phases must be an array");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Json& entry = phases.at(i);
    sim::metrics::PhaseStat stat;
    stat.name = entry.at("name").as_string();
    stat.wall_ms = entry.at("wall_ms").as_number();
    stat.cpu_ms = entry.at("cpu_ms").as_number();
    stat.calls = non_negative(entry.at("calls"), "calls");
    m.metrics.phases.push_back(std::move(stat));
  }

  if (json.contains("telemetry")) {
    const Json& summaries = json.at("telemetry");
    RINGENT_REQUIRE(summaries.is_array(),
                    "manifest telemetry must be an array");
    for (std::size_t i = 0; i < summaries.size(); ++i) {
      m.telemetry.push_back(summary_from_json(summaries.at(i)));
    }
  }
  return m;
}

namespace {
std::mutex last_manifest_mutex;
std::optional<RunManifest>& last_manifest_slot() {
  static std::optional<RunManifest>* slot = new std::optional<RunManifest>();
  return *slot;
}
}  // namespace

std::string write_run_manifest(const RunManifest& manifest) {
  RINGENT_REQUIRE(!manifest.experiment.empty(), "empty experiment id");
  for (char c : manifest.experiment) {
    RINGENT_REQUIRE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                        c == '_',
                    "experiment id must be a filesystem-safe slug");
  }
  const std::string dir = artifact_dir().value_or(".");
  const std::string path = dir + "/" + manifest.experiment + ".manifest.json";
  std::ofstream out(path);
  RINGENT_REQUIRE(out.good(), "cannot open manifest file " + path);
  out << manifest.to_json().dump(2) << "\n";
  out.flush();
  if (!out.good()) throw Error("I/O error writing manifest " + path);
  {
    std::lock_guard<std::mutex> lock(last_manifest_mutex);
    last_manifest_slot() = manifest;
  }
  return path;
}

std::optional<RunManifest> last_run_manifest() {
  std::lock_guard<std::mutex> lock(last_manifest_mutex);
  return last_manifest_slot();
}

// --- telemetry snapshots ----------------------------------------------------

namespace {

// HistogramSnapshot::name is a string_view into static storage; parsed
// snapshots must resolve their name against the known slugs (which doubles
// as schema validation for hand-edited or fuzzed input).
std::string_view histogram_slug(const std::string& name) {
  for (std::size_t i = 0; i < sim::telemetry::histogram_count; ++i) {
    const auto slug = sim::telemetry::histogram_name(
        static_cast<sim::telemetry::Histogram>(i));
    if (name == slug) return slug;
  }
  throw Error("unknown telemetry histogram '" + name + "'");
}

}  // namespace

std::vector<HistogramSummary> TelemetrySnapshot::summaries() const {
  std::vector<HistogramSummary> out;
  out.reserve(histograms.size());
  for (const auto& h : histograms) out.push_back(HistogramSummary::of(h));
  return out;
}

Json TelemetrySnapshot::to_json() const {
  Json root = Json::object();
  root.set("schema", std::string(schema));
  root.set("experiment", experiment);
  root.set("sequence", sequence);
  root.set("wall_ms", wall_ms);

  Json histos = Json::array();
  for (const auto& h : histograms) {
    Json entry = Json::object();
    entry.set("name", std::string(h.name));
    entry.set("count", saturated(h.count));
    entry.set("sum", saturated(h.sum));
    // Derived from the buckets; from_json ignores them (fixpoint contract).
    entry.set("p50", saturated(h.quantile(0.50)));
    entry.set("p90", saturated(h.quantile(0.90)));
    entry.set("p99", saturated(h.quantile(0.99)));
    entry.set("p999", saturated(h.quantile(0.999)));
    Json buckets = Json::array();
    for (const auto& [index, observations] : h.buckets) {
      Json bucket = Json::array();
      bucket.push_back(index);
      bucket.push_back(observations);
      buckets.push_back(std::move(bucket));
    }
    entry.set("buckets", std::move(buckets));
    histos.push_back(std::move(entry));
  }
  root.set("histograms", std::move(histos));

  Json stream_array = Json::array();
  for (const auto& s : streams) stream_array.push_back(s.to_json());
  root.set("streams", std::move(stream_array));
  return root;
}

TelemetrySnapshot TelemetrySnapshot::from_json(const Json& json) {
  RINGENT_REQUIRE(json.is_object(), "telemetry snapshot must be a JSON object");
  RINGENT_REQUIRE(json.at("schema").as_string() == schema,
                  "unknown telemetry schema");
  TelemetrySnapshot snap;
  snap.experiment = json.at("experiment").as_string();
  snap.sequence = non_negative(json.at("sequence"), "sequence");
  snap.wall_ms = json.at("wall_ms").as_number();

  const Json& histos = json.at("histograms");
  RINGENT_REQUIRE(histos.is_array(), "telemetry histograms must be an array");
  for (std::size_t i = 0; i < histos.size(); ++i) {
    const Json& entry = histos.at(i);
    sim::telemetry::HistogramSnapshot h;
    h.name = histogram_slug(entry.at("name").as_string());
    h.count = non_negative(entry.at("count"), "count");
    h.sum = non_negative(entry.at("sum"), "sum");
    const Json& buckets = entry.at("buckets");
    RINGENT_REQUIRE(buckets.is_array(), "histogram buckets must be an array");
    std::uint64_t total = 0;
    std::int64_t previous = -1;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const Json& bucket = buckets.at(b);
      RINGENT_REQUIRE(bucket.is_array() && bucket.size() == 2,
                      "histogram bucket must be an [index, count] pair");
      const std::uint64_t index = non_negative(bucket.at(0), "bucket index");
      const std::uint64_t observations =
          non_negative(bucket.at(1), "bucket count");
      RINGENT_REQUIRE(index < sim::telemetry::bucket_count,
                      "bucket index out of range");
      RINGENT_REQUIRE(static_cast<std::int64_t>(index) > previous,
                      "bucket indices must be strictly ascending");
      RINGENT_REQUIRE(observations > 0, "empty bucket in sparse histogram");
      previous = static_cast<std::int64_t>(index);
      total += observations;
      h.buckets.emplace_back(static_cast<std::uint32_t>(index), observations);
    }
    RINGENT_REQUIRE(total == h.count,
                    "histogram count disagrees with its buckets");
    snap.histograms.push_back(std::move(h));
  }

  const Json& stream_array = json.at("streams");
  RINGENT_REQUIRE(stream_array.is_array(),
                  "telemetry streams must be an array");
  for (std::size_t i = 0; i < stream_array.size(); ++i) {
    snap.streams.push_back(
        trng::telemetry::StreamStats::from_json(stream_array.at(i)));
  }
  return snap;
}

namespace {

std::mutex telemetry_mutex;
std::uint64_t telemetry_sequence = 0;

std::string& telemetry_path_slot() {
  static std::string* slot = new std::string();
  return *slot;
}

std::optional<TelemetrySnapshot>& last_telemetry_slot() {
  static std::optional<TelemetrySnapshot>* slot =
      new std::optional<TelemetrySnapshot>();
  return *slot;
}

}  // namespace

void set_telemetry_path(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(telemetry_mutex);
    telemetry_path_slot() = path;
  }
  sim::telemetry::set_enabled(!path.empty());
}

std::string telemetry_path() {
  std::lock_guard<std::mutex> lock(telemetry_mutex);
  return telemetry_path_slot();
}

bool telemetry_active() {
  std::lock_guard<std::mutex> lock(telemetry_mutex);
  return !telemetry_path_slot().empty() && sim::telemetry::enabled();
}

bool init_telemetry_from_env() {
  const char* env = std::getenv("RINGENT_TELEMETRY");
  if (env != nullptr && env[0] != '\0') {
    bool configured = false;
    {
      std::lock_guard<std::mutex> lock(telemetry_mutex);
      configured = !telemetry_path_slot().empty();
    }
    if (!configured) set_telemetry_path(env);
  }
  return telemetry_active();
}

TelemetrySnapshot collect_telemetry(const std::string& experiment,
                                    const sim::telemetry::Snapshot& delta,
                                    double wall_ms) {
  TelemetrySnapshot snap;
  snap.experiment = experiment;
  snap.wall_ms = wall_ms;
  snap.histograms = delta.non_empty();
  snap.streams = trng::telemetry::take_published();
  return snap;
}

std::string append_telemetry_snapshot(TelemetrySnapshot snapshot) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(telemetry_mutex);
    path = telemetry_path_slot();
    snapshot.sequence = telemetry_sequence++;
  }
  if (!path.empty()) {
    if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0) {
      // Scrape-file mode: the latest snapshot replaces the previous one.
      std::ofstream out(path);
      RINGENT_REQUIRE(out.good(), "cannot open telemetry sink " + path);
      out << prometheus_exposition(snapshot);
      out.flush();
      if (!out.good()) throw Error("I/O error writing telemetry sink " + path);
    } else {
      std::ofstream out(path, std::ios::app);
      RINGENT_REQUIRE(out.good(), "cannot open telemetry sink " + path);
      out << snapshot.to_json().dump() << "\n";
      out.flush();
      if (!out.good()) throw Error("I/O error writing telemetry sink " + path);
    }
  }
  {
    std::lock_guard<std::mutex> lock(telemetry_mutex);
    last_telemetry_slot() = std::move(snapshot);
  }
  return path;
}

std::optional<TelemetrySnapshot> last_telemetry_snapshot() {
  std::lock_guard<std::mutex> lock(telemetry_mutex);
  return last_telemetry_slot();
}

namespace {

std::string prom_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// Prometheus text-format label values escape backslash, quote and newline.
std::string prom_label(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string prometheus_exposition(const TelemetrySnapshot& snapshot) {
  std::string out;
  out += "# ringent telemetry exposition (schema " + std::string(
             TelemetrySnapshot::schema) + ", experiment \"" +
         snapshot.experiment + "\")\n";
  for (const auto& h : snapshot.histograms) {
    const std::string metric = "ringent_" + std::string(h.name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [index, observations] : h.buckets) {
      cumulative += observations;
      out += metric + "_bucket{le=\"" +
             std::to_string(sim::telemetry::bucket_high(index)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += metric + "_sum " + std::to_string(h.sum) + "\n";
    out += metric + "_count " + std::to_string(h.count) + "\n";
  }
  if (!snapshot.streams.empty()) {
    out += "# TYPE ringent_stream_bits gauge\n";
    for (const auto& s : snapshot.streams) {
      out += "ringent_stream_bits{stream=\"" + prom_label(s.label) + "\"} " +
             std::to_string(s.bits) + "\n";
    }
    out += "# TYPE ringent_stream_bias gauge\n";
    for (const auto& s : snapshot.streams) {
      out += "ringent_stream_bias{stream=\"" + prom_label(s.label) + "\"} " +
             prom_number(s.bias) + "\n";
    }
    out += "# TYPE ringent_stream_window_bias gauge\n";
    for (const auto& s : snapshot.streams) {
      out += "ringent_stream_window_bias{stream=\"" + prom_label(s.label) +
             "\"} " + prom_number(s.window_bias) + "\n";
    }
    out += "# TYPE ringent_stream_markov_min_entropy gauge\n";
    for (const auto& s : snapshot.streams) {
      out += "ringent_stream_markov_min_entropy{stream=\"" +
             prom_label(s.label) + "\"} " + prom_number(s.markov_min_entropy) +
             "\n";
    }
    out += "# TYPE ringent_stream_autocorrelation gauge\n";
    for (const auto& s : snapshot.streams) {
      for (std::size_t lag = 0; lag < s.autocorrelation.size(); ++lag) {
        out += "ringent_stream_autocorrelation{stream=\"" +
               prom_label(s.label) + "\",lag=\"" + std::to_string(lag + 1) +
               "\"} " + prom_number(s.autocorrelation[lag]) + "\n";
      }
    }
  }
  return out;
}

}  // namespace ringent::core
