#include "core/export.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "common/require.hpp"

namespace ringent::core {

std::optional<std::string> artifact_dir() {
  const char* dir = std::getenv("RINGENT_OUT_DIR");
  if (dir == nullptr || dir[0] == '\0') return std::nullopt;
  return std::string(dir);
}

bool write_artifact(const std::string& experiment_id, const Table& table,
                    const std::string& notes) {
  RINGENT_REQUIRE(!experiment_id.empty(), "empty experiment id");
  for (char c : experiment_id) {
    RINGENT_REQUIRE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                        c == '_',
                    "experiment id must be a filesystem-safe slug");
  }
  const auto dir = artifact_dir();
  if (!dir.has_value()) return false;

  const std::string path = *dir + "/" + experiment_id + ".csv";
  std::ofstream out(path);
  RINGENT_REQUIRE(out.good(), "cannot open artifact file " + path);
  out << "# ringent experiment artifact: " << experiment_id << "\n";
  if (!notes.empty()) out << "# " << notes << "\n";
  out << table.csv();
  out.flush();
  if (!out.good()) throw Error("I/O error writing artifact " + path);
  return true;
}

}  // namespace ringent::core
