#include "core/experiments.hpp"

#include <cmath>
#include <cstdio>
#include <exception>
#include <optional>
#include <string>

#include "analysis/fft.hpp"
#include "analysis/regression.hpp"
#include "analysis/periods.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"
#include "core/export.hpp"
#include "core/ring_source.hpp"
#include "measure/frequency.hpp"
#include "measure/method.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel.hpp"
#include "sim/trace.hpp"
#include "trng/coherent.hpp"
#include "analysis/entropy.hpp"

namespace ringent::core {

namespace {

BuildOptions base_build_options(const ExperimentOptions& options) {
  BuildOptions build;
  build.sigma_g_ps = options.with_noise ? -1.0 : 0.0;
  build.noise_seed = options.seed;
  build.warmup_periods = options.warmup_periods;
  return build;
}

RingSpec spec_for(RingKind kind, std::size_t stages) {
  return kind == RingKind::iro ? RingSpec::iro(stages) : RingSpec::str(stages);
}

/// Observability bracket around one driver invocation: a "driver" trace span
/// for the whole call; when metrics collection is on, a run manifest
/// carrying the counter/phase delta attributable to this run; and when a
/// telemetry sink is configured, one "ringent.telemetry/1" snapshot with the
/// histogram delta and any stream observables the driver published. Both are
/// written from the destructor, i.e. after the result is complete, and the
/// histogram summaries are embedded in the manifest when both are on.
class DriverScope {
 public:
  DriverScope(std::string experiment, std::string spec,
              const ExperimentOptions& options, std::size_t tasks)
      : span_(experiment, "driver"),
        active_(sim::metrics::enabled()),
        telemetry_active_(telemetry_active()) {
    if (!active_ && !telemetry_active_) return;
    manifest_.experiment = std::move(experiment);
    manifest_.spec = std::move(spec);
    manifest_.seed = options.seed;
    manifest_.jobs = sim::resolve_jobs(options.jobs);
    manifest_.tasks = tasks;
    before_ = sim::metrics::snapshot();
    if (telemetry_active_) telemetry_before_ = sim::telemetry::snapshot();
    wall_start_ = sim::metrics::wall_seconds();
    cpu_start_ = sim::metrics::process_cpu_seconds();
  }

  DriverScope(const DriverScope&) = delete;
  DriverScope& operator=(const DriverScope&) = delete;

  ~DriverScope() {
    if (!active_ && !telemetry_active_) return;
    manifest_.wall_ms = (sim::metrics::wall_seconds() - wall_start_) * 1e3;
    manifest_.cpu_ms =
        (sim::metrics::process_cpu_seconds() - cpu_start_) * 1e3;
    manifest_.metrics = sim::metrics::snapshot().delta_since(before_);
    manifest_.version = std::string(version_string());
    try {
      if (telemetry_active_) {
        const TelemetrySnapshot snapshot = collect_telemetry(
            manifest_.experiment,
            sim::telemetry::snapshot().delta_since(telemetry_before_),
            manifest_.wall_ms);
        manifest_.telemetry = snapshot.summaries();
        append_telemetry_snapshot(snapshot);
      }
      if (active_) write_run_manifest(manifest_);
    } catch (const std::exception& error) {
      // A destructor must not throw; a manifest or snapshot that cannot be
      // written is diagnostic output lost, not a failed experiment.
      std::fprintf(stderr, "ringent: dropping run observability: %s\n",
                   error.what());
    }
  }

 private:
  sim::trace::Span span_;
  bool active_ = false;
  bool telemetry_active_ = false;
  RunManifest manifest_;
  sim::metrics::Snapshot before_;
  sim::telemetry::Snapshot telemetry_before_;
  double wall_start_ = 0.0;
  double cpu_start_ = 0.0;
};

std::string stage_sweep_label(RingKind kind,
                              const std::vector<std::size_t>& stage_counts) {
  std::string label = kind == RingKind::iro ? "IRO" : "STR";
  label += " stages";
  for (std::size_t stages : stage_counts) {
    label += ' ' + std::to_string(stages);
  }
  return label;
}

}  // namespace

VoltageSweepResult run_voltage_sweep(const VoltageSweepSpec& sweep,
                                     const Calibration& calibration,
                                     const ExperimentOptions& options) {
  RINGENT_REQUIRE(!sweep.voltages.empty(), "need at least one voltage");
  const DriverScope driver_scope("voltage_sweep", sweep.ring.name(), options,
                          sweep.voltages.size());
  VoltageSweepResult out;
  out.spec = sweep.ring;

  out.points = sim::parallel_map(sweep.voltages, options.jobs, [&](double v) {
    const sim::trace::Span span("V=" + std::to_string(v), "axis");
    fpga::Supply supply(calibration.nominal_voltage);
    supply.set_level(v);

    BuildOptions build = base_build_options(options);
    build.supply = &supply;
    Oscillator osc = Oscillator::build(sweep.ring, calibration, build);
    osc.run_periods(sweep.periods);

    VoltageSweepPoint point;
    point.voltage_v = v;
    point.frequency_mhz = measure::mean_frequency_mhz(osc.output());
    return point;
  });
  const sim::metrics::ScopedPhase analyze("analyze");
  for (const auto& point : out.points) {
    if (std::abs(point.voltage_v - calibration.nominal_voltage) < 1e-9) {
      out.f_nominal_mhz = point.frequency_mhz;
    }
  }
  RINGENT_REQUIRE(out.f_nominal_mhz > 0.0,
                  "sweep must include the nominal voltage");

  double f_min = out.points.front().frequency_mhz;
  double f_max = f_min;
  for (auto& point : out.points) {
    point.normalized = point.frequency_mhz / out.f_nominal_mhz;
    f_min = std::min(f_min, point.frequency_mhz);
    f_max = std::max(f_max, point.frequency_mhz);
  }
  out.excursion = (f_max - f_min) / out.f_nominal_mhz;
  return out;
}

TemperatureSweepResult run_temperature_sweep(const TemperatureSweepSpec& sweep,
                                             const Calibration& calibration,
                                             const ExperimentOptions& options) {
  RINGENT_REQUIRE(!sweep.temperatures.empty(), "need at least one temperature");
  const DriverScope driver_scope("temperature_sweep", sweep.ring.name(),
                                 options, sweep.temperatures.size());
  TemperatureSweepResult out;
  out.spec = sweep.ring;

  out.points =
      sim::parallel_map(sweep.temperatures, options.jobs, [&](double t) {
        const sim::trace::Span span("T=" + std::to_string(t), "axis");
        fpga::Supply supply(calibration.nominal_voltage);
        supply.set_temperature_c(t);

        BuildOptions build = base_build_options(options);
        build.supply = &supply;
        Oscillator osc = Oscillator::build(sweep.ring, calibration, build);
        osc.run_periods(sweep.periods);

        TemperatureSweepPoint point;
        point.temperature_c = t;
        point.frequency_mhz = measure::mean_frequency_mhz(osc.output());
        return point;
      });
  const sim::metrics::ScopedPhase analyze("analyze");
  for (const auto& point : out.points) {
    if (std::abs(point.temperature_c - 25.0) < 1e-9) {
      out.f_nominal_mhz = point.frequency_mhz;
    }
  }
  RINGENT_REQUIRE(out.f_nominal_mhz > 0.0, "sweep must include 25 C");

  double f_min = out.points.front().frequency_mhz;
  double f_max = f_min;
  for (auto& point : out.points) {
    point.normalized = point.frequency_mhz / out.f_nominal_mhz;
    f_min = std::min(f_min, point.frequency_mhz);
    f_max = std::max(f_max, point.frequency_mhz);
  }
  out.excursion = (f_max - f_min) / out.f_nominal_mhz;
  return out;
}

ProcessVariabilityResult run_process_variability(
    const ProcessVariabilitySpec& sweep, const Calibration& calibration,
    const ExperimentOptions& options) {
  RINGENT_REQUIRE(sweep.board_count >= 2, "need at least two boards");
  const DriverScope driver_scope("process_variability", sweep.ring.name(),
                                 options, sweep.board_count);
  ProcessVariabilityResult out;
  out.spec = sweep.ring;

  out.boards = sim::parallel_index_map(
      sweep.board_count, options.jobs, [&](std::size_t b) {
        const sim::trace::Span span("board " + std::to_string(b), "axis");
        const fpga::Board board(options.seed, static_cast<unsigned>(b),
                                calibration.process);
        BuildOptions build = base_build_options(options);
        build.board = &board;
        Oscillator osc = Oscillator::build(sweep.ring, calibration, build);
        osc.run_periods(sweep.periods);

        BoardFrequency bf;
        bf.board = static_cast<unsigned>(b);
        bf.frequency_mhz = measure::mean_frequency_mhz(osc.output());
        return bf;
      });
  const sim::metrics::ScopedPhase analyze("analyze");
  SampleStats stats;
  for (const auto& bf : out.boards) stats.add(bf.frequency_mhz);
  out.mean_mhz = stats.mean();
  out.sigma_rel = stats.relative_stddev();
  return out;
}

std::vector<double> collect_periods_ps(const RingSpec& spec,
                                       const Calibration& calibration,
                                       std::size_t periods,
                                       const ExperimentOptions& options) {
  BuildOptions build = base_build_options(options);
  std::optional<fpga::Board> board;
  if (options.board_index >= 0) {
    board.emplace(options.seed, static_cast<unsigned>(options.board_index),
                  calibration.process);
    build.board = &*board;
  }
  Oscillator osc = Oscillator::build(spec, calibration, build);
  osc.run_periods(periods);
  auto all = analysis::periods_ps(osc.output());
  if (all.size() > periods) all.resize(periods);
  return all;
}

std::vector<JitterPoint> run_jitter_vs_stages(const JitterSweepSpec& sweep,
                                              const Calibration& calibration,
                                              const ExperimentOptions& options) {
  const std::size_t ring_periods =
      (std::size_t{1} << sweep.divider_n) * (sweep.mes_periods + 1) + 2;
  const DriverScope driver_scope(
      sweep.kind == RingKind::iro ? "jitter_vs_stages_iro"
                                  : "jitter_vs_stages_str",
      stage_sweep_label(sweep.kind, sweep.stage_counts), options,
      sweep.stage_counts.size());

  return sim::parallel_map(
      sweep.stage_counts, options.jobs, [&](std::size_t stages) {
        const sim::trace::Span span("k=" + std::to_string(stages), "axis");
        const RingSpec spec = spec_for(sweep.kind, stages);
        BuildOptions build = base_build_options(options);
        build.noise_seed =
            derive_seed(options.seed, "jitter-vs-stages", stages);
        std::optional<fpga::Board> board;
        if (options.board_index >= 0) {
          board.emplace(options.seed,
                        static_cast<unsigned>(options.board_index),
                        calibration.process);
          build.board = &*board;
        }
        Oscillator osc = Oscillator::build(spec, calibration, build);
        osc.run_periods(ring_periods);

        const std::vector<Time> edges = osc.output().rising_edges();

        const sim::metrics::ScopedPhase analyze("analyze");
        measure::OscilloscopeConfig scope_config = calibration.scope;
        scope_config.seed = derive_seed(options.seed, "scope", stages);
        measure::Oscilloscope scope(scope_config);
        const measure::JitterMethodResult method =
            measure::measure_sigma_p(edges, sweep.divider_n, scope);

        JitterPoint point;
        point.stages = stages;
        point.mean_period_ps = method.mean_period_ps;
        point.sigma_p_ps = method.sigma_p_ps;
        point.sigma_g_ps = measure::iro_sigma_g_ps(method.sigma_p_ps, stages);
        point.sigma_direct_ps = describe(analysis::periods_ps(edges)).stddev();
        return point;
      });
}

std::vector<ModeMapEntry> run_mode_map(const ModeMapSpec& map,
                                       const Calibration& calibration,
                                       const ExperimentOptions& options) {
  RINGENT_REQUIRE(map.charlie_scale >= 0.0, "negative charlie scale");
  Calibration scaled = calibration;
  scaled.str_d_charlie = calibration.str_d_charlie.scaled(map.charlie_scale);
  if (scaled.str_d_charlie.is_zero()) {
    // A strictly zero Charlie magnitude makes the delay curve piecewise
    // linear; keep a hair of smoothing for numerical sanity.
    scaled.str_d_charlie = Time::from_ps(1e-3);
  }

  const DriverScope driver_scope(
      "mode_map", "STR " + std::to_string(map.stages) + " stages", options,
      map.token_counts.size());
  return sim::parallel_map(
      map.token_counts, options.jobs, [&](std::size_t tokens) {
        const sim::trace::Span span("NT=" + std::to_string(tokens), "axis");
        const RingSpec spec = RingSpec::str(map.stages, tokens, map.placement);
        BuildOptions build = base_build_options(options);
        build.noise_seed = derive_seed(options.seed, "mode-map", tokens);
        Oscillator osc = Oscillator::build(spec, scaled, build);
        osc.run_periods(map.periods);

        const sim::metrics::ScopedPhase analyze("analyze");
        std::vector<Time> transition_times;
        transition_times.reserve(osc.output().transitions().size());
        for (const auto& tr : osc.output().transitions()) {
          transition_times.push_back(tr.at);
        }
        const ring::ModeAnalysis analysis =
            ring::classify_mode(transition_times);

        ModeMapEntry entry;
        entry.tokens = tokens;
        entry.mode = analysis.mode;
        entry.interval_cv = analysis.interval_cv;
        entry.frequency_mhz = measure::mean_frequency_mhz(osc.output());
        return entry;
      });
}

RestartResult run_restart_experiment(const RestartSpec& restart,
                                     const Calibration& calibration,
                                     const ExperimentOptions& options) {
  RINGENT_REQUIRE(restart.restarts >= 8, "need at least 8 restarts");
  RINGENT_REQUIRE(restart.edges >= 8, "need at least 8 edges");
  const DriverScope driver_scope("restart", restart.ring.name(), options,
                                 restart.restarts + 1);
  RestartResult out;
  out.spec = restart.ring;

  const auto run_edges = [&](std::uint64_t noise_seed) {
    BuildOptions build = base_build_options(options);
    build.noise_seed = noise_seed;
    build.warmup_periods = 0;  // restarts observe the transient by design
    Oscillator osc = Oscillator::build(restart.ring, calibration, build);
    osc.run_periods(restart.edges + 2);
    auto out_edges = osc.output().rising_edges();
    out_edges.resize(restart.edges);
    return out_edges;
  };

  // t_k across restarts with independent noise streams, plus one extra task
  // that re-runs restart 0's seed: the control — identical seeds must
  // collapse to zero divergence.
  std::vector<std::vector<Time>> runs = sim::parallel_index_map(
      restart.restarts + 1, options.jobs, [&](std::size_t r) {
        const sim::trace::Span span("restart " + std::to_string(r), "axis");
        const std::uint64_t index = r < restart.restarts ? r : 0;
        return run_edges(derive_seed(options.seed, "restart", index));
      });
  const sim::metrics::ScopedPhase analyze("analyze");
  out.control_identical = runs.front() == runs.back();
  runs.pop_back();

  std::vector<double> ks, spreads;
  for (std::size_t k = 0; k < restart.edges;
       k += std::max<std::size_t>(1, restart.edges / 32)) {
    SampleStats stats;
    for (const auto& run : runs) stats.add(run[k].ps());
    RestartPoint point;
    point.edge = k + 1;
    point.spread_ps = stats.stddev();
    out.points.push_back(point);
    ks.push_back(static_cast<double>(k + 1));
    spreads.push_back(point.spread_ps);
  }
  const auto fit = analysis::sqrt_law_fit(ks, spreads);
  out.diffusion_per_edge_ps = fit.coefficient;
  out.fit_r2 = fit.r2;
  return out;
}

CoherentSweepResult run_coherent_across_boards(const CoherentSweepSpec& sweep,
                                               const Calibration& calibration,
                                               const ExperimentOptions& options) {
  RINGENT_REQUIRE(sweep.design_detune > 0.0 && sweep.design_detune < 0.2,
                  "design detune out of (0, 0.2)");
  RINGENT_REQUIRE(sweep.board_count >= 2, "need at least two boards");
  const DriverScope driver_scope("coherent_boards", sweep.ring.name(), options,
                                 sweep.board_count);
  CoherentSweepResult out;
  out.spec = sweep.ring;
  out.design_detune = sweep.design_detune;

  out.boards = sim::parallel_index_map(
      sweep.board_count, options.jobs, [&](std::size_t b) {
        const sim::trace::Span span("board " + std::to_string(b), "axis");
        const fpga::Board board(options.seed, static_cast<unsigned>(b),
                                calibration.process);

        BuildOptions b0 = base_build_options(options);
        b0.board = &board;
        b0.lut_base = 0;
        Oscillator osc0 = Oscillator::build(sweep.ring, calibration, b0);

        BuildOptions b1 = base_build_options(options);
        b1.board = &board;
        b1.lut_base = 128;
        b1.delay_scale = 1.0 + sweep.design_detune;
        Oscillator osc1 = Oscillator::build(sweep.ring, calibration, b1);

        osc0.run_periods(sweep.periods);
        osc1.run_periods(sweep.periods);

        const sim::metrics::ScopedPhase analyze("analyze");
        const auto result = trng::coherent_sampling_bits(
            osc0.output().transitions(), osc1.output().rising_edges());

        CoherentBoardResult row;
        row.board = static_cast<unsigned>(b);
        row.half_beat_samples = result.median_run_length;
        row.implied_detune = 1.0 / (2.0 * result.median_run_length);
        row.bits = result.bits.size();
        if (result.bits.size() >= 100) {
          row.lsb_bias = analysis::bit_bias(result.bits);
        }
        return row;
      });
  SampleStats detunes;
  for (const auto& row : out.boards) {
    detunes.add(row.implied_detune);
    out.worst_deviation = std::max(
        out.worst_deviation,
        std::abs(row.implied_detune - sweep.design_detune));
  }
  out.detune_mean = detunes.mean();
  out.detune_sigma = detunes.stddev();
  return out;
}

std::vector<DeterministicJitterPoint> run_deterministic_jitter(
    const DeterministicJitterSpec& sweep, const Calibration& calibration,
    const ExperimentOptions& options) {
  const DriverScope driver_scope(
      sweep.kind == RingKind::iro ? "deterministic_jitter_iro"
                                  : "deterministic_jitter_str",
      stage_sweep_label(sweep.kind, sweep.stage_counts), options,
      sweep.stage_counts.size());
  return sim::parallel_map(
      sweep.stage_counts, options.jobs, [&](std::size_t stages) {
        const sim::trace::Span span("k=" + std::to_string(stages), "axis");
        const RingSpec spec = spec_for(sweep.kind, stages);

        fpga::Supply supply(calibration.nominal_voltage);
        supply.set_modulation(fpga::Modulation::sine(
            sweep.modulation_amplitude_v, sweep.modulation_frequency_hz));

        BuildOptions build = base_build_options(options);
        build.supply = &supply;
        build.noise_seed = derive_seed(options.seed, "det-jitter", stages);
        Oscillator osc = Oscillator::build(spec, calibration, build);
        osc.run_periods(sweep.periods);

        const sim::metrics::ScopedPhase analyze("analyze");
        std::vector<double> periods = analysis::periods_ps(osc.output());
        if (periods.size() > sweep.periods) periods.resize(sweep.periods);

        DeterministicJitterPoint point;
        point.stages = stages;
        point.mean_period_ps = describe(periods).mean();
        // The tone sits at f_mod expressed in cycles per period sample.
        const double tone_freq =
            sweep.modulation_frequency_hz * point.mean_period_ps * 1e-12;
        point.tone_ps = analysis::tone_amplitude(periods, tone_freq);
        point.tone_relative = point.tone_ps / point.mean_period_ps;

        // Residual random jitter with the deterministic tone subtracted; the
        // cycle-to-cycle statistic then also suppresses what little slow
        // residue the single-tone fit leaves (sigma_cc = sqrt(2) *
        // sigma_white).
        const std::vector<double> residual =
            analysis::remove_tone(periods, tone_freq);
        const analysis::JitterSummary summary =
            analysis::summarize_jitter(residual);
        point.random_ps = summary.cycle_to_cycle_jitter_ps / std::sqrt(2.0);
        return point;
      });
}

AttackResilienceSpec AttackResilienceSpec::paper_default() {
  using noise::FaultEvent;
  using noise::FaultScenario;
  const Time us = Time::from_us(1.0);

  AttackResilienceSpec spec;
  // The attack study claims H = 0.3 per raw bit (the certification study's
  // conditioned floor), giving an RCT cutoff of 68 and an APT cutoff of 887
  // over 1024-bit windows. The healthy APT count sits near 512 +- 16, so the
  // suspect threshold must clear 0.8x the cutoff to avoid flapping.
  spec.policy.claimed_min_entropy = 0.3;
  spec.policy.suspect_fraction = 0.8;

  // The tone amplitude is tuned (noise-free bisection) so the trough supply
  // level parks the 25-stage IRO's sampled beat f*Ts at 16.000: the
  // attacker's lock-in point. At the same amplitude the 24-stage STR's beat
  // stays ~0.26-0.30 periods from the nearest integer at both tone extremes.
  const double lock_amp_v = 0.103715;

  FaultScenario quiet;  // named "quiet" by default; no events

  FaultScenario tone;
  tone.name = "supply-tone";
  tone.events.push_back(
      FaultEvent::tone(us * 100, us * 700, lock_amp_v, 2000.0));

  FaultScenario brownout;
  brownout.name = "brown-out";
  brownout.events.push_back(FaultEvent::ramp(us * 150, us * 250, -lock_amp_v));
  brownout.events.push_back(
      FaultEvent::brownout(us * 250, us * 650, lock_amp_v));

  FaultScenario stuck;
  stuck.name = "stuck-stage";
  stuck.events.push_back(FaultEvent::stuck(us * 100, us * 900, 3));

  FaultScenario drift;
  drift.name = "delay-drift";
  drift.events.push_back(FaultEvent::drift(us * 100, us * 900, 60.0));

  FaultScenario kick;
  kick.name = "mode-kick";
  kick.events.push_back(FaultEvent::kick(us * 200, us * 400, 80.0, 12));

  spec.scenarios = {quiet, tone, brownout, stuck, drift, kick};
  return spec;
}

EntropyMapResult run_entropy_map(const EntropyMapSpec& spec,
                                 const Calibration& calibration,
                                 const ExperimentOptions& options) {
  RINGENT_REQUIRE(!spec.kinds.empty(), "need at least one ring kind");
  RINGENT_REQUIRE(!spec.stage_counts.empty(), "need at least one stage count");
  RINGENT_REQUIRE(!spec.sampling_periods.empty(),
                  "need at least one sampling period");
  for (const Time period : spec.sampling_periods) {
    RINGENT_REQUIRE(period > Time::zero(), "need a positive sampling period");
  }
  RINGENT_REQUIRE(spec.bits_per_cell >= 2, "need at least 2 bits per cell");
  RINGENT_REQUIRE((spec.restart_rows == 0) == (spec.restart_cols == 0),
                  "restart rows and cols must be enabled together");
  RINGENT_REQUIRE(spec.restart_rows == 0 ||
                      (spec.restart_rows >= 2 && spec.restart_cols >= 2),
                  "restart validation needs a matrix of at least 2x2");
  spec.battery.validate();

  std::string label;
  for (const RingKind kind : spec.kinds) {
    if (!label.empty()) label += " + ";
    label += kind == RingKind::iro ? "IRO" : "STR";
  }
  label += " stages x " + std::to_string(spec.stage_counts.size()) +
           ", periods x " + std::to_string(spec.sampling_periods.size());

  const std::size_t periods = spec.sampling_periods.size();
  const std::size_t per_kind = spec.stage_counts.size() * periods;
  const std::size_t cells = spec.kinds.size() * per_kind;
  const DriverScope driver_scope("entropy_map", label, options, cells);

  EntropyMapResult out;
  out.cells = sim::parallel_index_map(cells, options.jobs, [&](std::size_t i) {
    const RingKind kind = spec.kinds[i / per_kind];
    const std::size_t stages = spec.stage_counts[(i / periods) %
                                                 spec.stage_counts.size()];
    const Time sampling_period = spec.sampling_periods[i % periods];
    const RingSpec ring = spec_for(kind, stages);
    char period_label[32];
    std::snprintf(period_label, sizeof period_label, "%gns",
                  sampling_period.ns());
    const sim::trace::Span span(ring.name() + " @ " + period_label, "axis");

    RingSourceConfig config;
    config.spec = ring;
    config.sampling_period = sampling_period;
    config.seed = derive_seed(options.seed, "entropy-map", i);
    config.warmup_periods = options.warmup_periods;
    config.supply_nominal_v = calibration.nominal_voltage;
    RingBitSource source(config, calibration, noise::FaultScenario{});

    const bool watch = telemetry_active();
    trng::telemetry::StreamingEntropy stream;
    if (watch) source.attach_telemetry(&stream);

    analysis::BitStream bits;
    bits.reserve(spec.bits_per_cell);
    for (std::size_t b = 0; b < spec.bits_per_cell; ++b) {
      bits.append(source.next_bit() != 0);
    }

    // Restart matrix: `restart_rows` relock cycles through the source's
    // deterministic relock machinery (fresh noise stream per row, fault
    // schedule — here quiet — stays in absolute time).
    analysis::RestartMatrix matrix;
    if (spec.restart_rows > 0) {
      matrix.rows = spec.restart_rows;
      matrix.cols = spec.restart_cols;
      matrix.bits.reserve(spec.restart_rows * spec.restart_cols);
      for (std::size_t r = 0; r < spec.restart_rows; ++r) {
        source.restart(r + 1);
        for (std::size_t c = 0; c < spec.restart_cols; ++c) {
          matrix.bits.append(source.next_bit() != 0);
        }
      }
    }

    const sim::metrics::ScopedPhase analyze("analyze");
    EntropyMapCell cell;
    cell.ring = ring;
    cell.sampling_period = sampling_period;
    cell.estimate = analysis::estimate_entropy90b(bits, spec.battery);
    if (spec.restart_rows > 0) {
      cell.restart_run = true;
      cell.restart = analysis::validate_restarts(
          matrix, std::max(0.0, cell.estimate.min_entropy), spec.battery);
    }
    if (watch) {
      trng::telemetry::publish(trng::telemetry::StreamStats::capture(
          ring.name() + "@" + period_label, stream));
    }
    return cell;
  });

  const sim::metrics::ScopedPhase analyze("analyze");
  for (const auto& cell : out.cells) {
    const double h = cell.estimate.min_entropy;
    if (h >= 0.0 &&
        (out.floor_min_entropy < 0.0 || h < out.floor_min_entropy)) {
      out.floor_min_entropy = h;
    }
  }
  return out;
}

AttackResilienceResult run_attack_resilience(const AttackResilienceSpec& spec,
                                             const Calibration& calibration,
                                             const ExperimentOptions& options) {
  RINGENT_REQUIRE(!spec.rings.empty(), "need at least one ring");
  RINGENT_REQUIRE(!spec.scenarios.empty(), "need at least one scenario");
  RINGENT_REQUIRE(spec.total_bits > 0, "need a positive bit budget");
  RINGENT_REQUIRE(spec.sampling_period > Time::zero(),
                  "need a positive sampling period");
  for (const auto& scenario : spec.scenarios) scenario.validate();

  std::string label;
  for (const auto& ring : spec.rings) {
    if (!label.empty()) label += " + ";
    label += ring.name();
  }
  label += " x " + std::to_string(spec.scenarios.size()) + " scenarios";

  const std::size_t cells = spec.rings.size() * spec.scenarios.size();
  const DriverScope driver_scope("attack_resilience", label, options, cells);

  AttackResilienceResult out;
  out.cells = sim::parallel_index_map(cells, options.jobs, [&](std::size_t i) {
    const RingSpec& ring = spec.rings[i / spec.scenarios.size()];
    const noise::FaultScenario& scenario =
        spec.scenarios[i % spec.scenarios.size()];
    const sim::trace::Span span(ring.name() + " / " + scenario.name, "axis");

    RingSourceConfig config;
    config.spec = ring;
    config.sampling_period = spec.sampling_period;
    config.seed = derive_seed(options.seed, "attack", i);
    config.warmup_periods = options.warmup_periods;
    config.supply_nominal_v = calibration.nominal_voltage;
    config.regulator = spec.regulator;
    RingBitSource primary(config, calibration, scenario);

    // The backup ring shares the rail (supply faults are common-mode across
    // the die) but not the primary's stage-local faults.
    std::optional<RingBitSource> backup;
    if (spec.with_backup) {
      RingSourceConfig backup_config = config;
      backup_config.seed = derive_seed(options.seed, "attack-backup", i);
      backup.emplace(backup_config, calibration, scenario.supply_only());
    }

    trng::ResilientGenerator generator(primary, backup ? &*backup : nullptr,
                                       spec.policy);

    // When a telemetry sink is live, watch both the DFF-sampled raw stream
    // (pre-monitor) and the supervised stream the generator actually sees;
    // both readings are published under this cell's label.
    const bool watch = telemetry_active();
    trng::telemetry::StreamingEntropy raw_stream;
    trng::telemetry::StreamingEntropy monitored_stream;
    if (watch) {
      primary.attach_telemetry(&raw_stream);
      generator.attach_telemetry(&monitored_stream);
    }

    // Phase 1 spans the scenario's fault windows; phase 2 is the post-attack
    // health check on whatever budget remains.
    const double end_samples = scenario.end() / spec.sampling_period;
    const std::size_t attack_bits = std::min<std::size_t>(
        spec.total_bits, static_cast<std::size_t>(std::ceil(end_samples)));
    const auto during = generator.generate(attack_bits);
    const auto after = generator.generate(spec.total_bits - attack_bits);

    const sim::metrics::ScopedPhase analyze("analyze");
    const trng::ResilientStats& stats = generator.stats();
    AttackResilienceCell cell;
    cell.ring = ring;
    cell.scenario = scenario.name;
    cell.final_state = generator.state();
    cell.raw_bits = stats.bits_in;
    cell.emitted_bits = stats.bits_out;
    cell.muted_bits = stats.bits_muted;
    cell.muted_fraction =
        stats.bits_in == 0 ? 0.0
                           : static_cast<double>(stats.bits_muted) /
                                 static_cast<double>(stats.bits_in);
    if (stats.alarmed) {
      cell.detection_latency_bits =
          static_cast<std::int64_t>(stats.first_alarm_bit);
      if (stats.recovered) {
        cell.recovery_bits = static_cast<std::int64_t>(stats.recovered_bit -
                                                       stats.first_alarm_bit);
      }
    }
    cell.rct_alarms = stats.rct_alarms;
    cell.apt_alarms = stats.apt_alarms;
    cell.relock_attempts = stats.relock_attempts;
    cell.failovers = stats.failovers;
    cell.fault_activations =
        primary.injector().activations() +
        (backup ? backup->injector().activations() : 0);
    cell.post_attack_bits = after.size();
    if (!after.empty()) {
      std::size_t ones = 0;
      for (std::uint8_t b : after) ones += b;
      cell.post_attack_bias =
          static_cast<double>(ones) / static_cast<double>(after.size());
    }
    cell.transitions = generator.transitions();
    // 90B battery over everything the consumer saw: measured entropy, to
    // set against the health events above. Muting shortens this stream, so
    // short cells legitimately report -1 (no estimator ran).
    {
      analysis::BitStream emitted;
      emitted.reserve(during.size() + after.size());
      for (const std::uint8_t b : during) emitted.append(b != 0);
      for (const std::uint8_t b : after) emitted.append(b != 0);
      const analysis::Entropy90bResult battery =
          analysis::estimate_entropy90b(emitted);
      cell.emitted_min_entropy = battery.min_entropy;
      cell.emitted_h_markov = battery.h_markov;
    }
    if (watch) {
      const std::string cell_label = ring.name() + "/" + scenario.name;
      trng::telemetry::publish(trng::telemetry::StreamStats::capture(
          cell_label + ":raw", raw_stream));
      trng::telemetry::publish(trng::telemetry::StreamStats::capture(
          cell_label + ":monitored", monitored_stream));
    }
    return cell;
  });

  for (const auto& cell : out.cells) {
    out.total_transitions += cell.transitions.size();
  }
  return out;
}

EntropyServiceResult run_entropy_service(const EntropyServiceSpec& spec,
                                         const Calibration& calibration,
                                         const ExperimentOptions& options) {
  RINGENT_REQUIRE(spec.slots >= 1, "need at least one slot");
  RINGENT_REQUIRE(spec.request_bytes >= 1, "need a positive request size");

  service::PoolConfig pool_config;
  pool_config.slots = spec.slots;
  pool_config.workers =
      std::min(sim::resolve_jobs(options.jobs), spec.slots);
  pool_config.seed = options.seed;
  pool_config.raw_bits_per_slot = spec.raw_bits_per_slot;
  pool_config.conditioner = spec.conditioner;
  pool_config.conditioner_ratio = spec.conditioner_ratio;
  pool_config.ring_capacity = spec.ring_capacity;
  // Simulated rings emit ~1 bit per ms of wall time; keep the pump quantum
  // small so conditioned bytes reach the ring long before the front-end's
  // wait budget expires (a full-size quantum would starve the consumer).
  pool_config.pump_raw_bits = spec.synthetic ? 4096 : 256;
  pool_config.policy = spec.policy;

  std::string label = spec.synthetic ? "synthetic" : spec.ring.name();
  label += " x " + std::to_string(spec.slots) + " slots / " +
           service::conditioner_kind_name(spec.conditioner);
  const DriverScope driver_scope("entropy_service", label, options,
                                 spec.slots);

  // Real-ring slots own their RingBitSources through the BitSource pointers
  // the factory hands back, so no extra lifetime bookkeeping is needed.
  service::SourceFactory factory;
  if (spec.synthetic) {
    factory = [](std::size_t, std::uint64_t seed) {
      service::SlotSources sources;
      sources.primary = std::make_unique<service::PrngBitSource>(seed);
      sources.backup = std::make_unique<service::PrngBitSource>(
          derive_seed(seed, "backup"));
      return sources;
    };
  } else {
    factory = [&spec, &calibration](std::size_t, std::uint64_t seed) {
      RingSourceConfig config;
      config.spec = spec.ring;
      config.sampling_period = spec.sampling_period;
      config.seed = seed;
      config.supply_nominal_v = calibration.nominal_voltage;
      service::SlotSources sources;
      sources.primary = std::make_unique<RingBitSource>(
          config, calibration, noise::FaultScenario{});
      RingSourceConfig backup_config = config;
      backup_config.seed = derive_seed(seed, "backup");
      sources.backup = std::make_unique<RingBitSource>(
          backup_config, calibration, noise::FaultScenario{});
      return sources;
    };
  }

  service::GeneratorPool pool(pool_config, factory);
  service::FrontendConfig frontend_config;
  frontend_config.block_bytes = spec.block_bytes;
  frontend_config.wait_budget = std::chrono::milliseconds(
      spec.wait_budget_ms != 0 ? spec.wait_budget_ms
                               : (spec.synthetic ? 250 : 10000));
  service::EntropyService frontend(pool, frontend_config);

  EntropyServiceResult out;
  out.workers = pool.worker_count();

  const double wall_start = sim::metrics::wall_seconds();
  pool.start();
  std::vector<std::uint8_t> request(spec.request_bytes);
  std::uint64_t fnv = 1469598103934665603ull;  // FNV-1a offset basis
  try {
    for (;;) {
      const std::size_t got =
          frontend.acquire(std::span<std::uint8_t>(request));
      for (std::size_t i = 0; i < got; ++i) {
        if (out.head.size() < 32) out.head.push_back(request[i]);
        fnv = (fnv ^ request[i]) * 1099511628211ull;
      }
    }
  } catch (const service::StarvationError&) {
    // The drain's normal end: every slot exhausted its budget.
  }
  pool.stop();
  out.wall_seconds = sim::metrics::wall_seconds() - wall_start;

  const service::FrontendStats& fstats = frontend.stats();
  const service::PoolStats pstats = pool.stats();
  out.requests = fstats.requests;
  out.bytes_delivered = fstats.bytes_delivered;
  out.starvations = fstats.starvations;
  out.raw_bits_in = pstats.raw_bits_in;
  out.slots_failed = pstats.slots_failed;
  out.stream_fnv = fnv;
  if (out.wall_seconds > 0.0) {
    out.bytes_per_sec =
        static_cast<double>(out.bytes_delivered) / out.wall_seconds;
    out.requests_per_sec =
        static_cast<double>(out.requests) / out.wall_seconds;
  }
  return out;
}

}  // namespace ringent::core
