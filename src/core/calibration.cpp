#include "core/calibration.hpp"

#include <string>

#include "common/require.hpp"

namespace ringent::core {

namespace {

// Routing tables back-solved from the paper's measured frequencies:
// IRO:  T = 2 L (D_lut + r)          -> r = T/(2L) - D_lut
// STR:  T = 2 L (Ds + Dch + r) / NT  -> r = T NT/(2L) - (Ds + Dch)
// with NT = L/2, i.e. T = 4 (Ds + Dch + r).
fpga::RoutingModel make_iro_routing() {
  return fpga::RoutingModel({
      {3, Time::from_ps(0.0)},    // 654 MHz (Table II)
      {5, Time::from_ps(11.0)},   // 376 MHz (Table I)
      {25, Time::from_ps(19.0)},  //  73 MHz (Table I)
      {80, Time::from_ps(17.0)},  //  23 MHz (Table I)
  });
}

fpga::RoutingModel make_str_routing() {
  return fpga::RoutingModel({
      {4, Time::from_ps(0.0)},     // 653 MHz (Table I)
      {24, Time::from_ps(194.0)},  // 433 MHz
      {48, Time::from_ps(230.0)},  // 408 MHz
      {64, Time::from_ps(295.0)},  // 369 MHz
      {96, Time::from_ps(398.0)},  // 320 MHz
  });
}

}  // namespace

Calibration::Calibration()
    : iro_routing(make_iro_routing()), str_routing(make_str_routing()) {}

const Calibration& cyclone_iii() {
  static const Calibration calibration;
  return calibration;
}

const Calibration& find_device_profile(std::string_view name) {
  if (name == cyclone_iii_profile) return cyclone_iii();
  throw Error("unknown device profile \"" + std::string(name) +
              "\" (known: " + std::string(cyclone_iii_profile) + ")");
}

}  // namespace ringent::core
