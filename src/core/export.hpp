// Machine-readable experiment artifacts: CSV tables and JSON run manifests.
//
// Every bench prints the paper-shaped table to stdout; when the environment
// variable RINGENT_OUT_DIR names a writable directory, benches additionally
// drop CSV files there (one per table/series) so plots can be regenerated
// without scraping stdout. The export layer is deliberately dumb: benches
// build core::Table objects anyway, and artifact() writes table.csv() plus a
// provenance header (experiment id, seed, library version).
//
// Run manifests are the observability companion: when metrics collection is
// on (sim/metrics.hpp), every experiment driver emits one RunManifest —
// spec, master seed, resolved jobs, wall/CPU totals, per-phase timers and
// the counter delta attributable to that run — serialized as
// <dir>/<experiment>.manifest.json. The schema is versioned
// ("ringent.run-manifest/1") and round-trip checked by the test suite.
#pragma once

#include <optional>
#include <string>

#include "common/json.hpp"
#include "core/report.hpp"
#include "sim/metrics.hpp"

namespace ringent::core {

/// Directory from RINGENT_OUT_DIR, or nullopt when exporting is off.
std::optional<std::string> artifact_dir();

/// Write `table` as <dir>/<experiment_id>.csv with a provenance comment
/// header. No-op (returns false) when RINGENT_OUT_DIR is unset; throws
/// ringent::Error on I/O failure when it is set. `experiment_id` must be a
/// filesystem-safe slug (letters, digits, '-', '_').
bool write_artifact(const std::string& experiment_id, const Table& table,
                    const std::string& notes = "");

/// Library build provenance: `git describe --always --dirty` captured at
/// configure time, or "unknown" outside a git checkout.
std::string_view version_string();

/// One observable experiment run, emitted by every driver in
/// core/experiments.cpp when sim::metrics::enabled().
struct RunManifest {
  static constexpr std::string_view schema = "ringent.run-manifest/1";

  std::string experiment;  ///< filesystem-safe driver slug
  std::string spec;        ///< human-readable ring/sweep description
  std::uint64_t seed = 0;  ///< ExperimentOptions master seed
  std::size_t jobs = 0;    ///< resolved worker count
  std::size_t tasks = 0;   ///< independent sweep axes executed
  double wall_ms = 0.0;    ///< driver wall-clock
  double cpu_ms = 0.0;     ///< process CPU over the driver (> wall when parallel)
  sim::metrics::Snapshot metrics;  ///< counter/phase delta for this run
  std::string version;     ///< version_string() at emission

  Json to_json() const;
  /// Inverse of to_json(); throws ringent::Error when `json` does not
  /// satisfy the schema (missing key, wrong type, unknown schema id).
  static RunManifest from_json(const Json& json);
};

/// Serialize `manifest` to <dir>/<experiment>.manifest.json, where <dir> is
/// RINGENT_OUT_DIR or "." when unset. Returns the path written. Also
/// records the manifest for last_run_manifest(). Throws on I/O failure.
std::string write_run_manifest(const RunManifest& manifest);

/// The most recently written manifest of this process (empty before the
/// first write). Lets tests and callers validate a driver's event counts
/// without re-reading the file.
std::optional<RunManifest> last_run_manifest();

}  // namespace ringent::core
