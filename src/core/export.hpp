// Machine-readable experiment artifacts: CSV tables and JSON run manifests.
//
// Every bench prints the paper-shaped table to stdout; when the environment
// variable RINGENT_OUT_DIR names a writable directory, benches additionally
// drop CSV files there (one per table/series) so plots can be regenerated
// without scraping stdout. The export layer is deliberately dumb: benches
// build core::Table objects anyway, and artifact() writes table.csv() plus a
// provenance header (experiment id, seed, library version).
//
// Run manifests are the observability companion: when metrics collection is
// on (sim/metrics.hpp), every experiment driver emits one RunManifest —
// spec, master seed, resolved jobs, wall/CPU totals, per-phase timers and
// the counter delta attributable to that run — serialized as
// <dir>/<experiment>.manifest.json. The schema is versioned
// ("ringent.run-manifest/1") and round-trip checked by the test suite.
//
// Telemetry snapshots are the distribution-level companion: when a snapshot
// sink is configured (RINGENT_TELEMETRY=FILE or --telemetry FILE) every
// driver additionally appends one "ringent.telemetry/1" JSON line to that
// file — the histogram-registry delta (sim/telemetry.hpp) plus any stream
// observables published by trng/telemetry.hpp — and embeds quantile
// summaries in its run manifest. prometheus_exposition() renders the same
// snapshot in the Prometheus text format for scrape-style consumers; a sink
// path ending in ".prom" selects that format (latest snapshot wins) instead
// of JSONL.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/report.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "trng/telemetry.hpp"

namespace ringent::core {

/// Directory from RINGENT_OUT_DIR, or nullopt when exporting is off.
std::optional<std::string> artifact_dir();

/// Write `table` as <dir>/<experiment_id>.csv with a provenance comment
/// header. No-op (returns false) when RINGENT_OUT_DIR is unset; throws
/// ringent::Error on I/O failure when it is set. `experiment_id` must be a
/// filesystem-safe slug (letters, digits, '-', '_').
bool write_artifact(const std::string& experiment_id, const Table& table,
                    const std::string& notes = "");

/// Library build provenance: `git describe --always --dirty` captured at
/// configure time, or "unknown" outside a git checkout.
std::string_view version_string();

/// Quantile summary of one telemetry histogram, embedded in run manifests
/// (the full bucket list lives in the telemetry snapshot file).
struct HistogramSummary {
  std::string name;  ///< sim::telemetry::histogram_name slug
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;

  static HistogramSummary of(const sim::telemetry::HistogramSnapshot& h);
};

/// One observable experiment run, emitted by every driver in
/// core/experiments.cpp when sim::metrics::enabled().
struct RunManifest {
  static constexpr std::string_view schema = "ringent.run-manifest/1";

  std::string experiment;  ///< filesystem-safe driver slug
  std::string spec;        ///< human-readable ring/sweep description
  std::uint64_t seed = 0;  ///< ExperimentOptions master seed
  std::size_t jobs = 0;    ///< resolved worker count
  std::size_t tasks = 0;   ///< independent sweep axes executed
  double wall_ms = 0.0;    ///< driver wall-clock
  double cpu_ms = 0.0;     ///< process CPU over the driver (> wall when parallel)
  sim::metrics::Snapshot metrics;  ///< counter/phase delta for this run
  std::string version;     ///< version_string() at emission
  /// Histogram summaries for the run, present only when telemetry was
  /// collecting (the "telemetry" key is omitted when empty, so manifests
  /// written without telemetry are byte-identical to the pre-telemetry
  /// schema and pinned goldens stay valid).
  std::vector<HistogramSummary> telemetry;

  Json to_json() const;
  /// Inverse of to_json(); throws ringent::Error when `json` does not
  /// satisfy the schema (missing key, wrong type, unknown schema id).
  static RunManifest from_json(const Json& json);
};

/// Serialize `manifest` to <dir>/<experiment>.manifest.json, where <dir> is
/// RINGENT_OUT_DIR or "." when unset. Returns the path written. Also
/// records the manifest for last_run_manifest(). Throws on I/O failure.
std::string write_run_manifest(const RunManifest& manifest);

/// The most recently written manifest of this process (empty before the
/// first write). Lets tests and callers validate a driver's event counts
/// without re-reading the file.
std::optional<RunManifest> last_run_manifest();

/// One streamed telemetry snapshot: the histogram-registry delta of a run
/// (or a whole process) plus any published stream observables. Serialized
/// as a single JSON line ("ringent.telemetry/1") so a sink file is JSONL.
struct TelemetrySnapshot {
  static constexpr std::string_view schema = "ringent.telemetry/1";

  std::string experiment;     ///< driver slug or "<bench>-total"
  std::uint64_t sequence = 0; ///< per-process snapshot counter, assigned on append
  double wall_ms = 0.0;       ///< wall-clock covered by the snapshot
  std::vector<sim::telemetry::HistogramSnapshot> histograms;  ///< non-empty only
  std::vector<trng::telemetry::StreamStats> streams;

  /// Summaries for manifest embedding / human-readable tables.
  std::vector<HistogramSummary> summaries() const;

  /// The quantile fields in the JSON (p50/p90/p99/p999 per histogram) are
  /// derived from the buckets on serialization and ignored by from_json, so
  /// parse → dump is a fixpoint (fuzzed in fuzz/fuzz_telemetry.cpp).
  Json to_json() const;
  static TelemetrySnapshot from_json(const Json& json);
};

/// Configure the snapshot sink ("" disables). Also flips the
/// sim::telemetry collection switch so probes start recording.
void set_telemetry_path(const std::string& path);
/// The configured sink path ("" when none).
std::string telemetry_path();
/// True when a sink is configured and collection is on.
bool telemetry_active();
/// Adopt RINGENT_TELEMETRY as the sink when set and none is configured.
/// Returns the resulting telemetry_active().
bool init_telemetry_from_env();

/// Build a snapshot from a histogram-registry delta and the streams
/// published since the last drain.
TelemetrySnapshot collect_telemetry(const std::string& experiment,
                                    const sim::telemetry::Snapshot& delta,
                                    double wall_ms);

/// Append `snapshot` to the configured sink (assigning its sequence) and
/// remember it for last_telemetry_snapshot(). JSONL append, except a sink
/// ending in ".prom" is rewritten with the Prometheus exposition instead.
/// Returns the path written ("" when no sink is configured). Throws on I/O
/// failure.
std::string append_telemetry_snapshot(TelemetrySnapshot snapshot);

/// The most recently appended snapshot of this process.
std::optional<TelemetrySnapshot> last_telemetry_snapshot();

/// Prometheus text exposition of `snapshot`: one `# TYPE ... histogram`
/// family per histogram (cumulative le-buckets over the log-linear bucket
/// upper bounds) and gauges for the stream observables.
std::string prometheus_exposition(const TelemetrySnapshot& snapshot);

}  // namespace ringent::core
