// Machine-readable experiment artifacts.
//
// Every bench prints the paper-shaped table to stdout; when the environment
// variable RINGENT_OUT_DIR names a writable directory, benches additionally
// drop CSV files there (one per table/series) so plots can be regenerated
// without scraping stdout. The export layer is deliberately dumb: benches
// build core::Table objects anyway, and artifact() writes table.csv() plus a
// provenance header (experiment id, seed, library version).
#pragma once

#include <optional>
#include <string>

#include "core/report.hpp"

namespace ringent::core {

/// Directory from RINGENT_OUT_DIR, or nullopt when exporting is off.
std::optional<std::string> artifact_dir();

/// Write `table` as <dir>/<experiment_id>.csv with a provenance comment
/// header. No-op (returns false) when RINGENT_OUT_DIR is unset; throws
/// ringent::Error on I/O failure when it is set. `experiment_id` must be a
/// filesystem-safe slug (letters, digits, '-', '_').
bool write_artifact(const std::string& experiment_id, const Table& table,
                    const std::string& notes = "");

}  // namespace ringent::core
