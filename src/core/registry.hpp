// A name -> descriptor registry over every experiment driver in
// core/experiments.hpp. Each entry carries a one-line summary, the paper
// anchor it reproduces, and a type-erased `run_small` runner that executes
// a small default configuration of the driver with kernel metrics forced
// on and returns the RunManifest the driver emitted — the uniform
// "smoke-run any experiment and get its provenance record" entry point
// the CLI front ends dispatch through.
//
//   for (const auto& e : core::experiment_registry())
//     std::printf("%-22s %s\n", e.name.c_str(), e.summary.c_str());
//
//   const auto* exp = core::find_experiment("attack_resilience");
//   const core::RunManifest m = exp->run_small(core::cyclone_iii(), options);
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiments.hpp"
#include "core/export.hpp"

namespace ringent::core {

struct ExperimentDescriptor {
  /// Registry key; matches the `experiment` field of the manifest the
  /// driver writes (drivers that split by ring kind report a `_iro`/`_str`
  /// suffixed name — run_small picks the IRO flavour).
  std::string name;

  /// One-line description for `--list` output.
  std::string summary;

  /// Where in the paper (or which extension) this experiment comes from.
  std::string source;

  /// Run a small fixed spec of the driver with metrics enabled for the
  /// duration, and return the run manifest it emitted. Honors
  /// `options.seed` / `options.jobs`; restores the previous metrics state
  /// (enabled or not) before returning. Throws like the underlying driver
  /// on a bad calibration.
  std::function<RunManifest(const Calibration&, const ExperimentOptions&)>
      run_small;
};

/// All registered experiments, in presentation order (paper figures first,
/// extensions after). The vector is built once and lives for the process.
const std::vector<ExperimentDescriptor>& experiment_registry();

/// Look up a descriptor by name; nullptr when unknown.
const ExperimentDescriptor* find_experiment(std::string_view name);

}  // namespace ringent::core
