// A name -> descriptor registry over every experiment driver in
// core/experiments.hpp. Each entry carries a one-line summary, the paper
// anchor it reproduces, and a type-erased JSON-spec surface: a committed
// small default spec, a canonicalizer (parse + validate + re-emit — the
// campaign layer's cache-key normalizer), and `run_spec`, which executes
// the driver on a serialized spec with kernel metrics forced on and
// returns the RunManifest it emitted. `run_small` is a thin forwarder of
// `run_spec` over `default_spec()` — the uniform "smoke-run any experiment
// and get its provenance record" entry point the CLI front ends dispatch
// through.
//
//   for (const auto& e : core::experiment_registry())
//     std::printf("%-22s %s\n", e.name.c_str(), e.summary.c_str());
//
//   const auto* exp = core::find_experiment("attack_resilience");
//   const core::RunManifest m = exp->run_small(core::cyclone_iii(), options);
//
//   // Same run, driven from a document (the campaign path):
//   const Json spec = Json::parse(spec_text);
//   const core::RunManifest m2 =
//       exp->run_spec(spec, core::cyclone_iii(), options);
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiments.hpp"
#include "core/export.hpp"

namespace ringent::core {

struct ExperimentDescriptor {
  /// Registry key; matches the `experiment` field of the manifest the
  /// driver writes (drivers that split by ring kind report a `_iro`/`_str`
  /// suffixed name — run_small picks the IRO flavour).
  std::string name;

  /// One-line description for `--list` output.
  std::string summary;

  /// Where in the paper (or which extension) this experiment comes from.
  std::string source;

  /// Spec schema id ("ringent.spec.<name>/1") — the value of the "schema"
  /// key in every serialized spec of this experiment, and an ingredient of
  /// the campaign content key.
  std::string spec_schema;

  /// The committed small default spec, serialized. This is the exact
  /// configuration `run_small` executes; tests pin its canonical dump.
  std::function<Json()> default_spec;

  /// Parse + validate + re-serialize a spec document. Rejects unknown keys,
  /// missing required keys and out-of-range values (throws ringent::Error
  /// naming the schema); fills absent optional keys with the spec's
  /// defaults. The result is total (every field present) and stable:
  /// canonicalize(canonicalize(x)) == canonicalize(x), which is what the
  /// campaign layer hashes for content addressing.
  std::function<Json(const Json&)> canonicalize;

  /// Run the driver on a serialized spec with kernel metrics forced on for
  /// the duration, and return the run manifest it emitted. Honors
  /// `options.seed` / `options.jobs`; restores the previous metrics state
  /// (enabled or not) before returning. Throws like `canonicalize` on a bad
  /// spec and like the underlying driver on a bad calibration.
  std::function<RunManifest(const Json&, const Calibration&,
                            const ExperimentOptions&)>
      run_spec;

  /// run_spec over default_spec() — the one-call smoke runner.
  std::function<RunManifest(const Calibration&, const ExperimentOptions&)>
      run_small;
};

/// All registered experiments, in presentation order (paper figures first,
/// extensions after). The vector is built once and lives for the process.
const std::vector<ExperimentDescriptor>& experiment_registry();

/// Look up a descriptor by name; nullptr when unknown.
const ExperimentDescriptor* find_experiment(std::string_view name);

}  // namespace ringent::core
