// Calibrated device model for the paper's experimental platform: Altera
// Cyclone III boards with a linear supply regulator, measured with a LeCroy
// WavePro 735 Zi.
//
// Every constant here is traceable to a number in the paper:
//  * LUT/stage delays and the routing tables reproduce the measured
//    frequencies of Tables I & II (e.g. IRO 3C -> 654 MHz, STR 96C -> 320
//    MHz);
//  * sigma_g = 2 ps is the paper's extracted per-LUT jitter (Fig. 11);
//  * the process sigmas reproduce the Table II sigma_rel decomposition;
//  * the voltage-law pivots reproduce the Fig. 8 linear F(V) slopes and the
//    Table I excursions (the LUT pivot gives the flat ~49% IRO excursion;
//    the weaker routing sensitivity gives the STR's improvement with
//    length).
// See EXPERIMENTS.md for the paper-value vs model-value table.
#pragma once

#include <cstdint>
#include <string_view>

#include "fpga/delay_model.hpp"
#include "fpga/device.hpp"
#include "fpga/placement.hpp"
#include "measure/oscilloscope.hpp"
#include "ring/charlie.hpp"

namespace ringent::core {

struct Calibration {
  // --- static timing -------------------------------------------------------
  Time iro_lut_delay = Time::from_ps(255.0);  ///< inverter/buffer LUT delay
  Time str_d_static = Time::from_ps(260.0);   ///< Muller-LUT static delay Ds
  Time str_d_charlie = Time::from_ps(123.0);  ///< Charlie magnitude Dch
  ring::DraftingParams drafting = ring::DraftingParams::disabled();

  fpga::RoutingModel iro_routing;
  fpga::RoutingModel str_routing;

  // --- operating point -----------------------------------------------------
  // Temperature coefficients are typical Cyclone III numbers (~0.3-0.4% per
  // 10 C); the paper holds temperature fixed, the ext_temperature bench
  // sweeps it (the attack surface of its ref [1]).
  double nominal_voltage = 1.2;
  fpga::VoltageLaws laws{
      fpga::DelayVoltageLaw(0.385, 1.2, 4.0e-4),  // LUT: ~49% / 0.4 V
      fpga::DelayVoltageLaw(-0.40, 1.2, 2.5e-4),  // routing: ~25% / 0.4 V
      fpga::DelayVoltageLaw(0.385, 1.2, 4.0e-4),  // Charlie: tracks LUT
  };

  // --- process population --------------------------------------------------
  fpga::ProcessParams process{0.001, 0.0135};

  // --- dynamic noise -------------------------------------------------------
  double sigma_g_ps = 2.0;  ///< white Gaussian jitter per LUT firing

  // --- instrumentation -----------------------------------------------------
  measure::OscilloscopeConfig scope{};

  Calibration();
};

/// The calibrated Cyclone III model used by all paper reproductions.
const Calibration& cyclone_iii();

/// Stable device-profile id of the calibration above. Campaign content keys
/// hash this id (not the calibration constants), so a key names "the
/// calibrated Cyclone III model as of this schema" — recalibrating the
/// constants without bumping the id silently reuses stale cached cells, so
/// bump it ("/2") whenever the numbers move.
inline constexpr std::string_view cyclone_iii_profile = "cyclone-iii";

/// Resolve a device-profile id (as stored in campaign plans) to its
/// calibration; throws ringent::Error naming the id when unknown.
const Calibration& find_device_profile(std::string_view name);

}  // namespace ringent::core
