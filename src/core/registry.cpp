#include "core/registry.hpp"

#include <utility>

#include "sim/metrics.hpp"

namespace ringent::core {

namespace {

/// Run `fn` with kernel metrics forced on (so the driver's DriverScope
/// emits a run manifest), capture that manifest, and restore the previous
/// metrics state — including on the exception path, so a registry probe
/// never leaves global metrics flipped on behind the caller's back.
template <typename Fn>
RunManifest with_manifest(Fn&& fn) {
  const bool was_enabled = sim::metrics::enabled();
  sim::metrics::set_enabled(true);
  try {
    std::forward<Fn>(fn)();
  } catch (...) {
    sim::metrics::set_enabled(was_enabled);
    throw;
  }
  RunManifest manifest = last_run_manifest().value_or(RunManifest{});
  sim::metrics::set_enabled(was_enabled);
  return manifest;
}

std::vector<ExperimentDescriptor> build_registry() {
  using Options = ExperimentOptions;
  std::vector<ExperimentDescriptor> registry;

  registry.push_back(
      {"voltage_sweep",
       "normalized frequency vs supply voltage (IRO sensitivity)",
       "paper Fig. 8",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           run_voltage_sweep(VoltageSweepSpec{RingSpec::iro(3),
                                              {1.1, 1.2, 1.3}, 30},
                             cal, options);
         });
       }});

  registry.push_back(
      {"temperature_sweep",
       "normalized frequency vs die temperature at nominal voltage",
       "extension of paper ref [1]",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           run_temperature_sweep(TemperatureSweepSpec{RingSpec::str(4),
                                                      {15.0, 25.0, 35.0}, 30},
                                 cal, options);
         });
       }});

  registry.push_back(
      {"process_variability",
       "same bitstream across simulated boards, frequency spread",
       "paper Sec. V-C / Table II",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           run_process_variability(
               ProcessVariabilitySpec{RingSpec::iro(5), 3, 30}, cal, options);
         });
       }});

  registry.push_back(
      {"jitter_vs_stages",
       "period jitter vs ring length through the divider/scope chain",
       "paper Figs. 11-12",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           JitterSweepSpec sweep;
           sweep.kind = RingKind::iro;
           sweep.stage_counts = {3, 5};
           sweep.divider_n = 4;
           sweep.mes_periods = 20;
           run_jitter_vs_stages(sweep, cal, options);
         });
       }});

  registry.push_back(
      {"mode_map",
       "STR steady-state mode (evenly spaced / burst) per token count",
       "paper Sec. V-A",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           ModeMapSpec map_spec;
           map_spec.stages = 8;
           map_spec.token_counts = {2, 4};
           map_spec.placement = ring::TokenPlacement::clustered;
           map_spec.periods = 120;
           run_mode_map(map_spec, cal, options);
         });
       }});

  registry.push_back(
      {"restart",
       "restart technique: k-th edge spread growth across identical starts",
       "standard TRNG entropy validation",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           run_restart_experiment(RestartSpec{RingSpec::iro(5), 8, 16}, cal,
                                  options);
         });
       }});

  registry.push_back(
      {"coherent_boards",
       "coherent-sampling beat window across process-varied boards",
       "paper conclusion / Table II consequence",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           run_coherent_across_boards(
               CoherentSweepSpec{RingSpec::iro(3), 0.05, 2, 500}, cal,
               options);
         });
       }});

  registry.push_back(
      {"deterministic_jitter",
       "supply-tone leakage into the period sequence per ring length",
       "paper Sec. IV-B",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           DeterministicJitterSpec sweep;
           sweep.kind = RingKind::iro;
           sweep.stage_counts = {3, 5};
           sweep.periods = 256;
           run_deterministic_jitter(sweep, cal, options);
         });
       }});

  registry.push_back(
      {"entropy_map",
       "SP 800-90B min-entropy over sampling period x ring length",
       "NIST SP 800-90B Sec. 6.3 / ROADMAP deeper entropy claims",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           // Both topologies, one short ring, two sampling periods, a few
           // hundred bits per cell plus a small restart matrix — enough for
           // MCV/collision/Markov/t-tuple to run, small enough for a CLI
           // smoke run.
           EntropyMapSpec spec;
           spec.stage_counts = {5};  // valid for both IRO and STR (NT = 2)
           spec.sampling_periods = {Time::from_ns(250.0),
                                    Time::from_ns(500.0)};
           spec.bits_per_cell = 512;
           spec.restart_rows = 4;
           spec.restart_cols = 32;
           run_entropy_map(spec, cal, options);
         });
       }});

  registry.push_back(
      {"attack_resilience",
       "fault scenarios vs the health-monitored generator pipeline",
       "paper Sec. IV-B attack, AIS 31-style online tests",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           // One ring, two scenarios (quiet + the tuned supply tone) and
           // enough bits to cross the tone's detection point — small
           // enough for a CLI smoke run, rich enough that the manifest's
           // health counters are non-trivial.
           AttackResilienceSpec spec = AttackResilienceSpec::paper_default();
           spec.rings = {RingSpec::iro(25)};
           spec.scenarios = {spec.scenarios.at(0), spec.scenarios.at(1)};
           spec.total_bits = 2000;
           run_attack_resilience(spec, cal, options);
         });
       }});

  registry.push_back(
      {"entropy_service",
       "conditioned streaming TRNG service: pool -> rings -> front-end",
       "ROADMAP entropy-as-a-service tentpole",
       [](const Calibration& cal, const Options& options) {
         return with_manifest([&] {
           // Synthetic sources keep the smoke run fast; the budget is small
           // but big enough that every slot produces several blocks and the
           // manifest carries non-trivial counters.
           EntropyServiceSpec spec;
           spec.slots = 2;
           spec.raw_bits_per_slot = 1u << 14;
           run_entropy_service(spec, cal, options);
         });
       }});

  return registry;
}

}  // namespace

const std::vector<ExperimentDescriptor>& experiment_registry() {
  static const std::vector<ExperimentDescriptor> registry = build_registry();
  return registry;
}

const ExperimentDescriptor* find_experiment(std::string_view name) {
  for (const auto& entry : experiment_registry()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace ringent::core
