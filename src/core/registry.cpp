#include "core/registry.hpp"

#include <string>
#include <utility>

#include "sim/metrics.hpp"

namespace ringent::core {

namespace {

/// Run `fn` with kernel metrics forced on (so the driver's DriverScope
/// emits a run manifest), capture that manifest, and restore the previous
/// metrics state — including on the exception path, so a registry probe
/// never leaves global metrics flipped on behind the caller's back.
template <typename Fn>
RunManifest with_manifest(Fn&& fn) {
  const bool was_enabled = sim::metrics::enabled();
  sim::metrics::set_enabled(true);
  try {
    std::forward<Fn>(fn)();
  } catch (...) {
    sim::metrics::set_enabled(was_enabled);
    throw;
  }
  RunManifest manifest = last_run_manifest().value_or(RunManifest{});
  sim::metrics::set_enabled(was_enabled);
  return manifest;
}

/// Build one descriptor from an experiment's Spec type, its committed small
/// default instance and its driver function. The JSON surface (schema id,
/// default_spec, canonicalize, run_spec) falls out of the Spec's
/// to_json/from_json pair; run_small forwards run_spec over the default, so
/// every smoke run also exercises the deserializer.
template <typename Spec, typename Driver>
ExperimentDescriptor make_entry(const char* name, const char* summary,
                                const char* source, Spec small_spec,
                                Driver driver) {
  ExperimentDescriptor entry;
  entry.name = name;
  entry.summary = summary;
  entry.source = source;
  entry.spec_schema = std::string(Spec::spec_schema);
  entry.default_spec = [small_spec] { return small_spec.to_json(); };
  entry.canonicalize = [](const Json& json) {
    return Spec::from_json(json).to_json();
  };
  entry.run_spec = [driver](const Json& json, const Calibration& cal,
                            const ExperimentOptions& options) {
    const Spec spec = Spec::from_json(json);
    return with_manifest([&] { driver(spec, cal, options); });
  };
  entry.run_small = [run = entry.run_spec, spec_json = small_spec.to_json()](
                        const Calibration& cal,
                        const ExperimentOptions& options) {
    return run(spec_json, cal, options);
  };
  return entry;
}

std::vector<ExperimentDescriptor> build_registry() {
  std::vector<ExperimentDescriptor> registry;

  registry.push_back(make_entry(
      "voltage_sweep",
      "normalized frequency vs supply voltage (IRO sensitivity)",
      "paper Fig. 8",
      VoltageSweepSpec{RingSpec::iro(3), {1.1, 1.2, 1.3}, 30},
      [](const VoltageSweepSpec& spec, const Calibration& cal,
         const ExperimentOptions& options) {
        run_voltage_sweep(spec, cal, options);
      }));

  registry.push_back(make_entry(
      "temperature_sweep",
      "normalized frequency vs die temperature at nominal voltage",
      "extension of paper ref [1]",
      TemperatureSweepSpec{RingSpec::str(4), {15.0, 25.0, 35.0}, 30},
      [](const TemperatureSweepSpec& spec, const Calibration& cal,
         const ExperimentOptions& options) {
        run_temperature_sweep(spec, cal, options);
      }));

  registry.push_back(make_entry(
      "process_variability",
      "same bitstream across simulated boards, frequency spread",
      "paper Sec. V-C / Table II",
      ProcessVariabilitySpec{RingSpec::iro(5), 3, 30},
      [](const ProcessVariabilitySpec& spec, const Calibration& cal,
         const ExperimentOptions& options) {
        run_process_variability(spec, cal, options);
      }));

  {
    JitterSweepSpec sweep;
    sweep.kind = RingKind::iro;
    sweep.stage_counts = {3, 5};
    sweep.divider_n = 4;
    sweep.mes_periods = 20;
    registry.push_back(make_entry(
        "jitter_vs_stages",
        "period jitter vs ring length through the divider/scope chain",
        "paper Figs. 11-12", sweep,
        [](const JitterSweepSpec& spec, const Calibration& cal,
           const ExperimentOptions& options) {
          run_jitter_vs_stages(spec, cal, options);
        }));
  }

  {
    ModeMapSpec map_spec;
    map_spec.stages = 8;
    map_spec.token_counts = {2, 4};
    map_spec.placement = ring::TokenPlacement::clustered;
    map_spec.periods = 120;
    registry.push_back(make_entry(
        "mode_map",
        "STR steady-state mode (evenly spaced / burst) per token count",
        "paper Sec. V-A", map_spec,
        [](const ModeMapSpec& spec, const Calibration& cal,
           const ExperimentOptions& options) {
          run_mode_map(spec, cal, options);
        }));
  }

  registry.push_back(make_entry(
      "restart",
      "restart technique: k-th edge spread growth across identical starts",
      "standard TRNG entropy validation",
      RestartSpec{RingSpec::iro(5), 8, 16},
      [](const RestartSpec& spec, const Calibration& cal,
         const ExperimentOptions& options) {
        run_restart_experiment(spec, cal, options);
      }));

  registry.push_back(make_entry(
      "coherent_boards",
      "coherent-sampling beat window across process-varied boards",
      "paper conclusion / Table II consequence",
      CoherentSweepSpec{RingSpec::iro(3), 0.05, 2, 500},
      [](const CoherentSweepSpec& spec, const Calibration& cal,
         const ExperimentOptions& options) {
        run_coherent_across_boards(spec, cal, options);
      }));

  {
    DeterministicJitterSpec sweep;
    sweep.kind = RingKind::iro;
    sweep.stage_counts = {3, 5};
    sweep.periods = 256;
    registry.push_back(make_entry(
        "deterministic_jitter",
        "supply-tone leakage into the period sequence per ring length",
        "paper Sec. IV-B", sweep,
        [](const DeterministicJitterSpec& spec, const Calibration& cal,
           const ExperimentOptions& options) {
          run_deterministic_jitter(spec, cal, options);
        }));
  }

  {
    // Both topologies, one short ring, two sampling periods, a few
    // hundred bits per cell plus a small restart matrix — enough for
    // MCV/collision/Markov/t-tuple to run, small enough for a CLI
    // smoke run.
    EntropyMapSpec spec;
    spec.stage_counts = {5};  // valid for both IRO and STR (NT = 2)
    spec.sampling_periods = {Time::from_ns(250.0), Time::from_ns(500.0)};
    spec.bits_per_cell = 512;
    spec.restart_rows = 4;
    spec.restart_cols = 32;
    registry.push_back(make_entry(
        "entropy_map",
        "SP 800-90B min-entropy over sampling period x ring length",
        "NIST SP 800-90B Sec. 6.3 / ROADMAP deeper entropy claims", spec,
        [](const EntropyMapSpec& s, const Calibration& cal,
           const ExperimentOptions& options) {
          run_entropy_map(s, cal, options);
        }));
  }

  {
    // One ring, two scenarios (quiet + the tuned supply tone) and
    // enough bits to cross the tone's detection point — small
    // enough for a CLI smoke run, rich enough that the manifest's
    // health counters are non-trivial.
    AttackResilienceSpec spec = AttackResilienceSpec::paper_default();
    spec.rings = {RingSpec::iro(25)};
    spec.scenarios = {spec.scenarios.at(0), spec.scenarios.at(1)};
    spec.total_bits = 2000;
    registry.push_back(make_entry(
        "attack_resilience",
        "fault scenarios vs the health-monitored generator pipeline",
        "paper Sec. IV-B attack, AIS 31-style online tests", spec,
        [](const AttackResilienceSpec& s, const Calibration& cal,
           const ExperimentOptions& options) {
          run_attack_resilience(s, cal, options);
        }));
  }

  {
    // Synthetic sources keep the smoke run fast; the budget is small
    // but big enough that every slot produces several blocks and the
    // manifest carries non-trivial counters.
    EntropyServiceSpec spec;
    spec.slots = 2;
    spec.raw_bits_per_slot = 1u << 14;
    registry.push_back(make_entry(
        "entropy_service",
        "conditioned streaming TRNG service: pool -> rings -> front-end",
        "ROADMAP entropy-as-a-service tentpole", spec,
        [](const EntropyServiceSpec& s, const Calibration& cal,
           const ExperimentOptions& options) {
          run_entropy_service(s, cal, options);
        }));
  }

  return registry;
}

}  // namespace

const std::vector<ExperimentDescriptor>& experiment_registry() {
  static const std::vector<ExperimentDescriptor> registry = build_registry();
  return registry;
}

const ExperimentDescriptor* find_experiment(std::string_view name) {
  for (const auto& entry : experiment_registry()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace ringent::core
