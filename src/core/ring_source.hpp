// RingBitSource: a live simulated ring + DFF sampler as a trng::BitSource.
//
// This is the glue between the physical layer and the resilience layer: it
// owns a Supply, a noise::FaultInjector realizing one FaultScenario against
// that supply (and against the ring's per-stage delays), and the Oscillator
// itself, and serves the sampled bit stream one bit at a time so a
// trng::ResilientGenerator can supervise it on-line.
//
// Simulation advances lazily in chunks of `chunk_bits` sample instants; the
// injector's supply state is re-applied at every schedule boundary so the
// rail follows the scenario exactly (see FaultInjector's usage contract).
// The output trace is cleared after each chunk, so memory stays bounded no
// matter how many bits are drawn.
//
// restart(attempt) implements the re-lock action of the degradation policy:
// the oscillator is torn down and rebuilt with a fresh noise stream
// (derive_seed(seed, "relock", attempt)) while the fault schedule keeps
// running in absolute experiment time — a power-cycle does not make an
// attacker go away. Unconsumed buffered bits are dropped, exactly like real
// samples taken while the ring was dark.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/calibration.hpp"
#include "core/oscillator.hpp"
#include "core/spec.hpp"
#include "fpga/supply.hpp"
#include "noise/fault.hpp"
#include "trng/resilient.hpp"

namespace ringent::core {

struct RingSourceConfig {
  RingSpec spec = RingSpec::iro(25);

  /// Period of the sampling flip-flop's reference clock. Much slower than
  /// the ring, as in the paper's elementary TRNG (refs [1][2]).
  Time sampling_period = Time::from_ns(250.0);

  /// Sample instants simulated per refill (memory/latency granularity).
  std::size_t chunk_bits = 256;

  std::uint64_t seed = 1;
  std::size_t warmup_periods = 64;
  double supply_nominal_v = 1.2;

  /// Regulator between the attacked rail and the core. Attack studies use
  /// the default pass-through (ac_attenuation = 1) — the paper's point is
  /// what reaches an unprotected core.
  fpga::Regulator regulator{};
};

class RingBitSource final : public trng::BitSource {
 public:
  RingBitSource(const RingSourceConfig& config, const Calibration& calibration,
                noise::FaultScenario scenario);

  std::uint8_t next_bit() override;
  void restart(std::uint64_t attempt) override;
  std::string_view describe() const override { return label_; }

  /// Attach a streaming-entropy observer fed with every DFF-sampled bit as
  /// it is latched (pre-monitor, so muting upstream never censors it).
  /// `stream` must outlive the source; nullptr detaches.
  void attach_telemetry(trng::telemetry::StreamingEntropy* stream) {
    raw_telemetry_ = stream;
  }

  const noise::FaultInjector& injector() const { return *injector_; }
  const RingSourceConfig& config() const { return config_; }

  /// Absolute experiment time the simulation has reached.
  Time now();

 private:
  void rebuild(std::uint64_t attempt);
  void refill();

  RingSourceConfig config_;
  Calibration calibration_;
  std::string label_;
  fpga::Supply supply_;
  std::unique_ptr<noise::FaultInjector> injector_;
  std::optional<Oscillator> osc_;
  Time epoch_;             ///< absolute time of the oscillator's local t = 0
  Time sample_next_abs_;   ///< next unsimulated sample instant (absolute)
  bool last_value_ = false;
  std::vector<std::uint8_t> buffer_;
  std::size_t index_ = 0;
  std::uint64_t reported_activations_ = 0;
  trng::telemetry::StreamingEntropy* raw_telemetry_ = nullptr;
};

}  // namespace ringent::core
