#include "core/oscillator.hpp"

#include <utility>
#include <vector>

#include "common/require.hpp"
#include "sim/metrics.hpp"

namespace ringent::core {

namespace {

std::vector<double> stage_factors_from_board(const fpga::Board* board,
                                             std::size_t lut_base,
                                             std::size_t stages) {
  std::vector<double> factors;
  if (board == nullptr) return factors;
  factors.reserve(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    factors.push_back(board->stage_factor(lut_base + i));
  }
  return factors;
}

std::vector<std::unique_ptr<noise::NoiseSource>> make_noise(
    const BuildOptions& options, std::size_t stages, double sigma_g_ps) {
  std::vector<std::unique_ptr<noise::NoiseSource>> noise;
  if (sigma_g_ps <= 0.0 && options.flicker_amplitude_ps <= 0.0) return noise;
  noise.reserve(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    const std::uint64_t seed =
        options.board != nullptr
            ? options.board->noise_seed(options.lut_base + i)
            : derive_seed(options.noise_seed, "stage-noise", i);
    if (options.flicker_amplitude_ps <= 0.0) {
      noise.push_back(std::make_unique<noise::GaussianNoise>(sigma_g_ps, seed));
      continue;
    }
    auto composite = std::make_unique<noise::CompositeNoise>();
    if (sigma_g_ps > 0.0) {
      composite->add(std::make_unique<noise::GaussianNoise>(
          sigma_g_ps, derive_seed(seed, "white")));
    }
    composite->add(std::make_unique<noise::FlickerNoise>(
        options.flicker_amplitude_ps, options.flicker_octaves,
        derive_seed(seed, "flicker")));
    noise.push_back(std::move(composite));
  }
  return noise;
}

}  // namespace

Oscillator Oscillator::build(const RingSpec& spec,
                             const Calibration& calibration,
                             const BuildOptions& options) {
  const sim::metrics::ScopedPhase phase("build");
  spec.validate();
  Oscillator osc;
  osc.spec_ = spec;
  osc.kernel_ = std::make_unique<sim::Kernel>();
  // Steady state keeps at most ~1 pending event per stage (each stage has
  // one firing in flight; tokens never exceed the stage count).
  osc.kernel_->reserve_events(spec.stages + 8);

  const double sigma_g_ps =
      options.sigma_g_ps < 0.0 ? calibration.sigma_g_ps : options.sigma_g_ps;
  auto noise = make_noise(options, spec.stages, sigma_g_ps);
  auto factors =
      stage_factors_from_board(options.board, options.lut_base, spec.stages);
  RINGENT_REQUIRE(options.delay_scale > 0.0, "delay_scale must be positive");
  if (options.delay_scale != 1.0) {
    if (factors.empty()) factors.assign(spec.stages, 1.0);
    for (double& f : factors) f *= options.delay_scale;
  }

  RINGENT_REQUIRE(options.routing_crossing_weight >= 1.0,
                  "routing_crossing_weight must be >= 1");
  if (spec.kind == RingKind::iro) {
    ring::IroConfig config;
    config.stages = spec.stages;
    config.lut_delay = calibration.iro_lut_delay;
    config.routing_per_hop = calibration.iro_routing.per_hop_delay(spec.stages);
    if (options.routing_crossing_weight > 1.0) {
      config.routing_per_stage = fpga::distribute_routing(
          config.routing_per_hop, spec.stages,
          options.routing_crossing_weight);
    }
    config.stage_factors = std::move(factors);
    config.modulation = options.modulation;
    config.jitter_delay_exponent = options.jitter_delay_exponent;
    if (options.supply != nullptr) {
      config.supply = options.supply;
      config.laws = &calibration.laws;
    }
    osc.iro_ =
        std::make_unique<ring::Iro>(*osc.kernel_, config, std::move(noise));
    osc.nominal_period_ = osc.iro_->nominal_period();
  } else {
    ring::StrConfig config;
    config.stages = spec.stages;
    config.charlie = ring::CharlieParams::symmetric(calibration.str_d_static,
                                                    calibration.str_d_charlie);
    config.drafting = calibration.drafting;
    config.routing_per_hop = calibration.str_routing.per_hop_delay(spec.stages);
    if (options.routing_crossing_weight > 1.0) {
      config.routing_per_stage = fpga::distribute_routing(
          config.routing_per_hop, spec.stages,
          options.routing_crossing_weight);
    }
    config.stage_factors = std::move(factors);
    config.modulation = options.modulation;
    config.jitter_delay_exponent = options.jitter_delay_exponent;
    config.trace_all_stages = options.trace_all_stages;
    if (options.supply != nullptr) {
      config.supply = options.supply;
      config.laws = &calibration.laws;
    }
    ring::RingState initial = ring::make_initial_state(
        spec.stages, spec.effective_tokens(), spec.placement);
    osc.str_ = std::make_unique<ring::Str>(*osc.kernel_, config,
                                           std::move(initial),
                                           std::move(noise));
    osc.nominal_period_ = osc.str_->nominal_period();
  }

  // Warm-up: skip the initial transient before recording. At a non-nominal
  // operating point the period stretches by roughly the LUT law's scale.
  double period_scale = 1.0;
  if (options.supply != nullptr) {
    period_scale =
        calibration.laws.lut.scale(options.supply->operating_point_at(
            Time::zero()));
  }
  osc.estimated_period_ = osc.nominal_period_.scaled(period_scale);
  const Time warmup = osc.estimated_period_.scaled(
      static_cast<double>(options.warmup_periods));
  osc.warmup_time_ = warmup;

  if (osc.iro_ != nullptr) {
    osc.iro_->output().set_record_from(warmup);
    osc.iro_->start();
  } else {
    if (options.trace_all_stages) {
      for (auto& trace : osc.str_->stage_traces()) {
        trace.set_record_from(warmup);
      }
    } else {
      osc.str_->output().set_record_from(warmup);
    }
    osc.str_->start();
  }
  osc.started_ = true;
  return osc;
}

void Oscillator::advance_to(Time t) {
  // The kernel hosts exactly one process (the ring), so run_until_on can
  // devirtualize Process::fire into a direct call on the concrete ring type.
  if (iro_ != nullptr) {
    kernel_->run_until_on(*iro_, t);
  } else {
    kernel_->run_until_on(*str_, t);
  }
}

void Oscillator::run_periods(std::size_t n) {
  const sim::metrics::ScopedPhase phase("run");
  RINGENT_REQUIRE(started_, "oscillator not started");
  RINGENT_REQUIRE(n >= 1, "need at least one period");
  // A period is two transitions of the observed signal; aim past the warm-up
  // with margin, then top up until enough rising edges are recorded.
  const auto enough = [&] {
    return output().rising_edges().size() >= n + 1;
  };
  const Time target =
      warmup_time_ + estimated_period_.scaled(static_cast<double>(n + 8));
  if (kernel_->now() < target) advance_to(target);
  double topup = 64.0;
  while (!enough()) {
    RINGENT_REQUIRE(!kernel_->idle(), "ring deadlocked (no pending events)");
    advance_to(kernel_->now() + estimated_period_.scaled(topup));
    topup *= 2.0;
  }
}

void Oscillator::run_for(Time span) {
  const sim::metrics::ScopedPhase phase("run");
  RINGENT_REQUIRE(started_, "oscillator not started");
  advance_to(kernel_->now() + span);
}

sim::SignalTrace& Oscillator::output() {
  return iro_ != nullptr ? iro_->output() : str_->output();
}

const sim::SignalTrace& Oscillator::output() const {
  return iro_ != nullptr ? iro_->output() : str_->output();
}

}  // namespace ringent::core
