#include "core/spec.hpp"

#include "common/require.hpp"

namespace ringent::core {

const char* to_string(RingKind kind) {
  return kind == RingKind::iro ? "IRO" : "STR";
}

RingKind parse_ring_kind(std::string_view name) {
  if (name == "iro") return RingKind::iro;
  if (name == "str") return RingKind::str;
  throw Error("ring kind must be \"iro\" or \"str\", got \"" +
              std::string(name) + "\"");
}

const char* to_string(ring::TokenPlacement placement) {
  return placement == ring::TokenPlacement::clustered ? "clustered"
                                                      : "evenly_spread";
}

ring::TokenPlacement parse_token_placement(std::string_view name) {
  if (name == "evenly_spread") return ring::TokenPlacement::evenly_spread;
  if (name == "clustered") return ring::TokenPlacement::clustered;
  throw Error("token placement must be \"evenly_spread\" or \"clustered\", "
              "got \"" + std::string(name) + "\"");
}

RingSpec RingSpec::iro(std::size_t stages) {
  RingSpec spec;
  spec.kind = RingKind::iro;
  spec.stages = stages;
  spec.validate();
  return spec;
}

RingSpec RingSpec::str(std::size_t stages, std::size_t tokens,
                       ring::TokenPlacement placement) {
  RingSpec spec;
  spec.kind = RingKind::str;
  spec.stages = stages;
  spec.tokens = tokens;
  spec.placement = placement;
  spec.validate();
  return spec;
}

std::size_t RingSpec::effective_tokens() const {
  if (kind != RingKind::str) return 0;
  if (tokens != 0) return tokens;
  std::size_t nt = stages / 2;
  if (nt % 2 == 1) --nt;
  return nt;
}

std::string RingSpec::name() const {
  return std::string(to_string(kind)) + " " + std::to_string(stages) + "C";
}

void RingSpec::validate() const {
  if (kind == RingKind::iro) {
    RINGENT_REQUIRE(stages >= 3, "IRO needs at least 3 stages");
    RINGENT_REQUIRE(tokens == 0, "tokens only apply to STRs");
  } else {
    RINGENT_REQUIRE(stages >= 3, "STR needs at least 3 stages");
    const std::size_t nt = effective_tokens();
    RINGENT_REQUIRE(ring::can_oscillate(stages, nt),
                    "STR token count cannot oscillate (need positive even NT "
                    "and at least one bubble)");
  }
}

}  // namespace ringent::core
