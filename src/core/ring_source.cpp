#include "core/ring_source.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "sim/metrics.hpp"

namespace ringent::core {

RingBitSource::RingBitSource(const RingSourceConfig& config,
                             const Calibration& calibration,
                             noise::FaultScenario scenario)
    : config_(config), calibration_(calibration) {
  RINGENT_REQUIRE(config_.sampling_period > Time::zero(),
                  "sampling period must be positive");
  RINGENT_REQUIRE(config_.chunk_bits > 0, "chunk must cover >= 1 bit");
  label_ = config_.spec.name();
  supply_ = fpga::Supply(config_.supply_nominal_v);
  supply_.set_regulator(config_.regulator);
  injector_ =
      std::make_unique<noise::FaultInjector>(std::move(scenario), &supply_);
  rebuild(0);

  // Start the sample grid on the first clock tick past the (estimated)
  // warm-up, so the stream begins with real post-transient ring output.
  const Time warmup = osc_->nominal_period().scaled(
      static_cast<double>(config_.warmup_periods));
  const auto ticks =
      static_cast<std::int64_t>(warmup / config_.sampling_period) + 1;
  sample_next_abs_ = config_.sampling_period * ticks;
}

Time RingBitSource::now() { return epoch_ + osc_->kernel().now(); }

void RingBitSource::rebuild(std::uint64_t attempt) {
  // Apply the supply state the scenario prescribes at the rebuild instant
  // before the oscillator reads its operating point.
  injector_->set_epoch(epoch_);
  injector_->advance_to(epoch_);

  BuildOptions options;
  options.supply = &supply_;
  options.modulation = injector_.get();
  options.noise_seed = attempt == 0
                           ? config_.seed
                           : derive_seed(config_.seed, "relock", attempt);
  options.warmup_periods = config_.warmup_periods;
  osc_ = Oscillator::build(config_.spec, calibration_, options);
  // Mirror trng::value_at: unknown until the first recorded transition.
  last_value_ = false;
}

std::uint8_t RingBitSource::next_bit() {
  if (index_ >= buffer_.size()) refill();
  return buffer_[index_++];
}

void RingBitSource::restart(std::uint64_t attempt) {
  // Power-cycle: local kernel time restarts at zero but the fault schedule
  // keeps running, so the new ring's epoch is wherever the old one stopped.
  epoch_ = now();
  buffer_.clear();
  index_ = 0;
  rebuild(attempt);
}

void RingBitSource::refill() {
  buffer_.clear();
  index_ = 0;

  const Time chunk_end_abs =
      sample_next_abs_ +
      config_.sampling_period * static_cast<std::int64_t>(config_.chunk_bits - 1);
  while (true) {
    const Time now_abs = now();
    injector_->advance_to(now_abs);
    if (now_abs >= chunk_end_abs) break;
    const Time boundary = injector_->next_boundary(now_abs);
    osc_->run_for(std::min(chunk_end_abs, boundary) - now_abs);
  }
  const std::uint64_t activations = injector_->activations();
  sim::metrics::bump(sim::metrics::Counter::fault_activations,
                     activations - reported_activations_);
  reported_activations_ = activations;

  // Latch the signal at each sample instant (what a DFF does), walking the
  // chunk's recorded transitions once.
  const auto& transitions = osc_->output().transitions();
  std::size_t ptr = 0;
  for (std::size_t k = 0; k < config_.chunk_bits; ++k) {
    const Time ts_local = sample_next_abs_ - epoch_;
    while (ptr < transitions.size() && transitions[ptr].at <= ts_local) {
      last_value_ = transitions[ptr++].value;
    }
    buffer_.push_back(last_value_ ? 1 : 0);
    if (raw_telemetry_ != nullptr) raw_telemetry_->feed(last_value_ ? 1 : 0);
    sample_next_abs_ += config_.sampling_period;
  }
  // Transitions past the last sample still decide the next chunk's start.
  if (!transitions.empty()) last_value_ = transitions.back().value;
  osc_->output().clear();
}

}  // namespace ringent::core
