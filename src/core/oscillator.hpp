// Oscillator: one runnable ring instance — the library's main entry point.
//
//   auto osc = core::Oscillator::build(core::RingSpec::str(96),
//                                      core::cyclone_iii(), options);
//   osc.run_periods(10000);
//   auto periods = analysis::periods_ps(osc.output());
//
// Oscillator owns the simulation kernel, the ring model and the per-stage
// noise sources; the optional Board and Supply are borrowed (an experiment
// typically shares one Supply across rings and sweeps its level).
#pragma once

#include <memory>
#include <optional>

#include "core/calibration.hpp"
#include "core/spec.hpp"
#include "fpga/device.hpp"
#include "fpga/supply.hpp"
#include "noise/modulation.hpp"
#include "ring/iro.hpp"
#include "ring/str.hpp"
#include "sim/kernel.hpp"

namespace ringent::core {

struct BuildOptions {
  /// Silicon instance; null = ideal device (all factors 1.0).
  const fpga::Board* board = nullptr;

  /// Operating point; null = fixed nominal voltage and temperature.
  /// Must outlive the oscillator.
  const fpga::Supply* supply = nullptr;

  /// Per-LUT white jitter; negative = use the calibration's sigma_g_ps.
  /// Zero disables dynamic noise.
  double sigma_g_ps = -1.0;

  /// Optional per-LUT flicker (1/f) jitter amplitude. The paper's model is
  /// white-only and the calibration keeps this at zero; the extension
  /// benches switch it on to show where the sqrt accumulation law bends
  /// (see analysis/allan.hpp).
  double flicker_amplitude_ps = 0.0;
  unsigned flicker_octaves = 16;

  /// Seed for noise streams when no board is given (boards derive their own
  /// per-LUT streams).
  std::uint64_t noise_seed = 1;

  /// Index of the first LUT the ring occupies on the board (distinct rings
  /// on one board should not overlap).
  std::size_t lut_base = 0;

  /// Uniform multiplicative factor on every stage delay (static, Charlie and
  /// routing components alike). Used for design-time detuning (e.g. the
  /// second ring of a coherent-sampling pair) and corner exploration.
  double delay_scale = 1.0;

  /// Jitter-voltage coupling exponent (see ring::IroConfig): per-firing
  /// noise is scaled by (LUT delay scale)^gamma. 0 = the paper's constant
  /// sigma_g model.
  double jitter_delay_exponent = 0.0;

  /// Structured routing: > 1 distributes the calibrated mean routing delay
  /// unevenly across the chain placement (LAB-crossing hops cost this many
  /// times a within-LAB hop; the total — and thus the frequency — is
  /// preserved). 1.0 keeps the flat per-hop model. See
  /// fpga::distribute_routing.
  double routing_crossing_weight = 1.0;

  /// Optional deterministic delay modulation; must outlive the oscillator.
  const noise::DelayModulation* modulation = nullptr;

  /// Drop this many initial output periods (steady-regime warm-up) before
  /// recording.
  std::size_t warmup_periods = 64;

  /// Record every stage output (STR only; for VCD / token analysis).
  bool trace_all_stages = false;
};

class Oscillator {
 public:
  static Oscillator build(const RingSpec& spec, const Calibration& calibration,
                          const BuildOptions& options = {});

  Oscillator(Oscillator&&) = default;
  Oscillator& operator=(Oscillator&&) = default;

  /// Run until at least `n` output periods are recorded past the warm-up.
  void run_periods(std::size_t n);

  /// Run for a fixed span of simulated time.
  void run_for(Time span);

  /// The observed output trace (post warm-up).
  sim::SignalTrace& output();
  const sim::SignalTrace& output() const;

  const RingSpec& spec() const { return spec_; }

  /// Noise-free period at the nominal operating point.
  Time nominal_period() const { return nominal_period_; }

  sim::Kernel& kernel() { return *kernel_; }

  /// STR only; null for IROs.
  ring::Str* str() { return str_.get(); }
  ring::Iro* iro() { return iro_.get(); }

 private:
  Oscillator() = default;

  void advance_to(Time t);

  RingSpec spec_;
  Time nominal_period_;
  Time estimated_period_;  ///< nominal period scaled to the operating point
  Time warmup_time_;
  std::unique_ptr<sim::Kernel> kernel_;
  std::unique_ptr<ring::Iro> iro_;
  std::unique_ptr<ring::Str> str_;
  bool started_ = false;
};

}  // namespace ringent::core
