#include "sim/ascii_wave.hpp"

#include <algorithm>
#include <cstdio>

#include "common/require.hpp"

namespace ringent::sim {

namespace {

Time window_end(const std::vector<const SignalTrace*>& traces,
                const AsciiWaveOptions& options) {
  if (options.to > Time::zero()) return options.to;
  Time end = options.from;
  for (const auto* trace : traces) {
    if (!trace->transitions().empty()) {
      end = std::max(end, trace->transitions().back().at);
    }
  }
  return end;
}

char sample_column(const SignalTrace& trace, Time t0, Time t1) {
  const auto& transitions = trace.transitions();
  // Value at t0: last transition at or before t0.
  const auto it = std::upper_bound(
      transitions.begin(), transitions.end(), t0,
      [](Time lhs, const Transition& tr) { return lhs < tr.at; });
  const bool known = it != transitions.begin();
  const bool value = known && std::prev(it)->value;
  // Any transition strictly inside (t0, t1]?
  bool rising = false, falling = false;
  for (auto scan = it; scan != transitions.end() && scan->at <= t1; ++scan) {
    (scan->value ? rising : falling) = true;
  }
  if (rising && falling) return value ? 'X' : 'X';
  if (rising) return '/';
  if (falling) return '\\';
  if (!known) return '?';
  return value ? '-' : '_';
}

}  // namespace

std::string ascii_wave(const SignalTrace& trace,
                       const AsciiWaveOptions& options) {
  return ascii_waves({&trace}, options);
}

std::string ascii_waves(const std::vector<const SignalTrace*>& traces,
                        const AsciiWaveOptions& options) {
  RINGENT_REQUIRE(!traces.empty(), "need at least one trace");
  RINGENT_REQUIRE(options.columns >= 8, "need at least 8 columns");
  for (const auto* trace : traces) {
    RINGENT_REQUIRE(trace != nullptr, "null trace");
  }
  const Time end = window_end(traces, options);
  RINGENT_REQUIRE(end > options.from, "empty time window");
  const double span_ps = (end - options.from).ps();

  std::size_t label_width = 0;
  for (const auto* trace : traces) {
    label_width = std::max(label_width, trace->name().size());
  }

  std::string out;
  for (const auto* trace : traces) {
    out += trace->name();
    out.append(label_width - trace->name().size() + 2, ' ');
    for (std::size_t c = 0; c < options.columns; ++c) {
      const Time t0 = options.from + Time::from_ps(
                                         span_ps * static_cast<double>(c) /
                                         static_cast<double>(options.columns));
      const Time t1 = options.from +
                      Time::from_ps(span_ps * static_cast<double>(c + 1) /
                                    static_cast<double>(options.columns));
      out.push_back(sample_column(*trace, t0, t1));
    }
    out.push_back('\n');
  }
  // Time ruler.
  char ruler[64];
  out.append(label_width + 2, ' ');
  std::snprintf(ruler, sizeof(ruler), "%.2f ns", options.from.ns());
  out += ruler;
  const std::string end_label = [&] {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f ns", end.ns());
    return std::string(buf);
  }();
  const std::size_t used = std::string(ruler).size();
  if (options.columns > used + end_label.size()) {
    out.append(options.columns - used - end_label.size(), ' ');
    out += end_label;
  }
  out.push_back('\n');
  return out;
}

}  // namespace ringent::sim
