// Optional Chrome-trace span collection for whole-run timelines.
//
// When a trace session is active, Span objects record begin/end ("B"/"E")
// events as Chrome trace JSON — load the file in chrome://tracing or
// https://ui.perfetto.dev to see driver phases, experiment axes and
// parallel-pool tasks laid out per thread. The writer streams: every event
// is appended and flushed as it happens, so a crashed or killed process
// leaves a truncated-but-loadable trace (Perfetto tolerates a missing
// array terminator) instead of losing the whole buffer; stop() balances
// any still-open spans with synthesized "E" events and closes the JSON so
// a normal exit always yields a well-formed file. The span vocabulary,
// coarse by design (spans bracket whole simulations, never kernel events):
//
//   cat "driver" — one span per experiment-driver invocation
//   cat "axis"   — one span per sweep point (the body of a pool task)
//   cat "pool"   — one span per ThreadPool task slot
//   cat "bench"  — whole-binary spans opened by bench/cli.hpp
//
// Like the metrics layer, collection is off by default and every probe
// starts with one relaxed atomic load. Unlike counters, span recording
// takes a mutex — acceptable at span granularity.
//
// Activate with start(path), the RINGENT_TRACE=<file> environment variable
// (init_from_env), or the --trace <file> flag of the sweep benches. stop()
// writes the file; it is also registered with atexit so benches cannot
// forget to flush.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ringent::sim::trace {

/// True while a session is collecting spans.
bool enabled();

/// Begin collecting; the file is opened immediately and events stream to it
/// as they are recorded. Starting while a session is active throws (one
/// file per run).
void start(const std::string& path);

/// Balance still-open spans, close the JSON and end the session. No-op when
/// no session is active. Throws ringent::Error on I/O failure (including
/// failures of earlier streamed writes).
void stop();

/// Path of the active session ("" when none).
std::string current_path();

/// Start a session when RINGENT_TRACE names a file and no session is
/// active. Returns the resulting enabled state.
bool init_from_env();

/// RAII span: records a "B" event on construction and the matching "E" on
/// destruction, tagged with the calling thread. Free (one relaxed load)
/// when no session is active; a span whose session stops mid-life was
/// already balanced by stop() and its destructor no-ops.
class Span {
 public:
  Span(std::string_view name, std::string_view category);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  std::uint64_t session_ = 0;
  std::string name_;
  std::string category_;
};

}  // namespace ringent::sim::trace
