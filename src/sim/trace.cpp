#include "sim/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/require.hpp"

namespace ringent::sim::trace {

namespace {

struct Event {
  std::string name;
  std::string category;
  char phase = 'B';  // 'B' begin / 'E' end
  double ts_us = 0.0;
  int tid = 0;
};

struct Collector {
  std::mutex mutex;
  std::atomic<bool> active{false};
  std::uint64_t session = 0;  ///< bumped on every start(); stale spans no-op
  std::string path;
  std::chrono::steady_clock::time_point t0;
  std::vector<Event> events;
  std::vector<std::thread::id> tids;  ///< index = stable small tid

  int tid_of(std::thread::id id) {
    for (std::size_t i = 0; i < tids.size(); ++i) {
      if (tids[i] == id) return static_cast<int>(i);
    }
    tids.push_back(id);
    return static_cast<int>(tids.size() - 1);
  }
};

Collector& collector() {
  static Collector* instance = new Collector();  // leaked: atexit-safe
  return *instance;
}

double elapsed_us(const Collector& c) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - c.t0)
      .count();
}

/// Drop events that would leave a thread's B/E spans unbalanced (spans still
/// open when the session stops). Walk each thread's events in order keeping
/// a depth stack; unmatched 'B's at the end are removed.
std::vector<Event> balanced(std::vector<Event> events) {
  std::vector<std::size_t> drop;
  std::vector<int> seen_tids;
  for (const Event& e : events) {
    bool known = false;
    for (int t : seen_tids) known = known || t == e.tid;
    if (!known) seen_tids.push_back(e.tid);
  }
  for (int tid : seen_tids) {
    std::vector<std::size_t> open;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].tid != tid) continue;
      if (events[i].phase == 'B') {
        open.push_back(i);
      } else if (!open.empty()) {
        open.pop_back();
      } else {
        drop.push_back(i);  // stray 'E' (cannot happen; defensive)
      }
    }
    drop.insert(drop.end(), open.begin(), open.end());
  }
  if (drop.empty()) return events;
  std::vector<Event> out;
  out.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    bool dropped = false;
    for (std::size_t d : drop) dropped = dropped || d == i;
    if (!dropped) out.push_back(std::move(events[i]));
  }
  return out;
}

}  // namespace

bool enabled() {
  return collector().active.load(std::memory_order_relaxed);
}

void start(const std::string& path) {
  RINGENT_REQUIRE(!path.empty(), "trace path must not be empty");
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  RINGENT_REQUIRE(!c.active.load(std::memory_order_relaxed),
                  "a trace session is already active");
  c.path = path;
  c.t0 = std::chrono::steady_clock::now();
  c.events.clear();
  c.tids.clear();
  ++c.session;
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit([] { stop(); });
  }
  c.active.store(true, std::memory_order_relaxed);
}

void stop() {
  Collector& c = collector();
  std::string path;
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    if (!c.active.load(std::memory_order_relaxed)) return;
    c.active.store(false, std::memory_order_relaxed);
    path = c.path;
    events = balanced(std::move(c.events));
    c.events.clear();
    c.path.clear();
  }

  Json root = Json::object();
  Json trace_events = Json::array();
  for (const Event& e : events) {
    Json event = Json::object();
    event.set("name", e.name);
    event.set("cat", e.category);
    event.set("ph", std::string(1, e.phase));
    event.set("ts", e.ts_us);
    event.set("pid", 1);
    event.set("tid", e.tid);
    trace_events.push_back(std::move(event));
  }
  root.set("traceEvents", std::move(trace_events));
  root.set("displayTimeUnit", "ms");

  std::ofstream out(path);
  RINGENT_REQUIRE(out.good(), "cannot open trace file " + path);
  out << root.dump(1) << "\n";
  out.flush();
  if (!out.good()) throw Error("I/O error writing trace file " + path);
}

std::string current_path() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.active.load(std::memory_order_relaxed) ? c.path : std::string();
}

bool init_from_env() {
  const char* path = std::getenv("RINGENT_TRACE");
  if (path != nullptr && path[0] != '\0' && !enabled()) {
    start(path);
  }
  return enabled();
}

Span::Span(std::string_view name, std::string_view category) {
  Collector& c = collector();
  if (!c.active.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(c.mutex);
  if (!c.active.load(std::memory_order_relaxed)) return;
  active_ = true;
  session_ = c.session;
  name_ = name;
  category_ = category;
  Event e;
  e.name = name_;
  e.category = category_;
  e.phase = 'B';
  e.ts_us = elapsed_us(c);
  e.tid = c.tid_of(std::this_thread::get_id());
  c.events.push_back(std::move(e));
}

Span::~Span() {
  if (!active_) return;
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  // The session that recorded our 'B' must still be collecting; otherwise
  // the unmatched 'B' was (or will be) dropped by balanced().
  if (!c.active.load(std::memory_order_relaxed) || c.session != session_) {
    return;
  }
  Event e;
  e.name = name_;
  e.category = category_;
  e.phase = 'E';
  e.ts_us = elapsed_us(c);
  e.tid = c.tid_of(std::this_thread::get_id());
  c.events.push_back(std::move(e));
}

}  // namespace ringent::sim::trace
