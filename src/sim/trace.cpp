#include "sim/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/require.hpp"

namespace ringent::sim::trace {

namespace {

/// A 'B' event whose 'E' has not been written yet; stop() balances these so
/// the file closes well-formed even when spans are still open.
struct OpenSpan {
  std::string name;
  std::string category;
};

struct Collector {
  std::mutex mutex;
  std::atomic<bool> active{false};
  std::uint64_t session = 0;  ///< bumped on every start(); stale spans no-op
  std::string path;
  std::chrono::steady_clock::time_point t0;
  std::ofstream out;
  bool first_event = true;
  bool io_failed = false;
  std::vector<std::thread::id> tids;       ///< index = stable small tid
  std::vector<std::vector<OpenSpan>> open; ///< per-tid stack of open spans

  int tid_of(std::thread::id id) {
    for (std::size_t i = 0; i < tids.size(); ++i) {
      if (tids[i] == id) return static_cast<int>(i);
    }
    tids.push_back(id);
    open.emplace_back();
    return static_cast<int>(tids.size() - 1);
  }
};

Collector& collector() {
  static Collector* instance = new Collector();  // leaked: atexit-safe
  return *instance;
}

double elapsed_us(const Collector& c) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - c.t0)
      .count();
}

/// Append one event object and flush, so a crashed process leaves every
/// span recorded so far on disk (Perfetto loads truncated traces). Caller
/// holds the collector mutex.
void write_event(Collector& c, const std::string& name,
                 const std::string& category, char phase, double ts_us,
                 int tid) {
  Json event = Json::object();
  event.set("name", name);
  event.set("cat", category);
  event.set("ph", std::string(1, phase));
  event.set("ts", ts_us);
  event.set("pid", 1);
  event.set("tid", tid);
  if (!c.first_event) c.out << ",\n";
  c.first_event = false;
  c.out << event.dump();
  c.out.flush();
  if (!c.out.good()) c.io_failed = true;
}

}  // namespace

bool enabled() {
  return collector().active.load(std::memory_order_relaxed);
}

void start(const std::string& path) {
  RINGENT_REQUIRE(!path.empty(), "trace path must not be empty");
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  RINGENT_REQUIRE(!c.active.load(std::memory_order_relaxed),
                  "a trace session is already active");
  c.out.open(path);
  RINGENT_REQUIRE(c.out.good(), "cannot open trace file " + path);
  c.out << "{\n \"displayTimeUnit\": \"ms\",\n \"traceEvents\": [\n";
  c.out.flush();
  c.path = path;
  c.t0 = std::chrono::steady_clock::now();
  c.first_event = true;
  c.io_failed = !c.out.good();
  c.tids.clear();
  c.open.clear();
  ++c.session;
  static bool atexit_registered = false;
  if (!atexit_registered) {
    atexit_registered = true;
    std::atexit([] { stop(); });
  }
  c.active.store(true, std::memory_order_relaxed);
}

void stop() {
  Collector& c = collector();
  std::string path;
  bool io_failed = false;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    if (!c.active.load(std::memory_order_relaxed)) return;
    c.active.store(false, std::memory_order_relaxed);

    // Balance whatever is still open (e.g. the process is exiting from
    // inside a span) so the serialized file always parses.
    const double now_us = elapsed_us(c);
    for (std::size_t tid = 0; tid < c.open.size(); ++tid) {
      while (!c.open[tid].empty()) {
        const OpenSpan span = std::move(c.open[tid].back());
        c.open[tid].pop_back();
        write_event(c, span.name, span.category, 'E', now_us,
                    static_cast<int>(tid));
      }
    }
    c.out << "\n]}\n";
    c.out.flush();
    io_failed = c.io_failed || !c.out.good();
    c.out.close();
    path = c.path;
    c.path.clear();
    c.tids.clear();
    c.open.clear();
  }
  if (io_failed) throw Error("I/O error writing trace file " + path);
}

std::string current_path() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.active.load(std::memory_order_relaxed) ? c.path : std::string();
}

bool init_from_env() {
  const char* path = std::getenv("RINGENT_TRACE");
  if (path != nullptr && path[0] != '\0' && !enabled()) {
    start(path);
  }
  return enabled();
}

Span::Span(std::string_view name, std::string_view category) {
  Collector& c = collector();
  if (!c.active.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(c.mutex);
  if (!c.active.load(std::memory_order_relaxed)) return;
  active_ = true;
  session_ = c.session;
  name_ = name;
  category_ = category;
  const int tid = c.tid_of(std::this_thread::get_id());
  write_event(c, name_, category_, 'B', elapsed_us(c), tid);
  c.open[static_cast<std::size_t>(tid)].push_back({name_, category_});
}

Span::~Span() {
  if (!active_) return;
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  // The session that recorded our 'B' must still be collecting; otherwise
  // stop() already balanced (or will drop) that 'B'.
  if (!c.active.load(std::memory_order_relaxed) || c.session != session_) {
    return;
  }
  const int tid = c.tid_of(std::this_thread::get_id());
  write_event(c, name_, category_, 'E', elapsed_us(c), tid);
  auto& stack = c.open[static_cast<std::size_t>(tid)];
  if (!stack.empty()) stack.pop_back();
}

}  // namespace ringent::sim::trace
