// Kernel observability: process-wide simulation counters and phase timers.
//
// The simulation hot loop (schedule/fire, queue push/pop, Charlie
// evaluations) is instrumented with named counters. The design constraints,
// in order:
//
//  1. Zero cost when off. Collection defaults to disabled; every probe is
//     one relaxed atomic load and a predictable branch — measured < 2 % on
//     BM_ParallelSweep (see bench/perf_kernel.cpp, BM_KernelEventThroughput
//     metrics variants).
//  2. No cross-thread contention when on. Sweeps shard whole simulations
//     across pool workers (sim/parallel.hpp); a shared counter array would
//     serialize them on cache-line ping-pong. Each thread therefore bumps
//     its own relaxed-atomic block; snapshot() sums the blocks.
//  3. Deterministic totals. Counters never feed back into the simulation,
//     and a quiescent snapshot (no batch in flight) is exact — the golden
//     tests hand-count event totals against it.
//
// Phase timers accumulate wall and thread-CPU time under string labels
// ("build", "run", "analyze"); ScopedPhase is the RAII probe. Timer state is
// mutex-guarded — phases bracket whole simulations, not events.
//
// Enable with metrics::set_enabled(true), the RINGENT_METRICS environment
// variable (init_from_env), or the --metrics flag of the sweep benches
// (bench/cli.hpp). Experiment drivers emit a JSON run manifest with a
// counter/phase delta when metrics are on (core/export.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ringent::sim::metrics {

/// Everything the simulation substrate counts. Keep counter_names in
/// metrics.cpp in sync.
enum class Counter : std::size_t {
  events_scheduled,        ///< Kernel::schedule_at calls
  events_fired,            ///< events delivered to a Process
  events_cancelled,        ///< pending events dropped by Kernel::reset_time
  heap_pushes,             ///< heap pushes (FlatHeap4 + BinaryHeapQueue)
  heap_pops,               ///< heap pops (FlatHeap4 + BinaryHeapQueue)
  calendar_pushes,         ///< CalendarQueue::push
  calendar_pops,           ///< CalendarQueue::pop_min
  charlie_evaluations,     ///< CharlieModel::fire_time calls from the STR
  token_collision_checks,  ///< STR enabled()/schedule eligibility checks
  pool_tasks,              ///< tasks executed by sim::ThreadPool
  // --- attack-resilience pipeline (noise/fault.hpp, trng/resilient.hpp) ---
  fault_activations,       ///< fault windows applied by noise::FaultInjector
  health_rct_alarms,       ///< repetition-count alarms in ResilientGenerator
  health_apt_alarms,       ///< adaptive-proportion alarms in ResilientGenerator
  health_transitions,      ///< degradation-state transitions (all edges)
  health_bits_muted,       ///< raw bits suppressed while not healthy/suspect
  health_relock_attempts,  ///< ring restarts attempted after an alarm
  health_failovers,        ///< switches from the primary to the backup source
  health_failures,         ///< permanent-failure latches (strike budget spent)
};
inline constexpr std::size_t counter_count =
    static_cast<std::size_t>(Counter::health_failures) + 1;

/// Stable slug for manifests and logs (e.g. "events_fired").
std::string_view counter_name(Counter counter);

namespace detail {

struct CounterBlock {
  std::array<std::atomic<std::uint64_t>, counter_count> values{};
};

extern std::atomic<bool> enabled_flag;

/// The calling thread's counter block (registered on first use; blocks
/// outlive their threads so late snapshots stay complete).
CounterBlock& local_block();

}  // namespace detail

/// Global collection switch; off by default.
inline bool enabled() {
  return detail::enabled_flag.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Enable when the RINGENT_METRICS environment variable is set to anything
/// but "" or "0". Returns the resulting enabled state.
bool init_from_env();

/// Count `n` occurrences of `counter`. The single-branch fast path: when
/// collection is off this is one relaxed load.
inline void bump(Counter counter, std::uint64_t n = 1) {
  if (!enabled()) return;
  detail::local_block().values[static_cast<std::size_t>(counter)].fetch_add(
      n, std::memory_order_relaxed);
}

struct PhaseStat {
  std::string name;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;  ///< thread CPU time summed over all calls
  std::uint64_t calls = 0;
};

/// A consistent copy of all counters and phase timers. Snapshots taken while
/// no simulation is in flight are exact.
struct Snapshot {
  std::array<std::uint64_t, counter_count> counters{};
  std::vector<PhaseStat> phases;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  /// Counter and phase differences since `earlier` (per-experiment deltas
  /// for manifests). Phases present only here are kept as-is.
  Snapshot delta_since(const Snapshot& earlier) const;
};

Snapshot snapshot();

/// Zero every counter and drop all phase timers. Call only while no
/// simulation is running (tests, bench setup).
void reset();

/// Monotonic wall clock in seconds (steady_clock).
double wall_seconds();
/// CPU time consumed by the calling thread, in seconds.
double thread_cpu_seconds();
/// CPU time consumed by the whole process, in seconds.
double process_cpu_seconds();

/// RAII phase timer: accumulates wall + thread-CPU time under `name` between
/// construction and destruction. Near-free when metrics are disabled.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  bool active_ = false;
  std::string name_;
  double wall_start_ = 0.0;
  double cpu_start_ = 0.0;
};

}  // namespace ringent::sim::metrics
