#include "sim/kernel.hpp"

namespace ringent::sim {

std::uint64_t Kernel::run_until(Time t_end) {
  const auto fire = [this](const QueuedEvent& event) {
    processes_[event.node]->fire(*this, event.tag);
  };
  if (kind_ == QueueKind::binary_heap) {
    return drain_until(heap_, t_end, fire);
  }
  return drain_until(calendar_, t_end, fire);
}

std::uint64_t Kernel::run_events(std::uint64_t max_events) {
  const auto fire = [this](const QueuedEvent& event) {
    processes_[event.node]->fire(*this, event.tag);
  };
  if (kind_ == QueueKind::binary_heap) {
    return drain_events(heap_, max_events, fire);
  }
  return drain_events(calendar_, max_events, fire);
}

void Kernel::reset_time() {
  if (kind_ == QueueKind::binary_heap) {
    metrics::bump(metrics::Counter::events_cancelled, heap_.size());
    heap_.clear();
  } else {
    metrics::bump(metrics::Counter::events_cancelled, calendar_.size());
    calendar_.clear();
  }
  now_ = Time::zero();
}

}  // namespace ringent::sim
