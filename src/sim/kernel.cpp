#include "sim/kernel.hpp"

#include "common/require.hpp"
#include "sim/metrics.hpp"

namespace ringent::sim {

Kernel::Kernel(QueueKind queue_kind) : queue_(make_event_queue(queue_kind)) {}

NodeId Kernel::add_process(Process* process) {
  RINGENT_REQUIRE(process != nullptr, "null process");
  processes_.push_back(process);
  return static_cast<NodeId>(processes_.size() - 1);
}

void Kernel::schedule_in(Time delay, NodeId node, std::uint32_t tag) {
  RINGENT_REQUIRE(!delay.is_negative(), "negative delay");
  schedule_at(now_ + delay, node, tag);
}

void Kernel::schedule_at(Time at, NodeId node, std::uint32_t tag) {
  RINGENT_REQUIRE(node < processes_.size(), "unknown node id");
  RINGENT_REQUIRE(at >= now_, "cannot schedule in the past");
  metrics::bump(metrics::Counter::events_scheduled);
  queue_->push(QueuedEvent{at, next_seq_++, node, tag});
}

void Kernel::fire_one() {
  const QueuedEvent ev = queue_->pop_min();
  now_ = ev.at;
  ++events_fired_;
  metrics::bump(metrics::Counter::events_fired);
  processes_[ev.node]->fire(*this, ev.tag);
}

std::uint64_t Kernel::run_until(Time t_end) {
  RINGENT_REQUIRE(t_end >= now_, "horizon in the past");
  std::uint64_t fired = 0;
  while (!queue_->empty() && queue_->peek_min().at <= t_end) {
    fire_one();
    ++fired;
  }
  now_ = t_end;
  return fired;
}

std::uint64_t Kernel::run_events(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (fired < max_events && !queue_->empty()) {
    fire_one();
    ++fired;
  }
  return fired;
}

void Kernel::reset_time() {
  metrics::bump(metrics::Counter::events_cancelled, queue_->size());
  queue_->clear();
  now_ = Time::zero();
}

}  // namespace ringent::sim
