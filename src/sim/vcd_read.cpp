#include "sim/vcd_read.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/require.hpp"

namespace ringent::sim {

namespace {

// std::stoll leaks std::invalid_argument / std::out_of_range on hostile
// tokens like "#9999999999999999999999"; untrusted waveforms must fail with
// the module's Error instead (fuzz/fuzz_vcd.cpp enforces this).
std::int64_t parse_int64(const std::string& text, const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw Error(std::string("VCD: ") + what + ": '" + text + "'");
  }
  return static_cast<std::int64_t>(value);
}

std::int64_t parse_timescale(const std::string& spec) {
  // Forms: "1fs", "10 ps", "1ns" ...
  std::size_t pos = 0;
  while (pos < spec.size() && std::isdigit(static_cast<unsigned char>(spec[pos]))) {
    ++pos;
  }
  RINGENT_REQUIRE(pos > 0, "VCD: bad timescale magnitude: " + spec);
  const std::int64_t magnitude =
      parse_int64(spec.substr(0, pos), "bad timescale magnitude");
  RINGENT_REQUIRE(magnitude > 0, "VCD: bad timescale magnitude: " + spec);
  std::string unit = spec.substr(pos);
  while (!unit.empty() && unit.front() == ' ') unit.erase(unit.begin());
  std::int64_t per_unit = 0;
  if (unit == "fs") per_unit = 1;
  if (unit == "ps") per_unit = 1'000;
  if (unit == "ns") per_unit = 1'000'000;
  if (unit == "us") per_unit = 1'000'000'000;
  if (unit == "ms") per_unit = 1'000'000'000'000;
  if (unit == "s") per_unit = 1'000'000'000'000'000;
  RINGENT_REQUIRE(per_unit != 0, "VCD: unsupported timescale unit: " + unit);
  std::int64_t scale_fs = 0;
  if (__builtin_mul_overflow(magnitude, per_unit, &scale_fs)) {
    throw Error("VCD: timescale overflows the femtosecond range: " + spec);
  }
  return scale_fs;
}

/// Read tokens of a "$keyword ... $end" directive body.
std::vector<std::string> directive_body(std::istream& in) {
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) {
    if (token == "$end") return tokens;
    tokens.push_back(token);
  }
  throw Error("VCD: unterminated directive");
}

}  // namespace

VcdDocument read_vcd(std::istream& in) {
  VcdDocument doc;
  std::map<std::string, std::size_t> by_code;

  // --- header -------------------------------------------------------------
  std::string token;
  bool defs_done = false;
  while (!defs_done && in >> token) {
    if (token == "$timescale") {
      const auto body = directive_body(in);
      std::string spec;
      for (const auto& t : body) spec += t;
      doc.timescale_fs = parse_timescale(spec);
    } else if (token == "$scope") {
      const auto body = directive_body(in);
      if (body.size() >= 2) doc.module_name = body[1];
    } else if (token == "$var") {
      const auto body = directive_body(in);
      RINGENT_REQUIRE(body.size() >= 4, "VCD: malformed $var");
      RINGENT_REQUIRE(body[1] == "1",
                      "VCD: only 1-bit wires are supported (got width " +
                          body[1] + ")");
      const std::string& code = body[2];
      const std::string& name = body[3];
      RINGENT_REQUIRE(by_code.find(code) == by_code.end(),
                      "VCD: duplicate $var code: " + code);
      by_code[code] = doc.signals.size();
      doc.signals.push_back(VcdSignal{name, SignalTrace(name)});
    } else if (token == "$enddefinitions") {
      directive_body(in);
      defs_done = true;
    } else if (!token.empty() && token[0] == '$') {
      directive_body(in);  // skip $date, $version, $comment, $upscope...
    } else {
      throw Error("VCD: unexpected token in header: " + token);
    }
  }
  RINGENT_REQUIRE(defs_done, "VCD: missing $enddefinitions");

  // --- value changes --------------------------------------------------------
  std::int64_t now_units = 0;
  std::int64_t now_fs = 0;
  bool in_dumpvars = false;
  while (in >> token) {
    if (token.empty()) continue;
    if (token[0] == '#') {
      const std::int64_t t = parse_int64(token.substr(1), "bad timestamp");
      if (t < 0) throw Error("VCD: negative timestamp: " + token);
      if (t < now_units) {
        throw Error("VCD: non-monotonic timestamp: " + token);
      }
      now_units = t;
      if (__builtin_mul_overflow(now_units, doc.timescale_fs, &now_fs)) {
        throw Error("VCD: timestamp overflows the femtosecond range: " +
                    token);
      }
      continue;
    }
    if (token == "$dumpvars") {
      in_dumpvars = true;
      continue;
    }
    if (token == "$end") {
      in_dumpvars = false;
      continue;
    }
    const char value = token[0];
    if (value == '0' || value == '1' || value == 'x' || value == 'X' ||
        value == 'z' || value == 'Z') {
      const std::string code = token.substr(1);
      const auto it = by_code.find(code);
      RINGENT_REQUIRE(it != by_code.end(),
                      "VCD: change for unknown code: " + token);
      if (value == '0' || value == '1') {
        doc.signals[it->second].trace.record(Time::from_fs(now_fs),
                                             value == '1');
      }
      // x/z states are skipped (typically only in $dumpvars).
      continue;
    }
    if (token[0] == 'b' || token[0] == 'r') {
      throw Error("VCD: vector/real variables are not supported");
    }
    if (!in_dumpvars) {
      throw Error("VCD: unexpected token in change section: " + token);
    }
  }
  return doc;
}

VcdDocument read_vcd_file(const std::string& path) {
  std::ifstream in(path);
  RINGENT_REQUIRE(in.good(), "cannot open VCD file " + path);
  try {
    return read_vcd(in);
  } catch (const Error& e) {
    // Re-wrap with the file context: callers batch-importing foreign dumps
    // need to know which file was malformed.
    throw Error(path + ": " + e.what());
  }
}

}  // namespace ringent::sim
