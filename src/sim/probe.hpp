// Signal probes: record binary-signal transitions produced by ring models.
//
// A SignalTrace stores (time, value) transitions. Ring models call record()
// on every output change; analysis code consumes rising-edge timestamp lists.
// Long jitter experiments generate millions of transitions, so a trace can be
// configured to start recording after a warm-up time (letting the ring reach
// its steady regime first) and to stop after a sample budget.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace ringent::sim {

struct Transition {
  Time at;
  bool value;
};

class SignalTrace {
 public:
  /// `name` labels the signal in VCD dumps and reports.
  explicit SignalTrace(std::string name = "sig");

  /// Ignore transitions earlier than `t` (steady-regime warm-up).
  void set_record_from(Time t) { record_from_ = t; }

  /// Stop storing transitions once this many have been kept (0 = unlimited).
  /// Transitions beyond the cap are still counted in total_seen().
  void set_max_records(std::size_t n) { max_records_ = n; }

  const std::string& name() const { return name_; }

  /// Record a transition; calls must have non-decreasing timestamps.
  void record(Time at, bool value);

  /// All stored transitions in time order.
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Timestamps of stored rising (0->1) edges.
  std::vector<Time> rising_edges() const;

  /// Timestamps of stored falling (1->0) edges.
  std::vector<Time> falling_edges() const;

  /// Total transitions offered to the trace, including dropped ones.
  std::size_t total_seen() const { return total_seen_; }

  /// True once the record cap has been reached.
  bool full() const {
    return max_records_ != 0 && transitions_.size() >= max_records_;
  }

  void clear();

 private:
  std::string name_;
  std::vector<Transition> transitions_;
  Time record_from_ = Time::zero();
  Time last_at_ = Time::zero();
  std::size_t max_records_ = 0;
  std::size_t total_seen_ = 0;
  bool has_last_ = false;
};

/// Extract the i-th signal edge period sequence: differences between
/// successive timestamps. Returns empty if fewer than 2 edges.
std::vector<Time> edge_intervals(const std::vector<Time>& edges);

}  // namespace ringent::sim
