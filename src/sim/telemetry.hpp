// Streaming distribution telemetry: lock-free per-thread log-linear
// histograms over the simulation substrate.
//
// sim/metrics counts *how often* things happen; this layer records *how they
// are distributed* — event inter-fire gaps, pending-queue depths, Charlie
// fire delays, pool-task durations, and the trng health observables
// (trng/telemetry.hpp feeds the rct/apt/relock histograms). The design
// constraints mirror metrics.hpp exactly:
//
//  1. Zero cost when off. Every record() is one relaxed atomic load and a
//     predicted branch; the histogram arithmetic runs only when a snapshot
//     consumer turned collection on (RINGENT_TELEMETRY / --telemetry).
//  2. No cross-thread contention when on. Each thread owns a block of
//     relaxed-atomic bucket counters; snapshot() sums the blocks.
//  3. Deterministic counts. Every histogram except pool_task_ns records a
//     simulated-domain observable (femtoseconds, queue population, bit
//     indices), so bucket counts — and therefore quantiles — are bit-exact
//     at any `jobs` value: shards merge additively. pool_task_ns is wall
//     clock and explicitly excluded from that guarantee.
//
// Bucketing is HDR-style log-linear: values below 2^sub_bucket_bits map to
// their own exact bucket; above that, each power of two splits into
// 2^sub_bucket_bits equal sub-buckets. A bucket's width is therefore at most
// lower_bound * 2^-sub_bucket_bits, which bounds the relative error of any
// reported quantile by 2^-sub_bucket_bits (3.125 % at sub_bucket_bits = 5).
// quantile() reports the bucket's inclusive upper bound (the "highest
// equivalent value"), so estimates never under-report a tail.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace ringent::sim::telemetry {

/// Everything the substrate records distributions of. Keep histogram_names
/// in telemetry.cpp in sync.
enum class Histogram : std::size_t {
  event_gap_fs,          ///< simulated time between consecutive fired events
  queue_depth,           ///< pending-event population after each push
  charlie_delay_fs,      ///< Charlie-resolved fire delay per STR evaluation
  pool_task_ns,          ///< wall-clock per ThreadPool task (nondeterministic)
  rct_run_length,        ///< completed same-bit run lengths in the raw stream
  apt_window_ones,       ///< reference-bit count per completed APT window
  bits_between_alarms,   ///< raw bits between consecutive health alarms
  relock_duration_bits,  ///< raw bits from alarm to probation-clean recovery
  service_buffer_depth,  ///< per-slot ring occupancy at each front-end pop
  service_acquire_ns,    ///< wall-clock per acquire() call (nondeterministic)
};
inline constexpr std::size_t histogram_count =
    static_cast<std::size_t>(Histogram::service_acquire_ns) + 1;

/// Stable slug for snapshots and expositions (e.g. "event_gap_fs").
std::string_view histogram_name(Histogram histogram);

// --- log-linear bucketing math (pure, exposed for tests) --------------------

inline constexpr std::size_t sub_bucket_bits = 5;
inline constexpr std::size_t sub_bucket_count = std::size_t{1}
                                                << sub_bucket_bits;
/// Group 0 holds the exact values [0, 2^sub_bucket_bits); one further group
/// of sub_bucket_count buckets per binary exponent up to 2^64 - 1.
inline constexpr std::size_t bucket_count =
    (64 - sub_bucket_bits + 1) * sub_bucket_count;

constexpr std::size_t bucket_index(std::uint64_t value) {
  if (value < sub_bucket_count) return static_cast<std::size_t>(value);
  const auto exponent =
      static_cast<std::size_t>(std::bit_width(value)) - 1;  // >= sub_bucket_bits
  const std::size_t shift = exponent - sub_bucket_bits;
  return (shift + 1) * sub_bucket_count +
         static_cast<std::size_t>((value >> shift) - sub_bucket_count);
}

/// Inclusive lower bound of a bucket.
constexpr std::uint64_t bucket_low(std::size_t index) {
  const std::size_t group = index / sub_bucket_count;
  const std::uint64_t sub = index % sub_bucket_count;
  if (group == 0) return sub;
  return (sub_bucket_count + sub) << (group - 1);
}

/// Inclusive upper bound of a bucket (the quantile representative).
constexpr std::uint64_t bucket_high(std::size_t index) {
  const std::size_t group = index / sub_bucket_count;
  if (group == 0) return bucket_low(index);
  return bucket_low(index) + ((std::uint64_t{1} << (group - 1)) - 1);
}

namespace detail {

struct HistogramBlock {
  std::array<std::array<std::atomic<std::uint64_t>, bucket_count>,
             histogram_count>
      buckets{};
  std::array<std::atomic<std::uint64_t>, histogram_count> sums{};
};

extern std::atomic<bool> enabled_flag;

/// The calling thread's block (registered on first use; blocks outlive
/// their threads so late snapshots stay complete).
HistogramBlock& local_block();

void record_slow(Histogram histogram, std::uint64_t value);

}  // namespace detail

/// Global collection switch; off by default.
inline bool enabled() {
  return detail::enabled_flag.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Record one observation. The single-branch fast path: when collection is
/// off this is one relaxed load.
inline void record(Histogram histogram, std::uint64_t value) {
  if (!enabled()) return;
  detail::record_slow(histogram, value);
}

/// One histogram's merged state: exact count/sum plus the sparse non-empty
/// buckets, sorted by bucket index.
struct HistogramSnapshot {
  std::string_view name;  ///< histogram_name() slug
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// (bucket index, observations) for every non-empty bucket, ascending.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  /// The q-quantile (q in [0, 1]) as the inclusive upper bound of the bucket
  /// holding the ceil(q * count)-th smallest observation — never below the
  /// exact order statistic and at most a factor 1 + 2^-sub_bucket_bits above
  /// it. 0 when empty.
  std::uint64_t quantile(double q) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  std::uint64_t min_bound() const;  ///< lower bound of the smallest observation
  std::uint64_t max_bound() const;  ///< upper bound of the largest observation
};

/// A consistent copy of every histogram, dense (indexed by Histogram).
/// Quiescent snapshots (no simulation in flight) are exact.
struct Snapshot {
  std::array<std::vector<std::uint64_t>, histogram_count> buckets;
  std::array<std::uint64_t, histogram_count> counts{};
  std::array<std::uint64_t, histogram_count> sums{};

  /// Per-histogram difference since `earlier` (per-experiment deltas).
  Snapshot delta_since(const Snapshot& earlier) const;

  /// Sparse view of one histogram.
  HistogramSnapshot histogram(Histogram histogram) const;
  /// Sparse views of every non-empty histogram, in enum order.
  std::vector<HistogramSnapshot> non_empty() const;
};

Snapshot snapshot();

/// Zero every bucket. Call only while no simulation is running.
void reset();

}  // namespace ringent::sim::telemetry
