// Pluggable pending-event sets for the kernel.
//
// Two implementations with identical observable behaviour (pop order is
// (time, sequence) — the determinism contract):
//
//  * BinaryHeapQueue — std::priority_queue; O(log n), cache-friendly,
//    the default.
//  * CalendarQueue — R. Brown's calendar queue (CACM 1988), the classic
//    discrete-event-simulation structure: an array of "days" (buckets) of
//    width ~ the mean event spacing gives O(1) amortized push/pop when the
//    event-time distribution is stationary — which ring simulations are
//    (every stage fires at a fixed mean rate). The queue resizes itself as
//    the population grows or shrinks.
//
// Both are exercised by the same test suite (including a pop-sequence
// equivalence property against each other) and compared in bench/perf_kernel.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"

namespace ringent::sim {

struct QueuedEvent {
  Time at;
  std::uint64_t seq = 0;
  std::uint32_t node = 0;
  std::uint32_t tag = 0;
};

/// Ordering contract: earlier time first; equal times in sequence order.
inline bool earlier(const QueuedEvent& a, const QueuedEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

class EventQueueBase {
 public:
  virtual ~EventQueueBase() = default;
  virtual void push(const QueuedEvent& event) = 0;
  /// Precondition: !empty().
  virtual QueuedEvent pop_min() = 0;
  /// Precondition: !empty(). Valid until the next push/pop.
  virtual const QueuedEvent& peek_min() = 0;
  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
  virtual void clear() = 0;
  /// Pre-size internal storage for an expected steady pending-event
  /// population so the hot loop never reallocates. A hint only — queues
  /// grow past it transparently.
  virtual void reserve(std::size_t expected_events) = 0;
};

class BinaryHeapQueue final : public EventQueueBase {
 public:
  void push(const QueuedEvent& event) override;
  QueuedEvent pop_min() override;
  const QueuedEvent& peek_min() override;
  bool empty() const override { return heap_.empty(); }
  std::size_t size() const override { return heap_.size(); }
  void clear() override { heap_.clear(); }
  void reserve(std::size_t expected_events) override {
    heap_.reserve(expected_events);
  }

 private:
  std::vector<QueuedEvent> heap_;  // std::*_heap with `later` comparator
};

class CalendarQueue final : public EventQueueBase {
 public:
  /// `initial_width` is the starting day width; it adapts after the first
  /// resize. Defaults to 100 ps — roughly a gate delay, a good prior for
  /// ring workloads.
  explicit CalendarQueue(Time initial_width = Time::from_ps(100.0));

  void push(const QueuedEvent& event) override;
  QueuedEvent pop_min() override;
  const QueuedEvent& peek_min() override;
  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }
  void clear() override;
  void reserve(std::size_t expected_events) override;

 private:
  std::size_t bucket_of(Time t) const;
  void resize(std::size_t new_bucket_count);
  /// Locate the bucket/slot of the minimum event; cached until mutation.
  void find_min();

  std::vector<std::vector<QueuedEvent>> buckets_;
  std::int64_t width_fs_;
  std::size_t size_ = 0;
  // Search state: the virtual "today" advances with pops.
  std::int64_t current_day_ = 0;  // absolute day index of the search cursor
  // Cached minimum (bucket index + position), recomputed lazily.
  bool min_valid_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_slot_ = 0;
};

enum class QueueKind { binary_heap, calendar };

std::unique_ptr<EventQueueBase> make_event_queue(QueueKind kind);

}  // namespace ringent::sim
