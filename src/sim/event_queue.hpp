// Pluggable pending-event sets for the kernel.
//
// Three implementations with identical observable behaviour (pop order is
// (time, sequence) — the determinism contract):
//
//  * FlatHeap4 — the kernel's hot-path structure: a non-virtual flat 4-ary
//    min-heap in structure-of-arrays layout. The ordering keys (time, seq)
//    live in one dense 16-byte-per-event array so a sift touches the minimum
//    number of cache lines; the routing payload (node, tag) is packed into a
//    single uint64 in a parallel array and only read when an event pops.
//    4-ary halves the tree depth of a binary heap and keeps all four
//    children of a node inside one cache line.
//  * BinaryHeapQueue — std::priority_queue semantics via std::*_heap; the
//    reference implementation the equivalence tests compare against.
//  * CalendarQueue — R. Brown's calendar queue (CACM 1988), the classic
//    discrete-event-simulation structure: an array of "days" (buckets) of
//    width ~ the mean event spacing gives O(1) amortized push/pop when the
//    event-time distribution is stationary — which ring simulations are
//    (every stage fires at a fixed mean rate). The queue resizes itself as
//    the population grows or shrinks.
//
// All three are exercised by the same test suite (including a pairwise
// pop-sequence equivalence property) and compared in bench/perf_kernel.
// The kernel itself holds a FlatHeap4 and a CalendarQueue directly and
// selects between them with a branch on QueueKind — no virtual dispatch on
// the hot path (see sim/kernel.hpp); the EventQueueBase hierarchy remains
// for tests, benches and external callers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/require.hpp"
#include "common/time.hpp"
#include "sim/metrics.hpp"

namespace ringent::sim {

struct QueuedEvent {
  Time at;
  std::uint64_t seq = 0;
  std::uint32_t node = 0;
  std::uint32_t tag = 0;
};

/// Ordering contract: earlier time first; equal times in sequence order.
inline bool earlier(const QueuedEvent& a, const QueuedEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  return a.seq < b.seq;
}

class EventQueueBase {
 public:
  virtual ~EventQueueBase() = default;
  virtual void push(const QueuedEvent& event) = 0;
  /// Precondition: !empty().
  virtual QueuedEvent pop_min() = 0;
  /// Precondition: !empty(). Valid until the next push/pop.
  virtual const QueuedEvent& peek_min() = 0;
  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
  virtual void clear() = 0;
  /// Pre-size internal storage for an expected steady pending-event
  /// population so the hot loop never reallocates. A hint only — queues
  /// grow past it transparently.
  virtual void reserve(std::size_t expected_events) = 0;
};

class BinaryHeapQueue final : public EventQueueBase {
 public:
  void push(const QueuedEvent& event) override;
  QueuedEvent pop_min() override;
  const QueuedEvent& peek_min() override;
  bool empty() const override { return heap_.empty(); }
  std::size_t size() const override { return heap_.size(); }
  void clear() override { heap_.clear(); }
  void reserve(std::size_t expected_events) override {
    heap_.reserve(expected_events);
  }

 private:
  std::vector<QueuedEvent> heap_;  // std::*_heap with `later` comparator
};

class CalendarQueue final : public EventQueueBase {
 public:
  /// `initial_width` is the starting day width; it adapts after the first
  /// resize. Defaults to 100 ps — roughly a gate delay, a good prior for
  /// ring workloads.
  explicit CalendarQueue(Time initial_width = Time::from_ps(100.0));

  void push(const QueuedEvent& event) override;
  QueuedEvent pop_min() override;
  const QueuedEvent& peek_min() override;
  /// Earliest pending timestamp (same cached lookup as peek_min). Non-virtual
  /// so the kernel's drain loop reads it without materializing an event.
  Time min_at() { return peek_min().at; }
  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }
  void clear() override;
  void reserve(std::size_t expected_events) override;

 private:
  std::size_t bucket_of(Time t) const;
  void resize(std::size_t new_bucket_count);
  /// Locate the bucket/slot of the minimum event; cached until mutation.
  void find_min();

  std::vector<std::vector<QueuedEvent>> buckets_;
  std::int64_t width_fs_;
  std::size_t size_ = 0;
  // Search state: the virtual "today" advances with pops.
  std::int64_t current_day_ = 0;  // absolute day index of the search cursor
  // Cached minimum (bucket index + position), recomputed lazily.
  bool min_valid_ = false;
  std::size_t min_bucket_ = 0;
  std::size_t min_slot_ = 0;
};

/// The kernel's hot-path pending-event set: a flat 4-ary min-heap with the
/// ordering keys and the routing payload split into parallel arrays (see the
/// file comment). Matches the EventQueueBase surface so the same templated
/// tests and kernel loops run over all queue implementations, but is not
/// virtual: every call inlines into the kernel loop. peek_min()/pop_min()
/// return by value (the structure-of-arrays layout has no QueuedEvent to
/// reference).
class FlatHeap4 {
 public:
  void push(const QueuedEvent& event) {
    metrics::bump(metrics::Counter::heap_pushes);
    keys_.push_back(Key{event.at.fs(), event.seq});
    payload_.push_back(pack(event.node, event.tag));
    sift_up(keys_.size() - 1);
  }

  /// Precondition: !empty().
  QueuedEvent pop_min() {
    RINGENT_REQUIRE(!keys_.empty(), "pop from empty queue");
    metrics::bump(metrics::Counter::heap_pops);
    const QueuedEvent out = make_event(keys_[0], payload_[0]);
    const Key last_key = keys_.back();
    const std::uint64_t last_payload = payload_.back();
    keys_.pop_back();
    payload_.pop_back();
    if (!keys_.empty()) {
      keys_[0] = last_key;
      payload_[0] = last_payload;
      sift_down(0);
    }
    return out;
  }

  /// Precondition: !empty().
  QueuedEvent peek_min() const {
    RINGENT_REQUIRE(!keys_.empty(), "peek into empty queue");
    return make_event(keys_[0], payload_[0]);
  }

  /// Earliest pending timestamp without materializing the event.
  /// Precondition: !empty().
  Time min_at() const {
    RINGENT_REQUIRE(!keys_.empty(), "peek into empty queue");
    return Time::from_fs(keys_[0].at_fs);
  }

  bool empty() const { return keys_.empty(); }
  std::size_t size() const { return keys_.size(); }
  void clear() {
    keys_.clear();
    payload_.clear();
  }
  void reserve(std::size_t expected_events) {
    keys_.reserve(expected_events);
    payload_.reserve(expected_events);
  }

 private:
  struct Key {
    std::int64_t at_fs;
    std::uint64_t seq;
  };

  static bool key_earlier(Key a, Key b) {
    if (a.at_fs != b.at_fs) return a.at_fs < b.at_fs;
    return a.seq < b.seq;
  }
  static std::uint64_t pack(std::uint32_t node, std::uint32_t tag) {
    return (static_cast<std::uint64_t>(node) << 32) | tag;
  }
  static QueuedEvent make_event(Key key, std::uint64_t payload) {
    return QueuedEvent{Time::from_fs(key.at_fs), key.seq,
                       static_cast<std::uint32_t>(payload >> 32),
                       static_cast<std::uint32_t>(payload)};
  }

  void sift_up(std::size_t hole);
  void sift_down(std::size_t hole);

  std::vector<Key> keys_;
  std::vector<std::uint64_t> payload_;
};

inline void FlatHeap4::sift_up(std::size_t hole) {
  const Key key = keys_[hole];
  const std::uint64_t payload = payload_[hole];
  while (hole > 0) {
    const std::size_t parent = (hole - 1) >> 2;
    if (!key_earlier(key, keys_[parent])) break;
    keys_[hole] = keys_[parent];
    payload_[hole] = payload_[parent];
    hole = parent;
  }
  keys_[hole] = key;
  payload_[hole] = payload;
}

inline void FlatHeap4::sift_down(std::size_t hole) {
  // Bottom-up variant (the same trick libstdc++'s __adjust_heap uses): walk
  // the hole to a leaf along the min-child path without comparing against
  // the displaced key, then bubble the key up from the leaf. The displaced
  // key comes from the heap's bottom and is near-maximal almost always, so
  // the bubble-up terminates immediately — one comparison instead of one
  // per level. Pop ORDER is unaffected: (time, seq) keys are unique, so any
  // valid heap shape pops the same sequence.
  const std::size_t n = keys_.size();
  const Key key = keys_[hole];
  const std::uint64_t payload = payload_[hole];
  const std::size_t start = hole;
  for (;;) {
    const std::size_t first_child = (hole << 2) + 1;
    if (first_child >= n) break;
    std::size_t best;
    if (first_child + 4 <= n) {
      // Full fan-out (the common case): pairwise tournament. The two
      // first-round comparisons are independent, so they pipeline; keys
      // are unique, so the winner is the same minimum the linear scan
      // finds.
      const std::size_t a =
          key_earlier(keys_[first_child + 1], keys_[first_child])
              ? first_child + 1
              : first_child;
      const std::size_t b =
          key_earlier(keys_[first_child + 3], keys_[first_child + 2])
              ? first_child + 3
              : first_child + 2;
      best = key_earlier(keys_[b], keys_[a]) ? b : a;
    } else {
      const std::size_t last_child = n;
      best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (key_earlier(keys_[c], keys_[best])) best = c;
      }
    }
    keys_[hole] = keys_[best];
    payload_[hole] = payload_[best];
    hole = best;
  }
  while (hole > start) {
    const std::size_t parent = (hole - 1) >> 2;
    if (!key_earlier(key, keys_[parent])) break;
    keys_[hole] = keys_[parent];
    payload_[hole] = payload_[parent];
    hole = parent;
  }
  keys_[hole] = key;
  payload_[hole] = payload;
}

enum class QueueKind { binary_heap, calendar };

std::unique_ptr<EventQueueBase> make_event_queue(QueueKind kind);

}  // namespace ringent::sim
