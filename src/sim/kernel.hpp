// Discrete-event simulation kernel.
//
// The kernel advances a femtosecond-resolution clock through a time-ordered
// event queue. Determinism is guaranteed two ways: events at equal timestamps
// fire in schedule order (a monotonically increasing sequence number breaks
// ties), and all stochastic behaviour lives in the components, which draw
// from explicitly seeded streams.
//
// Components implement Process and are registered with add_process(); events
// address them by NodeId plus a component-defined 32-bit tag, so the hot loop
// performs no allocation and no type erasure beyond one virtual call.
// The kernel does not own processes: a ring model owns its stages and
// registers them for the duration of a run (see ring/iro.hpp, ring/str.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "sim/event_queue.hpp"

namespace ringent::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId invalid_node = ~NodeId{0};

class Kernel;

/// Interface for anything that can receive scheduled events.
class Process {
 public:
  virtual ~Process() = default;

  /// Called when an event scheduled for this process reaches the head of the
  /// queue. `tag` is the value passed at schedule time; its meaning is
  /// private to the process.
  virtual void fire(Kernel& kernel, std::uint32_t tag) = 0;
};

class Kernel {
 public:
  /// The pending-event set is pluggable (sim/event_queue.hpp): the default
  /// binary heap, or a calendar queue for large stationary workloads. Both
  /// give bit-identical simulations — asserted by tests.
  explicit Kernel(QueueKind queue_kind = QueueKind::binary_heap);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Register a process; the returned id addresses it in schedule calls.
  /// The caller keeps ownership and must keep the process alive until the
  /// kernel is destroyed or reset.
  NodeId add_process(Process* process);

  /// Number of registered processes.
  std::size_t process_count() const { return processes_.size(); }

  /// Schedule an event `delay` after the current time. Delays must be
  /// non-negative; zero-delay events fire after already-queued events with
  /// the same timestamp.
  void schedule_in(Time delay, NodeId node, std::uint32_t tag = 0);

  /// Schedule an event at an absolute time >= now().
  void schedule_at(Time at, NodeId node, std::uint32_t tag = 0);

  /// Current simulation time (the timestamp of the last fired event).
  Time now() const { return now_; }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return events_fired_; }

  /// True if no events are pending.
  bool idle() const { return queue_->empty(); }

  /// Fire events until the queue is empty or the next event is later than
  /// `t_end`. Events exactly at `t_end` are fired. Returns events fired by
  /// this call. On return now() == t_end if any horizon was reached early.
  std::uint64_t run_until(Time t_end);

  /// Fire at most `max_events` events. Returns events fired.
  std::uint64_t run_events(std::uint64_t max_events);

  /// Drop all pending events and reset the clock to zero. Registered
  /// processes stay registered.
  void reset_time();

  /// Pre-size the pending-event set for an expected steady population
  /// (e.g. ~1 event per ring stage) so the hot loop never reallocates.
  void reserve_events(std::size_t expected_events) {
    queue_->reserve(expected_events);
  }

 private:
  void fire_one();

  std::vector<Process*> processes_;
  std::unique_ptr<EventQueueBase> queue_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
};

}  // namespace ringent::sim
