// Discrete-event simulation kernel.
//
// The kernel advances a femtosecond-resolution clock through a time-ordered
// event queue. Determinism is guaranteed two ways: events at equal timestamps
// fire in schedule order (a monotonically increasing sequence number breaks
// ties), and all stochastic behaviour lives in the components, which draw
// from explicitly seeded streams.
//
// Components implement Process and are registered with add_process(); events
// address them by NodeId plus a component-defined 32-bit tag, so the hot loop
// performs no allocation.
//
// Hot-path structure: the kernel owns its two pending-event sets directly —
// a FlatHeap4 (the default) and a CalendarQueue — and selects between them
// with a branch on QueueKind instead of a virtual call per push/pop. The
// generic run loops dispatch Process::fire virtually; a single-process
// simulation (every Oscillator — one ring per kernel) can instead use
// run_until_on<P>(), which devirtualizes the fire call so a `final` ring
// model inlines its event handler straight into the drain loop. Both paths
// pop the identical (time, seq) sequence and bump the identical counters.
// The kernel does not own processes: a ring model owns its stages and
// registers them for the duration of a run (see ring/iro.hpp, ring/str.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/require.hpp"
#include "common/time.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"

namespace ringent::sim {

using NodeId = std::uint32_t;
inline constexpr NodeId invalid_node = ~NodeId{0};

class Kernel;

/// Interface for anything that can receive scheduled events.
class Process {
 public:
  virtual ~Process() = default;

  /// Called when an event scheduled for this process reaches the head of the
  /// queue. `tag` is the value passed at schedule time; its meaning is
  /// private to the process.
  virtual void fire(Kernel& kernel, std::uint32_t tag) = 0;
};

class Kernel {
 public:
  /// The pending-event set is selectable: the default flat 4-ary heap, or a
  /// calendar queue for large stationary workloads. Both give bit-identical
  /// simulations — asserted by tests.
  explicit Kernel(QueueKind queue_kind = QueueKind::binary_heap)
      : kind_(queue_kind) {}
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Register a process; the returned id addresses it in schedule calls.
  /// The caller keeps ownership and must keep the process alive until the
  /// kernel is destroyed or reset.
  NodeId add_process(Process* process) {
    RINGENT_REQUIRE(process != nullptr, "null process");
    processes_.push_back(process);
    return static_cast<NodeId>(processes_.size() - 1);
  }

  /// Number of registered processes.
  std::size_t process_count() const { return processes_.size(); }

  /// Schedule an event `delay` after the current time. Delays must be
  /// non-negative; zero-delay events fire after already-queued events with
  /// the same timestamp.
  void schedule_in(Time delay, NodeId node, std::uint32_t tag = 0) {
    RINGENT_REQUIRE(!delay.is_negative(), "negative delay");
    schedule_at(now_ + delay, node, tag);
  }

  /// Schedule an event at an absolute time >= now().
  void schedule_at(Time at, NodeId node, std::uint32_t tag = 0) {
    RINGENT_REQUIRE(node < processes_.size(), "unknown node id");
    RINGENT_REQUIRE(at >= now_, "cannot schedule in the past");
    metrics::bump(metrics::Counter::events_scheduled);
    const QueuedEvent event{at, next_seq_++, node, tag};
    if (kind_ == QueueKind::binary_heap) {
      heap_.push(event);
      telemetry::record(telemetry::Histogram::queue_depth, heap_.size());
    } else {
      calendar_.push(event);
      telemetry::record(telemetry::Histogram::queue_depth, calendar_.size());
    }
  }

  /// Current simulation time (the timestamp of the last fired event).
  Time now() const { return now_; }

  /// Total events fired since construction.
  std::uint64_t events_fired() const { return events_fired_; }

  /// True if no events are pending.
  bool idle() const {
    return kind_ == QueueKind::binary_heap ? heap_.empty() : calendar_.empty();
  }

  /// Fire events until the queue is empty or the next event is later than
  /// `t_end`. Events exactly at `t_end` are fired. Returns events fired by
  /// this call. On return now() == t_end if any horizon was reached early.
  std::uint64_t run_until(Time t_end);

  /// Fire at most `max_events` events. Returns events fired.
  std::uint64_t run_events(std::uint64_t max_events);

  /// run_until for a simulation whose only registered process is `process`:
  /// the Process::fire dispatch devirtualizes, so a `final` process type
  /// inlines its handler into the drain loop. Falls back to the generic
  /// run_until when other processes are registered. Identical semantics and
  /// counters either way.
  template <class P>
  std::uint64_t run_until_on(P& process, Time t_end) {
    if (processes_.size() != 1 || processes_[0] != &process) {
      return run_until(t_end);
    }
    const auto fire = [this, &process](const QueuedEvent& event) {
      process.fire(*this, event.tag);
    };
    if (kind_ == QueueKind::binary_heap) {
      return drain_until(heap_, t_end, fire);
    }
    return drain_until(calendar_, t_end, fire);
  }

  /// Drop all pending events and reset the clock to zero. Registered
  /// processes stay registered.
  void reset_time();

  /// Pre-size the pending-event set for an expected steady population
  /// (e.g. ~1 event per ring stage) so the hot loop never reallocates.
  void reserve_events(std::size_t expected_events) {
    if (kind_ == QueueKind::binary_heap) {
      heap_.reserve(expected_events);
    } else {
      calendar_.reserve(expected_events);
    }
  }

 private:
  /// The shared drain loop, templated over the concrete queue type and the
  /// fire dispatcher: the generic run loops route by event.node through the
  /// virtual Process::fire, run_until_on passes a devirtualized handler.
  template <class Q, class Fire>
  std::uint64_t drain_until(Q& queue, Time t_end, const Fire& fire) {
    RINGENT_REQUIRE(t_end >= now_, "horizon in the past");
    std::uint64_t fired = 0;
    while (!queue.empty() && queue.min_at() <= t_end) {
      const QueuedEvent event = queue.pop_min();
      telemetry::record(telemetry::Histogram::event_gap_fs,
                        static_cast<std::uint64_t>((event.at - now_).fs()));
      now_ = event.at;
      ++events_fired_;
      metrics::bump(metrics::Counter::events_fired);
      fire(event);
      ++fired;
    }
    now_ = t_end;
    return fired;
  }

  template <class Q, class Fire>
  std::uint64_t drain_events(Q& queue, std::uint64_t max_events,
                             const Fire& fire) {
    std::uint64_t fired = 0;
    while (fired < max_events && !queue.empty()) {
      const QueuedEvent event = queue.pop_min();
      telemetry::record(telemetry::Histogram::event_gap_fs,
                        static_cast<std::uint64_t>((event.at - now_).fs()));
      now_ = event.at;
      ++events_fired_;
      metrics::bump(metrics::Counter::events_fired);
      fire(event);
      ++fired;
    }
    return fired;
  }

  std::vector<Process*> processes_;
  QueueKind kind_;
  FlatHeap4 heap_;
  CalendarQueue calendar_;
  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_fired_ = 0;
};

}  // namespace ringent::sim
