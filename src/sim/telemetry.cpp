#include "sim/telemetry.hpp"

#include <cmath>
#include <memory>
#include <mutex>

#include "common/require.hpp"

namespace ringent::sim::telemetry {

namespace detail {

std::atomic<bool> enabled_flag{false};

namespace {

/// Registry of every thread's histogram block. Blocks are heap-owned by the
/// registry (not the thread) so a snapshot taken after a pool shut down
/// still sees the workers' observations.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<HistogramBlock>> blocks;
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all threads
  return *instance;
}

}  // namespace

HistogramBlock& local_block() {
  thread_local HistogramBlock* block = [] {
    auto owned = std::make_unique<HistogramBlock>();
    HistogramBlock* raw = owned.get();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.blocks.push_back(std::move(owned));
    return raw;
  }();
  return *block;
}

void record_slow(Histogram histogram, std::uint64_t value) {
  HistogramBlock& block = local_block();
  const auto h = static_cast<std::size_t>(histogram);
  block.buckets[h][bucket_index(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  block.sums[h].fetch_add(value, std::memory_order_relaxed);
}

}  // namespace detail

std::string_view histogram_name(Histogram histogram) {
  static constexpr std::string_view names[histogram_count] = {
      "event_gap_fs",        "queue_depth",
      "charlie_delay_fs",    "pool_task_ns",
      "rct_run_length",      "apt_window_ones",
      "bits_between_alarms", "relock_duration_bits",
      "service_buffer_depth", "service_acquire_ns",
  };
  const auto index = static_cast<std::size_t>(histogram);
  RINGENT_REQUIRE(index < histogram_count, "unknown histogram");
  return names[index];
}

void set_enabled(bool on) {
  detail::enabled_flag.store(on, std::memory_order_relaxed);
}

Snapshot snapshot() {
  Snapshot out;
  for (auto& dense : out.buckets) dense.assign(bucket_count, 0);
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& block : reg.blocks) {
    for (std::size_t h = 0; h < histogram_count; ++h) {
      for (std::size_t b = 0; b < bucket_count; ++b) {
        const std::uint64_t n =
            block->buckets[h][b].load(std::memory_order_relaxed);
        if (n == 0) continue;
        out.buckets[h][b] += n;
        out.counts[h] += n;
      }
      out.sums[h] += block->sums[h].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void reset() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& block : reg.blocks) {
    for (auto& histogram : block->buckets) {
      for (auto& bucket : histogram) {
        bucket.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& sum : block->sums) sum.store(0, std::memory_order_relaxed);
  }
}

Snapshot Snapshot::delta_since(const Snapshot& earlier) const {
  Snapshot out;
  for (std::size_t h = 0; h < histogram_count; ++h) {
    out.buckets[h].assign(bucket_count, 0);
    for (std::size_t b = 0; b < bucket_count; ++b) {
      out.buckets[h][b] = buckets[h][b] - earlier.buckets[h][b];
    }
    out.counts[h] = counts[h] - earlier.counts[h];
    out.sums[h] = sums[h] - earlier.sums[h];
  }
  return out;
}

HistogramSnapshot Snapshot::histogram(Histogram histogram) const {
  const auto h = static_cast<std::size_t>(histogram);
  HistogramSnapshot out;
  out.name = histogram_name(histogram);
  out.count = counts[h];
  out.sum = sums[h];
  for (std::size_t b = 0; b < bucket_count; ++b) {
    if (buckets[h][b] != 0) {
      out.buckets.emplace_back(static_cast<std::uint32_t>(b), buckets[h][b]);
    }
  }
  return out;
}

std::vector<HistogramSnapshot> Snapshot::non_empty() const {
  std::vector<HistogramSnapshot> out;
  for (std::size_t h = 0; h < histogram_count; ++h) {
    if (counts[h] == 0) continue;
    out.push_back(histogram(static_cast<Histogram>(h)));
  }
  return out;
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t cumulative = 0;
  for (const auto& [index, n] : buckets) {
    cumulative += n;
    if (cumulative >= rank) return bucket_high(index);
  }
  return bucket_high(buckets.back().first);  // unreachable when consistent
}

std::uint64_t HistogramSnapshot::min_bound() const {
  return buckets.empty() ? 0 : bucket_low(buckets.front().first);
}

std::uint64_t HistogramSnapshot::max_bound() const {
  return buckets.empty() ? 0 : bucket_high(buckets.back().first);
}

}  // namespace ringent::sim::telemetry
