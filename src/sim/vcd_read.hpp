// Minimal VCD (IEEE 1364) reader for scalar wires.
//
// Round-trips the dumps produced by sim::VcdWriter and reads GTKWave-class
// files with single-bit variables: enough to re-import recorded waveforms
// for analysis (periods, mode classification) without keeping the original
// simulation around. Vector variables and real values are rejected loudly.
//
// The reader treats its input as untrusted (fuzz/fuzz_vcd.cpp): every
// malformed construct — oversized timestamps/timescales, negative or
// non-monotonic time, duplicate $var codes — fails with ringent::Error,
// never a leaked std:: exception or signed-overflow UB.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "sim/probe.hpp"

namespace ringent::sim {

struct VcdSignal {
  std::string name;
  SignalTrace trace;  ///< transitions with 'x' states skipped
};

struct VcdDocument {
  std::string module_name;
  /// Timescale in femtoseconds per VCD time unit.
  std::int64_t timescale_fs = 1;
  std::vector<VcdSignal> signals;
};

/// Parse a VCD stream. Throws ringent::Error on malformed input or
/// unsupported constructs (vector variables, real variables).
VcdDocument read_vcd(std::istream& in);

/// Convenience: parse a file by path.
VcdDocument read_vcd_file(const std::string& path);

}  // namespace ringent::sim
