#include "sim/probe.hpp"

#include <utility>

#include "common/require.hpp"

namespace ringent::sim {

SignalTrace::SignalTrace(std::string name) : name_(std::move(name)) {}

void SignalTrace::record(Time at, bool value) {
  RINGENT_REQUIRE(!has_last_ || at >= last_at_,
                  "transitions must be recorded in time order");
  last_at_ = at;
  has_last_ = true;
  ++total_seen_;
  if (at < record_from_) return;
  if (max_records_ != 0 && transitions_.size() >= max_records_) return;
  transitions_.push_back(Transition{at, value});
}

std::vector<Time> SignalTrace::rising_edges() const {
  std::vector<Time> out;
  out.reserve(transitions_.size() / 2 + 1);
  for (const auto& tr : transitions_) {
    if (tr.value) out.push_back(tr.at);
  }
  return out;
}

std::vector<Time> SignalTrace::falling_edges() const {
  std::vector<Time> out;
  out.reserve(transitions_.size() / 2 + 1);
  for (const auto& tr : transitions_) {
    if (!tr.value) out.push_back(tr.at);
  }
  return out;
}

void SignalTrace::clear() {
  transitions_.clear();
  total_seen_ = 0;
  has_last_ = false;
  last_at_ = Time::zero();
}

std::vector<Time> edge_intervals(const std::vector<Time>& edges) {
  std::vector<Time> out;
  if (edges.size() < 2) return out;
  out.reserve(edges.size() - 1);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    out.push_back(edges[i] - edges[i - 1]);
  }
  return out;
}

}  // namespace ringent::sim
