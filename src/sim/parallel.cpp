#include "sim/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace {

/// Run one pool task, recording its wall-clock duration into the
/// pool_task_ns histogram when telemetry is on (two clock reads — paid only
/// when collecting; the off path is the task call alone).
template <class Task>
void run_timed_task(std::size_t i, const Task& task) {
  namespace telemetry = ringent::sim::telemetry;
  namespace metrics = ringent::sim::metrics;
  if (!telemetry::enabled()) {
    task(i);
    return;
  }
  const double start = metrics::wall_seconds();
  task(i);
  const double elapsed = metrics::wall_seconds() - start;
  telemetry::record(telemetry::Histogram::pool_task_ns,
                    elapsed > 0.0 ? static_cast<std::uint64_t>(elapsed * 1e9)
                                  : 0);
}

}  // namespace

namespace ringent::sim {

bool parse_jobs_value(const char* text, std::size_t& out) {
  if (text == nullptr || *text == '\0') return false;
  // strtoull silently wraps negative input ("-3" becomes 2^64 - 3); reject
  // the sign up front.
  if (*text == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  if (errno == ERANGE ||
      value > std::numeric_limits<std::size_t>::max()) {
    return false;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

std::size_t max_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw == 0 ? 1 : hw;
  return std::max<std::size_t>(4 * cores, 8);
}

std::size_t default_jobs() {
  std::size_t env_jobs = 0;
  if (parse_jobs_value(std::getenv("RINGENT_JOBS"), env_jobs) &&
      env_jobs != 0) {
    return std::min(env_jobs, max_jobs());
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t resolve_jobs(std::size_t jobs) {
  return jobs == 0 ? default_jobs() : std::min(jobs, max_jobs());
}

std::size_t parse_jobs_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--jobs" && i + 1 < argc) {
      std::size_t jobs = 0;
      parse_jobs_value(argv[i + 1], jobs);
      return jobs;
    }
    constexpr std::string_view prefix = "--jobs=";
    if (arg.substr(0, prefix.size()) == prefix) {
      std::size_t jobs = 0;
      parse_jobs_value(argv[i] + prefix.size(), jobs);
      return jobs;
    }
  }
  return 0;
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  bool stop = false;

  // Current batch; all fields written under `mutex` before the generation
  // bump that releases the workers.
  std::uint64_t generation = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t busy = 0;  ///< workers still draining the current batch

  // First (lowest-index) exception of the batch.
  std::size_t error_index = 0;
  std::exception_ptr error;

  std::vector<std::thread> workers;

  /// Claim and run tasks until the cursor passes `count`. Indices are
  /// claimed in increasing order, so every index below the first throwing
  /// one is guaranteed to have been claimed (and run to completion) — which
  /// is what makes "rethrow the lowest-index exception" deterministic.
  void drain(const std::function<void(std::size_t)>& task) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      metrics::bump(metrics::Counter::pool_tasks);
      try {
        if (trace::enabled()) {
          trace::Span span("task " + std::to_string(i), "pool");
          run_timed_task(i, task);
        } else {
          run_timed_task(i, task);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (error == nullptr || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
        // Fail fast: park the cursor past the end so unclaimed tasks are
        // skipped. In-flight tasks still finish (no cancellation).
        next.store(count, std::memory_order_relaxed);
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* task = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        task = fn;
      }
      drain(*task);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--busy == 0) work_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t jobs) : jobs_(resolve_jobs(jobs)) {
  if (jobs_ < 2) return;
  impl_ = std::make_unique<Impl>();
  impl_->workers.reserve(jobs_ - 1);
  // The calling thread participates in every batch, so jobs_ workers means
  // jobs_ - 1 spawned threads.
  for (std::size_t i = 0; i + 1 < jobs_; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_ready.notify_all();
  for (auto& worker : impl_->workers) worker.join();
}

void ThreadPool::for_each_index(std::size_t count,
                                const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (impl_ == nullptr || count == 1) {
    // Inline path: a plain sequential loop (first exception propagates).
    for (std::size_t i = 0; i < count; ++i) {
      metrics::bump(metrics::Counter::pool_tasks);
      if (trace::enabled()) {
        trace::Span span("task " + std::to_string(i), "pool");
        run_timed_task(i, fn);
      } else {
        run_timed_task(i, fn);
      }
    }
    return;
  }

  Impl& impl = *impl_;
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    impl.count = count;
    impl.fn = &fn;
    impl.next.store(0, std::memory_order_relaxed);
    impl.error = nullptr;
    impl.error_index = 0;
    impl.busy = impl.workers.size();
    ++impl.generation;
  }
  impl.work_ready.notify_all();

  impl.drain(fn);  // the calling thread is worker number jobs_

  std::unique_lock<std::mutex> lock(impl.mutex);
  impl.work_done.wait(lock, [&] { return impl.busy == 0; });
  if (impl.error != nullptr) {
    const std::exception_ptr error = impl.error;
    impl.error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace ringent::sim
