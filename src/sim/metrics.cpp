#include "sim/metrics.hpp"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <memory>
#include <mutex>
#include <string_view>

#include "common/require.hpp"

namespace ringent::sim::metrics {

namespace detail {

std::atomic<bool> enabled_flag{false};

namespace {

struct PhaseAccumulator {
  double wall_s = 0.0;
  double cpu_s = 0.0;
  std::uint64_t calls = 0;
};

/// Registry of every thread's counter block plus the phase map. Blocks are
/// heap-owned by the registry (not the thread) so a snapshot taken after a
/// pool shut down still sees the workers' counts.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<CounterBlock>> blocks;
  std::vector<std::pair<std::string, PhaseAccumulator>> phases;

  PhaseAccumulator& phase(std::string_view name) {
    for (auto& [existing, acc] : phases) {
      if (existing == name) return acc;
    }
    phases.emplace_back(std::string(name), PhaseAccumulator{});
    return phases.back().second;
  }
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all threads
  return *instance;
}

}  // namespace

CounterBlock& local_block() {
  thread_local CounterBlock* block = [] {
    auto owned = std::make_unique<CounterBlock>();
    CounterBlock* raw = owned.get();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.blocks.push_back(std::move(owned));
    return raw;
  }();
  return *block;
}

}  // namespace detail

std::string_view counter_name(Counter counter) {
  static constexpr std::string_view names[counter_count] = {
      "events_scheduled",    "events_fired",
      "events_cancelled",    "heap_pushes",
      "heap_pops",           "calendar_pushes",
      "calendar_pops",       "charlie_evaluations",
      "token_collision_checks", "pool_tasks",
      "fault_activations",   "health_rct_alarms",
      "health_apt_alarms",   "health_transitions",
      "health_bits_muted",   "health_relock_attempts",
      "health_failovers",    "health_failures",
  };
  const auto index = static_cast<std::size_t>(counter);
  RINGENT_REQUIRE(index < counter_count, "unknown counter");
  return names[index];
}

void set_enabled(bool on) {
  detail::enabled_flag.store(on, std::memory_order_relaxed);
}

bool init_from_env() {
  const char* value = std::getenv("RINGENT_METRICS");
  if (value != nullptr && value[0] != '\0' &&
      !(value[0] == '0' && value[1] == '\0')) {
    set_enabled(true);
  }
  return enabled();
}

Snapshot snapshot() {
  auto& reg = detail::registry();
  Snapshot out;
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& block : reg.blocks) {
    for (std::size_t i = 0; i < counter_count; ++i) {
      out.counters[i] += block->values[i].load(std::memory_order_relaxed);
    }
  }
  out.phases.reserve(reg.phases.size());
  for (const auto& [name, acc] : reg.phases) {
    PhaseStat stat;
    stat.name = name;
    stat.wall_ms = acc.wall_s * 1e3;
    stat.cpu_ms = acc.cpu_s * 1e3;
    stat.calls = acc.calls;
    out.phases.push_back(std::move(stat));
  }
  return out;
}

void reset() {
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& block : reg.blocks) {
    for (auto& value : block->values) {
      value.store(0, std::memory_order_relaxed);
    }
  }
  reg.phases.clear();
}

Snapshot Snapshot::delta_since(const Snapshot& earlier) const {
  Snapshot out;
  for (std::size_t i = 0; i < counter_count; ++i) {
    out.counters[i] = counters[i] - earlier.counters[i];
  }
  for (const auto& stat : phases) {
    PhaseStat delta = stat;
    for (const auto& before : earlier.phases) {
      if (before.name != stat.name) continue;
      delta.wall_ms -= before.wall_ms;
      delta.cpu_ms -= before.cpu_ms;
      delta.calls -= before.calls;
      break;
    }
    if (delta.calls > 0) out.phases.push_back(std::move(delta));
  }
  return out;
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {
double clock_seconds(clockid_t id) {
  timespec ts{};
  if (clock_gettime(id, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}
}  // namespace

double thread_cpu_seconds() { return clock_seconds(CLOCK_THREAD_CPUTIME_ID); }

double process_cpu_seconds() { return clock_seconds(CLOCK_PROCESS_CPUTIME_ID); }

ScopedPhase::ScopedPhase(std::string_view name) {
  if (!enabled()) return;
  active_ = true;
  name_ = name;
  wall_start_ = wall_seconds();
  cpu_start_ = thread_cpu_seconds();
}

ScopedPhase::~ScopedPhase() {
  if (!active_) return;
  const double wall = wall_seconds() - wall_start_;
  const double cpu = thread_cpu_seconds() - cpu_start_;
  auto& reg = detail::registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto& acc = reg.phase(name_);
  acc.wall_s += wall;
  acc.cpu_s += cpu;
  ++acc.calls;
}

}  // namespace ringent::sim::metrics
