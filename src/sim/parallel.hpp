// Deterministic parallel execution for independent simulation tasks.
//
// Every paper experiment is a sweep over *independent* simulations (boards,
// stage counts, supply levels, restarts). This layer shards such a sweep
// across worker threads while keeping the determinism contract of the rest
// of the library intact:
//
//  * one task = one self-contained simulation: the task body builds its own
//    sim::Kernel / core::Oscillator and derives every RNG stream from
//    (master seed, label, task index) via derive_seed — tasks share nothing
//    mutable, so the schedule cannot leak into the results;
//  * results are collected by task index, never by completion order;
//  * there is no work stealing and no per-thread state: workers claim task
//    indices from one monotone cursor, so which thread runs a task is the
//    only nondeterminism — and it is unobservable.
//
// Consequence: every parallelized driver returns bit-identical results for
// any thread count, including 1 (asserted by tests/test_parallel.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace ringent::sim {

/// Default worker count: the RINGENT_JOBS environment variable if set to a
/// positive integer (clamped to max_jobs()), otherwise
/// std::thread::hardware_concurrency() (min 1).
std::size_t default_jobs();

/// Hard ceiling on worker threads: 4× hardware_concurrency, floor 8 (so
/// low-core CI machines can still exercise moderate oversubscription).
/// resolve_jobs() clamps to this, so an absurd --jobs / RINGENT_JOBS value
/// cannot ask ThreadPool to spawn billions of threads.
std::size_t max_jobs();

/// Resolve a jobs knob: 0 means "use default_jobs()"; anything above
/// max_jobs() is clamped down to it.
std::size_t resolve_jobs(std::size_t jobs);

/// Parse the text of a --jobs / RINGENT_JOBS value. Returns true and stores
/// the parsed count (0 = "use the default") on success; returns false — and
/// leaves `out` untouched — on empty, non-numeric, negative, or overflowing
/// text ("99999999999999999999" is rejected, not wrapped).
bool parse_jobs_value(const char* text, std::size_t& out);

/// Scan argv for "--jobs N" or "--jobs=N" (the convention of the sweep
/// bench binaries). Returns 0 — i.e. "use the default" — when the flag is
/// absent or its value fails parse_jobs_value().
std::size_t parse_jobs_arg(int argc, char** argv);

/// A fixed-size pool of worker threads executing indexed task batches.
///
/// for_each_index(count, fn) runs fn(0) .. fn(count - 1), each exactly once,
/// and blocks until all complete. Indices are claimed in increasing order
/// from a shared atomic cursor (no work stealing, no per-thread queues).
/// If tasks throw, the exception of the *lowest* throwing index is rethrown
/// — the same exception a sequential loop would have surfaced first — so
/// error behaviour is deterministic too.
///
/// With jobs == 1 (or a single task) the batch runs inline on the calling
/// thread and no worker threads are ever spawned.
///
/// The pool itself is not thread-safe: one batch at a time, driven from the
/// owning thread. Tasks must not touch the pool.
class ThreadPool {
 public:
  /// `jobs` = 0 resolves to default_jobs().
  explicit ThreadPool(std::size_t jobs = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t jobs() const { return jobs_; }

  void for_each_index(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  std::size_t jobs_ = 1;
  std::unique_ptr<Impl> impl_;  ///< null when jobs_ == 1
};

/// Run fn(i) for i in [0, count) on `jobs` workers (0 = default).
template <typename Fn>
void parallel_for_each(std::size_t count, std::size_t jobs, Fn&& fn) {
  ThreadPool pool(jobs);
  pool.for_each_index(count, [&fn](std::size_t i) { fn(i); });
}

/// Map i in [0, count) through fn on `jobs` workers; results are returned
/// in index order regardless of completion order.
template <typename Fn>
auto parallel_index_map(std::size_t count, std::size_t jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  std::vector<std::optional<R>> slots(count);
  parallel_for_each(count, jobs,
                    [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(count);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Map each item of `items` through fn on `jobs` workers; the result vector
/// is index-aligned with `items`.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, std::size_t jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, const T&>> {
  return parallel_index_map(items.size(), jobs,
                            [&](std::size_t i) { return fn(items[i]); });
}

}  // namespace ringent::sim
