// Value Change Dump (IEEE 1364) writer.
//
// Lets examples dump ring waveforms viewable in GTKWave — e.g. the token
// cluster of a bursting STR vs the uniform wave of the evenly-spaced mode
// (paper Fig. 5). Timescale is 1 fs to match the kernel grid.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "sim/probe.hpp"

namespace ringent::sim {

class VcdWriter {
 public:
  /// `module_name` becomes the single VCD scope.
  explicit VcdWriter(std::string module_name = "ringent");

  /// Register a trace to dump. Traces must outlive write(). Signals appear in
  /// registration order; names are taken from the traces.
  void add_signal(const SignalTrace& trace);

  /// Write the full dump to `os`. All registered traces are merged into one
  /// time-ordered change stream. Signals with no transition before the first
  /// recorded change are emitted as 'x' in $dumpvars.
  void write(std::ostream& os) const;

  /// Convenience: write to a file; throws ringent::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::string module_name_;
  std::vector<const SignalTrace*> traces_;
};

}  // namespace ringent::sim
