#include "sim/vcd.hpp"

#include <algorithm>
#include <fstream>
#include <utility>

#include "common/require.hpp"

namespace ringent::sim {

namespace {
// VCD identifier codes: printable ASCII starting at '!'.
std::string id_code(std::size_t index) {
  std::string code;
  do {
    code.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return code;
}
}  // namespace

VcdWriter::VcdWriter(std::string module_name)
    : module_name_(std::move(module_name)) {}

void VcdWriter::add_signal(const SignalTrace& trace) {
  traces_.push_back(&trace);
}

void VcdWriter::write(std::ostream& os) const {
  os << "$timescale 1fs $end\n";
  os << "$scope module " << module_name_ << " $end\n";
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    os << "$var wire 1 " << id_code(i) << " " << traces_[i]->name()
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  struct Change {
    Time at;
    std::size_t sig;
    bool value;
  };
  std::vector<Change> changes;
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    for (const auto& tr : traces_[i]->transitions()) {
      changes.push_back(Change{tr.at, i, tr.value});
    }
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const Change& a, const Change& b) { return a.at < b.at; });

  os << "$dumpvars\n";
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    os << "x" << id_code(i) << "\n";
  }
  os << "$end\n";

  bool have_time = false;
  Time current = Time::zero();
  for (const auto& ch : changes) {
    if (!have_time || ch.at != current) {
      os << "#" << ch.at.fs() << "\n";
      current = ch.at;
      have_time = true;
    }
    os << (ch.value ? '1' : '0') << id_code(ch.sig) << "\n";
  }
}

void VcdWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  RINGENT_REQUIRE(out.good(), "cannot open VCD output file " + path);
  write(out);
  out.flush();
  if (!out.good()) throw Error("I/O error writing VCD file " + path);
}

}  // namespace ringent::sim
