// ASCII timing-diagram rendering of recorded traces.
//
// Renders one line per signal over a time window, logic-analyzer style:
//
//   C0  ▔▔▔▔\____/▔▔▔▔\____
//   C1  __/▔▔▔▔\____/▔▔▔▔\_
//
// (plain-ASCII variant: "----\____/----"). Used by examples to show the
// actual simulated waveforms of burst vs evenly-spaced rings in a terminal,
// complementing the VCD dumps for GTKWave.
#pragma once

#include <string>
#include <vector>

#include "sim/probe.hpp"

namespace ringent::sim {

struct AsciiWaveOptions {
  Time from = Time::zero();
  Time to = Time::zero();   ///< zero = end of the longest trace
  std::size_t columns = 72;  ///< characters across the window
};

/// Render one signal. Each column shows the signal's value at the column's
/// start instant: '-' high, '_' low, '/' and '\' for columns containing a
/// transition, '?' before the first recorded transition.
std::string ascii_wave(const SignalTrace& trace,
                       const AsciiWaveOptions& options);

/// Render several signals with aligned name labels and a time ruler.
std::string ascii_waves(const std::vector<const SignalTrace*>& traces,
                        const AsciiWaveOptions& options);

}  // namespace ringent::sim
