#include "sim/event_queue.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "sim/metrics.hpp"

namespace ringent::sim {

namespace {
// std::push_heap builds a max-heap; invert the order to pop the earliest.
bool later_heap(const QueuedEvent& a, const QueuedEvent& b) {
  return earlier(b, a);
}
}  // namespace

void BinaryHeapQueue::push(const QueuedEvent& event) {
  metrics::bump(metrics::Counter::heap_pushes);
  heap_.push_back(event);
  std::push_heap(heap_.begin(), heap_.end(), later_heap);
}

QueuedEvent BinaryHeapQueue::pop_min() {
  RINGENT_REQUIRE(!heap_.empty(), "pop from empty queue");
  metrics::bump(metrics::Counter::heap_pops);
  std::pop_heap(heap_.begin(), heap_.end(), later_heap);
  const QueuedEvent out = heap_.back();
  heap_.pop_back();
  return out;
}

const QueuedEvent& BinaryHeapQueue::peek_min() {
  RINGENT_REQUIRE(!heap_.empty(), "peek into empty queue");
  return heap_.front();
}

CalendarQueue::CalendarQueue(Time initial_width)
    : buckets_(16), width_fs_(initial_width.fs()) {
  RINGENT_REQUIRE(initial_width > Time::zero(), "day width must be positive");
}

std::size_t CalendarQueue::bucket_of(Time t) const {
  // Negative times are legal for the structure (not used by the kernel);
  // use floor division.
  std::int64_t day = t.fs() / width_fs_;
  if (t.fs() < 0 && t.fs() % width_fs_ != 0) --day;
  const auto n = static_cast<std::int64_t>(buckets_.size());
  std::int64_t index = day % n;
  if (index < 0) index += n;
  return static_cast<std::size_t>(index);
}

void CalendarQueue::push(const QueuedEvent& event) {
  metrics::bump(metrics::Counter::calendar_pushes);
  buckets_[bucket_of(event.at)].push_back(event);
  ++size_;
  std::int64_t day = event.at.fs() / width_fs_;
  if (event.at.fs() < 0 && event.at.fs() % width_fs_ != 0) --day;
  if (day < current_day_) current_day_ = day;
  if (min_valid_) {
    // The cache survives only if the new event cannot be the minimum.
    const auto& cached = buckets_[min_bucket_][min_slot_];
    if (earlier(event, cached)) min_valid_ = false;
  }
  if (size_ > 2 * buckets_.size()) {
    resize(buckets_.size() * 2);
  }
}

void CalendarQueue::find_min() {
  RINGENT_REQUIRE(size_ > 0, "peek into empty queue");
  if (min_valid_) return;

  const auto n = static_cast<std::int64_t>(buckets_.size());
  // Scan day by day from the cursor: in each day, only events belonging to
  // that day count. After a full year of empty days, fall back to a global
  // scan (events are sparse and far away).
  for (std::int64_t scanned = 0; scanned < n; ++scanned) {
    const std::int64_t day = current_day_ + scanned;
    const auto& bucket =
        buckets_[static_cast<std::size_t>(((day % n) + n) % n)];
    bool found = false;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      std::int64_t event_day = bucket[i].at.fs() / width_fs_;
      if (bucket[i].at.fs() < 0 && bucket[i].at.fs() % width_fs_ != 0) {
        --event_day;
      }
      if (event_day != day) continue;
      if (!found ||
          earlier(bucket[i],
                  buckets_[min_bucket_][min_slot_])) {
        min_bucket_ = static_cast<std::size_t>(((day % n) + n) % n);
        min_slot_ = i;
        found = true;
      }
    }
    if (found) {
      current_day_ = day;
      min_valid_ = true;
      return;
    }
  }

  // Global fallback: direct minimum over every stored event.
  bool found = false;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
      if (!found || earlier(buckets_[b][i], buckets_[min_bucket_][min_slot_])) {
        min_bucket_ = b;
        min_slot_ = i;
        found = true;
      }
    }
  }
  RINGENT_REQUIRE(found, "internal: size_ > 0 but no event found");
  const auto& min_event = buckets_[min_bucket_][min_slot_];
  current_day_ = min_event.at.fs() / width_fs_;
  if (min_event.at.fs() < 0 && min_event.at.fs() % width_fs_ != 0) {
    --current_day_;
  }
  min_valid_ = true;
}

const QueuedEvent& CalendarQueue::peek_min() {
  find_min();
  return buckets_[min_bucket_][min_slot_];
}

QueuedEvent CalendarQueue::pop_min() {
  metrics::bump(metrics::Counter::calendar_pops);
  find_min();
  auto& bucket = buckets_[min_bucket_];
  const QueuedEvent out = bucket[min_slot_];
  bucket[min_slot_] = bucket.back();
  bucket.pop_back();
  --size_;
  min_valid_ = false;
  if (buckets_.size() > 16 && size_ < buckets_.size() / 4) {
    resize(buckets_.size() / 2);
  }
  return out;
}

void CalendarQueue::resize(std::size_t new_bucket_count) {
  std::vector<QueuedEvent> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  // Brown's width rule, simplified: spread the current population over
  // ~half the buckets so a day holds ~2 events.
  if (all.size() >= 2) {
    auto [mn, mx] = std::minmax_element(
        all.begin(), all.end(),
        [](const QueuedEvent& a, const QueuedEvent& b) { return a.at < b.at; });
    const std::int64_t span = (mx->at - mn->at).fs();
    const std::int64_t width =
        span / static_cast<std::int64_t>(all.size()) * 2;
    width_fs_ = std::max<std::int64_t>(width, 1);
  }
  buckets_.assign(new_bucket_count, {});
  size_ = 0;
  min_valid_ = false;
  current_day_ = 0;
  if (!all.empty()) {
    std::int64_t min_day = all.front().at.fs() / width_fs_;
    for (const auto& event : all) {
      const std::int64_t day = event.at.fs() / width_fs_;
      min_day = std::min(min_day, day);
    }
    current_day_ = min_day;
    for (const auto& event : all) push(event);
  }
}

void CalendarQueue::reserve(std::size_t expected_events) {
  // push() grows the year when the population exceeds 2 events per day;
  // size the year for that load factor up front.
  std::size_t want = buckets_.size();
  while (want * 2 < expected_events) want *= 2;
  if (want > buckets_.size()) resize(want);
}

void CalendarQueue::clear() {
  for (auto& bucket : buckets_) bucket.clear();
  size_ = 0;
  min_valid_ = false;
  current_day_ = 0;
}

std::unique_ptr<EventQueueBase> make_event_queue(QueueKind kind) {
  if (kind == QueueKind::calendar) {
    return std::make_unique<CalendarQueue>();
  }
  return std::make_unique<BinaryHeapQueue>();
}

}  // namespace ringent::sim
