#include "common/json.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/require.hpp"

namespace ringent {

Json::Json(std::uint64_t v) : kind_(Kind::number) {
  RINGENT_REQUIRE(
      v <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()),
      "counter value exceeds the exact integer range of Json");
  integer_ = static_cast<std::int64_t>(v);
  number_ = static_cast<double>(v);
  is_integer_ = true;
}

bool Json::as_boolean() const {
  RINGENT_REQUIRE(is_boolean(), "Json value is not a boolean");
  return bool_;
}

double Json::as_number() const {
  RINGENT_REQUIRE(is_number(), "Json value is not a number");
  return number_;
}

std::int64_t Json::as_integer() const {
  RINGENT_REQUIRE(is_number() && is_integer_, "Json value is not an integer");
  return integer_;
}

const std::string& Json::as_string() const {
  RINGENT_REQUIRE(is_string(), "Json value is not a string");
  return string_;
}

std::size_t Json::size() const {
  if (is_array()) return elements_.size();
  if (is_object()) return members_.size();
  return 0;
}

const Json& Json::at(std::size_t index) const {
  RINGENT_REQUIRE(is_array(), "Json value is not an array");
  RINGENT_REQUIRE(index < elements_.size(), "Json array index out of range");
  return elements_[index];
}

void Json::push_back(Json value) {
  RINGENT_REQUIRE(is_array(), "Json value is not an array");
  elements_.push_back(std::move(value));
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* value = find(key);
  RINGENT_REQUIRE(value != nullptr,
                  "Json object has no key '" + std::string(key) + "'");
  return *value;
}

void Json::set(std::string key, Json value) {
  RINGENT_REQUIRE(is_object(), "Json value is not an object");
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::null:
      out += "null";
      return;
    case Kind::boolean:
      out += bool_ ? "true" : "false";
      return;
    case Kind::number: {
      char buf[32];
      if (is_integer_) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(integer_));
      } else {
        RINGENT_REQUIRE(std::isfinite(number_),
                        "JSON cannot represent NaN or infinity");
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      out += buf;
      return;
    }
    case Kind::string:
      dump_string(string_, out);
      return;
    case Kind::array: {
      if (elements_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        elements_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Kind::object: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        dump_string(members_[i].first, out);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_whitespace();
    require(pos_ == text_.size(), "trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }
  void require(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_literal(std::string_view word) {
    require(text_.substr(pos_, word.size()) == word, "invalid literal");
    pos_ += word.size();
  }

  /// Bounds container recursion; parse_object/parse_array construct one per
  /// nesting level.
  struct DepthGuard {
    explicit DepthGuard(Parser& parser) : parser_(parser) {
      if (++parser_.depth_ > Json::max_parse_depth) {
        parser_.fail("nesting exceeds max_parse_depth");
      }
    }
    ~DepthGuard() { --parser_.depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    Parser& parser_;
  };

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_literal("true"); return Json(true);
      case 'f': expect_literal("false"); return Json(false);
      case 'n': expect_literal("null"); return Json();
      default: return parse_number();
    }
  }

  Json parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Json out = Json::object();
    skip_whitespace();
    if (consume('}')) return out;
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      out.set(std::move(key), parse_value());
      skip_whitespace();
      if (consume(',')) continue;
      expect('}');
      return out;
    }
  }

  Json parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Json out = Json::array();
    skip_whitespace();
    if (consume(']')) return out;
    for (;;) {
      out.push_back(parse_value());
      skip_whitespace();
      if (consume(',')) continue;
      expect(']');
      return out;
    }
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      require(pos_ < text_.size(), "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        require(static_cast<unsigned char>(c) >= 0x20,
                "unescaped control character in string");
        out.push_back(c);
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          require(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid hex digit in \\u escape");
          }
          // Surrogate pairs are not decoded (the library never emits them);
          // lone surrogates map to the replacement character.
          if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    require(pos_ > start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    // Integer fast path keeps 64-bit counters exact through a round-trip.
    // "-0" is excluded: it must stay a double so the sign survives, or
    // dump → parse → dump would collapse -0.0 to 0.
    if (token.find_first_of(".eE") == std::string::npos && token != "-0") {
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::int64_t>(v));
      }
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    require(end == token.c_str() + token.size(), "malformed number");
    // strtod turns "1e999" into ±infinity; JSON cannot represent that and
    // dump() would throw later, so reject it at the parse boundary.
    require(std::isfinite(v), "number outside double range");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).run(); }

Json canonicalized(const Json& value) {
  switch (value.kind()) {
    case Json::Kind::array: {
      Json out = Json::array();
      for (std::size_t i = 0; i < value.size(); ++i) {
        out.push_back(canonicalized(value.at(i)));
      }
      return out;
    }
    case Json::Kind::object: {
      std::vector<const std::pair<std::string, Json>*> members;
      members.reserve(value.items().size());
      for (const auto& member : value.items()) members.push_back(&member);
      std::sort(members.begin(), members.end(),
                [](const auto* a, const auto* b) { return a->first < b->first; });
      Json out = Json::object();
      for (const auto* member : members) {
        out.set(member->first, canonicalized(member->second));
      }
      return out;
    }
    default:
      return value;
  }
}

std::string canonical_dump(const Json& value) {
  return canonicalized(value).dump();
}

}  // namespace ringent
