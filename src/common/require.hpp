// Error handling primitives for the ringent library.
//
// Policy (see DESIGN.md §5): violated *preconditions* on the public API throw
// ringent::PreconditionError with a message naming the offending expression;
// violated *internal invariants* abort via assert in debug builds. Simulation
// code never swallows errors silently.
#pragma once

#include <stdexcept>
#include <string>

namespace ringent {

/// Base class for all errors thrown by the ringent library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  throw PreconditionError(std::string(file) + ":" + std::to_string(line) +
                          ": requirement `" + expr + "` failed" +
                          (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace ringent

/// Check a documented precondition of a public API; throws PreconditionError.
#define RINGENT_REQUIRE(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::ringent::detail::throw_precondition(#expr, __FILE__, __LINE__,    \
                                            (msg));                      \
    }                                                                     \
  } while (false)
