#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace ringent {

void SampleStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Welford update for central moments up to order 4 (Pebay 2008).
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3 * n + 3) + 6 * delta_n2 * m2_ -
         4 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2) - 3 * delta_n * m2_;
  m2_ += term1;
}

void SampleStats::merge(const SampleStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double n = na + nb;
  const double delta = o.mean_ - mean_;
  const double d2 = delta * delta;
  const double d3 = d2 * delta;
  const double d4 = d2 * d2;

  const double m4 = m4_ + o.m4_ +
                    d4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
                    6.0 * d2 * (na * na * o.m2_ + nb * nb * m2_) / (n * n) +
                    4.0 * delta * (na * o.m3_ - nb * m3_) / n;
  const double m3 = m3_ + o.m3_ + d3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * o.m2_ - nb * m2_) / n;
  const double m2 = m2_ + o.m2_ + d2 * na * nb / n;

  mean_ = (na * mean_ + nb * o.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double SampleStats::mean() const {
  RINGENT_REQUIRE(n_ >= 1, "mean of empty sample");
  return mean_;
}

double SampleStats::variance() const {
  RINGENT_REQUIRE(n_ >= 2, "variance needs at least 2 samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double SampleStats::stddev() const { return std::sqrt(variance()); }

double SampleStats::relative_stddev() const {
  const double m = std::abs(mean());
  RINGENT_REQUIRE(m > 0.0, "relative stddev of zero-mean sample");
  return stddev() / m;
}

double SampleStats::skewness() const {
  RINGENT_REQUIRE(n_ >= 3, "skewness needs at least 3 samples");
  const double n = static_cast<double>(n_);
  if (m2_ == 0.0) return 0.0;
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double SampleStats::excess_kurtosis() const {
  RINGENT_REQUIRE(n_ >= 4, "kurtosis needs at least 4 samples");
  const double n = static_cast<double>(n_);
  if (m2_ == 0.0) return 0.0;
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double SampleStats::min() const {
  RINGENT_REQUIRE(n_ >= 1, "min of empty sample");
  return min_;
}

double SampleStats::max() const {
  RINGENT_REQUIRE(n_ >= 1, "max of empty sample");
  return max_;
}

SampleStats describe(std::span<const double> xs) {
  SampleStats s;
  for (double x : xs) s.add(x);
  return s;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  RINGENT_REQUIRE(!xs.empty(), "percentile of empty sample");
  RINGENT_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

}  // namespace ringent
