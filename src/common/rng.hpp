// Deterministic random number infrastructure.
//
// Every stochastic object in ringent draws from an explicitly seeded stream so
// that experiments are bit-reproducible. Seeding is hierarchical: a master
// seed plus a human-readable stream label (e.g. "board3/lut17/jitter")
// produces an independent substream via SplitMix64 mixing of the label hash.
// The core engine is xoshiro256** (Blackman & Vigna), which satisfies the
// UniformRandomBitGenerator concept and therefore composes with <random>
// distributions.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ringent {

/// SplitMix64: used for seed expansion and label hashing, never as the main
/// generator (its 64-bit state is too small for long simulations).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — public domain algorithm by Blackman & Vigna.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  /// Defined inline (and in the header) so the simulation hot loops — block
  /// noise refills draw millions of deviates — inline the generator instead
  /// of paying a cross-TU call per draw.
  result_type next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Jump function: advances the state by 2^128 steps — used to split one
  /// seed into provably non-overlapping parallel streams.
  void jump();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() {
    // 53 top bits -> [0,1) with full double precision.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method, internally cached).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    const auto [first, second] = normal_pair();
    cached_normal_ = second;
    has_cached_normal_ = true;
    return first;
  }

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Fill `out[0..n)` with standard normal deviates — the exact sequence n
  /// calls to normal() would produce (the polar method's pair cache is
  /// honoured and left in the same state), but with the rejection loop
  /// inlined and the per-call cache branch amortized over the block.
  void normals(double* out, std::size_t n) {
    std::size_t i = 0;
    if (i < n && has_cached_normal_) {
      has_cached_normal_ = false;
      out[i++] = cached_normal_;
    }
    while (i < n) {
      const auto [first, second] = normal_pair();
      out[i++] = first;
      if (i < n) {
        out[i++] = second;
      } else {
        cached_normal_ = second;
        has_cached_normal_ = true;
      }
    }
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

 private:
  struct Pair {
    double first;
    double second;
  };

  /// One Marsaglia polar round: two fresh standard normals.
  Pair normal_pair() {
    double u, v, s;
    do {
      u = 2.0 * uniform01() - 1.0;
      v = 2.0 * uniform01() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    return Pair{u * factor, v * factor};
  }

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// FNV-1a hash of a label, used to derive named substreams.
std::uint64_t hash_label(std::string_view label);

/// Hierarchical seeding: derive the seed for substream `label` of `master`.
/// Distinct labels give statistically independent streams; the derivation is
/// stable across platforms and library versions.
std::uint64_t derive_seed(std::uint64_t master, std::string_view label);

/// Convenience: derive_seed with a label and numeric index ("lut", 17).
std::uint64_t derive_seed(std::uint64_t master, std::string_view label,
                          std::uint64_t index);

}  // namespace ringent
