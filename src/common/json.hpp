// A minimal JSON value: build, serialize, parse.
//
// Used by the observability layer (run manifests, Chrome-trace files) and by
// the tests that schema-check those artifacts. Deliberately small: objects
// preserve insertion order (manifests diff cleanly), numbers are doubles
// with an integer fast path for exact 64-bit counters, and parse() accepts
// exactly what dump() emits plus standard JSON. Not a general-purpose
// library — no comments, no NaN/Inf, no streaming.
//
// parse() is hardened against untrusted input (fuzz/fuzz_json.cpp): nesting
// is capped at max_parse_depth so adversarial documents cannot overflow the
// stack, numbers that overflow double range are rejected (JSON has no Inf),
// and dump() → parse() → dump() is a byte-level fixpoint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ringent {

class Json {
 public:
  enum class Kind { null, boolean, number, string, array, object };

  Json() = default;  ///< null
  Json(bool b) : kind_(Kind::boolean), bool_(b) {}
  Json(double v) : kind_(Kind::number), number_(v) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::int64_t v) : kind_(Kind::number), number_(static_cast<double>(v)) {
    integer_ = v;
    is_integer_ = true;
  }
  Json(unsigned v) : Json(static_cast<std::int64_t>(v)) {}
  /// Same type as std::size_t on LP64, so this also covers container sizes.
  /// Values above int64 max are rejected (JSON interop stays exact).
  Json(std::uint64_t v);
  Json(std::string s) : kind_(Kind::string), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::object;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }
  bool is_boolean() const { return kind_ == Kind::boolean; }
  bool is_number() const { return kind_ == Kind::number; }
  bool is_string() const { return kind_ == Kind::string; }
  bool is_array() const { return kind_ == Kind::array; }
  bool is_object() const { return kind_ == Kind::object; }

  bool as_boolean() const;
  double as_number() const;
  /// Exact integer value; requires the number to have been stored or parsed
  /// as an integer (no fractional part, within int64 range).
  std::int64_t as_integer() const;
  const std::string& as_string() const;

  /// Array/object element count; 0 for scalars.
  std::size_t size() const;

  /// Array element (precondition: is_array() and index < size()).
  const Json& at(std::size_t index) const;
  void push_back(Json value);

  /// Object lookup; null pointer when the key is absent.
  const Json* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  /// Object lookup; throws ringent::Error when the key is absent.
  const Json& at(std::string_view key) const;
  /// Insert or replace a key (insertion order preserved on first insert).
  void set(std::string key, Json value);
  const std::vector<std::pair<std::string, Json>>& items() const {
    return members_;
  }

  /// Serialize. indent < 0: compact one-liner; otherwise pretty-printed
  /// with `indent` spaces per level.
  std::string dump(int indent = -1) const;

  /// Maximum container nesting accepted by parse(). Deeper documents throw
  /// (recursive descent would otherwise overflow the stack on inputs like
  /// 100k of '['). Manifests and traces nest 4-5 levels deep.
  static constexpr int max_parse_depth = 128;

  /// Parse a complete JSON document; throws ringent::Error with a byte
  /// offset on malformed input (including trailing garbage, numbers outside
  /// double range, and nesting beyond max_parse_depth).
  static Json parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  bool is_integer_ = false;
  std::string string_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Structurally identical document with every object's keys sorted
/// (recursively, bytewise ascending). Arrays keep their order — element
/// order is semantic. Duplicate keys cannot occur (set() replaces).
Json canonicalized(const Json& value);

/// The canonical serialization used for content addressing: sorted keys,
/// compact separators, exact int64 integers, %.17g round-trip doubles.
/// Two documents that parse equal modulo object-key order dump to the same
/// bytes, so canonical_dump(parse(canonical_dump(x))) == canonical_dump(x).
std::string canonical_dump(const Json& value);

}  // namespace ringent
