#include "common/time.hpp"

#include <ostream>

#include "common/require.hpp"

namespace ringent {

std::ostream& operator<<(std::ostream& os, Time t) {
  const std::int64_t fs = t.fs();
  if (fs % 1'000'000 == 0) {
    return os << (fs / 1'000'000) << "ns";
  }
  if (fs % 1'000 == 0) {
    return os << (fs / 1'000) << "ps";
  }
  return os << fs << "fs";
}

double period_to_mhz(Time period) {
  if (period.is_zero()) return 0.0;
  return 1.0 / period.seconds() * 1e-6;
}

Time mhz_to_period(double mhz) {
  RINGENT_REQUIRE(mhz > 0.0, "frequency must be positive");
  return Time::from_seconds(1.0 / (mhz * 1e6));
}

}  // namespace ringent
