// Small numeric helpers shared across modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ringent {

/// Greatest common divisor of two positive integers.
std::int64_t gcd64(std::int64_t a, std::int64_t b);

/// True if n is a power of two (n > 0).
constexpr bool is_power_of_two(std::uint64_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n >= 1).
std::uint64_t next_power_of_two(std::uint64_t n);

/// Integer log2 of a power of two.
unsigned log2_exact(std::uint64_t n);

/// Standard normal cumulative distribution function.
double normal_cdf(double x);

/// Regularized upper incomplete gamma Q(a, x); used by chi-square p-values.
double gamma_q(double a, double x);

/// Chi-square survival function: P(X >= x) for k degrees of freedom.
double chi_square_sf(double x, double k);

/// Error function complement wrapper (for test batteries).
double erfc_scaled(double x);

/// Clamp helper that works on doubles without pulling in <algorithm>.
constexpr double clampd(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Mean of a span (0 for empty).
double mean_of(std::span<const double> xs);

}  // namespace ringent
