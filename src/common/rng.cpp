#include "common/rng.hpp"

#include <cmath>

#include "common/require.hpp"

namespace ringent {

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // Seed expansion through SplitMix64 as recommended by the xoshiro authors;
  // guarantees a nonzero state for any seed, including zero.
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Xoshiro256::uniform(double lo, double hi) {
  RINGENT_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  RINGENT_REQUIRE(n > 0, "below(n) requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return x % n;
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t derive_seed(std::uint64_t master, std::string_view label) {
  SplitMix64 sm(master ^ hash_label(label));
  sm.next();
  return sm.next();
}

std::uint64_t derive_seed(std::uint64_t master, std::string_view label,
                          std::uint64_t index) {
  SplitMix64 sm(derive_seed(master, label) + 0x9E3779B97F4A7C15ULL * (index + 1));
  return sm.next();
}

}  // namespace ringent
