#include "common/math.hpp"

#include <cmath>

#include "common/require.hpp"

namespace ringent {

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  RINGENT_REQUIRE(a > 0 && b > 0, "gcd64 requires positive arguments");
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t next_power_of_two(std::uint64_t n) {
  RINGENT_REQUIRE(n >= 1, "next_power_of_two requires n >= 1");
  std::uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

unsigned log2_exact(std::uint64_t n) {
  RINGENT_REQUIRE(is_power_of_two(n), "log2_exact requires a power of two");
  unsigned k = 0;
  while ((1ULL << k) < n) ++k;
  return k;
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

namespace {

// Lanczos approximation of log-gamma, good to ~1e-13 for a > 0.
double log_gamma(double a) {
  static constexpr double kCoef[] = {
      676.5203681218851,     -1259.1392167224028,  771.32342877765313,
      -176.61502916214059,   12.507343278686905,   -0.13857109526572012,
      9.9843695780195716e-6, 1.5056327351493116e-7};
  if (a < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * a)) - log_gamma(1.0 - a);
  }
  a -= 1.0;
  double x = 0.99999999999980993;
  for (int i = 0; i < 8; ++i) x += kCoef[i] / (a + i + 1);
  const double t = a + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (a + 0.5) * std::log(t) - t + std::log(x);
}

// Lower incomplete gamma P(a,x) by series expansion (x < a+1).
double gamma_p_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < 500; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Upper incomplete gamma Q(a,x) by continued fraction (x >= a+1).
double gamma_q_contfrac(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}

}  // namespace

double gamma_q(double a, double x) {
  RINGENT_REQUIRE(a > 0.0, "gamma_q requires a > 0");
  RINGENT_REQUIRE(x >= 0.0, "gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_contfrac(a, x);
}

double chi_square_sf(double x, double k) {
  RINGENT_REQUIRE(k > 0.0, "chi_square_sf requires k > 0");
  if (x <= 0.0) return 1.0;
  return gamma_q(k / 2.0, x / 2.0);
}

double erfc_scaled(double x) { return std::erfc(x / std::sqrt(2.0)); }

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace ringent
