// Simulation time: a strong integer type counting femtoseconds.
//
// Analog jitter in the reproduced paper is on the order of 2 ps per LUT, so a
// femtosecond grid keeps quantization three orders of magnitude below the
// smallest physical quantity of interest while int64 still covers ±106 days
// of simulated time. All delays and timestamps inside the event kernel use
// Time; statistics convert to double picoseconds at the analysis boundary.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace ringent {

class Time {
 public:
  constexpr Time() = default;

  /// Named constructors. `from_ps`/`from_ns` round to the nearest femtosecond.
  static constexpr Time from_fs(std::int64_t fs) { return Time{fs}; }
  static Time from_ps(double ps) { return Time{to_i64(ps * 1e3)}; }
  static Time from_ns(double ns) { return Time{to_i64(ns * 1e6)}; }
  static Time from_us(double us) { return Time{to_i64(us * 1e9)}; }
  static Time from_ms(double ms) { return Time{to_i64(ms * 1e12)}; }
  static Time from_seconds(double s) { return Time{to_i64(s * 1e15)}; }

  constexpr std::int64_t fs() const { return fs_; }
  constexpr double ps() const { return static_cast<double>(fs_) * 1e-3; }
  constexpr double ns() const { return static_cast<double>(fs_) * 1e-6; }
  constexpr double seconds() const { return static_cast<double>(fs_) * 1e-15; }

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr bool is_zero() const { return fs_ == 0; }
  constexpr bool is_negative() const { return fs_ < 0; }

  friend constexpr auto operator<=>(Time, Time) = default;

  constexpr Time& operator+=(Time rhs) {
    fs_ += rhs.fs_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    fs_ -= rhs.fs_;
    return *this;
  }
  friend constexpr Time operator+(Time a, Time b) { return Time{a.fs_ + b.fs_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.fs_ - b.fs_}; }
  friend constexpr Time operator-(Time a) { return Time{-a.fs_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) {
    return Time{a.fs_ * k};
  }
  friend constexpr Time operator*(std::int64_t k, Time a) { return a * k; }
  friend constexpr Time operator/(Time a, std::int64_t k) {
    return Time{a.fs_ / k};
  }
  /// Ratio of two durations as a double (e.g. phase fractions).
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.fs_) / static_cast<double>(b.fs_);
  }

  /// Scale a duration by a dimensionless double, rounding to nearest fs.
  Time scaled(double factor) const {
    return Time{to_i64(static_cast<double>(fs_) * factor)};
  }

 private:
  constexpr explicit Time(std::int64_t fs) : fs_(fs) {}
  static std::int64_t to_i64(double fs) {
    // llround semantics (round half away from zero), via the single-cycle
    // round-to-nearest-even conversion plus an exact-tie fixup. Ties are the
    // only inputs where the two rounding rules differ, and a tie at +-0.5
    // can only occur below 2^52 where the subtraction is exact — asserted
    // equivalent to std::llround over ties and a dense value sweep by
    // tests/test_hot_path.cpp.
    auto i = static_cast<std::int64_t>(std::rint(fs));
    const double diff = fs - static_cast<double>(i);
    if (diff == 0.5 && fs > 0.0) {
      ++i;
    } else if (diff == -0.5 && fs < 0.0) {
      --i;
    }
    return i;
  }

  std::int64_t fs_ = 0;
};

std::ostream& operator<<(std::ostream& os, Time t);

/// Convert an oscillation period to a frequency in MHz (0 if period is 0).
double period_to_mhz(Time period);

/// Convert a frequency in MHz to the corresponding period.
Time mhz_to_period(double mhz);

namespace literals {
constexpr Time operator""_fs(unsigned long long v) {
  return Time::from_fs(static_cast<std::int64_t>(v));
}
inline Time operator""_ps(unsigned long long v) {
  return Time::from_fs(static_cast<std::int64_t>(v) * 1000);
}
inline Time operator""_ps(long double v) {
  return Time::from_ps(static_cast<double>(v));
}
inline Time operator""_ns(unsigned long long v) {
  return Time::from_fs(static_cast<std::int64_t>(v) * 1'000'000);
}
inline Time operator""_ns(long double v) {
  return Time::from_ns(static_cast<double>(v));
}
inline Time operator""_us(unsigned long long v) {
  return Time::from_fs(static_cast<std::int64_t>(v) * 1'000'000'000);
}
}  // namespace literals

}  // namespace ringent
