// Streaming and batch descriptive statistics.
//
// SampleStats implements Welford's online algorithm extended to third and
// fourth central moments, so jitter populations of millions of periods can be
// summarized in one pass without storing samples. Batch helpers (median,
// percentile) operate on explicit vectors where order statistics are needed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ringent {

/// One-pass accumulator for mean / variance / skewness / kurtosis / extrema.
class SampleStats {
 public:
  void add(double x);
  void merge(const SampleStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }

  double mean() const;
  /// Unbiased sample variance (n-1 denominator). Requires count() >= 2.
  double variance() const;
  double stddev() const;
  /// Relative standard deviation stddev()/|mean()| (the paper's sigma_rel).
  double relative_stddev() const;
  /// Sample skewness g1. Requires count() >= 3.
  double skewness() const;
  /// Excess kurtosis g2 (0 for a Gaussian). Requires count() >= 4.
  double excess_kurtosis() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Compute SampleStats over a span in one call.
SampleStats describe(std::span<const double> xs);

/// Median (average of the two central order statistics for even sizes).
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> xs, double p);

}  // namespace ringent
