// Frequency measurement from recorded edges.
#pragma once

#include <vector>

#include "common/time.hpp"
#include "sim/probe.hpp"

namespace ringent::measure {

/// Mean frequency in MHz over the recorded rising edges (>= 2 required).
double mean_frequency_mhz(const sim::SignalTrace& trace);
double mean_frequency_mhz(const std::vector<Time>& rising_edges);

/// Gated frequency counter: rising edges inside [gate_start, gate_start +
/// gate) divided by the gate time — what an on-chip counter would report.
double gated_frequency_mhz(const std::vector<Time>& rising_edges,
                           Time gate_start, Time gate);

}  // namespace ringent::measure
