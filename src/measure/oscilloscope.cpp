#include "measure/oscilloscope.hpp"

#include "analysis/jitter.hpp"
#include "analysis/periods.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::measure {

Oscilloscope::Oscilloscope(const OscilloscopeConfig& config)
    : config_(config), rng_(config.seed) {
  RINGENT_REQUIRE(config.noise_floor_ps >= 0.0,
                  "noise floor cannot be negative");
  RINGENT_REQUIRE(!config.sample_period.is_negative(),
                  "sample period cannot be negative");
}

Time Oscilloscope::measure_one(Time t) {
  double ps = t.ps() + rng_.normal(0.0, config_.noise_floor_ps);
  if (config_.sample_period > Time::zero()) {
    const double q = config_.sample_period.ps();
    ps = q * std::llround(ps / q);
  }
  return Time::from_ps(ps);
}

std::vector<Time> Oscilloscope::measure_edges(
    const std::vector<Time>& true_edges) {
  std::vector<Time> out;
  out.reserve(true_edges.size());
  for (Time t : true_edges) out.push_back(measure_one(t));
  return out;
}

std::vector<double> Oscilloscope::measure_periods_ps(
    const std::vector<Time>& true_edges) {
  return analysis::periods_ps(measure_edges(true_edges));
}

double Oscilloscope::period_jitter_ps(const std::vector<Time>& true_edges) {
  return describe(measure_periods_ps(true_edges)).stddev();
}

double Oscilloscope::cycle_to_cycle_jitter_ps(
    const std::vector<Time>& true_edges) {
  const auto periods = measure_periods_ps(true_edges);
  return describe(analysis::first_differences(periods)).stddev();
}

}  // namespace ringent::measure
