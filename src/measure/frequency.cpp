#include "measure/frequency.hpp"

#include "common/require.hpp"

namespace ringent::measure {

double mean_frequency_mhz(const sim::SignalTrace& trace) {
  return mean_frequency_mhz(trace.rising_edges());
}

double mean_frequency_mhz(const std::vector<Time>& rising_edges) {
  RINGENT_REQUIRE(rising_edges.size() >= 2, "need >= 2 rising edges");
  const Time span = rising_edges.back() - rising_edges.front();
  RINGENT_REQUIRE(span > Time::zero(), "degenerate edge list");
  const double cycles = static_cast<double>(rising_edges.size() - 1);
  return cycles / span.seconds() * 1e-6;
}

double gated_frequency_mhz(const std::vector<Time>& rising_edges,
                           Time gate_start, Time gate) {
  RINGENT_REQUIRE(gate > Time::zero(), "gate must be positive");
  const Time gate_end = gate_start + gate;
  std::size_t count = 0;
  for (Time t : rising_edges) {
    if (t >= gate_start && t < gate_end) ++count;
  }
  return static_cast<double>(count) / gate.seconds() * 1e-6;
}

}  // namespace ringent::measure
