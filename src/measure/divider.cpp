#include "measure/divider.hpp"

#include "analysis/periods.hpp"
#include "common/require.hpp"

namespace ringent::measure {

std::vector<Time> divide_rising_edges(const std::vector<Time>& rising_edges,
                                      const DividerConfig& config) {
  RINGENT_REQUIRE(config.n >= 1 && config.n <= 30, "divider n must be in [1,30]");
  RINGENT_REQUIRE(!config.tap_delay.is_negative(),
                  "tap delay cannot be negative");
  const std::size_t step = std::size_t{1} << config.n;
  std::vector<Time> out;
  out.reserve(rising_edges.size() / step + 1);
  for (std::size_t i = step - 1; i < rising_edges.size(); i += step) {
    out.push_back(rising_edges[i] + config.tap_delay);
  }
  return out;
}

std::vector<double> divided_periods_ps(const std::vector<Time>& rising_edges,
                                       const DividerConfig& config) {
  return analysis::periods_ps(divide_rising_edges(rising_edges, config));
}

}  // namespace ringent::measure
