// The paper's jitter measurement method (Sec. V-D.2, Fig. 10, Eq. 6).
//
// Direct oscilloscope measurement of a ~3 ps period jitter is biased by the
// instrument floor. Instead: divide the oscillator by 2^n on-chip; one
// osc_mes period sums 2^n i.i.d. ring periods, so its variance is 2^n *
// sigma_p^2 and the cycle-to-cycle variance of osc_mes is twice that. The
// slow signal's cycle-to-cycle jitter is far above the scope floor, and
//
//     sigma_p = sigma_cc_mes / (2 sqrt(n'))        with n' = 2^n   (Eq. 6)
//
// (the paper writes n for the count 2^n inside the radical). Using the
// cycle-to-cycle statistic also cancels slow deterministic drift; the
// method's validity hypothesis — successive-period differences of osc_mes
// are Gaussian — is checked explicitly, as the paper prescribes.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/normality.hpp"
#include "common/time.hpp"
#include "measure/divider.hpp"
#include "measure/oscilloscope.hpp"

namespace ringent::measure {

struct JitterMethodResult {
  double sigma_p_ps = 0.0;       ///< recovered period jitter of the ring
  double sigma_cc_mes_ps = 0.0;  ///< measured c2c jitter of osc_mes
  double mean_period_ps = 0.0;   ///< recovered ring mean period
  unsigned n = 0;                ///< divider exponent used
  std::size_t mes_periods = 0;   ///< osc_mes periods observed
  analysis::NormalityResult hypothesis;  ///< Gaussianity of the c2c deltas
};

/// Apply the method to a ring's true rising-edge list through an instrument.
/// Requires at least (3 + 2) * 2^n edges.
JitterMethodResult measure_sigma_p(const std::vector<Time>& rising_edges,
                                   unsigned n, Oscilloscope& scope,
                                   Time divider_tap_delay = Time::zero());

/// Derive the per-gate jitter from an IRO's period jitter: Eq. 7,
/// sigma_g = sigma_p / sqrt(2k).
double iro_sigma_g_ps(double sigma_p_ps, std::size_t stages);

/// Forward prediction of Eq. 4: sigma_p = sqrt(2k) * sigma_g.
double iro_sigma_p_ps(double sigma_g_ps, std::size_t stages);

/// Forward prediction of Eq. 5 for STRs: sigma_p ~ sqrt(2) * sigma_g,
/// independent of the stage count.
double str_sigma_p_ps(double sigma_g_ps);

}  // namespace ringent::measure
