// On-chip frequency divider (paper Fig. 10).
//
// The measurement method divides the ring output by 2^n with a ripple counter
// inside the chip; the oscilloscope then only sees the slow osc_mes signal.
// A T-flip-flop chain toggles its last stage on every 2^n-th source rising
// edge, so dividing is exactly "keep every 2^n-th rising edge" — we implement
// it as edge-list post-processing (bit-identical to simulating the counter,
// with none of the event cost) plus a small per-tap latency for realism.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace ringent::measure {

struct DividerConfig {
  unsigned n = 10;            ///< divide by 2^n
  Time tap_delay = Time::zero();  ///< counter propagation latency (constant)
};

/// Rising edges of osc_mes: every 2^n-th source rising edge, shifted by the
/// tap latency. The first output edge is the (2^n)-th input edge.
std::vector<Time> divide_rising_edges(const std::vector<Time>& rising_edges,
                                      const DividerConfig& config);

/// osc_mes periods in ps (each the sum of 2^n source periods).
std::vector<double> divided_periods_ps(const std::vector<Time>& rising_edges,
                                       const DividerConfig& config);

}  // namespace ringent::measure
