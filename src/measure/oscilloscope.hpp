// Wide-band digital oscilloscope model (LeCroy WavePro 735 Zi stand-in).
//
// The paper notes that direct oscilloscope measurement of very low jitter is
// biased by the instrument's sampling clock and the FPGA's I/O circuitry.
// We model each measured edge timestamp as
//
//     t_meas = quantize(t_true + N(0, sigma_floor^2), sample_period)
//
// — a Gaussian trigger/interpolation noise floor plus sample-clock
// quantization. Measuring a sigma_p ~ 2.8 ps period jitter through a
// ~2-3 ps floor inflates it to sqrt(sigma_p^2 + 2*sigma_floor^2): exactly the
// bias that motivates the divided-clock method (measure/method.hpp), which
// must recover the true value through the same instrument model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace ringent::measure {

struct OscilloscopeConfig {
  /// Per-edge Gaussian timestamp noise (trigger jitter + I/O buffer noise).
  double noise_floor_ps = 2.5;
  /// Sampling period; 40 GS/s = 25 ps. Zero disables quantization (the
  /// scope's sin(x)/x interpolation is then taken as perfect).
  Time sample_period = Time::from_ps(25.0);
  std::uint64_t seed = 0x05C0FE;
};

class Oscilloscope {
 public:
  explicit Oscilloscope(const OscilloscopeConfig& config);

  /// Timestamps as the instrument reports them.
  std::vector<Time> measure_edges(const std::vector<Time>& true_edges);

  /// Periods (ps) of the measured edge sequence.
  std::vector<double> measure_periods_ps(const std::vector<Time>& true_edges);

  /// Instrument-reported period jitter (sigma of measured periods).
  double period_jitter_ps(const std::vector<Time>& true_edges);

  /// Instrument-reported cycle-to-cycle jitter (sigma of successive period
  /// differences).
  double cycle_to_cycle_jitter_ps(const std::vector<Time>& true_edges);

  const OscilloscopeConfig& config() const { return config_; }

 private:
  Time measure_one(Time t);

  OscilloscopeConfig config_;
  Xoshiro256 rng_;
};

}  // namespace ringent::measure
