#include "measure/method.hpp"

#include <cmath>

#include "analysis/periods.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::measure {

JitterMethodResult measure_sigma_p(const std::vector<Time>& rising_edges,
                                   unsigned n, Oscilloscope& scope,
                                   Time divider_tap_delay) {
  DividerConfig divider;
  divider.n = n;
  divider.tap_delay = divider_tap_delay;
  const std::vector<Time> mes_edges =
      divide_rising_edges(rising_edges, divider);
  RINGENT_REQUIRE(mes_edges.size() >= 5,
                  "need at least 5 divided edges; record more ring periods");

  const std::vector<double> mes_periods = scope.measure_periods_ps(mes_edges);
  const std::vector<double> deltas = analysis::first_differences(mes_periods);

  JitterMethodResult out;
  out.n = n;
  out.mes_periods = mes_periods.size();
  out.sigma_cc_mes_ps = describe(deltas).stddev();

  // One osc_mes period sums `count` = 2^n ring periods; in the paper's
  // notation Tmes = sum of 2n' periods, so n' = count/2 and Eq. 6 reads
  // sigma_p = sigma_cc / (2 sqrt(n')) = sigma_cc / sqrt(2 * count).
  const double count = static_cast<double>(std::size_t{1} << n);
  out.sigma_p_ps = out.sigma_cc_mes_ps / std::sqrt(2.0 * count);
  out.mean_period_ps = describe(mes_periods).mean() / count;

  if (deltas.size() >= 20) {
    out.hypothesis = analysis::jarque_bera(deltas);
  }
  return out;
}

double iro_sigma_g_ps(double sigma_p_ps, std::size_t stages) {
  RINGENT_REQUIRE(stages >= 1, "need >= 1 stage");
  RINGENT_REQUIRE(sigma_p_ps >= 0.0, "negative jitter");
  return sigma_p_ps / std::sqrt(2.0 * static_cast<double>(stages));
}

double iro_sigma_p_ps(double sigma_g_ps, std::size_t stages) {
  RINGENT_REQUIRE(stages >= 1, "need >= 1 stage");
  RINGENT_REQUIRE(sigma_g_ps >= 0.0, "negative jitter");
  return std::sqrt(2.0 * static_cast<double>(stages)) * sigma_g_ps;
}

double str_sigma_p_ps(double sigma_g_ps) {
  RINGENT_REQUIRE(sigma_g_ps >= 0.0, "negative jitter");
  return std::sqrt(2.0) * sigma_g_ps;
}

}  // namespace ringent::measure
