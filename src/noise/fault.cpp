#include "noise/fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace ringent::noise {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::supply_tone: return "supply_tone";
    case FaultKind::supply_step: return "supply_step";
    case FaultKind::supply_ramp: return "supply_ramp";
    case FaultKind::stuck_stage: return "stuck_stage";
    case FaultKind::delay_step: return "delay_step";
    case FaultKind::delay_drift: return "delay_drift";
    case FaultKind::mode_kick: return "mode_kick";
  }
  return "?";
}

FaultKind parse_fault_kind(std::string_view name) {
  for (const FaultKind kind :
       {FaultKind::supply_tone, FaultKind::supply_step, FaultKind::supply_ramp,
        FaultKind::stuck_stage, FaultKind::delay_step, FaultKind::delay_drift,
        FaultKind::mode_kick}) {
    if (name == to_string(kind)) return kind;
  }
  throw Error("unknown fault kind \"" + std::string(name) + "\"");
}

bool is_supply_fault(FaultKind kind) {
  return kind == FaultKind::supply_tone || kind == FaultKind::supply_step ||
         kind == FaultKind::supply_ramp;
}

Json FaultEvent::to_json() const {
  Json json = Json::object();
  json.set("kind", to_string(kind));
  json.set("start_fs", start.fs());
  json.set("stop_fs", stop.fs());
  json.set("magnitude", magnitude);
  json.set("frequency_hz", frequency_hz);
  json.set("stage", static_cast<std::uint64_t>(stage));
  return json;
}

FaultEvent FaultEvent::from_json(const Json& json) {
  if (!json.is_object()) throw Error("fault event must be a JSON object");
  FaultEvent event;
  for (const auto& [key, value] : json.items()) {
    if (key == "kind") {
      event.kind = parse_fault_kind(value.as_string());
    } else if (key == "start_fs") {
      event.start = Time::from_fs(value.as_integer());
    } else if (key == "stop_fs") {
      event.stop = Time::from_fs(value.as_integer());
    } else if (key == "magnitude") {
      event.magnitude = value.as_number();
    } else if (key == "frequency_hz") {
      event.frequency_hz = value.as_number();
    } else if (key == "stage") {
      const std::int64_t stage = value.as_integer();
      if (stage < 0) throw Error("fault event stage must be non-negative");
      event.stage = static_cast<std::size_t>(stage);
    } else {
      throw Error("unknown fault event key \"" + key + "\"");
    }
  }
  return event;
}

Json FaultScenario::to_json() const {
  Json json = Json::object();
  json.set("name", name);
  Json list = Json::array();
  for (const FaultEvent& event : events) list.push_back(event.to_json());
  json.set("events", std::move(list));
  return json;
}

FaultScenario FaultScenario::from_json(const Json& json) {
  if (!json.is_object()) throw Error("fault scenario must be a JSON object");
  FaultScenario scenario;
  scenario.name.clear();
  bool saw_name = false;
  for (const auto& [key, value] : json.items()) {
    if (key == "name") {
      scenario.name = value.as_string();
      saw_name = true;
    } else if (key == "events") {
      if (!value.is_array()) throw Error("scenario events must be an array");
      for (std::size_t i = 0; i < value.size(); ++i) {
        scenario.events.push_back(FaultEvent::from_json(value.at(i)));
      }
    } else {
      throw Error("unknown fault scenario key \"" + key + "\"");
    }
  }
  if (!saw_name || scenario.name.empty()) {
    throw Error("fault scenario needs a non-empty \"name\"");
  }
  scenario.validate();
  return scenario;
}

namespace {

FaultEvent make(FaultKind kind, Time start, Time stop, double magnitude) {
  FaultEvent e;
  e.kind = kind;
  e.start = start;
  e.stop = stop;
  e.magnitude = magnitude;
  return e;
}

}  // namespace

FaultEvent FaultEvent::tone(Time start, Time stop, double amplitude_v,
                            double frequency_hz) {
  FaultEvent e = make(FaultKind::supply_tone, start, stop, amplitude_v);
  e.frequency_hz = frequency_hz;
  return e;
}

FaultEvent FaultEvent::brownout(Time start, Time stop, double drop_v) {
  return make(FaultKind::supply_step, start, stop, -drop_v);
}

FaultEvent FaultEvent::ramp(Time start, Time stop, double to_offset_v) {
  return make(FaultKind::supply_ramp, start, stop, to_offset_v);
}

FaultEvent FaultEvent::stuck(Time start, Time stop, std::size_t stage) {
  FaultEvent e = make(FaultKind::stuck_stage, start, stop, 0.0);
  e.stage = stage;
  return e;
}

FaultEvent FaultEvent::delay_step(Time start, Time stop, double offset_ps) {
  return make(FaultKind::delay_step, start, stop, offset_ps);
}

FaultEvent FaultEvent::drift(Time start, Time stop, double to_offset_ps) {
  return make(FaultKind::delay_drift, start, stop, to_offset_ps);
}

FaultEvent FaultEvent::kick(Time start, Time stop, double offset_ps,
                            std::size_t affected_stages) {
  FaultEvent e = make(FaultKind::mode_kick, start, stop, offset_ps);
  e.stage = affected_stages;
  return e;
}

void FaultScenario::validate() const {
  for (const FaultEvent& e : events) {
    RINGENT_REQUIRE(!e.start.is_negative(), "fault window starts before t=0");
    RINGENT_REQUIRE(e.stop > e.start, "fault window must have stop > start");
    RINGENT_REQUIRE(std::isfinite(e.magnitude), "fault magnitude not finite");
    if (e.kind == FaultKind::supply_tone) {
      RINGENT_REQUIRE(e.frequency_hz > 0.0,
                      "supply tone needs a positive frequency");
    }
    if (e.kind == FaultKind::mode_kick) {
      RINGENT_REQUIRE(e.stage > 0, "mode kick needs at least one stage");
    }
  }
}

Time FaultScenario::end() const {
  Time end = Time::zero();
  for (const FaultEvent& e : events) end = std::max(end, e.stop);
  return end;
}

bool FaultScenario::has_supply_faults() const {
  return std::any_of(events.begin(), events.end(),
                     [](const FaultEvent& e) { return is_supply_fault(e.kind); });
}

bool FaultScenario::has_delay_faults() const {
  return std::any_of(events.begin(), events.end(), [](const FaultEvent& e) {
    return !is_supply_fault(e.kind);
  });
}

FaultScenario FaultScenario::supply_only() const {
  FaultScenario out;
  out.name = name + "/supply-only";
  for (const FaultEvent& e : events) {
    if (is_supply_fault(e.kind)) out.events.push_back(e);
  }
  return out;
}

FaultInjector::FaultInjector(FaultScenario scenario, fpga::Supply* supply)
    : scenario_(std::move(scenario)), supply_(supply) {
  scenario_.validate();
  RINGENT_REQUIRE(supply_ != nullptr || !scenario_.has_supply_faults(),
                  "scenario has supply faults but no supply was given");
  if (supply_ != nullptr) base_level_v_ = supply_->level();
  seen_.assign(scenario_.events.size(), false);
}

double FaultInjector::supply_offset_v(Time t) const {
  double offset = 0.0;
  for (const FaultEvent& e : scenario_.events) {
    if (!e.active_at(t)) continue;
    if (e.kind == FaultKind::supply_step) {
      offset += e.magnitude;
    } else if (e.kind == FaultKind::supply_ramp) {
      offset += e.magnitude * ((t - e.start) / (e.stop - e.start));
    }
  }
  return offset;
}

void FaultInjector::advance_to(Time t) {
  for (std::size_t i = 0; i < scenario_.events.size(); ++i) {
    if (!seen_[i] && t >= scenario_.events[i].start) {
      seen_[i] = true;
      ++activations_;
    }
  }
  if (supply_ == nullptr) return;

  // Exactly one tone can drive the rail at a time (the Supply holds one
  // Modulation); with overlapping tone windows the last-scheduled one wins.
  const FaultEvent* tone = nullptr;
  for (const FaultEvent& e : scenario_.events) {
    if (e.kind == FaultKind::supply_tone && e.active_at(t)) tone = &e;
  }
  if (tone != nullptr) {
    // The supply evaluates its modulation in the ring's *local* kernel time;
    // the attacker's tone is continuous in absolute time. Rebase the phase
    // with the current epoch so an oscillator restart does not silently
    // restart the attack waveform too.
    const double phase =
        2.0 * M_PI * tone->frequency_hz * epoch_.seconds();
    supply_->set_modulation(
        fpga::Modulation::sine(tone->magnitude, tone->frequency_hz, phase));
    tone_applied_ = true;
  } else if (tone_applied_) {
    supply_->set_modulation(fpga::Modulation::none());
    tone_applied_ = false;
  }
  supply_->set_level(base_level_v_ + supply_offset_v(t));
}

Time FaultInjector::next_boundary(Time t) const {
  Time next = Time::max();
  const auto consider = [&](Time candidate) {
    if (candidate > t) next = std::min(next, candidate);
  };
  for (const FaultEvent& e : scenario_.events) {
    consider(e.start);
    consider(e.stop);
    if (e.kind == FaultKind::supply_ramp) {
      const Time step = (e.stop - e.start) / fault_ramp_substeps;
      if (step > Time::zero()) {
        for (int k = 1; k < fault_ramp_substeps; ++k) {
          consider(e.start + step * k);
        }
      }
    }
  }
  return next;
}

double FaultInjector::offset_ps(Time local) const {
  const Time t = epoch_ + local;
  double offset = 0.0;
  for (const FaultEvent& e : scenario_.events) {
    if (!e.active_at(t)) continue;
    if (e.kind == FaultKind::delay_step) {
      offset += e.magnitude;
    } else if (e.kind == FaultKind::delay_drift) {
      offset += e.magnitude * ((t - e.start) / (e.stop - e.start));
    }
  }
  return offset;
}

double FaultInjector::offset_ps(Time local, std::size_t stage) const {
  const Time t = epoch_ + local;
  double offset = offset_ps(local);
  for (const FaultEvent& e : scenario_.events) {
    if (!e.active_at(t)) continue;
    if (e.kind == FaultKind::stuck_stage && e.stage == stage) {
      // Hold the stage until the window closes: the firing that would have
      // happened now is pushed past the release instant.
      offset += (e.stop - t).ps();
    } else if (e.kind == FaultKind::mode_kick && stage < e.stage) {
      offset += e.magnitude;
    }
  }
  return offset;
}

}  // namespace ringent::noise
