#include "noise/modulation.hpp"

#include <cmath>

#include "common/require.hpp"

namespace ringent::noise {

SineDelayModulation::SineDelayModulation(double amplitude_ps,
                                         double frequency_hz, double phase_rad)
    : amplitude_ps_(amplitude_ps),
      frequency_hz_(frequency_hz),
      phase_rad_(phase_rad) {
  RINGENT_REQUIRE(amplitude_ps >= 0.0, "negative modulation amplitude");
  RINGENT_REQUIRE(frequency_hz > 0.0, "modulation frequency must be positive");
}

double SineDelayModulation::offset_ps(Time t) const {
  return amplitude_ps_ *
         std::sin(2.0 * M_PI * frequency_hz_ * t.seconds() + phase_rad_);
}

StepDelayModulation::StepDelayModulation(double step_ps, Time at)
    : step_ps_(step_ps), at_(at) {}

double StepDelayModulation::offset_ps(Time t) const {
  return t >= at_ ? step_ps_ : 0.0;
}

}  // namespace ringent::noise
