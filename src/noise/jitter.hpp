// Dynamic (per-event) noise sources for gate propagation delays.
//
// The paper's jitter model (Sec. IV-A): each LUT's propagation delay carries
// an i.i.d. Gaussian term N(0, sigma_g^2), with sigma_g ≈ 2 ps extracted from
// the IRO accumulation curve (Fig. 11). GaussianNoise implements exactly
// that. FlickerNoise adds an optional 1/f component (Voss–McCartney) — real
// oscillators show flicker at long horizons; the paper's model neglects it
// and so do our default calibrations, but the ablation benches can switch it
// on to show where the sqrt-accumulation law bends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace ringent::noise {

/// A per-event additive delay-noise stream (values in picoseconds).
class NoiseSource {
 public:
  virtual ~NoiseSource() = default;

  /// Noise contribution of the next gate firing (may be negative).
  virtual double sample_ps() = 0;

  /// Draw the next `n` samples into `out` — the exact sequence n sample_ps()
  /// calls would produce. The hot loops batch their draws through this (see
  /// BlockSampler) so the per-event virtual call amortizes to 1/n; sources
  /// with a cheap inlinable core override the default loop.
  virtual void fill_ps(double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = sample_ps();
  }
};

/// White Gaussian noise: the paper's local jitter model.
class GaussianNoise final : public NoiseSource {
 public:
  GaussianNoise(double sigma_ps, std::uint64_t seed);

  double sample_ps() override;
  void fill_ps(double* out, std::size_t n) override;

  double sigma_ps() const { return sigma_ps_; }

 private:
  double sigma_ps_;
  Xoshiro256 rng_;
};

/// 1/f (flicker) noise via the Voss–McCartney algorithm: `octaves` white
/// generators updated at halving rates sum to a pink spectrum. Amplitude is
/// the per-sample standard deviation of the summed output.
class FlickerNoise final : public NoiseSource {
 public:
  FlickerNoise(double amplitude_ps, unsigned octaves, std::uint64_t seed);

  double sample_ps() override;

  unsigned octaves() const { return static_cast<unsigned>(rows_.size()); }

 private:
  double row_sigma_ps_;
  Xoshiro256 rng_;
  std::vector<double> rows_;
  std::uint64_t counter_ = 0;
};

/// Sum of independent sources (e.g. white + flicker).
class CompositeNoise final : public NoiseSource {
 public:
  void add(std::unique_ptr<NoiseSource> source);

  double sample_ps() override;
  void fill_ps(double* out, std::size_t n) override;

  std::size_t size() const { return sources_.size(); }

 private:
  std::vector<std::unique_ptr<NoiseSource>> sources_;
  std::vector<double> scratch_;  ///< per-source block buffer for fill_ps
};

/// The zero source, for noise-free deterministic runs.
class NoNoise final : public NoiseSource {
 public:
  double sample_ps() override { return 0.0; }
};

/// Block buffer over a NoiseSource: one virtual fill_ps() call refills
/// `block` draws, so the ring hot loops pay the dispatch (and the source's
/// per-call overhead) once per block instead of once per event. Draw order
/// per source is preserved exactly; drawing a block ahead of consumption is
/// unobservable because each source owns an independent RNG stream.
class BlockSampler {
 public:
  explicit BlockSampler(NoiseSource* source, std::size_t block = 64)
      : source_(source), buffer_(block), pos_(block) {}

  /// The next sample of the underlying source's stream.
  double next() {
    if (pos_ == buffer_.size()) {
      source_->fill_ps(buffer_.data(), buffer_.size());
      pos_ = 0;
    }
    return buffer_[pos_++];
  }

 private:
  NoiseSource* source_;
  std::vector<double> buffer_;
  std::size_t pos_;
};

}  // namespace ringent::noise
