// Dynamic (per-event) noise sources for gate propagation delays.
//
// The paper's jitter model (Sec. IV-A): each LUT's propagation delay carries
// an i.i.d. Gaussian term N(0, sigma_g^2), with sigma_g ≈ 2 ps extracted from
// the IRO accumulation curve (Fig. 11). GaussianNoise implements exactly
// that. FlickerNoise adds an optional 1/f component (Voss–McCartney) — real
// oscillators show flicker at long horizons; the paper's model neglects it
// and so do our default calibrations, but the ablation benches can switch it
// on to show where the sqrt-accumulation law bends.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace ringent::noise {

/// A per-event additive delay-noise stream (values in picoseconds).
class NoiseSource {
 public:
  virtual ~NoiseSource() = default;

  /// Noise contribution of the next gate firing (may be negative).
  virtual double sample_ps() = 0;
};

/// White Gaussian noise: the paper's local jitter model.
class GaussianNoise final : public NoiseSource {
 public:
  GaussianNoise(double sigma_ps, std::uint64_t seed);

  double sample_ps() override;

  double sigma_ps() const { return sigma_ps_; }

 private:
  double sigma_ps_;
  Xoshiro256 rng_;
};

/// 1/f (flicker) noise via the Voss–McCartney algorithm: `octaves` white
/// generators updated at halving rates sum to a pink spectrum. Amplitude is
/// the per-sample standard deviation of the summed output.
class FlickerNoise final : public NoiseSource {
 public:
  FlickerNoise(double amplitude_ps, unsigned octaves, std::uint64_t seed);

  double sample_ps() override;

  unsigned octaves() const { return static_cast<unsigned>(rows_.size()); }

 private:
  double row_sigma_ps_;
  Xoshiro256 rng_;
  std::vector<double> rows_;
  std::uint64_t counter_ = 0;
};

/// Sum of independent sources (e.g. white + flicker).
class CompositeNoise final : public NoiseSource {
 public:
  void add(std::unique_ptr<NoiseSource> source);

  double sample_ps() override;

  std::size_t size() const { return sources_.size(); }

 private:
  std::vector<std::unique_ptr<NoiseSource>> sources_;
};

/// The zero source, for noise-free deterministic runs.
class NoNoise final : public NoiseSource {
 public:
  double sample_ps() override { return 0.0; }
};

}  // namespace ringent::noise
