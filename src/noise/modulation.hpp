// Direct deterministic delay modulation.
//
// The physically-motivated path for global deterministic jitter is supply
// modulation (fpga::Supply + the delay-voltage laws). For *controlled*
// experiments and ablations it is useful to bypass the analog chain and add
// a known deterministic waveform straight to every stage delay; the Sec. IV-B
// bench uses both paths and checks they agree in shape.
#pragma once

#include <cstddef>
#include <memory>

#include "common/time.hpp"

namespace ringent::noise {

/// A deterministic, time-dependent additive delay offset.
class DelayModulation {
 public:
  virtual ~DelayModulation() = default;

  /// Additive delay offset (ps) applied to a stage firing at absolute time t.
  virtual double offset_ps(Time t) const = 0;

  /// Stage-resolved variant; the ring models call this one. The default
  /// ignores the stage index, so uniform modulations only implement the
  /// one-argument form. Stage-local faults (a stuck LUT, an asymmetric
  /// mode-collapse kick — see noise/fault.hpp) override it.
  virtual double offset_ps(Time t, std::size_t /*stage*/) const {
    return offset_ps(t);
  }
};

class NoModulation final : public DelayModulation {
 public:
  double offset_ps(Time) const override { return 0.0; }
};

/// Sinusoidal deterministic modulation of the per-stage delay.
class SineDelayModulation final : public DelayModulation {
 public:
  SineDelayModulation(double amplitude_ps, double frequency_hz,
                      double phase_rad = 0.0);

  double offset_ps(Time t) const override;

  double amplitude_ps() const { return amplitude_ps_; }
  double frequency_hz() const { return frequency_hz_; }

 private:
  double amplitude_ps_;
  double frequency_hz_;
  double phase_rad_;
};

/// Step change in per-stage delay at a given instant (attack transient).
class StepDelayModulation final : public DelayModulation {
 public:
  StepDelayModulation(double step_ps, Time at);

  double offset_ps(Time t) const override;

 private:
  double step_ps_;
  Time at_;
};

}  // namespace ringent::noise
