#include "noise/jitter.hpp"

#include <bit>
#include <cmath>

#include "common/require.hpp"

namespace ringent::noise {

GaussianNoise::GaussianNoise(double sigma_ps, std::uint64_t seed)
    : sigma_ps_(sigma_ps), rng_(seed) {
  RINGENT_REQUIRE(sigma_ps >= 0.0, "noise sigma must be non-negative");
}

double GaussianNoise::sample_ps() { return rng_.normal(0.0, sigma_ps_); }

void GaussianNoise::fill_ps(double* out, std::size_t n) {
  // Identical draw sequence to n sample_ps() calls: normals() replicates
  // repeated rng_.normal(), and each sample applies the same
  // mean + sigma * deviate arithmetic (mean is literally 0.0 — kept in the
  // expression so the result is bit-identical, -0.0 handling included).
  rng_.normals(out, n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = 0.0 + sigma_ps_ * out[i];
  }
}

FlickerNoise::FlickerNoise(double amplitude_ps, unsigned octaves,
                           std::uint64_t seed)
    : rng_(seed) {
  RINGENT_REQUIRE(amplitude_ps >= 0.0, "noise amplitude must be non-negative");
  RINGENT_REQUIRE(octaves >= 1 && octaves <= 32, "octaves must be in [1,32]");
  // The sum of `octaves` independent rows has variance octaves * row_var.
  row_sigma_ps_ = amplitude_ps / std::sqrt(static_cast<double>(octaves));
  rows_.resize(octaves);
  for (auto& r : rows_) r = rng_.normal(0.0, row_sigma_ps_);
}

double FlickerNoise::sample_ps() {
  // Voss–McCartney: on sample n, refresh row = number of trailing zeros of n,
  // so row k updates every 2^k samples -> approximately 1/f spectrum.
  ++counter_;
  const unsigned row = static_cast<unsigned>(std::countr_zero(counter_));
  if (row < rows_.size()) rows_[row] = rng_.normal(0.0, row_sigma_ps_);
  double sum = 0.0;
  for (double r : rows_) sum += r;
  return sum;
}

void CompositeNoise::add(std::unique_ptr<NoiseSource> source) {
  RINGENT_REQUIRE(source != nullptr, "null noise source");
  sources_.push_back(std::move(source));
}

double CompositeNoise::sample_ps() {
  double sum = 0.0;
  for (auto& s : sources_) sum += s->sample_ps();
  return sum;
}

void CompositeNoise::fill_ps(double* out, std::size_t n) {
  // Per-source streams are independent, so drawing source k's next n samples
  // in one go yields the same values as interleaved draws; accumulating in
  // source order reproduces sample_ps()'s ((0.0 + s0) + s1) + ... sum.
  for (std::size_t i = 0; i < n; ++i) out[i] = 0.0;
  scratch_.resize(n);
  for (auto& s : sources_) {
    s->fill_ps(scratch_.data(), n);
    for (std::size_t i = 0; i < n; ++i) out[i] += scratch_[i];
  }
}

}  // namespace ringent::noise
