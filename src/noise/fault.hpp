// Scripted fault injection against a running oscillator.
//
// The paper's applied claim (Sec. IV-B) is about *attacks*: supply-borne
// deterministic jitter accumulates linearly over an IRO period but is
// common-mode-attenuated in an STR. A fielded TRNG must ride such faults out
// — detect them with its on-line health tests (trng/health.hpp) and degrade
// gracefully (trng/resilient.hpp). This module supplies the attacker half of
// that loop: a declarative FaultScenario — a time-ordered schedule of fault
// windows — and a FaultInjector that realizes the schedule against the
// existing physical hooks:
//
//   * supply faults (tone / step / ramp) drive fpga::Supply::Modulation and
//     Supply::set_level between kernel steps;
//   * delay faults (drift / step / stuck stage / mode-collapse kick) are a
//     stage-aware noise::DelayModulation the rings consult on every firing.
//
// The injector is deterministic and purely a function of (scenario, time):
// two runs with the same schedule and seeds are bit-identical, which is what
// lets run_attack_resilience pin golden detection latencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"
#include "fpga/supply.hpp"
#include "noise/modulation.hpp"

namespace ringent::noise {

enum class FaultKind {
  supply_tone,  ///< sine superimposed on the rail (Sec. IV-B harmonic attack)
  supply_step,  ///< DC offset on the rail; negative = brown-out
  supply_ramp,  ///< rail offset ramping 0 -> magnitude across the window
  stuck_stage,  ///< one stage frozen for the window (stuck-at defect)
  delay_step,   ///< uniform per-stage delay offset during the window
  delay_drift,  ///< per-stage delay offset ramping 0 -> magnitude (aging)
  mode_kick,    ///< asymmetric kick on the first half of the stages: bunches
                ///< an STR's tokens to provoke a mode collapse
};

const char* to_string(FaultKind kind);
/// Inverse of to_string; throws ringent::Error on an unknown name.
FaultKind parse_fault_kind(std::string_view name);

/// True for kinds that act through the shared supply rail (and therefore hit
/// every ring on the die, including a backup ring).
bool is_supply_fault(FaultKind kind);

/// One timed fault window [start, stop).
struct FaultEvent {
  FaultKind kind = FaultKind::supply_step;
  Time start;
  Time stop;
  /// Volts for supply kinds, picoseconds for delay kinds.
  double magnitude = 0.0;
  /// supply_tone only.
  double frequency_hz = 0.0;
  /// Stage selector: the frozen stage for stuck_stage; for mode_kick the
  /// number of leading stages that receive the kick (the asymmetry that
  /// bunches tokens). Unused by the other kinds.
  std::size_t stage = 0;

  static FaultEvent tone(Time start, Time stop, double amplitude_v,
                         double frequency_hz);
  static FaultEvent brownout(Time start, Time stop, double drop_v);
  static FaultEvent ramp(Time start, Time stop, double to_offset_v);
  static FaultEvent stuck(Time start, Time stop, std::size_t stage);
  static FaultEvent delay_step(Time start, Time stop, double offset_ps);
  static FaultEvent drift(Time start, Time stop, double to_offset_ps);
  static FaultEvent kick(Time start, Time stop, double offset_ps,
                         std::size_t affected_stages);

  bool active_at(Time t) const { return t >= start && t < stop; }

  /// Serialized form: {"kind", "start_fs", "stop_fs", "magnitude",
  /// "frequency_hz", "stage"} — every field always present, times as exact
  /// femtosecond integers. from_json rejects unknown keys.
  Json to_json() const;
  static FaultEvent from_json(const Json& json);
};

/// A named, validated schedule of fault windows.
struct FaultScenario {
  std::string name = "quiet";
  std::vector<FaultEvent> events;

  /// Throws PreconditionError on malformed windows (stop <= start, negative
  /// start, tone without a frequency).
  void validate() const;

  /// End of the last window (zero for an empty scenario) — everything after
  /// this is the post-attack observation phase.
  Time end() const;

  bool has_supply_faults() const;
  bool has_delay_faults() const;

  /// The scenario a *different* ring on the same die experiences: supply
  /// faults are common-mode (kept), stage-local delay faults are not
  /// (dropped). This is what a failover backup ring sees.
  FaultScenario supply_only() const;

  /// Serialized form: {"name", "events"}. from_json validates the schedule
  /// (same checks as validate()) and rejects unknown keys.
  Json to_json() const;
  static FaultScenario from_json(const Json& json);
};

/// Realizes a FaultScenario against a Supply (between kernel steps) and as a
/// stage-aware DelayModulation (inside kernel steps).
///
// Usage contract: the driver steps the kernel no further than
// next_boundary(now) before calling advance_to() again, so piecewise-constant
// supply state (step/ramp levels, tone windows) is applied on exact schedule
// boundaries and ramps are sub-sampled deterministically.
class FaultInjector final : public DelayModulation {
 public:
  /// `supply` may be null when the scenario has no supply faults; the
  /// injector then only acts as a DelayModulation. The supply must outlive
  /// the injector.
  FaultInjector(FaultScenario scenario, fpga::Supply* supply);

  const FaultScenario& scenario() const { return scenario_; }

  /// Oscillator restarts reset kernel time to zero; the epoch maps local
  /// kernel time back onto absolute scenario time (absolute = epoch + local).
  void set_epoch(Time epoch) { epoch_ = epoch; }
  Time epoch() const { return epoch_; }

  /// Apply the supply-side state for absolute scenario time `t`. Call
  /// between kernel steps (never mid-step).
  void advance_to(Time t);

  /// Next supply-state change strictly after absolute time `t`
  /// (Time::max() when the rest of the schedule is quiet). Ramp windows
  /// report sub-steps so a piecewise-constant rail tracks the ramp.
  Time next_boundary(Time t) const;

  /// Number of fault windows whose activation advance_to() has applied so
  /// far (for metrics and reports).
  std::uint64_t activations() const { return activations_; }

  // DelayModulation: deterministic per-stage offsets in *local* kernel time.
  double offset_ps(Time local) const override;
  double offset_ps(Time local, std::size_t stage) const override;

 private:
  double supply_offset_v(Time t) const;

  FaultScenario scenario_;
  fpga::Supply* supply_;
  Time epoch_;
  double base_level_v_ = 0.0;
  bool tone_applied_ = false;
  std::vector<bool> seen_;  ///< per-event: activation already counted
  std::uint64_t activations_ = 0;
};

/// Number of ramp sub-steps the injector's boundary stream exposes per
/// supply_ramp window (piecewise-constant approximation of the ramp).
inline constexpr int fault_ramp_substeps = 16;

}  // namespace ringent::noise
