#include "campaign/plan.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "campaign/key.hpp"
#include "common/require.hpp"
#include "core/registry.hpp"

namespace ringent::campaign {

namespace {

std::vector<std::uint64_t> read_seed_list(const Json& value,
                                          const char* where) {
  if (!value.is_array() || value.size() == 0) {
    throw Error(std::string(where) +
                ": \"seeds\" must be a non-empty array of integers");
  }
  std::vector<std::uint64_t> seeds;
  seeds.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    const std::int64_t seed = value.at(i).as_integer();
    if (seed < 0) {
      throw Error(std::string(where) + ": seeds must be non-negative");
    }
    seeds.push_back(static_cast<std::uint64_t>(seed));
  }
  return seeds;
}

Json seed_list_json(const std::vector<std::uint64_t>& seeds) {
  Json out = Json::array();
  for (const std::uint64_t seed : seeds) out.push_back(seed);
  return out;
}

PlanEntry entry_from_json(const Json& json, std::size_t index) {
  const std::string where =
      std::string(CampaignPlan::schema) + " entry #" + std::to_string(index);
  if (!json.is_object()) {
    throw Error(where + ": entry must be a JSON object");
  }
  PlanEntry entry;
  for (const auto& [key, value] : json.items()) {
    if (key == "experiment") {
      entry.experiment = value.as_string();
    } else if (key == "spec") {
      if (!value.is_object()) {
        throw Error(where + ": \"spec\" must be a JSON object");
      }
      entry.spec = value;
    } else if (key == "grid") {
      if (!value.is_object()) {
        throw Error(where + ": \"grid\" must be a JSON object");
      }
      for (const auto& [axis, values] : value.items()) {
        if (!values.is_array() || values.size() == 0) {
          throw Error(where + ": grid axis \"" + axis +
                      "\" must be a non-empty array");
        }
        std::vector<Json> variants;
        variants.reserve(values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          variants.push_back(values.at(i));
        }
        entry.grid.emplace_back(axis, std::move(variants));
      }
      std::sort(entry.grid.begin(), entry.grid.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t i = 1; i < entry.grid.size(); ++i) {
        if (entry.grid[i].first == entry.grid[i - 1].first) {
          throw Error(where + ": duplicate grid axis \"" +
                      entry.grid[i].first + "\"");
        }
      }
    } else if (key == "seeds") {
      entry.seeds = read_seed_list(value, where.c_str());
    } else {
      throw Error(where + ": unknown key \"" + key + "\"");
    }
  }
  if (entry.experiment.empty()) {
    throw Error(where + ": missing required key \"experiment\"");
  }
  return entry;
}

Json entry_to_json(const PlanEntry& entry) {
  Json json = Json::object();
  json.set("experiment", entry.experiment);
  if (entry.spec.is_object()) json.set("spec", entry.spec);
  if (!entry.grid.empty()) {
    Json grid = Json::object();
    for (const auto& [axis, variants] : entry.grid) {
      Json values = Json::array();
      for (const Json& v : variants) values.push_back(v);
      grid.set(axis, std::move(values));
    }
    json.set("grid", std::move(grid));
  }
  if (!entry.seeds.empty()) json.set("seeds", seed_list_json(entry.seeds));
  return json;
}

}  // namespace

Json CampaignPlan::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(schema));
  json.set("name", name);
  json.set("device", device);
  json.set("seeds", seed_list_json(seeds));
  Json entry_list = Json::array();
  for (const PlanEntry& entry : entries) {
    entry_list.push_back(entry_to_json(entry));
  }
  json.set("entries", std::move(entry_list));
  return json;
}

CampaignPlan CampaignPlan::from_json(const Json& json) {
  const std::string where(schema);
  if (!json.is_object()) {
    throw Error(where + ": plan must be a JSON object");
  }
  CampaignPlan plan;
  bool saw_schema = false;
  bool saw_entries = false;
  for (const auto& [key, value] : json.items()) {
    if (key == "schema") {
      if (!value.is_string() || value.as_string() != schema) {
        throw Error(where + ": unknown schema id");
      }
      saw_schema = true;
    } else if (key == "name") {
      plan.name = value.as_string();
    } else if (key == "device") {
      plan.device = value.as_string();
      if (plan.device.empty()) {
        throw Error(where + ": \"device\" must be non-empty");
      }
    } else if (key == "seeds") {
      plan.seeds = read_seed_list(value, where.c_str());
    } else if (key == "entries") {
      if (!value.is_array() || value.size() == 0) {
        throw Error(where + ": \"entries\" must be a non-empty array");
      }
      for (std::size_t i = 0; i < value.size(); ++i) {
        plan.entries.push_back(entry_from_json(value.at(i), i));
      }
      saw_entries = true;
    } else {
      throw Error(where + ": unknown key \"" + key + "\"");
    }
  }
  if (!saw_schema) {
    throw Error(where + ": missing required key \"schema\"");
  }
  if (!saw_entries) {
    throw Error(where + ": missing required key \"entries\"");
  }
  return plan;
}

CampaignPlan load_plan(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open campaign plan: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return CampaignPlan::from_json(Json::parse(text.str()));
  } catch (const Error& error) {
    throw Error(path + ": " + error.what());
  }
}

std::vector<CampaignCell> expand_plan(const CampaignPlan& plan) {
  std::vector<CampaignCell> cells;
  std::unordered_set<std::string> seen_keys;
  for (std::size_t entry_index = 0; entry_index < plan.entries.size();
       ++entry_index) {
    const PlanEntry& entry = plan.entries[entry_index];
    const core::ExperimentDescriptor* descriptor =
        core::find_experiment(entry.experiment);
    if (descriptor == nullptr) {
      throw Error("campaign plan entry #" + std::to_string(entry_index) +
                  ": unknown experiment \"" + entry.experiment + "\"");
    }

    // Base spec: the committed default with the entry overlay applied.
    Json base = descriptor->default_spec();
    if (entry.spec.is_object()) {
      for (const auto& [key, value] : entry.spec.items()) {
        base.set(key, value);
      }
    }
    for (const auto& [axis, values] : entry.grid) {
      (void)values;
      if (!base.contains(axis)) {
        throw Error("campaign plan entry #" + std::to_string(entry_index) +
                    " (" + entry.experiment + "): grid axis \"" + axis +
                    "\" is not a spec key of " + descriptor->spec_schema);
      }
    }

    // Lexicographic cross product over the sorted grid axes: axis 0 is the
    // outermost loop. `cursor` is a mixed-radix counter.
    std::vector<std::size_t> cursor(entry.grid.size(), 0);
    const std::vector<std::uint64_t>& seeds =
        entry.seeds.empty() ? plan.seeds : entry.seeds;
    while (true) {
      Json variant = base;
      for (std::size_t axis = 0; axis < entry.grid.size(); ++axis) {
        variant.set(entry.grid[axis].first,
                    entry.grid[axis].second[cursor[axis]]);
      }
      Json canonical;
      try {
        canonical = descriptor->canonicalize(variant);
      } catch (const Error& error) {
        throw Error("campaign plan entry #" + std::to_string(entry_index) +
                    " (" + entry.experiment + "): " + error.what());
      }
      for (const std::uint64_t seed : seeds) {
        CampaignCell cell;
        cell.experiment = entry.experiment;
        cell.schema = descriptor->spec_schema;
        cell.spec = canonical;
        cell.seed = seed;
        cell.device = plan.device;
        cell.key = content_key(CellIdentity{cell.experiment, cell.schema,
                                            cell.spec, cell.seed,
                                            cell.device});
        if (seen_keys.insert(cell.key).second) {
          cells.push_back(std::move(cell));
        }
      }

      // Increment the mixed-radix cursor (last axis fastest); a full wrap —
      // including the no-grid case, where there is nothing to increment —
      // means every variant has been visited.
      bool wrapped = true;
      for (std::size_t axis = entry.grid.size(); axis-- > 0;) {
        if (++cursor[axis] < entry.grid[axis].second.size()) {
          wrapped = false;
          break;
        }
        cursor[axis] = 0;
      }
      if (wrapped) break;
    }
  }
  return cells;
}

}  // namespace ringent::campaign
