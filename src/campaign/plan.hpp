// Campaign plans: a JSON description of an experiment grid, expanded into
// content-addressed cells.
//
// A plan file ("ringent.campaign-plan/1") names a device profile, a seed
// list, and entries of the form
//
//   {"experiment": "voltage_sweep",
//    "spec": {"periods": 60},                    // overlay on the default
//    "grid": {"voltages": [[1.1,1.2],[1.15,1.2,1.25]]},  // axis of variants
//    "seeds": [1, 2]}                            // optional per-entry seeds
//
// Expansion is deterministic: entries in file order; within an entry the
// grid axes are visited in sorted key order and their value lists
// cross-multiplied lexicographically (earlier axis = outer loop); each
// variant's values overwrite the overlaid default spec's top-level keys;
// seeds innermost. Every expanded spec is pushed through the registry's
// canonicalize (validating it against the experiment schema), so a plan
// that expands is a plan whose every cell will parse at run time — and the
// canonical spec is what the content key hashes, so two plans that expand
// to the same science share cache cells no matter how they spelled it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace ringent::campaign {

/// One plan entry: an experiment, an optional spec overlay, an optional
/// grid of alternative values per top-level spec key, optional seeds.
struct PlanEntry {
  std::string experiment;
  /// Partial spec object merged over the experiment's default_spec()
  /// (top-level keys replace). Null = run the default spec as-is.
  Json spec;
  /// Grid axes: spec key -> list of alternative values (each value replaces
  /// that top-level key per variant). Stored sorted by key — expansion
  /// order must not depend on the file's key order.
  std::vector<std::pair<std::string, std::vector<Json>>> grid;
  /// Per-entry seed override; empty = use the plan-level seeds.
  std::vector<std::uint64_t> seeds;
};

struct CampaignPlan {
  static constexpr std::string_view schema = "ringent.campaign-plan/1";

  std::string name;
  std::string device = "cyclone-iii";
  std::vector<std::uint64_t> seeds = {20120312};
  std::vector<PlanEntry> entries;

  Json to_json() const;
  /// Strict parse: requires the schema id and a non-empty "entries" list,
  /// rejects unknown keys at every level. Structural validation only — the
  /// experiment names and spec contents are checked during expand_plan(),
  /// which needs the registry.
  static CampaignPlan from_json(const Json& json);
};

/// Read + parse a plan file; throws ringent::Error naming the path on I/O
/// or parse failure.
CampaignPlan load_plan(const std::string& path);

/// One expanded cell: the fully canonical spec plus its content key.
struct CampaignCell {
  std::string experiment;
  std::string schema;
  Json spec;  ///< canonical (descriptor->canonicalize output)
  std::uint64_t seed = 0;
  std::string device;
  std::string key;  ///< content_key over the fields above
};

/// Expand a plan into its cell list (deterministic order, see file
/// comment). Throws ringent::Error on unknown experiment names, grid keys
/// that are not top-level spec keys, or specs the experiment schema
/// rejects. Duplicate cells (identical content key) are collapsed to the
/// first occurrence.
std::vector<CampaignCell> expand_plan(const CampaignPlan& plan);

}  // namespace ringent::campaign
