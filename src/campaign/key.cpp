#include "campaign/key.hpp"

#include <span>

#include "service/sha256.hpp"

namespace ringent::campaign {

std::string key_document(const CellIdentity& identity) {
  Json doc = Json::object();
  doc.set("device", identity.device);
  doc.set("experiment", identity.experiment);
  doc.set("schema", identity.schema);
  doc.set("seed", identity.seed);
  doc.set("spec", identity.spec);
  return canonical_dump(doc);
}

std::string content_key(const CellIdentity& identity) {
  const std::string doc = key_document(identity);
  const auto digest = service::Sha256::digest(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(doc.data()), doc.size()));
  static constexpr char hex[] = "0123456789abcdef";
  std::string key;
  key.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    key.push_back(hex[byte >> 4]);
    key.push_back(hex[byte & 0x0f]);
  }
  return key;
}

bool is_content_key(std::string_view key) {
  if (key.size() != service::Sha256::digest_size * 2) return false;
  for (const char c : key) {
    const bool hex_digit =
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex_digit) return false;
  }
  return true;
}

}  // namespace ringent::campaign
