#include "campaign/store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "campaign/key.hpp"
#include "common/require.hpp"

namespace ringent::campaign {

namespace fs = std::filesystem;

// --- CellRecord --------------------------------------------------------------

Json CellRecord::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(schema));
  json.set("key", key);
  json.set("experiment", experiment);
  json.set("spec_schema", spec_schema);
  json.set("spec", spec);
  json.set("seed", seed);
  json.set("device", device);
  json.set("manifest", manifest.to_json());
  return json;
}

CellRecord CellRecord::from_json(const Json& json) {
  const std::string where(schema);
  if (!json.is_object()) {
    throw Error(where + ": record must be a JSON object");
  }
  CellRecord record;
  bool saw_schema = false, saw_key = false, saw_experiment = false,
       saw_spec_schema = false, saw_spec = false, saw_seed = false,
       saw_device = false, saw_manifest = false;
  for (const auto& [key, value] : json.items()) {
    if (key == "schema") {
      if (!value.is_string() || value.as_string() != schema) {
        throw Error(where + ": unknown schema id");
      }
      saw_schema = true;
    } else if (key == "key") {
      record.key = value.as_string();
      saw_key = true;
    } else if (key == "experiment") {
      record.experiment = value.as_string();
      saw_experiment = true;
    } else if (key == "spec_schema") {
      record.spec_schema = value.as_string();
      saw_spec_schema = true;
    } else if (key == "spec") {
      record.spec = value;
      saw_spec = true;
    } else if (key == "seed") {
      const std::int64_t seed = value.as_integer();
      if (seed < 0) throw Error(where + ": seed must be non-negative");
      record.seed = static_cast<std::uint64_t>(seed);
      saw_seed = true;
    } else if (key == "device") {
      record.device = value.as_string();
      saw_device = true;
    } else if (key == "manifest") {
      record.manifest = core::RunManifest::from_json(value);
      saw_manifest = true;
    } else {
      throw Error(where + ": unknown key \"" + key + "\"");
    }
  }
  if (!(saw_schema && saw_key && saw_experiment && saw_spec_schema &&
        saw_spec && saw_seed && saw_device && saw_manifest)) {
    throw Error(where + ": missing required key");
  }
  // Self-check: the stored key must be the content key of the identity
  // fields. A record edited, truncated-then-refilled, or attributed to the
  // wrong file fails here and is treated as torn.
  const std::string expected = content_key(CellIdentity{
      record.experiment, record.spec_schema, record.spec, record.seed,
      record.device});
  if (record.key != expected) {
    throw Error(where + ": stored key does not match record content");
  }
  return record;
}

core::RunManifest normalize_manifest(core::RunManifest manifest) {
  manifest.jobs = 0;
  manifest.wall_ms = 0.0;
  manifest.cpu_ms = 0.0;
  manifest.metrics.phases.clear();
  manifest.telemetry.clear();
  return manifest;
}

// --- CampaignIndex -----------------------------------------------------------

Json CampaignIndex::to_json() const {
  Json json = Json::object();
  json.set("schema", std::string(schema));
  Json cell_list = Json::array();
  for (const Entry& entry : cells) {
    Json cell = Json::object();
    cell.set("key", entry.key);
    cell.set("experiment", entry.experiment);
    cell.set("seed", entry.seed);
    cell_list.push_back(std::move(cell));
  }
  json.set("cells", std::move(cell_list));
  return json;
}

CampaignIndex CampaignIndex::from_json(const Json& json) {
  const std::string where(schema);
  if (!json.is_object()) {
    throw Error(where + ": index must be a JSON object");
  }
  CampaignIndex index;
  bool saw_schema = false, saw_cells = false;
  for (const auto& [key, value] : json.items()) {
    if (key == "schema") {
      if (!value.is_string() || value.as_string() != schema) {
        throw Error(where + ": unknown schema id");
      }
      saw_schema = true;
    } else if (key == "cells") {
      if (!value.is_array()) {
        throw Error(where + ": \"cells\" must be an array");
      }
      for (std::size_t i = 0; i < value.size(); ++i) {
        const Json& cell = value.at(i);
        if (!cell.is_object()) {
          throw Error(where + ": cell entries must be objects");
        }
        Entry entry;
        bool saw_key = false, saw_experiment = false, saw_seed = false;
        for (const auto& [cell_key, cell_value] : cell.items()) {
          if (cell_key == "key") {
            entry.key = cell_value.as_string();
            if (!is_content_key(entry.key)) {
              throw Error(where + ": malformed content key");
            }
            saw_key = true;
          } else if (cell_key == "experiment") {
            entry.experiment = cell_value.as_string();
            saw_experiment = true;
          } else if (cell_key == "seed") {
            const std::int64_t seed = cell_value.as_integer();
            if (seed < 0) throw Error(where + ": seed must be non-negative");
            entry.seed = static_cast<std::uint64_t>(seed);
            saw_seed = true;
          } else {
            throw Error(where + ": unknown cell key \"" + cell_key + "\"");
          }
        }
        if (!(saw_key && saw_experiment && saw_seed)) {
          throw Error(where + ": cell entry missing required key");
        }
        index.cells.push_back(std::move(entry));
      }
      saw_cells = true;
    } else {
      throw Error(where + ": unknown key \"" + key + "\"");
    }
  }
  if (!(saw_schema && saw_cells)) {
    throw Error(where + ": missing required key");
  }
  for (std::size_t i = 1; i < index.cells.size(); ++i) {
    if (!(index.cells[i - 1].key < index.cells[i].key)) {
      throw Error(where + ": cells must be strictly sorted by key");
    }
  }
  return index;
}

// --- ResultStore -------------------------------------------------------------

namespace {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return text.str();
}

/// Write `content` to `path` atomically: temp file in the same directory,
/// flushed and closed, then renamed over the target. Readers never observe
/// a half-written file through the final name. The temp name carries the
/// pid so concurrent --shard processes rewriting the same index cannot
/// truncate each other's in-flight temp file.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot write " + tmp);
    out << content;
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      throw Error("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename " + tmp + " into place");
  }
}

}  // namespace

ResultStore::ResultStore(std::string dir) : dir_(std::move(dir)) {
  RINGENT_REQUIRE(!dir_.empty(), "result store needs a directory");
  std::error_code ec;
  fs::create_directories(fs::path(dir_) / "cells", ec);
  if (ec) {
    throw Error("cannot create result store at " + dir_ + ": " + ec.message());
  }
}

std::string ResultStore::cell_path(const std::string& key) const {
  return (fs::path(dir_) / "cells" / (key + ".json")).string();
}

std::string ResultStore::index_path() const {
  return (fs::path(dir_) / "index.json").string();
}

std::optional<CellRecord> ResultStore::load(const std::string& key) const {
  if (!is_content_key(key)) return std::nullopt;
  const std::optional<std::string> text = read_file(cell_path(key));
  if (!text) return std::nullopt;
  try {
    CellRecord record = CellRecord::from_json(Json::parse(*text));
    if (record.key != key) return std::nullopt;  // record under wrong name
    return record;
  } catch (const Error&) {
    return std::nullopt;  // torn or corrupt: caller re-runs the cell
  }
}

void ResultStore::put(const CellRecord& record) const {
  RINGENT_REQUIRE(is_content_key(record.key),
                  "cell record key must be a content key");
  write_file_atomic(cell_path(record.key), record.to_json().dump(2) + "\n");
}

std::vector<std::string> ResultStore::list_keys() const {
  std::vector<std::string> keys;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dir_) / "cells", ec)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != ".json") continue;
    const std::string stem = path.stem().string();
    if (is_content_key(stem)) keys.push_back(stem);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

CampaignIndex ResultStore::rebuild_index() const {
  CampaignIndex index;
  for (const std::string& key : list_keys()) {
    const std::optional<CellRecord> record = load(key);
    if (!record) continue;  // torn records are not indexed
    index.cells.push_back({record->key, record->experiment, record->seed});
  }
  // list_keys() is sorted and keys are unique file names, so the index is
  // already strictly sorted — the from_json invariant.
  write_file_atomic(index_path(), index.to_json().dump(2) + "\n");
  return index;
}

std::optional<CampaignIndex> ResultStore::read_index() const {
  const std::optional<std::string> text = read_file(index_path());
  if (!text) return std::nullopt;
  try {
    return CampaignIndex::from_json(Json::parse(*text));
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace ringent::campaign
