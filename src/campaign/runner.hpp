// Campaign execution: expand a plan, skip the cells whose content key
// already has a valid record, run the rest, and keep the store healed.
//
// Execution discipline:
//  * The cache-validation scan (does each cell's key have a valid record?)
//    is embarrassingly parallel file I/O and fans out via sim::ThreadPool.
//  * Cell EXECUTION is sequential within a process: run manifests are
//    captured from a process-global metrics snapshot (core/experiments.cpp
//    DriverScope), so two drivers running concurrently in one process would
//    corrupt each other's counter deltas. Each cell still parallelizes
//    internally over options.jobs, and whole-campaign scale-out is
//    multi-process: `--shard i/N` assigns cell c to the process with
//    c % N == i, cells are written under content keys (no cross-shard
//    conflicts), and every shard rewrites the index it can prove.
//  * Resume is implicit: a killed run leaves complete cell files (writes
//    are atomic) plus at most one torn file; the next run's scan treats
//    torn as missing, re-executes exactly the unproven cells and rewrites
//    the index — the final store is byte-identical to an uninterrupted
//    run's (normalized manifests make cell bytes machine- and
//    jobs-independent).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/store.hpp"

namespace ringent::campaign {

struct CampaignRunOptions {
  /// Shard selector: this process runs cells with index % shard_count ==
  /// shard_index over the expanded order. Defaults to the whole plan.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  /// Worker threads inside each cell's driver (ExperimentOptions::jobs).
  std::size_t jobs = 0;

  /// Stop after executing this many cells (cached hits don't count);
  /// 0 = no limit. The interrupted-resume tests use this as a deterministic
  /// stand-in for a mid-campaign SIGKILL.
  std::size_t max_cells = 0;

  /// Optional per-cell progress sink (one line per cell, e.g. the CLI's
  /// stdout). Null = silent.
  std::function<void(const std::string&)> progress;
};

/// What one runner invocation did (all counts are cells).
struct CampaignReport {
  std::size_t planned = 0;   ///< expanded plan size
  std::size_t in_shard = 0;  ///< cells this shard is responsible for
  std::size_t cached = 0;    ///< valid record already present — skipped
  std::size_t executed = 0;  ///< driver actually ran, record written
  std::size_t remaining = 0; ///< left unexecuted by max_cells

  bool complete() const { return remaining == 0; }
};

/// Run `plan` against `store` (see file comment for the discipline).
/// Throws ringent::Error on unknown experiments/devices, invalid shard
/// options, or store I/O failure. The index is rewritten after every
/// executed cell and once at the end, so an interruption at any point
/// leaves an index describing exactly the valid cells on disk.
CampaignReport run_campaign(const CampaignPlan& plan, const ResultStore& store,
                            const CampaignRunOptions& options = {});

/// Cache-state probe: like run_campaign with execution disabled. `cached` /
/// `remaining` report how much of the plan has valid records (whole plan —
/// sharding does not apply).
CampaignReport campaign_status(const CampaignPlan& plan,
                               const ResultStore& store);

/// Deep verification of a store against a plan.
struct VerifyReport {
  std::size_t planned = 0;
  std::size_t valid = 0;    ///< cells with a parseable, key-consistent record
  std::size_t missing = 0;  ///< planned cells with no file at all
  std::size_t torn = 0;     ///< planned cells whose file exists but fails load
  std::size_t orphans = 0;  ///< valid-looking cell files no plan cell claims
  bool index_consistent = false;  ///< index.json matches the valid cells

  bool ok() const {
    return missing == 0 && torn == 0 && index_consistent;
  }
};

/// Recompute every planned cell's key, check its record round-trips and
/// self-hashes, count orphan cell files, and compare index.json against
/// the valid set. Pure reads — never modifies the store.
VerifyReport verify_campaign(const CampaignPlan& plan,
                             const ResultStore& store);

}  // namespace ringent::campaign
