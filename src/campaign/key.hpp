// Content addressing for campaign cells.
//
// A *cell* is one (experiment, spec, seed, device) execution — the atomic
// unit of a campaign sweep. Its content key is the SHA-256 of a canonical
// key document, so the key names the computation itself, not where or when
// it ran:
//
//   {"device":"cyclone-iii","experiment":"restart","schema":
//    "ringent.spec.restart/1","seed":20120312,"spec":{...canonical...}}
//
// serialized with ringent::canonical_dump (sorted keys, exact integers,
// %.17g doubles). Two planners that expand to the same cell — whatever the
// plan file's key order, float spelling or grid layout — derive the same
// key and share one cached result; any change to the spec schema version,
// a spec value, the seed or the device profile id changes the key and
// forces a re-run. Tests pin keys byte-exact for every registry
// experiment's default spec, so accidental canonicalization drift breaks
// loudly instead of silently orphaning every cache.
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"

namespace ringent::campaign {

/// Everything that identifies a cell's computation. `spec` must already be
/// canonical (descriptor->canonicalize output) — the key hashes it as-is.
struct CellIdentity {
  std::string experiment;  ///< registry name
  std::string schema;      ///< spec schema id ("ringent.spec.<name>/1")
  Json spec;               ///< canonicalized spec document
  std::uint64_t seed = 0;  ///< ExperimentOptions master seed
  std::string device;      ///< device profile id (core::find_device_profile)
};

/// The canonical document whose hash is the content key.
std::string key_document(const CellIdentity& identity);

/// SHA-256 of key_document(), lower-case hex (64 chars) — the cell's file
/// name in the result store.
std::string content_key(const CellIdentity& identity);

/// True iff `key` is shaped like a content key (64 lower-case hex chars);
/// the store uses this to ignore foreign files in its cells directory.
bool is_content_key(std::string_view key);

}  // namespace ringent::campaign
