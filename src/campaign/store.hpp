// On-disk result store for campaign cells: one JSON record per content key,
// written atomically, plus a derived index file.
//
// Layout under the store directory:
//
//   cells/<sha256-hex>.json   one "ringent.campaign-cell/1" record per cell
//   index.json                "ringent.campaign/1": sorted cell directory
//
// Durability contract: records are written to a temp file in the same
// directory and renamed into place, so a cell file either holds a complete
// record or does not exist — except after power loss mid-rename, which can
// leave a torn file. load() therefore treats ANY failure (unparseable
// bytes, schema mismatch, a record whose stored key disagrees with the
// recomputed content key of its own identity fields) as "missing": the
// runner re-executes the cell and the rewrite heals the store. That is what
// makes resume after SIGKILL safe without a journal.
//
// The index is pure convenience (status/verify without opening every
// cell); the cells directory is ground truth. rebuild_index() derives it by
// scanning the cells, and the runner rewrites it after every recorded cell,
// so the final index content does not depend on where a previous run died.
//
// Determinism: stored manifests are normalized (normalize_manifest) — the
// wall/CPU timings, per-phase timers, telemetry summaries and the resolved
// jobs count are zeroed, because they vary run-to-run and machine-to-
// machine while the simulation counters do not (the cross-jobs determinism
// contract of sim/parallel.hpp). Result: re-running any subset of cells on
// any machine with any --jobs reproduces byte-identical cell files, which
// is the store's resumability invariant and what the interrupted-resume
// test asserts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "core/export.hpp"

namespace ringent::campaign {

/// One completed cell: its identity plus the normalized run manifest.
struct CellRecord {
  static constexpr std::string_view schema = "ringent.campaign-cell/1";

  std::string key;         ///< content key (must match the identity fields)
  std::string experiment;
  std::string spec_schema;
  Json spec;               ///< canonical spec
  std::uint64_t seed = 0;
  std::string device;
  core::RunManifest manifest;  ///< normalized (see normalize_manifest)

  Json to_json() const;
  /// Strict parse: schema required, unknown keys rejected, and the stored
  /// key must equal the content key recomputed from the identity fields —
  /// a record that fails any of this is torn/corrupt by definition.
  static CellRecord from_json(const Json& json);
};

/// Strip the run-to-run varying fields from a manifest: wall/CPU times,
/// per-phase timers, telemetry summaries, resolved jobs. What remains
/// (experiment, spec text, seed, tasks, counters, version) is deterministic
/// across machines and worker counts.
core::RunManifest normalize_manifest(core::RunManifest manifest);

/// The index document: a sorted directory of the cells present.
struct CampaignIndex {
  static constexpr std::string_view schema = "ringent.campaign/1";

  struct Entry {
    std::string key;
    std::string experiment;
    std::uint64_t seed = 0;
  };
  /// Sorted by key (unique — keys are file names).
  std::vector<Entry> cells;

  Json to_json() const;
  static CampaignIndex from_json(const Json& json);
};

class ResultStore {
 public:
  /// Opens (creating directories as needed) the store rooted at `dir`.
  explicit ResultStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string cell_path(const std::string& key) const;
  std::string index_path() const;

  /// Load the record for `key`; nullopt when absent or torn (see file
  /// comment — a torn record is indistinguishable from a missing one).
  std::optional<CellRecord> load(const std::string& key) const;

  /// True when load(key) would return a record.
  bool has_valid(const std::string& key) const { return load(key).has_value(); }

  /// Atomically write `record` under its key (temp file + rename).
  void put(const CellRecord& record) const;

  /// Content keys of every well-formed-named file in cells/ (sorted);
  /// includes torn records — pair with load() to validate.
  std::vector<std::string> list_keys() const;

  /// Scan cells/ and derive the index from the valid records, then write
  /// index.json atomically. Returns the index written.
  CampaignIndex rebuild_index() const;

  /// Parse index.json; nullopt when absent or invalid.
  std::optional<CampaignIndex> read_index() const;

 private:
  std::string dir_;
};

}  // namespace ringent::campaign
