#include "campaign/runner.hpp"

#include <atomic>
#include <fstream>
#include <unordered_set>

#include "common/require.hpp"
#include "core/calibration.hpp"
#include "core/registry.hpp"
#include "sim/parallel.hpp"

namespace ringent::campaign {

namespace {

/// Parallel cache scan: cached[i] = cell i has a valid record. Pure file
/// reads, so thread fan-out is safe (unlike execution, which is
/// process-global — see runner.hpp).
std::vector<char> scan_cached(const std::vector<CampaignCell>& cells,
                              const ResultStore& store, std::size_t jobs) {
  std::vector<char> cached(cells.size(), 0);
  sim::ThreadPool pool(jobs);
  pool.for_each_index(cells.size(), [&](std::size_t i) {
    cached[i] = store.has_valid(cells[i].key) ? 1 : 0;
  });
  return cached;
}

}  // namespace

CampaignReport run_campaign(const CampaignPlan& plan, const ResultStore& store,
                            const CampaignRunOptions& options) {
  RINGENT_REQUIRE(options.shard_count >= 1, "shard_count must be >= 1");
  RINGENT_REQUIRE(options.shard_index < options.shard_count,
                  "shard_index must be < shard_count");
  // Resolve the device up front: a plan naming an unknown profile must fail
  // before any cell runs, not at the first uncached one.
  const core::Calibration& calibration =
      core::find_device_profile(plan.device);

  const std::vector<CampaignCell> cells = expand_plan(plan);
  const std::vector<char> cached = scan_cached(cells, store, options.jobs);

  CampaignReport report;
  report.planned = cells.size();
  bool wrote_any = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i % options.shard_count != options.shard_index) continue;
    ++report.in_shard;
    const CampaignCell& cell = cells[i];
    if (cached[i]) {
      ++report.cached;
      if (options.progress) {
        options.progress("cached   " + cell.key.substr(0, 12) + "  " +
                         cell.experiment + " seed=" +
                         std::to_string(cell.seed));
      }
      continue;
    }
    if (options.max_cells != 0 && report.executed >= options.max_cells) {
      ++report.remaining;
      continue;
    }

    const core::ExperimentDescriptor* descriptor =
        core::find_experiment(cell.experiment);
    RINGENT_REQUIRE(descriptor != nullptr,
                    "expand_plan returned an unknown experiment");
    core::ExperimentOptions experiment_options;
    experiment_options.seed = cell.seed;
    experiment_options.jobs = options.jobs;
    const core::RunManifest manifest =
        descriptor->run_spec(cell.spec, calibration, experiment_options);

    CellRecord record;
    record.key = cell.key;
    record.experiment = cell.experiment;
    record.spec_schema = cell.schema;
    record.spec = cell.spec;
    record.seed = cell.seed;
    record.device = cell.device;
    record.manifest = normalize_manifest(manifest);
    store.put(record);
    // Heal/extend the index after every cell: an interruption anywhere
    // leaves an index that describes exactly the valid cells on disk.
    store.rebuild_index();
    wrote_any = true;
    ++report.executed;
    if (options.progress) {
      options.progress("executed " + cell.key.substr(0, 12) + "  " +
                       cell.experiment + " seed=" + std::to_string(cell.seed));
    }
  }
  if (!wrote_any) {
    // Nothing executed (fully cached run, or max_cells == 0 shard slice):
    // still make sure the index exists and reflects the store.
    store.rebuild_index();
  }
  return report;
}

CampaignReport campaign_status(const CampaignPlan& plan,
                               const ResultStore& store) {
  const std::vector<CampaignCell> cells = expand_plan(plan);
  const std::vector<char> cached = scan_cached(cells, store, 0);
  CampaignReport report;
  report.planned = cells.size();
  report.in_shard = cells.size();
  for (const char c : cached) {
    if (c) {
      ++report.cached;
    } else {
      ++report.remaining;
    }
  }
  return report;
}

VerifyReport verify_campaign(const CampaignPlan& plan,
                             const ResultStore& store) {
  const std::vector<CampaignCell> cells = expand_plan(plan);
  VerifyReport report;
  report.planned = cells.size();

  std::unordered_set<std::string> planned_keys;
  std::atomic<std::size_t> valid{0}, missing{0}, torn{0};
  for (const CampaignCell& cell : cells) planned_keys.insert(cell.key);

  sim::ThreadPool pool(0);
  pool.for_each_index(cells.size(), [&](std::size_t i) {
    const std::optional<CellRecord> record = store.load(cells[i].key);
    if (record) {
      ++valid;
      return;
    }
    // Distinguish "no file" from "file exists but does not load" — the
    // latter is a torn write (or foreign bytes) worth reporting separately.
    std::ifstream probe(store.cell_path(cells[i].key));
    if (probe.good()) {
      ++torn;
    } else {
      ++missing;
    }
  });
  report.valid = valid.load();
  report.missing = missing.load();
  report.torn = torn.load();

  std::vector<std::string> valid_keys;
  for (const std::string& key : store.list_keys()) {
    if (!store.load(key)) continue;  // torn files are not index material
    if (planned_keys.find(key) == planned_keys.end()) ++report.orphans;
    valid_keys.push_back(key);
  }

  const std::optional<CampaignIndex> index = store.read_index();
  if (index && index->cells.size() == valid_keys.size()) {
    bool match = true;
    for (std::size_t i = 0; i < valid_keys.size(); ++i) {
      if (index->cells[i].key != valid_keys[i]) {
        match = false;
        break;
      }
    }
    report.index_consistent = match;
  }
  return report;
}

}  // namespace ringent::campaign
