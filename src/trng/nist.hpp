// NIST SP 800-22 style statistical tests (a "lite" subset, exact p-values).
//
// Complements the FIPS 140-2 pass/fail battery (trng/fips.hpp) with
// p-value-based tests, which is what an entropy-source characterization
// actually reports. Implemented tests and their SP 800-22 sections:
//
//   frequency (2.1), block frequency (2.2), runs (2.3), longest run of ones
//   (2.4, 8-bit blocks), cumulative sums (2.13), approximate entropy (2.12),
//   discrete Fourier transform / spectral (2.6), serial (2.11, m = 3).
//
// All tests accept arbitrary lengths above their documented minima; p-values
// use the library's own erfc / regularized-gamma implementations
// (common/math.hpp), so results are reproducible bit-for-bit across
// platforms.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ringent::trng {

struct NistResult {
  std::string name;
  double p_value = 0.0;
  bool pass = false;  ///< p_value >= alpha (default alpha = 0.01)
  std::string detail;
};

NistResult nist_frequency(std::span<const std::uint8_t> bits,
                          double alpha = 0.01);

/// Block frequency with M-bit blocks (M >= 20 recommended; n >= 100).
NistResult nist_block_frequency(std::span<const std::uint8_t> bits,
                                std::size_t block_bits = 128,
                                double alpha = 0.01);

NistResult nist_runs(std::span<const std::uint8_t> bits, double alpha = 0.01);

/// Longest run of ones in 8-bit blocks (n >= 128).
NistResult nist_longest_run(std::span<const std::uint8_t> bits,
                            double alpha = 0.01);

/// Cumulative sums, forward direction.
NistResult nist_cusum(std::span<const std::uint8_t> bits, double alpha = 0.01);

/// Approximate entropy with template length m (m + 1 <= log2(n) - 2).
NistResult nist_approximate_entropy(std::span<const std::uint8_t> bits,
                                    unsigned m = 4, double alpha = 0.01);

/// Spectral test: fraction of DFT peaks under the 95% threshold.
NistResult nist_dft(std::span<const std::uint8_t> bits, double alpha = 0.01);

/// Serial test with template length m (returns the min of the two p-values).
NistResult nist_serial(std::span<const std::uint8_t> bits, unsigned m = 3,
                       double alpha = 0.01);

/// Binary matrix rank test (2.5): GF(2) rank distribution of 32x32 matrices
/// carved from the sequence. Requires >= 38 * 1024 bits.
NistResult nist_matrix_rank(std::span<const std::uint8_t> bits,
                            double alpha = 0.01);

struct NistBattery {
  std::vector<NistResult> results;
  bool all_pass = false;
};

/// Run the full lite battery (n >= 1024 recommended).
NistBattery nist_battery(std::span<const std::uint8_t> bits,
                         double alpha = 0.01);

}  // namespace ringent::trng
