// Coherent-sampling TRNG (paper ref [7], Valtchanov et al.).
//
// Two free-running rings with close periods T0 (sampled) and T1 (sampling)
// produce a beat: latching ring0 with ring1's rising edges yields a slow
// square pattern of ~ T0/|T1-T0| samples per half-beat. A counter measures
// each half-beat length in samples; jitter makes the boundary sample
// uncertain, so the counter LSB is the random bit. The paper's conclusion
// highlights this design as the main beneficiary of the STR's low
// extra-device frequency variance: coherent sampling only works if the two
// ring frequencies stay within a designed interval on every manufactured
// device — exactly what Table II shows STRs guarantee better than IROs.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/probe.hpp"
#include "trng/sampler.hpp"

namespace ringent::trng {

struct CoherentResult {
  std::vector<std::uint8_t> bits;        ///< LSBs of half-beat lengths
  std::vector<std::size_t> run_lengths;  ///< half-beat lengths in samples
  double mean_run_length = 0.0;          ///< ~ T0 / |T1 - T0|
  /// Median run length: robust against the short "blip" runs produced when
  /// a sample lands inside the jittering beat boundary (the metastable zone
  /// splits one half-beat into several runs). Use this to read the beat.
  double median_run_length = 0.0;
};

/// Latch `sampled` at the rising edges of `sampling_clock` and extract
/// counter-LSB bits from the run structure. Requires enough overlap for at
/// least one complete run.
CoherentResult coherent_sampling_bits(
    const std::vector<sim::Transition>& sampled,
    const std::vector<Time>& sampling_clock_rising,
    const SamplerConfig& sampler = {});

/// Expected samples per half-beat for periods t0 and t1 (t0 != t1).
double expected_half_beat_samples(double t0_ps, double t1_ps);

}  // namespace ringent::trng
