// Jitter-to-entropy lower bound for elementary ring-oscillator TRNGs.
//
// Simplified form of the Baudet et al. (CHES 2011) phase-noise model: for a
// ring sampled every T_s with accumulated timing variance sigma_acc^2, define
// the quality factor Q = sigma_acc^2 / T^2 (T the ring period). The Shannon
// entropy per sampled bit is bounded below by
//
//     H >= 1 - (4 / (pi^2 ln 2)) * exp(-4 pi^2 Q).
//
// The bound quantifies the security argument behind the paper's comparison:
// what matters is the *random* (thermal) jitter only — deterministic jitter
// inflates measured sigma but adds no entropy, which is why the STR's
// suppression of the deterministic component matters for TRNG design.
#pragma once

#include "common/time.hpp"

namespace ringent::trng {

/// Entropy lower bound per bit from the quality factor Q.
double entropy_lower_bound(double quality_factor);

/// Convenience: bound from ring parameters. sigma_p is the white per-period
/// jitter; variance accumulates linearly over the sampling interval.
double entropy_lower_bound(double sigma_p_ps, double ring_period_ps,
                           Time sampling_period);

/// Sampling period needed to reach a target entropy per bit (inverse of the
/// bound). Returns the minimal T_s.
Time required_sampling_period(double target_entropy, double sigma_p_ps,
                              double ring_period_ps);

}  // namespace ringent::trng
