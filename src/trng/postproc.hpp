// Arithmetic post-processing of raw TRNG bits.
//
// Tail-bit contract (shared by every function here): input that does not
// fill the last consumption unit — the final bit of an odd-length span for
// von_neumann/peres, the trailing `bits.size() % factor` bits for
// xor_decimate — is DROPPED, deterministically and silently. No partial
// output unit is ever emitted, because a partial unit would leak raw
// (uncorrected) bits into the output stream. Consequences worth knowing:
//
//  * empty input -> empty output (never an error);
//  * length-1 input -> empty output for every corrector;
//  * xor_decimate with factor > bits.size() -> empty output;
//  * xor_decimate demands factor >= 1 and throws PreconditionError for 0
//    (a zero-width parity group has no meaning).
//
// Streaming callers that cannot afford to lose tail bits must carry the
// remainder themselves (ResilientGenerator::fill_bytes shows the pattern).
// tests/test_postproc.cpp pins every case above.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ringent::trng {

/// Von Neumann corrector: consume disjoint pairs, emit 0 for (0,1) and 1 for
/// (1,0), drop (0,0)/(1,1). Removes bias at the cost of >= 75% throughput for
/// an unbiased source (more for biased ones); leaves correlations between
/// pairs untouched.
std::vector<std::uint8_t> von_neumann(std::span<const std::uint8_t> bits);

/// XOR decimation: each output bit is the parity of `factor` consecutive
/// input bits. Reduces bias b to ~ (2b)^factor / 2. Requires factor >= 1
/// (PreconditionError otherwise); a trailing group of fewer than `factor`
/// bits is dropped, never emitted as a short parity.
std::vector<std::uint8_t> xor_decimate(std::span<const std::uint8_t> bits,
                                       std::size_t factor);

/// Theoretical bias of the XOR of k independent bits with ones-probability p
/// (piling-up lemma): 1/2 + 2^(k-1) (p - 1/2)^k.
double xor_bias(double p, std::size_t k);

/// Peres iterated von Neumann extractor: recursively applies the corrector
/// to the discarded information (the XOR stream and the equal-pair values),
/// approaching the Shannon-entropy extraction rate instead of von Neumann's
/// p(1-p). `depth` bounds the recursion (3-8 typical; returns the same bits
/// as von_neumann at depth 1).
std::vector<std::uint8_t> peres(std::span<const std::uint8_t> bits,
                                unsigned depth = 6);

/// Asymptotic output/input rate of the von Neumann corrector: p(1-p).
double von_neumann_rate(double p);

}  // namespace ringent::trng
