// Arithmetic post-processing of raw TRNG bits.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ringent::trng {

/// Von Neumann corrector: consume disjoint pairs, emit 0 for (0,1) and 1 for
/// (1,0), drop (0,0)/(1,1). Removes bias at the cost of >= 75% throughput for
/// an unbiased source (more for biased ones); leaves correlations between
/// pairs untouched.
std::vector<std::uint8_t> von_neumann(std::span<const std::uint8_t> bits);

/// XOR decimation: each output bit is the parity of `factor` consecutive
/// input bits. Reduces bias b to ~ (2b)^factor / 2.
std::vector<std::uint8_t> xor_decimate(std::span<const std::uint8_t> bits,
                                       std::size_t factor);

/// Theoretical bias of the XOR of k independent bits with ones-probability p
/// (piling-up lemma): 1/2 + 2^(k-1) (p - 1/2)^k.
double xor_bias(double p, std::size_t k);

/// Peres iterated von Neumann extractor: recursively applies the corrector
/// to the discarded information (the XOR stream and the equal-pair values),
/// approaching the Shannon-entropy extraction rate instead of von Neumann's
/// p(1-p). `depth` bounds the recursion (3-8 typical; returns the same bits
/// as von_neumann at depth 1).
std::vector<std::uint8_t> peres(std::span<const std::uint8_t> bits,
                                unsigned depth = 6);

/// Asymptotic output/input rate of the von Neumann corrector: p(1-p).
double von_neumann_rate(double p);

}  // namespace ringent::trng
