// D-flip-flop sampling of a jittery signal (the basic TRNG extractor).
//
// The classic FPGA TRNG (paper refs [1][2]) latches a free-running ring
// output with a reference clock; randomness comes from sampling near an edge
// whose position carries accumulated jitter. This module reconstructs the
// sampled bit stream from a recorded transition list — value-at-time lookup,
// exactly what a DFF does, including optional setup/hold metastability
// resolution noise on the sample instant.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/probe.hpp"

namespace ringent::trng {

/// Value of the signal described by `transitions` at time t (false before the
/// first transition).
bool value_at(const std::vector<sim::Transition>& transitions, Time t);

/// Periodic sample instants: t0, t0+period, ... (count of them).
std::vector<Time> periodic_samples(Time t0, Time period, std::size_t count);

struct SamplerConfig {
  /// Gaussian aperture jitter of the sampling flip-flop (its own clock path
  /// noise), applied to each sample instant.
  double aperture_jitter_ps = 0.0;
  std::uint64_t seed = 0xD0FF;
};

class DffSampler {
 public:
  explicit DffSampler(const SamplerConfig& config = {});

  /// Latch the signal at each sample instant; returns one bit per sample.
  std::vector<std::uint8_t> sample(
      const std::vector<sim::Transition>& transitions,
      const std::vector<Time>& sample_times);

 private:
  SamplerConfig config_;
  Xoshiro256 rng_;
};

}  // namespace ringent::trng
