#include "trng/sampler.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace ringent::trng {

bool value_at(const std::vector<sim::Transition>& transitions, Time t) {
  // First transition strictly after t; the value at t is the previous one.
  const auto it = std::upper_bound(
      transitions.begin(), transitions.end(), t,
      [](Time lhs, const sim::Transition& tr) { return lhs < tr.at; });
  if (it == transitions.begin()) return false;
  return std::prev(it)->value;
}

std::vector<Time> periodic_samples(Time t0, Time period, std::size_t count) {
  RINGENT_REQUIRE(period > Time::zero(), "sampling period must be positive");
  std::vector<Time> out;
  out.reserve(count);
  Time t = t0;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(t);
    t += period;
  }
  return out;
}

DffSampler::DffSampler(const SamplerConfig& config)
    : config_(config), rng_(config.seed) {
  RINGENT_REQUIRE(config.aperture_jitter_ps >= 0.0,
                  "aperture jitter cannot be negative");
}

std::vector<std::uint8_t> DffSampler::sample(
    const std::vector<sim::Transition>& transitions,
    const std::vector<Time>& sample_times) {
  std::vector<std::uint8_t> bits;
  bits.reserve(sample_times.size());
  for (Time t : sample_times) {
    Time instant = t;
    if (config_.aperture_jitter_ps > 0.0) {
      instant = Time::from_ps(t.ps() +
                              rng_.normal(0.0, config_.aperture_jitter_ps));
    }
    bits.push_back(value_at(transitions, instant) ? 1 : 0);
  }
  return bits;
}

}  // namespace ringent::trng
