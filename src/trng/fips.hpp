// FIPS 140-2 statistical tests (single-block battery on 20,000 bits), plus
// a serial test. These are the acceptance tests a TRNG built on either ring
// would have to pass; the attack example shows the IRO-based generator
// failing them under supply modulation while the STR-based one keeps passing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ringent::trng {

inline constexpr std::size_t fips_block_bits = 20000;

struct TestVerdict {
  std::string name;
  bool pass = false;
  double statistic = 0.0;
  std::string detail;
};

/// Monobit: 9725 < ones < 10275.
TestVerdict fips_monobit(std::span<const std::uint8_t> bits);

/// Poker: 4-bit blocks, 2.16 < X < 46.17.
TestVerdict fips_poker(std::span<const std::uint8_t> bits);

/// Runs: counts of runs of each length 1..6+ within the FIPS intervals.
TestVerdict fips_runs(std::span<const std::uint8_t> bits);

/// Long run: no run of 26 or more equal bits.
TestVerdict fips_long_run(std::span<const std::uint8_t> bits);

struct BatteryResult {
  std::vector<TestVerdict> tests;
  bool all_pass = false;
};

/// Run the full battery on exactly fips_block_bits bits.
BatteryResult fips_battery(std::span<const std::uint8_t> bits);

/// Serial (2-bit overlapping) chi-square test; pass at 1% significance.
/// Not part of FIPS 140-2 but standard for catching correlations the
/// monobit test misses. Requires >= 1000 bits.
TestVerdict serial_test(std::span<const std::uint8_t> bits);

}  // namespace ringent::trng
