// On-line health tests for an operating entropy source (NIST SP 800-90B
// §4.4 style): the continuous checks a fielded TRNG runs on every raw bit,
// as opposed to the off-line batteries in trng/fips.hpp and trng/nist.hpp.
//
//  * Repetition Count Test (RCT): alarm when the same value repeats C times,
//    C chosen from the claimed min-entropy H so that a healthy source
//    false-alarms with probability ~2^-W per sample window.
//  * Adaptive Proportion Test (APT): alarm when one value occupies more than
//    C slots of a W-sample window.
//
// Both are cheap enough for per-sample hardware and catch the failure modes
// the paper's attack discussion worries about: a ring locking to a supply
// tone (long repeats / skewed proportions) or dying entirely (constant
// output). examples/attack_demo and the TRNG examples use them as the
// "would a fielded generator notice?" check.
#pragma once

#include <cstdint>
#include <span>

namespace ringent::trng {

/// SP 800-90B cutoff for the repetition count test: the smallest C with
/// 2^(-H (C-1)) <= 2^-alpha_log2, i.e. C = 1 + ceil(alpha_log2 / H).
std::uint32_t rct_cutoff(double min_entropy_per_bit, double alpha_log2 = 20.0);

class RepetitionCountTest {
 public:
  /// `cutoff` >= 2, e.g. from rct_cutoff().
  explicit RepetitionCountTest(std::uint32_t cutoff);

  /// Feed one bit; returns false when the alarm fires (and stays latched).
  ///
  /// Boundary convention (pinned by tests/test_health.cpp hand-counted
  /// vectors): a run of exactly `cutoff` identical samples alarms on its
  /// last sample; a run of `cutoff - 1` never alarms. This matches SP
  /// 800-90B §4.4.1, where the counter B starts at 1 on the first sample
  /// and the test fails as soon as B >= C.
  bool feed(std::uint8_t bit);

  bool alarmed() const { return alarmed_; }
  std::uint32_t current_run() const { return run_; }
  std::uint32_t cutoff() const { return cutoff_; }
  void reset();

 private:
  std::uint32_t cutoff_;
  std::uint32_t run_ = 0;
  std::uint8_t last_ = 2;  // sentinel: no sample yet
  bool alarmed_ = false;
};

/// SP 800-90B binary APT cutoff (critical binomial value at 2^-alpha_log2)
/// computed from the claimed per-bit min-entropy; conservative normal
/// approximation with continuity correction, clamped to [W/2, W].
std::uint32_t apt_cutoff(double min_entropy_per_bit, std::size_t window = 1024,
                         double alpha_log2 = 20.0);

class AdaptiveProportionTest {
 public:
  AdaptiveProportionTest(std::uint32_t cutoff, std::size_t window = 1024);

  /// Feed one bit; returns false once alarmed (latched).
  ///
  /// Boundary conventions (pinned by tests/test_health.cpp):
  ///  * A window is exactly `window` samples: the sample at index 0 becomes
  ///    the reference (count = 1) and samples 1..window-1 are compared
  ///    against it; the sample after that opens a fresh window with a new
  ///    reference.
  ///  * The alarm fires when the reference count EXCEEDS `cutoff`, i.e. at
  ///    `cutoff + 1` occurrences. SP 800-90B §4.4.2 stores C = 1 +
  ///    critbinom(W, p, 1 - alpha) and fails at count >= C; here the "+1"
  ///    lives in the strict comparison instead of the stored cutoff — the
  ///    two formulations alarm on exactly the same sample.
  ///  * After an alarm the test is latched; callers restart via reset(),
  ///    which discards the triggering bit's window entirely, so that bit is
  ///    never double-counted in the next window (the resilience layer
  ///    relies on this when it re-arms after a relock).
  bool feed(std::uint8_t bit);

  bool alarmed() const { return alarmed_; }
  /// Occurrences of the window's reference value so far (degradation
  /// policies compare this against the cutoff for an early warning).
  std::uint32_t current_count() const { return count_; }
  /// Position within the current window [0, window).
  std::size_t window_index() const { return index_; }
  std::uint32_t cutoff() const { return cutoff_; }
  void reset();

 private:
  std::uint32_t cutoff_;
  std::size_t window_;
  std::size_t index_ = 0;   // position within the current window
  std::uint8_t ref_ = 2;    // first sample of the window
  std::uint32_t count_ = 0;
  bool alarmed_ = false;
};

struct HealthReport {
  bool rct_pass = false;
  bool apt_pass = false;
  std::uint32_t rct_cutoff_used = 0;
  std::uint32_t apt_cutoff_used = 0;
  bool pass() const { return rct_pass && apt_pass; }
};

/// Run both tests over a recorded sequence with cutoffs derived from the
/// claimed min-entropy (the value an entropy-source datasheet would state).
HealthReport run_health_tests(std::span<const std::uint8_t> bits,
                              double claimed_min_entropy_per_bit);

}  // namespace ringent::trng
