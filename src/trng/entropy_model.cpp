#include "trng/entropy_model.hpp"

#include <cmath>

#include "common/require.hpp"
#include "trng/elementary.hpp"

namespace ringent::trng {

double entropy_lower_bound(double quality_factor) {
  RINGENT_REQUIRE(quality_factor >= 0.0, "negative quality factor");
  const double h = 1.0 - 4.0 / (M_PI * M_PI * std::log(2.0)) *
                             std::exp(-4.0 * M_PI * M_PI * quality_factor);
  return h < 0.0 ? 0.0 : h;
}

double entropy_lower_bound(double sigma_p_ps, double ring_period_ps,
                           Time sampling_period) {
  return entropy_lower_bound(
      quality_factor(sigma_p_ps, ring_period_ps, sampling_period));
}

Time required_sampling_period(double target_entropy, double sigma_p_ps,
                              double ring_period_ps) {
  RINGENT_REQUIRE(target_entropy > 0.0 && target_entropy < 1.0,
                  "target entropy must be in (0,1)");
  RINGENT_REQUIRE(sigma_p_ps > 0.0, "need positive jitter");
  RINGENT_REQUIRE(ring_period_ps > 0.0, "ring period must be positive");
  // Invert H(Q): Q = -ln((1-H) pi^2 ln2 / 4) / (4 pi^2),
  // then T_s = Q T^3 / sigma_p^2 (from Q = (T_s/T) sigma_p^2 / T^2).
  const double arg = (1.0 - target_entropy) * M_PI * M_PI * std::log(2.0) / 4.0;
  RINGENT_REQUIRE(arg < 1.0, "target entropy unreachable");
  const double q = -std::log(arg) / (4.0 * M_PI * M_PI);
  const double ts_ps =
      q * ring_period_ps * ring_period_ps * ring_period_ps /
      (sigma_p_ps * sigma_p_ps);
  return Time::from_ps(ts_ps);
}

}  // namespace ringent::trng
