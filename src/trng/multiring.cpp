#include "trng/multiring.hpp"

#include "common/require.hpp"

namespace ringent::trng {

std::vector<std::uint8_t> multi_ring_bits(
    const std::vector<const sim::SignalTrace*>& rings,
    const MultiRingConfig& config, std::size_t count) {
  RINGENT_REQUIRE(!rings.empty(), "need at least one ring");
  for (const auto* ring : rings) {
    RINGENT_REQUIRE(ring != nullptr && !ring->transitions().empty(),
                    "null or empty ring trace");
  }

  const std::vector<Time> instants =
      periodic_samples(config.start, config.sampling_period, count);
  std::vector<std::uint8_t> bits(count, 0);
  for (std::size_t r = 0; r < rings.size(); ++r) {
    // Each flip-flop has its own aperture-noise stream.
    SamplerConfig sampler_config = config.sampler;
    sampler_config.seed = derive_seed(config.sampler.seed, "dff", r);
    DffSampler sampler(sampler_config);
    const auto sampled = sampler.sample(rings[r]->transitions(), instants);
    for (std::size_t i = 0; i < count; ++i) bits[i] ^= sampled[i];
  }
  return bits;
}

}  // namespace ringent::trng
