// Graceful degradation for an operating entropy source.
//
// SP 800-90B's on-line tests (trng/health.hpp) answer "is the source broken
// right now?"; AIS-20/31-style certification additionally asks what the
// generator DOES about it. ResilientGenerator wraps any sampler-backed bit
// source with the RCT/APT monitors and a degradation policy state machine:
//
//          near-threshold                    alarm
//   healthy <---------> suspect   healthy/suspect ----> muted
//                                                         | backoff spent
//                                                         v
//        probation clean                            relocking (ring restart,
//   relocking ----------> healthy                    optional failover)
//        alarm during probation: strike++, backoff doubles, back to muted;
//        after max_strikes the generator latches `failed` permanently.
//
// Output bits flow only in `healthy` and `suspect`; everything else is
// muted — a fielded generator must not hand out bits it cannot vouch for.
// Every transition is recorded (for reports) and counted (sim::metrics, so
// run manifests carry the exact transition census); each generate() call is
// bracketed with a trace span. The machine is deterministic: identical
// sources and policies
// replay identical transition logs, which run_attack_resilience pins as
// golden values.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "trng/health.hpp"
#include "trng/telemetry.hpp"

namespace ringent::trng {

/// A running bit generator the resilience layer can supervise: anything that
/// produces one sampled bit at a time and supports a restart (re-lock)
/// request. core::RingBitSource adapts a simulated oscillator; tests use
/// deterministic synthetic sources.
class BitSource {
 public:
  virtual ~BitSource() = default;

  /// Produce the next raw bit of the stream.
  virtual std::uint8_t next_bit() = 0;

  /// Restart the underlying physical source (ring power-cycle / re-lock).
  /// `attempt` numbers the restarts so implementations can derive fresh
  /// noise streams deterministically. Default: no-op.
  virtual void restart(std::uint64_t attempt) { (void)attempt; }

  virtual std::string_view describe() const { return "bit-source"; }
};

enum class DegradationState : std::uint8_t {
  healthy,    ///< tests clean, bits flow
  suspect,    ///< near-threshold, bits still flow (early warning)
  muted,      ///< alarmed: output suppressed, waiting out the backoff
  relocking,  ///< restarted, on probation: output suppressed until clean
  failed,     ///< strike budget spent: permanently latched off
};

const char* to_string(DegradationState state);

struct DegradationPolicy {
  /// Claimed per-bit min-entropy; drives the RCT/APT cutoffs exactly as a
  /// datasheet claim would (rct_cutoff / apt_cutoff in trng/health.hpp).
  double claimed_min_entropy = 0.10;
  std::size_t apt_window = 1024;
  double alpha_log2 = 20.0;

  /// healthy -> suspect when an RCT run or APT count exceeds this fraction
  /// of its cutoff (and back once it recedes). 1.0 disables the state.
  double suspect_fraction = 0.6;

  /// Raw bits to wait muted before the first re-lock attempt; doubles with
  /// every strike (exponential backoff).
  std::uint64_t backoff_bits = 256;

  /// Clean raw bits required on probation before returning to healthy.
  std::uint64_t probation_bits = 1024;

  /// Alarms tolerated before latching `failed`.
  std::uint32_t max_strikes = 3;

  /// Fail over to the backup source (when one is wired) starting with this
  /// strike's re-lock; 0 disables failover.
  std::uint32_t failover_after_strikes = 2;

  /// Serialized form: every field, flat. from_json fills absent keys with
  /// the defaults above, rejects unknown keys, and range-checks
  /// (claimed_min_entropy in (0, 1], apt_window >= 2, alpha_log2 > 0).
  Json to_json() const;
  static DegradationPolicy from_json(const Json& json);
};

/// Backoff for the given strike count: `base` doubled per strike beyond the
/// first, saturating at UINT64_MAX instead of wrapping. A wrap here would
/// silently un-mute an alarmed generator after a near-zero backoff — the
/// exact failure the muted state exists to prevent — so saturation is the
/// only safe behavior for large `base` or strike counts >= 65.
std::uint64_t backoff_for_strike(std::uint64_t base, std::uint32_t strike);

/// One recorded state-machine edge.
struct StateTransition {
  DegradationState from = DegradationState::healthy;
  DegradationState to = DegradationState::healthy;
  std::uint64_t at_bit = 0;  ///< raw-bit index at which the edge fired
  std::string reason;        ///< "rct-alarm", "apt-alarm", "backoff-spent",
                             ///< "probation-clean", "near-threshold", ...
};

struct ResilientStats {
  std::uint64_t bits_in = 0;      ///< raw bits consumed from the sources
  std::uint64_t bits_out = 0;     ///< bits emitted to the consumer
  std::uint64_t bits_muted = 0;   ///< raw bits suppressed
  std::uint64_t rct_alarms = 0;
  std::uint64_t apt_alarms = 0;
  std::uint64_t relock_attempts = 0;
  std::uint64_t failovers = 0;
  std::uint32_t strikes = 0;
  /// Raw-bit index of the first alarm (detection latency); bits_in when no
  /// alarm fired.
  bool alarmed = false;
  std::uint64_t first_alarm_bit = 0;
  /// Raw-bit index of the first return to healthy after the first alarm;
  /// only meaningful when `recovered`.
  bool recovered = false;
  std::uint64_t recovered_bit = 0;
};

class ResilientGenerator {
 public:
  /// `primary` must outlive the generator; `backup` may be null (failover
  /// disabled). Both sources must be distinct objects.
  ResilientGenerator(BitSource& primary, BitSource* backup,
                     const DegradationPolicy& policy = {});

  /// Pull `raw_bits` bits through the monitors; returns the emitted
  /// (non-muted) bits, possibly fewer — and stops early once `failed`.
  std::vector<std::uint8_t> generate(std::size_t raw_bits);

  /// Byte-emission hook for the service layer: pull up to `max_raw_bits`
  /// raw bits through the monitors and pack the emitted bits LSB-first into
  /// `out`. Returns the number of complete bytes written (<= out.size());
  /// stops early when `out` is full, the raw budget is spent, or the
  /// generator latches `failed`. Leftover bits (fewer than 8) are carried in
  /// the generator and prepended to the next call, so the byte stream is
  /// identical regardless of call-boundary chunking.
  std::size_t fill_bytes(std::span<std::uint8_t> out,
                         std::size_t max_raw_bits);

  /// Bits currently carried toward the next byte (0..7); test hook.
  std::size_t pending_bits() const { return carry_count_; }

  DegradationState state() const { return state_; }
  const ResilientStats& stats() const { return stats_; }
  const std::vector<StateTransition>& transitions() const {
    return transitions_;
  }
  const DegradationPolicy& policy() const { return policy_; }
  bool using_backup() const { return active_ == backup_; }

  std::uint32_t rct_cutoff_used() const { return rct_.cutoff(); }
  std::uint32_t apt_cutoff_used() const { return apt_.cutoff(); }

  /// Attach a streaming-entropy observer fed with every raw bit (including
  /// muted ones — the observables describe the source, not the output).
  /// `stream` must outlive the generator; nullptr detaches. Independent of
  /// this, the generator records RCT run lengths, APT window counts, bits
  /// between alarms and relock durations into the sim/telemetry histograms
  /// whenever that collection is on.
  void attach_telemetry(telemetry::StreamingEntropy* stream) {
    telemetry_ = stream;
  }

 private:
  void step(std::uint8_t bit, std::vector<std::uint8_t>& out);
  void transition(DegradationState to, std::string reason);
  void on_alarm(const char* reason);
  void begin_relock();
  bool near_threshold() const;
  void reset_tests();

  DegradationPolicy policy_;
  BitSource* primary_;
  BitSource* backup_;
  BitSource* active_;
  RepetitionCountTest rct_;
  AdaptiveProportionTest apt_;
  DegradationState state_ = DegradationState::healthy;
  ResilientStats stats_;
  std::vector<StateTransition> transitions_;
  std::uint64_t backoff_remaining_ = 0;
  std::uint64_t probation_remaining_ = 0;
  // fill_bytes() partial-byte accumulator (LSB-first).
  std::uint8_t carry_byte_ = 0;
  std::size_t carry_count_ = 0;
  telemetry::StreamingEntropy* telemetry_ = nullptr;
  // Histogram-telemetry trackers (maintained only while collection is on).
  std::uint8_t tele_prev_bit_ = 2;
  std::uint64_t tele_run_ = 0;
  std::uint64_t last_alarm_bit_ = 0;
  std::uint64_t outage_start_bit_ = 0;
};

}  // namespace ringent::trng
