#include "trng/health.hpp"

#include <cmath>

#include "common/math.hpp"
#include "common/require.hpp"

namespace ringent::trng {

std::uint32_t rct_cutoff(double min_entropy_per_bit, double alpha_log2) {
  RINGENT_REQUIRE(min_entropy_per_bit > 0.0 && min_entropy_per_bit <= 1.0,
                  "min-entropy per bit must be in (0, 1]");
  RINGENT_REQUIRE(alpha_log2 > 0.0, "alpha exponent must be positive");
  return 1 + static_cast<std::uint32_t>(
                 std::ceil(alpha_log2 / min_entropy_per_bit));
}

RepetitionCountTest::RepetitionCountTest(std::uint32_t cutoff)
    : cutoff_(cutoff) {
  RINGENT_REQUIRE(cutoff >= 2, "RCT cutoff must be >= 2");
}

bool RepetitionCountTest::feed(std::uint8_t bit) {
  RINGENT_REQUIRE(bit <= 1, "bits must be 0 or 1");
  if (alarmed_) return false;
  if (bit == last_) {
    ++run_;
  } else {
    last_ = bit;
    run_ = 1;
  }
  if (run_ >= cutoff_) alarmed_ = true;
  return !alarmed_;
}

void RepetitionCountTest::reset() {
  run_ = 0;
  last_ = 2;
  alarmed_ = false;
}

std::uint32_t apt_cutoff(double min_entropy_per_bit, std::size_t window,
                         double alpha_log2) {
  RINGENT_REQUIRE(min_entropy_per_bit > 0.0 && min_entropy_per_bit <= 1.0,
                  "min-entropy per bit must be in (0, 1]");
  RINGENT_REQUIRE(window >= 64, "window must be >= 64");
  // Most-probable-value probability implied by the claim.
  const double p = std::pow(2.0, -min_entropy_per_bit);
  const double n = static_cast<double>(window);
  // One-sided normal tail at 2^-alpha: z such that Q(z) = 2^-alpha.
  // 2^-20 ~ 9.5e-7 -> z ~ 4.76; solve generically via bisection on erfc.
  double lo = 0.0, hi = 12.0;
  const double target = std::pow(2.0, -alpha_log2);
  for (int it = 0; it < 80; ++it) {
    const double mid = (lo + hi) / 2.0;
    if (0.5 * std::erfc(mid / std::sqrt(2.0)) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double z = (lo + hi) / 2.0;
  const double mean = n * p;
  const double sd = std::sqrt(n * p * (1.0 - p));
  double cutoff = std::ceil(mean + z * sd + 0.5);
  cutoff = clampd(cutoff, n / 2.0, n);
  return static_cast<std::uint32_t>(cutoff);
}

AdaptiveProportionTest::AdaptiveProportionTest(std::uint32_t cutoff,
                                               std::size_t window)
    : cutoff_(cutoff), window_(window) {
  RINGENT_REQUIRE(window >= 64, "window must be >= 64");
  RINGENT_REQUIRE(cutoff >= window / 2 && cutoff <= window,
                  "cutoff must be in [window/2, window]");
}

bool AdaptiveProportionTest::feed(std::uint8_t bit) {
  RINGENT_REQUIRE(bit <= 1, "bits must be 0 or 1");
  if (alarmed_) return false;
  if (index_ == 0) {
    ref_ = bit;
    count_ = 1;
    index_ = 1;
    return true;
  }
  if (bit == ref_) ++count_;
  if (count_ > cutoff_) {
    alarmed_ = true;
    return false;
  }
  if (++index_ >= window_) index_ = 0;  // start a fresh window
  return true;
}

void AdaptiveProportionTest::reset() {
  index_ = 0;
  ref_ = 2;
  count_ = 0;
  alarmed_ = false;
}

HealthReport run_health_tests(std::span<const std::uint8_t> bits,
                              double claimed_min_entropy_per_bit) {
  HealthReport report;
  report.rct_cutoff_used = rct_cutoff(claimed_min_entropy_per_bit);
  report.apt_cutoff_used = apt_cutoff(claimed_min_entropy_per_bit);
  RepetitionCountTest rct(report.rct_cutoff_used);
  AdaptiveProportionTest apt(report.apt_cutoff_used);
  for (std::uint8_t b : bits) {
    rct.feed(b);
    apt.feed(b);
  }
  report.rct_pass = !rct.alarmed();
  report.apt_pass = !apt.alarmed();
  return report;
}

}  // namespace ringent::trng
