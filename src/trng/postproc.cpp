#include "trng/postproc.hpp"

#include <cmath>

#include "common/require.hpp"

namespace ringent::trng {

std::vector<std::uint8_t> von_neumann(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / 4);
  for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
    RINGENT_REQUIRE(bits[i] <= 1 && bits[i + 1] <= 1, "bits must be 0 or 1");
    if (bits[i] != bits[i + 1]) out.push_back(bits[i]);
  }
  return out;
}

std::vector<std::uint8_t> xor_decimate(std::span<const std::uint8_t> bits,
                                       std::size_t factor) {
  RINGENT_REQUIRE(factor >= 1, "decimation factor must be >= 1");
  std::vector<std::uint8_t> out;
  out.reserve(bits.size() / factor);
  std::uint8_t acc = 0;
  std::size_t in_group = 0;
  for (std::uint8_t b : bits) {
    RINGENT_REQUIRE(b <= 1, "bits must be 0 or 1");
    acc ^= b;
    if (++in_group == factor) {
      out.push_back(acc);
      acc = 0;
      in_group = 0;
    }
  }
  return out;
}

std::vector<std::uint8_t> peres(std::span<const std::uint8_t> bits,
                                unsigned depth) {
  RINGENT_REQUIRE(depth >= 1 && depth <= 16, "depth must be in [1,16]");
  std::vector<std::uint8_t> out;
  // First pass: the plain von Neumann stream, plus the two side streams the
  // plain corrector throws away.
  std::vector<std::uint8_t> xors;    // a XOR b of every pair
  std::vector<std::uint8_t> equals;  // value of every discarded equal pair
  xors.reserve(bits.size() / 2);
  for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
    RINGENT_REQUIRE(bits[i] <= 1 && bits[i + 1] <= 1, "bits must be 0 or 1");
    const std::uint8_t x = bits[i] ^ bits[i + 1];
    xors.push_back(x);
    if (x) {
      out.push_back(bits[i]);
    } else {
      equals.push_back(bits[i]);
    }
  }
  if (depth > 1) {
    // The XOR stream and the equal-pair stream still carry entropy; extract
    // it recursively (Peres 1992).
    const auto from_xors = peres(xors, depth - 1);
    out.insert(out.end(), from_xors.begin(), from_xors.end());
    const auto from_equals = peres(equals, depth - 1);
    out.insert(out.end(), from_equals.begin(), from_equals.end());
  }
  return out;
}

double von_neumann_rate(double p) {
  RINGENT_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  return p * (1.0 - p);
}

double xor_bias(double p, std::size_t k) {
  RINGENT_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  RINGENT_REQUIRE(k >= 1, "k must be >= 1");
  return 0.5 + std::pow(2.0, static_cast<double>(k) - 1.0) *
                   std::pow(p - 0.5, static_cast<double>(k));
}

}  // namespace ringent::trng
