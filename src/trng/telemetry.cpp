#include "trng/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <utility>

#include "common/require.hpp"

namespace ringent::trng::telemetry {

StreamingEntropy::StreamingEntropy(StreamingEntropyConfig config)
    : config_(config) {
  RINGENT_REQUIRE(config_.window >= 8, "window must cover >= 8 bits");
  RINGENT_REQUIRE(config_.max_lag >= 1 && config_.max_lag < config_.window,
                  "lags must fit inside the window");
  window_.assign(config_.window, 0);
}

void StreamingEntropy::feed(std::uint8_t bit) {
  RINGENT_REQUIRE(bit <= 1, "bits must be 0 or 1");
  ++total_bits_;
  total_ones_ += bit;
  if (prev_bit_ <= 1) ++transitions_[prev_bit_][bit];
  prev_bit_ = bit;

  if (filled_ == config_.window) {
    window_ones_ -= window_[pos_];  // evict the oldest bit
  } else {
    ++filled_;
  }
  window_[pos_] = bit;
  window_ones_ += bit;
  pos_ = (pos_ + 1) % config_.window;
}

double StreamingEntropy::bias() const {
  if (total_bits_ == 0) return 0.0;
  return static_cast<double>(total_ones_) / static_cast<double>(total_bits_);
}

double StreamingEntropy::window_bias() const {
  if (filled_ == 0) return 0.0;
  return static_cast<double>(window_ones_) / static_cast<double>(filled_);
}

std::vector<double> StreamingEntropy::window_autocorrelation() const {
  std::vector<double> out(config_.max_lag, 0.0);
  if (filled_ < 2) return out;
  // Chronological order: the oldest bit sits at pos_ when the buffer is
  // full, at 0 otherwise.
  const std::size_t n = filled_;
  const std::size_t start = filled_ == config_.window ? pos_ : 0;
  const auto at = [&](std::size_t i) -> double {
    return static_cast<double>(window_[(start + i) % config_.window]);
  };
  const double mean =
      static_cast<double>(window_ones_) / static_cast<double>(n);
  double variance = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = at(i) - mean;
    variance += d * d;
  }
  if (variance <= 0.0) return out;  // constant window: undefined, report 0
  for (std::size_t lag = 1; lag <= config_.max_lag; ++lag) {
    if (lag >= n) break;
    double acc = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      acc += (at(i) - mean) * (at(i + lag) - mean);
    }
    out[lag - 1] = acc / variance;
  }
  return out;
}

double StreamingEntropy::markov_min_entropy() const {
  const double from0 =
      static_cast<double>(transitions_[0][0] + transitions_[0][1]);
  const double from1 =
      static_cast<double>(transitions_[1][0] + transitions_[1][1]);
  if (from0 + from1 == 0.0) return 0.0;  // no transitions observed yet
  // Missing rows (a stream that never visited one state) contribute no
  // cycle; the asymptotic rate is then set by the visited state's self-loop.
  const double p00 =
      from0 > 0.0 ? static_cast<double>(transitions_[0][0]) / from0 : 0.0;
  const double p01 =
      from0 > 0.0 ? static_cast<double>(transitions_[0][1]) / from0 : 0.0;
  const double p10 =
      from1 > 0.0 ? static_cast<double>(transitions_[1][0]) / from1 : 0.0;
  const double p11 =
      from1 > 0.0 ? static_cast<double>(transitions_[1][1]) / from1 : 0.0;
  // Recurrent structure is the self-loops (p00, p11) and the alternating
  // cycle sqrt(p01*p10). On constant and near-constant windows the cycle
  // term vanishes exactly (p01*p10 == 0) and the asymptotic rate is set by
  // the self-loops alone; when not even a self-loop has been observed (a
  // two-bit "01"/"10" history) there is no recurrent evidence at all, and
  // an online health monitor must stay conservative: report 0. Note the
  // offline §6.3.3 battery estimator (analysis/entropy90b.hpp) scores the
  // same degenerate history as FULL entropy — that convention is right for
  // an offline bound, wrong for a gate that mutes output.
  const double cycle = p01 * p10;
  const double p_max = cycle > 0.0 ? std::max({p00, p11, std::sqrt(cycle)})
                                   : std::max(p00, p11);
  if (p_max <= 0.0) return 0.0;  // no recurrent transition observed
  const double h = -std::log2(p_max);
  return std::min(1.0, std::max(0.0, h));
}

StreamStats StreamStats::capture(std::string label,
                                 const StreamingEntropy& s) {
  StreamStats out;
  out.label = std::move(label);
  out.bits = s.bits();
  out.bias = s.bias();
  out.window_bias = s.window_bias();
  out.autocorrelation = s.window_autocorrelation();
  out.markov_min_entropy = s.markov_min_entropy();
  return out;
}

Json StreamStats::to_json() const {
  Json root = Json::object();
  root.set("label", label);
  root.set("bits", bits);
  root.set("bias", bias);
  root.set("window_bias", window_bias);
  Json lags = Json::array();
  for (double r : autocorrelation) lags.push_back(r);
  root.set("autocorrelation", std::move(lags));
  root.set("markov_min_entropy", markov_min_entropy);
  return root;
}

StreamStats StreamStats::from_json(const Json& json) {
  RINGENT_REQUIRE(json.is_object(), "stream stats must be a JSON object");
  StreamStats out;
  out.label = json.at("label").as_string();
  const std::int64_t bits = json.at("bits").as_integer();
  RINGENT_REQUIRE(bits >= 0, "stream bit count must be non-negative");
  out.bits = static_cast<std::uint64_t>(bits);
  out.bias = json.at("bias").as_number();
  out.window_bias = json.at("window_bias").as_number();
  const Json& lags = json.at("autocorrelation");
  RINGENT_REQUIRE(lags.is_array(), "autocorrelation must be an array");
  for (std::size_t i = 0; i < lags.size(); ++i) {
    out.autocorrelation.push_back(lags.at(i).as_number());
  }
  out.markov_min_entropy = json.at("markov_min_entropy").as_number();
  return out;
}

namespace {

std::mutex published_mutex;
std::vector<StreamStats>& published_slot() {
  static std::vector<StreamStats>* slot = new std::vector<StreamStats>();
  return *slot;
}

}  // namespace

void publish(StreamStats stats) {
  std::lock_guard<std::mutex> lock(published_mutex);
  published_slot().push_back(std::move(stats));
}

std::vector<StreamStats> take_published() {
  std::vector<StreamStats> out;
  {
    std::lock_guard<std::mutex> lock(published_mutex);
    out.swap(published_slot());
  }
  std::sort(out.begin(), out.end(),
            [](const StreamStats& a, const StreamStats& b) {
              return a.label < b.label;
            });
  return out;
}

}  // namespace ringent::trng::telemetry
