// Multi-phase STR TRNG — the design the paper's conclusion announces as
// future work ("exploiting the STR properties for designing a robust TRNG",
// later published by the same group).
//
// An L-stage evenly-spaced STR provides 2L equidistant switching events per
// period: phase resolution dPhi = T/(2L), *independent of L in time* because
// T stays roughly constant while the ruler gets finer with every added
// stage. One reference clock latches ALL stage outputs simultaneously; the
// snapshot is a rotated token pattern whose boundary position digitizes the
// ring phase to dPhi. Jitter makes the boundary cell uncertain, so
//
//   * the XOR of all sampled stages flips with the uncertain boundary cell
//     (one raw bit per reference edge), and
//   * the decoded boundary index is a dPhi-resolution phase ruler readout
//     (useful for diagnostics and multi-bit extraction).
//
// The paper's Fig. 12 result is what makes this work: per-stage jitter is
// length-independent, so adding stages buys resolution without adding noise
// floor — each stage is "an independent entropy source". The ext_phase_trng
// bench shows entropy per raw bit rising with L at a fixed sampling rate.
//
// PHASE-COVERAGE CONDITION: stage i fires at phase i*NT*T/(2L) mod T/2, so
// the firing instants cover L distinct equidistant phases iff
// gcd(L, NT) = 1; with gcd = g only L/g phases exist. In particular the
// paper's NT = NB initialization (g = NT) collapses to TWO firing instants
// per half period — the snapshot parity then barely moves and the generator
// degenerates (the bench demonstrates this failure mode). Real multi-phase
// STR TRNGs pick L odd and NT even, coprime, near the ideal ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/probe.hpp"
#include "trng/sampler.hpp"

namespace ringent::trng {

struct PhaseTrngConfig {
  Time sampling_period = Time::from_ns(250.0);
  Time start = Time::zero();
  SamplerConfig sampler{};
};

struct PhaseSnapshot {
  std::vector<std::uint8_t> cells;  ///< sampled C_i, one per stage
  std::uint8_t xor_bit = 0;         ///< parity of the snapshot
  /// Index of the first token boundary (cell where C_i != C_{i-1},
  /// cyclically). Note this leading-boundary index only ranges over one
  /// token spacing (ceil(L/NT) cells) — it digitizes the phase *within* a
  /// spacing; the XOR bit is the generator's output.
  std::size_t boundary = 0;
  std::size_t token_count = 0;  ///< boundaries found (sanity: ring NT)
};

struct PhaseTrngResult {
  std::vector<std::uint8_t> bits;         ///< one XOR bit per reference edge
  std::vector<std::size_t> boundaries;    ///< phase readouts per edge
  double phase_resolution_ps = 0.0;       ///< T / (2L)
  std::size_t stages = 0;
};

/// Latch a single multi-stage snapshot at time t.
PhaseSnapshot snapshot_at(const std::vector<sim::SignalTrace>& stage_traces,
                          Time t);

/// Run the generator: `count` reference edges against the recorded stage
/// traces of an STR built with trace_all_stages. `mean_period_ps` is the
/// ring's measured output period (for the resolution bookkeeping).
PhaseTrngResult phase_trng_bits(
    const std::vector<sim::SignalTrace>& stage_traces,
    const PhaseTrngConfig& config, std::size_t count, double mean_period_ps);

}  // namespace ringent::trng
