#include "trng/phase_trng.hpp"

#include "common/require.hpp"

namespace ringent::trng {

PhaseSnapshot snapshot_at(const std::vector<sim::SignalTrace>& stage_traces,
                          Time t) {
  RINGENT_REQUIRE(stage_traces.size() >= 3, "need at least 3 stage traces");
  PhaseSnapshot snap;
  snap.cells.reserve(stage_traces.size());
  for (const auto& trace : stage_traces) {
    snap.cells.push_back(value_at(trace.transitions(), t) ? 1 : 0);
  }
  const std::size_t n = snap.cells.size();
  bool found = false;
  for (std::size_t i = 0; i < n; ++i) {
    snap.xor_bit ^= snap.cells[i];
    if (snap.cells[i] != snap.cells[(i + n - 1) % n]) {
      ++snap.token_count;
      if (!found) {
        snap.boundary = i;
        found = true;
      }
    }
  }
  return snap;
}

PhaseTrngResult phase_trng_bits(
    const std::vector<sim::SignalTrace>& stage_traces,
    const PhaseTrngConfig& config, std::size_t count,
    double mean_period_ps) {
  RINGENT_REQUIRE(mean_period_ps > 0.0, "period must be positive");
  RINGENT_REQUIRE(count >= 1, "need at least one sample");
  RINGENT_REQUIRE(stage_traces.size() >= 3, "need at least 3 stage traces");

  // Aperture noise: jitter each latch instant (all stages share the clock
  // path, so one draw per instant, like a real capture register).
  Xoshiro256 aperture(config.sampler.seed);
  const std::vector<Time> instants =
      periodic_samples(config.start, config.sampling_period, count);

  PhaseTrngResult out;
  out.stages = stage_traces.size();
  out.phase_resolution_ps =
      mean_period_ps / (2.0 * static_cast<double>(stage_traces.size()));
  out.bits.reserve(count);
  out.boundaries.reserve(count);
  for (Time t : instants) {
    Time instant = t;
    if (config.sampler.aperture_jitter_ps > 0.0) {
      instant = Time::from_ps(
          t.ps() + aperture.normal(0.0, config.sampler.aperture_jitter_ps));
    }
    const PhaseSnapshot snap = snapshot_at(stage_traces, instant);
    out.bits.push_back(snap.xor_bit);
    out.boundaries.push_back(snap.boundary);
  }
  return out;
}

}  // namespace ringent::trng
