#include "trng/resilient.hpp"

#include <cmath>
#include <utility>

#include "common/require.hpp"
#include "sim/metrics.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace ringent::trng {

namespace metrics = sim::metrics;
namespace histo = sim::telemetry;

std::uint64_t backoff_for_strike(std::uint64_t base, std::uint32_t strike) {
  const std::uint32_t shift = strike > 0 ? strike - 1 : 0;
  // `base << shift` is UB for shift >= 64 and wraps (to as little as zero)
  // whenever base has a set bit in the top `shift` positions; either way a
  // muted generator would come back almost immediately. Saturate instead.
  if (shift >= 64) return UINT64_MAX;
  if (base > (UINT64_MAX >> shift)) return UINT64_MAX;
  return base << shift;
}

Json DegradationPolicy::to_json() const {
  Json json = Json::object();
  json.set("claimed_min_entropy", claimed_min_entropy);
  json.set("apt_window", static_cast<std::uint64_t>(apt_window));
  json.set("alpha_log2", alpha_log2);
  json.set("suspect_fraction", suspect_fraction);
  json.set("backoff_bits", backoff_bits);
  json.set("probation_bits", probation_bits);
  json.set("max_strikes", max_strikes);
  json.set("failover_after_strikes", failover_after_strikes);
  return json;
}

DegradationPolicy DegradationPolicy::from_json(const Json& json) {
  if (!json.is_object()) {
    throw Error("degradation policy must be a JSON object");
  }
  const auto unsigned_field = [](const Json& value, const char* what) {
    const std::int64_t v = value.as_integer();
    if (v < 0) {
      throw Error(std::string("policy field '") + what +
                  "' must be non-negative");
    }
    return static_cast<std::uint64_t>(v);
  };
  DegradationPolicy policy;
  for (const auto& [key, value] : json.items()) {
    if (key == "claimed_min_entropy") {
      policy.claimed_min_entropy = value.as_number();
    } else if (key == "apt_window") {
      policy.apt_window =
          static_cast<std::size_t>(unsigned_field(value, "apt_window"));
    } else if (key == "alpha_log2") {
      policy.alpha_log2 = value.as_number();
    } else if (key == "suspect_fraction") {
      policy.suspect_fraction = value.as_number();
    } else if (key == "backoff_bits") {
      policy.backoff_bits = unsigned_field(value, "backoff_bits");
    } else if (key == "probation_bits") {
      policy.probation_bits = unsigned_field(value, "probation_bits");
    } else if (key == "max_strikes") {
      const std::uint64_t v = unsigned_field(value, "max_strikes");
      if (v > UINT32_MAX) throw Error("max_strikes out of range");
      policy.max_strikes = static_cast<std::uint32_t>(v);
    } else if (key == "failover_after_strikes") {
      const std::uint64_t v = unsigned_field(value, "failover_after_strikes");
      if (v > UINT32_MAX) throw Error("failover_after_strikes out of range");
      policy.failover_after_strikes = static_cast<std::uint32_t>(v);
    } else {
      throw Error("unknown degradation policy key \"" + key + "\"");
    }
  }
  if (!(policy.claimed_min_entropy > 0.0 &&
        policy.claimed_min_entropy <= 1.0)) {
    throw Error("claimed_min_entropy must be in (0, 1]");
  }
  if (policy.apt_window < 2) throw Error("apt_window must be at least 2");
  if (!(policy.alpha_log2 > 0.0)) throw Error("alpha_log2 must be positive");
  if (!(policy.suspect_fraction >= 0.0 && policy.suspect_fraction <= 1.0)) {
    throw Error("suspect_fraction must be in [0, 1]");
  }
  return policy;
}

const char* to_string(DegradationState state) {
  switch (state) {
    case DegradationState::healthy: return "healthy";
    case DegradationState::suspect: return "suspect";
    case DegradationState::muted: return "muted";
    case DegradationState::relocking: return "relocking";
    case DegradationState::failed: return "failed";
  }
  return "?";
}

ResilientGenerator::ResilientGenerator(BitSource& primary, BitSource* backup,
                                       const DegradationPolicy& policy)
    : policy_(policy),
      primary_(&primary),
      backup_(backup),
      active_(&primary),
      rct_(rct_cutoff(policy.claimed_min_entropy, policy.alpha_log2)),
      apt_(apt_cutoff(policy.claimed_min_entropy, policy.apt_window,
                      policy.alpha_log2),
           policy.apt_window) {
  RINGENT_REQUIRE(policy.claimed_min_entropy > 0.0 &&
                      policy.claimed_min_entropy <= 1.0,
                  "claimed min-entropy must be in (0, 1]");
  RINGENT_REQUIRE(policy.backoff_bits > 0, "backoff must cover >= 1 bit");
  RINGENT_REQUIRE(policy.max_strikes > 0, "need at least one strike");
  RINGENT_REQUIRE(backup_ != primary_, "backup must be a distinct source");
}

std::vector<std::uint8_t> ResilientGenerator::generate(std::size_t raw_bits) {
  sim::trace::Span span("resilient-generate", "axis");
  std::vector<std::uint8_t> out;
  out.reserve(raw_bits);
  const std::uint64_t muted_before = stats_.bits_muted;
  for (std::size_t i = 0; i < raw_bits; ++i) {
    if (state_ == DegradationState::failed) break;
    step(active_->next_bit(), out);
  }
  metrics::bump(metrics::Counter::health_bits_muted,
                stats_.bits_muted - muted_before);
  return out;
}

std::size_t ResilientGenerator::fill_bytes(std::span<std::uint8_t> out,
                                           std::size_t max_raw_bits) {
  sim::trace::Span span("resilient-fill-bytes", "axis");
  std::vector<std::uint8_t> bits;
  bits.reserve(64);
  const std::uint64_t muted_before = stats_.bits_muted;
  std::size_t written = 0;
  std::size_t raw_used = 0;
  while (written < out.size() && raw_used < max_raw_bits &&
         state_ != DegradationState::failed) {
    bits.clear();
    // Pull a small batch, never more raw bits than the output has room for
    // as emitted bits (step() emits at most one bit per raw bit), so no
    // emitted bit is ever dropped. The carry accumulator makes the packing
    // independent of the batch size.
    const std::size_t room_bits = (out.size() - written) * 8 - carry_count_;
    const std::size_t batch = std::min(
        std::min<std::size_t>(64, max_raw_bits - raw_used), room_bits);
    for (std::size_t i = 0; i < batch; ++i) {
      if (state_ == DegradationState::failed) break;
      step(active_->next_bit(), bits);
      ++raw_used;
    }
    for (const std::uint8_t bit : bits) {
      carry_byte_ |= static_cast<std::uint8_t>((bit & 1u) << carry_count_);
      if (++carry_count_ == 8) {
        out[written++] = carry_byte_;
        carry_byte_ = 0;
        carry_count_ = 0;
      }
    }
  }
  metrics::bump(metrics::Counter::health_bits_muted,
                stats_.bits_muted - muted_before);
  return written;
}

void ResilientGenerator::step(std::uint8_t bit,
                              std::vector<std::uint8_t>& out) {
  ++stats_.bits_in;
  if (telemetry_ != nullptr) telemetry_->feed(bit);
  if (histo::enabled()) {
    // Completed same-bit run lengths of the raw stream (muted bits
    // included: the histogram describes the source, not the monitors).
    if (bit == tele_prev_bit_) {
      ++tele_run_;
    } else {
      if (tele_prev_bit_ <= 1) {
        histo::record(histo::Histogram::rct_run_length, tele_run_);
      }
      tele_prev_bit_ = bit;
      tele_run_ = 1;
    }
  }
  switch (state_) {
    case DegradationState::healthy:
    case DegradationState::suspect: {
      const bool rct_ok = rct_.feed(bit);
      const bool apt_ok = apt_.feed(bit);
      if (!rct_ok || !apt_ok) {
        ++stats_.bits_muted;  // the alarming bit itself is never emitted
        on_alarm(!rct_ok ? "rct-alarm" : "apt-alarm");
        if (!rct_ok) {
          ++stats_.rct_alarms;
          metrics::bump(metrics::Counter::health_rct_alarms);
        }
        if (!apt_ok) {
          ++stats_.apt_alarms;
          metrics::bump(metrics::Counter::health_apt_alarms);
        }
        return;
      }
      if (histo::enabled() && apt_.window_index() == 0) {
        // index_ just wrapped: current_count() is the completed window's.
        histo::record(histo::Histogram::apt_window_ones, apt_.current_count());
      }
      out.push_back(bit);
      ++stats_.bits_out;
      const bool near = near_threshold();
      if (near && state_ == DegradationState::healthy) {
        transition(DegradationState::suspect, "near-threshold");
      } else if (!near && state_ == DegradationState::suspect) {
        transition(DegradationState::healthy, "margin-restored");
      }
      return;
    }
    case DegradationState::muted: {
      // Tests are latched from the alarm; bits are burned, not inspected.
      ++stats_.bits_muted;
      if (backoff_remaining_ > 0) --backoff_remaining_;
      if (backoff_remaining_ == 0) begin_relock();
      return;
    }
    case DegradationState::relocking: {
      ++stats_.bits_muted;
      const bool rct_ok = rct_.feed(bit);
      const bool apt_ok = apt_.feed(bit);
      if (!rct_ok || !apt_ok) {
        on_alarm(!rct_ok ? "rct-alarm" : "apt-alarm");
        if (!rct_ok) {
          ++stats_.rct_alarms;
          metrics::bump(metrics::Counter::health_rct_alarms);
        }
        if (!apt_ok) {
          ++stats_.apt_alarms;
          metrics::bump(metrics::Counter::health_apt_alarms);
        }
        return;
      }
      if (histo::enabled() && apt_.window_index() == 0) {
        histo::record(histo::Histogram::apt_window_ones, apt_.current_count());
      }
      if (probation_remaining_ > 0) --probation_remaining_;
      if (probation_remaining_ == 0) {
        histo::record(histo::Histogram::relock_duration_bits,
                      stats_.bits_in - outage_start_bit_);
        transition(DegradationState::healthy, "probation-clean");
        if (stats_.alarmed && !stats_.recovered) {
          stats_.recovered = true;
          stats_.recovered_bit = stats_.bits_in;
        }
      }
      return;
    }
    case DegradationState::failed:
      ++stats_.bits_muted;
      return;
  }
}

void ResilientGenerator::on_alarm(const char* reason) {
  // First interval measures from stream start — detection latency.
  histo::record(histo::Histogram::bits_between_alarms,
                stats_.bits_in - last_alarm_bit_);
  last_alarm_bit_ = stats_.bits_in;
  outage_start_bit_ = stats_.bits_in;
  if (!stats_.alarmed) {
    stats_.alarmed = true;
    stats_.first_alarm_bit = stats_.bits_in;
  }
  ++stats_.strikes;
  if (stats_.strikes >= policy_.max_strikes) {
    transition(DegradationState::failed, reason);
    metrics::bump(metrics::Counter::health_failures);
    return;
  }
  backoff_remaining_ = backoff_for_strike(policy_.backoff_bits,
                                          stats_.strikes);
  transition(DegradationState::muted, reason);
}

void ResilientGenerator::begin_relock() {
  ++stats_.relock_attempts;
  metrics::bump(metrics::Counter::health_relock_attempts);
  if (backup_ != nullptr && policy_.failover_after_strikes > 0 &&
      stats_.strikes >= policy_.failover_after_strikes &&
      active_ != backup_) {
    active_ = backup_;
    ++stats_.failovers;
    metrics::bump(metrics::Counter::health_failovers);
  }
  active_->restart(stats_.relock_attempts);
  reset_tests();
  probation_remaining_ = policy_.probation_bits;
  transition(DegradationState::relocking,
             using_backup() ? "backoff-spent/failover" : "backoff-spent");
}

bool ResilientGenerator::near_threshold() const {
  if (policy_.suspect_fraction >= 1.0) return false;
  const double rct_level = policy_.suspect_fraction * rct_.cutoff();
  const double apt_level = policy_.suspect_fraction * apt_.cutoff();
  return rct_.current_run() >= rct_level || apt_.current_count() >= apt_level;
}

void ResilientGenerator::reset_tests() {
  rct_.reset();
  apt_.reset();
}

void ResilientGenerator::transition(DegradationState to, std::string reason) {
  StateTransition edge;
  edge.from = state_;
  edge.to = to;
  edge.at_bit = stats_.bits_in;
  edge.reason = std::move(reason);
  transitions_.push_back(std::move(edge));
  state_ = to;
  metrics::bump(metrics::Counter::health_transitions);
}

}  // namespace ringent::trng
