#include "trng/elementary.hpp"

#include "common/require.hpp"

namespace ringent::trng {

std::vector<std::uint8_t> elementary_trng_bits(const sim::SignalTrace& trace,
                                               const ElementaryTrngConfig& cfg,
                                               std::size_t count) {
  RINGENT_REQUIRE(!trace.transitions().empty(), "empty trace");
  DffSampler sampler(cfg.sampler);
  const std::vector<Time> instants =
      periodic_samples(cfg.start, cfg.sampling_period, count);
  RINGENT_REQUIRE(instants.empty() ||
                      instants.back() <= trace.transitions().back().at,
                  "trace too short for the requested bit count");
  return sampler.sample(trace.transitions(), instants);
}

double quality_factor(double sigma_p_ps, double ring_period_ps,
                      Time sampling_period) {
  RINGENT_REQUIRE(sigma_p_ps >= 0.0, "negative jitter");
  RINGENT_REQUIRE(ring_period_ps > 0.0, "ring period must be positive");
  RINGENT_REQUIRE(sampling_period > Time::zero(),
                  "sampling period must be positive");
  // White period jitter accumulates linearly in variance: over K ring
  // periods, var = K * sigma_p^2.
  const double cycles = sampling_period.ps() / ring_period_ps;
  const double accumulated_var = cycles * sigma_p_ps * sigma_p_ps;
  return accumulated_var / (ring_period_ps * ring_period_ps);
}

}  // namespace ringent::trng
