#include "trng/fips.hpp"

#include <array>
#include <cstdio>

#include "common/math.hpp"
#include "common/require.hpp"

namespace ringent::trng {

namespace {
void check_block(std::span<const std::uint8_t> bits) {
  RINGENT_REQUIRE(bits.size() == fips_block_bits,
                  "FIPS tests need exactly 20000 bits");
  for (std::uint8_t b : bits) {
    RINGENT_REQUIRE(b <= 1, "bits must be 0 or 1");
  }
}

std::string format_detail(const char* fmt, double a, double b = 0.0) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}
}  // namespace

TestVerdict fips_monobit(std::span<const std::uint8_t> bits) {
  check_block(bits);
  std::size_t ones = 0;
  for (std::uint8_t b : bits) ones += b;
  TestVerdict v;
  v.name = "monobit";
  v.statistic = static_cast<double>(ones);
  v.pass = ones > 9725 && ones < 10275;
  v.detail = format_detail("ones=%.0f (pass range 9726..10274)", v.statistic);
  return v;
}

TestVerdict fips_poker(std::span<const std::uint8_t> bits) {
  check_block(bits);
  std::array<std::size_t, 16> counts{};
  for (std::size_t i = 0; i + 3 < bits.size(); i += 4) {
    const unsigned nibble = (bits[i] << 3) | (bits[i + 1] << 2) |
                            (bits[i + 2] << 1) | bits[i + 3];
    ++counts[nibble];
  }
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    sum_sq += static_cast<double>(c) * static_cast<double>(c);
  }
  const double x = 16.0 / 5000.0 * sum_sq - 5000.0;
  TestVerdict v;
  v.name = "poker";
  v.statistic = x;
  v.pass = x > 2.16 && x < 46.17;
  v.detail = format_detail("X=%.3f (pass range 2.16..46.17)", x);
  return v;
}

TestVerdict fips_runs(std::span<const std::uint8_t> bits) {
  check_block(bits);
  // Run-length histograms for runs of zeros and of ones; lengths >= 6 share
  // one bucket. FIPS 140-2 intervals (change notice 1).
  struct Interval {
    std::size_t lo, hi;
  };
  static constexpr std::array<Interval, 6> intervals{{{2315, 2685},
                                                      {1114, 1386},
                                                      {527, 723},
                                                      {240, 384},
                                                      {103, 209},
                                                      {103, 209}}};
  std::array<std::array<std::size_t, 6>, 2> runs{};  // [value][len bucket]

  std::size_t i = 0;
  while (i < bits.size()) {
    const std::uint8_t value = bits[i];
    std::size_t len = 1;
    while (i + len < bits.size() && bits[i + len] == value) ++len;
    const std::size_t bucket = len >= 6 ? 5 : len - 1;
    ++runs[value][bucket];
    i += len;
  }

  TestVerdict v;
  v.name = "runs";
  v.pass = true;
  for (int value = 0; value <= 1; ++value) {
    for (std::size_t bucket = 0; bucket < 6; ++bucket) {
      const std::size_t c = runs[value][bucket];
      if (c < intervals[bucket].lo || c > intervals[bucket].hi) {
        v.pass = false;
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "runs of %d, length %zu%s: %zu outside [%zu, %zu]; ",
                      value, bucket + 1, bucket == 5 ? "+" : "", c,
                      intervals[bucket].lo, intervals[bucket].hi);
        v.detail += buf;
      }
    }
  }
  if (v.pass) v.detail = "all run-length counts in range";
  return v;
}

TestVerdict fips_long_run(std::span<const std::uint8_t> bits) {
  check_block(bits);
  std::size_t longest = 0;
  std::size_t current = 0;
  std::uint8_t prev = 2;
  for (std::uint8_t b : bits) {
    current = (b == prev) ? current + 1 : 1;
    prev = b;
    if (current > longest) longest = current;
  }
  TestVerdict v;
  v.name = "long-run";
  v.statistic = static_cast<double>(longest);
  v.pass = longest < 26;
  v.detail = format_detail("longest run=%.0f (must be < 26)", v.statistic);
  return v;
}

BatteryResult fips_battery(std::span<const std::uint8_t> bits) {
  BatteryResult out;
  out.tests.push_back(fips_monobit(bits));
  out.tests.push_back(fips_poker(bits));
  out.tests.push_back(fips_runs(bits));
  out.tests.push_back(fips_long_run(bits));
  out.all_pass = true;
  for (const auto& t : out.tests) out.all_pass = out.all_pass && t.pass;
  return out;
}

TestVerdict serial_test(std::span<const std::uint8_t> bits) {
  RINGENT_REQUIRE(bits.size() >= 1000, "serial test needs >= 1000 bits");
  std::array<std::size_t, 4> counts{};
  for (std::size_t i = 0; i + 1 < bits.size(); ++i) {
    RINGENT_REQUIRE(bits[i] <= 1 && bits[i + 1] <= 1, "bits must be 0 or 1");
    counts[(bits[i] << 1) | bits[i + 1]]++;
  }
  const double n = static_cast<double>(bits.size() - 1);
  const double expected = n / 4.0;
  double chi2 = 0.0;
  for (std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  TestVerdict v;
  v.name = "serial";
  v.statistic = chi2;
  // Approximate: overlapping pairs are not independent, but with a 1%
  // threshold on chi^2(3) the test is still a useful correlation alarm.
  const double p = chi_square_sf(chi2, 3.0);
  v.pass = p > 0.01;
  v.detail = format_detail("chi2=%.3f p=%.4f", chi2, p);
  return v;
}

}  // namespace ringent::trng
