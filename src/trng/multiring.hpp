// Multi-ring TRNG (Sunar et al. / Wold-Tan style): XOR of several
// independent free-running rings, latched by one reference clock.
//
// Each ring contributes its own phase diffusion; XOR-ing N rings multiplies
// the per-sample unpredictability without slowing the reference clock. The
// paper's Table II angle: the construction's entropy model assumes ring
// frequencies that stay distinct and within design bounds on every device —
// easier to guarantee with STRs. Used by the ext_multiring bench to compare
// how many IRO vs STR rings a FIPS/NIST-clean generator needs at a given
// sampling rate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/probe.hpp"
#include "trng/sampler.hpp"

namespace ringent::trng {

struct MultiRingConfig {
  Time sampling_period = Time::from_ns(250.0);
  Time start = Time::zero();
  SamplerConfig sampler{};
};

/// Latch every ring at the same instants and XOR the sampled bits.
/// All traces must cover [start, start + count * period].
std::vector<std::uint8_t> multi_ring_bits(
    const std::vector<const sim::SignalTrace*>& rings,
    const MultiRingConfig& config, std::size_t count);

}  // namespace ringent::trng
