// Elementary ring-oscillator TRNG (paper refs [1][2]).
//
// A free-running ring (IRO or STR) is sampled by a slower reference clock.
// Between samples the ring edge position accumulates jitter; once the
// accumulated jitter is comparable to the ring period the sampled bit is
// unpredictable. This is the generator whose robustness the paper's
// comparison ultimately targets: its bias under supply manipulation is the
// attack surface of Sec. IV-B, exercised by examples/attack_demo.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "sim/probe.hpp"
#include "trng/sampler.hpp"

namespace ringent::trng {

struct ElementaryTrngConfig {
  Time sampling_period = Time::from_ns(10.0);  ///< reference clock period
  Time start = Time::zero();  ///< first sample instant (after warm-up)
  SamplerConfig sampler{};
};

/// Sample `count` bits from a recorded ring trace.
std::vector<std::uint8_t> elementary_trng_bits(const sim::SignalTrace& trace,
                                               const ElementaryTrngConfig& cfg,
                                               std::size_t count);

/// The jitter "quality factor" governing the entropy of one sample: the
/// variance of the accumulated jitter over one sampling period relative to
/// the squared ring period (see trng/entropy_model.hpp).
double quality_factor(double sigma_p_ps, double ring_period_ps,
                      Time sampling_period);

}  // namespace ringent::trng
