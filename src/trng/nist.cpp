#include "trng/nist.hpp"

#include <array>
#include <cmath>
#include <complex>
#include <cstdio>

#include "analysis/fft.hpp"
#include "common/math.hpp"
#include "common/require.hpp"

namespace ringent::trng {

namespace {

void check_bits(std::span<const std::uint8_t> bits, std::size_t min_n) {
  RINGENT_REQUIRE(bits.size() >= min_n, "bit sequence too short for this test");
  for (std::uint8_t b : bits) {
    RINGENT_REQUIRE(b <= 1, "bits must be 0 or 1");
  }
}

std::string fmt(const char* f, double a, double b = 0.0) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), f, a, b);
  return buf;
}

NistResult make(const char* name, double p, double alpha, std::string detail) {
  NistResult r;
  r.name = name;
  r.p_value = p;
  r.pass = p >= alpha;
  r.detail = std::move(detail);
  return r;
}

}  // namespace

NistResult nist_frequency(std::span<const std::uint8_t> bits, double alpha) {
  check_bits(bits, 100);
  long long s = 0;
  for (std::uint8_t b : bits) s += b ? 1 : -1;
  const double n = static_cast<double>(bits.size());
  const double s_obs = std::abs(static_cast<double>(s)) / std::sqrt(n);
  const double p = std::erfc(s_obs / std::sqrt(2.0));
  return make("frequency", p, alpha, fmt("S_obs=%.4f", s_obs));
}

NistResult nist_block_frequency(std::span<const std::uint8_t> bits,
                                std::size_t block_bits, double alpha) {
  check_bits(bits, 100);
  RINGENT_REQUIRE(block_bits >= 8, "block must be >= 8 bits");
  const std::size_t blocks = bits.size() / block_bits;
  RINGENT_REQUIRE(blocks >= 4, "need at least 4 blocks");
  double chi2 = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t ones = 0;
    for (std::size_t i = 0; i < block_bits; ++i) {
      ones += bits[b * block_bits + i];
    }
    const double pi = static_cast<double>(ones) /
                      static_cast<double>(block_bits);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(block_bits);
  const double p = gamma_q(static_cast<double>(blocks) / 2.0, chi2 / 2.0);
  return make("block-frequency", p, alpha,
              fmt("chi2=%.3f over %.0f blocks", chi2,
                  static_cast<double>(blocks)));
}

NistResult nist_runs(std::span<const std::uint8_t> bits, double alpha) {
  check_bits(bits, 100);
  const double n = static_cast<double>(bits.size());
  std::size_t ones = 0;
  for (std::uint8_t b : bits) ones += b;
  const double pi = static_cast<double>(ones) / n;
  // Prerequisite frequency check from the spec.
  if (std::abs(pi - 0.5) >= 2.0 / std::sqrt(n)) {
    return make("runs", 0.0, alpha, "prerequisite frequency check failed");
  }
  std::size_t v = 1;
  for (std::size_t i = 1; i < bits.size(); ++i) {
    if (bits[i] != bits[i - 1]) ++v;
  }
  const double num =
      std::abs(static_cast<double>(v) - 2.0 * n * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * n) * pi * (1.0 - pi);
  const double p = std::erfc(num / den);
  return make("runs", p, alpha, fmt("V=%.0f pi=%.4f",
                                    static_cast<double>(v), pi));
}

NistResult nist_longest_run(std::span<const std::uint8_t> bits, double alpha) {
  check_bits(bits, 128);
  // 8-bit block variant: categories v <= 1, 2, 3, >= 4.
  static constexpr std::array<double, 4> pi = {0.2148, 0.3672, 0.2305,
                                               0.1875};
  const std::size_t blocks = bits.size() / 8;
  std::array<double, 4> counts{};
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t longest = 0, run = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      run = bits[b * 8 + i] ? run + 1 : 0;
      longest = std::max(longest, run);
    }
    const std::size_t category =
        longest <= 1 ? 0 : (longest >= 4 ? 3 : longest - 1);
    counts[category] += 1.0;
  }
  double chi2 = 0.0;
  const double nblocks = static_cast<double>(blocks);
  for (std::size_t k = 0; k < 4; ++k) {
    const double expect = nblocks * pi[k];
    chi2 += (counts[k] - expect) * (counts[k] - expect) / expect;
  }
  const double p = gamma_q(1.5, chi2 / 2.0);  // K = 3 degrees of freedom
  return make("longest-run", p, alpha, fmt("chi2=%.3f", chi2));
}

NistResult nist_cusum(std::span<const std::uint8_t> bits, double alpha) {
  check_bits(bits, 100);
  long long s = 0, z = 0;
  for (std::uint8_t b : bits) {
    s += b ? 1 : -1;
    z = std::max(z, std::llabs(s));
  }
  const double n = static_cast<double>(bits.size());
  const double zd = static_cast<double>(z);
  // SP 800-22 (2.13): two theta-function sums.
  double sum1 = 0.0, sum2 = 0.0;
  const long long k_lo1 = static_cast<long long>((-n / zd + 1.0) / 4.0) - 2;
  const long long k_hi1 = static_cast<long long>((n / zd - 1.0) / 4.0) + 2;
  for (long long k = k_lo1; k <= k_hi1; ++k) {
    const double kk = static_cast<double>(k);
    sum1 += normal_cdf((4.0 * kk + 1.0) * zd / std::sqrt(n)) -
            normal_cdf((4.0 * kk - 1.0) * zd / std::sqrt(n));
  }
  for (long long k = k_lo1; k <= k_hi1; ++k) {
    const double kk = static_cast<double>(k);
    sum2 += normal_cdf((4.0 * kk + 3.0) * zd / std::sqrt(n)) -
            normal_cdf((4.0 * kk + 1.0) * zd / std::sqrt(n));
  }
  const double p = clampd(1.0 - sum1 + sum2, 0.0, 1.0);
  return make("cusum", p, alpha, fmt("z=%.0f", zd));
}

namespace {
/// phi(m) for the approximate-entropy statistic: overlapping m-bit pattern
/// log-probability sum over the cyclically extended sequence.
double apen_phi(std::span<const std::uint8_t> bits, unsigned m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  std::vector<std::size_t> counts(std::size_t{1} << m, 0);
  std::uint32_t window = 0;
  const std::uint32_t mask = (1u << m) - 1;
  // Prime the window with the first m-1 bits.
  for (std::size_t i = 0; i + 1 < m; ++i) {
    window = ((window << 1) | bits[i]) & mask;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = bits[(i + m - 1) % n];  // cyclic extension
    window = ((window << 1) | b) & mask;
    ++counts[window];
  }
  double phi = 0.0;
  for (std::size_t c : counts) {
    if (c == 0) continue;
    const double freq = static_cast<double>(c) / static_cast<double>(n);
    phi += freq * std::log(freq);
  }
  return phi;
}
}  // namespace

NistResult nist_approximate_entropy(std::span<const std::uint8_t> bits,
                                    unsigned m, double alpha) {
  check_bits(bits, 256);
  RINGENT_REQUIRE(m >= 1 && m <= 12, "template length out of range");
  const double n = static_cast<double>(bits.size());
  const double apen = apen_phi(bits, m) - apen_phi(bits, m + 1);
  const double chi2 = 2.0 * n * (std::log(2.0) - apen);
  const double p = gamma_q(std::pow(2.0, static_cast<double>(m) - 1.0),
                           chi2 / 2.0);
  return make("approximate-entropy", p, alpha,
              fmt("ApEn=%.6f chi2=%.3f", apen, chi2));
}

NistResult nist_dft(std::span<const std::uint8_t> bits, double alpha) {
  check_bits(bits, 1000);
  const std::size_t n = bits.size() & ~std::size_t{1};  // even length
  std::vector<std::complex<double>> data(next_power_of_two(n), {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {bits[i] ? 1.0 : -1.0, 0.0};
  }
  // The spec uses the plain (unpadded) DFT; zero padding changes the peak
  // statistics, so when n is not a power of two we truncate instead.
  const std::size_t m = is_power_of_two(n)
                            ? n
                            : next_power_of_two(n) / 2;
  data.resize(m);
  analysis::fft_inplace(data);

  const double threshold = std::sqrt(std::log(1.0 / 0.05) *
                                     static_cast<double>(m));
  std::size_t below = 0;
  const std::size_t half = m / 2;
  for (std::size_t i = 0; i < half; ++i) {
    if (std::abs(data[i]) < threshold) ++below;
  }
  const double n0 = 0.95 * static_cast<double>(half);
  const double d = (static_cast<double>(below) - n0) /
                   std::sqrt(static_cast<double>(half) * 0.95 * 0.05 / 4.0);
  const double p = std::erfc(std::abs(d) / std::sqrt(2.0));
  return make("dft", p, alpha, fmt("d=%.3f", d));
}

namespace {
/// psi^2_m statistic for the serial test (cyclic overlapping m-bit counts).
double psi_squared(std::span<const std::uint8_t> bits, unsigned m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  std::vector<std::size_t> counts(std::size_t{1} << m, 0);
  std::uint32_t window = 0;
  const std::uint32_t mask = (1u << m) - 1;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    window = ((window << 1) | bits[i]) & mask;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = bits[(i + m - 1) % n];
    window = ((window << 1) | b) & mask;
    ++counts[window];
  }
  double sum = 0.0;
  for (std::size_t c : counts) {
    sum += static_cast<double>(c) * static_cast<double>(c);
  }
  return sum * std::pow(2.0, static_cast<double>(m)) /
             static_cast<double>(n) -
         static_cast<double>(n);
}
}  // namespace

NistResult nist_serial(std::span<const std::uint8_t> bits, unsigned m,
                       double alpha) {
  check_bits(bits, 256);
  RINGENT_REQUIRE(m >= 2 && m <= 12, "template length out of range");
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  const double p1 =
      gamma_q(std::pow(2.0, static_cast<double>(m) - 2.0), d1 / 2.0);
  const double p2 =
      gamma_q(std::pow(2.0, static_cast<double>(m) - 3.0), d2 / 2.0);
  const double p = std::min(p1, p2);
  return make("serial", p, alpha, fmt("p1=%.4f p2=%.4f", p1, p2));
}

namespace {
/// GF(2) rank of a 32x32 bit matrix given as 32 row words.
unsigned rank32(std::array<std::uint32_t, 32> rows) {
  unsigned rank = 0;
  for (int col = 31; col >= 0 && rank < 32; --col) {
    const std::uint32_t mask = 1u << col;
    // Find a pivot row at or below `rank`.
    std::size_t pivot = rank;
    while (pivot < 32 && !(rows[pivot] & mask)) ++pivot;
    if (pivot == 32) continue;
    std::swap(rows[rank], rows[pivot]);
    for (std::size_t r = 0; r < 32; ++r) {
      if (r != rank && (rows[r] & mask)) rows[r] ^= rows[rank];
    }
    ++rank;
  }
  return rank;
}
}  // namespace

NistResult nist_matrix_rank(std::span<const std::uint8_t> bits, double alpha) {
  check_bits(bits, 38 * 1024);
  const std::size_t matrices = bits.size() / 1024;
  // Full-rank / rank-1-deficient probabilities for 32x32 over GF(2).
  constexpr double p_full = 0.2888, p_minus1 = 0.5776;
  const double p_rest = 1.0 - p_full - p_minus1;

  double n_full = 0.0, n_minus1 = 0.0, n_rest = 0.0;
  for (std::size_t m = 0; m < matrices; ++m) {
    std::array<std::uint32_t, 32> rows{};
    for (std::size_t r = 0; r < 32; ++r) {
      std::uint32_t word = 0;
      for (std::size_t c = 0; c < 32; ++c) {
        word = (word << 1) | bits[m * 1024 + r * 32 + c];
      }
      rows[r] = word;
    }
    const unsigned rank = rank32(rows);
    if (rank == 32) {
      n_full += 1.0;
    } else if (rank == 31) {
      n_minus1 += 1.0;
    } else {
      n_rest += 1.0;
    }
  }
  const double n = static_cast<double>(matrices);
  double chi2 = 0.0;
  chi2 += (n_full - p_full * n) * (n_full - p_full * n) / (p_full * n);
  chi2 += (n_minus1 - p_minus1 * n) * (n_minus1 - p_minus1 * n) /
          (p_minus1 * n);
  chi2 += (n_rest - p_rest * n) * (n_rest - p_rest * n) / (p_rest * n);
  const double p = gamma_q(1.0, chi2 / 2.0);  // 2 degrees of freedom
  return make("matrix-rank", p, alpha,
              fmt("chi2=%.3f over %.0f matrices", chi2, n));
}

NistBattery nist_battery(std::span<const std::uint8_t> bits, double alpha) {
  NistBattery battery;
  battery.results.push_back(nist_frequency(bits, alpha));
  battery.results.push_back(nist_block_frequency(bits, 128, alpha));
  battery.results.push_back(nist_runs(bits, alpha));
  battery.results.push_back(nist_longest_run(bits, alpha));
  battery.results.push_back(nist_cusum(bits, alpha));
  battery.results.push_back(nist_approximate_entropy(bits, 4, alpha));
  battery.results.push_back(nist_dft(bits, alpha));
  battery.results.push_back(nist_serial(bits, 3, alpha));
  if (bits.size() >= 38 * 1024) {
    battery.results.push_back(nist_matrix_rank(bits, alpha));
  }
  battery.all_pass = true;
  for (const auto& r : battery.results) {
    battery.all_pass = battery.all_pass && r.pass;
  }
  return battery;
}

}  // namespace ringent::trng
