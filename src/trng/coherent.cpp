#include "trng/coherent.hpp"

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"

namespace ringent::trng {

CoherentResult coherent_sampling_bits(
    const std::vector<sim::Transition>& sampled,
    const std::vector<Time>& sampling_clock_rising,
    const SamplerConfig& sampler_config) {
  RINGENT_REQUIRE(sampling_clock_rising.size() >= 4,
                  "need at least 4 sampling edges");
  DffSampler sampler(sampler_config);
  const std::vector<std::uint8_t> samples =
      sampler.sample(sampled, sampling_clock_rising);

  CoherentResult out;
  // Split the sample stream into runs of identical values. The first and
  // last runs are truncated by the observation window and are discarded.
  std::vector<std::size_t> runs;
  std::size_t run = 1;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (samples[i] == samples[i - 1]) {
      ++run;
    } else {
      runs.push_back(run);
      run = 1;
    }
  }
  RINGENT_REQUIRE(runs.size() >= 3,
                  "observation window too short for coherent sampling");
  out.run_lengths.assign(runs.begin() + 1, runs.end());

  SampleStats stats;
  std::vector<double> lengths;
  lengths.reserve(out.run_lengths.size());
  for (std::size_t r : out.run_lengths) {
    out.bits.push_back(static_cast<std::uint8_t>(r & 1u));
    stats.add(static_cast<double>(r));
    lengths.push_back(static_cast<double>(r));
  }
  out.mean_run_length = stats.mean();
  out.median_run_length = median(std::move(lengths));
  return out;
}

double expected_half_beat_samples(double t0_ps, double t1_ps) {
  RINGENT_REQUIRE(t0_ps > 0.0 && t1_ps > 0.0, "periods must be positive");
  const double dt = std::abs(t1_ps - t0_ps);
  RINGENT_REQUIRE(dt > 0.0, "periods must differ for a beat to exist");
  return t0_ps / (2.0 * dt);
}

}  // namespace ringent::trng
