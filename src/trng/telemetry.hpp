// Streaming entropy observables for an operating bit source.
//
// The batch estimators in analysis/entropy.hpp answer "how good was this
// recorded stream?"; a fielded generator needs the same signals *while it
// runs*, cheaply and incrementally, the way jitterentropy and SP 800-90B
// continuous-test implementations expose health telemetry. Saarinen
// (arXiv:2102.02196) argues ring-oscillator entropy claims must rest on
// bit-pattern and autocorrelation observables rather than Gaussian
// assumptions — StreamingEntropy is exactly that observable set, maintained
// per fed bit in O(1):
//
//  * running bias (cumulative ones fraction) and windowed bias;
//  * lag-1..k autocorrelation over a sliding window (computed at read time
//    from the window buffer, O(window * k), never per bit);
//  * an incremental Markov min-entropy rate from the four bit-transition
//    counts: H = -log2(max(p00, p11, sqrt(p01 * p10))), the asymptotic
//    per-bit min-entropy of the most probable path through the 2-state
//    chain — 0 for constant or perfectly alternating streams, 1 for an
//    unbiased memoryless one.
//
// ResilientGenerator and core::RingBitSource accept an attached stream
// (attach_telemetry) and feed every raw bit; drivers publish() the resulting
// StreamStats under a per-cell label so the telemetry snapshot writer
// (core/export.hpp) can emit them alongside the histogram registry. The
// distribution-shaped health observables (RCT run lengths, APT window
// counts, bits between alarms, relock durations) land in the
// sim/telemetry.hpp histograms instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace ringent::trng::telemetry {

struct StreamingEntropyConfig {
  std::size_t window = 1024;  ///< sliding window for bias/autocorrelation
  std::size_t max_lag = 4;    ///< autocorrelation lags 1..max_lag
};

class StreamingEntropy {
 public:
  explicit StreamingEntropy(StreamingEntropyConfig config = {});

  void feed(std::uint8_t bit);

  std::uint64_t bits() const { return total_bits_; }
  /// Cumulative ones fraction (0.5 = unbiased); 0 before the first bit.
  double bias() const;
  /// Ones fraction over the trailing window (or everything seen, if less).
  double window_bias() const;
  /// Sample autocorrelation over the trailing window at lags 1..max_lag.
  /// Entries are 0 when the window is degenerate (constant or too short).
  std::vector<double> window_autocorrelation() const;
  /// Incremental Markov min-entropy rate in [0, 1]; see the file comment.
  double markov_min_entropy() const;

  const StreamingEntropyConfig& config() const { return config_; }

 private:
  StreamingEntropyConfig config_;
  std::vector<std::uint8_t> window_;  ///< ring buffer, chronological via pos_
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t window_ones_ = 0;
  std::uint64_t total_bits_ = 0;
  std::uint64_t total_ones_ = 0;
  std::uint8_t prev_bit_ = 2;  ///< 2 = no previous bit yet
  std::uint64_t transitions_[2][2] = {{0, 0}, {0, 0}};
};

/// A published reading of one stream's observables — what the snapshot
/// writer serializes. Plain data so it survives a JSON round trip.
struct StreamStats {
  std::string label;  ///< source identity, e.g. "str255/supply-tone:raw"
  std::uint64_t bits = 0;
  double bias = 0.0;
  double window_bias = 0.0;
  std::vector<double> autocorrelation;  ///< lags 1..k
  double markov_min_entropy = 0.0;

  static StreamStats capture(std::string label, const StreamingEntropy& s);

  Json to_json() const;
  /// Inverse of to_json(); throws ringent::Error on schema violations.
  static StreamStats from_json(const Json& json);
};

/// Queue `stats` for the next telemetry snapshot (mutex-guarded; called once
/// per cell per run, never per bit).
void publish(StreamStats stats);

/// Drain everything published since the last call, sorted by label so the
/// output order is independent of pool scheduling.
std::vector<StreamStats> take_published();

}  // namespace ringent::trng::telemetry
