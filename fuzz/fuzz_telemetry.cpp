// libFuzzer harness for the telemetry-snapshot reader path: each input is
// treated as a JSONL sink file — split on newlines, every non-empty line
// goes through Json::parse followed by core::TelemetrySnapshot::from_json,
// exactly what record_bench --telemetry and any snapshot consumer do.
//
// Contract enforced on every line:
//  * schema violations (unknown histogram names, out-of-range or unordered
//    bucket indices, a count that disagrees with its buckets, negative
//    integers) fail with ringent::Error;
//  * an accepted snapshot is a parse → dump fixpoint: the derived quantile
//    fields from_json ignores are recomputed from the buckets, so
//    from_json(to_json(s)) must serialize to the identical document.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "common/require.hpp"
#include "core/export.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string_view line =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    if (line.empty()) continue;

    ringent::core::TelemetrySnapshot snapshot;
    try {
      snapshot = ringent::core::TelemetrySnapshot::from_json(
          ringent::Json::parse(line));
    } catch (const ringent::Error&) {
      continue;  // rejected cleanly
    }
    // Accepted snapshots must survive a full write → read → write cycle.
    const std::string dumped = snapshot.to_json().dump();
    const ringent::core::TelemetrySnapshot reloaded =
        ringent::core::TelemetrySnapshot::from_json(ringent::Json::parse(dumped));
    if (reloaded.to_json().dump() != dumped) std::abort();
  }
  return 0;
}
