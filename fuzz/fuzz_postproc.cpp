// libFuzzer harness for the trng/postproc.hpp surface — the bit-stream
// correctors whose tail-bit truncation contract tests/test_postproc.cpp
// pins on fixed vectors. The fuzzer checks the same contract over
// arbitrary inputs:
//
// Input layout: byte 0 selects the xor_decimate factor, byte 1 the peres
// depth, the remainder is the payload. The payload is used twice — masked
// to valid bits (&1, totality path) and raw (validation path, where any
// byte > 1 must be rejected with PreconditionError before any output).
//
// Contract enforced on every input:
//  * von_neumann emits at most floor(n/2) bits, all 0/1, and the dangling
//    last bit of an odd-length span is unobservable (flip-invariance);
//  * xor_decimate(., f) emits exactly floor(n/f) parity bits for f >= 1
//    and throws PreconditionError for f == 0 — never UB, never a partial
//    group parity (checked against a direct recomputation);
//  * peres at depth 1 equals von_neumann exactly; depths outside [1,16]
//    throw; every emitted bit is 0/1 and the output is deterministic;
//  * non-bit input values throw PreconditionError from all three.
#include <cstdint>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/require.hpp"
#include "trng/postproc.hpp"

namespace {

using ringent::trng::peres;
using ringent::trng::von_neumann;
using ringent::trng::xor_decimate;

bool all_bits(const std::vector<std::uint8_t>& v) {
  for (const std::uint8_t b : v) {
    if (b > 1) return false;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::size_t factor = size > 0 ? data[0] : 1;
  const unsigned depth = size > 1 ? data[1] : 1;
  const std::span<const std::uint8_t> payload =
      std::span<const std::uint8_t>(data, size).subspan(size < 2 ? size : 2);

  std::vector<std::uint8_t> bits(payload.begin(), payload.end());
  bool raw_valid = true;
  for (auto& b : bits) {
    raw_valid = raw_valid && b <= 1;
    b &= 1;
  }
  const std::size_t n = bits.size();

  // --- von Neumann: totality, output bound, tail-flip invariance -----------
  const auto vn = von_neumann(bits);
  if (vn.size() > n / 2) std::abort();
  if (!all_bits(vn)) std::abort();
  if (n % 2 == 1) {
    std::vector<std::uint8_t> flipped = bits;
    flipped.back() ^= 1;
    if (von_neumann(flipped) != vn) std::abort();  // tail bit leaked
  }

  // --- xor_decimate: exact length, recomputed parities, factor == 0 --------
  try {
    const auto dec = xor_decimate(bits, factor);
    if (factor == 0) std::abort();  // the guard must have thrown
    if (dec.size() != n / factor) std::abort();
    if (!all_bits(dec)) std::abort();
    for (std::size_t g = 0; g < dec.size(); ++g) {
      std::uint8_t parity = 0;
      for (std::size_t i = 0; i < factor; ++i) parity ^= bits[g * factor + i];
      if (dec[g] != parity) std::abort();
    }
  } catch (const ringent::PreconditionError&) {
    if (factor != 0) std::abort();  // valid factor must not throw
  }

  // --- peres: depth bounds, depth-1 equivalence, determinism ---------------
  try {
    const auto p = peres(bits, depth);
    if (depth < 1 || depth > 16) std::abort();  // bounds guard must throw
    if (!all_bits(p)) std::abort();
    if (depth == 1 && p != vn) std::abort();
    if (peres(bits, depth) != p) std::abort();  // deterministic
  } catch (const ringent::PreconditionError&) {
    if (depth >= 1 && depth <= 16) std::abort();
  }

  // --- raw (unmasked) payload: reject or accept coherently -----------------
  // von_neumann/peres validate pair-by-pair, so a non-bit byte in the
  // dangling odd tail is never seen; xor_decimate validates every byte,
  // including the partial trailing group.
  const std::vector<std::uint8_t> raw(payload.begin(), payload.end());
  // Bytes at indices < 2 * floor(n/2) are the ones the pair loop consumes.
  bool pair_region_valid = true;
  for (std::size_t i = 0; i < 2 * (raw.size() / 2); ++i) {
    pair_region_valid = pair_region_valid && raw[i] <= 1;
  }
  try {
    (void)von_neumann(raw);
    if (!pair_region_valid) std::abort();  // non-bit pair went unrejected
  } catch (const ringent::PreconditionError&) {
    if (pair_region_valid) std::abort();
  }
  try {
    (void)xor_decimate(raw, factor == 0 ? 1 : factor);
    if (!raw_valid) std::abort();  // validates every byte, even tail group
  } catch (const ringent::PreconditionError&) {
    if (raw_valid) std::abort();
  }
  try {
    (void)peres(raw, depth == 0 ? 1 : (depth > 16 ? 16 : depth));
    if (!pair_region_valid) std::abort();
  } catch (const ringent::PreconditionError&) {
    if (pair_region_valid) std::abort();
  }
  return 0;
}
