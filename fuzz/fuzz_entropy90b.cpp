// libFuzzer harness for the SP 800-90B surface: the Entropy90bConfig JSON
// spec loader, both BitStream loaders, the full estimator battery and the
// restart-matrix validation.
//
// Input layout: everything before the first newline is a candidate spec
// document for Entropy90bConfig::from_json (malformed specs must be
// rejected with ringent::Error and fall back to the default battery); the
// remainder is the stream payload, fed through BOTH loaders — as ASCII
// '0'/'1' text (which may reject cleanly) and as raw LSB-first bytes
// (which is total).
//
// Contract enforced on every input:
//  * the battery is total — degenerate streams (empty, constant, one bit)
//    produce a defined Entropy90bResult, never UB or an escaped exception;
//  * every estimate is either the skip sentinel -1 or a finite value in
//    [0, 1], and min_entropy is a lower bound on all estimates that ran;
//  * an accepted spec is a to_json/from_json fixpoint;
//  * results and restart validations serialize without throwing, and
//    validate_restarts never claims more than min(h_initial, battery).
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string_view>
#include <vector>

#include "analysis/bitstream.hpp"
#include "analysis/entropy90b.hpp"
#include "common/json.hpp"
#include "common/require.hpp"

namespace {

using ringent::analysis::BitStream;
using ringent::analysis::Entropy90bConfig;
using ringent::analysis::Entropy90bResult;

bool entropy_ok(double h) {
  return h == -1.0 || (std::isfinite(h) && h >= 0.0 && h <= 1.0);
}

/// Abort on any violation of the battery's documented output contract.
void check_result(const Entropy90bResult& result,
                  const Entropy90bConfig& config, std::size_t bits) {
  if (result.bits != bits) std::abort();
  const double estimates[] = {result.h_mcv,         result.h_collision,
                              result.h_markov,      result.h_compression,
                              result.h_t_tuple,     result.h_lrs};
  for (const double h : estimates) {
    if (!entropy_ok(h)) std::abort();
  }
  if (!entropy_ok(result.min_entropy)) std::abort();
  bool any_ran = false;
  for (const double h : estimates) {
    if (h < 0.0) continue;
    any_ran = true;
    if (result.min_entropy > h) std::abort();  // not a lower bound
  }
  if (any_ran != (result.min_entropy >= 0.0)) std::abort();
  if (result.autocorrelation.size() > config.autocorrelation_lags) {
    std::abort();
  }
  for (const double r : result.autocorrelation) {
    // Biased autocorrelation of a ±deviation sequence stays in [-1, 1].
    if (!std::isfinite(r) || r < -1.0 || r > 1.0) std::abort();
  }
  (void)result.to_json().dump();  // serialization is total
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const std::size_t newline = text.find('\n');
  const std::string_view spec_line =
      newline == std::string_view::npos ? text : text.substr(0, newline);
  const std::string_view payload =
      newline == std::string_view::npos ? std::string_view()
                                        : text.substr(newline + 1);

  // --- spec loader: reject cleanly or round-trip exactly -------------------
  Entropy90bConfig config;
  try {
    config = Entropy90bConfig::from_json(ringent::Json::parse(spec_line));
    const std::string dumped = config.to_json().dump();
    const Entropy90bConfig reloaded =
        Entropy90bConfig::from_json(ringent::Json::parse(dumped));
    if (reloaded.to_json().dump() != dumped) std::abort();
  } catch (const ringent::Error&) {
    config = Entropy90bConfig{};  // malformed spec: default battery
  }

  // --- ASCII loader path (may reject non-'0'/'1' bytes cleanly) ------------
  try {
    const BitStream s = BitStream::from_ascii(payload);
    check_result(estimate_entropy90b(s, config), config, s.size());
  } catch (const ringent::Error&) {
    // rejected cleanly
  }

  // --- raw byte loader path (total) + battery ------------------------------
  const std::vector<std::uint8_t> bytes(payload.begin(), payload.end());
  const BitStream raw = BitStream::from_bytes(bytes, bytes.size() * 8);
  check_result(estimate_entropy90b(raw, config), config, raw.size());

  // --- restart validation over a fuzz-shaped matrix prefix -----------------
  if (bytes.size() >= 2) {
    const std::size_t rows = 2 + bytes[0] % 31;
    const std::size_t cols = 2 + bytes[1] % 63;
    if (raw.size() >= rows * cols) {
      ringent::analysis::RestartMatrix matrix;
      matrix.rows = rows;
      matrix.cols = cols;
      for (std::size_t i = 0; i < rows * cols; ++i) {
        matrix.bits.append(raw.bit_unchecked(i));
      }
      const double h_initial =
          static_cast<double>(bytes[0] ^ bytes[1]) / 255.0;
      const auto v =
          ringent::analysis::validate_restarts(matrix, h_initial, config);
      if (!entropy_ok(v.h_row) || !entropy_ok(v.h_column)) std::abort();
      if (!std::isfinite(v.validated) || v.validated < 0.0 ||
          v.validated > h_initial) {
        std::abort();  // the claim can only shrink
      }
      if (v.sanity_passed &&
          (v.max_row_count >= v.cutoff_row ||
           v.max_column_count >= v.cutoff_column)) {
        std::abort();  // sanity contradicts its own counts
      }
      (void)v.to_json().dump();
    }
  }
  return 0;
}
