// libFuzzer harness for the campaign file formats: the plan loader
// ("ringent.campaign-plan/1"), the store index ("ringent.campaign/1") and
// the cell record ("ringent.campaign-cell/1") — the three documents a
// resumable campaign reads back from disk, i.e. the torn-write detection
// surface of campaign/store.cpp.
//
// Contract enforced on every input, per loader:
//  * malformed documents (bad JSON, unknown schema, unknown keys, unsorted
//    index, a cell record whose stored key does not hash its own content)
//    fail with ringent::Error — never crash, never accept;
//  * an accepted document round-trips: to_json must not throw, and
//    from_json(to_json(x)) must serialize to the identical bytes.
//
// Expansion (expand_plan) is deliberately NOT fuzzed here: a structurally
// valid plan can declare combinatorially many cells, and the fuzzer's job
// is the parse boundary, not the grid arithmetic.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "campaign/plan.hpp"
#include "campaign/store.hpp"
#include "common/json.hpp"
#include "common/require.hpp"

namespace {

template <typename T>
void check_loader(const ringent::Json& parsed) {
  T value;
  try {
    value = T::from_json(parsed);
  } catch (const ringent::Error&) {
    return;  // rejected cleanly
  }
  // Accepted documents must survive a full write -> read -> write cycle.
  const std::string dumped = value.to_json().dump(2);
  const T reloaded = T::from_json(ringent::Json::parse(dumped));
  if (reloaded.to_json().dump(2) != dumped) std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  ringent::Json parsed;
  try {
    parsed = ringent::Json::parse(text);
  } catch (const ringent::Error&) {
    return 0;  // not JSON: nothing further to check
  }
  check_loader<ringent::campaign::CampaignPlan>(parsed);
  check_loader<ringent::campaign::CampaignIndex>(parsed);
  check_loader<ringent::campaign::CellRecord>(parsed);
  return 0;
}
