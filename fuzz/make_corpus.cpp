// Regenerates the seed corpora under fuzz/corpus/ from the library's own
// writers, so the corpora track the current on-disk formats instead of
// rotting. Regression inputs under fuzz/regressions/ are pinned by hand (one
// per fixed bug) and are NOT touched by this tool.
//
// Usage:  fuzz_make_corpus <repo>/fuzz
//
// Output is deterministic: re-running the tool on an unchanged tree writes
// byte-identical files (no timestamps, fixed seeds/values).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/entropy90b.hpp"
#include "campaign/key.hpp"
#include "campaign/plan.hpp"
#include "campaign/store.hpp"
#include "common/json.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "core/export.hpp"
#include "core/registry.hpp"
#include "sim/probe.hpp"
#include "sim/vcd.hpp"

namespace {

using ringent::Json;

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  RINGENT_REQUIRE(out.good(), "cannot open corpus file " + path);
  out << content;
  out.flush();
  RINGENT_REQUIRE(out.good(), "I/O error writing corpus file " + path);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
}

ringent::core::RunManifest sample_manifest() {
  ringent::core::RunManifest manifest;
  manifest.experiment = "fig11_iro_jitter_vs_stages";
  manifest.spec = "IRO stages 3..11, 60 restarts";
  manifest.seed = 0xC0FFEE;
  manifest.jobs = 4;
  manifest.tasks = 9;
  manifest.wall_ms = 123.5;
  manifest.cpu_ms = 456.25;
  manifest.version = "corpus";
  manifest.metrics.counters[0] = 1000;
  manifest.metrics.counters[1] = 999;
  ringent::sim::metrics::PhaseStat phase;
  phase.name = "run";
  phase.wall_ms = 100.0;
  phase.cpu_ms = 400.0;
  phase.calls = 9;
  manifest.metrics.phases.push_back(phase);
  return manifest;
}

ringent::core::TelemetrySnapshot sample_telemetry() {
  namespace histo = ringent::sim::telemetry;
  ringent::core::TelemetrySnapshot snap;
  snap.experiment = "attack_resilience";
  snap.sequence = 3;
  snap.wall_ms = 42.5;
  histo::HistogramSnapshot gaps;
  gaps.name = histo::histogram_name(histo::Histogram::event_gap_fs);
  gaps.buckets = {{2, 10}, {31, 5}, {40, 7}, {1919, 1}};
  gaps.count = 23;
  gaps.sum = 123456;
  snap.histograms.push_back(std::move(gaps));
  histo::HistogramSnapshot runs;
  runs.name = histo::histogram_name(histo::Histogram::rct_run_length);
  runs.buckets = {{1, 900}, {2, 450}, {3, 220}};
  runs.count = 1570;
  runs.sum = 2460;
  snap.histograms.push_back(std::move(runs));
  ringent::trng::telemetry::StreamStats stream;
  stream.label = "str255/supply-tone:raw";
  stream.bits = 4096;
  stream.bias = 0.503;
  stream.window_bias = 0.48;
  stream.autocorrelation = {0.01, -0.02, 0.005, 0.0};
  stream.markov_min_entropy = 0.97;
  snap.streams.push_back(std::move(stream));
  return snap;
}

std::string sample_vcd(bool second_signal) {
  using ringent::Time;
  ringent::sim::SignalTrace ring("ring_out");
  ringent::sim::SignalTrace token("token_c1");
  for (int i = 0; i < 8; ++i) {
    ring.record(Time::from_fs(1000 * (i + 1)), i % 2 == 0);
    if (second_signal) {
      token.record(Time::from_fs(1500 * (i + 1)), i % 2 == 1);
    }
  }
  ringent::sim::VcdWriter writer("ringent");
  writer.add_signal(ring);
  if (second_signal) writer.add_signal(token);
  std::ostringstream out;
  writer.write(out);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo>/fuzz\n", argv[0]);
    return 2;
  }
  const std::string root(argv[1]);

  // --- json: what the observability layer actually serializes -------------
  const std::string manifest_pretty = sample_manifest().to_json().dump(2);
  write_file(root + "/corpus/json/manifest_pretty", manifest_pretty);
  {
    Json doc = Json::array();
    doc.push_back(Json(std::int64_t{0}));
    doc.push_back(Json(std::int64_t{-9223372036854775807LL - 1}));
    doc.push_back(Json(std::int64_t{9223372036854775807LL}));
    doc.push_back(Json(0.5));
    doc.push_back(Json(1e-300));
    doc.push_back(Json(1.7976931348623157e308));
    write_file(root + "/corpus/json/numbers", doc.dump());
  }
  {
    Json doc = Json::object();
    doc.set("escapes", Json(std::string("quote\" back\\ tab\t nl\n bell\x07")));
    doc.set("unicode", Json(std::string("caf\xC3\xA9 \xE2\x88\x9A" "2")));
    doc.set("empty", Json(std::string()));
    Json nested = Json::object();
    nested.set("list", Json::array());
    nested.set("flag", Json(true));
    nested.set("none", Json());
    doc.set("nested", std::move(nested));
    write_file(root + "/corpus/json/strings_nested", doc.dump(2));
  }

  // --- vcd: the writer's own dumps ----------------------------------------
  write_file(root + "/corpus/vcd/writer_two_signals", sample_vcd(true));
  write_file(root + "/corpus/vcd/writer_one_signal", sample_vcd(false));
  // A foreign-style dump: 10 ps timescale, comment directives, x states.
  write_file(root + "/corpus/vcd/foreign_10ps",
             "$date today $end\n"
             "$version ghdl $end\n"
             "$timescale 10 ps $end\n"
             "$scope module top $end\n"
             "$var wire 1 ! clk $end\n"
             "$var wire 1 \" q $end\n"
             "$upscope $end\n"
             "$enddefinitions $end\n"
             "$dumpvars\nx!\nx\"\n$end\n"
             "#0\n1!\n0\"\n#5\n0!\n#10\n1!\n1\"\n");

  // --- cli: newline-separated argv tokens ----------------------------------
  write_file(root + "/corpus/cli/all_flags",
             "--jobs\n4\n--metrics\n--trace\nout.trace.json\n");
  write_file(root + "/corpus/cli/equals_forms",
             "--jobs=8\n--trace=spans.json\nstray\n--metrics\n");

  // --- manifest: valid documents for the reader path -----------------------
  write_file(root + "/corpus/manifest/pretty", manifest_pretty);
  write_file(root + "/corpus/manifest/compact",
             sample_manifest().to_json().dump());

  // --- telemetry: JSONL sink files for the snapshot reader path ------------
  const std::string snapshot_line = sample_telemetry().to_json().dump();
  write_file(root + "/corpus/telemetry/single_line", snapshot_line + "\n");
  write_file(root + "/corpus/telemetry/multi_line",
             snapshot_line + "\n" + snapshot_line + "\n");
  {
    // An empty snapshot (no histograms, no streams) is also valid.
    ringent::core::TelemetrySnapshot empty;
    empty.experiment = "idle";
    write_file(root + "/corpus/telemetry/empty_snapshot",
               empty.to_json().dump() + "\n");
  }

  // --- entropy90b: spec line + bit-stream payload --------------------------
  {
    // Default spec over an alternating stream: every estimator runs except
    // compression (needs 6012 bits), and the Markov path pins near zero.
    std::string alternating;
    for (int i = 0; i < 128; ++i) alternating += (i % 2 != 0) ? '1' : '0';
    const ringent::analysis::Entropy90bConfig defaults;
    write_file(root + "/corpus/entropy90b/spec_ascii_alternating",
               defaults.to_json().dump() + "\n" + alternating);

    // A partial battery (compression and LRS off, short autocorrelation)
    // over a biased stream with every ASCII separator the loader skips.
    ringent::analysis::Entropy90bConfig partial;
    partial.compression = false;
    partial.lrs = false;
    partial.autocorrelation_lags = 2;
    write_file(root + "/corpus/entropy90b/spec_partial_biased",
               partial.to_json().dump() +
                   "\n1110 1101\t1011\r\n0111 1110 1101 1110 1011 0111");

    // No valid spec line: the harness falls back to the default battery and
    // the payload exercises the raw-byte loader and the restart matrix.
    std::string raw = "not-json";
    raw += '\n';
    ringent::SplitMix64 sm(0x90B);
    for (int i = 0; i < 64; ++i) {
      raw += static_cast<char>(sm.next() & 0xFF);
    }
    write_file(root + "/corpus/entropy90b/raw_bytes_restart", raw);
  }

  // --- postproc: [factor][depth][payload] corrector inputs -----------------
  {
    // factor 3, depth 4, a valid bit payload with an odd tail.
    std::string seed1;
    seed1 += static_cast<char>(3);
    seed1 += static_cast<char>(4);
    for (int i = 0; i < 33; ++i) {
      seed1 += static_cast<char>((i * 5 + 1) % 3 == 0 ? 1 : 0);
    }
    write_file(root + "/corpus/postproc/factor3_depth4_odd_tail", seed1);

    // factor 0 (must throw), depth 17 (must throw), non-bit payload bytes.
    std::string seed2;
    seed2 += static_cast<char>(0);
    seed2 += static_cast<char>(17);
    ringent::SplitMix64 sm(0x9057);
    for (int i = 0; i < 24; ++i) {
      seed2 += static_cast<char>(sm.next() & 0xFF);
    }
    write_file(root + "/corpus/postproc/invalid_params_raw_bytes", seed2);

    // factor 1 (identity), depth 1 (== von Neumann) over alternating bits.
    std::string seed3;
    seed3 += static_cast<char>(1);
    seed3 += static_cast<char>(1);
    for (int i = 0; i < 40; ++i) seed3 += static_cast<char>(i & 1);
    write_file(root + "/corpus/postproc/identity_depth1", seed3);
  }

  // --- campaign: plan, index and cell-record documents ---------------------
  {
    namespace campaign = ringent::campaign;
    // A plan with every feature: overlay spec, two-axis grid, per-entry
    // seeds, plus a default-spec entry.
    campaign::CampaignPlan plan;
    plan.name = "corpus-plan";
    plan.seeds = {20120312, 7};
    campaign::PlanEntry gridded;
    gridded.experiment = "voltage_sweep";
    gridded.spec = Json::object();
    gridded.spec.set("periods", 30);
    gridded.grid.emplace_back(
        "voltages", std::vector<Json>{Json::parse("[1.1, 1.2]"),
                                      Json::parse("[1.15, 1.2, 1.25]")});
    gridded.seeds = {11};
    plan.entries.push_back(gridded);
    campaign::PlanEntry plain;
    plain.experiment = "restart";
    plan.entries.push_back(plain);
    write_file(root + "/corpus/campaign/plan_grid", plan.to_json().dump(2));

    // A valid cell record: the restart experiment's default spec with a
    // synthetic (but schema-valid) manifest, self-keyed.
    const ringent::core::ExperimentDescriptor* restart =
        ringent::core::find_experiment("restart");
    RINGENT_REQUIRE(restart != nullptr, "registry lost restart");
    campaign::CellRecord record;
    record.experiment = "restart";
    record.spec_schema = restart->spec_schema;
    record.spec = restart->default_spec();
    record.seed = 20120312;
    record.device = "cyclone-iii";
    record.manifest = sample_manifest();
    record.manifest.experiment = "restart";
    record.key = campaign::content_key(campaign::CellIdentity{
        record.experiment, record.spec_schema, record.spec, record.seed,
        record.device});
    write_file(root + "/corpus/campaign/cell_record",
               record.to_json().dump(2));

    // The index the store would derive from that one cell.
    campaign::CampaignIndex index;
    index.cells.push_back({record.key, record.experiment, record.seed});
    write_file(root + "/corpus/campaign/index_one_cell",
               index.to_json().dump(2));

    // A record whose stored key does not hash its content (must be
    // rejected as torn — the self-check the resume path leans on).
    campaign::CellRecord tampered = record;
    tampered.seed = 999;  // content changed, key left stale
    write_file(root + "/corpus/campaign/cell_record_stale_key",
               tampered.to_json().dump(2));
  }
  return 0;
}
