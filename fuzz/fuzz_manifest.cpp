// libFuzzer harness for the run-manifest reader path: Json::parse followed
// by core::RunManifest::from_json — the bytes a certification pipeline would
// load back from disk.
//
// Contract enforced on every input:
//  * schema violations (missing keys, wrong types, negative counters) fail
//    with ringent::Error;
//  * an accepted manifest round-trips: to_json must not throw, and
//    from_json(to_json(m)) must serialize to the identical document.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "common/require.hpp"
#include "core/export.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  ringent::core::RunManifest manifest;
  try {
    manifest =
        ringent::core::RunManifest::from_json(ringent::Json::parse(text));
  } catch (const ringent::Error&) {
    return 0;  // rejected cleanly
  }
  // Accepted manifests must survive a full write → read → write cycle.
  const std::string dumped = manifest.to_json().dump(2);
  const ringent::core::RunManifest reloaded =
      ringent::core::RunManifest::from_json(ringent::Json::parse(dumped));
  if (reloaded.to_json().dump(2) != dumped) std::abort();
  return 0;
}
