// libFuzzer harness for Json::parse (run manifests, Chrome traces and any
// JSON a user hands the tooling go through it).
//
// Contract enforced on every input:
//  * malformed input fails with ringent::Error — any other exception type,
//    signal, or sanitizer report is a finding;
//  * accepted input satisfies the dump → parse → dump fixpoint: serializing
//    a parsed document and reparsing it reproduces the same bytes, for both
//    the compact and the pretty (indent 2) form.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "common/require.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  ringent::Json value;
  try {
    value = ringent::Json::parse(text);
  } catch (const ringent::Error&) {
    return 0;  // rejected cleanly
  }
  // From here on nothing may throw: the value came from parse(), so it must
  // be serializable and its serialization must be stable.
  const std::string compact = value.dump();
  if (ringent::Json::parse(compact).dump() != compact) std::abort();
  if (ringent::Json::parse(value.dump(2)).dump() != compact) std::abort();
  return 0;
}
