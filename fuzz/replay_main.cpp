// Deterministic corpus replay: a plain main() for the libFuzzer harnesses.
//
// Linked together with one fuzz_*.cpp it produces a <harness>_replay binary
// that feeds every file named on the command line (directories are expanded
// non-recursively, inputs run in sorted order) through
// LLVMFuzzerTestOneInput. No fuzzer runtime is involved, so the binary
// builds with any toolchain and runs as an ordinary ctest case: an escaped
// exception or abort() from the harness fails the test exactly as it would
// crash the fuzzer.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    if (fs::is_directory(arg)) {
      for (const auto& entry : fs::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (fs::is_regular_file(arg)) {
      inputs.push_back(arg);
    } else {
      std::fprintf(stderr, "replay: no such input: %s\n", argv[i]);
      return 2;
    }
  }
  std::sort(inputs.begin(), inputs.end());
  for (const auto& path : inputs) {
    const auto bytes = read_bytes(path);
    std::fprintf(stderr, "replay: %s (%zu bytes)\n", path.c_str(),
                 bytes.size());
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
  }
  std::printf("replayed %zu inputs clean\n", inputs.size());
  return 0;
}
