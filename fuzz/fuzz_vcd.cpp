// libFuzzer harness for sim::read_vcd, the importer for foreign scalar
// waveform dumps.
//
// Contract enforced on every input:
//  * malformed input fails with ringent::Error (std::stoll leakage,
//    unchecked overflow, or a sanitizer report is a finding);
//  * an accepted document round-trips through sim::VcdWriter: re-reading our
//    own writer's output must succeed, and a further write → read cycle must
//    be a byte-level fixpoint. (The first cycle may canonicalize, e.g. a
//    multi-token signal name collapses to its first token.)
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/require.hpp"
#include "sim/vcd.hpp"
#include "sim/vcd_read.hpp"

namespace {

std::string write_doc(const ringent::sim::VcdDocument& doc) {
  ringent::sim::VcdWriter writer(doc.module_name);
  for (const auto& signal : doc.signals) writer.add_signal(signal.trace);
  std::ostringstream out;
  writer.write(out);
  return out.str();
}

ringent::sim::VcdDocument read_doc(const std::string& text) {
  std::istringstream in(text);
  return ringent::sim::read_vcd(in);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  ringent::sim::VcdDocument doc;
  try {
    doc = read_doc(text);
  } catch (const ringent::Error&) {
    return 0;  // rejected cleanly
  }
  // Nothing below may throw: these documents only contain what the reader
  // itself produced.
  const std::string first = write_doc(doc);
  const std::string second = write_doc(read_doc(first));
  if (write_doc(read_doc(second)) != second) std::abort();
  return 0;
}
