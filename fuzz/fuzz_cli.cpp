// libFuzzer harness for the shared bench CLI surface: bench::parse_cli plus
// sim::parse_jobs_arg / sim::resolve_jobs.
//
// The input is split on newlines/NULs into an argv vector (argv[0] fixed).
// Contract enforced on every input:
//  * flag parsing never throws and never crashes, whatever the tokens;
//  * whatever --jobs text an attacker supplies, the *resolved* worker count
//    always lands in [1, max_jobs()] — the bug class where
//    "--jobs=99999999999999999999" asked ThreadPool for ~2^64 threads.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli.hpp"
#include "sim/parallel.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  constexpr std::size_t max_tokens = 256;
  std::vector<std::string> tokens;
  tokens.emplace_back("fuzz_cli");
  std::string current;
  for (std::size_t i = 0; i < size && tokens.size() < max_tokens; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n' || c == '\0') {
      tokens.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty() && tokens.size() < max_tokens) {
    tokens.push_back(current);
  }
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (auto& token : tokens) argv.push_back(token.data());
  const int argc = static_cast<int>(argv.size());

  const ringent::bench::CliOptions options =
      ringent::bench::parse_cli(argc, argv.data(), /*diagnostics=*/nullptr);
  const std::size_t resolved = ringent::sim::resolve_jobs(options.jobs);
  if (resolved < 1 || resolved > ringent::sim::max_jobs()) std::abort();

  const std::size_t raw = ringent::sim::parse_jobs_arg(argc, argv.data());
  const std::size_t raw_resolved = ringent::sim::resolve_jobs(raw);
  if (raw_resolved < 1 || raw_resolved > ringent::sim::max_jobs()) {
    std::abort();
  }
  return 0;
}
