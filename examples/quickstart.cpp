// Quickstart: build one STR and one IRO at similar frequencies, run them,
// and print the numbers the paper is about — frequency, period jitter, and
// the Gaussianity of the jitter.
#include <cstdio>

#include "analysis/jitter.hpp"
#include "analysis/normality.hpp"
#include "analysis/periods.hpp"
#include "core/experiments.hpp"
#include "core/oscillator.hpp"
#include "measure/frequency.hpp"

using namespace ringent;

namespace {

void characterize(const core::RingSpec& spec) {
  core::Oscillator osc =
      core::Oscillator::build(spec, core::cyclone_iii(), {});
  osc.run_periods(20000);

  const auto periods = analysis::periods_ps(osc.output());
  const auto jitter = analysis::summarize_jitter(periods);
  const auto normality = analysis::jarque_bera(periods);

  std::printf("%-8s  F = %7.2f MHz   T = %8.1f ps   sigma_p = %5.2f ps   "
              "c2c = %5.2f ps   gaussian: %s (JB p=%.3f)\n",
              spec.name().c_str(), measure::mean_frequency_mhz(osc.output()),
              jitter.mean_period_ps, jitter.period_jitter_ps,
              jitter.cycle_to_cycle_jitter_ps, normality.gaussian ? "yes" : "no",
              normality.p_value);
}

}  // namespace

int main() {
  std::printf("ringent quickstart: STR vs IRO entropy sources "
              "(calibrated Cyclone III model)\n\n");
  characterize(core::RingSpec::iro(3));
  characterize(core::RingSpec::iro(5));
  characterize(core::RingSpec::iro(25));
  characterize(core::RingSpec::str(4));
  characterize(core::RingSpec::str(24));
  characterize(core::RingSpec::str(96));
  std::printf(
      "\nNote how the IRO period jitter grows with the ring length while the\n"
      "STR period jitter stays at the single-stage level (paper Figs. 11/12).\n");
  return 0;
}
