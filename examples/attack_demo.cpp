// Supply-modulation attack on ring-oscillator entropy sources (paper
// Sec. IV-B, refs [1][2]).
//
// An attacker superimposes a sine on the core rail. Everything the tone
// contributes to the output timing is deterministic and attacker-known — it
// adds NO entropy, but blind statistical tests cannot tell it from noise.
// This demo quantifies the attack in the domain where the paper argues
// (period jitter):
//   * deterministic period swing under attack, IRO vs STR at equal stage
//     count — the STR's token spacing attenuates the absolute tone by close
//     to an order of magnitude;
//   * the det/random budget ratio — the fraction of observed "jitter" an
//     attacker controls;
//   * end-to-end evidence on the bit stream of an IRO-based generator: the
//     attack tone shows up as a spectral line in the sampled bits, which
//     the on-board linear regulator suppresses.
#include <cstdio>
#include <span>
#include <vector>

#include "analysis/fft.hpp"
#include "analysis/periods.hpp"
#include "common/stats.hpp"
#include "core/experiments.hpp"
#include "core/oscillator.hpp"
#include "trng/elementary.hpp"

using namespace ringent;
using namespace ringent::core;

namespace {

struct PeriodReading {
  double mean_ps = 0.0;
  double det_swing_ps = 0.0;  ///< (p99 - p1)/2 of periods: tone + noise tails
  double random_ps = 0.0;     ///< c2c/sqrt(2): modulation-immune
};

PeriodReading period_domain(const RingSpec& spec, double attack_mv,
                            double attack_hz, bool regulator_on) {
  const auto& cal = cyclone_iii();
  fpga::Supply supply(cal.nominal_voltage);
  supply.set_modulation(fpga::Modulation::sine(attack_mv * 1e-3, attack_hz));
  fpga::Regulator regulator;
  regulator.ac_attenuation = regulator_on ? 0.08 : 1.0;
  supply.set_regulator(regulator);

  BuildOptions build;
  build.supply = &supply;
  Oscillator osc = Oscillator::build(spec, cal, build);
  osc.run_periods(60000);

  std::vector<double> periods = analysis::periods_ps(osc.output());
  PeriodReading out;
  out.mean_ps = describe(periods).mean();
  const double p99 = percentile(periods, 99.0);
  const double p1 = percentile(periods, 1.0);
  out.det_swing_ps = (p99 - p1) / 2.0;
  const auto diffs = analysis::first_differences(periods);
  out.random_ps = describe(diffs).stddev() / std::sqrt(2.0);
  return out;
}

void bit_stream_line(double attack_mv, bool regulator_on) {
  const auto& cal = cyclone_iii();
  const double attack_hz = 190e3;
  const Time fs = Time::from_ns(250.0);  // 4 MHz sampling
  const RingSpec spec = RingSpec::iro(25);

  fpga::Supply supply(cal.nominal_voltage);
  supply.set_modulation(fpga::Modulation::sine(attack_mv * 1e-3, attack_hz));
  fpga::Regulator regulator;
  regulator.ac_attenuation = regulator_on ? 0.08 : 1.0;
  supply.set_regulator(regulator);

  BuildOptions build;
  build.supply = &supply;
  Oscillator osc = Oscillator::build(spec, cal, build);

  const std::size_t bit_count = 32768;
  osc.run_periods(static_cast<std::size_t>(
      fs.ps() / osc.nominal_period().ps() * (bit_count + 2.0) + 256));

  trng::ElementaryTrngConfig config;
  config.sampling_period = fs;
  config.start = osc.output().transitions().front().at;
  const auto bits = trng::elementary_trng_bits(osc.output(), config, bit_count);

  std::vector<double> series(bits.begin(), bits.end());
  const double tone_cycles = attack_hz * fs.seconds();
  const double line = analysis::tone_amplitude(series, tone_cycles);
  std::printf("  %3.0f mV attack, regulator %-3s: bit-stream line at f_attack "
              "= %.4f (blind-noise floor ~ %.4f)\n",
              attack_mv, regulator_on ? "on" : "off", line,
              2.0 / std::sqrt(static_cast<double>(bit_count)));
}

}  // namespace

int main() {
  std::printf("Supply-modulation attack demo\n");
  std::printf("=============================\n\n");

  std::printf("period domain, 100 mV sine @ 37 kHz, no regulator, equal "
              "stage count:\n");
  std::printf("  %-8s %-12s %-18s %-14s %s\n", "ring", "T (ps)",
              "det swing (ps)", "random (ps)", "det/random");
  for (const RingSpec& spec : {RingSpec::iro(25), RingSpec::str(24)}) {
    const PeriodReading quiet = period_domain(spec, 0.0001, 37e3, false);
    const PeriodReading hit = period_domain(spec, 100.0, 37e3, false);
    std::printf("  %-8s %-12.1f %6.1f -> %-8.1f %5.2f -> %-6.2f %8.1f\n",
                spec.name().c_str(), hit.mean_ps, quiet.det_swing_ps,
                hit.det_swing_ps, quiet.random_ps, hit.random_ps,
                hit.det_swing_ps / hit.random_ps);
  }

  std::printf("\nbit stream of the IRO 25C elementary TRNG (4 MHz sampling, "
              "190 kHz tone):\n");
  bit_stream_line(0.001, true);
  bit_stream_line(100.0, true);
  bit_stream_line(100.0, false);

  std::printf(
      "\nReading the results:\n"
      " * the attack multiplies the IRO's deterministic period swing to\n"
      "   ~60x its random jitter, while the STR at the same stage count\n"
      "   absorbs most of the absolute tone (paper Sec. IV-B);\n"
      " * everything in the 'det' column is attacker-known — it inflates\n"
      "   measured jitter without adding entropy, which is why entropy\n"
      "   estimation must use the random component only (ref [2]);\n"
      " * on the bit stream, the attack prints a spectral line at the tone\n"
      "   frequency; the boards' linear regulator exists to suppress this\n"
      "   lever, and simple pass/fail test batteries never see it.\n");
  return 0;
}
