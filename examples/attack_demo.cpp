// Supply-modulation attack on ring-oscillator entropy sources (paper
// Sec. IV-B, refs [1][2]).
//
// An attacker superimposes a sine on the core rail. Everything the tone
// contributes to the output timing is deterministic and attacker-known — it
// adds NO entropy, but blind statistical tests cannot tell it from noise.
// This demo quantifies the attack in the domain where the paper argues
// (period jitter):
//   * deterministic period swing under attack, IRO vs STR at equal stage
//     count — the STR's token spacing attenuates the absolute tone by close
//     to an order of magnitude;
//   * the det/random budget ratio — the fraction of observed "jitter" an
//     attacker controls;
//   * end-to-end evidence on the bit stream of an IRO-based generator: the
//     attack tone shows up as a spectral line in the sampled bits, which
//     the on-board linear regulator suppresses;
//   * what a FIELDED generator does about it: the same attack against the
//     health-monitored pipeline (run_attack_resilience) — the IRO's
//     monitors alarm and the generator mutes/re-locks, the matched STR
//     rides the whole attack out.
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "analysis/fft.hpp"
#include "analysis/periods.hpp"
#include "common/stats.hpp"
#include "core/experiments.hpp"
#include "core/oscillator.hpp"
#include "trng/elementary.hpp"
#include "trng/resilient.hpp"

using namespace ringent;
using namespace ringent::core;

namespace {

struct PeriodReading {
  double mean_ps = 0.0;
  double det_swing_ps = 0.0;  ///< (p99 - p1)/2 of periods: tone + noise tails
  double random_ps = 0.0;     ///< c2c/sqrt(2): modulation-immune
};

PeriodReading period_domain(const RingSpec& spec, double attack_mv,
                            double attack_hz, bool regulator_on) {
  const auto& cal = cyclone_iii();
  fpga::Supply supply(cal.nominal_voltage);
  supply.set_modulation(fpga::Modulation::sine(attack_mv * 1e-3, attack_hz));
  fpga::Regulator regulator;
  regulator.ac_attenuation = regulator_on ? 0.08 : 1.0;
  supply.set_regulator(regulator);

  BuildOptions build;
  build.supply = &supply;
  Oscillator osc = Oscillator::build(spec, cal, build);
  osc.run_periods(60000);

  std::vector<double> periods = analysis::periods_ps(osc.output());
  PeriodReading out;
  out.mean_ps = describe(periods).mean();
  const double p99 = percentile(periods, 99.0);
  const double p1 = percentile(periods, 1.0);
  out.det_swing_ps = (p99 - p1) / 2.0;
  const auto diffs = analysis::first_differences(periods);
  out.random_ps = describe(diffs).stddev() / std::sqrt(2.0);
  return out;
}

void bit_stream_line(double attack_mv, bool regulator_on) {
  const auto& cal = cyclone_iii();
  const double attack_hz = 190e3;
  const Time fs = Time::from_ns(250.0);  // 4 MHz sampling
  const RingSpec spec = RingSpec::iro(25);

  fpga::Supply supply(cal.nominal_voltage);
  supply.set_modulation(fpga::Modulation::sine(attack_mv * 1e-3, attack_hz));
  fpga::Regulator regulator;
  regulator.ac_attenuation = regulator_on ? 0.08 : 1.0;
  supply.set_regulator(regulator);

  BuildOptions build;
  build.supply = &supply;
  Oscillator osc = Oscillator::build(spec, cal, build);

  const std::size_t bit_count = 32768;
  osc.run_periods(static_cast<std::size_t>(
      fs.ps() / osc.nominal_period().ps() * (bit_count + 2.0) + 256));

  trng::ElementaryTrngConfig config;
  config.sampling_period = fs;
  config.start = osc.output().transitions().front().at;
  const auto bits = trng::elementary_trng_bits(osc.output(), config, bit_count);

  std::vector<double> series(bits.begin(), bits.end());
  const double tone_cycles = attack_hz * fs.seconds();
  const double line = analysis::tone_amplitude(series, tone_cycles);
  std::printf("  %3.0f mV attack, regulator %-3s: bit-stream line at f_attack "
              "= %.4f (blind-noise floor ~ %.4f)\n",
              attack_mv, regulator_on ? "on" : "off", line,
              2.0 / std::sqrt(static_cast<double>(bit_count)));
}

void resilience_section() {
  // The operational ending of the story: run ONLY the tuned supply-tone
  // scenario from the paper-default sweep against both topologies and show
  // what the degradation state machine does about it.
  AttackResilienceSpec spec = AttackResilienceSpec::paper_default();
  spec.scenarios = {spec.scenarios.at(1)};  // "supply-tone"
  const auto result = run_attack_resilience(spec, cyclone_iii());

  std::printf("  %-8s %-9s %-12s %-14s %-8s %s\n", "ring", "final",
              "detect@bit", "recover(bits)", "muted", "transitions");
  for (const auto& cell : result.cells) {
    const std::string detect =
        cell.detection_latency_bits < 0
            ? "-"
            : std::to_string(cell.detection_latency_bits);
    const std::string recover =
        cell.recovery_bits < 0 ? "-" : std::to_string(cell.recovery_bits);
    std::printf("  %-8s %-9s %-12s %-14s %5.1f%%   %zu\n",
                cell.ring.name().c_str(), trng::to_string(cell.final_state),
                detect.c_str(), recover.c_str(), 100.0 * cell.muted_fraction,
                cell.transitions.size());
  }
}

}  // namespace

int main() {
  std::printf("Supply-modulation attack demo\n");
  std::printf("=============================\n\n");

  std::printf("period domain, 100 mV sine @ 37 kHz, no regulator, equal "
              "stage count:\n");
  std::printf("  %-8s %-12s %-18s %-14s %s\n", "ring", "T (ps)",
              "det swing (ps)", "random (ps)", "det/random");
  for (const RingSpec& spec : {RingSpec::iro(25), RingSpec::str(24)}) {
    const PeriodReading quiet = period_domain(spec, 0.0001, 37e3, false);
    const PeriodReading hit = period_domain(spec, 100.0, 37e3, false);
    std::printf("  %-8s %-12.1f %6.1f -> %-8.1f %5.2f -> %-6.2f %8.1f\n",
                spec.name().c_str(), hit.mean_ps, quiet.det_swing_ps,
                hit.det_swing_ps, quiet.random_ps, hit.random_ps,
                hit.det_swing_ps / hit.random_ps);
  }

  std::printf("\nbit stream of the IRO 25C elementary TRNG (4 MHz sampling, "
              "190 kHz tone):\n");
  bit_stream_line(0.001, true);
  bit_stream_line(100.0, true);
  bit_stream_line(100.0, false);

  std::printf("\nfielded generator under the tuned 2 kHz tone "
              "(health monitors + degradation policy):\n");
  resilience_section();

  std::printf(
      "\nReading the results:\n"
      " * the attack multiplies the IRO's deterministic period swing to\n"
      "   ~60x its random jitter, while the STR at the same stage count\n"
      "   absorbs most of the absolute tone (paper Sec. IV-B);\n"
      " * everything in the 'det' column is attacker-known — it inflates\n"
      "   measured jitter without adding entropy, which is why entropy\n"
      "   estimation must use the random component only (ref [2]);\n"
      " * on the bit stream, the attack prints a spectral line at the tone\n"
      "   frequency; the boards' linear regulator exists to suppress this\n"
      "   lever, and simple pass/fail test batteries never see it;\n"
      " * a health-monitored generator turns the physics into an action:\n"
      "   the IRO's RCT alarms mid-attack and the pipeline mutes, re-locks\n"
      "   and recovers, while the matched STR never leaves healthy —\n"
      "   bench/ext_attack_resilience sweeps the full scenario matrix.\n");
  return 0;
}
