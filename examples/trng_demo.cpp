// Elementary ring-oscillator TRNG — the paper's motivating application.
//
// Samples a free-running ring with a 4 MHz reference clock, estimates the
// entropy of the raw bits, compares with the Baudet-style bound computed
// from the measured jitter, and shows why raw bits at a practical sampling
// rate need post-processing (successive samples are correlated because the
// phase only diffuses by sqrt(Ts/T) * sigma_p per sample — a few tens of ps
// against a ~2-3 ns period).
#include <cstdio>

#include "analysis/autocorr.hpp"
#include "analysis/entropy.hpp"
#include "analysis/jitter.hpp"
#include "analysis/periods.hpp"
#include "core/experiments.hpp"
#include "core/oscillator.hpp"
#include "trng/elementary.hpp"
#include "trng/entropy_model.hpp"
#include "trng/fips.hpp"
#include "trng/postproc.hpp"

using namespace ringent;
using namespace ringent::core;

namespace {

void demo(const RingSpec& spec, Time sampling_period, std::size_t bits_wanted) {
  const auto& cal = cyclone_iii();
  BuildOptions build;
  build.warmup_periods = 128;
  Oscillator osc = Oscillator::build(spec, cal, build);

  const double periods_per_sample =
      sampling_period.ps() / osc.nominal_period().ps();
  osc.run_periods(static_cast<std::size_t>(
      periods_per_sample * static_cast<double>(bits_wanted + 2) + 256));

  const auto periods = analysis::periods_ps(osc.output());
  const auto jitter = analysis::summarize_jitter(periods);

  trng::ElementaryTrngConfig config;
  config.sampling_period = sampling_period;
  config.start = osc.output().transitions().front().at;
  const auto bits =
      trng::elementary_trng_bits(osc.output(), config, bits_wanted);

  const double h_bound = trng::entropy_lower_bound(
      jitter.period_jitter_ps, jitter.mean_period_ps, sampling_period);

  std::printf("%s sampled at %.2f MHz (T_ring = %.0f ps, sigma_p = %.2f ps)\n",
              spec.name().c_str(), 1e6 / sampling_period.ps(),
              jitter.mean_period_ps, jitter.period_jitter_ps);
  std::printf("  raw bits: bias = %.4f   H1 = %.4f   H8 = %.4f   lag-1 "
              "autocorr = %+.3f\n",
              analysis::bit_bias(bits), analysis::shannon_entropy_per_bit(bits),
              analysis::block_entropy_per_bit(bits, 8),
              analysis::bit_autocorrelation(bits, 1));
  std::printf("  model entropy bound at this rate: H >= %.3f bits/bit "
              "(raw bits are NOT full entropy)\n",
              h_bound);

  // Post-processing: XOR-decimate by 8 (entropy accumulates over 8 sample
  // intervals per output bit), then check pairwise statistics.
  const auto decimated = trng::xor_decimate(bits, 8);
  std::printf("  after XOR-8 decimation (%zu bits): bias = %.4f   H8 = %.4f  "
              " serial test: %s\n",
              decimated.size(), analysis::bit_bias(decimated),
              analysis::block_entropy_per_bit(decimated, 8),
              trng::serial_test(decimated).pass ? "PASS" : "FAIL");
  const auto corrected = trng::von_neumann(bits);
  std::printf("  von Neumann keeps %zu bits at bias = %.4f\n\n",
              corrected.size(), analysis::bit_bias(corrected));
}

}  // namespace

int main() {
  std::printf("Elementary ring-oscillator TRNG demo\n");
  std::printf("====================================\n\n");
  const Time fs = Time::from_ns(250.0);  // 4 MHz reference clock
  const std::size_t bits = 32768;
  demo(RingSpec::str(24), fs, bits);
  demo(RingSpec::iro(5), fs, bits);
  std::printf(
      "Design rule made quantitative by trng::required_sampling_period():\n"
      "to reach H >= 0.997 per RAW bit, a 3.4 ps / 2.3 ns STR must be\n"
      "sampled below ~%.1f kHz — which is why practical generators sample\n"
      "faster and post-process, and why the quality of the *random* jitter\n"
      "component (the paper's subject) is the real currency.\n",
      1e9 / trng::required_sampling_period(0.997, 3.4, 2310.0).ps());
  return 0;
}
