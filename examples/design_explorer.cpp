// Design-space explorer: what a TRNG designer would actually do with this
// library. For a target output bit rate and entropy floor, compare candidate
// entropy sources: measure frequency and jitter in simulation, apply the
// entropy bound, and report which designs meet spec with how much margin —
// including the robustness columns (Table I / II) that the paper argues
// should drive the choice.
#include <cstdio>
#include <vector>

#include "analysis/jitter.hpp"
#include "analysis/periods.hpp"
#include "core/experiments.hpp"
#include "core/report.hpp"
#include "trng/entropy_model.hpp"

using namespace ringent;
using namespace ringent::core;

int main() {
  const auto& cal = cyclone_iii();
  const double target_entropy = 0.997;  // AIS31-ish floor per raw bit

  const std::vector<RingSpec> candidates = {
      RingSpec::iro(3),  RingSpec::iro(5),  RingSpec::iro(25),
      RingSpec::str(4),  RingSpec::str(24), RingSpec::str(96),
  };

  std::printf("Entropy-source design explorer (target: H >= %.3f per raw "
              "bit)\n\n",
              target_entropy);
  Table table({"Ring", "F (MHz)", "sigma_p (ps)", "max bit rate", "dF 0.4V",
               "sigma_rel 25 boards"});
  for (const auto& spec : candidates) {
    ExperimentOptions options;
    options.board_index = 0;
    const auto periods = collect_periods_ps(spec, cal, 20000, options);
    const auto jitter = analysis::summarize_jitter(periods);

    const Time ts = trng::required_sampling_period(
        target_entropy, jitter.period_jitter_ps, jitter.mean_period_ps);
    const double rate_kbps = 1e9 / ts.ps();

    const auto sweep = run_voltage_sweep(
        VoltageSweepSpec{spec, {1.0, 1.2, 1.4}, 200}, cal);
    const auto process =
        run_process_variability(ProcessVariabilitySpec{spec, 25, 200}, cal);

    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.1f kbit/s", rate_kbps);
    table.add_row({spec.name(), fmt_double(1e6 / jitter.mean_period_ps, 1),
                   fmt_double(jitter.period_jitter_ps, 2), rate,
                   fmt_percent(sweep.excursion, 1),
                   fmt_percent(process.sigma_rel, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "How to read this: raw throughput favours long IROs (more jitter per\n"
      "period), but their period grows linearly with length, their voltage\n"
      "excursion is fixed at ~48%%, and their extra-device spread shrinks\n"
      "only by slowing down. The 96-stage STR combines a >300 MHz clock,\n"
      "length-independent jitter, the best dF and the tightest sigma_rel —\n"
      "the paper's conclusion in one table.\n");
  return 0;
}
