// Coherent-sampling TRNG (paper ref [7]) on two rings — and why the paper's
// conclusion singles it out as the design that benefits most from the STR's
// process robustness (Table II).
//
// The experiment driver (core::run_coherent_across_boards) builds the
// two-ring generator — the sampling ring detuned 1% by design — on ten
// simulated boards and reads back the beat window each device actually
// delivers. STR 96C pairs stay near the design point; IRO 5C pairs, whose
// per-board mismatch (~1% between two 5-LUT placements) rivals the detune
// itself, swing by design-breaking amounts.
#include <cstdio>

#include "core/experiments.hpp"

using namespace ringent;
using namespace ringent::core;

int main() {
  const auto& cal = cyclone_iii();
  const double detune = 0.01;
  const unsigned boards = 10;

  std::printf("Coherent-sampling TRNG across %u boards\n", boards);
  std::printf("========================================\n\n");
  std::printf("design: sampling ring detuned %.0f%% -> target half-beat = "
              "%.0f samples\n\n",
              detune * 100.0, 1.0 / (2.0 * detune));
  for (const RingSpec& spec : {RingSpec::str(96), RingSpec::iro(5)}) {
    const auto result = run_coherent_across_boards(
        CoherentSweepSpec{spec, detune, boards}, cal);
    std::printf("%s pair:\n", spec.name().c_str());
    for (const auto& b : result.boards) {
      std::printf("  board %u: half-beat = %6.0f samples  (implied detune "
                  "%.2f%%)   bits = %5zu   LSB bias = %.3f\n",
                  b.board, b.half_beat_samples, 100.0 * b.implied_detune,
                  b.bits, b.lsb_bias);
    }
    std::printf("  => implied detune: mean %.2f%%, spread %.2f%%, worst "
                "deviation from the %.0f%% design %.2f%%\n\n",
                100.0 * result.detune_mean, 100.0 * result.detune_sigma,
                detune * 100.0, 100.0 * result.worst_deviation);
  }
  std::printf(
      "The STR pair's counter window is usable on every board; the IRO\n"
      "pair's per-board mismatch (sigma ~ 1%% between two 5-LUT placements)\n"
      "is as large as the design detune itself, so its window swings by\n"
      "design-breaking amounts and can even flip sign — the guarantee\n"
      "problem the paper's conclusion highlights for coherent-sampling\n"
      "TRNGs, solved by the STR's Table II robustness.\n");
  return 0;
}
