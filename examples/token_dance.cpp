// Fig. 4 companion: token/bubble semantics of a self-timed ring, on the
// untimed model. Prints the stage truth table, then steps a small ring and
// shows tokens moving forward while bubbles move backward.
#include <cstdio>

#include "ring/str_logic.hpp"

using namespace ringent::ring;

int main() {
  std::printf("Muller-stage truth table (F = C[i-1], R = C[i+1]):\n");
  std::printf("  F R | C next\n");
  std::printf("  0 0 | C      (hold)\n");
  std::printf("  0 1 | 0      (copy F)\n");
  std::printf("  1 0 | 1      (copy F)\n");
  std::printf("  1 1 | C      (hold)\n\n");

  RingState state = make_initial_state(12, 4, TokenPlacement::clustered);
  std::printf("12-stage ring, 4 tokens, clustered start. Synchronous steps\n"
              "(every enabled stage fires at once); T = token, . = bubble:\n\n");
  std::printf("  step  state         enabled stages\n");
  for (int step = 0; step <= 14; ++step) {
    std::printf("  %4d  %s  {", step, token_string(state).c_str());
    bool first = true;
    for (std::size_t i : enabled_stages(state)) {
      std::printf("%s%zu", first ? "" : ",", i);
      first = false;
    }
    std::printf("}\n");
    state = step_all(state);
  }

  std::printf("\nInvariants on display (all property-tested in "
              "tests/test_ring_logic.cpp):\n"
              "  * the token count never changes (it is set at reset and\n"
              "    determines the frequency: T = 2 L Dstage / NT);\n"
              "  * a token only advances into a bubble, so adjacent stages\n"
              "    are never simultaneously enabled;\n"
              "  * with NT >= 2 (even) and NB >= 1 the ring can never "
              "deadlock.\n");
  return 0;
}
