// ringent_cli — command-line front end over the characterization library.
//
//   ringent_cli characterize str 96 [--periods 20000] [--board 0] [--seed S]
//   ringent_cli sweep-voltage iro 5 [--from 1.0] [--to 1.4] [--step 0.05]
//   ringent_cli sweep-temperature str 96 [--from -20] [--to 85] [--step 15]
//   ringent_cli modes 32 [--charlie-scale 1.0] [--clustered]
//   ringent_cli predict 32 10            (analytic steady state, no sim)
//   ringent_cli trng str 24 [--rate-mhz 4] [--bits 16384]
//   ringent_cli vcd str 16 --out ring.vcd [--tokens 4] [--clustered]
//   ringent_cli serve-bench [--slots 4] [--max-workers 4] [--conditioner lfsr]
//   ringent_cli --list                   (enumerate registered experiments)
//   ringent_cli run <experiment> [--spec FILE] [--seed S] [--jobs N]
//               [--metrics] [--telemetry FILE]
//   ringent_cli campaign run <plan.json> [--dir DIR] [--shard i/N]
//               [--jobs N] [--max-cells N]
//   ringent_cli campaign status <plan.json> [--dir DIR]
//   ringent_cli campaign verify <plan.json> [--dir DIR]
//
// `run` dispatches through core::experiment_registry(): it executes the
// named driver's small default spec — or, with --spec FILE, the JSON spec
// document in FILE (unknown/missing keys are rejected with the experiment's
// schema name) — with metrics on and prints the run manifest the driver
// emitted (also written to RINGENT_OUT_DIR or cwd).
// --telemetry streams a "ringent.telemetry/1" snapshot of the run to FILE;
// --metrics additionally prints the full counter/phase/histogram breakdown
// as a human-readable table on stderr (stdout keeps the stable manifest
// summary, so scripts scraping it are unaffected).
//
// `campaign run` expands the plan into content-addressed cells and executes
// only the ones the store (DIR, default <plan-stem>.campaign) has no valid
// record for — re-running after an interruption (even SIGKILL) resumes
// where it died; re-running a complete campaign is a pure cache scan.
// `--shard i/N` makes this process responsible for every N-th cell, for
// multi-process fan-out over a shared store. `status` reports cache
// coverage without running anything; `verify` recomputes every planned key
// and checks record integrity, orphans and the index.
//
// Exit code 0 on success, 2 on usage errors, 1 on runtime errors.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/autocorr.hpp"
#include "campaign/plan.hpp"
#include "campaign/runner.hpp"
#include "campaign/store.hpp"
#include "analysis/entropy.hpp"
#include "analysis/jitter.hpp"
#include "analysis/normality.hpp"
#include "analysis/periods.hpp"
#include "common/require.hpp"
#include "core/experiments.hpp"
#include "core/oscillator.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "sim/metrics.hpp"
#include "measure/frequency.hpp"
#include "ring/analytic.hpp"
#include "ring/mode.hpp"
#include "sim/vcd.hpp"
#include "sim/vcd_read.hpp"
#include "trng/elementary.hpp"
#include "trng/entropy_model.hpp"
#include "trng/health.hpp"
#include "trng/nist.hpp"

using namespace ringent;
using namespace ringent::core;

namespace {

/// Minimal option parser: positional args plus --key value / --flag.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string key = arg.substr(2);
        if (i + 1 < argc && argv[i + 1][0] != '-') {
          options_[key] = argv[++i];
        } else {
          options_[key] = "";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  double number(const std::string& key, double fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback : std::strtod(it->second.c_str(),
                                                         nullptr);
  }
  long integer(const std::string& key, long fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? fallback
                                : std::strtol(it->second.c_str(), nullptr, 10);
  }
  std::string text(const std::string& key, std::string fallback) const {
    const auto it = options_.find(key);
    return it == options_.end() ? std::move(fallback) : it->second;
  }
  bool flag(const std::string& key) const { return options_.count(key) != 0; }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

RingSpec parse_spec(const std::string& kind, const std::string& stages,
                    const Args& args) {
  const auto n = static_cast<std::size_t>(std::strtoul(stages.c_str(),
                                                       nullptr, 10));
  if (kind == "iro") return RingSpec::iro(n);
  if (kind == "str") {
    const auto tokens = static_cast<std::size_t>(args.integer("tokens", 0));
    const auto placement = args.flag("clustered")
                               ? ring::TokenPlacement::clustered
                               : ring::TokenPlacement::evenly_spread;
    return RingSpec::str(n, tokens, placement);
  }
  throw PreconditionError("ring kind must be 'iro' or 'str'");
}

BuildOptions build_options(const Args& args, const fpga::Board** board_out,
                           std::optional<fpga::Board>& board_storage) {
  BuildOptions build;
  build.noise_seed = static_cast<std::uint64_t>(args.integer("seed", 20120312));
  const long board = args.integer("board", -1);
  if (board >= 0) {
    board_storage.emplace(build.noise_seed, static_cast<unsigned>(board),
                          cyclone_iii().process);
    build.board = &*board_storage;
    *board_out = build.board;
  }
  return build;
}

int cmd_characterize(const Args& args) {
  const RingSpec spec =
      parse_spec(args.positional().at(0), args.positional().at(1), args);
  std::optional<fpga::Board> board;
  const fpga::Board* bp = nullptr;
  BuildOptions build = build_options(args, &bp, board);
  Oscillator osc = Oscillator::build(spec, cyclone_iii(), build);
  const auto periods_wanted =
      static_cast<std::size_t>(args.integer("periods", 20000));
  osc.run_periods(periods_wanted);

  const auto periods = analysis::periods_ps(osc.output());
  const auto jitter = analysis::summarize_jitter(periods);
  const auto jb = analysis::jarque_bera(periods);

  std::printf("%s on the calibrated Cyclone III model%s\n",
              spec.name().c_str(), bp != nullptr ? " (with board mismatch)" :
                                                    "");
  std::printf("  frequency       : %s\n",
              fmt_mhz(measure::mean_frequency_mhz(osc.output())).c_str());
  std::printf("  mean period     : %s\n",
              fmt_ps(jitter.mean_period_ps, 1).c_str());
  std::printf("  period jitter   : %s\n",
              fmt_ps(jitter.period_jitter_ps).c_str());
  std::printf("  c2c jitter      : %s\n",
              fmt_ps(jitter.cycle_to_cycle_jitter_ps).c_str());
  std::printf("  lag-1 autocorr  : %+.3f\n",
              analysis::autocorrelation(periods, 1));
  std::printf("  gaussianity (JB): p = %.3f (%s)\n", jb.p_value,
              jb.gaussian ? "accept" : "reject");
  std::printf("  samples         : %zu periods\n", jitter.samples);
  return 0;
}

int cmd_sweep_voltage(const Args& args) {
  const RingSpec spec =
      parse_spec(args.positional().at(0), args.positional().at(1), args);
  std::vector<double> volts;
  for (double v = args.number("from", 1.0);
       v <= args.number("to", 1.4) + 1e-9; v += args.number("step", 0.05)) {
    volts.push_back(v);
  }
  // The driver normalizes at the nominal voltage; make sure the grid has it.
  const double v_nom = cyclone_iii().nominal_voltage;
  if (std::none_of(volts.begin(), volts.end(), [&](double v) {
        return std::abs(v - v_nom) < 1e-9;
      })) {
    volts.push_back(v_nom);
    std::sort(volts.begin(), volts.end());
  }
  const auto sweep =
      run_voltage_sweep(VoltageSweepSpec{spec, volts}, cyclone_iii());
  Table table({"V", "F (MHz)", "Fn"});
  for (const auto& p : sweep.points) {
    table.add_row({fmt_double(p.voltage_v, 2), fmt_double(p.frequency_mhz, 2),
                   fmt_double(p.normalized, 4)});
  }
  std::printf("%s\nexcursion dF = %s\n", table.str().c_str(),
              fmt_percent(sweep.excursion, 1).c_str());
  return 0;
}

int cmd_sweep_temperature(const Args& args) {
  const RingSpec spec =
      parse_spec(args.positional().at(0), args.positional().at(1), args);
  std::vector<double> temps;
  for (double t = args.number("from", -20.0);
       t <= args.number("to", 85.0) + 1e-9; t += args.number("step", 15.0)) {
    temps.push_back(t);
  }
  // Normalization point is 25 C; insert it when the grid skips it.
  if (std::none_of(temps.begin(), temps.end(), [](double t) {
        return std::abs(t - 25.0) < 1e-9;
      })) {
    temps.push_back(25.0);
    std::sort(temps.begin(), temps.end());
  }
  const auto sweep =
      run_temperature_sweep(TemperatureSweepSpec{spec, temps}, cyclone_iii());
  Table table({"T (C)", "F (MHz)", "Fn"});
  for (const auto& p : sweep.points) {
    table.add_row({fmt_double(p.temperature_c, 0),
                   fmt_double(p.frequency_mhz, 2),
                   fmt_double(p.normalized, 4)});
  }
  std::printf("%s\nexcursion dF = %s\n", table.str().c_str(),
              fmt_percent(sweep.excursion, 2).c_str());
  return 0;
}

int cmd_modes(const Args& args) {
  const auto stages = static_cast<std::size_t>(
      std::strtoul(args.positional().at(0).c_str(), nullptr, 10));
  std::vector<std::size_t> token_counts;
  for (std::size_t nt = 2; nt < stages; nt += 2) token_counts.push_back(nt);
  ModeMapSpec map_spec;
  map_spec.stages = stages;
  map_spec.token_counts = token_counts;
  map_spec.placement = args.flag("clustered")
                           ? ring::TokenPlacement::clustered
                           : ring::TokenPlacement::evenly_spread;
  map_spec.charlie_scale = args.number("charlie-scale", 1.0);
  const auto map = run_mode_map(map_spec, cyclone_iii());
  Table table({"NT", "mode", "CV", "F (MHz)"});
  for (const auto& e : map) {
    table.add_row({std::to_string(e.tokens), ring::to_string(e.mode),
                   fmt_double(e.interval_cv, 4),
                   fmt_double(e.frequency_mhz, 1)});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

int cmd_predict(const Args& args) {
  const auto stages = static_cast<std::size_t>(
      std::strtoul(args.positional().at(0).c_str(), nullptr, 10));
  const auto tokens = static_cast<std::size_t>(
      std::strtoul(args.positional().at(1).c_str(), nullptr, 10));
  const auto& cal = cyclone_iii();
  const auto pred = ring::predict_steady_state(
      ring::CharlieParams::symmetric(cal.str_d_static, cal.str_d_charlie),
      cal.str_routing.per_hop_delay(stages), stages, tokens);
  std::printf("analytic steady state, STR %zuC with NT = %zu:\n", stages,
              tokens);
  std::printf("  period          : %s  (%.2f MHz)\n",
              fmt_ps(pred.period.ps(), 1).c_str(), pred.frequency_mhz);
  std::printf("  forward hop d_f : %s\n",
              fmt_ps(pred.forward_hop.ps(), 1).c_str());
  std::printf("  reverse hop d_r : %s\n",
              fmt_ps(pred.reverse_hop.ps(), 1).c_str());
  std::printf("  separation s    : %s\n",
              fmt_ps(pred.separation.ps(), 1).c_str());
  std::printf("  locking margin  : %.3f\n", pred.locking_margin);
  std::printf("  ideal NT (Eq. 1): %.1f\n",
              ring::ideal_token_count(
                  ring::CharlieParams::symmetric(cal.str_d_static,
                                                 cal.str_d_charlie),
                  stages));
  return 0;
}

int cmd_trng(const Args& args) {
  const RingSpec spec =
      parse_spec(args.positional().at(0), args.positional().at(1), args);
  const Time fs = Time::from_ns(1e3 / args.number("rate-mhz", 4.0));
  const auto bits_wanted =
      static_cast<std::size_t>(args.integer("bits", 16384));

  std::optional<fpga::Board> board;
  const fpga::Board* bp = nullptr;
  BuildOptions build = build_options(args, &bp, board);
  build.warmup_periods = 128;
  Oscillator osc = Oscillator::build(spec, cyclone_iii(), build);
  osc.run_periods(static_cast<std::size_t>(
      fs.ps() / osc.nominal_period().ps() * (bits_wanted + 2.0) + 256));

  trng::ElementaryTrngConfig config;
  config.sampling_period = fs;
  config.start = osc.output().transitions().front().at;
  const auto bits = trng::elementary_trng_bits(osc.output(), config,
                                               bits_wanted);

  std::printf("%s sampled at %.2f MHz, %zu bits\n", spec.name().c_str(),
              1e6 / fs.ps(), bits.size());
  std::printf("  bias = %.4f   H1 = %.4f   H8 = %.4f\n",
              analysis::bit_bias(bits),
              analysis::shannon_entropy_per_bit(bits),
              analysis::block_entropy_per_bit(bits, 8));
  const auto battery = trng::nist_battery(bits);
  for (const auto& r : battery.results) {
    std::printf("  %-20s p = %.4f  %s\n", r.name.c_str(), r.p_value,
                r.pass ? "pass" : "FAIL");
  }
  // On-line health tests with the claim derived from the measured jitter.
  const auto periods = analysis::periods_ps(osc.output());
  const auto jitter = analysis::summarize_jitter(periods);
  const double claim = std::max(
      0.05, trng::entropy_lower_bound(jitter.period_jitter_ps,
                                      jitter.mean_period_ps, fs));
  const auto health = trng::run_health_tests(bits, claim);
  std::printf("  health (claim H >= %.3f): RCT %s (C=%u), APT %s (C=%u)\n",
              claim, health.rct_pass ? "ok" : "ALARM", health.rct_cutoff_used,
              health.apt_pass ? "ok" : "ALARM", health.apt_cutoff_used);
  return battery.all_pass ? 0 : 1;
}

int cmd_restart(const Args& args) {
  const RingSpec spec =
      parse_spec(args.positional().at(0), args.positional().at(1), args);
  const auto restarts = static_cast<unsigned>(args.integer("restarts", 64));
  const auto edges = static_cast<std::size_t>(args.integer("edges", 256));
  const auto result = run_restart_experiment(RestartSpec{spec, restarts, edges},
                                             cyclone_iii());
  std::printf("restart technique on %s (%u restarts, %zu edges):\n",
              spec.name().c_str(), restarts, edges);
  std::printf("  same-seed control: %s\n",
              result.control_identical ? "bit-identical (ok)" : "BROKEN");
  for (const auto& p : result.points) {
    std::printf("  k=%4zu  spread = %8.2f ps\n", p.edge, p.spread_ps);
  }
  std::printf("  diffusion = %.2f ps/sqrt(edge)  (R^2 = %.3f)\n",
              result.diffusion_per_edge_ps, result.fit_r2);
  return 0;
}

int cmd_analyze_vcd(const Args& args) {
  const auto doc = sim::read_vcd_file(args.positional().at(0));
  std::printf("%s: module '%s', %zu signals, timescale %lld fs\n",
              args.positional().at(0).c_str(), doc.module_name.c_str(),
              doc.signals.size(),
              static_cast<long long>(doc.timescale_fs));
  for (const auto& sig : doc.signals) {
    const auto& trace = sig.trace;
    if (trace.transitions().size() < 4) {
      std::printf("  %-12s %zu transitions (too few to analyze)\n",
                  sig.name.c_str(), trace.transitions().size());
      continue;
    }
    const auto periods = analysis::periods_ps(trace);
    std::vector<Time> times;
    for (const auto& tr : trace.transitions()) times.push_back(tr.at);
    const auto mode = ring::classify_mode(times);
    if (periods.size() >= 3) {
      const auto jitter = analysis::summarize_jitter(periods);
      std::printf("  %-12s %6zu transitions  F = %8.2f MHz  sigma_p = %6.2f "
                  "ps  mode: %s\n",
                  sig.name.c_str(), trace.transitions().size(),
                  1e6 / jitter.mean_period_ps, jitter.period_jitter_ps,
                  ring::to_string(mode.mode));
    } else {
      std::printf("  %-12s %6zu transitions  mode: %s\n", sig.name.c_str(),
                  trace.transitions().size(), ring::to_string(mode.mode));
    }
  }
  return 0;
}

int cmd_vcd(const Args& args) {
  const RingSpec spec =
      parse_spec(args.positional().at(0), args.positional().at(1), args);
  RINGENT_REQUIRE(spec.kind == RingKind::str,
                  "vcd currently dumps STR stage waves");
  const std::string out = args.text("out", "ring.vcd");

  BuildOptions build;
  build.trace_all_stages = true;
  build.warmup_periods = 0;
  build.sigma_g_ps = args.number("sigma-g", -1.0);
  Oscillator osc = Oscillator::build(spec, cyclone_iii(), build);
  osc.run_periods(static_cast<std::size_t>(args.integer("periods", 64)));

  sim::VcdWriter vcd("ringent");
  for (const auto& trace : osc.str()->stage_traces()) vcd.add_signal(trace);
  vcd.write_file(out);
  std::printf("wrote %s (%zu stages)\n", out.c_str(), spec.stages);
  return 0;
}

int cmd_list() {
  Table table({"experiment", "summary", "source"});
  for (const auto& entry : experiment_registry()) {
    table.add_row({entry.name, entry.summary, entry.source});
  }
  std::printf("%s%zu experiments; run one with: ringent_cli run <name>\n",
              table.str().c_str(), experiment_registry().size());
  return 0;
}

/// The --metrics table: every non-zero counter, every phase timer and every
/// histogram summary of the run, on `out` (stderr — stdout keeps the stable
/// manifest summary).
void print_metrics_table(const RunManifest& manifest, std::FILE* out) {
  std::fprintf(out, "== metrics: %s ==\n", manifest.experiment.c_str());
  std::fprintf(out, "-- counters --\n");
  for (std::size_t i = 0; i < sim::metrics::counter_count; ++i) {
    const auto counter = static_cast<sim::metrics::Counter>(i);
    const std::uint64_t value = manifest.metrics.counter(counter);
    if (value == 0) continue;
    std::fprintf(out, "  %-26s %14llu\n",
                 std::string(sim::metrics::counter_name(counter)).c_str(),
                 static_cast<unsigned long long>(value));
  }
  if (!manifest.metrics.phases.empty()) {
    std::fprintf(out, "-- phases --\n");
    std::fprintf(out, "  %-26s %10s %10s %8s\n", "name", "wall ms", "cpu ms",
                 "calls");
    for (const auto& phase : manifest.metrics.phases) {
      std::fprintf(out, "  %-26s %10.2f %10.2f %8llu\n", phase.name.c_str(),
                   phase.wall_ms, phase.cpu_ms,
                   static_cast<unsigned long long>(phase.calls));
    }
  }
  if (!manifest.telemetry.empty()) {
    std::fprintf(out, "-- histograms --\n");
    std::fprintf(out, "  %-26s %10s %12s %10s %10s %10s %10s\n", "name",
                 "count", "mean", "p50", "p90", "p99", "p99.9");
    for (const auto& h : manifest.telemetry) {
      std::fprintf(out,
                   "  %-26s %10llu %12.1f %10llu %10llu %10llu %10llu\n",
                   h.name.c_str(), static_cast<unsigned long long>(h.count),
                   h.mean, static_cast<unsigned long long>(h.p50),
                   static_cast<unsigned long long>(h.p90),
                   static_cast<unsigned long long>(h.p99),
                   static_cast<unsigned long long>(h.p999));
    }
  }
}

int cmd_run(const Args& args) {
  const std::string& name = args.positional().at(0);
  const ExperimentDescriptor* exp = find_experiment(name);
  if (exp == nullptr) {
    std::fprintf(stderr, "error: unknown experiment '%s' (see --list)\n",
                 name.c_str());
    return 2;
  }
  ExperimentOptions options;
  options.seed = static_cast<std::uint64_t>(args.integer("seed", 20120312));
  options.jobs = static_cast<std::size_t>(args.integer("jobs", 0));

  const std::string telemetry = args.text("telemetry", "");
  if (!telemetry.empty()) core::set_telemetry_path(telemetry);

  const std::string spec_path = args.text("spec", "");
  RunManifest manifest;
  if (spec_path.empty()) {
    manifest = exp->run_small(cyclone_iii(), options);
  } else {
    std::ifstream in(spec_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot open spec file '%s'\n",
                   spec_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    // A bad spec throws ringent::Error naming the schema and the offending
    // key (core/spec_json.cpp); main() prints it and exits 1.
    manifest = exp->run_spec(Json::parse(text.str()), cyclone_iii(), options);
  }
  std::printf("%s — %s (%s)\n", exp->name.c_str(), exp->summary.c_str(),
              exp->source.c_str());
  std::printf("  spec    : %s\n", manifest.spec.c_str());
  std::printf("  seed    : %llu\n",
              static_cast<unsigned long long>(manifest.seed));
  std::printf("  tasks   : %zu across %zu workers\n", manifest.tasks,
              manifest.jobs);
  std::printf("  wall    : %.1f ms (cpu %.1f ms)\n", manifest.wall_ms,
              manifest.cpu_ms);
  std::printf("  version : %s\n", manifest.version.c_str());
  std::printf("  counters (non-zero):\n");
  for (std::size_t i = 0; i < sim::metrics::counter_count; ++i) {
    const auto counter = static_cast<sim::metrics::Counter>(i);
    const std::uint64_t value = manifest.metrics.counter(counter);
    if (value != 0) {
      const std::string label(sim::metrics::counter_name(counter));
      std::printf("    %-24s %llu\n", label.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  std::printf("  manifest: %s.manifest.json (in RINGENT_OUT_DIR or cwd)\n",
              manifest.experiment.c_str());
  if (!telemetry.empty()) {
    std::printf("  telemetry: %s\n", telemetry.c_str());
  }
  if (args.flag("metrics")) print_metrics_table(manifest, stderr);
  return 0;
}

/// Store directory for a plan: --dir when given, else the plan path with
/// its .json extension swapped for .campaign (grand_sweep.json ->
/// grand_sweep.campaign, next to the plan).
std::string campaign_dir(const Args& args, const std::string& plan_path) {
  const std::string dir = args.text("dir", "");
  if (!dir.empty()) return dir;
  std::string stem = plan_path;
  const std::string ext = ".json";
  if (stem.size() > ext.size() &&
      stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0) {
    stem.resize(stem.size() - ext.size());
  }
  return stem + ".campaign";
}

int cmd_campaign(const Args& args) {
  const std::string& action = args.positional().at(0);
  const std::string& plan_path = args.positional().at(1);
  const campaign::CampaignPlan plan = campaign::load_plan(plan_path);
  const campaign::ResultStore store(campaign_dir(args, plan_path));

  if (action == "run") {
    campaign::CampaignRunOptions options;
    options.jobs = static_cast<std::size_t>(args.integer("jobs", 0));
    options.max_cells =
        static_cast<std::size_t>(args.integer("max-cells", 0));
    const std::string shard = args.text("shard", "");
    if (!shard.empty()) {
      std::size_t index = 0, count = 0;
      const auto slash = shard.find('/');
      char* end = nullptr;
      if (slash != std::string::npos) {
        index = std::strtoul(shard.c_str(), &end, 10);
        count = std::strtoul(shard.c_str() + slash + 1, nullptr, 10);
      }
      if (slash == std::string::npos || count == 0 || index >= count) {
        std::fprintf(stderr,
                     "error: --shard wants i/N with 0 <= i < N, got '%s'\n",
                     shard.c_str());
        return 2;
      }
      options.shard_index = index;
      options.shard_count = count;
    }
    options.progress = [](const std::string& line) {
      std::printf("  %s\n", line.c_str());
    };
    std::printf("campaign '%s' -> %s\n", plan.name.c_str(),
                store.dir().c_str());
    const campaign::CampaignReport report =
        campaign::run_campaign(plan, store, options);
    std::printf("planned %zu cells (%zu in shard): %zu cached, %zu executed, "
                "%zu remaining\n",
                report.planned, report.in_shard, report.cached,
                report.executed, report.remaining);
    return report.complete() ? 0 : 1;
  }

  if (action == "status") {
    const campaign::CampaignReport report =
        campaign::campaign_status(plan, store);
    std::printf("campaign '%s' at %s: %zu/%zu cells cached, %zu to run\n",
                plan.name.c_str(), store.dir().c_str(), report.cached,
                report.planned, report.remaining);
    return report.complete() ? 0 : 1;
  }

  if (action == "verify") {
    const campaign::VerifyReport report =
        campaign::verify_campaign(plan, store);
    std::printf("campaign '%s' at %s:\n", plan.name.c_str(),
                store.dir().c_str());
    std::printf("  planned %zu: %zu valid, %zu missing, %zu torn; "
                "%zu orphan cells; index %s\n",
                report.planned, report.valid, report.missing, report.torn,
                report.orphans,
                report.index_consistent ? "consistent" : "INCONSISTENT");
    std::printf("verify: %s\n", report.ok() ? "PASS" : "FAIL");
    return report.ok() ? 0 : 1;
  }

  std::fprintf(stderr,
               "error: campaign action must be run|status|verify, got '%s'\n",
               action.c_str());
  return 2;
}

int cmd_serve_bench(const Args& args) {
  // Sweep the entropy service's worker count and report throughput; then
  // verify that the delivered stream is bit-identical at every worker count
  // (the service's central determinism contract).
  EntropyServiceSpec spec;
  spec.slots = static_cast<std::size_t>(args.integer("slots", 4));
  spec.raw_bits_per_slot =
      static_cast<std::uint64_t>(args.integer("bits-per-slot", 1 << 18));
  spec.conditioner =
      service::parse_conditioner_kind(args.text("conditioner", "lfsr"));
  spec.conditioner_ratio =
      static_cast<std::size_t>(args.integer("ratio", 2));
  spec.synthetic = !args.flag("real-rings");
  if (spec.synthetic) {
    // Real ring slots are simulation-rate-limited; keep their budget small.
  } else if (!args.flag("bits-per-slot")) {
    spec.raw_bits_per_slot = 1 << 14;
  }
  const std::size_t max_workers =
      static_cast<std::size_t>(args.integer("max-workers", 4));
  ExperimentOptions options;
  options.seed = static_cast<std::uint64_t>(args.integer("seed", 20120312));

  std::printf("entropy service saturation bench (%s sources, %zu slots, "
              "%llu raw bits/slot, %s conditioner /%zu)\n",
              spec.synthetic ? "synthetic" : spec.ring.name().c_str(),
              spec.slots,
              static_cast<unsigned long long>(spec.raw_bits_per_slot),
              service::conditioner_kind_name(spec.conditioner),
              spec.conditioner_ratio);
  std::printf("  %-8s %-12s %-14s %-14s %-10s\n", "workers", "bytes",
              "bytes/sec", "requests/sec", "stream-fnv");

  std::uint64_t reference_fnv = 0;
  std::uint64_t reference_bytes = 0;
  bool identical = true;
  for (std::size_t workers = 1; workers <= max_workers; workers *= 2) {
    options.jobs = workers;
    const EntropyServiceResult result =
        run_entropy_service(spec, cyclone_iii(), options);
    std::printf("  %-8zu %-12llu %-14.3e %-14.3e %016llx\n", result.workers,
                static_cast<unsigned long long>(result.bytes_delivered),
                result.bytes_per_sec, result.requests_per_sec,
                static_cast<unsigned long long>(result.stream_fnv));
    if (workers == 1) {
      reference_fnv = result.stream_fnv;
      reference_bytes = result.bytes_delivered;
    } else if (result.stream_fnv != reference_fnv ||
               result.bytes_delivered != reference_bytes) {
      identical = false;
    }
  }
  std::printf("cross-worker bit-identity: %s\n",
              identical ? "PASS" : "FAIL");
  return identical ? 0 : 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: ringent_cli <command> ...\n"
      "  characterize <iro|str> <stages> [--periods N] [--board B] [--seed S]\n"
      "  sweep-voltage <iro|str> <stages> [--from V] [--to V] [--step V]\n"
      "  sweep-temperature <iro|str> <stages> [--from C] [--to C] [--step C]\n"
      "  modes <stages> [--charlie-scale X] [--clustered]\n"
      "  predict <stages> <tokens>\n"
      "  trng <iro|str> <stages> [--rate-mhz F] [--bits N] [--board B]\n"
      "  restart <iro|str> <stages> [--restarts N] [--edges N]\n"
      "  analyze-vcd <file>\n"
      "  vcd str <stages> [--out FILE] [--tokens N] [--clustered] "
      "[--periods N]\n"
      "  serve-bench [--slots N] [--bits-per-slot N] [--conditioner "
      "lfsr|hash]\n"
      "              [--ratio N] [--max-workers N] [--real-rings] [--seed S]\n"
      "  --list | list                (registered experiments)\n"
      "  run <experiment> [--spec FILE] [--seed S] [--jobs N] [--metrics]\n"
      "      [--telemetry FILE]\n"
      "  campaign run <plan.json> [--dir DIR] [--shard i/N] [--jobs N]\n"
      "               [--max-cells N]\n"
      "  campaign status <plan.json> [--dir DIR]\n"
      "  campaign verify <plan.json> [--dir DIR]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  try {
    if (command == "characterize" && args.positional().size() >= 2)
      return cmd_characterize(args);
    if (command == "sweep-voltage" && args.positional().size() >= 2)
      return cmd_sweep_voltage(args);
    if (command == "sweep-temperature" && args.positional().size() >= 2)
      return cmd_sweep_temperature(args);
    if (command == "modes" && args.positional().size() >= 1)
      return cmd_modes(args);
    if (command == "predict" && args.positional().size() >= 2)
      return cmd_predict(args);
    if (command == "trng" && args.positional().size() >= 2)
      return cmd_trng(args);
    if (command == "restart" && args.positional().size() >= 2)
      return cmd_restart(args);
    if (command == "analyze-vcd" && args.positional().size() >= 1)
      return cmd_analyze_vcd(args);
    if (command == "vcd" && args.positional().size() >= 2)
      return cmd_vcd(args);
    if (command == "serve-bench") return cmd_serve_bench(args);
    if (command == "--list" || command == "list") return cmd_list();
    if (command == "run" && args.positional().size() >= 1)
      return cmd_run(args);
    if (command == "campaign" && args.positional().size() >= 2)
      return cmd_campaign(args);
    return usage();
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::out_of_range&) {
    return usage();
  }
}
