// Hand-counted boundary vectors for the SP 800-90B online health tests —
// the window/off-by-one audit the resilience layer depends on. Each test
// spells out the exact sample-by-sample count so the cutoff conventions
// documented in trng/health.hpp cannot drift silently:
//
//  * RCT (§4.4.1): a run of exactly `cutoff` identical bits alarms on its
//    last bit; `cutoff - 1` never alarms.
//  * APT (§4.4.2): the alarm fires at `cutoff + 1` occurrences of the
//    window's reference bit (the stored cutoff is 90B's C - 1; the strict
//    comparison supplies the +1); a window is exactly `window` samples; and
//    reset() after an alarm discards the triggering bit so it is never
//    double-counted in the next window.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "trng/health.hpp"

using namespace ringent::trng;

namespace {

TEST(HealthBoundary, RctRunOfCutoffMinusOneNeverAlarms) {
  // cutoff = 4: runs of 3 equal bits, then a flip, forever.
  RepetitionCountTest rct(4);
  for (int block = 0; block < 32; ++block) {
    const std::uint8_t bit = static_cast<std::uint8_t>(block & 1);
    EXPECT_TRUE(rct.feed(bit));
    EXPECT_TRUE(rct.feed(bit));
    EXPECT_TRUE(rct.feed(bit));  // run_ == 3 == cutoff - 1
    EXPECT_EQ(rct.current_run(), 3u);
  }
  EXPECT_FALSE(rct.alarmed());
}

TEST(HealthBoundary, RctRunOfExactlyCutoffAlarmsOnLastBit) {
  // Hand count, cutoff = 4: feed 0 (run 1), 0 (2), 0 (3) — all pass —
  // then the 4th 0 reaches the cutoff and must alarm.
  RepetitionCountTest rct(4);
  EXPECT_TRUE(rct.feed(0));
  EXPECT_TRUE(rct.feed(0));
  EXPECT_TRUE(rct.feed(0));
  EXPECT_FALSE(rct.alarmed());
  EXPECT_FALSE(rct.feed(0));  // bit #4 of the run: alarm, not one later
  EXPECT_TRUE(rct.alarmed());
  // Latched: even a flip keeps reporting failure until reset().
  EXPECT_FALSE(rct.feed(1));
  rct.reset();
  EXPECT_TRUE(rct.feed(0));
  EXPECT_EQ(rct.current_run(), 1u);
}

TEST(HealthBoundary, RctRunInterruptedJustBeforeCutoffRestartsCount) {
  RepetitionCountTest rct(3);
  EXPECT_TRUE(rct.feed(1));
  EXPECT_TRUE(rct.feed(1));        // run 2 == cutoff - 1
  EXPECT_TRUE(rct.feed(0));        // flip: run restarts at 1
  EXPECT_TRUE(rct.feed(1));        // run 1 again
  EXPECT_TRUE(rct.feed(1));        // run 2
  EXPECT_FALSE(rct.feed(1));       // run 3 == cutoff: alarm
}

TEST(HealthBoundary, AptAlarmsAtCutoffPlusOneOccurrences) {
  // window = 64, cutoff = 40. Reference bit = first sample (1, count 1).
  // Feed 39 more ones -> count 40 == cutoff: still passing. The 41st
  // occurrence must be the alarm.
  AdaptiveProportionTest apt(40, 64);
  EXPECT_TRUE(apt.feed(1));  // opens window, count = 1
  for (int i = 0; i < 39; ++i) {
    EXPECT_TRUE(apt.feed(1)) << "occurrence " << (i + 2);
  }
  EXPECT_EQ(apt.current_count(), 40u);
  EXPECT_FALSE(apt.alarmed());
  EXPECT_FALSE(apt.feed(1));  // occurrence 41 = cutoff + 1: alarm
  EXPECT_TRUE(apt.alarmed());
}

TEST(HealthBoundary, AptExactlyCutoffInFullWindowPasses) {
  // window = 64, cutoff = 40: 40 ones (reference) interleaved with 24
  // zeros — a full window carrying exactly `cutoff` occurrences — then a
  // fresh window. No alarm at any point.
  AdaptiveProportionTest apt(40, 64);
  EXPECT_TRUE(apt.feed(1));  // reference = 1, count 1, index 1
  for (int i = 0; i < 39; ++i) EXPECT_TRUE(apt.feed(1));
  for (int i = 0; i < 24; ++i) EXPECT_TRUE(apt.feed(0));
  EXPECT_EQ(apt.window_index(), 0u);  // 64 samples consumed: window closed
  EXPECT_FALSE(apt.alarmed());
  // Next sample opens a new window with a new reference.
  EXPECT_TRUE(apt.feed(0));
  EXPECT_EQ(apt.current_count(), 1u);
  EXPECT_EQ(apt.window_index(), 1u);
}

TEST(HealthBoundary, AptWindowIsExactlyWindowSamples) {
  // Count window positions across two windows: indices run 1..63 then wrap
  // to 0, and the 65th sample is position 1 of window two.
  AdaptiveProportionTest apt(64, 64);  // cutoff = window: alarm unreachable
  apt.feed(1);
  for (int i = 1; i < 64; ++i) apt.feed(0);
  EXPECT_EQ(apt.window_index(), 0u);
  apt.feed(0);  // window 2, sample 1 (new reference 0)
  EXPECT_EQ(apt.window_index(), 1u);
  EXPECT_EQ(apt.current_count(), 1u);
}

TEST(HealthBoundary, AptResetDoesNotDoubleCountTriggeringBit) {
  // Drive to an alarm, reset (what ResilientGenerator::begin_relock does),
  // and verify the next window starts from scratch: the triggering bit is
  // gone, the new window's count is 1 after its first sample.
  AdaptiveProportionTest apt(40, 64);
  apt.feed(1);
  for (int i = 0; i < 39; ++i) apt.feed(1);
  EXPECT_FALSE(apt.feed(1));  // alarm at occurrence 41
  apt.reset();
  EXPECT_FALSE(apt.alarmed());
  EXPECT_EQ(apt.current_count(), 0u);
  EXPECT_EQ(apt.window_index(), 0u);
  EXPECT_TRUE(apt.feed(1));
  EXPECT_EQ(apt.current_count(), 1u);  // not 2: no carry-over
}

TEST(HealthBoundary, CutoffFormulasMatchHandComputation) {
  // rct_cutoff: C = 1 + ceil(alpha / H). H = 0.5, alpha = 20 -> 1 + 40.
  EXPECT_EQ(rct_cutoff(0.5, 20.0), 41u);
  // H = 1 (ideal source): 1 + 20.
  EXPECT_EQ(rct_cutoff(1.0, 20.0), 21u);
  // apt cutoff is clamped into [window/2, window].
  const std::uint32_t cutoff = apt_cutoff(1.0, 1024, 20.0);
  EXPECT_GE(cutoff, 512u);
  EXPECT_LE(cutoff, 1024u);
}

}  // namespace
