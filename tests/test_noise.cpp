// Unit tests for noise/: jitter sources and deterministic delay modulation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "noise/jitter.hpp"
#include "noise/modulation.hpp"

using namespace ringent;
using namespace ringent::literals;
using noise::CompositeNoise;
using noise::FlickerNoise;
using noise::GaussianNoise;
using noise::NoNoise;
using noise::SineDelayModulation;
using noise::StepDelayModulation;

TEST(GaussianNoise, MatchesRequestedSigma) {
  GaussianNoise source(2.0, 42);
  SampleStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(source.sample_ps());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.03);
}

TEST(GaussianNoise, DeterministicPerSeed) {
  GaussianNoise a(1.5, 7), b(1.5, 7), c(1.5, 8);
  bool all_equal = true;
  bool any_differs = false;
  for (int i = 0; i < 100; ++i) {
    const double va = a.sample_ps();
    all_equal = all_equal && (va == b.sample_ps());
    any_differs = any_differs || (va != c.sample_ps());
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs);
}

TEST(GaussianNoise, ZeroSigmaIsSilent) {
  GaussianNoise source(0.0, 1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(source.sample_ps(), 0.0);
  EXPECT_THROW(GaussianNoise(-1.0, 1), PreconditionError);
}

TEST(FlickerNoise, AmplitudeMatches) {
  FlickerNoise source(3.0, 16, 11);
  SampleStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(source.sample_ps());
  // Row refresh cadence makes the per-sample sigma approximate.
  EXPECT_NEAR(stats.stddev(), 3.0, 0.5);
}

TEST(FlickerNoise, IsLongCorrelatedUnlikeWhite) {
  // Compare lag-1000 sample autocorrelation of flicker vs white noise.
  const auto lag_corr = [](noise::NoiseSource& s, std::size_t n,
                           std::size_t lag) {
    std::vector<double> xs(n);
    for (auto& x : xs) x = s.sample_ps();
    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(n);
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      den += (xs[i] - mean) * (xs[i] - mean);
      if (i + lag < n) num += (xs[i] - mean) * (xs[i + lag] - mean);
    }
    return num / den;
  };
  FlickerNoise flicker(1.0, 20, 5);
  GaussianNoise white(1.0, 5);
  EXPECT_GT(lag_corr(flicker, 100000, 1000), 0.2);
  EXPECT_LT(std::abs(lag_corr(white, 100000, 1000)), 0.05);
}

TEST(FlickerNoise, Preconditions) {
  EXPECT_THROW(FlickerNoise(1.0, 0, 1), PreconditionError);
  EXPECT_THROW(FlickerNoise(1.0, 33, 1), PreconditionError);
  EXPECT_THROW(FlickerNoise(-1.0, 8, 1), PreconditionError);
}

TEST(CompositeNoise, SumsVariances) {
  CompositeNoise comp;
  comp.add(std::make_unique<GaussianNoise>(3.0, 1));
  comp.add(std::make_unique<GaussianNoise>(4.0, 2));
  EXPECT_EQ(comp.size(), 2u);
  SampleStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(comp.sample_ps());
  EXPECT_NEAR(stats.stddev(), 5.0, 0.1);  // sqrt(9 + 16)
  EXPECT_THROW(comp.add(nullptr), PreconditionError);
}

TEST(NoNoise, AlwaysZero) {
  NoNoise none;
  EXPECT_DOUBLE_EQ(none.sample_ps(), 0.0);
}

TEST(SineDelayModulation, WaveformValues) {
  SineDelayModulation mod(10.0, 1e6);  // 10 ps at 1 MHz
  EXPECT_NEAR(mod.offset_ps(Time::zero()), 0.0, 1e-9);
  EXPECT_NEAR(mod.offset_ps(Time::from_ns(250.0)), 10.0, 1e-6);
  EXPECT_NEAR(mod.offset_ps(Time::from_ns(750.0)), -10.0, 1e-6);
  EXPECT_THROW(SineDelayModulation(-1.0, 1e6), PreconditionError);
  EXPECT_THROW(SineDelayModulation(1.0, 0.0), PreconditionError);
}

TEST(StepDelayModulation, StepsAtInstant) {
  StepDelayModulation mod(5.0, 100_ps);
  EXPECT_DOUBLE_EQ(mod.offset_ps(99_ps), 0.0);
  EXPECT_DOUBLE_EQ(mod.offset_ps(100_ps), 5.0);
  EXPECT_DOUBLE_EQ(mod.offset_ps(1_ns), 5.0);
}
