// Tests for trng/: samplers, elementary & coherent TRNGs, post-processing,
// the FIPS battery, and the jitter-to-entropy model.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/entropy.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "sim/probe.hpp"
#include "trng/coherent.hpp"
#include "trng/elementary.hpp"
#include "trng/entropy_model.hpp"
#include "trng/fips.hpp"
#include "trng/postproc.hpp"
#include "trng/sampler.hpp"

using namespace ringent;
using namespace ringent::literals;

namespace {

/// Clean square wave transitions with the given half-period.
std::vector<sim::Transition> square_wave(Time half_period, std::size_t count,
                                         Time phase = Time::zero()) {
  std::vector<sim::Transition> out;
  bool value = true;
  Time t = phase;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({t, value});
    value = !value;
    t += half_period;
  }
  return out;
}

std::vector<std::uint8_t> rng_bits(std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bits(count);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next() & 1);
  return bits;
}

}  // namespace

// --- sampler -------------------------------------------------------------------

TEST(Sampler, ValueAtLooksUpLastTransition) {
  const auto wave = square_wave(500_ps, 10);  // rising at 0, falling at 500...
  EXPECT_FALSE(trng::value_at(wave, -1_ps));
  EXPECT_TRUE(trng::value_at(wave, 0_ps));
  EXPECT_TRUE(trng::value_at(wave, 499_ps));
  EXPECT_FALSE(trng::value_at(wave, 500_ps));
  EXPECT_TRUE(trng::value_at(wave, 1000_ps));
  EXPECT_FALSE(trng::value_at(wave, Time::from_ns(100.0)));  // after last
}

TEST(Sampler, PeriodicSamples) {
  const auto samples = trng::periodic_samples(10_ps, 100_ps, 4);
  EXPECT_EQ(samples, (std::vector<Time>{10_ps, 110_ps, 210_ps, 310_ps}));
  EXPECT_THROW(trng::periodic_samples(0_ps, 0_ps, 3), PreconditionError);
}

TEST(Sampler, DffSamplesSquareWaveDeterministically) {
  const auto wave = square_wave(500_ps, 100);
  trng::DffSampler sampler;
  // Sample in the middle of each half period: alternating bits.
  const auto bits =
      sampler.sample(wave, trng::periodic_samples(250_ps, 500_ps, 20));
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_EQ(bits[i], i % 2 == 0 ? 1 : 0);
  }
}

TEST(Sampler, ApertureJitterRandomizesEdgeSamples) {
  // Sampling exactly on the edges with aperture jitter: ~50/50 outcome.
  const auto wave = square_wave(500_ps, 40000);
  trng::SamplerConfig config;
  config.aperture_jitter_ps = 100.0;
  trng::DffSampler sampler(config);
  const auto bits =
      sampler.sample(wave, trng::periodic_samples(500_ps, 1000_ps, 10000));
  double ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_NEAR(ones / 10000.0, 0.5, 0.03);
}

// --- elementary TRNG --------------------------------------------------------------

TEST(ElementaryTrng, SamplesFromTrace) {
  sim::SignalTrace trace;
  for (const auto& tr : square_wave(500_ps, 2000)) {
    trace.record(tr.at, tr.value);
  }
  trng::ElementaryTrngConfig config;
  config.sampling_period = Time::from_ps(3250.0);
  config.start = 100_ps;
  const auto bits = trng::elementary_trng_bits(trace, config, 250);
  EXPECT_EQ(bits.size(), 250u);
  // Deterministic trace + incommensurate sampling: both values appear.
  double ones = 0;
  for (auto b : bits) ones += b;
  EXPECT_GT(ones, 50);
  EXPECT_LT(ones, 200);
}

TEST(ElementaryTrng, RejectsTooShortTrace) {
  sim::SignalTrace trace;
  trace.record(0_ps, true);
  trace.record(500_ps, false);
  trng::ElementaryTrngConfig config;
  config.sampling_period = 1_ns;
  EXPECT_THROW(trng::elementary_trng_bits(trace, config, 100),
               PreconditionError);
}

TEST(ElementaryTrng, QualityFactorScalesLinearlyInSamplingPeriod) {
  const double q1 = trng::quality_factor(2.83, 3000.0, Time::from_ns(10.0));
  const double q2 = trng::quality_factor(2.83, 3000.0, Time::from_ns(20.0));
  EXPECT_NEAR(q2 / q1, 2.0, 1e-9);
  // Definition check: Q = (Ts/T) sigma^2 / T^2.
  EXPECT_NEAR(q1, (10000.0 / 3000.0) * 2.83 * 2.83 / (3000.0 * 3000.0),
              1e-12);
}

// --- coherent sampling --------------------------------------------------------------

TEST(Coherent, BeatLengthMatchesTheory) {
  // T0 = 1000 ps sampled by T1 = 1010 ps: half-beat = T0/(2 dT) = 50 samples.
  const auto wave = square_wave(500_ps, 500000);
  std::vector<Time> clock;
  for (std::size_t i = 0; i < 4000; ++i) {
    clock.push_back(Time::from_ps(1010.0 * static_cast<double>(i) + 3.0));
  }
  const auto result = trng::coherent_sampling_bits(wave, clock);
  EXPECT_NEAR(result.mean_run_length,
              trng::expected_half_beat_samples(1000.0, 1010.0), 2.0);
  EXPECT_NEAR(result.mean_run_length, 50.0, 2.0);
  EXPECT_EQ(result.bits.size(), result.run_lengths.size());
}

TEST(Coherent, JitteryClockProducesVariableRuns) {
  const auto wave = square_wave(500_ps, 800000);
  Xoshiro256 rng(55);
  std::vector<Time> clock;
  double t = 3.0;
  for (std::size_t i = 0; i < 6000; ++i) {
    clock.push_back(Time::from_ps(t));
    t += rng.normal(1010.0, 8.0);
  }
  const auto result = trng::coherent_sampling_bits(wave, clock);
  // Run lengths now fluctuate; the LSB bits carry entropy.
  bool varies = false;
  for (std::size_t i = 1; i < result.run_lengths.size(); ++i) {
    varies = varies || (result.run_lengths[i] != result.run_lengths[0]);
  }
  EXPECT_TRUE(varies);
  double ones = 0;
  for (auto b : result.bits) ones += b;
  const double bias = ones / static_cast<double>(result.bits.size());
  EXPECT_GT(bias, 0.2);
  EXPECT_LT(bias, 0.8);
}

TEST(Coherent, Preconditions) {
  EXPECT_THROW(trng::expected_half_beat_samples(1000.0, 1000.0),
               PreconditionError);
  const auto wave = square_wave(500_ps, 10);
  EXPECT_THROW(trng::coherent_sampling_bits(wave, {0_ps, 1_ns}),
               PreconditionError);
}

// --- post-processing ----------------------------------------------------------------

TEST(Postproc, VonNeumannRemovesBias) {
  Xoshiro256 rng(59);
  std::vector<std::uint8_t> biased;
  for (int i = 0; i < 100000; ++i) {
    biased.push_back(rng.uniform01() < 0.8 ? 1 : 0);
  }
  const auto corrected = trng::von_neumann(biased);
  ASSERT_GT(corrected.size(), 10000u);
  double ones = 0;
  for (auto b : corrected) ones += b;
  EXPECT_NEAR(ones / static_cast<double>(corrected.size()), 0.5, 0.015);
}

TEST(Postproc, VonNeumannMapping) {
  const std::vector<std::uint8_t> bits = {0, 1, 1, 0, 0, 0, 1, 1, 1, 0};
  EXPECT_EQ(trng::von_neumann(bits), (std::vector<std::uint8_t>{0, 1, 1}));
}

TEST(Postproc, XorDecimateReducesBias) {
  Xoshiro256 rng(61);
  std::vector<std::uint8_t> biased;
  for (int i = 0; i < 200000; ++i) {
    biased.push_back(rng.uniform01() < 0.6 ? 1 : 0);
  }
  const auto out = trng::xor_decimate(biased, 4);
  EXPECT_EQ(out.size(), 50000u);
  double ones = 0;
  for (auto b : out) ones += b;
  EXPECT_NEAR(ones / 50000.0, trng::xor_bias(0.6, 4), 0.01);
}

TEST(Postproc, PeresExtractsMoreThanVonNeumann) {
  Xoshiro256 rng(63);
  std::vector<std::uint8_t> biased;
  for (int i = 0; i < 200000; ++i) {
    biased.push_back(rng.uniform01() < 0.7 ? 1 : 0);
  }
  const auto vn = trng::von_neumann(biased);
  const auto px = trng::peres(biased, 8);
  // von Neumann rate is p(1-p) = 0.21; Peres approaches H(0.7) = 0.881.
  EXPECT_NEAR(static_cast<double>(vn.size()) / biased.size(),
              trng::von_neumann_rate(0.7), 0.01);
  EXPECT_GT(px.size(), vn.size() * 3);
  EXPECT_LT(static_cast<double>(px.size()) / biased.size(), 0.881);
  // Output stays unbiased and pairwise clean.
  EXPECT_NEAR(analysis::bit_bias(px), 0.5, 0.01);
  EXPECT_TRUE(trng::serial_test(px).pass);
}

TEST(Postproc, PeresDepthOneEqualsVonNeumann) {
  Xoshiro256 rng(65);
  std::vector<std::uint8_t> bits;
  for (int i = 0; i < 10000; ++i) {
    bits.push_back(rng.uniform01() < 0.6 ? 1 : 0);
  }
  EXPECT_EQ(trng::peres(bits, 1), trng::von_neumann(bits));
  EXPECT_THROW(trng::peres(bits, 0), PreconditionError);
  EXPECT_THROW(trng::peres(bits, 17), PreconditionError);
}

TEST(Postproc, XorBiasPilingUpLemma) {
  EXPECT_NEAR(trng::xor_bias(0.6, 1), 0.6, 1e-12);
  EXPECT_NEAR(trng::xor_bias(0.6, 2), 0.52, 1e-12);
  EXPECT_NEAR(trng::xor_bias(0.6, 4), 0.5008, 1e-12);
  EXPECT_NEAR(trng::xor_bias(0.5, 10), 0.5, 1e-12);
  EXPECT_THROW(trng::xor_bias(1.5, 2), PreconditionError);
  const std::vector<std::uint8_t> two_bits = {0, 1};
  EXPECT_THROW(trng::xor_decimate(two_bits, 0), PreconditionError);
}

// --- FIPS battery -------------------------------------------------------------------

TEST(Fips, GoodRngPassesEverything) {
  const auto bits = rng_bits(trng::fips_block_bits, 67);
  const auto result = trng::fips_battery(bits);
  EXPECT_TRUE(result.all_pass);
  for (const auto& test : result.tests) {
    EXPECT_TRUE(test.pass) << test.name << ": " << test.detail;
  }
}

TEST(Fips, BiasedSourceFailsMonobitAndPoker) {
  Xoshiro256 rng(71);
  std::vector<std::uint8_t> bits(trng::fips_block_bits);
  for (auto& b : bits) b = rng.uniform01() < 0.56 ? 1 : 0;
  const auto result = trng::fips_battery(bits);
  EXPECT_FALSE(result.all_pass);
  EXPECT_FALSE(result.tests[0].pass);  // monobit
  EXPECT_FALSE(result.tests[1].pass);  // poker
}

TEST(Fips, StuckRunFailsLongRunTest) {
  auto bits = rng_bits(trng::fips_block_bits, 73);
  for (int i = 5000; i < 5030; ++i) bits[i] = 1;  // a stuck stretch of 30
  EXPECT_FALSE(trng::fips_long_run(bits).pass);
}

TEST(Fips, AlternatingBitsFailRunsTest) {
  std::vector<std::uint8_t> bits(trng::fips_block_bits);
  for (std::size_t i = 0; i < bits.size(); ++i) bits[i] = i & 1;
  const auto runs = trng::fips_runs(bits);
  EXPECT_FALSE(runs.pass);  // far too many runs of length 1
  // Monobit alone is fooled by this sequence.
  EXPECT_TRUE(trng::fips_monobit(bits).pass);
}

TEST(Fips, WrongBlockSizeRejected) {
  EXPECT_THROW(trng::fips_monobit(rng_bits(1000, 1)), PreconditionError);
}

TEST(Fips, SerialTestCatchesPairCorrelation) {
  EXPECT_TRUE(trng::serial_test(rng_bits(20000, 79)).pass);
  std::vector<std::uint8_t> corr;
  Xoshiro256 rng(83);
  std::uint8_t prev = 0;
  for (int i = 0; i < 20000; ++i) {
    // 80% chance to repeat the previous bit.
    prev = rng.uniform01() < 0.8 ? prev : static_cast<std::uint8_t>(1 - prev);
    corr.push_back(prev);
  }
  EXPECT_FALSE(trng::serial_test(corr).pass);
}

// --- entropy model ------------------------------------------------------------------

TEST(EntropyModel, BoundIsMonotoneAndSaturates) {
  EXPECT_LT(trng::entropy_lower_bound(0.001), 0.6);
  EXPECT_LT(trng::entropy_lower_bound(0.01),
            trng::entropy_lower_bound(0.1));
  EXPECT_NEAR(trng::entropy_lower_bound(1.0), 1.0, 1e-9);
  EXPECT_GE(trng::entropy_lower_bound(0.0), 0.0);
  EXPECT_THROW(trng::entropy_lower_bound(-0.1), PreconditionError);
}

TEST(EntropyModel, RequiredSamplingPeriodInvertsTheBound) {
  const double sigma = 2.83, period = 3000.0;
  const Time ts = trng::required_sampling_period(0.997, sigma, period);
  const double h = trng::entropy_lower_bound(sigma, period, ts);
  EXPECT_NEAR(h, 0.997, 1e-6);
  // Less jitter demands slower sampling.
  EXPECT_GT(trng::required_sampling_period(0.997, 1.0, period),
            trng::required_sampling_period(0.997, 4.0, period));
  EXPECT_THROW(trng::required_sampling_period(1.5, sigma, period),
               PreconditionError);
}

TEST(EntropyModel, StrBeatsIroAtEqualFrequencyAndLength) {
  // At ~96 stages the STR keeps a 3 ns period with sigma_p ~ 2.8 ps, while an
  // equal-length IRO has sigma_p = sqrt(192)*2 = 27.7 ps but a 50 ns period.
  // Per unit *time* the STR accumulates more relative jitter: the sampling
  // period needed for H >= 0.997 is shorter.
  const Time ts_str = trng::required_sampling_period(0.997, 2.83, 3125.0);
  const Time ts_iro = trng::required_sampling_period(0.997, 27.7, 48960.0);
  EXPECT_LT(ts_str, ts_iro);
}
