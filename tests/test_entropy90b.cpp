// SP 800-90B non-IID estimator battery: reference vectors, synthetic
// sources with closed-form min-entropy, degenerate streams, restart
// validation, and cross-jobs bit-identity of the entropy_map driver.
//
// Reference-vector provenance and regeneration recipe
// ---------------------------------------------------
// The vectors below are committed as ASCII '0'/'1' text (the exact bytes
// BitStream::from_ascii parses) together with every estimator output pinned
// at full double precision. They were produced by this implementation
// (analysis/entropy90b.cpp) and are cross-checkable against the NIST
// SP 800-90B reference implementation, usagov/SP800-90B_EntropyAssessment
// (`cpp/ea_non_iid -i -a -v <file> 1`), by converting each vector to one
// byte per bit:
//
//   python3 - <<'EOF'
//   bits = open('vector.txt').read().split()
//   data = bytes(int(c) for line in bits for c in line)
//   open('vector.bin', 'wb').write(data)
//   EOF
//
// Agreement notes for that cross-check, documented deviations included:
//  * MCV, Markov, t-tuple and LRS match the tool's "bitstring" results to
//    float printout precision (the tool prints 6 significant digits);
//  * collision and compression use the sample standard deviation and, for
//    collision, the closed-form inverse of E(p) = 2 + 2p(1-p) — identical
//    to the tool's bisection limit;
//  * t-tuple/LRS widths are capped at analysis::kTupleCap (128), which
//    only affects streams whose most-common-tuple plateau extends past
//    128 bits (near-constant input; the tool is O(L^2) there).
//
// To regenerate the pins after an intentional estimator change: print each
// vector's Entropy90bResult fields with "%.17g" and update the constants
// (the PRNG-derived vectors are reproduced by the inline recipes next to
// them — SplitMix64/Xoshiro256 from common/rng.hpp are frozen).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/bitstream.hpp"
#include "analysis/entropy90b.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "core/calibration.hpp"
#include "core/experiments.hpp"

using namespace ringent;
using namespace ringent::analysis;

namespace {

BitStream bernoulli_stream(std::uint64_t seed, std::size_t bits, double p) {
  Xoshiro256 rng(seed);
  BitStream s;
  s.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) s.append(rng.uniform01() < p);
  return s;
}

BitStream xoshiro_stream(std::uint64_t seed, std::size_t bits) {
  Xoshiro256 rng(seed);
  BitStream s;
  s.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) s.append((rng.next() & 1) != 0);
  return s;
}

}  // namespace

// --- bit stream loaders ------------------------------------------------------

TEST(BitStream, LoadersAgreeAndValidate) {
  const std::vector<std::uint8_t> raw = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  const BitStream a = BitStream::from_bits(raw);
  EXPECT_EQ(a.size(), 9u);
  EXPECT_EQ(a.ones(), 5u);
  EXPECT_EQ(a.zeros(), 4u);
  EXPECT_EQ(a.to_ascii(), "101100101");

  // Packed LSB-first: 0b01001101, 0b1 -> same stream.
  const std::vector<std::uint8_t> packed = {0x4D, 0x01};
  const BitStream b = BitStream::from_bytes(packed, 9);
  EXPECT_TRUE(a == b);

  const BitStream c = BitStream::from_ascii("101 1001\t01\n");
  EXPECT_TRUE(a == c);
  EXPECT_EQ(a.unpacked(), raw);

  EXPECT_THROW(BitStream::from_bits(std::vector<std::uint8_t>{2}), Error);
  EXPECT_THROW(BitStream::from_bytes(packed, 17), Error);
  EXPECT_THROW(BitStream::from_ascii("0102"), Error);
  EXPECT_THROW(a.bit(9), Error);
}

// --- estimator preconditions -------------------------------------------------

TEST(Entropy90b, EstimatorsThrowBelowDocumentedMinimumLengths) {
  const BitStream one = BitStream::from_ascii("1");
  EXPECT_THROW(mcv_estimate(one), PreconditionError);
  EXPECT_THROW(markov_estimate(one), PreconditionError);
  EXPECT_THROW(collision_estimate(BitStream::from_ascii("0101010")),
               PreconditionError);
  EXPECT_THROW(compression_estimate(xoshiro_stream(1, 6011)),
               PreconditionError);
  EXPECT_NO_THROW(compression_estimate(xoshiro_stream(1, 6012)));
  EXPECT_THROW(t_tuple_estimate(xoshiro_stream(1, 68)), PreconditionError);
  EXPECT_THROW(lrs_estimate(xoshiro_stream(1, 68)), PreconditionError);
  // Constant stream: the 35-occurrence plateau extends past the width cap,
  // so there is no LRS range — a defined precondition failure, not UB.
  EXPECT_THROW(lrs_estimate(BitStream::from_ascii(std::string(1000, '1'))),
               PreconditionError);
  EXPECT_THROW(bit_autocorrelation(one, 1), PreconditionError);
}

TEST(Entropy90b, BatteryIsTotalOnDegenerateStreams) {
  // The battery never throws: under-length estimators are skipped (-1).
  const Entropy90bResult empty = estimate_entropy90b(BitStream{});
  EXPECT_EQ(empty.bits, 0u);
  EXPECT_DOUBLE_EQ(empty.min_entropy, -1.0);
  EXPECT_TRUE(empty.autocorrelation.empty());

  const Entropy90bResult single =
      estimate_entropy90b(BitStream::from_ascii("0"));
  EXPECT_DOUBLE_EQ(single.min_entropy, -1.0);

  // All-zeros: every runnable estimator reports exactly zero entropy; LRS
  // has no valid range (reported -1) and compression is under-length here.
  const Entropy90bResult zeros =
      estimate_entropy90b(BitStream::from_ascii(std::string(1000, '0')));
  EXPECT_DOUBLE_EQ(zeros.h_mcv, 0.0);
  EXPECT_DOUBLE_EQ(zeros.h_collision, 0.0);
  EXPECT_DOUBLE_EQ(zeros.h_markov, 0.0);
  EXPECT_DOUBLE_EQ(zeros.h_compression, -1.0);
  EXPECT_DOUBLE_EQ(zeros.h_t_tuple, 0.0);
  EXPECT_DOUBLE_EQ(zeros.h_lrs, -1.0);
  EXPECT_DOUBLE_EQ(zeros.min_entropy, 0.0);
  for (double r : zeros.autocorrelation) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(Entropy90b, MarkovScoresUnrealisablePathSetAsFullEntropy) {
  // "01" observes a single 0->1 transition: no 128-step path is realisable
  // from the estimated chain, and the reference implementation scores that
  // as full entropy. (The *online* monitor in trng/telemetry deliberately
  // reports the conservative 0 for the same history — see test_telemetry.)
  EXPECT_DOUBLE_EQ(markov_estimate(BitStream::from_ascii("01")), 1.0);
  EXPECT_DOUBLE_EQ(markov_estimate(BitStream::from_ascii("10")), 1.0);
}

// --- reference vectors -------------------------------------------------------

TEST(Entropy90bVectors, Alternating128) {
  std::string text;
  for (int i = 0; i < 64; ++i) text += "01";
  const Entropy90bResult r = estimate_entropy90b(BitStream::from_ascii(text));
  // Perfectly periodic: MCV sees an unbiased stream (h bounded by the
  // confidence term alone), the collision bound saturates at full entropy
  // (every collision time is 3), and the sequence estimators all catch the
  // determinism: Markov 1/128 bit, t-tuple/LRS exactly 0.
  EXPECT_DOUBLE_EQ(r.h_mcv, 0.70302241758731099);
  EXPECT_DOUBLE_EQ(r.h_collision, 1.0);
  EXPECT_DOUBLE_EQ(r.h_markov, 0.0078125);
  EXPECT_DOUBLE_EQ(r.h_compression, -1.0);
  EXPECT_DOUBLE_EQ(r.h_t_tuple, 0.0);
  EXPECT_DOUBLE_EQ(r.h_lrs, 0.0);
  EXPECT_DOUBLE_EQ(r.min_entropy, 0.0);
  EXPECT_DOUBLE_EQ(r.autocorrelation.at(0), -0.9921875);
  EXPECT_DOUBLE_EQ(r.autocorrelation.at(1), 0.984375);
}

TEST(Entropy90bVectors, Biased200) {
  // 200 bits at bias ~0.7: SplitMix64(0xB1A5ED), bit = next() < 0.7 * 2^64.
  const BitStream s = BitStream::from_ascii(
      "11100110111011011111110111101111010100111100010010"
      "00111111001100111111111100111110110101010111101101"
      "11111111111111111011110011111111100101011111110111"
      "11111111111101101111111011110010000111110111111011");
  ASSERT_EQ(s.size(), 200u);
  const Entropy90bResult r = estimate_entropy90b(s);
  EXPECT_DOUBLE_EQ(r.h_mcv, 0.27825745761759968);
  EXPECT_DOUBLE_EQ(r.h_collision, 0.18091323081683031);
  EXPECT_DOUBLE_EQ(r.h_markov, 0.38955106935515899);
  EXPECT_DOUBLE_EQ(r.h_compression, -1.0);
  EXPECT_DOUBLE_EQ(r.h_t_tuple, 0.24291136075836808);
  EXPECT_DOUBLE_EQ(r.h_lrs, 0.44149757468324663);
  EXPECT_DOUBLE_EQ(r.min_entropy, 0.18091323081683031);
  EXPECT_DOUBLE_EQ(r.autocorrelation.at(0), 0.077114751941044696);
  EXPECT_DOUBLE_EQ(r.autocorrelation.at(1), 0.022764837478615501);
}

TEST(Entropy90bVectors, Xoshiro512) {
  // 512 bits: Xoshiro256(90210), bit = next() & 1.
  const BitStream s = BitStream::from_ascii(
      "0010110111110101110111000010100010100011111101111001100111111111"
      "0011011010000010010111011000010000110000101100101010001001111111"
      "0101001000111010110000010000011010101101111111111000110000000100"
      "1101011010100010111010100001110111011111010111101110011001001110"
      "0101101111011101101100100010001000001100101100010100000111111011"
      "0110010011111100101101111111111001011100011101000110000010001000"
      "0001000111001011111100000011010100010010111000010110010011110101"
      "0100001011000000000101011101010101011110111011000110111011101101");
  ASSERT_EQ(s.size(), 512u);
  // Inline-recipe check: the committed text IS the generator output.
  EXPECT_TRUE(s == xoshiro_stream(90210, 512));
  const Entropy90bResult r = estimate_entropy90b(s);
  EXPECT_DOUBLE_EQ(r.h_mcv, 0.79957877530068333);
  EXPECT_DOUBLE_EQ(r.h_collision, 0.51904939464423405);
  EXPECT_DOUBLE_EQ(r.h_markov, 0.91538485513329915);
  EXPECT_DOUBLE_EQ(r.h_compression, -1.0);
  EXPECT_DOUBLE_EQ(r.h_t_tuple, 0.7321047066812616);
  EXPECT_DOUBLE_EQ(r.h_lrs, 0.78653793526630655);
  EXPECT_DOUBLE_EQ(r.min_entropy, 0.51904939464423405);
}

TEST(Entropy90bVectors, CompressionRecipe12000) {
  // The compression estimator needs >= 6012 bits, so its vector is pinned
  // through its generator rather than inline text: Xoshiro256(424242),
  // bit = next() & 1, 12000 bits (recipe in the file header).
  const Entropy90bResult r = estimate_entropy90b(xoshiro_stream(424242, 12000));
  EXPECT_DOUBLE_EQ(r.h_mcv, 0.96037294272909479);
  EXPECT_DOUBLE_EQ(r.h_collision, 0.77743830068098041);
  EXPECT_DOUBLE_EQ(r.h_markov, 0.99296508807967765);
  EXPECT_DOUBLE_EQ(r.h_compression, 0.63016159326428356);
  EXPECT_DOUBLE_EQ(r.h_t_tuple, 0.89068054038510769);
  EXPECT_DOUBLE_EQ(r.h_lrs, 0.96613869426343668);
  EXPECT_DOUBLE_EQ(r.min_entropy, 0.63016159326428356);
}

// --- synthetic sources with closed-form min-entropy --------------------------
//
// Tolerances, documented: at L = 65536 the dominant error sources are the
// Z_alpha confidence term (pushes every estimate DOWN by ~Z*sqrt(pq/L) in
// probability, ~0.01 bit here) plus sampling noise. MCV/Markov/t-tuple sit
// within 0.03 bit of the analytic value; collision within 0.05 (its bound
// passes through the inverted E(p), amplifying the slack); LRS targets the
// *collision* entropy -log2(p^2 + q^2) of an IID source, within 0.05.
// Compression has no closed form at this length and is checked by ordering.

TEST(Entropy90bSynthetic, BiasedBernoulliMatchesAnalyticMinEntropy) {
  const double p = 0.7;
  const double h_true = -std::log2(p);             // 0.5146 bits
  const double h_col = -std::log2(p * p + (1 - p) * (1 - p));  // 0.786 bits
  const Entropy90bResult r =
      estimate_entropy90b(bernoulli_stream(1234, 65536, p));
  EXPECT_NEAR(r.h_mcv, h_true, 0.03);
  EXPECT_NEAR(r.h_collision, h_true, 0.05);
  EXPECT_NEAR(r.h_markov, h_true, 0.03);
  EXPECT_NEAR(r.h_t_tuple, h_true, 0.05);
  EXPECT_NEAR(r.h_lrs, h_col, 0.05);
  // Compression: conservative under-estimate, but must see the bias.
  EXPECT_GT(r.h_compression, 0.15);
  EXPECT_LT(r.h_compression, h_true);
  EXPECT_NEAR(r.min_entropy, r.h_compression, 1e-12);
}

TEST(Entropy90bSynthetic, TwoStateMarkovMatchesAnalyticRate) {
  // p01 = 0.3, p10 = 0.4: the most likely 128-bit path is the all-zeros
  // template, rate -log2(p00) = -log2(0.7) plus the stationary start term
  // -log2(pi_0)/128 with pi_0 = p10/(p01+p10).
  const double p00 = 0.7;
  const double pi0 = 0.4 / 0.7;
  const double h_rate = (127.0 * -std::log2(p00) + -std::log2(pi0)) / 128.0;
  Xoshiro256 rng(5678);
  BitStream s;
  bool state = false;
  for (int i = 0; i < 65536; ++i) {
    const double u = rng.uniform01();
    state = state ? (u >= 0.4) : (u < 0.3);
    s.append(state);
  }
  const Entropy90bResult r = estimate_entropy90b(s);
  EXPECT_NEAR(r.h_markov, h_rate, 0.03);
  // Positive serial correlation must show up in the autocorrelation head:
  // analytic lag-k value is (1 - p01 - p10)^k = 0.3^k.
  EXPECT_NEAR(r.autocorrelation.at(0), 0.3, 0.02);
  EXPECT_NEAR(r.autocorrelation.at(1), 0.09, 0.02);
  // MCV only sees the marginal bias (pi_0 = 4/7), far above the true rate.
  EXPECT_NEAR(r.h_mcv, -std::log2(pi0), 0.03);
}

TEST(Entropy90bSynthetic, IidUniformIsNearFullEntropy) {
  const Entropy90bResult r = estimate_entropy90b(xoshiro_stream(9999, 65536));
  EXPECT_GT(r.h_mcv, 0.97);
  EXPECT_GT(r.h_markov, 0.99);
  EXPECT_GT(r.h_t_tuple, 0.90);
  EXPECT_GT(r.h_lrs, 0.90);
  // Collision and compression are the battery's known-conservative members.
  EXPECT_GT(r.h_collision, 0.75);
  EXPECT_GT(r.h_compression, 0.70);
  EXPECT_GE(r.min_entropy, 0.70);
  EXPECT_LE(r.min_entropy, 1.0);
  for (double rho : r.autocorrelation) EXPECT_NEAR(rho, 0.0, 0.02);
}

TEST(Entropy90bSynthetic, EstimatorsOrderSourcesByPredictability) {
  // Strictly more biased -> strictly less estimated entropy, per estimator.
  const Entropy90bResult a =
      estimate_entropy90b(bernoulli_stream(42, 32768, 0.5));
  const Entropy90bResult b =
      estimate_entropy90b(bernoulli_stream(42, 32768, 0.7));
  const Entropy90bResult c =
      estimate_entropy90b(bernoulli_stream(42, 32768, 0.9));
  EXPECT_GT(a.h_mcv, b.h_mcv);
  EXPECT_GT(b.h_mcv, c.h_mcv);
  EXPECT_GT(a.h_collision, b.h_collision);
  EXPECT_GT(b.h_collision, c.h_collision);
  EXPECT_GT(a.h_markov, b.h_markov);
  EXPECT_GT(b.h_markov, c.h_markov);
  EXPECT_GT(a.h_compression, b.h_compression);
  EXPECT_GT(b.h_compression, c.h_compression);
  EXPECT_GT(a.h_t_tuple, b.h_t_tuple);
  EXPECT_GT(b.h_t_tuple, c.h_t_tuple);
  EXPECT_GT(a.h_lrs, b.h_lrs);
  EXPECT_GT(b.h_lrs, c.h_lrs);
}

// --- spec JSON ---------------------------------------------------------------

TEST(Entropy90bConfigJson, RoundTripsAndRejectsMalformedSpecs) {
  Entropy90bConfig config;
  config.compression = false;
  config.autocorrelation_lags = 12;
  const Json dumped = config.to_json();
  EXPECT_EQ(dumped.at("schema").as_string(), "ringent.entropy90b-spec/1");
  const Entropy90bConfig back = Entropy90bConfig::from_json(dumped);
  EXPECT_FALSE(back.compression);
  EXPECT_TRUE(back.mcv);
  EXPECT_EQ(back.autocorrelation_lags, 12u);

  EXPECT_THROW(Entropy90bConfig::from_json(Json::parse("[]")), Error);
  EXPECT_THROW(Entropy90bConfig::from_json(Json::parse("{\"schema\":\"x\"}")),
               Error);
  EXPECT_THROW(Entropy90bConfig::from_json(Json::parse("{\"mcv\":3}")), Error);
  EXPECT_THROW(Entropy90bConfig::from_json(Json::parse("{\"unknown\":true}")),
               Error);
  EXPECT_THROW(Entropy90bConfig::from_json(
                   Json::parse("{\"autocorrelation_lags\":65}")),
               Error);
  EXPECT_THROW(Entropy90bConfig::from_json(
                   Json::parse("{\"autocorrelation_lags\":-1}")),
               Error);

  // Disabled estimators are skipped even on long streams.
  Entropy90bConfig only_mcv;
  only_mcv.collision = only_mcv.markov = only_mcv.compression = false;
  only_mcv.t_tuple = only_mcv.lrs = false;
  only_mcv.autocorrelation_lags = 0;
  const Entropy90bResult r =
      estimate_entropy90b(xoshiro_stream(7, 8192), only_mcv);
  EXPECT_GE(r.h_mcv, 0.0);
  EXPECT_DOUBLE_EQ(r.h_collision, -1.0);
  EXPECT_DOUBLE_EQ(r.h_markov, -1.0);
  EXPECT_DOUBLE_EQ(r.h_compression, -1.0);
  EXPECT_DOUBLE_EQ(r.h_t_tuple, -1.0);
  EXPECT_DOUBLE_EQ(r.h_lrs, -1.0);
  EXPECT_DOUBLE_EQ(r.min_entropy, r.h_mcv);
  EXPECT_TRUE(r.autocorrelation.empty());
}

// --- restart validation ------------------------------------------------------

TEST(Entropy90bRestart, ColumnStreamTransposesTheMatrix) {
  RestartMatrix m;
  m.rows = 2;
  m.cols = 3;
  m.bits = BitStream::from_ascii("011100");  // rows: 011 / 100
  EXPECT_EQ(m.row_stream().to_ascii(), "011100");
  // Columns are (0,1), (1,0), (1,0) -> "01" "10" "10".
  EXPECT_EQ(m.column_stream().to_ascii(), "011010");
}

TEST(Entropy90bRestart, UniformMatrixPassesSanityAndPinsValidation) {
  // 50x50 IID-uniform matrix (Xoshiro256(777), bit = next() & 1) against a
  // claimed h_initial = 0.9: counts stay under both binomial cutoffs and
  // validation returns min(h_initial, row battery, column battery).
  Xoshiro256 rng(777);
  RestartMatrix m;
  m.rows = 50;
  m.cols = 50;
  for (int i = 0; i < 2500; ++i) m.bits.append((rng.next() & 1) != 0);
  const RestartValidation v = validate_restarts(m, 0.9);
  EXPECT_EQ(v.max_row_count, 33u);
  EXPECT_EQ(v.max_column_count, 34u);
  EXPECT_EQ(v.cutoff_row, 43u);
  EXPECT_EQ(v.cutoff_column, 43u);
  EXPECT_TRUE(v.sanity_passed);
  EXPECT_DOUBLE_EQ(v.h_row, 0.6997155614704379);
  EXPECT_DOUBLE_EQ(v.h_column, 0.5898440903758172);
  EXPECT_DOUBLE_EQ(v.validated, 0.5898440903758172);
}

TEST(Entropy90bRestart, ConstantMatrixFailsSanityAndZeroesTheClaim) {
  RestartMatrix m;
  m.rows = 50;
  m.cols = 50;
  for (int i = 0; i < 2500; ++i) m.bits.append(false);
  const RestartValidation v = validate_restarts(m, 0.8);
  EXPECT_EQ(v.max_row_count, 50u);
  EXPECT_EQ(v.cutoff_row, 44u);
  EXPECT_FALSE(v.sanity_passed);
  EXPECT_DOUBLE_EQ(v.validated, 0.0);
  // A claim of zero entropy can never be refuted by counts: cutoff n+1.
  const RestartValidation zero_claim = validate_restarts(m, 0.0);
  EXPECT_TRUE(zero_claim.sanity_passed);
  EXPECT_EQ(zero_claim.cutoff_row, m.cols + 1);
}

TEST(Entropy90bRestart, RejectsDegenerateMatricesAndClaims) {
  RestartMatrix m;
  m.rows = 1;
  m.cols = 4;
  m.bits = BitStream::from_ascii("0101");
  EXPECT_THROW(validate_restarts(m, 0.5), PreconditionError);
  m.rows = 2;
  m.cols = 3;  // 6 bits expected, 4 supplied
  EXPECT_THROW(validate_restarts(m, 0.5), PreconditionError);
  m.cols = 2;
  m.bits = BitStream::from_ascii("0110");
  EXPECT_THROW(validate_restarts(m, 1.5), PreconditionError);
  EXPECT_NO_THROW(validate_restarts(m, 1.0));
}

// --- entropy_map driver: cross-jobs bit-identity -----------------------------

TEST(EntropyMapDriver, EstimatesAreBitIdenticalAcrossJobs) {
  core::EntropyMapSpec spec;
  spec.stage_counts = {5};  // valid for both IRO (odd) and STR (NT = 2)
  spec.sampling_periods = {Time::from_ns(250.0), Time::from_ns(500.0)};
  spec.bits_per_cell = 256;
  spec.restart_rows = 3;
  spec.restart_cols = 24;

  core::ExperimentOptions options;
  std::vector<core::EntropyMapResult> runs;
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    options.jobs = jobs;
    runs.push_back(core::run_entropy_map(spec, core::cyclone_iii(), options));
  }
  ASSERT_EQ(runs[0].cells.size(), 4u);  // 2 kinds x 1 stage count x 2 periods
  for (std::size_t j = 1; j < runs.size(); ++j) {
    ASSERT_EQ(runs[j].cells.size(), runs[0].cells.size());
    EXPECT_EQ(runs[j].floor_min_entropy, runs[0].floor_min_entropy);
    for (std::size_t i = 0; i < runs[0].cells.size(); ++i) {
      const auto& a = runs[0].cells[i];
      const auto& b = runs[j].cells[i];
      EXPECT_EQ(a.ring.name(), b.ring.name());
      EXPECT_EQ(a.sampling_period, b.sampling_period);
      // Bit-exact doubles: same cells, any worker count.
      EXPECT_EQ(a.estimate.h_mcv, b.estimate.h_mcv);
      EXPECT_EQ(a.estimate.h_collision, b.estimate.h_collision);
      EXPECT_EQ(a.estimate.h_markov, b.estimate.h_markov);
      EXPECT_EQ(a.estimate.h_t_tuple, b.estimate.h_t_tuple);
      EXPECT_EQ(a.estimate.h_lrs, b.estimate.h_lrs);
      EXPECT_EQ(a.estimate.min_entropy, b.estimate.min_entropy);
      ASSERT_EQ(a.estimate.autocorrelation.size(),
                b.estimate.autocorrelation.size());
      for (std::size_t k = 0; k < a.estimate.autocorrelation.size(); ++k) {
        EXPECT_EQ(a.estimate.autocorrelation[k], b.estimate.autocorrelation[k]);
      }
      ASSERT_EQ(a.restart_run, b.restart_run);
      EXPECT_EQ(a.restart.validated, b.restart.validated);
      EXPECT_EQ(a.restart.sanity_passed, b.restart.sanity_passed);
    }
  }
  // The map must actually measure something: every cell's battery ran at
  // least MCV/collision/Markov/t-tuple on its 256 bits.
  for (const auto& cell : runs[0].cells) {
    EXPECT_GE(cell.estimate.min_entropy, 0.0);
    EXPECT_GE(cell.estimate.h_t_tuple, 0.0);
    EXPECT_TRUE(cell.restart_run);
  }
}

// --- result serialization ----------------------------------------------------

TEST(Entropy90bJson, ResultAndValidationSerializeAllFields) {
  const Entropy90bResult r = estimate_entropy90b(xoshiro_stream(3, 512));
  const Json j = r.to_json();
  EXPECT_EQ(j.at("bits").as_integer(), 512);
  EXPECT_DOUBLE_EQ(j.at("h_mcv").as_number(), r.h_mcv);
  EXPECT_DOUBLE_EQ(j.at("min_entropy").as_number(), r.min_entropy);
  EXPECT_EQ(j.at("autocorrelation").size(), r.autocorrelation.size());

  Xoshiro256 rng(11);
  RestartMatrix m;
  m.rows = 10;
  m.cols = 10;
  for (int i = 0; i < 100; ++i) m.bits.append((rng.next() & 1) != 0);
  const RestartValidation v = validate_restarts(m, 0.5);
  const Json vj = v.to_json();
  EXPECT_DOUBLE_EQ(vj.at("h_row").as_number(), v.h_row);
  EXPECT_DOUBLE_EQ(vj.at("validated").as_number(), v.validated);
  EXPECT_EQ(vj.at("sanity_passed").as_boolean(), v.sanity_passed);
  EXPECT_EQ(static_cast<std::size_t>(vj.at("cutoff_row").as_integer()),
            v.cutoff_row);
}
