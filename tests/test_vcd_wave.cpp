// Tests for the VCD reader (round-trip with the writer) and the ASCII
// waveform renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "common/require.hpp"
#include "ring/str.hpp"
#include "sim/ascii_wave.hpp"
#include "sim/kernel.hpp"
#include "sim/probe.hpp"
#include "sim/vcd.hpp"
#include "sim/vcd_read.hpp"

using namespace ringent;
using namespace ringent::literals;

namespace {

sim::SignalTrace make_clock(const char* name, Time half, std::size_t edges) {
  sim::SignalTrace trace(name);
  bool value = true;
  Time t = Time::zero();
  for (std::size_t i = 0; i < edges; ++i) {
    trace.record(t, value);
    value = !value;
    t += half;
  }
  return trace;
}

}  // namespace

TEST(VcdRoundTrip, WriterOutputParsesBackExactly) {
  const auto clk = make_clock("clk", 500_ps, 40);
  const auto data = make_clock("data", 700_ps, 30);

  sim::VcdWriter writer("dut");
  writer.add_signal(clk);
  writer.add_signal(data);
  std::ostringstream out;
  writer.write(out);

  std::istringstream in(out.str());
  const auto doc = sim::read_vcd(in);
  EXPECT_EQ(doc.module_name, "dut");
  EXPECT_EQ(doc.timescale_fs, 1);
  ASSERT_EQ(doc.signals.size(), 2u);
  EXPECT_EQ(doc.signals[0].name, "clk");
  EXPECT_EQ(doc.signals[1].name, "data");

  const auto& parsed = doc.signals[0].trace.transitions();
  const auto& original = clk.transitions();
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].at.fs(), original[i].at.fs());
    EXPECT_EQ(parsed[i].value, original[i].value);
  }
}

TEST(VcdRoundTrip, RingWaveformRoundTrips) {
  sim::Kernel kernel;
  ring::StrConfig config;
  config.stages = 8;
  config.charlie = ring::CharlieParams::symmetric(260_ps, 123_ps);
  config.trace_all_stages = true;
  ring::Str str(kernel, config,
                ring::make_initial_state(8, 4, ring::TokenPlacement::clustered),
                {});
  str.start();
  kernel.run_until(Time::from_ns(40.0));

  sim::VcdWriter writer("ring");
  for (const auto& trace : str.stage_traces()) writer.add_signal(trace);
  std::ostringstream out;
  writer.write(out);
  std::istringstream in(out.str());
  const auto doc = sim::read_vcd(in);
  ASSERT_EQ(doc.signals.size(), 8u);
  std::size_t total = 0;
  for (const auto& sig : doc.signals) {
    total += sig.trace.transitions().size();
  }
  EXPECT_EQ(total, str.firings());
}

TEST(VcdReader, ParsesForeignTimescalesAndSkipsMetadata) {
  const std::string vcd =
      "$date today $end\n"
      "$version some tool $end\n"
      "$timescale 10 ps $end\n"
      "$scope module top $end\n"
      "$var wire 1 ! sig $end\n"
      "$upscope $end\n"
      "$enddefinitions $end\n"
      "$dumpvars\nx!\n$end\n"
      "#0\n1!\n#5\n0!\n#12\n1!\n";
  std::istringstream in(vcd);
  const auto doc = sim::read_vcd(in);
  EXPECT_EQ(doc.timescale_fs, 10'000);
  ASSERT_EQ(doc.signals.size(), 1u);
  const auto& tr = doc.signals[0].trace.transitions();
  ASSERT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr[1].at.fs(), 50'000);  // 5 units * 10 ps
  EXPECT_FALSE(tr[1].value);
}

TEST(VcdReader, RejectsVectorsAndGarbage) {
  const std::string vec =
      "$timescale 1fs $end\n$scope module m $end\n"
      "$var wire 8 ! bus $end\n$upscope $end\n$enddefinitions $end\n";
  std::istringstream in(vec);
  EXPECT_THROW(sim::read_vcd(in), Error);

  std::istringstream nonsense("hello world");
  EXPECT_THROW(sim::read_vcd(nonsense), Error);

  EXPECT_THROW(sim::read_vcd_file("/nonexistent/file.vcd"), Error);
}

TEST(AsciiWave, RendersLevelsAndEdges) {
  const auto clk = make_clock("clk", 500_ps, 8);  // high/low 500 ps each
  sim::AsciiWaveOptions options;
  options.from = Time::zero();
  options.to = Time::from_ps(4000.0);
  options.columns = 32;
  const std::string art = sim::ascii_wave(clk, options);
  // 8 columns per half period: levels and transitions both present.
  EXPECT_NE(art.find('-'), std::string::npos);
  EXPECT_NE(art.find('_'), std::string::npos);
  EXPECT_NE(art.find('\\'), std::string::npos);
  EXPECT_NE(art.find('/'), std::string::npos);
  EXPECT_NE(art.find("clk"), std::string::npos);
  EXPECT_NE(art.find("ns"), std::string::npos);  // time ruler
}

TEST(AsciiWave, MultipleSignalsAlignAndUnknownPrefixShows) {
  sim::SignalTrace late("late");
  late.record(Time::from_ps(2000.0), true);
  const auto clk = make_clock("c", 500_ps, 10);
  sim::AsciiWaveOptions options;
  options.from = Time::zero();
  options.to = Time::from_ps(4000.0);
  options.columns = 16;
  const std::string art = sim::ascii_waves({&clk, &late}, options);
  // The late signal is unknown ('?') for the first half of the window.
  EXPECT_NE(art.find('?'), std::string::npos);
  // Two signal rows + ruler.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
}

TEST(AsciiWave, Preconditions) {
  const auto clk = make_clock("c", 500_ps, 4);
  sim::AsciiWaveOptions bad;
  bad.columns = 2;
  EXPECT_THROW(sim::ascii_wave(clk, bad), PreconditionError);
  EXPECT_THROW(sim::ascii_waves({}, {}), PreconditionError);
}
