// Tests for core/: specs, the calibrated device model, the oscillator
// factory, reporting, and the paper-shaped experiment drivers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "analysis/periods.hpp"
#include "analysis/regression.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"
#include "core/experiments.hpp"
#include "core/oscillator.hpp"
#include "core/export.hpp"
#include "core/report.hpp"
#include "core/spec.hpp"
#include "measure/frequency.hpp"

using namespace ringent;
using namespace ringent::core;

// --- RingSpec -----------------------------------------------------------------

TEST(RingSpec, NamesFollowThePaper) {
  EXPECT_EQ(RingSpec::iro(5).name(), "IRO 5C");
  EXPECT_EQ(RingSpec::str(96).name(), "STR 96C");
}

TEST(RingSpec, EffectiveTokensDefaultsToNtEqNb) {
  EXPECT_EQ(RingSpec::str(96).effective_tokens(), 48u);
  EXPECT_EQ(RingSpec::str(6).effective_tokens(), 2u);  // 3 rounded down to 2
  EXPECT_EQ(RingSpec::str(32, 10).effective_tokens(), 10u);
}

TEST(RingSpec, ValidationRejectsBadConfigs) {
  EXPECT_THROW(RingSpec::iro(2), PreconditionError);
  EXPECT_THROW(RingSpec::str(8, 3), PreconditionError);   // odd tokens
  EXPECT_THROW(RingSpec::str(8, 8), PreconditionError);   // no bubbles
  EXPECT_THROW(RingSpec::str(3, 0), PreconditionError);   // default NT = 0
}

// --- Calibration: frequencies of Tables I & II ----------------------------------

struct FrequencyCase {
  RingKind kind;
  std::size_t stages;
  double paper_mhz;
};

class CalibrationFrequencies : public ::testing::TestWithParam<FrequencyCase> {
};

TEST_P(CalibrationFrequencies, MatchesPaperWithinOnePercent) {
  const auto [kind, stages, paper_mhz] = GetParam();
  const RingSpec spec =
      kind == RingKind::iro ? RingSpec::iro(stages) : RingSpec::str(stages);
  BuildOptions options;
  options.sigma_g_ps = 0.0;  // frequency is a noise-free property
  Oscillator osc = Oscillator::build(spec, cyclone_iii(), options);
  osc.run_periods(50);
  const double f = measure::mean_frequency_mhz(osc.output());
  EXPECT_NEAR(f / paper_mhz, 1.0, 0.01) << spec.name();
}

INSTANTIATE_TEST_SUITE_P(
    PaperTables, CalibrationFrequencies,
    ::testing::Values(FrequencyCase{RingKind::iro, 3, 654.0},
                      FrequencyCase{RingKind::iro, 5, 376.0},
                      FrequencyCase{RingKind::iro, 25, 73.0},
                      FrequencyCase{RingKind::iro, 80, 23.0},
                      FrequencyCase{RingKind::str, 4, 653.0},
                      FrequencyCase{RingKind::str, 24, 433.0},
                      FrequencyCase{RingKind::str, 48, 408.0},
                      FrequencyCase{RingKind::str, 64, 369.0},
                      FrequencyCase{RingKind::str, 96, 320.0}),
    [](const ::testing::TestParamInfo<FrequencyCase>& info) {
      return std::string(to_string(info.param.kind)) + "_" +
             std::to_string(info.param.stages) + "C";
    });

// --- Oscillator facade -----------------------------------------------------------

TEST(Oscillator, RunPeriodsDeliversRequestedSampleCount) {
  Oscillator osc = Oscillator::build(RingSpec::str(16), cyclone_iii(), {});
  osc.run_periods(500);
  EXPECT_GE(analysis::periods_ps(osc.output()).size(), 500u);
}

TEST(Oscillator, WarmupSkipsInitialTransient) {
  BuildOptions options;
  options.warmup_periods = 100;
  Oscillator osc =
      Oscillator::build(RingSpec::str(16), cyclone_iii(), options);
  osc.run_periods(10);
  const auto edges = osc.output().rising_edges();
  ASSERT_FALSE(edges.empty());
  EXPECT_GT(edges.front(), osc.nominal_period() * 99);
}

TEST(Oscillator, BoardChangesFrequencyDeterministically) {
  const fpga::Board board(99, 2, cyclone_iii().process);
  BuildOptions options;
  options.board = &board;
  options.sigma_g_ps = 0.0;
  Oscillator a = Oscillator::build(RingSpec::iro(5), cyclone_iii(), options);
  Oscillator b = Oscillator::build(RingSpec::iro(5), cyclone_iii(), options);
  a.run_periods(50);
  b.run_periods(50);
  EXPECT_DOUBLE_EQ(measure::mean_frequency_mhz(a.output()),
                   measure::mean_frequency_mhz(b.output()));
  // And differs from the ideal device.
  Oscillator ideal = Oscillator::build(RingSpec::iro(5), cyclone_iii(),
                                       BuildOptions{.sigma_g_ps = 0.0});
  ideal.run_periods(50);
  EXPECT_NE(measure::mean_frequency_mhz(a.output()),
            measure::mean_frequency_mhz(ideal.output()));
}

TEST(Oscillator, RunPeriodsRequiresPositiveCount) {
  Oscillator osc = Oscillator::build(RingSpec::iro(5), cyclone_iii(), {});
  EXPECT_THROW(osc.run_periods(0), PreconditionError);
}

TEST(Oscillator, BitReproducibleAcrossRuns) {
  // The determinism contract (DESIGN.md §5): identical configuration =>
  // identical event history, down to the femtosecond.
  const auto run = [](std::uint64_t seed) {
    BuildOptions options;
    options.noise_seed = seed;
    Oscillator osc = Oscillator::build(RingSpec::str(24), cyclone_iii(),
                                       options);
    osc.run_periods(2000);
    return osc.output().rising_edges();
  };
  const auto a = run(42);
  const auto b = run(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fs(), b[i].fs()) << "diverged at edge " << i;
  }
  // And a different seed gives a different history.
  const auto c = run(43);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    differs = differs || (a[i] != c[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(Experiments, DriversAreReproducible) {
  const VoltageSweepSpec sweep{RingSpec::str(24), {1.0, 1.2, 1.4}};
  const auto a = run_voltage_sweep(sweep, cyclone_iii());
  const auto b = run_voltage_sweep(sweep, cyclone_iii());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points[i].frequency_mhz, b.points[i].frequency_mhz);
  }
  EXPECT_DOUBLE_EQ(a.excursion, b.excursion);
}

// --- report -----------------------------------------------------------------------

TEST(Report, TableAlignsAndCsvEscapesNothing) {
  Table t({"Ring", "Fn (MHz)"});
  t.add_row({"IRO 5C", "376"});
  t.add_row({"STR 96C", "320"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| Ring    | Fn (MHz) |"), std::string::npos);
  EXPECT_NE(s.find("| STR 96C | 320      |"), std::string::npos);
  EXPECT_EQ(t.csv(), "Ring,Fn (MHz)\nIRO 5C,376\nSTR 96C,320\n");
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), PreconditionError);
}

TEST(Report, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.4925, 0), "49%");
  EXPECT_EQ(fmt_mhz(376.004), "376.00 MHz");
  EXPECT_EQ(fmt_ps(2.833, 2), "2.83 ps");
}

// --- experiments: the paper's shapes ------------------------------------------------

TEST(Experiments, VoltageSweepShapesOfTableI) {
  const std::vector<double> volts = {1.0, 1.2, 1.4};
  const auto iro5 =
      run_voltage_sweep(VoltageSweepSpec{RingSpec::iro(5), volts}, cyclone_iii());
  const auto iro80 = run_voltage_sweep(VoltageSweepSpec{RingSpec::iro(80), volts},
                                       cyclone_iii());
  const auto str4 =
      run_voltage_sweep(VoltageSweepSpec{RingSpec::str(4), volts}, cyclone_iii());
  const auto str96 = run_voltage_sweep(VoltageSweepSpec{RingSpec::str(96), volts},
                                       cyclone_iii());

  // IRO excursion is ~48% regardless of length.
  EXPECT_NEAR(iro5.excursion, 0.48, 0.02);
  EXPECT_NEAR(iro80.excursion, 0.48, 0.02);
  EXPECT_NEAR(iro5.excursion, iro80.excursion, 0.015);

  // STR excursion improves with length: 50% -> 37% (paper Table I).
  EXPECT_NEAR(str4.excursion, 0.49, 0.02);
  EXPECT_NEAR(str96.excursion, 0.37, 0.02);
  EXPECT_GT(str4.excursion - str96.excursion, 0.08);

  EXPECT_THROW(
      run_voltage_sweep(VoltageSweepSpec{RingSpec::iro(5), {1.0, 1.1}},
                        cyclone_iii()),
      PreconditionError);  // nominal voltage missing
}

TEST(Experiments, NormalizedFrequencyIsLinearInVoltage) {
  const std::vector<double> volts = {1.0, 1.1, 1.2, 1.3, 1.4};
  const auto sweep = run_voltage_sweep(VoltageSweepSpec{RingSpec::str(96), volts},
                                       cyclone_iii());
  std::vector<double> vs, fs;
  for (const auto& p : sweep.points) {
    vs.push_back(p.voltage_v);
    fs.push_back(p.normalized);
  }
  EXPECT_GT(analysis::linear_fit(vs, fs).r2, 0.999);
}

TEST(Experiments, ProcessVariabilityShapeOfTableII) {
  // Use 20 boards: the shape (STR 96C averages mismatch over 96 LUTs) is a
  // population property; 5 boards as in the paper is too noisy to assert on.
  const auto iro3 = run_process_variability(
      ProcessVariabilitySpec{RingSpec::iro(3), 20}, cyclone_iii());
  const auto str96 = run_process_variability(
      ProcessVariabilitySpec{RingSpec::str(96), 20}, cyclone_iii());
  EXPECT_EQ(iro3.boards.size(), 20u);
  EXPECT_GT(iro3.sigma_rel, 0.004);   // short ring: ~0.7-0.8%
  EXPECT_LT(iro3.sigma_rel, 0.012);
  EXPECT_LT(str96.sigma_rel, 0.003);  // long STR: ~0.15-0.2%
  EXPECT_LT(str96.sigma_rel, iro3.sigma_rel / 2.0);
  EXPECT_THROW(run_process_variability(ProcessVariabilitySpec{RingSpec::iro(3), 1},
                                       cyclone_iii()),
               PreconditionError);
}

TEST(Experiments, IroJitterFollowsSqrtLawWithSigmaG2ps) {
  ExperimentOptions options;
  options.board_index = 0;
  const auto points = run_jitter_vs_stages(
      JitterSweepSpec{RingKind::iro, {3, 9, 25, 49}}, cyclone_iii(), options);
  std::vector<double> stages, sigmas;
  for (const auto& p : points) {
    stages.push_back(static_cast<double>(p.stages));
    sigmas.push_back(p.sigma_p_ps);
    EXPECT_NEAR(p.sigma_g_ps, 2.0, 0.55) << p.stages;  // Eq. 7 extraction
  }
  const auto fit = analysis::sqrt_law_fit(stages, sigmas);
  EXPECT_GT(fit.r2, 0.9);
  // Coefficient = sqrt(2) sigma_g.
  EXPECT_NEAR(fit.coefficient, std::sqrt(2.0) * 2.0, 0.45);
}

TEST(Experiments, StrJitterIndependentOfLength) {
  ExperimentOptions options;
  options.board_index = 0;
  const auto points = run_jitter_vs_stages(
      JitterSweepSpec{RingKind::str, {8, 32, 96}}, cyclone_iii(), options);
  // Ground-truth sigma stays in the paper's flat 2-4 ps band at every length
  // (an IRO would read 5.7 / 11.3 / 19.6 ps here).
  for (const auto& p : points) {
    EXPECT_GT(p.sigma_direct_ps, 2.0) << p.stages;
    EXPECT_LT(p.sigma_direct_ps, 4.5) << p.stages;
  }
  // The divided-clock method reads the long-horizon diffusion rate, which is
  // below the direct sigma (Charlie regulation, see EXPERIMENTS.md) and must
  // also not grow with length.
  EXPECT_LT(points.back().sigma_p_ps, points.front().sigma_p_ps * 1.2);
  EXPECT_LT(points.back().sigma_p_ps, 3.0);
}

TEST(Experiments, CollectPeriodsHonoursNoiseSwitch) {
  ExperimentOptions options;
  options.with_noise = false;
  const auto quiet =
      collect_periods_ps(RingSpec::str(16), cyclone_iii(), 200, options);
  ASSERT_EQ(quiet.size(), 200u);
  EXPECT_NEAR(describe(quiet).stddev(), 0.0, 1e-6);
  options.with_noise = true;
  const auto noisy =
      collect_periods_ps(RingSpec::str(16), cyclone_iii(), 200, options);
  EXPECT_GT(describe(noisy).stddev(), 1.0);
}

TEST(Experiments, ModeMapLocksEvenlySpacedAcrossTheBand) {
  // Paper Sec. V-A: at L=32 every even NT in 10..20 locks evenly spaced
  // (we start clustered, the harder initial condition).
  ModeMapSpec map_spec;
  map_spec.stages = 32;
  map_spec.token_counts = {10, 12, 14, 16, 18, 20};
  const auto map = run_mode_map(map_spec, cyclone_iii());
  for (const auto& entry : map) {
    EXPECT_EQ(entry.mode, ring::OscillationMode::evenly_spaced)
        << "NT=" << entry.tokens;
    EXPECT_LT(entry.interval_cv, 0.05) << "NT=" << entry.tokens;
  }
}

TEST(Experiments, ModeMapShowsBurstWhenCharlieAblated) {
  ModeMapSpec map_spec;
  map_spec.stages = 16;
  map_spec.token_counts = {4};
  map_spec.charlie_scale = 0.02;
  const auto weak = run_mode_map(map_spec, cyclone_iii());
  EXPECT_EQ(weak[0].mode, ring::OscillationMode::burst);
  map_spec.charlie_scale = 1.0;
  const auto strong = run_mode_map(map_spec, cyclone_iii());
  EXPECT_EQ(strong[0].mode, ring::OscillationMode::evenly_spaced);
}

TEST(Experiments, CoherentBeatTighterForLongStrs) {
  // Smaller rings than the example (runtime), same physics: the pair detune
  // uncertainty shrinks with mismatch averaging.
  const auto str48 = run_coherent_across_boards(
      CoherentSweepSpec{RingSpec::str(48), 0.01, 5, 30000}, cyclone_iii());
  const auto iro5 = run_coherent_across_boards(
      CoherentSweepSpec{RingSpec::iro(5), 0.01, 5, 30000}, cyclone_iii());
  ASSERT_EQ(str48.boards.size(), 5u);
  for (const auto& b : str48.boards) {
    EXPECT_GT(b.bits, 50u);
    EXPECT_GT(b.half_beat_samples, 5.0);
  }
  EXPECT_LT(str48.detune_sigma, iro5.detune_sigma);
  EXPECT_LT(str48.worst_deviation, iro5.worst_deviation);
  EXPECT_THROW(run_coherent_across_boards(
                   CoherentSweepSpec{RingSpec::str(48), 0.5}, cyclone_iii()),
               PreconditionError);
}

// The paper's shapes must not depend on the lucky default seed: re-assert
// the two headline trends under different randomness.
class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, HeadlineShapesHoldAtEverySeed) {
  ExperimentOptions options;
  options.seed = GetParam();

  // Table I shape: STR 96C excursion well below IRO 80C's.
  const auto iro = run_voltage_sweep(
      VoltageSweepSpec{RingSpec::iro(80), {1.0, 1.2, 1.4}, 200}, cyclone_iii(),
      options);
  const auto str = run_voltage_sweep(
      VoltageSweepSpec{RingSpec::str(96), {1.0, 1.2, 1.4}, 200}, cyclone_iii(),
      options);
  EXPECT_GT(iro.excursion - str.excursion, 0.07) << "seed " << GetParam();

  // Fig. 12 shape: STR sigma_p flat in the paper's band at two lengths.
  for (std::size_t stages : {8u, 96u}) {
    const auto periods = collect_periods_ps(RingSpec::str(stages),
                                            cyclone_iii(), 8000, options);
    const double sigma = describe(periods).stddev();
    EXPECT_GT(sigma, 2.4) << "seed " << GetParam() << " L=" << stages;
    EXPECT_LT(sigma, 4.5) << "seed " << GetParam() << " L=" << stages;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(1u, 777u, 0xDEADBEEFu));

TEST(Experiments, RestartDivergenceMatchesTheJitterStory) {
  const auto iro = run_restart_experiment(
      RestartSpec{RingSpec::iro(25), 48, 128}, cyclone_iii());
  EXPECT_TRUE(iro.control_identical);
  // The k-th edge accumulates k i.i.d. periods: diffusion/edge ~ sigma_p =
  // sqrt(50) * 2 = 14.1 ps.
  EXPECT_NEAR(iro.diffusion_per_edge_ps, 14.1, 2.5);
  EXPECT_GT(iro.fit_r2, 0.9);

  const auto str = run_restart_experiment(
      RestartSpec{RingSpec::str(24), 48, 128}, cyclone_iii());
  EXPECT_TRUE(str.control_identical);
  // The Charlie regulation suppresses collective diffusion far below the
  // IRO's at similar frequency.
  EXPECT_LT(str.diffusion_per_edge_ps, iro.diffusion_per_edge_ps / 5.0);
  EXPECT_GT(str.diffusion_per_edge_ps, 0.2);

  EXPECT_THROW(run_restart_experiment(RestartSpec{RingSpec::iro(5), 2, 64},
                                      cyclone_iii()),
               PreconditionError);
}

TEST(Export, ArtifactWritingRoundTrips) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  // Off by default.
  unsetenv("RINGENT_OUT_DIR");
  EXPECT_FALSE(write_artifact("unit-test", table));
  // On: file appears with provenance header + csv body.
  setenv("RINGENT_OUT_DIR", "/tmp", 1);
  EXPECT_TRUE(write_artifact("ringent-unit-test", table, "note"));
  std::ifstream in("/tmp/ringent-unit-test.csv");
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_NE(line.find("ringent-unit-test"), std::string::npos);
  std::getline(in, line);
  EXPECT_EQ(line, "# note");
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  EXPECT_THROW(write_artifact("bad/slug", table), PreconditionError);
  unsetenv("RINGENT_OUT_DIR");
}

TEST(Experiments, DeterministicJitterAccumulatesOnlyInTheIro) {
  DeterministicJitterSpec sweep;
  sweep.stage_counts = {8, 32};
  sweep.periods = 4096;
  sweep.kind = RingKind::iro;
  const auto iro = run_deterministic_jitter(sweep, cyclone_iii());
  sweep.kind = RingKind::str;
  const auto str = run_deterministic_jitter(sweep, cyclone_iii());
  // IRO tone grows ~linearly with stages; STR tone stays near-flat.
  EXPECT_GT(iro[1].tone_ps / iro[0].tone_ps, 3.0);
  EXPECT_LT(str[1].tone_ps / str[0].tone_ps, 1.5);
  // At equal stage count the STR lets through far less absolute
  // deterministic jitter.
  EXPECT_GT(iro[1].tone_ps, 5.0 * str[1].tone_ps);
  // The residual random jitter stays at the thermal level for the STR.
  EXPECT_LT(str[1].random_ps, 6.0);
}
