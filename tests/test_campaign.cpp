// Campaign orchestrator tests: content keys pinned byte-exact for every
// registry experiment, strict spec/plan parsing, grid expansion order,
// store atomicity + torn-write healing, and the interrupted-resume
// bit-identity contract (the invariant that makes `campaign run` safe to
// SIGKILL at any point and restart — possibly sharded across processes).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/key.hpp"
#include "campaign/plan.hpp"
#include "campaign/runner.hpp"
#include "campaign/store.hpp"
#include "common/json.hpp"
#include "common/require.hpp"
#include "core/calibration.hpp"
#include "core/registry.hpp"

using namespace ringent;
using namespace ringent::campaign;
namespace fs = std::filesystem;

namespace {

// --- pinned goldens ---------------------------------------------------------
//
// One row per registry experiment: the canonical dump of its default spec
// and the content key of (experiment, schema, canonical spec, seed
// 20120312, device "cyclone-iii"). These bytes ARE the cache contract:
// every stored campaign cell is addressed by such a key, so canonicalization
// drift (key order, float formatting, a renamed field, a schema bump that
// forgot to be deliberate) would silently orphan every existing store.
// Pinning them makes drift a loud test failure instead. When a change is
// intentional, bump the spec schema version and re-pin.
struct Golden {
  const char* experiment;
  const char* canonical_spec;
  const char* content_key;
};

constexpr std::uint64_t kSeed = 20120312;
constexpr const char* kDevice = "cyclone-iii";

const Golden kGoldens[] = {
    {"voltage_sweep",
     R"({"periods":30,"ring":{"kind":"iro","placement":"evenly_spread","stages":3,"tokens":0},"schema":"ringent.spec.voltage_sweep/1","voltages":[1.1000000000000001,1.2,1.3]})",
     "86519ccae4ada36886216b7c20a712deb70f082be5e056b581a7620fe1c2da19"},
    {"temperature_sweep",
     R"({"periods":30,"ring":{"kind":"str","placement":"evenly_spread","stages":4,"tokens":0},"schema":"ringent.spec.temperature_sweep/1","temperatures":[15,25,35]})",
     "d84a2eec9ef67332932ac3c63f0fa792be10912e1ff28b54fa9664b4518225af"},
    {"process_variability",
     R"({"board_count":3,"periods":30,"ring":{"kind":"iro","placement":"evenly_spread","stages":5,"tokens":0},"schema":"ringent.spec.process_variability/1"})",
     "b106763c51fd338317ab39bc831092a92bde7a13b70a20d96a7a9a00b693ca27"},
    {"jitter_vs_stages",
     R"({"divider_n":4,"kind":"iro","mes_periods":20,"schema":"ringent.spec.jitter_vs_stages/1","stage_counts":[3,5]})",
     "0b7f711b631e40d8627842aca8c32797f36a797774235472a4f1376887239a53"},
    {"mode_map",
     R"({"charlie_scale":1,"periods":120,"placement":"clustered","schema":"ringent.spec.mode_map/1","stages":8,"token_counts":[2,4]})",
     "aa6d99b9ff8a7784a533b238796744979f5b3829ebae6be24eedbc977bc19d0b"},
    {"restart",
     R"({"edges":16,"restarts":8,"ring":{"kind":"iro","placement":"evenly_spread","stages":5,"tokens":0},"schema":"ringent.spec.restart/1"})",
     "09d99a938b1e4fe0aa524106cdec56fd9e4d17ad598cd8a2ac5eaaa094063af0"},
    {"coherent_boards",
     R"({"board_count":2,"design_detune":0.050000000000000003,"periods":500,"ring":{"kind":"iro","placement":"evenly_spread","stages":3,"tokens":0},"schema":"ringent.spec.coherent_boards/1"})",
     "3092def24598da49fddd0628c47d06a138cc0adf6626703a8d7946abab7b52b1"},
    {"deterministic_jitter",
     R"({"kind":"iro","modulation_amplitude_v":0.050000000000000003,"modulation_frequency_hz":2000000,"periods":256,"schema":"ringent.spec.deterministic_jitter/1","stage_counts":[3,5]})",
     "17e91e9cfa84bfc4af092d04d04903e16304de0e5abed3ddc26f0e9466631c82"},
    {"entropy_map",
     R"({"battery":{"autocorrelation_lags":8,"collision":true,"compression":true,"lrs":true,"markov":true,"mcv":true,"schema":"ringent.entropy90b-spec/1","t_tuple":true},"bits_per_cell":512,"kinds":["iro","str"],"restart_cols":32,"restart_rows":4,"sampling_periods_fs":[250000000,500000000],"schema":"ringent.spec.entropy_map/1","stage_counts":[5]})",
     "6c9a7ff6cbdcc5a93f3388cb4fe4fe33da08be3961b2e77cc8e45c95da9bd7f6"},
    {"attack_resilience",
     R"({"policy":{"alpha_log2":20,"apt_window":1024,"backoff_bits":256,"claimed_min_entropy":0.29999999999999999,"failover_after_strikes":2,"max_strikes":3,"probation_bits":1024,"suspect_fraction":0.80000000000000004},"regulator":{"ac_attenuation":1,"ripple_frequency_hz":0,"ripple_v":0},"rings":[{"kind":"iro","placement":"evenly_spread","stages":25,"tokens":0}],"sampling_period_fs":250000000,"scenarios":[{"events":[],"name":"quiet"},{"events":[{"frequency_hz":2000,"kind":"supply_tone","magnitude":0.103715,"stage":0,"start_fs":100000000000,"stop_fs":700000000000}],"name":"supply-tone"}],"schema":"ringent.spec.attack_resilience/1","total_bits":2000,"with_backup":true})",
     "3c2635257ba7e5ffc79298efbbafcc04b9908fa389e9bfde9f0b22256ae9751f"},
    {"entropy_service",
     R"({"block_bytes":64,"conditioner":"lfsr","conditioner_ratio":2,"policy":{"alpha_log2":20,"apt_window":1024,"backoff_bits":256,"claimed_min_entropy":0.10000000000000001,"failover_after_strikes":2,"max_strikes":3,"probation_bits":1024,"suspect_fraction":0.59999999999999998},"raw_bits_per_slot":16384,"request_bytes":256,"ring":{"kind":"str","placement":"evenly_spread","stages":24,"tokens":0},"ring_capacity":4096,"sampling_period_fs":250000000,"schema":"ringent.spec.entropy_service/1","slots":2,"synthetic":true,"wait_budget_ms":0})",
     "ee1c72bbae41ca83323748d9519e0194c81fbfce0a43e23a2f77ae16ae831b76"},
};

CellIdentity default_identity(const core::ExperimentDescriptor& entry) {
  CellIdentity identity;
  identity.experiment = entry.name;
  identity.schema = entry.spec_schema;
  identity.spec = entry.canonicalize(entry.default_spec());
  identity.seed = kSeed;
  identity.device = kDevice;
  return identity;
}

// --- filesystem helpers ------------------------------------------------------

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("ringent-test-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every regular file under `dir` (relative path -> bytes). Comparing two
/// of these asserts the stores are byte-identical, not merely equivalent.
std::map<std::string, std::string> dir_contents(const fs::path& dir) {
  std::map<std::string, std::string> contents;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    contents[fs::relative(entry.path(), dir).string()] =
        read_file(entry.path());
  }
  return contents;
}

/// A three-cell restart plan: small enough to execute in milliseconds,
/// big enough to interrupt between cells.
CampaignPlan tiny_restart_plan() {
  CampaignPlan plan;
  plan.name = "tiny-restart";
  plan.device = kDevice;
  plan.seeds = {kSeed};
  PlanEntry entry;
  entry.experiment = "restart";
  entry.grid.emplace_back(
      "restarts", std::vector<Json>{Json(std::int64_t(8)),
                                    Json(std::int64_t(10)),
                                    Json(std::int64_t(12))});
  plan.entries.push_back(entry);
  return plan;
}

}  // namespace

// --- content keys ------------------------------------------------------------

TEST(CampaignKeys, PinnedByteExactForEveryRegistryExperiment) {
  const auto& registry = core::experiment_registry();
  ASSERT_EQ(registry.size(), std::size(kGoldens))
      << "new experiment: add a pinned golden row";

  for (const Golden& golden : kGoldens) {
    const core::ExperimentDescriptor* entry =
        core::find_experiment(golden.experiment);
    ASSERT_NE(entry, nullptr) << golden.experiment;
    ASSERT_TRUE(static_cast<bool>(entry->default_spec)) << golden.experiment;
    ASSERT_TRUE(static_cast<bool>(entry->canonicalize)) << golden.experiment;

    const CellIdentity identity = default_identity(*entry);
    EXPECT_EQ(canonical_dump(identity.spec), golden.canonical_spec)
        << golden.experiment;
    EXPECT_EQ(content_key(identity), golden.content_key) << golden.experiment;
  }
}

TEST(CampaignKeys, KeyIsSensitiveToEveryIdentityField) {
  const core::ExperimentDescriptor* entry = core::find_experiment("restart");
  ASSERT_NE(entry, nullptr);
  const CellIdentity base = default_identity(*entry);
  const std::string key = content_key(base);
  EXPECT_TRUE(is_content_key(key));

  CellIdentity changed = base;
  changed.seed = base.seed + 1;
  EXPECT_NE(content_key(changed), key);

  changed = base;
  changed.device = "cyclone-iv";
  EXPECT_NE(content_key(changed), key);

  changed = base;
  changed.schema = "ringent.spec.restart/2";
  EXPECT_NE(content_key(changed), key);

  changed = base;
  changed.spec.set("restarts", Json(std::int64_t(9)));
  EXPECT_NE(content_key(changed), key);
}

TEST(CampaignKeys, KeyDocumentIsCanonicalJson) {
  const core::ExperimentDescriptor* entry = core::find_experiment("restart");
  ASSERT_NE(entry, nullptr);
  const std::string doc = key_document(default_identity(*entry));
  // Canonical means: parsing and canonically re-dumping is the identity.
  EXPECT_EQ(canonical_dump(Json::parse(doc)), doc);
  EXPECT_EQ(doc.rfind("{\"device\":\"cyclone-iii\"", 0), 0u)
      << "sorted keys put device first: " << doc;
}

TEST(CampaignKeys, IsContentKeyShape) {
  EXPECT_TRUE(is_content_key(std::string(64, 'a')));
  EXPECT_FALSE(is_content_key(std::string(63, 'a')));
  EXPECT_FALSE(is_content_key(std::string(65, 'a')));
  EXPECT_FALSE(is_content_key(std::string(64, 'A')));  // lower-case only
  EXPECT_FALSE(is_content_key(std::string(64, 'g')));
  EXPECT_FALSE(is_content_key(""));
}

// --- spec (de)serialization --------------------------------------------------

TEST(CampaignSpecs, CanonicalizeIsAFixpointForEveryExperiment) {
  for (const auto& entry : core::experiment_registry()) {
    const Json once = entry.canonicalize(entry.default_spec());
    const Json twice = entry.canonicalize(once);
    EXPECT_EQ(canonical_dump(once), canonical_dump(twice)) << entry.name;
    // The canonical form names its own schema.
    EXPECT_EQ(once.at("schema").as_string(), entry.spec_schema) << entry.name;
  }
}

TEST(CampaignSpecs, UnknownKeysAreRejectedNamingTheSchema) {
  for (const auto& entry : core::experiment_registry()) {
    Json spec = entry.canonicalize(entry.default_spec());
    spec.set("bogus_key", Json(std::int64_t(1)));
    try {
      entry.canonicalize(spec);
      FAIL() << entry.name << ": unknown key accepted";
    } catch (const Error& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find(entry.spec_schema), std::string::npos)
          << entry.name << ": error does not name the schema: " << what;
      EXPECT_NE(what.find("bogus_key"), std::string::npos)
          << entry.name << ": error does not name the key: " << what;
    }
  }
}

TEST(CampaignSpecs, MissingRequiredKeyIsRejected) {
  const core::ExperimentDescriptor* entry =
      core::find_experiment("voltage_sweep");
  ASSERT_NE(entry, nullptr);
  Json spec = Json::object();
  spec.set("schema", std::string(entry->spec_schema));
  // No "voltages", no "ring" — both are required.
  EXPECT_THROW(entry->canonicalize(spec), Error);
}

TEST(CampaignSpecs, DriverMinimumsAreEnforcedAtParseTime) {
  // A spec that parses must also satisfy the driver's RINGENT_REQUIREs —
  // the campaign runner relies on expand_plan() implying "will run".
  const core::ExperimentDescriptor* restart = core::find_experiment("restart");
  ASSERT_NE(restart, nullptr);
  Json spec = restart->canonicalize(restart->default_spec());
  spec.set("restarts", Json(std::int64_t(4)));  // driver floor is 8
  EXPECT_THROW(restart->canonicalize(spec), Error);

  const core::ExperimentDescriptor* coherent =
      core::find_experiment("coherent_boards");
  ASSERT_NE(coherent, nullptr);
  Json detune = coherent->canonicalize(coherent->default_spec());
  detune.set("design_detune", Json(0.5));  // driver ceiling is 0.2
  EXPECT_THROW(coherent->canonicalize(detune), Error);
}

TEST(CampaignSpecs, WrongSchemaIdIsRejected) {
  const core::ExperimentDescriptor* entry = core::find_experiment("restart");
  ASSERT_NE(entry, nullptr);
  Json spec = entry->canonicalize(entry->default_spec());
  spec.set("schema", std::string("ringent.spec.voltage_sweep/1"));
  EXPECT_THROW(entry->canonicalize(spec), Error);
}

// --- plan parsing and expansion ----------------------------------------------

TEST(CampaignPlanFormat, RoundTripsAndRejectsUnknownKeys) {
  const CampaignPlan plan = tiny_restart_plan();
  const std::string dumped = plan.to_json().dump(2);
  const CampaignPlan reloaded = CampaignPlan::from_json(Json::parse(dumped));
  EXPECT_EQ(reloaded.to_json().dump(2), dumped);
  EXPECT_EQ(reloaded.entries.size(), 1u);
  EXPECT_EQ(reloaded.seeds, std::vector<std::uint64_t>{kSeed});

  Json bad = plan.to_json();
  bad.set("surprise", Json(std::int64_t(1)));
  EXPECT_THROW(CampaignPlan::from_json(bad), Error);

  Json no_schema = Json::parse(dumped);
  Json stripped = Json::object();
  for (const auto& [key, value] : no_schema.items()) {
    if (key != "schema") stripped.set(key, value);
  }
  EXPECT_THROW(CampaignPlan::from_json(stripped), Error);
}

TEST(CampaignPlanFormat, ExpansionOrderIsSortedAxesOuterFirstSeedsInnermost) {
  CampaignPlan plan;
  plan.name = "order";
  plan.seeds = {1, 2};
  PlanEntry entry;
  entry.experiment = "restart";
  // Axes arrive sorted by construction ("edges" < "restarts"); expansion
  // treats the earlier axis as the outer loop.
  entry.grid.emplace_back("edges", std::vector<Json>{Json(std::int64_t(16)),
                                                     Json(std::int64_t(24))});
  entry.grid.emplace_back("restarts", std::vector<Json>{Json(std::int64_t(8)),
                                                        Json(std::int64_t(12))});
  plan.entries.push_back(entry);

  const std::vector<CampaignCell> cells = expand_plan(plan);
  ASSERT_EQ(cells.size(), 8u);  // 2 edges x 2 restarts x 2 seeds

  std::vector<std::tuple<std::int64_t, std::int64_t, std::uint64_t>> order;
  for (const CampaignCell& cell : cells) {
    order.emplace_back(cell.spec.at("edges").as_integer(),
                       cell.spec.at("restarts").as_integer(), cell.seed);
  }
  const std::vector<std::tuple<std::int64_t, std::int64_t, std::uint64_t>>
      expected = {{16, 8, 1},  {16, 8, 2},  {16, 12, 1}, {16, 12, 2},
                  {24, 8, 1},  {24, 8, 2},  {24, 12, 1}, {24, 12, 2}};
  EXPECT_EQ(order, expected);

  // Every cell is canonical and self-addressed.
  for (const CampaignCell& cell : cells) {
    CellIdentity identity{cell.experiment, cell.schema, cell.spec, cell.seed,
                          cell.device};
    EXPECT_EQ(content_key(identity), cell.key);
  }
}

TEST(CampaignPlanFormat, SpecOverlayAndDuplicateCellCollapse) {
  CampaignPlan plan;
  plan.name = "overlay";
  plan.seeds = {kSeed};
  PlanEntry overlay;
  overlay.experiment = "restart";
  overlay.spec = Json::object();
  overlay.spec.set("edges", Json(std::int64_t(24)));
  plan.entries.push_back(overlay);
  // Second entry expands to the same cell — must collapse to one.
  PlanEntry duplicate;
  duplicate.experiment = "restart";
  duplicate.grid.emplace_back("edges",
                              std::vector<Json>{Json(std::int64_t(24))});
  plan.entries.push_back(duplicate);

  const std::vector<CampaignCell> cells = expand_plan(plan);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].spec.at("edges").as_integer(), 24);
  // Non-overlaid keys keep the default.
  EXPECT_EQ(cells[0].spec.at("restarts").as_integer(), 8);
}

TEST(CampaignPlanFormat, ExpansionErrorsAreActionable) {
  CampaignPlan unknown_experiment = tiny_restart_plan();
  unknown_experiment.entries[0].experiment = "no_such_experiment";
  EXPECT_THROW(expand_plan(unknown_experiment), Error);

  CampaignPlan unknown_axis = tiny_restart_plan();
  unknown_axis.entries[0].grid.emplace_back(
      "not_a_spec_key", std::vector<Json>{Json(std::int64_t(1))});
  EXPECT_THROW(expand_plan(unknown_axis), Error);

  CampaignPlan invalid_value = tiny_restart_plan();
  invalid_value.entries[0].grid[0].second = {Json(std::int64_t(4))};  // < 8
  EXPECT_THROW(expand_plan(invalid_value), Error);
}

// --- store -------------------------------------------------------------------

TEST(CampaignStore, PutLoadRoundTripAndIndexFixpoint) {
  TempDir tmp("store");
  ResultStore store(tmp.str());

  CampaignPlan plan = tiny_restart_plan();
  const CampaignRunOptions options;
  const CampaignReport report = run_campaign(plan, store, options);
  EXPECT_EQ(report.planned, 3u);
  EXPECT_EQ(report.executed, 3u);
  EXPECT_TRUE(report.complete());

  const std::vector<CampaignCell> cells = expand_plan(plan);
  for (const CampaignCell& cell : cells) {
    const std::optional<CellRecord> record = store.load(cell.key);
    ASSERT_TRUE(record.has_value()) << cell.key;
    EXPECT_EQ(record->experiment, "restart");
    EXPECT_EQ(record->seed, kSeed);
    EXPECT_EQ(record->device, kDevice);
    EXPECT_EQ(canonical_dump(record->spec), canonical_dump(cell.spec));
    // Normalization: machine-varying fields are zeroed in storage...
    EXPECT_EQ(record->manifest.jobs, 0u);
    EXPECT_EQ(record->manifest.wall_ms, 0.0);
    EXPECT_EQ(record->manifest.cpu_ms, 0.0);
    EXPECT_TRUE(record->manifest.metrics.phases.empty());
    EXPECT_TRUE(record->manifest.telemetry.empty());
    // ...while the deterministic simulation counters are kept.
    EXPECT_GT(record->manifest.metrics.counter(
                  sim::metrics::Counter::events_fired),
              0u);
    EXPECT_EQ(record->manifest.seed, cell.seed);
  }

  // index.json: parse -> dump is a fixpoint and lists exactly the cells.
  const std::optional<CampaignIndex> index = store.read_index();
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(index->cells.size(), 3u);
  const std::string index_bytes = read_file(store.index_path());
  const CampaignIndex reparsed =
      CampaignIndex::from_json(Json::parse(index_bytes));
  EXPECT_EQ(reparsed.to_json().dump(2) + "\n", index_bytes);
  for (std::size_t i = 1; i < index->cells.size(); ++i) {
    EXPECT_LT(index->cells[i - 1].key, index->cells[i].key);
  }
}

TEST(CampaignStore, TornWritesLoadAsMissing) {
  TempDir tmp("torn");
  ResultStore store(tmp.str());
  CampaignPlan plan = tiny_restart_plan();
  run_campaign(plan, store, {});

  const std::vector<CampaignCell> cells = expand_plan(plan);
  const std::string victim = cells[0].key;
  const std::string intact_bytes = read_file(store.cell_path(victim));

  // Truncate mid-record: the classic torn write after power loss.
  {
    std::ofstream out(store.cell_path(victim),
                      std::ios::binary | std::ios::trunc);
    out << intact_bytes.substr(0, intact_bytes.size() / 2);
  }
  EXPECT_FALSE(store.load(victim).has_value());
  EXPECT_FALSE(store.has_valid(victim));

  // A record whose stored key does not hash its own identity is equally
  // torn (e.g. a hand-edited seed): reject, do not serve stale science.
  Json tampered = Json::parse(intact_bytes);
  tampered.set("seed", Json(std::int64_t(kSeed + 1)));
  {
    std::ofstream out(store.cell_path(victim),
                      std::ios::binary | std::ios::trunc);
    out << tampered.dump(2) << "\n";
  }
  EXPECT_FALSE(store.has_valid(victim));

  // Re-running the campaign heals the store back to the original bytes.
  const CampaignReport heal = run_campaign(plan, store, {});
  EXPECT_EQ(heal.cached, 2u);
  EXPECT_EQ(heal.executed, 1u);
  EXPECT_EQ(read_file(store.cell_path(victim)), intact_bytes);
}

TEST(CampaignStore, UnsortedIndexIsRejected) {
  Json index = Json::object();
  index.set("schema", std::string("ringent.campaign/1"));
  Json cells = Json::array();
  for (const char lead : {'b', 'a'}) {  // wrong order
    Json cell = Json::object();
    cell.set("key", std::string(64, lead));
    cell.set("experiment", std::string("restart"));
    cell.set("seed", Json(std::int64_t(1)));
    cells.push_back(cell);
  }
  index.set("cells", cells);
  EXPECT_THROW(CampaignIndex::from_json(index), Error);
}

// --- resume / sharding bit-identity ------------------------------------------

TEST(CampaignResume, InterruptedRunResumesBitIdentical) {
  CampaignPlan plan = tiny_restart_plan();

  // Reference: one uninterrupted run.
  TempDir ref_dir("resume-ref");
  ResultStore ref_store(ref_dir.str());
  const CampaignReport ref = run_campaign(plan, ref_store, {});
  EXPECT_EQ(ref.executed, 3u);

  // Interrupted: stop after one cell (deterministic stand-in for SIGKILL
  // between atomic writes), then resume.
  TempDir cut_dir("resume-cut");
  ResultStore cut_store(cut_dir.str());
  CampaignRunOptions first;
  first.max_cells = 1;
  const CampaignReport interrupted = run_campaign(plan, cut_store, first);
  EXPECT_EQ(interrupted.executed, 1u);
  EXPECT_EQ(interrupted.remaining, 2u);
  EXPECT_FALSE(interrupted.complete());

  const CampaignReport resumed = run_campaign(plan, cut_store, {});
  EXPECT_EQ(resumed.cached, 1u)
      << "resume must not re-execute the completed cell";
  EXPECT_EQ(resumed.executed, 2u);
  EXPECT_TRUE(resumed.complete());

  EXPECT_EQ(dir_contents(cut_dir.path), dir_contents(ref_dir.path))
      << "resumed store differs from an uninterrupted run";

  // A third pass is a pure cache hit.
  const CampaignReport warm = run_campaign(plan, cut_store, {});
  EXPECT_EQ(warm.cached, 3u);
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(dir_contents(cut_dir.path), dir_contents(ref_dir.path));
}

TEST(CampaignResume, ShardedRunsComposeToTheSameStore) {
  CampaignPlan plan = tiny_restart_plan();

  TempDir ref_dir("shard-ref");
  ResultStore ref_store(ref_dir.str());
  run_campaign(plan, ref_store, {});

  TempDir shard_dir("shard");
  ResultStore shard_store(shard_dir.str());
  CampaignRunOptions shard0;
  shard0.shard_index = 0;
  shard0.shard_count = 2;
  CampaignRunOptions shard1;
  shard1.shard_index = 1;
  shard1.shard_count = 2;
  const CampaignReport r0 = run_campaign(plan, shard_store, shard0);
  const CampaignReport r1 = run_campaign(plan, shard_store, shard1);
  EXPECT_EQ(r0.in_shard + r1.in_shard, 3u);
  EXPECT_EQ(r0.executed + r1.executed, 3u);

  EXPECT_EQ(dir_contents(shard_dir.path), dir_contents(ref_dir.path))
      << "sharded store differs from the single-process run";

  CampaignRunOptions bad_shard;
  bad_shard.shard_index = 2;
  bad_shard.shard_count = 2;
  EXPECT_THROW(run_campaign(plan, shard_store, bad_shard), Error);
}

// --- status / verify ---------------------------------------------------------

TEST(CampaignVerify, StatusAndVerifyReflectTheStore) {
  CampaignPlan plan = tiny_restart_plan();
  TempDir tmp("verify");
  ResultStore store(tmp.str());

  CampaignReport cold = campaign_status(plan, store);
  EXPECT_EQ(cold.planned, 3u);
  EXPECT_EQ(cold.cached, 0u);
  EXPECT_EQ(cold.remaining, 3u);

  run_campaign(plan, store, {});
  CampaignReport warm = campaign_status(plan, store);
  EXPECT_EQ(warm.cached, 3u);
  EXPECT_EQ(warm.remaining, 0u);

  VerifyReport verified = verify_campaign(plan, store);
  EXPECT_TRUE(verified.ok());
  EXPECT_EQ(verified.planned, 3u);
  EXPECT_EQ(verified.valid, 3u);
  EXPECT_EQ(verified.missing, 0u);
  EXPECT_EQ(verified.torn, 0u);
  EXPECT_EQ(verified.orphans, 0u);
  EXPECT_TRUE(verified.index_consistent);

  // Tear one cell: verify must report it (and not as merely missing).
  const std::vector<CampaignCell> cells = expand_plan(plan);
  {
    std::ofstream out(store.cell_path(cells[1].key),
                      std::ios::binary | std::ios::trunc);
    out << "{ not json";
  }
  VerifyReport damaged = verify_campaign(plan, store);
  EXPECT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.valid, 2u);
  EXPECT_EQ(damaged.torn, 1u);
  EXPECT_EQ(damaged.missing, 0u);

  // Remove another: that one is missing, not torn.
  fs::remove(store.cell_path(cells[2].key));
  VerifyReport sparse = verify_campaign(plan, store);
  EXPECT_EQ(sparse.valid, 1u);
  EXPECT_EQ(sparse.torn, 1u);
  EXPECT_EQ(sparse.missing, 1u);

  // A valid record the plan does not claim is an orphan (e.g. the plan
  // shrank after a sweep): counted, but not a hard failure by itself.
  CampaignPlan shrunk = plan;
  shrunk.entries[0].grid[0].second = {Json(std::int64_t(8))};
  run_campaign(plan, store, {});  // heal the full plan first
  VerifyReport orphaned = verify_campaign(shrunk, store);
  EXPECT_EQ(orphaned.planned, 1u);
  EXPECT_EQ(orphaned.valid, 1u);
  EXPECT_EQ(orphaned.orphans, 2u);
}

// --- registry surface --------------------------------------------------------

TEST(CampaignRegistry, RunSpecHonoursTheDocumentNotTheDefaults) {
  const core::ExperimentDescriptor* entry = core::find_experiment("restart");
  ASSERT_NE(entry, nullptr);
  ASSERT_TRUE(static_cast<bool>(entry->run_spec));

  Json spec = entry->canonicalize(entry->default_spec());
  spec.set("restarts", Json(std::int64_t(9)));

  core::ExperimentOptions options;
  options.seed = kSeed;
  const core::RunManifest manifest =
      entry->run_spec(spec, core::cyclone_iii(), options);
  EXPECT_EQ(manifest.experiment, "restart");
  EXPECT_EQ(manifest.seed, kSeed);
  // The restart driver reports restarts + 1 tasks, so an overridden count
  // proves the document (not the committed default) reached the driver.
  EXPECT_EQ(manifest.tasks, 10u);

  // Malformed documents fail before any simulation runs.
  Json junk = Json::object();
  junk.set("restarts", std::string("many"));
  EXPECT_THROW(entry->run_spec(junk, core::cyclone_iii(), options), Error);
}

TEST(CampaignRegistry, FindDeviceProfileIsStrict) {
  EXPECT_EQ(&core::find_device_profile("cyclone-iii"), &core::cyclone_iii());
  EXPECT_THROW(core::find_device_profile("stratix-x"), Error);
}
