// Unit tests for sim/: event kernel, probes, VCD writer.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/require.hpp"
#include "sim/kernel.hpp"
#include "sim/probe.hpp"
#include "sim/vcd.hpp"

using namespace ringent;
using namespace ringent::literals;
using sim::Kernel;
using sim::SignalTrace;

namespace {

/// Records (fire time, tag) pairs; optionally reschedules itself.
class Recorder final : public sim::Process {
 public:
  void fire(Kernel& kernel, std::uint32_t tag) override {
    log.emplace_back(kernel.now(), tag);
  }
  std::vector<std::pair<Time, std::uint32_t>> log;
};

}  // namespace

TEST(Kernel, FiresInTimeOrder) {
  Kernel kernel;
  Recorder rec;
  const auto id = kernel.add_process(&rec);
  kernel.schedule_in(30_ps, id, 3);
  kernel.schedule_in(10_ps, id, 1);
  kernel.schedule_in(20_ps, id, 2);
  kernel.run_until(1_ns);
  ASSERT_EQ(rec.log.size(), 3u);
  EXPECT_EQ(rec.log[0], std::make_pair(10_ps, 1u));
  EXPECT_EQ(rec.log[1], std::make_pair(20_ps, 2u));
  EXPECT_EQ(rec.log[2], std::make_pair(30_ps, 3u));
  EXPECT_EQ(kernel.events_fired(), 3u);
}

TEST(Kernel, TieBreaksInScheduleOrder) {
  Kernel kernel;
  Recorder rec;
  const auto id = kernel.add_process(&rec);
  for (std::uint32_t tag = 0; tag < 50; ++tag) {
    kernel.schedule_at(5_ps, id, tag);
  }
  kernel.run_until(5_ps);
  ASSERT_EQ(rec.log.size(), 50u);
  for (std::uint32_t tag = 0; tag < 50; ++tag) {
    EXPECT_EQ(rec.log[tag].second, tag);
  }
}

TEST(Kernel, RunUntilAdvancesClockToHorizon) {
  Kernel kernel;
  Recorder rec;
  const auto id = kernel.add_process(&rec);
  kernel.schedule_in(100_ps, id, 0);
  EXPECT_EQ(kernel.run_until(50_ps), 0u);
  EXPECT_EQ(kernel.now(), 50_ps);
  EXPECT_FALSE(kernel.idle());
  EXPECT_EQ(kernel.run_until(100_ps), 1u);  // events at the horizon fire
  EXPECT_TRUE(kernel.idle());
}

TEST(Kernel, RunEventsBounded) {
  Kernel kernel;
  Recorder rec;
  const auto id = kernel.add_process(&rec);
  for (int i = 1; i <= 10; ++i) kernel.schedule_in(Time::from_ps(i), id, i);
  EXPECT_EQ(kernel.run_events(4), 4u);
  EXPECT_EQ(rec.log.size(), 4u);
  EXPECT_EQ(kernel.run_events(100), 6u);
}

TEST(Kernel, ZeroDelaySelfScheduleRunsAfterPeers) {
  // A process that schedules a zero-delay event must not starve peers at the
  // same timestamp that were scheduled earlier.
  class Chainer final : public sim::Process {
   public:
    explicit Chainer(std::vector<int>& order) : order_(order) {}
    void fire(Kernel& kernel, std::uint32_t tag) override {
      order_.push_back(static_cast<int>(tag));
      if (tag == 0) kernel.schedule_in(0_fs, self, 99);
    }
    sim::NodeId self = sim::invalid_node;

   private:
    std::vector<int>& order_;
  };
  std::vector<int> order;
  Kernel kernel;
  Chainer chain(order);
  chain.self = kernel.add_process(&chain);
  kernel.schedule_at(1_ps, chain.self, 0);
  kernel.schedule_at(1_ps, chain.self, 1);
  kernel.run_until(2_ps);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);   // pre-existing same-time event first
  EXPECT_EQ(order[2], 99);  // zero-delay chained event after
}

TEST(Kernel, PreconditionsThrow) {
  Kernel kernel;
  Recorder rec;
  const auto id = kernel.add_process(&rec);
  EXPECT_THROW(kernel.add_process(nullptr), PreconditionError);
  EXPECT_THROW(kernel.schedule_in(-1_ps, id), PreconditionError);
  EXPECT_THROW(kernel.schedule_in(1_ps, id + 1), PreconditionError);
  kernel.schedule_in(10_ps, id);
  kernel.run_until(20_ps);
  EXPECT_THROW(kernel.schedule_at(5_ps, id), PreconditionError);
  EXPECT_THROW(kernel.run_until(10_ps), PreconditionError);
}

TEST(Kernel, ResetTimeKeepsProcesses) {
  Kernel kernel;
  Recorder rec;
  const auto id = kernel.add_process(&rec);
  kernel.schedule_in(10_ps, id, 0);
  kernel.run_until(10_ps);
  kernel.reset_time();
  EXPECT_EQ(kernel.now(), Time::zero());
  EXPECT_TRUE(kernel.idle());
  kernel.schedule_in(5_ps, id, 7);  // same node id still valid
  kernel.run_until(5_ps);
  EXPECT_EQ(rec.log.back().second, 7u);
}

// --- SignalTrace ------------------------------------------------------------

TEST(SignalTrace, RecordsAndSplitsEdges) {
  SignalTrace trace("sig");
  trace.record(10_ps, true);
  trace.record(20_ps, false);
  trace.record(30_ps, true);
  trace.record(45_ps, false);
  EXPECT_EQ(trace.transitions().size(), 4u);
  EXPECT_EQ(trace.rising_edges(), (std::vector<Time>{10_ps, 30_ps}));
  EXPECT_EQ(trace.falling_edges(), (std::vector<Time>{20_ps, 45_ps}));
  EXPECT_EQ(trace.total_seen(), 4u);
}

TEST(SignalTrace, WarmupSkipsEarlyTransitions) {
  SignalTrace trace;
  trace.set_record_from(15_ps);
  trace.record(10_ps, true);
  trace.record(20_ps, false);
  EXPECT_EQ(trace.transitions().size(), 1u);
  EXPECT_EQ(trace.total_seen(), 2u);
}

TEST(SignalTrace, MaxRecordsCap) {
  SignalTrace trace;
  trace.set_max_records(3);
  for (int i = 1; i <= 10; ++i) {
    trace.record(Time::from_ps(i), i % 2 == 1);
  }
  EXPECT_EQ(trace.transitions().size(), 3u);
  EXPECT_TRUE(trace.full());
  EXPECT_EQ(trace.total_seen(), 10u);
}

TEST(SignalTrace, RejectsOutOfOrderTimestamps) {
  SignalTrace trace;
  trace.record(10_ps, true);
  EXPECT_THROW(trace.record(5_ps, false), PreconditionError);
  trace.record(10_ps, false);  // equal timestamps are allowed
}

TEST(SignalTrace, ClearResets) {
  SignalTrace trace;
  trace.record(10_ps, true);
  trace.clear();
  EXPECT_TRUE(trace.transitions().empty());
  EXPECT_EQ(trace.total_seen(), 0u);
  trace.record(5_ps, true);  // earlier timestamps fine after clear
}

TEST(EdgeIntervals, Differences) {
  EXPECT_TRUE(sim::edge_intervals({}).empty());
  EXPECT_TRUE(sim::edge_intervals({10_ps}).empty());
  EXPECT_EQ(sim::edge_intervals({10_ps, 30_ps, 60_ps}),
            (std::vector<Time>{20_ps, 30_ps}));
}

// --- VCD --------------------------------------------------------------------

TEST(Vcd, WritesWellFormedDump) {
  SignalTrace a("clk"), b("data");
  a.record(0_fs, true);
  a.record(500_fs, false);
  b.record(250_fs, true);
  sim::VcdWriter vcd("testbench");
  vcd.add_signal(a);
  vcd.add_signal(b);
  std::ostringstream os;
  vcd.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1fs $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module testbench $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 \" data $end"), std::string::npos);
  EXPECT_NE(out.find("#0\n1!"), std::string::npos);
  EXPECT_NE(out.find("#250\n1\""), std::string::npos);
  EXPECT_NE(out.find("#500\n0!"), std::string::npos);
  // Initial dumpvars marks both signals unknown.
  EXPECT_NE(out.find("x!"), std::string::npos);
  EXPECT_NE(out.find("x\""), std::string::npos);
}

TEST(Vcd, MergesSimultaneousChangesUnderOneTimestamp) {
  SignalTrace a("a"), b("b");
  a.record(100_fs, true);
  b.record(100_fs, true);
  sim::VcdWriter vcd;
  vcd.add_signal(a);
  vcd.add_signal(b);
  std::ostringstream os;
  vcd.write(os);
  const std::string out = os.str();
  // Only one "#100" header for both changes.
  const auto first = out.find("#100");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find("#100", first + 1), std::string::npos);
}
