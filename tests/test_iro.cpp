// Tests for the timed IRO model, including the emergent sqrt(2k) jitter
// accumulation law (paper Eq. 4).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "analysis/periods.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "fpga/supply.hpp"
#include "noise/jitter.hpp"
#include "noise/modulation.hpp"
#include "ring/iro.hpp"
#include "sim/kernel.hpp"

using namespace ringent;
using namespace ringent::literals;
using ring::Iro;
using ring::IroConfig;

namespace {

std::vector<std::unique_ptr<noise::NoiseSource>> gaussian_noise(
    std::size_t stages, double sigma_ps, std::uint64_t seed) {
  std::vector<std::unique_ptr<noise::NoiseSource>> out;
  for (std::size_t i = 0; i < stages; ++i) {
    out.push_back(std::make_unique<noise::GaussianNoise>(
        sigma_ps, derive_seed(seed, "stage", i)));
  }
  return out;
}

}  // namespace

TEST(Iro, NoiseFreePeriodIsTwoLaps) {
  sim::Kernel kernel;
  IroConfig config;
  config.stages = 5;
  config.lut_delay = 250_ps;
  config.routing_per_hop = 10_ps;
  Iro iro(kernel, config, {});
  iro.start();
  kernel.run_until(Time::from_ns(200.0));

  EXPECT_EQ(iro.nominal_period(), 2600_ps);  // 2 * 5 * 260 ps
  const auto periods = analysis::periods_ps(iro.output());
  ASSERT_GE(periods.size(), 10u);
  for (double p : periods) EXPECT_NEAR(p, 2600.0, 1e-6);
}

TEST(Iro, StageFactorsStretchThePeriod) {
  sim::Kernel kernel;
  IroConfig config;
  config.stages = 3;
  config.lut_delay = 100_ps;
  config.stage_factors = {1.0, 2.0, 3.0};
  Iro iro(kernel, config, {});
  iro.start();
  kernel.run_until(Time::from_ns(50.0));
  const auto periods = analysis::periods_ps(iro.output());
  ASSERT_GE(periods.size(), 3u);
  EXPECT_NEAR(periods.front(), 2.0 * (100.0 + 200.0 + 300.0), 1e-6);
  EXPECT_EQ(iro.nominal_period(), Time::from_ps(1200.0));
}

TEST(Iro, VoltageLawScalesFrequencyLinearly) {
  const fpga::VoltageLaws laws{fpga::DelayVoltageLaw(0.385, 1.2),
                               fpga::DelayVoltageLaw(-0.40, 1.2),
                               fpga::DelayVoltageLaw(0.385, 1.2)};
  const auto period_at = [&](double volts) {
    sim::Kernel kernel;
    fpga::Supply supply(1.2);
    supply.set_level(volts);
    IroConfig config;
    config.stages = 5;
    config.lut_delay = 250_ps;
    config.supply = &supply;
    config.laws = &laws;
    Iro iro(kernel, config, {});
    iro.start();
    kernel.run_until(Time::from_ns(100.0));
    return analysis::periods_ps(iro.output()).back();
  };
  const double f10 = 1.0 / period_at(1.0);
  const double f12 = 1.0 / period_at(1.2);
  const double f14 = 1.0 / period_at(1.4);
  // Femtosecond grid rounding bounds the residual nonlinearity.
  EXPECT_NEAR((f14 - f12) / (f12 - f10), 1.0, 1e-5);
  EXPECT_NEAR((f14 - f10) / f12, 0.4 / (1.2 - 0.385), 1e-5);
}

TEST(Iro, DeterministicModulationShiftsPeriods) {
  // A static +20 ps per hop from t=0 lengthens the period by 2k * 20 ps.
  noise::StepDelayModulation mod(20.0, 0_fs);
  sim::Kernel kernel;
  IroConfig config;
  config.stages = 4;
  config.lut_delay = 200_ps;
  config.modulation = &mod;
  Iro iro(kernel, config, {});
  iro.start();
  kernel.run_until(Time::from_ns(60.0));
  const auto periods = analysis::periods_ps(iro.output());
  ASSERT_FALSE(periods.empty());
  EXPECT_NEAR(periods.back(), 2.0 * 4.0 * 220.0, 1e-6);
}

TEST(Iro, PeriodsAreIndependentGaussian) {
  sim::Kernel kernel;
  IroConfig config;
  config.stages = 5;
  config.lut_delay = 250_ps;
  Iro iro(kernel, config, gaussian_noise(5, 2.0, 77));
  iro.start();
  kernel.run_until(Time::from_us(60.0));

  const auto periods = analysis::periods_ps(iro.output());
  ASSERT_GE(periods.size(), 20000u);
  const SampleStats stats = describe(periods);
  EXPECT_NEAR(stats.mean(), 2500.0, 1.0);
  // Eq. 4: sigma_p = sqrt(2k) sigma_g = sqrt(10) * 2 = 6.32 ps.
  EXPECT_NEAR(stats.stddev(), 6.32, 0.35);
  EXPECT_NEAR(stats.skewness(), 0.0, 0.1);
  EXPECT_NEAR(stats.excess_kurtosis(), 0.0, 0.2);
}

// Parameterized over ring length: the sqrt(2k) accumulation law must emerge
// from the event simulation (it is never encoded).
class IroJitterLaw : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IroJitterLaw, MatchesSqrt2kSigmaG) {
  const std::size_t stages = GetParam();
  const double sigma_g = 2.0;
  sim::Kernel kernel;
  IroConfig config;
  config.stages = stages;
  config.lut_delay = 250_ps;
  Iro iro(kernel, config, gaussian_noise(stages, sigma_g, 1000 + stages));
  iro.start();
  const std::size_t want = 12000;
  kernel.run_until(iro.nominal_period() * static_cast<std::int64_t>(want + 4));

  const auto periods = analysis::periods_ps(iro.output());
  ASSERT_GE(periods.size(), want);
  const double expected =
      std::sqrt(2.0 * static_cast<double>(stages)) * sigma_g;
  EXPECT_NEAR(describe(periods).stddev() / expected, 1.0, 0.06)
      << "stages=" << stages;
}

INSTANTIATE_TEST_SUITE_P(StageSweep, IroJitterLaw,
                         ::testing::Values(3, 5, 9, 15, 25, 40, 80));

TEST(Iro, CausalityUnderHugeNoise) {
  // Noise sigma comparable to the stage delay: edges must stay monotone.
  sim::Kernel kernel;
  IroConfig config;
  config.stages = 3;
  config.lut_delay = 50_ps;
  Iro iro(kernel, config, gaussian_noise(3, 40.0, 5));
  iro.start();
  kernel.run_until(Time::from_ns(300.0));
  const auto edges = iro.output().rising_edges();
  ASSERT_GE(edges.size(), 100u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GT(edges[i], edges[i - 1]);
  }
}

TEST(Iro, Preconditions) {
  sim::Kernel kernel;
  IroConfig config;
  config.stages = 0;
  EXPECT_THROW(Iro(kernel, config, {}), PreconditionError);

  config.stages = 4;
  config.stage_factors = {1.0, 1.0};  // wrong size
  EXPECT_THROW(Iro(kernel, config, {}), PreconditionError);

  config.stage_factors.clear();
  config.lut_delay = 0_ps;
  EXPECT_THROW(Iro(kernel, config, {}), PreconditionError);

  config.lut_delay = 100_ps;
  config.supply = nullptr;
  IroConfig with_laws = config;
  static const fpga::VoltageLaws laws{fpga::DelayVoltageLaw(0.385, 1.2),
                                      fpga::DelayVoltageLaw(-0.40, 1.2),
                                      fpga::DelayVoltageLaw(0.385, 1.2)};
  with_laws.laws = &laws;  // laws without supply
  EXPECT_THROW(Iro(kernel, with_laws, {}), PreconditionError);

  Iro ok(kernel, config, {});
  ok.start();
  EXPECT_THROW(ok.start(), PreconditionError);  // double start
}
