// Tests for the untimed STR semantics (paper Sec. II-B/C), including
// exhaustive state-space properties on small rings.
#include <gtest/gtest.h>

#include <set>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "ring/str_logic.hpp"

using namespace ringent;
using namespace ringent::ring;

namespace {

RingState state_from_bits(std::initializer_list<int> bits) {
  RingState s;
  for (int b : bits) s.push_back(b != 0);
  return s;
}

}  // namespace

TEST(StrLogic, TokenAndBubbleDetection) {
  // C = 1,1,0,0: tokens where C_i != C_{i-1} (cyclic).
  const RingState s = state_from_bits({1, 1, 0, 0});
  EXPECT_TRUE(has_token(s, 0));   // C0=1 vs C3=0
  EXPECT_FALSE(has_token(s, 1));  // C1=1 vs C0=1
  EXPECT_TRUE(has_token(s, 2));   // C2=0 vs C1=1
  EXPECT_FALSE(has_token(s, 3));
  EXPECT_EQ(token_count(s), 2u);
  EXPECT_EQ(bubble_count(s), 2u);
  EXPECT_EQ(token_string(s), "T.T.");
}

TEST(StrLogic, EnabledNeedsTokenHereAndBubbleAhead) {
  const RingState s = state_from_bits({1, 1, 0, 0});
  // Token at 0, stage 1 has bubble -> enabled. Token at 2, stage 3 bubble ->
  // enabled.
  EXPECT_TRUE(stage_enabled(s, 0));
  EXPECT_FALSE(stage_enabled(s, 1));
  EXPECT_TRUE(stage_enabled(s, 2));
  EXPECT_FALSE(stage_enabled(s, 3));
  EXPECT_EQ(enabled_stages(s), (std::vector<std::size_t>{0, 2}));
}

TEST(StrLogic, FireMovesTokenForwardAndBubbleBackward) {
  const RingState s = state_from_bits({1, 1, 0, 0});
  const RingState next = fire_stage(s, 0);
  EXPECT_EQ(token_string(next), ".TT.");  // token moved 0 -> 1
  EXPECT_EQ(token_count(next), 2u);
  EXPECT_THROW(fire_stage(s, 1), PreconditionError);  // disabled stage
}

TEST(StrLogic, AdjacentStagesNeverBothEnabled) {
  // Property over all states of rings of length 3..10.
  for (std::size_t n = 3; n <= 10; ++n) {
    for (std::size_t code = 0; code < (std::size_t{1} << n); ++code) {
      RingState s(n);
      for (std::size_t i = 0; i < n; ++i) s[i] = (code >> i) & 1;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t next_i = (i + 1) % n;
        EXPECT_FALSE(stage_enabled(s, i) && stage_enabled(s, next_i))
            << "n=" << n << " code=" << code << " i=" << i;
      }
    }
  }
}

TEST(StrLogic, TokenCountIsInvariantUnderAnyFiring) {
  // Exhaustive over all states of length 8: every enabled firing preserves
  // the token count (conservation law behind the NT/NB design rule).
  const std::size_t n = 8;
  for (std::size_t code = 0; code < (std::size_t{1} << n); ++code) {
    RingState s(n);
    for (std::size_t i = 0; i < n; ++i) s[i] = (code >> i) & 1;
    const std::size_t tokens = token_count(s);
    for (std::size_t i = 0; i < n; ++i) {
      if (stage_enabled(s, i)) {
        EXPECT_EQ(token_count(fire_stage(s, i)), tokens);
      }
    }
  }
}

TEST(StrLogic, TokenCountIsAlwaysEven) {
  // Cyclic boolean sequences have an even number of sign changes.
  const std::size_t n = 9;
  for (std::size_t code = 0; code < (std::size_t{1} << n); ++code) {
    RingState s(n);
    for (std::size_t i = 0; i < n; ++i) s[i] = (code >> i) & 1;
    EXPECT_EQ(token_count(s) % 2, 0u);
  }
}

TEST(StrLogic, LivenessForValidPatterns) {
  // Any state with >= 2 tokens and >= 1 bubble has at least one enabled
  // stage (no deadlock), exhaustively for n <= 12.
  for (std::size_t n = 3; n <= 12; ++n) {
    for (std::size_t code = 0; code < (std::size_t{1} << n); ++code) {
      RingState s(n);
      for (std::size_t i = 0; i < n; ++i) s[i] = (code >> i) & 1;
      const std::size_t tokens = token_count(s);
      if (tokens >= 2 && tokens < n) {
        EXPECT_FALSE(enabled_stages(s).empty()) << "n=" << n << " code=" << code;
      }
    }
  }
}

TEST(StrLogic, ConstantStatesAreDead) {
  const RingState zeros(6, false);
  const RingState ones(6, true);
  EXPECT_TRUE(enabled_stages(zeros).empty());
  EXPECT_TRUE(enabled_stages(ones).empty());
}

TEST(StrLogic, StepAllPreservesTokensAndAdvancesState) {
  RingState s = make_initial_state(12, 4, TokenPlacement::evenly_spread);
  for (int step = 0; step < 50; ++step) {
    const RingState next = step_all(s);
    EXPECT_EQ(token_count(next), 4u);
    EXPECT_NE(next, s);  // a live ring always moves
    s = next;
  }
}

TEST(StrLogic, StepAllIsPeriodicWithPeriod2LOverNT) {
  // In the synchronous abstraction each step advances every token one stage
  // when unobstructed; an evenly spread pattern recurs after L/ gcd steps.
  const RingState s0 = make_initial_state(8, 4, TokenPlacement::evenly_spread);
  RingState s = s0;
  std::size_t period = 0;
  for (std::size_t step = 1; step <= 64; ++step) {
    s = step_all(s);
    if (s == s0) {
      period = step;
      break;
    }
  }
  ASSERT_GT(period, 0u) << "state never recurred";
  // Signal period of any stage output corresponds to 2L/NT firings = 4 here.
  EXPECT_EQ(period, 4u);
}

TEST(StrLogic, CanOscillateRules) {
  EXPECT_TRUE(can_oscillate(3, 2));
  EXPECT_TRUE(can_oscillate(96, 48));
  EXPECT_FALSE(can_oscillate(2, 2));   // too short
  EXPECT_FALSE(can_oscillate(8, 3));   // odd tokens
  EXPECT_FALSE(can_oscillate(8, 0));   // no tokens
  EXPECT_FALSE(can_oscillate(8, 8));   // no bubbles
  EXPECT_FALSE(can_oscillate(4, 6));   // more tokens than stages
}

TEST(StrLogic, MakeInitialStateEvenlySpread) {
  for (std::size_t stages : {4u, 8u, 16u, 32u, 96u}) {
    for (std::size_t tokens = 2; tokens < stages; tokens += 2) {
      const RingState s =
          make_initial_state(stages, tokens, TokenPlacement::evenly_spread);
      ASSERT_EQ(s.size(), stages);
      EXPECT_EQ(token_count(s), tokens)
          << "stages=" << stages << " tokens=" << tokens;
    }
  }
}

TEST(StrLogic, MakeInitialStateClusteredPutsTokensTogether) {
  const RingState s = make_initial_state(12, 4, TokenPlacement::clustered);
  EXPECT_EQ(token_count(s), 4u);
  EXPECT_EQ(token_string(s), "TTTT........");
}

TEST(StrLogic, MakeInitialStateRejectsInvalid) {
  EXPECT_THROW(make_initial_state(8, 3, TokenPlacement::evenly_spread),
               PreconditionError);
  EXPECT_THROW(make_initial_state(8, 8, TokenPlacement::evenly_spread),
               PreconditionError);
  EXPECT_THROW(make_initial_state(2, 2, TokenPlacement::evenly_spread),
               PreconditionError);
}

TEST(StrLogic, IndexBoundsChecked) {
  const RingState s = make_initial_state(6, 2, TokenPlacement::evenly_spread);
  EXPECT_THROW(has_token(s, 6), PreconditionError);
}

// Parameterized sweep: from ANY reachable configuration the synchronous
// dynamics keep the ring live and token-conserving.
class StrLogicSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(StrLogicSweep, RandomWalkConservesInvariants) {
  const auto [stages, tokens] = GetParam();
  Xoshiro256 rng(derive_seed(1234, "logic-sweep", stages * 100 + tokens));
  RingState s = make_initial_state(stages, tokens, TokenPlacement::clustered);
  for (int step = 0; step < 400; ++step) {
    const auto enabled = enabled_stages(s);
    ASSERT_FALSE(enabled.empty());
    // Fire one randomly chosen enabled stage (asynchronous semantics).
    s = fire_stage(s, enabled[rng.below(enabled.size())]);
    ASSERT_EQ(token_count(s), static_cast<std::size_t>(tokens));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallRings, StrLogicSweep,
    ::testing::Values(std::pair{3, 2}, std::pair{4, 2}, std::pair{5, 2},
                      std::pair{6, 4}, std::pair{8, 4}, std::pair{12, 6},
                      std::pair{16, 8}, std::pair{23, 12}, std::pair{32, 10},
                      std::pair{32, 20}, std::pair{48, 24}, std::pair{96, 48}));
