// Regression tests pinning the kernel hot-path optimizations bit-exact.
//
// The event-path rework (flat 4-ary heap, per-stage delay precompute, batched
// noise draws, prescaled Charlie arithmetic, rint-based Time rounding) hoists
// arithmetic out of the per-event path WITHOUT changing any computed value.
// Each test here compares an optimized path against a straight transcription
// of the original per-event arithmetic and requires femtosecond-exact (or
// bit-exact double) agreement — not tolerance-based closeness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "fpga/delay_model.hpp"
#include "fpga/op_cache.hpp"
#include "fpga/supply.hpp"
#include "noise/jitter.hpp"
#include "noise/modulation.hpp"
#include "ring/charlie.hpp"
#include "ring/iro.hpp"
#include "ring/str.hpp"
#include "sim/kernel.hpp"
#include "sim/metrics.hpp"

using namespace ringent;

namespace {

// --- reference: the original per-event IRO hop arithmetic -------------------
//
// A straight transcription of the pre-optimization Iro::hop_delay — every
// product formed per event, in the original association order — driven by an
// independent copy of the same noise streams. The IRO's single circulating
// event makes the whole simulation a scalar recurrence, so the reference
// needs no kernel: any arithmetic divergence cascades into different event
// times for the rest of the run.
struct ReferenceIro {
  const ring::IroConfig& config;
  std::vector<std::unique_ptr<noise::NoiseSource>> noise;

  Time hop_delay(std::size_t stage, Time now) {
    const double factor =
        config.stage_factors.empty() ? 1.0 : config.stage_factors[stage];
    double lut_scale = 1.0;
    double routing_scale = 1.0;
    if (config.supply != nullptr) {
      const fpga::OperatingPoint op = config.supply->operating_point_at(now);
      lut_scale = config.laws->lut.scale(op);
      routing_scale = config.laws->routing.scale(op);
    }
    const double routing_ps = config.routing_per_stage.empty()
                                  ? config.routing_per_hop.ps()
                                  : config.routing_per_stage[stage].ps();
    double delay_ps = config.lut_delay.ps() * factor * lut_scale +
                      routing_ps * factor * routing_scale;
    if (stage < noise.size()) {
      double noise_scale = 1.0;
      if (config.jitter_delay_exponent != 0.0) {
        noise_scale = std::pow(lut_scale, config.jitter_delay_exponent);
      }
      delay_ps += noise[stage]->sample_ps() * noise_scale;
    }
    if (config.modulation != nullptr) {
      delay_ps += config.modulation->offset_ps(now, stage);
    }
    return Time::from_ps(std::max(delay_ps, 1.0));
  }

  // Replays Iro::start + Iro::fire event-for-event: tag 0 is scheduled from
  // t = 0, tag k from the arrival of tag k-1, and the output toggles when
  // tag L-1 fires.
  std::vector<Time> rising_edges(Time t_end) {
    std::vector<Time> rising;
    const std::size_t stages = config.stages;
    bool out = false;
    std::uint32_t stage = 0;
    Time now = hop_delay(0, Time::zero());
    while (now <= t_end) {
      if (stage + 1 == stages) {
        out = !out;
        if (out) rising.push_back(now);
        stage = 0;
      } else {
        ++stage;
      }
      now += hop_delay(stage, now);
    }
    return rising;
  }
};

std::vector<std::unique_ptr<noise::NoiseSource>> gaussian_bank(
    std::size_t stages, double sigma_ps, std::uint64_t seed) {
  std::vector<std::unique_ptr<noise::NoiseSource>> bank;
  bank.reserve(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    bank.push_back(std::make_unique<noise::GaussianNoise>(
        sigma_ps, derive_seed(seed, "hot-path", i)));
  }
  return bank;
}

std::vector<Time> simulate_iro_edges(const ring::IroConfig& config,
                                     std::uint64_t noise_seed, Time t_end) {
  sim::Kernel kernel;
  ring::Iro iro(kernel, config,
                config.stages > 0 && noise_seed != 0
                    ? gaussian_bank(config.stages, 2.0, noise_seed)
                    : std::vector<std::unique_ptr<noise::NoiseSource>>{});
  iro.start();
  kernel.run_until_on(iro, t_end);
  return iro.output().rising_edges();
}

void expect_identical_edges(const ring::IroConfig& config,
                            std::uint64_t noise_seed, Time t_end) {
  const std::vector<Time> actual =
      simulate_iro_edges(config, noise_seed, t_end);
  ReferenceIro reference{
      config, noise_seed != 0
                  ? gaussian_bank(config.stages, 2.0, noise_seed)
                  : std::vector<std::unique_ptr<noise::NoiseSource>>{}};
  const std::vector<Time> expected = reference.rising_edges(t_end);
  ASSERT_EQ(actual.size(), expected.size());
  ASSERT_GT(actual.size(), 50u);  // the run actually exercised the path
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual[i].fs(), expected[i].fs()) << "edge " << i;
  }
}

fpga::VoltageLaws test_laws() {
  return fpga::VoltageLaws{fpga::DelayVoltageLaw(0.5, 1.2, 0.001),
                           fpga::DelayVoltageLaw(0.8, 1.2, 0.0005),
                           fpga::DelayVoltageLaw(0.65, 1.2, 0.0)};
}

}  // namespace

TEST(HotPath, IroFullyStaticMatchesReference) {
  ring::IroConfig config;
  config.stages = 5;
  config.lut_delay = Time::from_ps(247.3);
  config.routing_per_hop = Time::from_ps(31.7);
  config.stage_factors = {0.973, 1.012, 0.998, 1.041, 0.966};
  expect_identical_edges(config, /*noise_seed=*/0, Time::from_us(2.0));
}

TEST(HotPath, IroNoiseAndModulationMatchesReference) {
  // No supply: the unit voltage scales fold into the constructor precompute
  // and the noise draws go through the block sampler.
  noise::SineDelayModulation modulation(1.7, 3.0e6, 0.4);
  ring::IroConfig config;
  config.stages = 7;
  config.lut_delay = Time::from_ps(251.9);
  config.routing_per_stage = {
      Time::from_ps(12.0), Time::from_ps(45.5), Time::from_ps(9.25),
      Time::from_ps(30.1), Time::from_ps(22.2), Time::from_ps(18.8),
      Time::from_ps(27.6)};
  config.stage_factors = {1.03, 0.97, 1.005, 0.985, 1.02, 0.995, 1.01};
  config.jitter_delay_exponent = 0.6;  // pow(1,gamma)==1: still exact
  config.modulation = &modulation;
  expect_identical_edges(config, /*noise_seed=*/42, Time::from_us(2.0));
}

TEST(HotPath, IroTimeVaryingSupplyMatchesReference) {
  // The hardest case: a sinusoidally modulated supply makes the voltage
  // scales time-dependent (the scale cache refreshes per new timestamp), the
  // gamma coupling exercises the memoized pow, and per-stage factors and
  // routing exercise every precomputed product.
  fpga::Supply supply(1.2);
  supply.set_level(1.15);
  supply.set_modulation(fpga::Modulation::sine(0.05, 2.0e6));
  const fpga::VoltageLaws laws = test_laws();
  noise::SineDelayModulation modulation(1.1, 5.0e6);
  ring::IroConfig config;
  config.stages = 6;
  config.lut_delay = Time::from_ps(249.1);
  config.routing_per_hop = Time::from_ps(26.4);
  config.stage_factors = {0.98, 1.03, 1.0, 0.95, 1.07, 0.99};
  config.jitter_delay_exponent = 0.85;
  config.supply = &supply;
  config.laws = &laws;
  config.modulation = &modulation;
  expect_identical_edges(config, /*noise_seed=*/1234, Time::from_us(2.0));
}

TEST(HotPath, CharliePrescaledMatchesFireTime) {
  // fire_time(tf, tr, last, extra, ss, cs) must equal fire_time_prescaled
  // with the caller-side products D_mean*ss, s0*ss, Dch*cs — the STR hot
  // path precomputes exactly those.
  const ring::CharlieParams params{Time::from_ps(243.0), Time::from_ps(271.0),
                                   Time::from_ps(119.0)};
  for (const bool drafting_on : {false, true}) {
    const ring::CharlieModel model(
        params, drafting_on ? ring::DraftingParams::asic(6.0, 90.0)
                            : ring::DraftingParams::disabled());
    Xoshiro256 rng(555);
    for (int i = 0; i < 5000; ++i) {
      const Time tf = Time::from_fs(static_cast<std::int64_t>(rng.below(
          5'000'000'000)));
      const Time tr = tf + Time::from_fs(
                               static_cast<std::int64_t>(rng.below(2'000'000)) -
                               1'000'000);
      const Time last =
          std::min(tf, tr) -
          Time::from_fs(static_cast<std::int64_t>(rng.below(600'000)));
      const double extra_ps = rng.uniform(-8.0, 8.0);
      const double static_scale = rng.uniform(0.6, 1.6);
      const double charlie_scale = rng.uniform(0.0, 1.6);
      const Time via_scales = model.fire_time(tf, tr, last, extra_ps,
                                              static_scale, charlie_scale);
      const Time via_prescaled = model.fire_time_prescaled(
          tf, tr, last, extra_ps, params.d_mean().ps() * static_scale,
          params.s_offset().ps() * static_scale,
          params.d_charlie.ps() * charlie_scale);
      ASSERT_EQ(via_scales.fs(), via_prescaled.fs())
          << "i=" << i << " drafting=" << drafting_on;
    }
  }
}

TEST(HotPath, RngNormalsMatchesSequentialDraws) {
  // Xoshiro256::normals must emit the exact sequence n normal() calls would,
  // including the Marsaglia pair cache straddling block boundaries.
  Xoshiro256 sequential(99);
  Xoshiro256 blocked(99);
  std::vector<double> block;
  for (const std::size_t n : {1u, 2u, 3u, 7u, 64u, 65u, 1u, 128u}) {
    block.resize(n);
    blocked.normals(block.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const double expected = sequential.normal();
      ASSERT_EQ(block[i], expected) << "n=" << n << " i=" << i;
    }
  }
}

TEST(HotPath, NoiseFillMatchesSampleLoop) {
  // GaussianNoise / CompositeNoise fill_ps and the BlockSampler wrapper must
  // reproduce sample_ps draw-for-draw (bit-exact doubles).
  const auto make_composite = [](std::uint64_t seed) {
    auto composite = std::make_unique<noise::CompositeNoise>();
    composite->add(std::make_unique<noise::GaussianNoise>(2.0, seed));
    composite->add(
        std::make_unique<noise::FlickerNoise>(0.7, 12, seed + 1));
    return composite;
  };
  noise::GaussianNoise gauss_a(2.25, 7);
  noise::GaussianNoise gauss_b(2.25, 7);
  auto comp_a = make_composite(31);
  auto comp_b = make_composite(31);
  noise::BlockSampler gauss_block(&gauss_b, 64);
  noise::BlockSampler comp_block(comp_b.get(), 16);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(gauss_block.next(), gauss_a.sample_ps()) << i;
    ASSERT_EQ(comp_block.next(), comp_a->sample_ps()) << i;
  }
}

TEST(HotPath, SupplyScaleCacheMatchesDirectComputation) {
  fpga::Supply supply(1.2);
  supply.set_modulation(fpga::Modulation::sine(0.04, 1.5e6));
  const fpga::VoltageLaws laws = test_laws();
  fpga::SupplyScaleCache cache(&supply, &laws);
  Xoshiro256 rng(4242);
  Time now = Time::zero();
  for (int i = 0; i < 2000; ++i) {
    // Monotone timestamps with repeats (the kernel often asks twice at one
    // event time) and occasional setter calls invalidating the cache.
    if (rng.below(50) == 0) supply.set_level(rng.uniform(1.0, 1.4));
    if (rng.below(3) != 0) {
      now += Time::from_fs(static_cast<std::int64_t>(rng.below(800'000)));
    }
    const fpga::OperatingPoint op = supply.operating_point_at(now);
    const fpga::SupplyScaleCache::Scales& scales = cache.at(now);
    ASSERT_EQ(scales.lut, laws.lut.scale(op)) << i;
    ASSERT_EQ(scales.routing, laws.routing.scale(op)) << i;
    ASSERT_EQ(scales.charlie, laws.charlie.scale(op)) << i;
  }
}

TEST(HotPath, StrDevirtualizedRouteMatchesVirtualCounters) {
  // run_until_on<P> + the flat 4-ary heap is a pure devirtualization of the
  // generic run_until route: both must execute the identical event sequence.
  // The structural counters (heap traffic, Charlie evaluations) therefore
  // agree exactly between routes, and stay pinned to the golden values below
  // — any drift means a hot-path change altered behaviour, not just speed.
  namespace metrics = sim::metrics;
  const auto run_route = [](bool devirtualized) {
    sim::Kernel kernel;
    ring::StrConfig config;
    config.stages = 8;
    config.charlie =
        ring::CharlieParams::symmetric(Time::from_ps(260.0), Time::from_ps(120.0));
    ring::Str str(
        kernel, config,
        ring::make_initial_state(8, 4, ring::TokenPlacement::evenly_spread),
        gaussian_bank(8, 2.0, 777));
    str.start();
    const metrics::Snapshot before = metrics::snapshot();
    const Time t_end = Time::from_ns(400.0);
    if (devirtualized) {
      kernel.run_until_on(str, t_end);
    } else {
      kernel.run_until(t_end);
    }
    return metrics::snapshot().delta_since(before);
  };

  const bool was_enabled = metrics::enabled();
  metrics::set_enabled(true);
  const metrics::Snapshot virtual_route = run_route(false);
  const metrics::Snapshot devirt_route = run_route(true);
  metrics::set_enabled(was_enabled);

  for (const metrics::Counter c :
       {metrics::Counter::heap_pushes, metrics::Counter::heap_pops,
        metrics::Counter::charlie_evaluations}) {
    EXPECT_EQ(devirt_route.counter(c), virtual_route.counter(c))
        << "counter " << static_cast<int>(c);
  }
  // Golden pin: a 400 ns run of the 8-stage NT=NB ring with this noise seed.
  EXPECT_EQ(virtual_route.counter(metrics::Counter::heap_pushes), 4208u);
  EXPECT_EQ(virtual_route.counter(metrics::Counter::heap_pops), 4208u);
  EXPECT_EQ(virtual_route.counter(metrics::Counter::charlie_evaluations),
            4208u);
}

TEST(HotPath, TimeFromPsMatchesLlround) {
  // Time's fs conversion switched from llround (two instructions + a slow
  // libm call on some paths) to rint + exact-tie fixup. The only inputs
  // where round-to-nearest-even and round-half-away-from-zero differ are
  // exact .5 ties; cover them explicitly, then a dense random sweep.
  for (const std::int64_t base :
       {0LL, 1LL, 2LL, 3LL, 7LL, 1000LL, 4503599627370494LL}) {
    for (const int sign : {1, -1}) {
      const double tie = (static_cast<double>(base) + 0.5) * sign;
      // scaled() feeds the tie straight into the fs conversion.
      const Time converted = Time::from_fs(1).scaled(tie);
      ASSERT_EQ(converted.fs(), std::llround(tie)) << tie;
    }
  }
  Xoshiro256 rng(31337);
  for (int i = 0; i < 4'000'000; ++i) {
    // Mixed magnitudes: sub-fs fractions through multi-second spans.
    const double mag = std::exp(rng.uniform(-5.0, 30.0));
    const double fs = rng.uniform(-1.0, 1.0) * mag;
    const std::int64_t got = Time::from_fs(1).scaled(fs).fs();
    const std::int64_t want = std::llround(fs);
    if (got != want) FAIL() << "fs=" << fs << " got " << got << " want " << want;
  }
}
