// Stress and failure-injection tests: the simulator and ring models must
// hold their invariants under extreme noise, extreme configurations, and
// hostile operating points — and fail loudly (exceptions), never silently,
// when driven outside their contracts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/periods.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/experiments.hpp"
#include "core/oscillator.hpp"
#include "fpga/supply.hpp"
#include "measure/frequency.hpp"
#include "ring/iro.hpp"
#include "noise/jitter.hpp"
#include "ring/str.hpp"
#include "sim/kernel.hpp"

using namespace ringent;
using namespace ringent::literals;

namespace {

std::vector<std::unique_ptr<noise::NoiseSource>> gaussian_noise(
    std::size_t stages, double sigma_ps, std::uint64_t seed) {
  std::vector<std::unique_ptr<noise::NoiseSource>> out;
  for (std::size_t i = 0; i < stages; ++i) {
    out.push_back(std::make_unique<noise::GaussianNoise>(
        sigma_ps, derive_seed(seed, "stage", i)));
  }
  return out;
}

}  // namespace

TEST(Stress, StrSurvivesNoiseComparableToTheStageDelay) {
  // sigma = 100 ps against a 260 ps static delay: the causality floor in the
  // Charlie model must keep the ring live and token-conserving.
  sim::Kernel kernel;
  ring::StrConfig config;
  config.stages = 16;
  config.charlie = ring::CharlieParams::symmetric(260_ps, 123_ps);
  ring::Str str(kernel, config,
                ring::make_initial_state(16, 8,
                                         ring::TokenPlacement::evenly_spread),
                gaussian_noise(16, 100.0, 41));
  str.start();
  for (int chunk = 0; chunk < 40; ++chunk) {
    kernel.run_until(kernel.now() + Time::from_ns(100.0));
    ASSERT_EQ(ring::token_count(str.state()), 8u);
    ASSERT_FALSE(kernel.idle());
  }
  // Output edges must be strictly monotone despite the huge noise.
  const auto edges = str.output().rising_edges();
  ASSERT_GT(edges.size(), 100u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    ASSERT_GT(edges[i], edges[i - 1]);
  }
}

TEST(Stress, MinimalAndTokenSaturatedRings) {
  // L = 3 with NT = 2 (the smallest legal STR) and a nearly token-saturated
  // ring both oscillate indefinitely.
  for (auto [stages, tokens] : {std::pair<std::size_t, std::size_t>{3, 2},
                                {9, 8},
                                {97, 96}}) {
    sim::Kernel kernel;
    ring::StrConfig config;
    config.stages = stages;
    config.charlie = ring::CharlieParams::symmetric(260_ps, 123_ps);
    ring::Str str(kernel, config,
                  ring::make_initial_state(stages, tokens,
                                           ring::TokenPlacement::clustered),
                  {});
    str.start();
    kernel.run_until(Time::from_us(1.0));
    EXPECT_GT(str.firings(), 100u) << stages << "/" << tokens;
    EXPECT_EQ(ring::token_count(str.state()), tokens);
  }
}

TEST(Stress, KernelHandlesManyProcessesAndDeepQueues) {
  class Hopper final : public sim::Process {
   public:
    void fire(sim::Kernel& kernel, std::uint32_t tag) override {
      ++fired;
      kernel.schedule_in(Time::from_fs(1 + tag % 97), self, tag + 1);
    }
    sim::NodeId self = sim::invalid_node;
    std::uint64_t fired = 0;
  };
  sim::Kernel kernel;
  std::vector<std::unique_ptr<Hopper>> hoppers;
  for (int i = 0; i < 500; ++i) {
    hoppers.push_back(std::make_unique<Hopper>());
    hoppers.back()->self = kernel.add_process(hoppers.back().get());
    kernel.schedule_in(Time::from_fs(i + 1), hoppers.back()->self,
                       static_cast<std::uint32_t>(i));
  }
  kernel.run_events(300000);
  EXPECT_EQ(kernel.events_fired(), 300000u);
  std::uint64_t total = 0;
  for (const auto& h : hoppers) total += h->fired;
  EXPECT_EQ(total, 300000u);
}

TEST(Stress, OscillatorAtTheVoltageExtremes) {
  // 1.0 V stretches every delay by ~2x; the facade's run-time estimation
  // must still deliver the requested sample count.
  fpga::Supply supply(1.2);
  supply.set_level(1.0);
  core::BuildOptions build;
  build.supply = &supply;
  core::Oscillator osc =
      core::Oscillator::build(core::RingSpec::str(96), core::cyclone_iii(),
                              build);
  osc.run_periods(500);
  EXPECT_GE(analysis::periods_ps(osc.output()).size(), 500u);

  // Driving the supply below the LUT pivot must throw, not wedge.
  fpga::Supply dead(1.2);
  dead.set_level(0.3);
  core::BuildOptions bad;
  bad.supply = &dead;
  EXPECT_THROW(core::Oscillator::build(core::RingSpec::iro(5),
                                       core::cyclone_iii(), bad),
               PreconditionError);
}

TEST(Stress, ViolentSupplyModulationKeepsCausality) {
  // 300 mV square modulation at 10 MHz — delays jump by ~2x at every edge.
  fpga::Supply supply(1.2);
  supply.set_modulation(fpga::Modulation::square(0.3, 1e7));
  core::BuildOptions build;
  build.supply = &supply;
  core::Oscillator osc = core::Oscillator::build(
      core::RingSpec::str(24), core::cyclone_iii(), build);
  osc.run_periods(2000);
  const auto edges = osc.output().rising_edges();
  ASSERT_GE(edges.size(), 2000u);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    ASSERT_GT(edges[i], edges[i - 1]);
  }
}

TEST(Stress, HugeMismatchStillOscillates) {
  // 30% per-stage spread: way beyond any real process, the ring must still
  // run and conserve tokens (the Charlie curve absorbs the asymmetry).
  Xoshiro256 rng(77);
  sim::Kernel kernel;
  ring::StrConfig config;
  config.stages = 24;
  config.charlie = ring::CharlieParams::symmetric(260_ps, 123_ps);
  config.stage_factors.resize(24);
  for (auto& f : config.stage_factors) f = rng.uniform(0.7, 1.3);
  ring::Str str(kernel, config,
                ring::make_initial_state(24, 12,
                                         ring::TokenPlacement::evenly_spread),
                {});
  str.start();
  kernel.run_until(Time::from_us(5.0));
  EXPECT_GT(str.firings(), 10000u);
  EXPECT_EQ(ring::token_count(str.state()), 12u);
  // Still periodic: the period spread of the last 100 cycles is tiny.
  auto periods = analysis::periods_ps(str.output());
  ASSERT_GT(periods.size(), 200u);
  periods.erase(periods.begin(), periods.end() - 100);
  EXPECT_LT(describe(periods).relative_stddev(), 0.02);
}

TEST(Stress, ZeroCharlieMagnitudeIsStillCausal) {
  sim::Kernel kernel;
  ring::StrConfig config;
  config.stages = 12;
  config.charlie = ring::CharlieParams::symmetric(260_ps, 0_ps);
  ring::Str str(kernel, config,
                ring::make_initial_state(12, 4,
                                         ring::TokenPlacement::clustered),
                gaussian_noise(12, 5.0, 9));
  str.start();
  kernel.run_until(Time::from_us(2.0));
  EXPECT_GT(str.firings(), 1000u);
}

TEST(Stress, PerStageRoutingPreservesFrequencyAtModerateAsymmetry) {
  // Structured routing with total preserved: frequency within ~8% of the
  // flat model at the realistic 1.5x weight, and well below it when a
  // single hop becomes the pipeline bottleneck.
  using namespace ringent::core;
  const auto& cal = cyclone_iii();
  const auto freq_at = [&](double weight) {
    BuildOptions build;
    build.sigma_g_ps = 0.0;
    build.routing_crossing_weight = weight;
    Oscillator osc = Oscillator::build(RingSpec::str(96), cal, build);
    osc.run_periods(300);
    return measure::mean_frequency_mhz(osc.output());
  };
  const double flat = freq_at(1.0);
  EXPECT_NEAR(flat, 320.0, 2.0);
  EXPECT_GT(freq_at(1.5), flat * 0.92);
  EXPECT_LT(freq_at(8.0), flat * 0.60);
}

TEST(Stress, PerStageRoutingVectorValidation) {
  sim::Kernel kernel;
  ring::StrConfig config;
  config.stages = 8;
  config.charlie = ring::CharlieParams::symmetric(260_ps, 123_ps);
  config.routing_per_stage = {10_ps, 10_ps};  // wrong size
  EXPECT_THROW(
      ring::Str(kernel, config,
                ring::make_initial_state(8, 4,
                                         ring::TokenPlacement::clustered),
                {}),
      PreconditionError);

  ring::IroConfig iro_config;
  iro_config.stages = 4;
  iro_config.lut_delay = 100_ps;
  iro_config.routing_per_stage = {10_ps, 10_ps, -1_ps, 10_ps};
  EXPECT_THROW(ring::Iro(kernel, iro_config, {}), PreconditionError);
}

TEST(Stress, PerStageRoutingIroPeriodIsExact) {
  sim::Kernel kernel;
  ring::IroConfig config;
  config.stages = 4;
  config.lut_delay = 100_ps;
  config.routing_per_stage = {5_ps, 10_ps, 15_ps, 30_ps};
  ring::Iro iro(kernel, config, {});
  iro.start();
  kernel.run_until(Time::from_ns(20.0));
  const auto periods = analysis::periods_ps(iro.output());
  ASSERT_FALSE(periods.empty());
  EXPECT_NEAR(periods.back(), 2.0 * (400.0 + 60.0), 1e-6);
  EXPECT_EQ(iro.nominal_period(), Time::from_ps(920.0));
}

TEST(Stress, ExperimentsRejectNonsense) {
  using namespace ringent::core;
  const auto& cal = cyclone_iii();
  EXPECT_THROW(run_voltage_sweep(VoltageSweepSpec{RingSpec::iro(5), {}}, cal),
               PreconditionError);
  ModeMapSpec bad_map;
  bad_map.stages = 16;
  bad_map.token_counts = {4};
  bad_map.charlie_scale = -1.0;
  EXPECT_THROW(run_mode_map(bad_map, cal), PreconditionError);
  EXPECT_THROW(collect_periods_ps(RingSpec::str(8), cal, 0),
               PreconditionError);
  BuildOptions bad;
  bad.delay_scale = 0.0;
  EXPECT_THROW(Oscillator::build(RingSpec::iro(5), cal, bad),
               PreconditionError);
}
