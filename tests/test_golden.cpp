// Golden-baseline regression tests: every experiment driver runs a small,
// fixed spec/seed configuration and must reproduce checked-in values
// EXACTLY (EXPECT_EQ on doubles, no tolerance).
//
// The simulator's determinism contract makes this well-defined: integer
// femtosecond arithmetic, hierarchical per-task seeding and index-sharded
// parallelism mean the numbers are bit-identical at any worker count — the
// tests pin jobs = 2 so the pool path itself is under the baseline. A
// failure here means observable behaviour changed; if the change is
// intended, regenerate the constants:
//
//   RINGENT_DUMP_GOLDEN=1 ./tests/test_golden --gtest_also_run_disabled_tests
//
// prints ready-to-paste initializer lists instead of asserting.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/export.hpp"
#include "sim/metrics.hpp"

using namespace ringent;
using namespace ringent::core;
namespace metrics = ringent::sim::metrics;

namespace {

bool dump_mode() {
  const char* flag = std::getenv("RINGENT_DUMP_GOLDEN");
  return flag != nullptr && flag[0] != '\0';
}

/// Compare a vector of observables against the checked-in baseline — or,
/// in dump mode, print the baseline initializer list to paste into the
/// test. Values print at %.17g, enough digits to round-trip a double.
void check_golden(const char* name, const std::vector<double>& actual,
                  const std::vector<double>& expected) {
  if (dump_mode()) {
    std::printf("// golden %s\n{\n", name);
    for (double v : actual) std::printf("    %.17g,\n", v);
    std::printf("}\n");
    return;
  }
  ASSERT_EQ(actual.size(), expected.size()) << name;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << name << " observable " << i;
  }
}

ExperimentOptions golden_options() {
  ExperimentOptions options;
  options.jobs = 2;  // exercise the pool; results are jobs-invariant
  return options;
}

}  // namespace

TEST(Golden, VoltageSweep) {
  const auto out = run_voltage_sweep(
      VoltageSweepSpec{RingSpec::iro(3), {1.1, 1.2, 1.3}, 30}, cyclone_iii(),
      golden_options());
  std::vector<double> actual = {out.f_nominal_mhz, out.excursion};
  for (const auto& p : out.points) {
    actual.push_back(p.frequency_mhz);
    actual.push_back(p.normalized);
  }
  check_golden("VoltageSweep", actual,
               {
                   653.91757156928986,
                   0.24552002687940958,
                   573.64752866365529,
                   0.87724745993137909,
                   653.91757156928986,
                   1,
                   734.19738841226558,
                   1.1227674868107886,
               });
}

TEST(Golden, TemperatureSweep) {
  const auto out = run_temperature_sweep(
      TemperatureSweepSpec{RingSpec::str(4), {15.0, 25.0, 35.0}, 30},
      cyclone_iii(), golden_options());
  std::vector<double> actual = {out.f_nominal_mhz, out.excursion};
  for (const auto& p : out.points) {
    actual.push_back(p.frequency_mhz);
    actual.push_back(p.normalized);
  }
  check_golden("TemperatureSweep", actual,
               {
                   652.88914120603408,
                   0.0080017956667429169,
                   655.51171166456334,
                   1.0040168694698839,
                   652.88914120603408,
                   1,
                   650.28742616359739,
                   0.99601507380314103,
               });
}

TEST(Golden, ProcessVariability) {
  const auto out = run_process_variability(
      ProcessVariabilitySpec{RingSpec::iro(5), 3, 30}, cyclone_iii(),
      golden_options());
  std::vector<double> actual = {out.mean_mhz, out.sigma_rel};
  for (const auto& b : out.boards) actual.push_back(b.frequency_mhz);
  check_golden("ProcessVariability", actual,
               {
                   374.34821297029828,
                   0.004660769906175863,
                   372.43159096011493,
                   375.84418158466707,
                   374.76886636611283,
               });
}

TEST(Golden, JitterVsStages) {
  JitterSweepSpec sweep;
  sweep.kind = RingKind::iro;
  sweep.stage_counts = {3, 5};
  sweep.divider_n = 4;
  sweep.mes_periods = 20;
  const auto points =
      run_jitter_vs_stages(sweep, cyclone_iii(), golden_options());
  std::vector<double> actual;
  for (const auto& p : points) {
    actual.push_back(static_cast<double>(p.stages));
    actual.push_back(p.mean_period_ps);
    actual.push_back(p.sigma_p_ps);
    actual.push_back(p.sigma_g_ps);
    actual.push_back(p.sigma_direct_ps);
  }
  check_golden("JitterVsStages", actual,
               {
                   3,
                   1529.7656249999998,
                   6.5707185379730859,
                   2.6824846102467261,
                   4.6131050501103275,
                   5,
                   2659.921875,
                   7.2168783648703219,
                   2.2821773229381921,
                   6.1470414548030909,
               });
}

TEST(Golden, ModeMap) {
  ModeMapSpec map_spec;
  map_spec.stages = 8;
  map_spec.token_counts = {2, 4};
  map_spec.placement = ring::TokenPlacement::clustered;
  map_spec.periods = 120;
  const auto entries = run_mode_map(map_spec, cyclone_iii(), golden_options());
  std::vector<double> actual;
  for (const auto& e : entries) {
    actual.push_back(static_cast<double>(e.tokens));
    actual.push_back(static_cast<double>(e.mode));
    actual.push_back(e.interval_cv);
    actual.push_back(e.frequency_mhz);
  }
  check_golden("ModeMap", actual,
               {
                   2,
                   0,
                   0.0060939916286091829,
                   388.74247231524225,
                   4,
                   0,
                   0.0033373091966935123,
                   592.60076630091658,
               });
}

TEST(Golden, Restart) {
  const auto out = run_restart_experiment(RestartSpec{RingSpec::iro(5), 8, 16},
                                          cyclone_iii(), golden_options());
  std::vector<double> actual = {out.control_identical ? 1.0 : 0.0,
                                out.diffusion_per_edge_ps, out.fit_r2};
  for (const auto& p : out.points) {
    actual.push_back(static_cast<double>(p.edge));
    actual.push_back(p.spread_ps);
  }
  check_golden("Restart", actual,
               {
                   1,
                   6.6579908056351176,
                   0.83438138510987381,
                   1,
                   4.8825803189940888,
                   2,
                   7.1924685199668499,
                   3,
                   9.048309309320846,
                   4,
                   12.270141281640512,
                   5,
                   17.83465661039487,
                   6,
                   14.794568105510137,
                   7,
                   19.385305841576514,
                   8,
                   21.283745138602566,
                   9,
                   21.533315698752357,
                   10,
                   25.311847467427246,
                   11,
                   26.370518392096599,
                   12,
                   25.50536467938792,
                   13,
                   21.524439483328617,
                   14,
                   22.072872820582482,
                   15,
                   23.568753733566741,
                   16,
                   22.669471368449205,
               });
}

TEST(Golden, CoherentAcrossBoards) {
  const auto out = run_coherent_across_boards(
      CoherentSweepSpec{RingSpec::iro(3), 0.05, 2, 500}, cyclone_iii(),
      golden_options());
  std::vector<double> actual = {out.design_detune, out.detune_mean,
                                out.detune_sigma, out.worst_deviation};
  for (const auto& row : out.boards) {
    actual.push_back(row.half_beat_samples);
    actual.push_back(row.implied_detune);
    actual.push_back(static_cast<double>(row.bits));
    actual.push_back(row.lsb_bias);
  }
  check_golden("CoherentAcrossBoards", actual,
               {
                   0.050000000000000003,
                   0.045833333333333337,
                   0.0058925565098878994,
                   0.0083333333333333384,
                   12,
                   0.041666666666666664,
                   41,
                   0.5,
                   10,
                   0.050000000000000003,
                   49,
                   0.5,
               });
}

TEST(Golden, DeterministicJitter) {
  DeterministicJitterSpec sweep;
  sweep.kind = RingKind::iro;
  sweep.stage_counts = {3, 5};
  sweep.periods = 256;
  const auto points =
      run_deterministic_jitter(sweep, cyclone_iii(), golden_options());
  std::vector<double> actual;
  for (const auto& p : points) {
    actual.push_back(static_cast<double>(p.stages));
    actual.push_back(p.mean_period_ps);
    actual.push_back(p.tone_ps);
    actual.push_back(p.tone_relative);
    actual.push_back(p.random_ps);
  }
  check_golden("DeterministicJitter", actual,
               {
                   3,
                   1543.2224140625008,
                   102.20096879245483,
                   0.066225689739311727,
                   4.7159864381144807,
                   5,
                   2665.6612343749998,
                   146.3831624190716,
                   0.054914390670273261,
                   5.9129608866180243,
               });
}

TEST(Golden, EntropyMap) {
  // Same small spec the registry smoke entry uses: both topologies, one
  // 5-stage ring (valid for IRO and STR alike), two sampling periods, a
  // 512-bit stream per cell plus a 4x32 restart matrix. Runs with metrics
  // on so the manifest counter totals are pinned alongside the physics —
  // the entropy_map driver gets the same exact-count treatment as the
  // other drivers in ManifestEventCountsAreExact.
  metrics::set_enabled(true);
  metrics::reset();

  EntropyMapSpec spec;
  spec.stage_counts = {5};
  spec.sampling_periods = {Time::from_ns(250.0), Time::from_ns(500.0)};
  spec.bits_per_cell = 512;
  spec.restart_rows = 4;
  spec.restart_cols = 32;
  const auto out = run_entropy_map(spec, cyclone_iii(), golden_options());

  const auto manifest = last_run_manifest();
  metrics::set_enabled(false);
  metrics::reset();

  ASSERT_EQ(out.cells.size(), 4u);  // {iro, str} x {5 stages} x {2 periods}
  std::vector<double> actual = {out.floor_min_entropy};
  for (const auto& cell : out.cells) {
    actual.push_back(cell.estimate.h_mcv);
    actual.push_back(cell.estimate.h_collision);
    actual.push_back(cell.estimate.h_markov);
    actual.push_back(cell.estimate.h_t_tuple);
    actual.push_back(cell.estimate.h_lrs);
    actual.push_back(cell.estimate.min_entropy);
    actual.push_back(cell.restart.validated);
  }
  check_golden("EntropyMap", actual,
               {
                   0.0023436831891101616,
                   0.78018750938945958,
                   0.0023436831891101616,
                   0.055965198652507181,
                   0.050146733110447345,
                   0.10998019465633711,
                   0.0023436831891101616,
                   0,
                   0.81431841225142931,
                   0.024646284705944356,
                   0.10983945785081023,
                   0.15199675975340474,
                   0.20928693536527948,
                   0.024646284705944356,
                   0,
                   0.83423981037554329,
                   1,
                   0.52513854239764757,
                   0.2785975066830077,
                   0.21964783322005649,
                   0.21964783322005649,
                   0.15490503088769089,
                   0.82923026873648598,
                   0.60900006357687131,
                   0.7230784701853521,
                   0.32628200729352885,
                   0.31040617753911021,
                   0.31040617753911021,
                   0.2802301264720729,
               });

  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->experiment, "entropy_map");
  EXPECT_EQ(manifest->tasks, 4u);
  EXPECT_EQ(manifest->jobs, 2u);
  EXPECT_EQ(manifest->metrics.counter(metrics::Counter::pool_tasks), 4u);
  check_golden(
      "EntropyMapManifestEventCounts",
      {
          static_cast<double>(
              manifest->metrics.counter(metrics::Counter::events_scheduled)),
          static_cast<double>(
              manifest->metrics.counter(metrics::Counter::events_fired)),
          static_cast<double>(
              manifest->metrics.counter(metrics::Counter::heap_pops)),
      },
      {
          11212830,
          11212800,
          11212800,
      });
}

TEST(Golden, ManifestEventCountsAreExact) {
  // The acceptance hook for run manifests: with metrics on, the manifest a
  // driver emits carries event totals that are themselves golden — the
  // simulation is deterministic, so scheduling/firing/queue counts are as
  // reproducible as the physics observables above.
  metrics::set_enabled(true);
  metrics::reset();

  JitterSweepSpec sweep;
  sweep.kind = RingKind::iro;
  sweep.stage_counts = {3, 5};
  sweep.divider_n = 4;
  sweep.mes_periods = 20;
  (void)run_jitter_vs_stages(sweep, cyclone_iii(), golden_options());

  const auto manifest = last_run_manifest();
  const metrics::Snapshot snap = metrics::snapshot();
  metrics::set_enabled(false);
  metrics::reset();

  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->experiment, "jitter_vs_stages_iro");
  EXPECT_EQ(manifest->tasks, 2u);
  EXPECT_EQ(manifest->jobs, 2u);

  // Manifest counters must equal the process totals (nothing else ran).
  for (std::size_t i = 0; i < metrics::counter_count; ++i) {
    EXPECT_EQ(manifest->metrics.counters[i], snap.counters[i])
        << metrics::counter_name(static_cast<metrics::Counter>(i));
  }

  // Internal consistency that holds for ANY workload.
  EXPECT_EQ(manifest->metrics.counter(metrics::Counter::heap_pushes),
            manifest->metrics.counter(metrics::Counter::events_scheduled));
  EXPECT_GE(manifest->metrics.counter(metrics::Counter::events_scheduled),
            manifest->metrics.counter(metrics::Counter::events_fired));
  EXPECT_EQ(manifest->metrics.counter(metrics::Counter::charlie_evaluations),
            0u);  // IRO sweep: no STR in the kernel
  EXPECT_EQ(manifest->metrics.counter(metrics::Counter::pool_tasks), 2u);

  // And the exact totals for this fixed spec/seed.
  check_golden(
      "ManifestEventCounts",
      {
          static_cast<double>(
              manifest->metrics.counter(metrics::Counter::events_scheduled)),
          static_cast<double>(
              manifest->metrics.counter(metrics::Counter::events_fired)),
          static_cast<double>(
              manifest->metrics.counter(metrics::Counter::heap_pops)),
      },
      {
          6562,
          6560,
          6560,
      });
}
