// Unit tests for common/: time, rng, stats, math.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "common/math.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

using namespace ringent;
using namespace ringent::literals;

// --- Time -------------------------------------------------------------------

TEST(Time, LiteralsAndConversions) {
  EXPECT_EQ((1_ps).fs(), 1000);
  EXPECT_EQ((1_ns).fs(), 1'000'000);
  EXPECT_EQ((1_us).fs(), 1'000'000'000);
  EXPECT_DOUBLE_EQ((250_ps).ps(), 250.0);
  EXPECT_DOUBLE_EQ((3_ns).ns(), 3.0);
  EXPECT_DOUBLE_EQ(Time::from_seconds(1e-9).ns(), 1.0);
}

TEST(Time, RoundsToNearestFemtosecond) {
  EXPECT_EQ(Time::from_ps(0.0004).fs(), 0);
  EXPECT_EQ(Time::from_ps(0.0006).fs(), 1);
  EXPECT_EQ(Time::from_ps(-0.0006).fs(), -1);
}

TEST(Time, Arithmetic) {
  const Time a = 10_ps;
  const Time b = 4_ps;
  EXPECT_EQ((a + b).fs(), 14000);
  EXPECT_EQ((a - b).fs(), 6000);
  EXPECT_EQ((-b).fs(), -4000);
  EXPECT_EQ((a * 3).fs(), 30000);
  EXPECT_EQ((a / 2).fs(), 5000);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ(a.scaled(0.5).fs(), 5000);
  EXPECT_LT(b, a);
  EXPECT_TRUE((0_fs).is_zero());
  EXPECT_TRUE((a - a - b).is_negative());
}

TEST(Time, StreamFormatting) {
  std::ostringstream os;
  os << 2_ns << " " << 250_ps << " " << 1_fs;
  EXPECT_EQ(os.str(), "2ns 250ps 1fs");
}

TEST(Time, FrequencyConversions) {
  EXPECT_NEAR(period_to_mhz(Time::from_ps(1529.9)), 653.6, 0.1);
  EXPECT_NEAR(mhz_to_period(320.0).ps(), 3125.0, 0.1);
  EXPECT_DOUBLE_EQ(period_to_mhz(Time::zero()), 0.0);
  EXPECT_THROW(mhz_to_period(0.0), PreconditionError);
  EXPECT_THROW(mhz_to_period(-5.0), PreconditionError);
}

// --- RNG --------------------------------------------------------------------

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(43);
  EXPECT_NE(SplitMix64(42).next(), c.next());
}

TEST(Rng, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Xoshiro256 a2(7);
  for (int i = 0; i < 10; ++i) differs = differs || (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, Uniform01InRangeAndRoughlyUniform) {
  Xoshiro256 rng(123);
  const int buckets = 10;
  std::vector<int> counts(buckets, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    ++counts[static_cast<int>(u * buckets)];
  }
  for (int c : counts) EXPECT_NEAR(c, n / buckets, 5 * std::sqrt(n / buckets));
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 rng(99);
  SampleStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.02);
  EXPECT_NEAR(stats.skewness(), 0.0, 0.03);
  EXPECT_NEAR(stats.excess_kurtosis(), 0.0, 0.06);
}

TEST(Rng, BelowIsUnbiasedAndBounded) {
  Xoshiro256 rng(3);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, JumpProducesDecorrelatedStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, DerivedSeedsAreLabelAndIndexSensitive) {
  const std::uint64_t master = 20120312;
  EXPECT_EQ(derive_seed(master, "a"), derive_seed(master, "a"));
  EXPECT_NE(derive_seed(master, "a"), derive_seed(master, "b"));
  EXPECT_NE(derive_seed(master, "a", 0), derive_seed(master, "a", 1));
  EXPECT_NE(derive_seed(master, "a"), derive_seed(master + 1, "a"));
  // Label/index pairs should not collide with sibling labels.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(derive_seed(master, "lut", i));
  EXPECT_EQ(seen.size(), 1000u);
}

// --- SampleStats ------------------------------------------------------------

TEST(SampleStats, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SampleStats s = describe(xs);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleStats, MergeEqualsSinglePass) {
  Xoshiro256 rng(17);
  SampleStats whole, left, right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(1.0, 3.0) + (i % 7) * 0.1;
    whole.add(x);
    (i < 2000 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_NEAR(left.skewness(), whole.skewness(), 1e-8);
  EXPECT_NEAR(left.excess_kurtosis(), whole.excess_kurtosis(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(SampleStats, SkewAndKurtosisOfKnownShapes) {
  // Exponential distribution: skewness 2, excess kurtosis 6.
  Xoshiro256 rng(8);
  SampleStats s;
  for (int i = 0; i < 300000; ++i) s.add(-std::log(1.0 - rng.uniform01()));
  EXPECT_NEAR(s.skewness(), 2.0, 0.1);
  EXPECT_NEAR(s.excess_kurtosis(), 6.0, 0.5);
}

TEST(SampleStats, PreconditionsThrow) {
  SampleStats s;
  EXPECT_THROW(s.mean(), PreconditionError);
  s.add(1.0);
  EXPECT_THROW(s.variance(), PreconditionError);
  EXPECT_THROW(describe(std::vector<double>{}).mean(), PreconditionError);
}

TEST(SampleStats, RelativeStddev) {
  SampleStats s;
  s.add(99.0);
  s.add(101.0);
  EXPECT_NEAR(s.relative_stddev(), std::sqrt(2.0) / 100.0, 1e-12);
}

TEST(Percentile, MedianAndInterpolation) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 100.0), 3.0);
  EXPECT_THROW(percentile({}, 50.0), PreconditionError);
  EXPECT_THROW(percentile({1.0}, 101.0), PreconditionError);
}

// --- math -------------------------------------------------------------------

TEST(MathUtil, Gcd) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(gcd64(48, 96), 48);
  EXPECT_THROW(gcd64(0, 3), PreconditionError);
}

TEST(MathUtil, PowersOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(24));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(5), 8u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
  EXPECT_EQ(log2_exact(256), 8u);
  EXPECT_THROW(log2_exact(24), PreconditionError);
}

TEST(MathUtil, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(MathUtil, ChiSquareSurvival) {
  // Known quantiles: chi2(1) at 3.841 -> p = 0.05; chi2(2) at 5.991 -> 0.05.
  EXPECT_NEAR(chi_square_sf(3.841, 1.0), 0.05, 1e-3);
  EXPECT_NEAR(chi_square_sf(5.991, 2.0), 0.05, 1e-3);
  EXPECT_NEAR(chi_square_sf(18.307, 10.0), 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 5.0), 1.0);
  EXPECT_NEAR(chi_square_sf(1000.0, 2.0), 0.0, 1e-12);
  EXPECT_THROW(chi_square_sf(1.0, 0.0), PreconditionError);
}

TEST(MathUtil, GammaQBoundaries) {
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(gamma_q(1.0, 2.5), std::exp(-2.5), 1e-10);
  EXPECT_NEAR(gamma_q(1.0, 0.3), std::exp(-0.3), 1e-10);
  EXPECT_THROW(gamma_q(-1.0, 1.0), PreconditionError);
  EXPECT_THROW(gamma_q(1.0, -1.0), PreconditionError);
}

TEST(MathUtil, MeanOfSpan) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
}
