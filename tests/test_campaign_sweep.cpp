// Tier-2 end-to-end check of the committed grand-sweep plan
// (examples/plans/grand_sweep.json): the plan must load, expand, execute
// every cell, and a second run must be a 100% cache hit without touching a
// byte of the store. This is the full `ringent_cli campaign run` path minus
// argv parsing — the committed plan is a product artifact, so it gets the
// same regression protection as code.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "campaign/plan.hpp"
#include "campaign/runner.hpp"
#include "campaign/store.hpp"

using namespace ringent;
using namespace ringent::campaign;
namespace fs = std::filesystem;

namespace {

std::string grand_sweep_path() {
  return std::string(RINGENT_PLANS_DIR) + "/grand_sweep.json";
}

std::map<std::string, std::string> dir_contents(const fs::path& dir) {
  std::map<std::string, std::string> contents;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    contents[fs::relative(entry.path(), dir).string()] = bytes.str();
  }
  return contents;
}

}  // namespace

TEST(GrandSweep, CommittedPlanRunsAndSecondRunIsAllCacheHits) {
  const CampaignPlan plan = load_plan(grand_sweep_path());
  EXPECT_EQ(plan.name, "grand-sweep");

  // The plan must exercise a meaningful slice of the registry (>= 4
  // experiments) or it is not a grand sweep.
  std::set<std::string> experiments;
  for (const auto& entry : plan.entries) experiments.insert(entry.experiment);
  EXPECT_GE(experiments.size(), 4u) << "grand sweep shrank";

  const fs::path dir = fs::temp_directory_path() /
                       ("ringent-grand-sweep-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  ResultStore store(dir.string());

  const CampaignReport cold = run_campaign(plan, store, {});
  EXPECT_GT(cold.planned, 0u);
  EXPECT_EQ(cold.executed, cold.planned);
  EXPECT_EQ(cold.cached, 0u);
  EXPECT_TRUE(cold.complete());

  const auto after_first = dir_contents(dir);

  const CampaignReport warm = run_campaign(plan, store, {});
  EXPECT_EQ(warm.cached, warm.planned) << "second run must be 100% cache hits";
  EXPECT_EQ(warm.executed, 0u);

  EXPECT_EQ(dir_contents(dir), after_first)
      << "a fully-cached run must not change the store";

  const VerifyReport verified = verify_campaign(plan, store);
  EXPECT_TRUE(verified.ok());
  EXPECT_EQ(verified.valid, cold.planned);
  EXPECT_EQ(verified.orphans, 0u);

  std::error_code ec;
  fs::remove_all(dir, ec);
}
