// Tests for the observability layer: hand-counted kernel metrics, phase
// timers, JSON values, run manifests (schema + round trip), Chrome-trace
// span files and the shared bench CLI.
//
// Metrics and trace state are process-global; every test that enables them
// uses the RAII guards below so a failing assertion cannot leak an enabled
// collector into later tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cli.hpp"
#include "common/json.hpp"
#include "common/require.hpp"
#include "core/experiments.hpp"
#include "core/export.hpp"
#include "noise/jitter.hpp"
#include "ring/iro.hpp"
#include "ring/str.hpp"
#include "sim/kernel.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel.hpp"
#include "sim/trace.hpp"

using namespace ringent;
using namespace ringent::literals;
namespace metrics = ringent::sim::metrics;
namespace trace = ringent::sim::trace;

namespace {

/// Enables metrics from a clean slate; disables and wipes on exit.
class MetricsGuard {
 public:
  MetricsGuard() {
    metrics::set_enabled(true);
    metrics::reset();
  }
  ~MetricsGuard() {
    metrics::set_enabled(false);
    metrics::reset();
  }
};

/// Points RINGENT_OUT_DIR at a fresh temp directory; restores on exit.
class OutDirGuard {
 public:
  OutDirGuard() {
    char pattern[] = "/tmp/ringent_obs_XXXXXX";
    const char* dir = mkdtemp(pattern);
    RINGENT_REQUIRE(dir != nullptr, "mkdtemp failed");
    dir_ = dir;
    const char* previous = std::getenv("RINGENT_OUT_DIR");
    if (previous != nullptr) previous_ = previous;
    setenv("RINGENT_OUT_DIR", dir_.c_str(), 1);
  }
  ~OutDirGuard() {
    if (previous_.empty()) {
      unsetenv("RINGENT_OUT_DIR");
    } else {
      setenv("RINGENT_OUT_DIR", previous_.c_str(), 1);
    }
  }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::string previous_;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  RINGENT_REQUIRE(f != nullptr, "cannot open " + path);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace

// --- counters: hand-counted event totals ------------------------------------

TEST(Metrics, IroCountersMatchHandCount) {
  // A noise-free IRO is a single circulating event: start() schedules one,
  // every fire schedules exactly one successor. After run_events(N) the
  // totals are forced: N fired, N+1 scheduled (the last one still pending),
  // and the default kernel queue is the binary heap, so the queue ops match
  // one-to-one.
  const MetricsGuard guard;
  sim::Kernel kernel;
  ring::IroConfig config;
  config.stages = 3;
  config.lut_delay = 250_ps;
  ring::Iro iro(kernel, config, {});
  iro.start();

  constexpr std::uint64_t kEvents = 1000;
  kernel.run_events(kEvents);

  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.counter(metrics::Counter::events_fired), kEvents);
  EXPECT_EQ(snap.counter(metrics::Counter::events_scheduled), kEvents + 1);
  EXPECT_EQ(snap.counter(metrics::Counter::heap_pushes), kEvents + 1);
  EXPECT_EQ(snap.counter(metrics::Counter::heap_pops), kEvents);
  EXPECT_EQ(snap.counter(metrics::Counter::calendar_pushes), 0u);
  EXPECT_EQ(snap.counter(metrics::Counter::charlie_evaluations), 0u);
  EXPECT_EQ(snap.counter(metrics::Counter::events_cancelled), 0u);
  EXPECT_EQ(kernel.events_fired(), kEvents);  // agrees with the kernel's own
}

TEST(Metrics, StrCountsCharlieEvaluationsPerSchedule) {
  // Every event an STR schedules prices its firing through the Charlie
  // model exactly once, and every eligibility probe is counted.
  const MetricsGuard guard;
  sim::Kernel kernel;
  ring::StrConfig config;
  config.stages = 8;
  config.charlie = ring::CharlieParams::symmetric(260_ps, 123_ps);
  ring::Str str(kernel, config,
                ring::make_initial_state(8, 4,
                                         ring::TokenPlacement::evenly_spread),
                {});
  str.start();
  kernel.run_events(2000);

  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.counter(metrics::Counter::charlie_evaluations),
            snap.counter(metrics::Counter::events_scheduled));
  EXPECT_GE(snap.counter(metrics::Counter::token_collision_checks),
            snap.counter(metrics::Counter::charlie_evaluations));
  EXPECT_EQ(snap.counter(metrics::Counter::events_fired), 2000u);
}

TEST(Metrics, ResetTimeCountsCancelledEvents) {
  const MetricsGuard guard;
  sim::Kernel kernel;
  ring::IroConfig config;
  config.stages = 3;
  ring::Iro iro(kernel, config, {});
  iro.start();
  kernel.run_events(10);
  // Exactly one successor event is pending; reset_time drops it.
  kernel.reset_time();
  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_EQ(snap.counter(metrics::Counter::events_cancelled), 1u);
}

TEST(Metrics, DisabledCountersStayZero) {
  metrics::set_enabled(false);
  metrics::reset();
  sim::Kernel kernel;
  ring::IroConfig config;
  config.stages = 3;
  ring::Iro iro(kernel, config, {});
  iro.start();
  kernel.run_events(500);
  const metrics::Snapshot snap = metrics::snapshot();
  for (std::size_t i = 0; i < metrics::counter_count; ++i) {
    EXPECT_EQ(snap.counters[i], 0u) << metrics::counter_name(
        static_cast<metrics::Counter>(i));
  }
  EXPECT_TRUE(snap.phases.empty());
}

TEST(Metrics, PoolTasksCountsEveryIndex) {
  const MetricsGuard guard;
  std::atomic<int> ran{0};
  sim::parallel_for_each(13, 2, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 13);
  EXPECT_EQ(metrics::snapshot().counter(metrics::Counter::pool_tasks), 13u);
}

TEST(Metrics, ScopedPhaseAccumulates) {
  const MetricsGuard guard;
  for (int i = 0; i < 3; ++i) {
    const metrics::ScopedPhase phase("unit-test-phase");
    // Burn a little CPU so the timer has something nonzero to record.
    volatile double x = 1.0;
    for (int j = 0; j < 20000; ++j) x = x * 1.0000001;
  }
  const metrics::Snapshot snap = metrics::snapshot();
  ASSERT_EQ(snap.phases.size(), 1u);
  EXPECT_EQ(snap.phases[0].name, "unit-test-phase");
  EXPECT_EQ(snap.phases[0].calls, 3u);
  EXPECT_GT(snap.phases[0].wall_ms, 0.0);
  EXPECT_GE(snap.phases[0].cpu_ms, 0.0);
}

TEST(Metrics, DeltaSinceSubtractsCountersAndPhases) {
  const MetricsGuard guard;
  metrics::bump(metrics::Counter::events_fired, 7);
  { const metrics::ScopedPhase phase("p"); }
  const metrics::Snapshot before = metrics::snapshot();
  metrics::bump(metrics::Counter::events_fired, 5);
  { const metrics::ScopedPhase phase("p"); }
  { const metrics::ScopedPhase phase("q"); }
  const metrics::Snapshot delta = metrics::snapshot().delta_since(before);
  EXPECT_EQ(delta.counter(metrics::Counter::events_fired), 5u);
  ASSERT_EQ(delta.phases.size(), 2u);
  for (const auto& phase : delta.phases) {
    EXPECT_EQ(phase.calls, 1u) << phase.name;
  }
}

// --- JSON value --------------------------------------------------------------

TEST(Json, DumpParseRoundTripPreservesExactIntegers) {
  Json root = Json::object();
  root.set("big", std::uint64_t{9007199254740993});  // not representable in double
  root.set("neg", std::int64_t{-42});
  root.set("pi", 3.25);
  root.set("s", "a\"b\\c\n\t");
  Json arr = Json::array();
  arr.push_back(true);
  arr.push_back(Json());
  root.set("arr", std::move(arr));

  const Json reparsed = Json::parse(root.dump(2));
  EXPECT_EQ(reparsed.at("big").as_integer(), 9007199254740993);
  EXPECT_EQ(reparsed.at("neg").as_integer(), -42);
  EXPECT_DOUBLE_EQ(reparsed.at("pi").as_number(), 3.25);
  EXPECT_EQ(reparsed.at("s").as_string(), "a\"b\\c\n\t");
  EXPECT_TRUE(reparsed.at("arr").at(std::size_t{0}).as_boolean());
  EXPECT_TRUE(reparsed.at("arr").at(std::size_t{1}).is_null());
  // Object order is preserved (manifests diff cleanly).
  EXPECT_EQ(reparsed.items().front().first, "big");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), Error);
  EXPECT_THROW(Json::parse("[1,2] garbage"), Error);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
}

// --- run manifests -----------------------------------------------------------

TEST(Manifest, DriverWritesValidatableManifest) {
  const OutDirGuard out_dir;
  const MetricsGuard guard;

  core::ExperimentOptions options;
  options.jobs = 1;
  const auto result = core::run_voltage_sweep(
      core::VoltageSweepSpec{core::RingSpec::iro(3), {1.1, 1.2}, 20},
      core::cyclone_iii(), options);
  ASSERT_EQ(result.points.size(), 2u);

  // The manifest the driver just wrote must agree with a fresh snapshot:
  // nothing else ran since, so the delta IS the totals.
  const auto manifest = core::last_run_manifest();
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->experiment, "voltage_sweep");
  EXPECT_EQ(manifest->spec, "IRO 3C");
  EXPECT_EQ(manifest->seed, options.seed);
  EXPECT_EQ(manifest->jobs, 1u);
  EXPECT_EQ(manifest->tasks, 2u);
  EXPECT_GT(manifest->wall_ms, 0.0);
  EXPECT_EQ(manifest->version, core::version_string());

  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_GT(manifest->metrics.counter(metrics::Counter::events_fired), 0u);
  for (std::size_t i = 0; i < metrics::counter_count; ++i) {
    EXPECT_EQ(manifest->metrics.counters[i], snap.counters[i])
        << metrics::counter_name(static_cast<metrics::Counter>(i));
  }

  // And the file on disk round-trips through parse + schema check.
  const std::string path = out_dir.dir() + "/voltage_sweep.manifest.json";
  const Json parsed = Json::parse(read_file(path));
  EXPECT_EQ(parsed.at("schema").as_string(), core::RunManifest::schema);
  const core::RunManifest reloaded = core::RunManifest::from_json(parsed);
  EXPECT_EQ(reloaded.experiment, manifest->experiment);
  EXPECT_EQ(reloaded.seed, manifest->seed);
  for (std::size_t i = 0; i < metrics::counter_count; ++i) {
    EXPECT_EQ(reloaded.metrics.counters[i], manifest->metrics.counters[i]);
  }
  ASSERT_EQ(reloaded.metrics.phases.size(), manifest->metrics.phases.size());
}

TEST(Manifest, FromJsonRejectsWrongSchemaAndMissingKeys) {
  Json bogus = Json::object();
  bogus.set("schema", "ringent.run-manifest/999");
  EXPECT_THROW(core::RunManifest::from_json(bogus), Error);

  const MetricsGuard guard;
  core::RunManifest manifest;
  manifest.experiment = "x";
  Json json = manifest.to_json();
  // Knock out a required key: the schema check must notice.
  Json incomplete = Json::object();
  for (const auto& [key, value] : json.items()) {
    if (key != "counters") incomplete.set(key, value);
  }
  EXPECT_THROW(core::RunManifest::from_json(incomplete), Error);
}

TEST(Manifest, NoManifestWhenMetricsDisabled) {
  const OutDirGuard out_dir;
  metrics::set_enabled(false);
  core::ExperimentOptions options;
  options.jobs = 1;
  (void)core::run_voltage_sweep(
      core::VoltageSweepSpec{core::RingSpec::iro(3), {1.2}, 10},
      core::cyclone_iii(), options);
  std::FILE* f =
      std::fopen((out_dir.dir() + "/voltage_sweep.manifest.json").c_str(),
                 "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

// --- trace spans -------------------------------------------------------------

TEST(Trace, FileIsWellFormedAndBalanced) {
  const OutDirGuard out_dir;
  const std::string path = out_dir.dir() + "/trace.json";
  trace::start(path);
  ASSERT_TRUE(trace::enabled());
  EXPECT_EQ(trace::current_path(), path);
  EXPECT_THROW(trace::start(path), Error);  // one session at a time

  {
    const trace::Span outer("outer", "bench");
    // Spans from pool workers land on their own tids.
    sim::parallel_for_each(6, 3, [&](std::size_t i) {
      const trace::Span inner("task " + std::to_string(i), "axis");
    });
  }
  trace::stop();
  EXPECT_FALSE(trace::enabled());

  const Json doc = Json::parse(read_file(path));
  const Json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_GE(events.size(), 2u);  // outer + at least the inline spans

  // Chrome-trace invariants: every event has the required keys, timestamps
  // are non-negative, and B/E nest and balance per thread.
  std::vector<std::pair<std::int64_t, int>> depth;  // tid -> open spans
  const auto depth_of = [&](std::int64_t tid) -> int& {
    for (auto& [t, d] : depth) {
      if (t == tid) return d;
    }
    depth.emplace_back(tid, 0);
    return depth.back().second;
  };
  bool saw_outer = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    const std::string& ph = event.at("ph").as_string();
    const std::int64_t tid = event.at("tid").as_integer();
    EXPECT_GE(event.at("ts").as_number(), 0.0);
    EXPECT_FALSE(event.at("name").as_string().empty());
    EXPECT_FALSE(event.at("cat").as_string().empty());
    if (event.at("name").as_string() == "outer") saw_outer = true;
    int& d = depth_of(tid);
    if (ph == "B") {
      ++d;
    } else {
      ASSERT_EQ(ph, "E");
      --d;
      ASSERT_GE(d, 0) << "E without matching B on tid " << tid;
    }
  }
  EXPECT_TRUE(saw_outer);
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  }
}

TEST(Trace, StopBalancesSpansStillOpen) {
  // Crash-safe contract: stop() synthesizes an E event for every span still
  // open, so a trace ended mid-measurement (signal handler, atexit) still
  // loads in Perfetto with balanced nesting.
  const OutDirGuard out_dir;
  const std::string path = out_dir.dir() + "/open_spans.json";
  trace::start(path);
  auto open_span = std::make_unique<trace::Span>("still-open", "bench");
  { const trace::Span closed("closed", "bench"); }
  trace::stop();
  open_span.reset();  // dtor after stop: session-stale, must be a no-op

  const Json doc = Json::parse(read_file(path));
  const Json& events = doc.at("traceEvents");
  int balance = 0;
  std::size_t still_open_events = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& event = events.at(i);
    if (event.at("name").as_string() == "still-open") ++still_open_events;
    balance += event.at("ph").as_string() == "B" ? 1 : -1;
  }
  EXPECT_EQ(balance, 0);
  EXPECT_EQ(still_open_events, 2u);  // the real B plus the synthesized E
}

TEST(Trace, PartialFileIsReadableMidSession) {
  // Every event is appended and flushed as it happens: a reader (or a crash)
  // that sees the file mid-session finds the header and all completed spans,
  // not an empty buffer waiting for stop().
  const OutDirGuard out_dir;
  const std::string path = out_dir.dir() + "/partial.json";
  trace::start(path);
  { const trace::Span span("early", "bench"); }
  const std::string partial = read_file(path);
  trace::stop();

  EXPECT_NE(partial.find("traceEvents"), std::string::npos);
  EXPECT_NE(partial.find("\"early\""), std::string::npos);
  EXPECT_NE(partial.find("\"B\""), std::string::npos);
  EXPECT_NE(partial.find("\"E\""), std::string::npos);
  // The closing bracket only lands at stop().
  EXPECT_EQ(partial.find("]}"), std::string::npos);
  EXPECT_NE(read_file(path).find("]}"), std::string::npos);
}

TEST(Trace, SpansAreFreeWhenInactive) {
  ASSERT_FALSE(trace::enabled());
  { const trace::Span span("ignored", "bench"); }
  trace::stop();  // no session: must be a no-op, not an error
  EXPECT_FALSE(trace::enabled());
}

// --- bench CLI ---------------------------------------------------------------

TEST(BenchCli, ParsesSharedFlags) {
  const char* argv_full[] = {"bench",   "--jobs", "4",         "--metrics",
                             "--trace", "t.json", "leftover"};
  const bench::CliOptions full =
      bench::parse_cli(7, const_cast<char**>(argv_full));
  EXPECT_EQ(full.jobs, 4u);
  EXPECT_TRUE(full.metrics);
  EXPECT_EQ(full.trace_path, "t.json");

  const char* argv_eq[] = {"bench", "--jobs=2", "--trace=x.json"};
  const bench::CliOptions eq =
      bench::parse_cli(3, const_cast<char**>(argv_eq));
  EXPECT_EQ(eq.jobs, 2u);
  EXPECT_FALSE(eq.metrics);
  EXPECT_EQ(eq.trace_path, "x.json");

  const char* argv_none[] = {"bench"};
  const bench::CliOptions none =
      bench::parse_cli(1, const_cast<char**>(argv_none));
  EXPECT_EQ(none.jobs, 0u);
  EXPECT_FALSE(none.metrics);
  EXPECT_TRUE(none.trace_path.empty());

  // Malformed values degrade to the defaults rather than throwing; the
  // warnings they trigger are asserted in test_fuzz_regressions.cpp.
  const char* argv_bad[] = {"bench", "--jobs", "potato", "--trace"};
  const bench::CliOptions bad =
      bench::parse_cli(4, const_cast<char**>(argv_bad), /*diagnostics=*/nullptr);
  EXPECT_EQ(bad.jobs, 0u);
  EXPECT_TRUE(bad.trace_path.empty());
}

TEST(BenchCli, ParsesTelemetryFlag) {
  const char* argv_split[] = {"bench", "--telemetry", "t.jsonl"};
  const bench::CliOptions split =
      bench::parse_cli(3, const_cast<char**>(argv_split));
  EXPECT_EQ(split.telemetry_path, "t.jsonl");

  const char* argv_eq[] = {"bench", "--telemetry=scrape.prom"};
  const bench::CliOptions eq =
      bench::parse_cli(2, const_cast<char**>(argv_eq));
  EXPECT_EQ(eq.telemetry_path, "scrape.prom");

  // A trailing flag with no path degrades to "no telemetry", not a throw.
  const char* argv_bad[] = {"bench", "--telemetry"};
  const bench::CliOptions bad =
      bench::parse_cli(2, const_cast<char**>(argv_bad), /*diagnostics=*/nullptr);
  EXPECT_TRUE(bad.telemetry_path.empty());
  const char* argv_bad_eq[] = {"bench", "--telemetry="};
  const bench::CliOptions bad_eq = bench::parse_cli(
      2, const_cast<char**>(argv_bad_eq), /*diagnostics=*/nullptr);
  EXPECT_TRUE(bad_eq.telemetry_path.empty());
}

TEST(BenchCli, SessionStreamsBenchTotalSnapshot) {
  const OutDirGuard out_dir;
  const std::string path = out_dir.dir() + "/bench.jsonl";
  {
    bench::CliOptions options;
    options.telemetry_path = path;
    const bench::Session session(options, "unit-bench");
    EXPECT_TRUE(core::telemetry_active());
    EXPECT_TRUE(sim::telemetry::enabled());
    sim::telemetry::record(sim::telemetry::Histogram::queue_depth, 3);
  }
  // Session's destructor appends the whole-binary summary snapshot.
  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty());
  const auto snapshot =
      core::TelemetrySnapshot::from_json(Json::parse(content.substr(
          0, content.find('\n'))));
  EXPECT_EQ(snapshot.experiment, "unit-bench-total");
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "queue_depth");
  EXPECT_EQ(snapshot.histograms[0].count, 1u);
  core::set_telemetry_path("");
  sim::telemetry::reset();
  EXPECT_FALSE(core::telemetry_active());
}

TEST(BenchCli, SessionAppliesFlagsAndFlushesTrace) {
  const OutDirGuard out_dir;
  const std::string path = out_dir.dir() + "/session.json";
  {
    bench::CliOptions options;
    options.metrics = true;
    options.trace_path = path;
    const bench::Session session(options, "unit-bench");
    EXPECT_TRUE(metrics::enabled());
    EXPECT_TRUE(trace::enabled());
  }
  // Session owns the trace it started and must flush it on destruction.
  EXPECT_FALSE(trace::enabled());
  const Json doc = Json::parse(read_file(path));
  ASSERT_GE(doc.at("traceEvents").size(), 2u);
  EXPECT_EQ(doc.at("traceEvents").at(std::size_t{0}).at("name").as_string(),
            "unit-bench");
  metrics::set_enabled(false);
  metrics::reset();
}
